// Ablation benchmarks for the fault model's design choices: what each
// modeled mechanism contributes to the measured behavior. Each
// benchmark reports the with/without comparison via b.ReportMetric.
package rowhammer_test

import (
	"testing"

	rh "rowhammer"
)

func ablationBench(b *testing.B, seed uint64) *rh.Bench {
	b.Helper()
	bench, err := rh.NewBench(rh.BenchConfig{
		Profile: rh.ProfileByName("A"),
		Seed:    seed,
		Geometry: rh.Geometry{
			Banks: 1, RowsPerBank: 512, SubarrayRows: 256,
			Chips: 8, ChipWidth: 8, ColumnsPerRow: 64,
		},
	})
	if err != nil {
		b.Fatal(err)
	}
	return bench
}

// BenchmarkAblationDataPatternCoupling quantifies the data-pattern
// coupling mechanism: flips with anti-parallel aggressor data
// (rowstripe-style) vs parallel (colstripe puts the same byte
// everywhere). Without the coupling term the WCDP search would be
// meaningless; the paper's Table 1 methodology presumes this gap.
func BenchmarkAblationDataPatternCoupling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench := ablationBench(b, 51)
		t := rh.NewTester(bench)
		totals := map[rh.PatternKind]int{}
		for _, pat := range []rh.PatternKind{rh.PatRowStripe, rh.PatColStripe} {
			for victim := 20; victim < 120; victim += 10 {
				hr, err := t.Hammer(rh.HammerConfig{
					Bank: 0, VictimPhys: victim, Hammers: 300_000, Pattern: pat, Trial: 1,
				})
				if err != nil {
					b.Fatal(err)
				}
				totals[pat] += hr.Victim.Count()
			}
		}
		b.ReportMetric(float64(totals[rh.PatRowStripe]), "rowstripe-flips")
		b.ReportMetric(float64(totals[rh.PatColStripe]), "colstripe-flips")
		if totals[rh.PatColStripe] > 0 {
			b.ReportMetric(float64(totals[rh.PatRowStripe])/float64(totals[rh.PatColStripe]), "coupling-gain")
		}
	}
}

// BenchmarkAblationBlastRadius quantifies the distance-2 disturbance
// term: single-sided victim flips at ±2 relative to the double-sided
// victim. Setting the distance-2 weight to zero would zero the
// single-sided victims' BER and break the Fig. 4 ±2 series and the
// adjacency-probe methodology.
func BenchmarkAblationBlastRadius(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench := ablationBench(b, 53)
		t := rh.NewTester(bench)
		ds, ss := 0, 0
		for victim := 20; victim < 220; victim += 8 {
			hr, err := t.Hammer(rh.HammerConfig{
				Bank: 0, VictimPhys: victim, Hammers: 400_000, Pattern: rh.PatCheckered, Trial: 1,
			})
			if err != nil {
				b.Fatal(err)
			}
			ds += hr.Victim.Count()
			ss += hr.SingleLo.Count() + hr.SingleHi.Count()
		}
		b.ReportMetric(float64(ds), "double-sided-flips")
		b.ReportMetric(float64(ss), "single-sided-flips")
	}
}

// BenchmarkAblationRepetitionNoise quantifies the per-trial
// measurement noise: the spread of HCfirst across five repetitions of
// the same test, and the gain from the paper's min-of-5 policy.
func BenchmarkAblationRepetitionNoise(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench := ablationBench(b, 57)
		t := rh.NewTester(bench)
		const victim = 100
		min5 := int64(0)
		var first int64
		for rep := 1; rep <= 5; rep++ {
			res, err := t.HCFirst(rh.HCFirstConfig{
				Bank: 0, VictimPhys: victim, Pattern: rh.PatCheckered, Trial: uint64(rep),
			})
			if err != nil {
				b.Fatal(err)
			}
			if !res.Found {
				b.Fatal("victim not vulnerable")
			}
			if rep == 1 {
				first = res.HCfirst
			}
			if min5 == 0 || res.HCfirst < min5 {
				min5 = res.HCfirst
			}
		}
		b.ReportMetric(float64(first), "single-trial-hcfirst")
		b.ReportMetric(float64(min5), "min-of-5-hcfirst")
	}
}

// BenchmarkAblationSubarrayIsolation verifies (and times) the
// subarray-boundary design choice: hammering the last row of a
// subarray disturbs in-subarray neighbors only. Without the isolation
// the adjacency probe would see phantom neighbors across sense-amp
// stripes.
func BenchmarkAblationSubarrayIsolation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench := ablationBench(b, 59)
		t := rh.NewTester(bench)
		// Row 255 is the last row of subarray 0; its in-subarray
		// neighbor is 254, its cross-boundary neighbor 256.
		neighbors, err := t.AdjacencyProbe(0, 255, 8)
		if err != nil {
			b.Fatal(err)
		}
		cross := 0
		for _, n := range neighbors {
			if n >= 256 {
				cross++
			}
		}
		b.ReportMetric(float64(len(neighbors)), "observed-neighbors")
		b.ReportMetric(float64(cross), "cross-subarray-neighbors")
	}
}

// BenchmarkHammerThroughput measures the simulator's raw hammering
// rate: simulated activations per second of host CPU through the full
// command-level path (pattern write + bulk hammer + readback).
func BenchmarkHammerThroughput(b *testing.B) {
	bench := ablationBench(b, 61)
	t := rh.NewTester(bench)
	const hammers = 512_000
	cfg := rh.HammerConfig{
		Bank: 0, VictimPhys: 100, Hammers: hammers, Pattern: rh.PatCheckered, Trial: 1,
	}
	// Warm up once so the timed loop measures steady-state throughput,
	// not the one-time candidate-set builds and scratch sizing.
	var res rh.HammerResult
	if err := t.HammerInto(cfg, &res); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := t.HammerInto(cfg, &res); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(hammers*2)*float64(b.N)/b.Elapsed().Seconds(), "activations/s")
}
