package rowhammer

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
)

func tinyFleetSpec(kind string, modulesPerMfr int) CampaignSpec {
	return CampaignSpec{
		Kind:          kind,
		Mfrs:          []string{"A", "B", "C", "D"},
		ModulesPerMfr: modulesPerMfr,
		Seed:          0x5eed,
		Scale:         Scale{RowsPerRegion: 8, Regions: 1, Hammers: 150_000, MaxHammers: 512_000, Repetitions: 1, ModulesPerMfr: modulesPerMfr},
		Geometry:      Geometry{Banks: 1, RowsPerBank: 256, SubarrayRows: 64, Chips: 4, ChipWidth: 8, ColumnsPerRow: 16},
		Workers:       4,
	}
}

func TestRunCampaignAllKinds(t *testing.T) {
	for _, kind := range CampaignKinds() {
		kind := kind
		t.Run(kind, func(t *testing.T) {
			t.Parallel()
			spec := tinyFleetSpec(kind, 1)
			res, err := RunCampaign(context.Background(), spec, CampaignOptions{})
			if err != nil {
				t.Fatalf("RunCampaign(%s): %v", kind, err)
			}
			if res.Completed != 4 || res.Failed != 0 {
				t.Fatalf("completed/failed = %d/%d, want 4/0", res.Completed, res.Failed)
			}
			for key, rec := range res.Records {
				if len(rec.Metrics) == 0 {
					t.Fatalf("record %s has no metrics", key)
				}
				if rec.Seed == 0 {
					t.Fatalf("record %s missing module seed", key)
				}
			}
			if len(res.Summary.Fleet) == 0 {
				t.Fatalf("summary has no fleet metrics")
			}
		})
	}
}

func TestRunCampaignDeterministicAcrossWorkerCounts(t *testing.T) {
	run := func(workers int) []byte {
		spec := tinyFleetSpec(CampaignHCFirst, 2)
		spec.Workers = workers
		res, err := RunCampaign(context.Background(), spec, CampaignOptions{})
		if err != nil {
			t.Fatal(err)
		}
		b, err := res.Summary.MarshalIndent()
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	if !bytes.Equal(run(1), run(8)) {
		t.Fatal("fleet summary depends on worker count")
	}
}

// TestRunCampaignInterruptResumeBitIdentical is the acceptance check:
// a 16-module campaign killed mid-run and resumed from its JSONL
// checkpoint must aggregate bit-identically to an uninterrupted run.
func TestRunCampaignInterruptResumeBitIdentical(t *testing.T) {
	spec := tinyFleetSpec(CampaignHCFirst, 4) // 4 mfrs x 4 = 16 modules

	ref, err := RunCampaign(context.Background(), spec, CampaignOptions{})
	if err != nil {
		t.Fatal(err)
	}
	refSum, err := ref.Summary.MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var cp bytes.Buffer
	var once sync.Once
	var done atomic.Int64
	res, err := RunCampaign(ctx, spec, CampaignOptions{
		Checkpoint: &cp,
		Progress: func(_, _ int, rec CampaignRecord) {
			if rec.Err == "" && done.Add(1) >= 5 {
				once.Do(cancel)
			}
		},
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupted campaign should surface cancellation, got %v", err)
	}
	if res == nil || res.Completed >= 16 {
		t.Fatalf("campaign was not interrupted: %+v", res)
	}

	// Round-trip through the file loader so the test exercises the
	// same path as rhfleet -resume.
	cpPath := filepath.Join(t.TempDir(), "fleet.jsonl")
	if err := os.WriteFile(cpPath, cp.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	resumeRecs, err := LoadCampaignCheckpoint(cpPath)
	if err != nil {
		t.Fatal(err)
	}
	resumed, err := RunCampaign(context.Background(), spec, CampaignOptions{Resume: resumeRecs})
	if err != nil {
		t.Fatalf("resumed campaign: %v", err)
	}
	if resumed.Skipped == 0 {
		t.Fatal("resume skipped no jobs")
	}
	if resumed.Skipped+resumed.Completed != 16 {
		t.Fatalf("skipped %d + completed %d != 16", resumed.Skipped, resumed.Completed)
	}
	gotSum, err := resumed.Summary.MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(refSum, gotSum) {
		t.Fatalf("resumed summary differs from uninterrupted run:\nref: %s\ngot: %s", refSum, gotSum)
	}
}

func TestModuleSeedKeyedAndStable(t *testing.T) {
	a0 := ModuleSeed(42, "A", 0)
	if a0 != ModuleSeed(42, "A", 0) {
		t.Fatal("ModuleSeed not deterministic")
	}
	seen := map[uint64]string{}
	for _, mfr := range []string{"A", "B", "C", "D"} {
		for i := 0; i < 8; i++ {
			s := ModuleSeed(42, mfr, i)
			if prev, dup := seen[s]; dup {
				t.Fatalf("seed collision between %s/%d and %s", mfr, i, prev)
			}
			seen[s] = mfr
		}
	}
	if ModuleSeed(42, "A", 0) == ModuleSeed(43, "A", 0) {
		t.Fatal("master seed not mixed into module seed")
	}
}

func TestSurveyPatternsMatchesWorstCasePattern(t *testing.T) {
	b, err := NewBench(BenchConfig{Profile: ProfileByName("A"), Seed: 7, Geometry: Geometry{Banks: 1, RowsPerBank: 256, SubarrayRows: 64, Chips: 4, ChipWidth: 8, ColumnsPerRow: 16}})
	if err != nil {
		t.Fatal(err)
	}
	tester := NewTester(b)
	victims := []int{10, 40, 90, 140}
	s, err := tester.SurveyPatterns(context.Background(), 0, victims, 200_000)
	if err != nil {
		t.Fatal(err)
	}
	got, err := tester.WorstCasePattern(0, victims, 200_000)
	if err != nil {
		t.Fatal(err)
	}
	if got != s.Best {
		t.Fatalf("WorstCasePattern = %v, SurveyPatterns best = %v", got, s.Best)
	}
	if s.BestFlips < s.WorstFlips {
		t.Fatalf("best flips %d < worst flips %d", s.BestFlips, s.WorstFlips)
	}
	if len(s.Totals) == 0 {
		t.Fatal("survey has no per-pattern totals")
	}
}

func TestSurveyPatternsHonorsCancellation(t *testing.T) {
	b, err := NewBench(BenchConfig{Profile: ProfileByName("A"), Seed: 7, Geometry: Geometry{Banks: 1, RowsPerBank: 256, SubarrayRows: 64, Chips: 4, ChipWidth: 8, ColumnsPerRow: 16}})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := NewTester(b).SurveyPatterns(ctx, 0, []int{10, 40}, 200_000); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}
