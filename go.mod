module rowhammer

go 1.22
