// Package inject implements a seeded, fully deterministic fault
// injector for the characterization infrastructure. The paper's study
// ran 272 chips on FPGA SoftMC boards inside a PID-regulated chamber —
// an environment where transient link hiccups, torn readouts, thermal
// drift and wedged modules are routine — and the methodology has to
// survive them without corrupting results.
//
// The injector interposes at three layers:
//
//   - WrapDevice wraps the SoftMC command interface (softmc.Device)
//     with transient link faults and CRC-detected readout corruption.
//   - (*Profile).DriftHook drives the thermal chamber's disturbance
//     input with deterministic uncontrolled-power bursts, so guarded
//     holds can detect drift beyond the ±0.5 °C validity band.
//   - WrapRunner wraps a campaign.Runner with the full fault profile:
//     command errors, latency spikes, torn readouts, guardband drift
//     and persistently-dead modules, keyed on (seed, job, attempt).
//
// Every fault decision is a pure function of (profile seed, identity,
// attempt or op counter) via internal/rng, so a faulty run is exactly
// reproducible — the property the chaos suite uses to prove that a
// campaign under any transient-fault profile aggregates bit-identical
// to a fault-free run.
package inject

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"rowhammer/internal/rng"
)

// Fault channels: each fault class draws from its own keyed stream so
// enabling one class never perturbs another's decisions.
const (
	chCmd     = "cmd"
	chRead    = "read"
	chLatency = "latency"
	chDrift   = "drift"
)

// Sentinel errors for the injected fault classes. Transient faults
// (link, CRC, drift, latency-induced deadline) heal on retry; a dead
// module never does.
var (
	ErrLinkFault  = errors.New("inject: transient FPGA link fault")
	ErrReadCRC    = errors.New("inject: torn readout (CRC mismatch)")
	ErrDeadModule = errors.New("inject: dead module")
)

// Profile configures deterministic fault injection. The zero value
// injects nothing; rates are per-decision probabilities in [0, 1].
type Profile struct {
	// Name labels the profile in logs and summaries.
	Name string
	// Seed keys every fault decision; two runs with the same seed see
	// the exact same faults.
	Seed uint64

	// CmdErrRate is the probability of a transient command/link error
	// (per job attempt for WrapRunner, per command for WrapDevice).
	CmdErrRate float64
	// ReadCorruptRate is the probability of a torn/corrupted readout,
	// detected CRC-style and surfaced as an error.
	ReadCorruptRate float64
	// LatencySpikeRate and LatencySpike inject wall-clock stalls; with
	// a per-job deadline a long spike turns into a timed-out attempt.
	LatencySpikeRate float64
	LatencySpike     time.Duration
	// DriftRate is the probability an attempt's measurement is
	// invalidated by thermal drift beyond the ±0.5 °C guardband, and
	// DriftW the uncontrolled plant power DriftHook injects.
	DriftRate float64
	DriftW    float64

	// MaxFaultAttempts bounds which attempts of a job are eligible for
	// transient faults: attempts beyond it always run clean, so any
	// campaign with MaxRetries ≥ MaxFaultAttempts converges to the
	// fault-free result (the bit-identical invariant). Zero means 1.
	MaxFaultAttempts int

	// DeadModules lists module identities ("mfr/index") that fail
	// every attempt — wedged boards only the circuit breaker handles.
	DeadModules []string
}

// Transient returns a profile of recoverable infrastructure noise:
// command errors, torn readouts and guardband drift, healing by the
// second attempt.
func Transient(seed uint64) *Profile {
	return &Profile{
		Name: "transient", Seed: seed,
		CmdErrRate: 0.25, ReadCorruptRate: 0.2, DriftRate: 0.15,
		MaxFaultAttempts: 1,
	}
}

// Latency returns a profile of pure wall-clock stalls.
func Latency(seed uint64, spike time.Duration) *Profile {
	return &Profile{Name: "latency", Seed: seed, LatencySpikeRate: 0.3, LatencySpike: spike, MaxFaultAttempts: 1}
}

// Drift returns a profile of thermal-drift faults only.
func Drift(seed uint64) *Profile {
	return &Profile{Name: "drift", Seed: seed, DriftRate: 0.3, DriftW: 45, MaxFaultAttempts: 1}
}

// Chaos returns the kitchen-sink transient profile: command errors,
// latency spikes, torn readouts and drift, eligible on the first two
// attempts of every job.
func Chaos(seed uint64) *Profile {
	return &Profile{
		Name: "chaos", Seed: seed,
		CmdErrRate: 0.3, ReadCorruptRate: 0.25, DriftRate: 0.2,
		LatencySpikeRate: 0.25, LatencySpike: time.Millisecond,
		DriftW:           45,
		MaxFaultAttempts: 2,
	}
}

// Dead returns a profile where the listed modules ("mfr/index") are
// persistently wedged and everything else is healthy.
func Dead(seed uint64, modules ...string) *Profile {
	p := &Profile{Name: "dead", Seed: seed}
	p.DeadModules = append(p.DeadModules, modules...)
	sort.Strings(p.DeadModules)
	return p
}

// Active reports whether the profile can inject anything.
func (p *Profile) Active() bool {
	if p == nil {
		return false
	}
	return p.CmdErrRate > 0 || p.ReadCorruptRate > 0 || p.LatencySpikeRate > 0 ||
		p.DriftRate > 0 || len(p.DeadModules) > 0
}

// maxFaultAttempts returns the effective transient-fault attempt bound.
func (p *Profile) maxFaultAttempts() int {
	if p.MaxFaultAttempts < 1 {
		return 1
	}
	return p.MaxFaultAttempts
}

// dead reports whether the module identity ("mfr/index") is wedged.
func (p *Profile) dead(module string) bool {
	for _, m := range p.DeadModules {
		if m == module {
			return true
		}
	}
	return false
}

// hitAttempt decides one per-attempt transient fault: a pure function
// of (seed, channel, job key, attempt), eligible only on the first
// MaxFaultAttempts attempts.
func (p *Profile) hitAttempt(rate float64, channel, key string, attempt int) bool {
	if rate <= 0 || attempt > p.maxFaultAttempts() {
		return false
	}
	h := rng.Hash64(p.Seed, rng.HashString(channel), rng.HashString(key), uint64(attempt))
	return rng.Uniform01(h) < rate
}

// hitOp decides one per-operation fault for device-level injection: a
// pure function of (seed, channel, device key, op counter).
func (p *Profile) hitOp(rate float64, channel string, key, op uint64) bool {
	if rate <= 0 {
		return false
	}
	h := rng.Hash64(p.Seed, rng.HashString(channel), key, op)
	return rng.Uniform01(h) < rate
}

// DriftHook returns a thermal.Chamber.Disturb-compatible hook that
// injects deterministic square bursts of uncontrolled power: each
// 8-simulated-second window independently draws whether DriftW extra
// watts leak into the plant. Returns nil when the profile has no
// drift component.
func (p *Profile) DriftHook(key uint64) func(elapsedSeconds float64) float64 {
	if p == nil || p.DriftRate <= 0 || p.DriftW == 0 {
		return nil
	}
	const windowSeconds = 8.0
	return func(elapsed float64) float64 {
		w := uint64(elapsed / windowSeconds)
		if p.hitOp(p.DriftRate, chDrift, key, w) {
			return p.DriftW
		}
		return 0
	}
}

// String renders the profile for logs.
func (p *Profile) String() string {
	if p == nil {
		return "none"
	}
	if p.Name != "" {
		return p.Name
	}
	return "custom"
}

// Parse builds a profile from its CLI syntax: "+"-separated terms of
// named profiles and options —
//
//	none | transient | latency | drift | chaos
//	dead=MFR/IDX[,MFR/IDX...]
//	seed=N
//
// e.g. "chaos", "transient+seed=7", "chaos+dead=A/0,C/2". "none" or
// the empty string yield a nil profile (no injection).
func Parse(s string) (*Profile, error) {
	s = strings.TrimSpace(s)
	if s == "" || s == "none" {
		return nil, nil
	}
	merged := &Profile{Name: s, Seed: 1}
	seen := false
	for _, term := range strings.Split(s, "+") {
		term = strings.TrimSpace(term)
		switch {
		case term == "transient":
			merged.merge(Transient(merged.Seed))
			seen = true
		case term == "latency":
			merged.merge(Latency(merged.Seed, 2*time.Millisecond))
			seen = true
		case term == "drift":
			merged.merge(Drift(merged.Seed))
			seen = true
		case term == "chaos":
			merged.merge(Chaos(merged.Seed))
			seen = true
		case strings.HasPrefix(term, "dead="):
			mods := strings.Split(strings.TrimPrefix(term, "dead="), ",")
			for _, m := range mods {
				if m = strings.TrimSpace(m); m != "" {
					merged.DeadModules = append(merged.DeadModules, m)
				}
			}
			if len(merged.DeadModules) == 0 {
				return nil, fmt.Errorf("inject: %q lists no modules", term)
			}
			sort.Strings(merged.DeadModules)
			seen = true
		case strings.HasPrefix(term, "seed="):
			n, err := strconv.ParseUint(strings.TrimPrefix(term, "seed="), 0, 64)
			if err != nil {
				return nil, fmt.Errorf("inject: bad seed in %q: %w", term, err)
			}
			merged.Seed = n
		default:
			return nil, fmt.Errorf("inject: unknown fault-profile term %q (have none, transient, latency, drift, chaos, dead=mfr/idx, seed=n)", term)
		}
	}
	if !seen {
		return nil, fmt.Errorf("inject: profile %q sets options but no fault class", s)
	}
	return merged, nil
}

// merge folds o's fault classes into p (maximum of rates, union of
// dead modules), keeping p's seed.
func (p *Profile) merge(o *Profile) {
	p.CmdErrRate = maxf(p.CmdErrRate, o.CmdErrRate)
	p.ReadCorruptRate = maxf(p.ReadCorruptRate, o.ReadCorruptRate)
	p.LatencySpikeRate = maxf(p.LatencySpikeRate, o.LatencySpikeRate)
	if o.LatencySpike > p.LatencySpike {
		p.LatencySpike = o.LatencySpike
	}
	p.DriftRate = maxf(p.DriftRate, o.DriftRate)
	if o.DriftW != 0 {
		p.DriftW = o.DriftW
	}
	if o.MaxFaultAttempts > p.MaxFaultAttempts {
		p.MaxFaultAttempts = o.MaxFaultAttempts
	}
	p.DeadModules = append(p.DeadModules, o.DeadModules...)
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// sleepCtx blocks for d or until ctx is done, returning ctx's error in
// the latter case.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
