package inject

import (
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// outcomeString runs n GETs through a freshly wrapped transport and
// encodes each outcome as one letter: o=ok, d=dropped, l=response
// lost, e=503, x=other error.
func outcomeString(t *testing.T, srvURL string, p *NetProfile, label string, n int) string {
	t.Helper()
	client := &http.Client{Transport: WrapTransport(nil, p, label)}
	out := make([]byte, 0, n)
	for i := 0; i < n; i++ {
		resp, err := client.Get(srvURL)
		switch {
		case errors.Is(err, ErrRequestDropped):
			out = append(out, 'd')
		case errors.Is(err, ErrResponseLost):
			out = append(out, 'l')
		case err != nil:
			out = append(out, 'x')
		case resp.StatusCode == http.StatusServiceUnavailable:
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			out = append(out, 'e')
		default:
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			out = append(out, 'o')
		}
	}
	return string(out)
}

// Same seed and label → the exact same fault schedule; a different
// label → a different one. The reproducibility contract every drill
// rests on.
func TestChaosNetDeterministicSchedule(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("ok"))
	}))
	defer srv.Close()
	p := NetFlaky(7, 0)
	a := outcomeString(t, srv.URL, p, "shard-1", 60)
	b := outcomeString(t, srv.URL, p, "shard-1", 60)
	if a != b {
		t.Fatalf("same seed+label diverged:\n%s\n%s", a, b)
	}
	c := outcomeString(t, srv.URL, p, "shard-2", 60)
	if a == c {
		t.Fatalf("different labels produced the identical schedule %s", a)
	}
	for _, want := range []byte{'o', 'd', 'l', 'e'} {
		if !containsByte(a+c, want) {
			t.Fatalf("flaky schedule %q+%q never produced outcome %q", a, c, want)
		}
	}
}

func containsByte(s string, b byte) bool {
	for i := 0; i < len(s); i++ {
		if s[i] == b {
			return true
		}
	}
	return false
}

// A one-way partition delivers requests (the server acts on them) but
// loses every response; after the window heals, calls succeed.
func TestChaosNetOneWayPartitionWindow(t *testing.T) {
	var served atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		served.Add(1)
		w.Write([]byte("ok"))
	}))
	defer srv.Close()
	client := &http.Client{Transport: WrapTransport(nil, NetPartition(1, 2, 3), "w")}
	for op := 0; op < 8; op++ {
		resp, err := client.Get(srv.URL)
		inWindow := op >= 2 && op < 5
		if inWindow {
			if !errors.Is(err, ErrResponseLost) {
				t.Fatalf("op %d in partition: err = %v, want ErrResponseLost", op, err)
			}
			continue
		}
		if err != nil {
			t.Fatalf("op %d outside partition: %v", op, err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	// One-way means delivered: the server saw every single request.
	if got := served.Load(); got != 8 {
		t.Fatalf("server handled %d requests, want 8 (partition must deliver)", got)
	}
}

func TestChaosNetNeverHealingPartition(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	defer srv.Close()
	client := &http.Client{Transport: WrapTransport(nil, NetPartition(5, 0, -1), "w")}
	for op := 0; op < 6; op++ {
		_, err := client.Get(srv.URL)
		if err == nil {
			t.Fatalf("op %d under permanent partition succeeded", op)
		}
		if !errors.Is(err, ErrResponseLost) {
			t.Fatalf("op %d: %v, want ErrResponseLost", op, err)
		}
	}
}

// MaxOps bounds the faulty prefix: everything at op >= MaxOps is
// clean, which is what makes retried protocols provably convergent.
func TestChaosNetMaxOpsConvergence(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("ok"))
	}))
	defer srv.Close()
	p := NetFlaky(3, 10)
	got := outcomeString(t, srv.URL, p, "w", 30)
	for i := 10; i < 30; i++ {
		if got[i] != 'o' {
			t.Fatalf("op %d past MaxOps=10 was %q, want clean: %s", i, got[i], got)
		}
	}
}

func TestChaosNetListenerAcceptDrop(t *testing.T) {
	srv := httptest.NewUnstartedServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("ok"))
	}))
	p := &NetProfile{Seed: 9, AcceptDropRate: 0.5, PartitionFrom: -1}
	srv.Listener = WrapListener(srv.Listener, p, "ln")
	srv.Start()
	defer srv.Close()
	// Fresh connection per request so each one passes through Accept.
	client := &http.Client{Transport: &http.Transport{DisableKeepAlives: true}}
	okCount := 0
	for i := 0; i < 20; i++ {
		resp, err := client.Get(srv.URL)
		if err != nil {
			continue
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		okCount++
	}
	if okCount == 0 || okCount == 20 {
		t.Fatalf("accept-drop rate 0.5 produced %d/20 successes, want a mix", okCount)
	}
}

func TestChaosNetParse(t *testing.T) {
	cases := []struct {
		in      string
		wantNil bool
		wantErr bool
		check   func(*NetProfile) bool
	}{
		{in: "", wantNil: true},
		{in: "none", wantNil: true},
		{in: "flaky", check: func(p *NetProfile) bool { return p.DropRate > 0 && p.PartitionFrom < 0 }},
		{in: "flaky+seed=9+maxops=40", check: func(p *NetProfile) bool { return p.Seed == 9 && p.MaxOps == 40 }},
		{in: "partition=0:-1", check: func(p *NetProfile) bool { return p.PartitionFrom == 0 && p.PartitionFor == -1 }},
		{in: "partition=12:5", check: func(p *NetProfile) bool { return p.PartitionFrom == 12 && p.PartitionFor == 5 }},
		{in: "drop=0.3+latency=0.2:5ms", check: func(p *NetProfile) bool {
			return p.DropRate == 0.3 && p.LatencyRate == 0.2 && p.Latency == 5*time.Millisecond
		}},
		{in: "oneway=0.25+err=0.1+acceptdrop=0.2", check: func(p *NetProfile) bool {
			return p.OneWayRate == 0.25 && p.ErrRate == 0.1 && p.AcceptDropRate == 0.2
		}},
		{in: "seed=5", wantErr: true}, // options but no fault class
		{in: "bogus", wantErr: true},
		{in: "drop=1.5", wantErr: true},
		{in: "partition=-1:4", wantErr: true},
		{in: "latency=0.2", wantErr: true}, // missing duration
		{in: "maxops=-3+flaky", wantErr: true},
	}
	for _, tc := range cases {
		p, err := ParseNet(tc.in)
		if tc.wantErr {
			if err == nil {
				t.Errorf("ParseNet(%q) = %+v, want error", tc.in, p)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseNet(%q): %v", tc.in, err)
			continue
		}
		if tc.wantNil {
			if p != nil {
				t.Errorf("ParseNet(%q) = %+v, want nil", tc.in, p)
			}
			continue
		}
		if p == nil || (tc.check != nil && !tc.check(p)) {
			t.Errorf("ParseNet(%q) = %+v fails its check", tc.in, p)
		}
	}
}
