package inject

import (
	"errors"
	"strings"
	"testing"
	"time"

	"rowhammer/internal/dram"
	"rowhammer/internal/softmc"
	"rowhammer/internal/thermal"
)

func TestParseProfiles(t *testing.T) {
	for _, s := range []string{"", "none"} {
		p, err := Parse(s)
		if err != nil || p != nil {
			t.Fatalf("Parse(%q) = %v, %v; want nil, nil", s, p, err)
		}
	}
	p, err := Parse("chaos+dead=A/0,C/2+seed=9")
	if err != nil {
		t.Fatal(err)
	}
	if p.Seed != 9 || p.CmdErrRate == 0 || len(p.DeadModules) != 2 || p.DeadModules[0] != "A/0" {
		t.Fatalf("merged profile = %+v", p)
	}
	if !p.Active() {
		t.Fatal("merged profile should be active")
	}
	for _, bad := range []string{"bogus", "dead=", "seed=x", "seed=7"} {
		if _, err := Parse(bad); err == nil {
			t.Fatalf("Parse(%q) should fail", bad)
		}
	}
}

func TestTransientFaultDecisionsAreDeterministicAndBounded(t *testing.T) {
	p := Transient(5)
	a := p.hitAttempt(p.CmdErrRate, chCmd, "hcfirst/A/0", 1)
	for i := 0; i < 10; i++ {
		if p.hitAttempt(p.CmdErrRate, chCmd, "hcfirst/A/0", 1) != a {
			t.Fatal("fault decision not deterministic")
		}
	}
	// Attempts beyond MaxFaultAttempts always run clean — the
	// convergence guarantee behind the bit-identical invariant.
	for attempt := p.maxFaultAttempts() + 1; attempt < p.maxFaultAttempts()+10; attempt++ {
		if p.hitAttempt(1.0, chCmd, "hcfirst/A/0", attempt) {
			t.Fatalf("attempt %d past MaxFaultAttempts still faulted", attempt)
		}
	}
}

func newTestModule(t *testing.T) *dram.Module {
	t.Helper()
	m, err := dram.NewModule(dram.ModuleConfig{
		Geometry: dram.Geometry{Banks: 2, RowsPerBank: 64, SubarrayRows: 64, Chips: 8, ChipWidth: 8, ColumnsPerRow: 8},
		Timing:   dram.DDR4Timing(),
	})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// writeReadProgram builds a timing-legal WR→RD round trip.
func writeReadProgram(tm dram.Timing, data uint64) *softmc.Program {
	b := softmc.NewBuilder(tm.TCK)
	b.Act(0, 5).Wait(tm.TRCD).
		Wr(0, 3, data).Wait(tm.TRAS).
		Pre(0).Wait(tm.TRP).
		Act(0, 5).Wait(tm.TRCD).
		Rd(0, 3).Wait(tm.TRAS).
		Pre(0)
	return b.Program()
}

func TestWrapDeviceLinkFaultsAreDeterministic(t *testing.T) {
	run := func() error {
		m := newTestModule(t)
		dev := WrapDevice(m, &Profile{Seed: 11, CmdErrRate: 0.5}, 0xabc)
		_, err := softmc.NewExecutorOn(dev).Run(writeReadProgram(m.Timing(), 0x1234))
		return err
	}
	err1, err2 := run(), run()
	if err1 == nil {
		t.Fatal("a 50% link-fault rate over 6 commands should have faulted (seeded draw)")
	}
	if !errors.Is(err1, ErrLinkFault) {
		t.Fatalf("fault should be a link fault, got %v", err1)
	}
	if err2 == nil || err1.Error() != err2.Error() {
		t.Fatalf("device faults not reproducible:\n%v\n%v", err1, err2)
	}
}

func TestWrapDeviceCorruptsReadoutsDetectably(t *testing.T) {
	m := newTestModule(t)
	dev := WrapDevice(m, &Profile{Seed: 11, ReadCorruptRate: 1}, 0xabc)
	res, err := softmc.NewExecutorOn(dev).Run(writeReadProgram(m.Timing(), 0x1234))
	if !errors.Is(err, ErrReadCRC) {
		t.Fatalf("want CRC error on readout, got %v", err)
	}
	// The executor stops at the failing read, so the torn beat is not
	// in the results — exactly how a checksummed readback discards it.
	if len(res.Reads) != 0 {
		t.Fatalf("torn readout leaked into results: %#v", res.Reads)
	}
}

func TestWrapDeviceInactiveProfilePassesThrough(t *testing.T) {
	m := newTestModule(t)
	if dev := WrapDevice(m, nil, 1); dev != softmc.Device(m) {
		t.Fatal("nil profile should return the device unwrapped")
	}
	dev := WrapDevice(m, &Profile{Seed: 1, CmdErrRate: 0, ReadCorruptRate: 0}, 1)
	res, err := softmc.NewExecutorOn(dev).Run(writeReadProgram(m.Timing(), 0x77))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Reads) != 1 || res.Reads[0] != 0x77 {
		t.Fatalf("reads = %#v", res.Reads)
	}
}

func TestDriftHookBreachesGuardbandDeterministically(t *testing.T) {
	run := func(hook func(float64) float64) (float64, error) {
		ch := thermal.NewChamber(1)
		if err := ch.SetAndSettle(70); err != nil {
			t.Fatal(err)
		}
		ch.Disturb = hook
		return ch.HoldWithin(120, 0.5)
	}
	// A healthy chamber holds the study's ±0.5 °C guardband.
	if worst, err := run(nil); err != nil {
		t.Fatalf("healthy chamber left the guardband (worst %.2f): %v", worst, err)
	}
	// A drifting one is detected, and reproducibly so.
	p := &Profile{Seed: 5, DriftRate: 1, DriftW: 60}
	w1, err1 := run(p.DriftHook(0xbeef))
	w2, err2 := run(p.DriftHook(0xbeef))
	if !errors.Is(err1, thermal.ErrGuardband) {
		t.Fatalf("60 W of uncontrolled drift should breach the guardband, got worst %.2f, err %v", w1, err1)
	}
	if err2 == nil || w1 != w2 {
		t.Fatalf("drift not deterministic: worst %.3f vs %.3f", w1, w2)
	}
	if strings.Contains(err1.Error(), "guardband") == false {
		t.Fatalf("error should mention the guardband: %v", err1)
	}
}

func TestLatencyProfileSleepBounded(t *testing.T) {
	p := Latency(3, 50*time.Millisecond)
	if !p.Active() {
		t.Fatal("latency profile should be active")
	}
	if p.LatencySpike != 50*time.Millisecond {
		t.Fatalf("spike = %v", p.LatencySpike)
	}
}
