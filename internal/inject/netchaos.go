package inject

import (
	"errors"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"rowhammer/internal/rng"
)

// Network fault channels — separate keyed streams per fault class,
// like the device/runner channels above.
const (
	chNetDrop   = "netdrop"
	chNetOneWay = "netoneway"
	chNetErr    = "neterr"
	chNetLat    = "netlat"
	chNetAccept = "netaccept"
)

// Sentinel errors of the network harness. Both model a partition, but
// from opposite sides of the delivery: a dropped request was never
// seen by the server; a lost response was fully processed server-side
// and only the answer vanished — the case that forces idempotent,
// fenced protocols.
var (
	ErrRequestDropped = errors.New("inject: request dropped (network fault)")
	ErrResponseLost   = errors.New("inject: response lost (one-way partition)")
)

// NetProfile configures deterministic HTTP-path fault injection.
// Every decision is a pure function of (Seed, channel, endpoint key,
// per-transport op counter), so one seed replays one exact fault
// schedule. The zero value injects nothing.
type NetProfile struct {
	// Name labels the profile in logs.
	Name string
	// Seed keys every decision.
	Seed uint64

	// DropRate is the probability a request is dropped before delivery
	// (the server never sees it).
	DropRate float64
	// OneWayRate is the probability the request is delivered and
	// processed but its response is lost on the way back.
	OneWayRate float64
	// ErrRate is the probability of a synthesized 503 (a proxy or
	// overloaded peer answering for the real server).
	ErrRate float64
	// LatencyRate and Latency inject wall-clock stalls before
	// delivery; combined with client timeouts they become timed-out
	// attempts.
	LatencyRate float64
	Latency     time.Duration

	// PartitionFrom/PartitionFor define a hard one-way partition
	// window in transport-op space: ops in [From, From+For) deliver
	// their request but always lose the response. For < 0 leaves the
	// partition open forever. PartitionFrom < 0 disables the window.
	PartitionFrom int64
	PartitionFor  int64

	// AcceptDropRate is the listener-side fault: accepted connections
	// are immediately closed at this rate (clients see a reset).
	AcceptDropRate float64

	// MaxOps bounds the faulty prefix: transport ops at index >= MaxOps
	// always run clean (0 = faults forever). The convergence knob — a
	// retried protocol under any MaxOps-bounded profile must finish
	// with the same bytes as a clean run.
	MaxOps int64
}

// NetFlaky returns a transiently lossy network: drops, one-way
// losses, 503s and latency spikes over the first maxOps transport
// operations, clean afterwards.
func NetFlaky(seed uint64, maxOps int64) *NetProfile {
	return &NetProfile{
		Name: "flaky", Seed: seed,
		DropRate: 0.15, OneWayRate: 0.1, ErrRate: 0.1,
		LatencyRate: 0.2, Latency: 2 * time.Millisecond,
		PartitionFrom: -1, MaxOps: maxOps,
	}
}

// NetPartition returns a hard one-way partition covering transport
// ops [from, from+dur) (dur < 0 = never heals), with no other faults.
func NetPartition(seed uint64, from, dur int64) *NetProfile {
	return &NetProfile{Name: "partition", Seed: seed, PartitionFrom: from, PartitionFor: dur}
}

// Active reports whether the profile can inject anything.
func (p *NetProfile) Active() bool {
	if p == nil {
		return false
	}
	return p.DropRate > 0 || p.OneWayRate > 0 || p.ErrRate > 0 || p.LatencyRate > 0 ||
		p.AcceptDropRate > 0 || p.PartitionFrom >= 0
}

// String renders the profile for logs.
func (p *NetProfile) String() string {
	if p == nil {
		return "none"
	}
	if p.Name != "" {
		return p.Name
	}
	return "custom"
}

// hit decides one per-op fault — same derivation as Profile.hitOp, on
// the network channels.
func (p *NetProfile) hit(rate float64, channel string, key, op uint64) bool {
	if rate <= 0 {
		return false
	}
	h := rng.Hash64(p.Seed, rng.HashString(channel), key, op)
	return rng.Uniform01(h) < rate
}

// inPartition reports whether transport op lies in the partition
// window.
func (p *NetProfile) inPartition(op int64) bool {
	if p.PartitionFrom < 0 || op < p.PartitionFrom {
		return false
	}
	return p.PartitionFor < 0 || op < p.PartitionFrom+p.PartitionFor
}

// clean reports whether op is past the faulty prefix.
func (p *NetProfile) clean(op int64) bool { return p.MaxOps > 0 && op >= p.MaxOps }

// ParseNet builds a network profile from its CLI syntax: "+"-separated
// terms —
//
//	none | flaky | partition=FROM:FOR
//	drop=RATE | oneway=RATE | err=RATE | latency=RATE:DUR
//	acceptdrop=RATE | seed=N | maxops=N
//
// e.g. "flaky+seed=7+maxops=40", "partition=0:-1",
// "drop=0.3+latency=0.2:5ms". "none" or "" yield nil (no injection).
// FOR may be -1 for a partition that never heals.
func ParseNet(s string) (*NetProfile, error) {
	s = strings.TrimSpace(s)
	if s == "" || s == "none" {
		return nil, nil
	}
	p := &NetProfile{Name: s, Seed: 1, PartitionFrom: -1}
	seen := false
	parseRate := func(term, prefix string) (float64, error) {
		v, err := strconv.ParseFloat(strings.TrimPrefix(term, prefix), 64)
		if err != nil || v < 0 || v > 1 {
			return 0, fmt.Errorf("inject: bad rate in %q (want 0..1)", term)
		}
		return v, nil
	}
	for _, term := range strings.Split(s, "+") {
		term = strings.TrimSpace(term)
		switch {
		case term == "flaky":
			f := NetFlaky(p.Seed, 0)
			p.DropRate, p.OneWayRate, p.ErrRate = f.DropRate, f.OneWayRate, f.ErrRate
			p.LatencyRate, p.Latency = f.LatencyRate, f.Latency
			seen = true
		case strings.HasPrefix(term, "partition="):
			fromStr, forStr, ok := strings.Cut(strings.TrimPrefix(term, "partition="), ":")
			if !ok {
				return nil, fmt.Errorf("inject: bad partition %q (want partition=FROM:FOR)", term)
			}
			from, err1 := strconv.ParseInt(fromStr, 10, 64)
			dur, err2 := strconv.ParseInt(forStr, 10, 64)
			if err1 != nil || err2 != nil || from < 0 {
				return nil, fmt.Errorf("inject: bad partition %q", term)
			}
			p.PartitionFrom, p.PartitionFor = from, dur
			seen = true
		case strings.HasPrefix(term, "drop="):
			v, err := parseRate(term, "drop=")
			if err != nil {
				return nil, err
			}
			p.DropRate = v
			seen = true
		case strings.HasPrefix(term, "oneway="):
			v, err := parseRate(term, "oneway=")
			if err != nil {
				return nil, err
			}
			p.OneWayRate = v
			seen = true
		case strings.HasPrefix(term, "err="):
			v, err := parseRate(term, "err=")
			if err != nil {
				return nil, err
			}
			p.ErrRate = v
			seen = true
		case strings.HasPrefix(term, "latency="):
			rateStr, durStr, ok := strings.Cut(strings.TrimPrefix(term, "latency="), ":")
			if !ok {
				return nil, fmt.Errorf("inject: bad latency %q (want latency=RATE:DUR)", term)
			}
			rate, err := strconv.ParseFloat(rateStr, 64)
			if err != nil || rate < 0 || rate > 1 {
				return nil, fmt.Errorf("inject: bad rate in %q (want 0..1)", term)
			}
			d, err := time.ParseDuration(durStr)
			if err != nil || d < 0 {
				return nil, fmt.Errorf("inject: bad duration in %q: %v", term, err)
			}
			p.LatencyRate, p.Latency = rate, d
			seen = true
		case strings.HasPrefix(term, "acceptdrop="):
			v, err := parseRate(term, "acceptdrop=")
			if err != nil {
				return nil, err
			}
			p.AcceptDropRate = v
			seen = true
		case strings.HasPrefix(term, "seed="):
			n, err := strconv.ParseUint(strings.TrimPrefix(term, "seed="), 0, 64)
			if err != nil {
				return nil, fmt.Errorf("inject: bad seed in %q: %w", term, err)
			}
			p.Seed = n
		case strings.HasPrefix(term, "maxops="):
			n, err := strconv.ParseInt(strings.TrimPrefix(term, "maxops="), 10, 64)
			if err != nil || n < 0 {
				return nil, fmt.Errorf("inject: bad maxops in %q", term)
			}
			p.MaxOps = n
		default:
			return nil, fmt.Errorf("inject: unknown net-chaos term %q (have none, flaky, partition=from:for, drop=, oneway=, err=, latency=rate:dur, acceptdrop=, seed=, maxops=)", term)
		}
	}
	if !seen {
		return nil, fmt.Errorf("inject: net profile %q sets options but no fault class", s)
	}
	return p, nil
}

// chaosTransport injects the profile into an HTTP client path. The op
// counter is per-transport, so two workers with the same profile and
// different labels see different (but each reproducible) schedules.
type chaosTransport struct {
	base http.RoundTripper
	p    *NetProfile
	key  uint64
	op   atomic.Int64
}

// WrapTransport wraps base with the profile's fault schedule, keyed
// by label (e.g. "shard-3"). A nil or inactive profile returns base
// unchanged; a nil base wraps http.DefaultTransport.
func WrapTransport(base http.RoundTripper, p *NetProfile, label string) http.RoundTripper {
	if !p.Active() {
		if base == nil {
			return http.DefaultTransport
		}
		return base
	}
	if base == nil {
		base = http.DefaultTransport
	}
	return &chaosTransport{base: base, p: p, key: rng.HashString(label)}
}

func (t *chaosTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	op := t.op.Add(1) - 1
	p := t.p
	if p.clean(op) {
		return t.base.RoundTrip(req)
	}
	if p.inPartition(op) {
		// One-way partition: deliver the request — the server acts on
		// it — then lose the answer. The cruellest case for a lease
		// protocol: heartbeats land, acknowledgements don't.
		return t.deliverAndLose(req)
	}
	if p.hit(p.DropRate, chNetDrop, t.key, uint64(op)) {
		if req.Body != nil {
			req.Body.Close()
		}
		return nil, fmt.Errorf("%w (op %d)", ErrRequestDropped, op)
	}
	if p.hit(p.LatencyRate, chNetLat, t.key, uint64(op)) {
		if err := sleepCtx(req.Context(), p.Latency); err != nil {
			return nil, err
		}
	}
	if p.hit(p.ErrRate, chNetErr, t.key, uint64(op)) {
		if req.Body != nil {
			req.Body.Close()
		}
		return synth503(req), nil
	}
	if p.hit(p.OneWayRate, chNetOneWay, t.key, uint64(op)) {
		return t.deliverAndLose(req)
	}
	return t.base.RoundTrip(req)
}

// deliverAndLose performs the real round trip, discards the result,
// and reports the response as lost.
func (t *chaosTransport) deliverAndLose(req *http.Request) (*http.Response, error) {
	resp, err := t.base.RoundTrip(req)
	if err == nil {
		resp.Body.Close()
	}
	return nil, ErrResponseLost
}

// synth503 fabricates the response an overloaded proxy would send.
func synth503(req *http.Request) *http.Response {
	return &http.Response{
		Status:     "503 Service Unavailable",
		StatusCode: http.StatusServiceUnavailable,
		Proto:      "HTTP/1.1", ProtoMajor: 1, ProtoMinor: 1,
		Header:  http.Header{"Content-Type": []string{"text/plain"}},
		Body:    http.NoBody,
		Request: req,
	}
}

// chaosListener drops accepted connections at a seeded rate, keyed by
// a per-listener accept counter — the server-side half of the
// harness.
type chaosListener struct {
	net.Listener
	p   *NetProfile
	key uint64
	op  atomic.Int64
}

// WrapListener wraps ln with the profile's AcceptDropRate. A nil or
// rate-less profile returns ln unchanged.
func WrapListener(ln net.Listener, p *NetProfile, label string) net.Listener {
	if p == nil || p.AcceptDropRate <= 0 {
		return ln
	}
	return &chaosListener{Listener: ln, p: p, key: rng.HashString(label)}
}

func (l *chaosListener) Accept() (net.Conn, error) {
	for {
		c, err := l.Listener.Accept()
		if err != nil {
			return nil, err
		}
		op := l.op.Add(1) - 1
		if !l.p.clean(op) && l.p.hit(l.p.AcceptDropRate, chNetAccept, l.key, uint64(op)) {
			c.Close()
			continue
		}
		return c, nil
	}
}
