package inject

import (
	"fmt"

	"rowhammer/internal/dram"
	"rowhammer/internal/rng"
	"rowhammer/internal/softmc"
)

// Device wraps a softmc.Device with deterministic command-level fault
// injection: transient link faults on any operation and CRC-detected
// corruption on readouts. Faults are keyed on (profile seed, device
// key, operation counter), so re-running the same program over a
// fresh wrapper reproduces the same faults at the same commands.
//
// Like the executor it feeds, a Device is not safe for concurrent use.
type Device struct {
	inner softmc.Device
	prof  *Profile
	key   uint64
	ops   uint64
}

// WrapDevice interposes the profile on a device. key identifies the
// module (e.g. its seed), so each module sees an independent fault
// stream. A nil or inactive profile returns the device unwrapped.
func WrapDevice(inner softmc.Device, p *Profile, key uint64) softmc.Device {
	if !p.Active() {
		return inner
	}
	return &Device{inner: inner, prof: p, key: key}
}

// Ops returns how many operations the wrapper has seen (test hook).
func (d *Device) Ops() uint64 { return d.ops }

// Timing passes through to the real device.
func (d *Device) Timing() dram.Timing { return d.inner.Timing() }

// Exec executes one command, possibly injecting a link fault before it
// reaches the module or corrupting a readout on the way back. A
// corrupted readout returns both the damaged beat and ErrReadCRC, the
// way a checksummed FPGA readback surfaces torn data.
func (d *Device) Exec(cmd dram.Command, now dram.Picos) (uint64, error) {
	d.ops++
	if d.prof.hitOp(d.prof.CmdErrRate, chCmd, d.key, d.ops) {
		return 0, fmt.Errorf("%w: op %d (%v)", ErrLinkFault, d.ops, cmd.Op)
	}
	v, err := d.inner.Exec(cmd, now)
	if err != nil {
		return v, err
	}
	if cmd.Op == dram.OpRd && d.prof.hitOp(d.prof.ReadCorruptRate, chRead, d.key, d.ops) {
		mask := rng.Hash64(d.prof.Seed, d.key, d.ops)
		return v ^ mask, fmt.Errorf("%w: op %d", ErrReadCRC, d.ops)
	}
	return v, nil
}

// WrRowBulk decomposes the burst into per-command Exec calls so the
// fault stream advances one op per column, exactly as if the program
// had issued the commands individually.
func (d *Device) WrRowBulk(bank int, data []uint64, step, start dram.Picos) error {
	for col, beat := range data {
		cmd := dram.Command{Op: dram.OpWr, Bank: bank, Col: col, Data: beat}
		if _, err := d.Exec(cmd, start+dram.Picos(col)*step); err != nil {
			return err
		}
	}
	return nil
}

// RdRowBulk decomposes the burst into per-command Exec calls (see
// WrRowBulk); a corrupted readout aborts the burst with ErrReadCRC.
func (d *Device) RdRowBulk(bank, cols int, step, start dram.Picos, dst []uint64) ([]uint64, error) {
	for col := 0; col < cols; col++ {
		cmd := dram.Command{Op: dram.OpRd, Bank: bank, Col: col}
		beat, err := d.Exec(cmd, start+dram.Picos(col)*step)
		if err != nil {
			return dst, err
		}
		dst = append(dst, beat)
	}
	return dst, nil
}

// HammerBulk forwards the bulk fast path, subject to link faults.
func (d *Device) HammerBulk(bank int, rows []int, count int64, aggOn, aggOff dram.Picos, start dram.Picos) (dram.Picos, error) {
	d.ops++
	if d.prof.hitOp(d.prof.CmdErrRate, chCmd, d.key, d.ops) {
		return start, fmt.Errorf("%w: op %d (hammer loop)", ErrLinkFault, d.ops)
	}
	return d.inner.HammerBulk(bank, rows, count, aggOn, aggOff, start)
}
