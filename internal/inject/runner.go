package inject

import (
	"context"
	"fmt"

	"rowhammer/internal/campaign"
	"rowhammer/internal/thermal"
)

// WrapRunner interposes the fault profile on a campaign runner. Each
// job attempt independently draws from every enabled fault class,
// keyed on (profile seed, fault channel, job key, attempt number) —
// attempt numbers come from campaign.Attempt(ctx), which the engine
// sets per try. Because attempts beyond MaxFaultAttempts always run
// clean and the inner runner is a pure function of (spec, job), a
// campaign with MaxRetries ≥ MaxFaultAttempts recovers every
// transient fault and aggregates bit-identically to a fault-free run.
//
// Dead modules fail every attempt with ErrDeadModule; only the
// engine's circuit breaker ends their retries.
func WrapRunner(inner campaign.Runner, p *Profile) campaign.Runner {
	if !p.Active() {
		return inner
	}
	return func(ctx context.Context, spec campaign.Spec, job campaign.Job) (campaign.Record, error) {
		attempt := campaign.Attempt(ctx)
		key := job.Key()
		if p.dead(job.ModuleID()) {
			return campaign.Record{}, fmt.Errorf("%w: %s never responds (wedged board)", ErrDeadModule, job.ModuleID())
		}
		if p.hitAttempt(p.LatencySpikeRate, chLatency, key, attempt) {
			if err := sleepCtx(ctx, p.LatencySpike); err != nil {
				return campaign.Record{}, fmt.Errorf("inject: latency spike on %s attempt %d: %w", key, attempt, err)
			}
		}
		if p.hitAttempt(p.CmdErrRate, chCmd, key, attempt) {
			return campaign.Record{}, fmt.Errorf("%w: %s attempt %d", ErrLinkFault, key, attempt)
		}
		if p.hitAttempt(p.DriftRate, chDrift, key, attempt) {
			return campaign.Record{}, fmt.Errorf("inject: %s attempt %d: %w: left the ±0.5 °C band mid-measurement",
				key, attempt, thermal.ErrGuardband)
		}
		rec, err := inner(ctx, spec, job)
		if err != nil {
			return rec, err
		}
		if p.hitAttempt(p.ReadCorruptRate, chRead, key, attempt) {
			// The measurement ran, but its readback failed the CRC:
			// discard the record so the retry re-measures.
			return campaign.Record{}, fmt.Errorf("%w: %s attempt %d, readout discarded", ErrReadCRC, key, attempt)
		}
		return rec, nil
	}
}
