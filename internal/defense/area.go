package defense

import "math"

// Area models for Defense Improvement 1 (§8.2): configuring defenses
// with per-region HCfirst thresholds instead of the global worst case.
//
// The paper derives preliminary estimates using BlockHammer's area
// methodology: at the worst-case threshold, BlockHammer costs ≈0.6%
// and Graphene ≈0.5% of a high-end processor die; exploiting Obsv. 12
// (95% of rows tolerate a 2× threshold) reduces them to ≈0.4% and
// ≈0.1% — 33% and 80% area reductions. The models below are power
// laws in the threshold, calibrated to exactly those two anchor
// points per mechanism: relaxing the threshold shrinks the entry
// count linearly and additionally narrows counters, CAM match logic
// and comparators, which is why the fitted exponents exceed zero.

// anchorThreshold is the worst-case HCfirst the paper's estimates are
// anchored at.
const anchorThreshold = 10_000.0

// Calibration anchors (fraction of die area).
const (
	grapheneAnchorArea     = 0.005 // 0.5% at the worst-case threshold
	grapheneRelaxedArea    = 0.001 // 0.1% at 2× threshold (row-aware)
	blockHammerAnchorArea  = 0.006 // 0.6% at the worst-case threshold
	blockHammerRelaxedArea = 0.004 // 0.4% at 2× threshold (row-aware)
)

// power-law exponents from the anchor pairs: area(2T)/area(T) = 2^-α.
var (
	grapheneAlpha    = math.Log2(grapheneAnchorArea / grapheneRelaxedArea)       // ≈2.32
	blockHammerAlpha = math.Log2(blockHammerAnchorArea / blockHammerRelaxedArea) // ≈0.585
)

// GrapheneArea returns Graphene's estimated area (fraction of die) at
// a given protection threshold.
func GrapheneArea(threshold int64) float64 {
	if threshold <= 0 {
		return math.Inf(1)
	}
	return grapheneAnchorArea * math.Pow(anchorThreshold/float64(threshold), grapheneAlpha)
}

// BlockHammerArea returns BlockHammer's estimated area (fraction of
// die) at a given protection threshold.
func BlockHammerArea(threshold int64) float64 {
	if threshold <= 0 {
		return math.Inf(1)
	}
	return blockHammerAnchorArea * math.Pow(anchorThreshold/float64(threshold), blockHammerAlpha)
}

// RowAwareConfig captures Obsv. 12's split: a small fraction of rows
// is protected at the worst-case threshold, the rest at a multiple of
// it.
type RowAwareConfig struct {
	// WeakRowFraction is the fraction of rows needing the worst-case
	// threshold (paper: 5%).
	WeakRowFraction float64
	// ThresholdWeak is the worst-case threshold.
	ThresholdWeak int64
	// ThresholdStrong is the relaxed threshold (paper: 2× weak).
	ThresholdStrong int64
	// RowsPerBank sizes the weak-row bitmap.
	RowsPerBank int
}

// weakListArea estimates the cost of flagging weak rows: a plain SRAM
// bitmap with one bit per row (profiled offline), at ≈0.3 µm²/bit
// against the 700 mm² reference die.
func weakListArea(rowsPerBank int) float64 {
	const sramMM2PerBit = 0.3e-6
	return float64(rowsPerBank) * sramMM2PerBit / 700.0
}

// refWindowActs is the maximum activations per bank per refresh
// window (tREFW/tRC ≈ 64 ms / 51 ns).
const refWindowActs = 1_254_901

// RowAwareGrapheneArea returns Graphene's area under a row-aware
// configuration: the tracker is sized for the relaxed threshold (weak
// rows — a few hundred per bank, flagged by the weak-row list — fit in
// the same table since their required entry budget is tiny).
func RowAwareGrapheneArea(cfg RowAwareConfig) float64 {
	return GrapheneArea(cfg.ThresholdStrong) + weakListArea(cfg.RowsPerBank)
}

// RowAwareBlockHammerArea returns BlockHammer's area with row-aware
// thresholds: CBFs sized for the relaxed threshold plus the weak-row
// list.
func RowAwareBlockHammerArea(cfg RowAwareConfig) float64 {
	return BlockHammerArea(cfg.ThresholdStrong) + weakListArea(cfg.RowsPerBank)
}

// AreaReduction returns the fractional saving of going from the
// baseline to the row-aware configuration.
func AreaReduction(baseline, rowAware float64) float64 {
	if baseline <= 0 {
		return 0
	}
	return (baseline - rowAware) / baseline
}
