package defense

import (
	"testing"

	rh "rowhammer"
	"rowhammer/internal/dram"
)

func TestTWiCeDetectsSustainedAggressor(t *testing.T) {
	w := 64 * dram.Millisecond
	tw := NewTWiCe(1000, w, 4096)
	var refreshes int
	now := dram.Picos(0)
	for i := 0; i < 20; i++ {
		act := tw.ObserveBulk(0, 77, 100, now)
		refreshes += len(act.RefreshRows)
		now += w / 100 // sustained high rate
	}
	if refreshes != 2*4 {
		t.Fatalf("refreshes = %d, want 8 (two threshold crossings)", refreshes)
	}
}

func TestTWiCePrunesSlowRows(t *testing.T) {
	w := 64 * dram.Millisecond
	tw := NewTWiCe(10_000, w, 4096)
	// A slow row: far below threshold pace.
	tw.ObserveBulk(0, 5, 3, 0)
	// Advance past several prune intervals with unrelated traffic.
	tw.ObserveBulk(0, 9, 1, w/2)
	if tw.Pruned == 0 {
		t.Fatal("slow row should have been pruned")
	}
	if tw.TableSize() > 2 {
		t.Fatalf("table size %d after pruning", tw.TableSize())
	}
}

func TestTWiCeFastRowSurvivesPruning(t *testing.T) {
	w := 64 * dram.Millisecond
	tw := NewTWiCe(10_000, w, 4096)
	now := dram.Picos(0)
	total := 0
	// Activate at 2× the required pace: must eventually trigger.
	for i := 0; i < 100; i++ {
		act := tw.ObserveBulk(0, 42, 200, now)
		total += len(act.RefreshRows)
		now += w / 100
	}
	if total == 0 {
		t.Fatal("fast aggressor never triggered (wrongly pruned?)")
	}
}

func TestTWiCeReset(t *testing.T) {
	tw := NewTWiCe(100, 64*dram.Millisecond, 4096)
	tw.ObserveBulk(0, 5, 99, 0)
	tw.Reset()
	if act := tw.ObserveBulk(0, 5, 1, 0); len(act.RefreshRows) != 0 {
		t.Fatal("reset did not clear counters")
	}
}

func TestTWiCePreventsFlipsEndToEnd(t *testing.T) {
	b := newEvalBench(t, 3)
	tw := NewTWiCe(8_000, b.Timing().TREFW, 256)
	res, err := Evaluate(EvalConfig{
		Bench: b, Mechanism: tw, Bank: 0, VictimPhys: 100, Hammers: 300_000,
		Pattern: rh.PatCheckered, Trial: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.VictimFlips != 0 {
		t.Fatalf("TWiCe-defended attack flipped %d bits", res.VictimFlips)
	}
	if res.PreventiveRefreshes == 0 {
		t.Fatal("TWiCe never refreshed")
	}
}

func TestSilverBulletQueue(t *testing.T) {
	sb := NewSilverBullet(4, 4096)
	sb.Observe(10)
	sb.Observe(10) // deduplicated
	sb.Observe(11)
	if sb.QueueLen() != 2 {
		t.Fatalf("queue length %d, want 2", sb.QueueLen())
	}
	victims := sb.OnRFM(1)
	want := map[int]bool{8: true, 9: true, 11: true, 12: true}
	if len(victims) != 4 {
		t.Fatalf("victims = %v", victims)
	}
	for _, v := range victims {
		if !want[v] {
			t.Fatalf("victims %v should neighbor row 10", victims)
		}
	}
	if sb.QueueLen() != 1 {
		t.Fatalf("queue length %d after drain, want 1", sb.QueueLen())
	}
}

func TestSilverBulletOverflowTracked(t *testing.T) {
	sb := NewSilverBullet(2, 4096)
	for r := 0; r < 5; r++ {
		sb.Observe(100 + r)
	}
	if sb.Overflowed != 3 {
		t.Fatalf("overflowed = %d, want 3", sb.Overflowed)
	}
}

func TestRFMSilverBulletPreventsFlipsEndToEnd(t *testing.T) {
	b := newEvalBench(t, 3)
	// RAAIMT well below the module's HCfirst: every aggressor is
	// queued and its victims refreshed every few thousand activations.
	rs := NewRFMSilverBullet(4_000, 32, 8, 256)
	res, err := Evaluate(EvalConfig{
		Bench: b, Mechanism: rs, Bank: 0, VictimPhys: 100, Hammers: 300_000,
		Pattern: rh.PatCheckered, Trial: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.VictimFlips != 0 {
		t.Fatalf("RFM+SilverBullet-defended attack flipped %d bits", res.VictimFlips)
	}
	if rs.RFMCount() == 0 {
		t.Fatal("no RFM commands issued")
	}
	if res.PreventiveRefreshes == 0 {
		t.Fatal("no on-die refreshes performed")
	}
}
