package defense

import (
	"math"

	"rowhammer/internal/dram"
	"rowhammer/internal/rng"
)

// PARA is the probabilistic adjacent-row activation defense (Kim et
// al., ISCA 2014): on every activation, with probability p, refresh a
// neighbor of the activated row. It keeps no state, so its area cost
// is negligible — the price is performance (extra activations) that
// grows as the protection threshold shrinks.
type PARA struct {
	// P is the per-activation refresh probability.
	P float64
	// Rows is the bank's row count, for neighbor clipping.
	Rows int

	rnd *rng.Stream
}

// PARAProbability returns the per-activation probability needed to
// keep the failure probability below pFail for an attack of up to
// hcFirst activations: the chance that hcFirst activations all miss is
// (1-p/2)^hcFirst per side.
func PARAProbability(hcFirst int64, pFail float64) float64 {
	if hcFirst <= 0 {
		return 1
	}
	// Solve (1-p)^(hcFirst) <= pFail for the victim-miss probability;
	// a factor 2 accounts for choosing one of two sides.
	p := 1 - math.Exp(math.Log(pFail)/float64(hcFirst))
	p *= 2
	if p > 1 {
		p = 1
	}
	return p
}

// NewPARA builds a PARA instance.
func NewPARA(p float64, rows int, seed uint64) *PARA {
	return &PARA{P: p, Rows: rows, rnd: rng.NewStream(rng.Hash64(seed, 0x9a7a))}
}

// Name implements Mechanism.
func (p *PARA) Name() string { return "PARA" }

// ObserveBulk implements Mechanism. For n activations the number of
// refreshes drawn is binomial(n, P), sampled exactly for small n and
// by normal approximation for large n.
func (p *PARA) ObserveBulk(bank, row int, n int64, now dram.Picos) Action {
	var fires int64
	if n <= 64 {
		for i := int64(0); i < n; i++ {
			if p.rnd.Bernoulli(p.P) {
				fires++
			}
		}
	} else {
		mean := float64(n) * p.P
		sd := math.Sqrt(float64(n) * p.P * (1 - p.P))
		fires = int64(p.rnd.NormalMS(mean, sd) + 0.5)
		if fires < 0 {
			fires = 0
		}
		if fires > n {
			fires = n
		}
	}
	var act Action
	for i := int64(0); i < fires; i++ {
		// Refresh one random side at distance 1 or (rarely) 2.
		off := 1
		if p.rnd.Bernoulli(0.25) {
			off = 2
		}
		if p.rnd.Bernoulli(0.5) {
			off = -off
		}
		nrow := row + off
		if nrow >= 0 && nrow < p.Rows {
			act.RefreshRows = append(act.RefreshRows, nrow)
		}
	}
	return act
}

// Reset implements Mechanism.
func (p *PARA) Reset() {}

// PARASlowdown is a simple analytic performance proxy: the fraction of
// additional activations PARA issues, which the paper reports as a 28%
// average slowdown when configured for HCfirst = 1K. The proxy scales
// the paper's anchor point by the refresh probability.
func PARASlowdown(p float64) float64 {
	// Anchor: PARAProbability(1000, 1e-15) ⇒ ≈28% slowdown [71].
	anchor := PARAProbability(1000, 1e-15)
	return 0.28 * p / anchor
}
