package defense

import "rowhammer/internal/dram"

// TWiCe (Lee et al., ISCA 2019) counts row activations in pruned
// time-window counter tables: an entry whose count stays below a
// per-window pruning threshold cannot reach the RowHammer threshold
// within the refresh window and is dropped, keeping the table small
// while preserving a deterministic guarantee.
type TWiCe struct {
	// Threshold is the activation count at which neighbors are
	// refreshed.
	Threshold int64
	// PruneInterval is the time between pruning passes (the paper
	// prunes once per tREFI-scaled window).
	PruneInterval dram.Picos
	// Window is the refresh window the guarantee covers.
	Window dram.Picos
	// Rows is the bank's row count.
	Rows int

	entries   map[int]*twiceEntry
	lastPrune dram.Picos
	// Pruned counts dropped entries (table-pressure proxy).
	Pruned int64
}

type twiceEntry struct {
	count   int64
	insTime dram.Picos
}

// NewTWiCe builds a TWiCe tracker.
func NewTWiCe(threshold int64, window dram.Picos, rows int) *TWiCe {
	return &TWiCe{
		Threshold:     threshold,
		PruneInterval: window / 128,
		Window:        window,
		Rows:          rows,
		entries:       make(map[int]*twiceEntry),
	}
}

// Name implements Mechanism.
func (tw *TWiCe) Name() string { return "TWiCe" }

// ObserveBulk implements Mechanism.
func (tw *TWiCe) ObserveBulk(bank, row int, n int64, now dram.Picos) Action {
	if n <= 0 {
		return Action{}
	}
	tw.maybePrune(now)
	e := tw.entries[row]
	if e == nil {
		e = &twiceEntry{insTime: now}
		tw.entries[row] = e
	}
	e.count += n
	var act Action
	for e.count >= tw.Threshold {
		act.RefreshRows = append(act.RefreshRows, neighbors(row, tw.Rows)...)
		e.count -= tw.Threshold
	}
	return act
}

// maybePrune drops entries whose activation rate is provably too low
// to reach the threshold within the window.
func (tw *TWiCe) maybePrune(now dram.Picos) {
	if now-tw.lastPrune < tw.PruneInterval {
		return
	}
	tw.lastPrune = now
	for row, e := range tw.entries {
		alive := now - e.insTime
		if alive <= 0 {
			continue
		}
		// Required rate to reach Threshold within Window.
		needed := float64(tw.Threshold) / float64(tw.Window)
		rate := float64(e.count) / float64(alive)
		// Prune entries at under half the required pace (the pruning
		// stage-threshold; conservative, preserves the guarantee).
		if rate < needed/2 {
			delete(tw.entries, row)
			tw.Pruned++
		}
	}
}

// Reset implements Mechanism.
func (tw *TWiCe) Reset() {
	tw.entries = make(map[int]*twiceEntry)
	tw.lastPrune = 0
}

// TableSize returns the live entry count (area proxy).
func (tw *TWiCe) TableSize() int { return len(tw.entries) }
