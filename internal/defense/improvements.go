package defense

import (
	"sort"

	"rowhammer/internal/dram"
)

// Defense Improvements 3, 5, 6 (§8.2): temperature-aware row
// retirement, open-time limiting, and column-aware ECC provisioning.

// RetirementPolicy implements Improvement 3: retire (remap away) rows
// containing cells vulnerable at the current operating temperature,
// adapting the retired set as temperature changes.
type RetirementPolicy struct {
	// vulnerable[row] lists the vulnerable temperature ranges of the
	// row's cells, as (lo, hi) pairs.
	vulnerable map[int][][2]float64
}

// NewRetirementPolicy builds a policy from a per-row profile of
// vulnerable cell temperature ranges.
func NewRetirementPolicy() *RetirementPolicy {
	return &RetirementPolicy{vulnerable: make(map[int][][2]float64)}
}

// AddCellRange records that a row contains a cell vulnerable within
// [loC, hiC].
func (p *RetirementPolicy) AddCellRange(row int, loC, hiC float64) {
	p.vulnerable[row] = append(p.vulnerable[row], [2]float64{loC, hiC})
}

// RetiredRows returns the rows that must be offline at the given
// operating temperature (any cell range containing tempC, with the
// given guard band).
func (p *RetirementPolicy) RetiredRows(tempC, guardC float64) []int {
	var out []int
	for row, ranges := range p.vulnerable {
		for _, r := range ranges {
			if tempC >= r[0]-guardC && tempC <= r[1]+guardC {
				out = append(out, row)
				break
			}
		}
	}
	sort.Ints(out)
	return out
}

// ProfiledRows returns how many rows have profile data.
func (p *RetirementPolicy) ProfiledRows() int { return len(p.vulnerable) }

// OpenTimeLimiter implements Improvement 5: the memory controller
// bounds how long any row stays open, closing and reopening rows whose
// open interval would exceed the cap. This denies attackers the
// tAggOn amplification of Obsv. 8 at the cost of extra
// activate/precharge pairs for long row-buffer-friendly bursts.
type OpenTimeLimiter struct {
	// MaxOpen is the open-time cap.
	MaxOpen dram.Picos
	// ExtraActs counts the reopen operations the policy inserted (the
	// performance proxy).
	ExtraActs int64
}

// NewOpenTimeLimiter returns a limiter with the given cap.
func NewOpenTimeLimiter(maxOpen dram.Picos) *OpenTimeLimiter {
	return &OpenTimeLimiter{MaxOpen: maxOpen}
}

// Clamp maps a requested row-open interval to the sequence of open
// intervals the controller will actually schedule, counting the
// inserted reopen operations.
func (l *OpenTimeLimiter) Clamp(requested dram.Picos) []dram.Picos {
	if requested <= l.MaxOpen {
		return []dram.Picos{requested}
	}
	var out []dram.Picos
	rem := requested
	for rem > l.MaxOpen {
		out = append(out, l.MaxOpen)
		rem -= l.MaxOpen
		l.ExtraActs++
	}
	if rem > 0 {
		out = append(out, rem)
	}
	return out
}

// ColumnECCPlan implements Improvement 6: distribute a fixed ECC
// correction budget across columns proportionally to their measured
// RowHammer vulnerability instead of uniformly.
type ColumnECCPlan struct {
	// CorrectPerWord[arrayCol] is the number of correctable errors per
	// 64-bit word provisioned for the column.
	CorrectPerWord []int
}

// PlanColumnECC allocates budget (total correctable bits across all
// columns, per word-row) to columns by flip count, greedily assigning
// extra correction capability to the most vulnerable columns. Every
// column receives at least baseCorrect.
func PlanColumnECC(flipCounts []int, budget, baseCorrect int) ColumnECCPlan {
	n := len(flipCounts)
	plan := ColumnECCPlan{CorrectPerWord: make([]int, n)}
	for i := range plan.CorrectPerWord {
		plan.CorrectPerWord[i] = baseCorrect
	}
	// Greedy: repeatedly strengthen the column with the highest
	// remaining exposure (flips / (correct+1)).
	for b := 0; b < budget; b++ {
		best, bestScore := -1, -1.0
		for c := 0; c < n; c++ {
			score := float64(flipCounts[c]) / float64(plan.CorrectPerWord[c]+1)
			if score > bestScore {
				best, bestScore = c, score
			}
		}
		if best < 0 || bestScore == 0 {
			break
		}
		plan.CorrectPerWord[best]++
	}
	return plan
}

// UncorrectedExposure estimates the expected number of uncorrectable
// column-words under the plan: a column with k flips spread over its
// rows and c correction capability leaves max(0, k−c·rows′) exposure;
// we use the simpler proxy k/(c+1), matching the greedy objective.
func (p ColumnECCPlan) UncorrectedExposure(flipCounts []int) float64 {
	total := 0.0
	for c, k := range flipCounts {
		total += float64(k) / float64(p.CorrectPerWord[c]+1)
	}
	return total
}

// UniformECCPlan distributes the same total budget uniformly.
func UniformECCPlan(n, budget, baseCorrect int) ColumnECCPlan {
	plan := ColumnECCPlan{CorrectPerWord: make([]int, n)}
	extra := 0
	if n > 0 {
		extra = budget / n
	}
	for i := range plan.CorrectPerWord {
		plan.CorrectPerWord[i] = baseCorrect + extra
	}
	return plan
}
