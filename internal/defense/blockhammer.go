package defense

import (
	"rowhammer/internal/dram"
	"rowhammer/internal/rng"
)

// BlockHammer (Yağlıkçı et al., HPCA 2021) blacklists rapidly
// activated rows using dual counting Bloom filters and throttles their
// activation rate so no row can reach HCfirst within a refresh window.
// Unlike refresh-based defenses it never touches the DRAM array.
type BlockHammer struct {
	// Threshold is the CBF estimate at which a row is blacklisted.
	Threshold int64
	// Delay is the minimum allowed activation-to-activation time for
	// blacklisted rows.
	Delay dram.Picos
	// Counters is the CBF size; Hashes the number of hash functions.
	Counters int
	Hashes   int
	// WindowP is the filter-rotation period (half the refresh window).
	WindowP dram.Picos

	filters    [2]cbf
	activeAt   dram.Picos // time the active filter was last rotated
	seed       uint64
	historical map[int]dram.Picos // last activation time of blacklisted rows
}

// cbf is one counting Bloom filter.
type cbf struct {
	counts []int64
}

// NewBlockHammer builds a BlockHammer instance.
func NewBlockHammer(threshold int64, delay dram.Picos, counters, hashes int, window dram.Picos, seed uint64) *BlockHammer {
	b := &BlockHammer{
		Threshold:  threshold,
		Delay:      delay,
		Counters:   counters,
		Hashes:     hashes,
		WindowP:    window,
		seed:       seed,
		historical: make(map[int]dram.Picos),
	}
	for i := range b.filters {
		b.filters[i].counts = make([]int64, counters)
	}
	return b
}

// Name implements Mechanism.
func (b *BlockHammer) Name() string { return "BlockHammer" }

// indexes returns the CBF counter indexes of a row.
func (b *BlockHammer) indexes(bank, row int) []int {
	out := make([]int, b.Hashes)
	for h := 0; h < b.Hashes; h++ {
		out[h] = int(rng.Hash64(b.seed, uint64(bank), uint64(row), uint64(h)) % uint64(b.Counters))
	}
	return out
}

// estimate returns the CBF count estimate (minimum over hashes) in the
// active filter.
func (b *BlockHammer) estimate(f *cbf, idx []int) int64 {
	min := int64(-1)
	for _, i := range idx {
		if min < 0 || f.counts[i] < min {
			min = f.counts[i]
		}
	}
	return min
}

// ObserveBulk implements Mechanism. Blacklisted rows accrue a
// throttle delay proportional to how many of the n activations
// happened while blacklisted.
func (b *BlockHammer) ObserveBulk(bank, row int, n int64, now dram.Picos) Action {
	if n <= 0 {
		return Action{}
	}
	// Rotate filters at window boundaries.
	if b.WindowP > 0 {
		for now-b.activeAt >= b.WindowP {
			b.activeAt += b.WindowP
			b.filters[0], b.filters[1] = b.filters[1], b.filters[0]
			for i := range b.filters[0].counts {
				b.filters[0].counts[i] = 0
			}
		}
	}
	idx := b.indexes(bank, row)
	before := b.estimate(&b.filters[0], idx)
	for _, i := range idx {
		b.filters[0].counts[i] += n
	}
	after := before + n

	var act Action
	if after >= b.Threshold {
		// Activations beyond the blacklist point must be spaced by
		// Delay each.
		over := after - b.Threshold
		if over > n {
			over = n
		}
		act.ThrottleDelay = dram.Picos(over) * b.Delay
	}
	return act
}

// Blacklisted reports whether a row currently exceeds the threshold.
func (b *BlockHammer) Blacklisted(bank, row int) bool {
	return b.estimate(&b.filters[0], b.indexes(bank, row)) >= b.Threshold
}

// Reset implements Mechanism.
func (b *BlockHammer) Reset() {
	for i := range b.filters {
		for j := range b.filters[i].counts {
			b.filters[i].counts[j] = 0
		}
	}
	b.activeAt = 0
}

// SafeDelay returns the throttle delay that makes reaching hcFirst
// activations impossible within the refresh window tREFW: spacing
// activations of a blacklisted row by at least tREFW/hcFirst.
func SafeDelay(hcFirst int64, trefw dram.Picos) dram.Picos {
	if hcFirst <= 0 {
		return trefw
	}
	return trefw / dram.Picos(hcFirst)
}
