package defense

import (
	"fmt"

	rh "rowhammer"
	"rowhammer/internal/dram"
	"rowhammer/internal/softmc"
)

// EvalConfig describes one attack-vs-defense run: a double-sided
// attack of up to Hammers pairs against a victim, with the mechanism
// observing the activation stream in ChunkSize batches (the
// controller-side vantage point).
//
// The harness, like the mechanisms it evaluates, works in physical row
// space: deployed trackers assume knowledge of the DRAM-internal
// mapping (as BlockHammer and Graphene do).
type EvalConfig struct {
	Bench      *rh.Bench
	Mechanism  Mechanism
	Bank       int
	VictimPhys int
	Hammers    int64
	// ChunkSize is the observation batch (default 512 hammer pairs).
	ChunkSize int64
	Pattern   rh.PatternKind
	// AggOnNs optionally extends the aggressor open time (attack
	// Improvement 3); zero means tRAS.
	AggOnNs float64
	Trial   uint64
	// AutoRefresh models the periodic refresh of a deployed system:
	// whenever the attack's elapsed time crosses a tREFW boundary, the
	// victim rows are refreshed (restoring their charge). Throttling
	// defenses rely on this: stretching the attack beyond tREFW makes
	// it fail. Characterization (§4.2) runs without it.
	AutoRefresh bool
}

// EvalResult reports the outcome.
type EvalResult struct {
	// VictimFlips is the number of bit flips the attack achieved.
	VictimFlips int
	// PreventiveRefreshes counts mitigation refreshes issued.
	PreventiveRefreshes int64
	// ThrottleDelay is the total delay the mechanism imposed.
	ThrottleDelay dram.Picos
	// Duration is the wall-clock (DRAM time) cost of the attack,
	// including throttling.
	Duration dram.Picos
	// RefreshWindows counts tREFW boundaries crossed (AutoRefresh).
	RefreshWindows int64
}

// Evaluate runs a double-sided attack against a defended module.
// A nil mechanism evaluates the undefended baseline.
func Evaluate(cfg EvalConfig) (EvalResult, error) {
	if cfg.Bench == nil {
		return EvalResult{}, fmt.Errorf("defense: EvalConfig.Bench required")
	}
	if cfg.ChunkSize <= 0 {
		cfg.ChunkSize = 512
	}
	t := rh.NewTester(cfg.Bench)
	if err := t.InitPattern(cfg.Bank, cfg.VictimPhys, cfg.Pattern); err != nil {
		return EvalResult{}, err
	}
	cfg.Bench.Model.SetSalt(cfg.Trial)
	defer cfg.Bench.Model.SetSalt(0)

	tm := cfg.Bench.Timing()
	aggOn := tm.TRAS
	if cfg.AggOnNs > 0 {
		aggOn = dram.PicosFromNs(cfg.AggOnNs)
	}
	aggressors := []int{cfg.VictimPhys - 1, cfg.VictimPhys + 1}
	logicalAggs := []int{t.LogicalRow(cfg.VictimPhys - 1), t.LogicalRow(cfg.VictimPhys + 1)}
	ex := cfg.Bench.Exec
	start := ex.Now()

	var res EvalResult
	nextRefresh := start + tm.TREFW
	issued := int64(0)
	for issued < cfg.Hammers {
		chunk := cfg.ChunkSize
		if issued+chunk > cfg.Hammers {
			chunk = cfg.Hammers - issued
		}
		bld := softmc.NewBuilder(tm.TCK)
		bld.Hammer(cfg.Bank, logicalAggs, chunk, aggOn, tm.TRP)
		if _, err := ex.Run(bld.Program()); err != nil {
			return res, err
		}
		issued += chunk

		if cfg.Mechanism != nil {
			for _, agg := range aggressors {
				act := cfg.Mechanism.ObserveBulk(cfg.Bank, agg, chunk, ex.Now())
				if len(act.RefreshRows) > 0 {
					rb := softmc.NewBuilder(tm.TCK)
					for _, r := range act.RefreshRows {
						if r < 0 || r >= cfg.Bench.Geometry().RowsPerBank {
							continue
						}
						rb.Act(cfg.Bank, t.LogicalRow(r)).Wait(tm.TRAS).Pre(cfg.Bank).Wait(tm.TRP)
						res.PreventiveRefreshes++
					}
					if _, err := ex.Run(rb.Program()); err != nil {
						return res, err
					}
				}
				if act.ThrottleDelay > 0 {
					res.ThrottleDelay += act.ThrottleDelay
					ex.AdvanceTo(ex.Now() + act.ThrottleDelay)
				}
			}
		}

		if cfg.AutoRefresh && ex.Now() >= nextRefresh {
			// Periodic refresh restores the victim neighborhood.
			rb := softmc.NewBuilder(tm.TCK)
			for off := -2; off <= 2; off++ {
				r := cfg.VictimPhys + off
				if r < 0 || r >= cfg.Bench.Geometry().RowsPerBank {
					continue
				}
				rb.Act(cfg.Bank, t.LogicalRow(r)).Wait(tm.TRAS).Pre(cfg.Bank).Wait(tm.TRP)
			}
			if _, err := ex.Run(rb.Program()); err != nil {
				return res, err
			}
			res.RefreshWindows++
			for ex.Now() >= nextRefresh {
				nextRefresh += tm.TREFW
			}
			if cfg.Mechanism != nil {
				cfg.Mechanism.Reset()
			}
		}
	}

	flips, err := t.ReadFlips(cfg.Bank, cfg.VictimPhys, cfg.VictimPhys, cfg.Pattern)
	if err != nil {
		return res, err
	}
	res.VictimFlips = flips.Count()
	res.Duration = ex.Now() - start
	return res, nil
}
