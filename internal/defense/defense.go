// Package defense implements the RowHammer mitigation mechanisms the
// paper's §8.2 improvements build on — PARA, Graphene, BlockHammer,
// controller-side RFM — plus the six defense improvements themselves:
// row-aware threshold configuration, subarray-sampled profiling
// support, temperature-aware row retirement, cooling, open-time
// limiting, and column-aware ECC provisioning.
//
// Defenses are memory-controller-side observers of the activation
// stream. To compose with the simulator's bulk-hammer fast path, they
// observe activations in batches (ObserveBulk); per-activation
// semantics are recovered exactly for counter mechanisms and
// statistically for probabilistic ones.
package defense

import "rowhammer/internal/dram"

// Action is what a defense demands after observing activations.
type Action struct {
	// RefreshRows are physical neighbor rows the controller must
	// preventively refresh (activate) now.
	RefreshRows []int
	// ThrottleDelay is extra delay the controller must insert before
	// the *next* activation of the observed row (BlockHammer-style
	// blacklisting).
	ThrottleDelay dram.Picos
}

// Mechanism is a controller-side RowHammer defense.
type Mechanism interface {
	// Name identifies the mechanism.
	Name() string
	// ObserveBulk records n consecutive activations of a physical row
	// in a bank ending at time now, returning any demanded action.
	ObserveBulk(bank, row int, n int64, now dram.Picos) Action
	// Reset clears all tracking state (e.g. at a refresh-window
	// boundary).
	Reset()
}

// neighbors returns the blast-radius rows of an aggressor, clipped to
// the row range.
func neighbors(row, rows int) []int {
	var out []int
	for _, n := range []int{row - 2, row - 1, row + 1, row + 2} {
		if n >= 0 && n < rows {
			out = append(out, n)
		}
	}
	return out
}
