package defense

import "rowhammer/internal/dram"

// SilverBullet (Devaux & Ayrignac patent; analyzed by Yağlıkçı et al.)
// is an on-DRAM-die defense enabled by the DDR5 RFM interface (§2.3):
// the DRAM die keeps a small queue of recently activated rows and,
// every time the memory controller issues an RFM (which it must after
// RAAIMT activations), refreshes the neighbors of the queue's head.
// Because the controller-side RAA counter bounds how many activations
// can happen between RFMs, the queue depth needed for a deterministic
// guarantee is small.
type SilverBullet struct {
	// QueueDepth bounds the tracked aggressor queue.
	QueueDepth int
	// Rows is the bank's row count.
	Rows int

	queue []int
	seen  map[int]bool
	// Refreshed counts neighbor refreshes performed at RFM time.
	Refreshed int64
	// Overflowed counts activations dropped because the queue was
	// full — non-zero means the RAAIMT/QueueDepth pairing is unsafe.
	Overflowed int64
}

// NewSilverBullet builds the on-die mechanism.
func NewSilverBullet(queueDepth, rows int) *SilverBullet {
	return &SilverBullet{
		QueueDepth: queueDepth,
		Rows:       rows,
		seen:       make(map[int]bool),
	}
}

// Observe records an activated row into the on-die queue
// (deduplicated: a queued row need not be queued twice).
func (sb *SilverBullet) Observe(row int) {
	if sb.seen[row] {
		return
	}
	if len(sb.queue) >= sb.QueueDepth {
		sb.Overflowed++
		return
	}
	sb.queue = append(sb.queue, row)
	sb.seen[row] = true
}

// OnRFM pops queued aggressors and returns the neighbor rows the die
// refreshes during the RFM's maintenance slot (budget rows per RFM).
func (sb *SilverBullet) OnRFM(budget int) []int {
	var victims []int
	for i := 0; i < budget && len(sb.queue) > 0; i++ {
		row := sb.queue[0]
		sb.queue = sb.queue[1:]
		delete(sb.seen, row)
		victims = append(victims, neighbors(row, sb.Rows)...)
	}
	sb.Refreshed += int64(len(victims))
	return victims
}

// QueueLen returns the live queue length.
func (sb *SilverBullet) QueueLen() int { return len(sb.queue) }

// RFMSilverBullet wires a controller-side RFM counter to an on-die
// SilverBullet instance per bank, yielding a complete §2.3-style
// system: the controller counts, the die refreshes.
type RFMSilverBullet struct {
	rfm *RFM
	sb  map[int]*SilverBullet
	// PerRFMBudget is how many queued aggressors each RFM drains.
	PerRFMBudget int
	rows         int
	// pending accumulates victims to refresh, keyed by bank.
	pending map[int][]int
}

// NewRFMSilverBullet builds the combined mechanism. raaimt is the
// controller's RFM threshold.
func NewRFMSilverBullet(raaimt int64, queueDepth, perRFMBudget, rows int) *RFMSilverBullet {
	rs := &RFMSilverBullet{
		sb:           make(map[int]*SilverBullet),
		PerRFMBudget: perRFMBudget,
		rows:         rows,
		pending:      make(map[int][]int),
	}
	rs.rfm = NewRFM(raaimt, func(bank int, now dram.Picos) {
		if die := rs.sb[bank]; die != nil {
			rs.pending[bank] = append(rs.pending[bank], die.OnRFM(perRFMBudget)...)
		}
	})
	return rs
}

// Name implements Mechanism.
func (rs *RFMSilverBullet) Name() string { return "RFM+SilverBullet" }

// ObserveBulk implements Mechanism.
func (rs *RFMSilverBullet) ObserveBulk(bank, row int, n int64, now dram.Picos) Action {
	die := rs.sb[bank]
	if die == nil {
		die = NewSilverBullet(32, rs.rows)
		rs.sb[bank] = die
	}
	die.Observe(row)
	rs.rfm.ObserveBulk(bank, row, n, now)
	var act Action
	if v := rs.pending[bank]; len(v) > 0 {
		act.RefreshRows = v
		rs.pending[bank] = nil
	}
	return act
}

// Reset implements Mechanism.
func (rs *RFMSilverBullet) Reset() {
	rs.rfm.Reset()
	rs.sb = make(map[int]*SilverBullet)
	rs.pending = make(map[int][]int)
}

// RFMCount returns the number of RFM commands issued (performance
// proxy: each blocks the bank for ~tRFC).
func (rs *RFMSilverBullet) RFMCount() int64 { return rs.rfm.RFMCount }
