package defense

import (
	"rowhammer/internal/dram"
	"rowhammer/internal/sched"
)

// BenignOverhead replays a benign memory-request stream through a
// mechanism and tallies the mitigation activity it triggers on
// non-attack traffic — the false-positive cost side of every tracker's
// design space (Defense Improvement 1 trades this against area).
//
// The request stream is reduced to its activation stream with an
// open-page policy: a request activates its row only when the row is
// not already open in its bank.
type BenignOverheadResult struct {
	Activations         int64
	PreventiveRefreshes int64
	ThrottleDelay       dram.Picos
	// RefreshRate is refreshes per activation.
	RefreshRate float64
}

// BenignOverhead runs the replay. A nil mechanism returns the
// activation count only.
func BenignOverhead(m Mechanism, reqs []sched.Request) BenignOverheadResult {
	var res BenignOverheadResult
	openRow := map[int]int{}
	for _, rq := range reqs {
		if row, ok := openRow[rq.Bank]; ok && row == rq.Row {
			continue // row hit: no activation
		}
		openRow[rq.Bank] = rq.Row
		res.Activations++
		if m == nil {
			continue
		}
		act := m.ObserveBulk(rq.Bank, rq.Row, 1, rq.Arrival)
		res.PreventiveRefreshes += int64(len(act.RefreshRows))
		res.ThrottleDelay += act.ThrottleDelay
	}
	if res.Activations > 0 {
		res.RefreshRate = float64(res.PreventiveRefreshes) / float64(res.Activations)
	}
	return res
}
