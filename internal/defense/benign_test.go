package defense

import (
	"math"
	"testing"

	"rowhammer/internal/dram"
	"rowhammer/internal/sched"
)

func benignStream(seed uint64) []sched.Request {
	return sched.Generate(sched.WorkloadConfig{
		Requests: 50_000, Banks: 4, Rows: 4096, Cols: 64,
		Locality: 0.7, InterArrival: dram.PicosFromNs(40), Seed: seed,
	})
}

func TestBenignOverheadBaselineActivations(t *testing.T) {
	reqs := benignStream(1)
	res := BenignOverhead(nil, reqs)
	if res.Activations == 0 || res.Activations > int64(len(reqs)) {
		t.Fatalf("activations = %d of %d requests", res.Activations, len(reqs))
	}
	// ~70% locality ⇒ roughly 30% of requests activate.
	frac := float64(res.Activations) / float64(len(reqs))
	if frac < 0.15 || frac > 0.5 {
		t.Fatalf("activation fraction %.2f implausible for 0.7 locality", frac)
	}
}

func TestPARABenignOverheadMatchesProbability(t *testing.T) {
	reqs := benignStream(2)
	p := 0.02
	para := NewPARA(p, 4096, 5)
	res := BenignOverhead(para, reqs)
	if math.Abs(res.RefreshRate-p) > 0.01 {
		t.Fatalf("PARA benign refresh rate %.4f, want ≈%.2f", res.RefreshRate, p)
	}
}

func TestGrapheneBenignOverheadNearZero(t *testing.T) {
	reqs := benignStream(3)
	g := NewGraphene(10_000, 256, 4096)
	res := BenignOverhead(g, reqs)
	// Benign rows never approach a 10K threshold in this stream.
	if res.PreventiveRefreshes != 0 {
		t.Fatalf("Graphene refreshed %d times on benign traffic", res.PreventiveRefreshes)
	}
}

func TestBlockHammerBenignNoThrottling(t *testing.T) {
	reqs := benignStream(4)
	bh := NewBlockHammer(10_000, dram.PicosFromNs(2000), 8192, 4, 64*dram.Millisecond, 5)
	res := BenignOverhead(bh, reqs)
	if res.ThrottleDelay != 0 {
		t.Fatalf("BlockHammer throttled benign traffic by %v", res.ThrottleDelay)
	}
}

func TestTrackerOverheadOrdering(t *testing.T) {
	// The classic trade-off: PARA (stateless) pays refresh bandwidth on
	// every activation; deterministic trackers pay ~nothing on benign
	// streams.
	reqs := benignStream(6)
	para := BenignOverhead(NewPARA(PARAProbability(10_000, 1e-15), 4096, 7), reqs)
	graphene := BenignOverhead(NewGraphene(10_000, 256, 4096), reqs)
	twice := BenignOverhead(NewTWiCe(10_000, 64*dram.Millisecond, 4096), reqs)
	if para.PreventiveRefreshes <= graphene.PreventiveRefreshes {
		t.Fatalf("PARA (%d) should out-refresh Graphene (%d) on benign traffic",
			para.PreventiveRefreshes, graphene.PreventiveRefreshes)
	}
	if twice.PreventiveRefreshes != 0 {
		t.Fatalf("TWiCe refreshed %d times on benign traffic", twice.PreventiveRefreshes)
	}
}
