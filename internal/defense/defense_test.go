package defense

import (
	"math"
	"testing"

	rh "rowhammer"
	"rowhammer/internal/dram"
)

func TestPARAProbability(t *testing.T) {
	p := PARAProbability(10_000, 1e-15)
	if p <= 0 || p > 1 {
		t.Fatalf("p = %v", p)
	}
	// Lower threshold demands higher probability.
	p2 := PARAProbability(1_000, 1e-15)
	if p2 <= p {
		t.Fatalf("p(1K)=%v should exceed p(10K)=%v", p2, p)
	}
	if got := PARAProbability(0, 1e-15); got != 1 {
		t.Fatalf("degenerate threshold p = %v", got)
	}
}

func TestPARARefreshRate(t *testing.T) {
	p := NewPARA(0.01, 1024, 1)
	var total int64
	const n = 200_000
	act := p.ObserveBulk(0, 500, n, 0)
	total = int64(len(act.RefreshRows))
	mean := float64(total) / n
	if math.Abs(mean-0.01) > 0.002 {
		t.Fatalf("refresh rate %v, want ≈0.01", mean)
	}
	for _, r := range act.RefreshRows {
		if r < 498 || r > 502 || r == 500 {
			t.Fatalf("refreshed row %d outside blast radius of 500", r)
		}
	}
}

func TestPARASmallBatchExact(t *testing.T) {
	p := NewPARA(1.0, 1024, 1)
	act := p.ObserveBulk(0, 10, 8, 0)
	if len(act.RefreshRows) != 8 {
		t.Fatalf("p=1 should refresh every activation, got %d/8", len(act.RefreshRows))
	}
}

func TestPARASlowdownAnchor(t *testing.T) {
	p := PARAProbability(1000, 1e-15)
	if got := PARASlowdown(p); math.Abs(got-0.28) > 1e-9 {
		t.Fatalf("anchor slowdown = %v, want 0.28", got)
	}
	if got := PARASlowdown(p / 2); math.Abs(got-0.14) > 1e-9 {
		t.Fatalf("half-probability slowdown = %v, want 0.14", got)
	}
}

func TestGrapheneDetectsHotRow(t *testing.T) {
	g := NewGraphene(1000, 8, 4096)
	var refreshes []int
	for i := 0; i < 20; i++ {
		act := g.ObserveBulk(0, 77, 100, 0)
		refreshes = append(refreshes, act.RefreshRows...)
	}
	// 2000 activations at threshold 1000 ⇒ two trigger events ⇒
	// neighbors refreshed twice.
	if len(refreshes) != 2*4 {
		t.Fatalf("refreshes = %v", refreshes)
	}
	for _, r := range refreshes {
		if r < 75 || r > 79 || r == 77 {
			t.Fatalf("refresh %d outside blast radius", r)
		}
	}
}

func TestGrapheneBulkThresholdCrossings(t *testing.T) {
	g := NewGraphene(1000, 8, 4096)
	act := g.ObserveBulk(0, 5, 3500, 0)
	// 3500 activations cross the 1000 threshold three times.
	if len(act.RefreshRows) != 3*4 {
		t.Fatalf("expected 12 refreshes, got %d", len(act.RefreshRows))
	}
}

func TestGrapheneMisraGriesGuarantee(t *testing.T) {
	// With table size >= W/T, any row activated >= T times within W
	// total activations must trigger, regardless of interleaved noise.
	const threshold = 1000
	const w = 16_000
	size := GrapheneTableSize(w, threshold)
	g := NewGraphene(threshold, size, 65536)
	triggered := false
	// Noise rows interleaved with the attack row.
	for i := 0; i < 15; i++ {
		g.ObserveBulk(0, 1000+i, w/16/2, 0)
		if act := g.ObserveBulk(0, 42, threshold/15+1, 0); len(act.RefreshRows) > 0 {
			triggered = true
		}
	}
	if !triggered {
		t.Fatal("Graphene missed a row that crossed the threshold")
	}
}

func TestGrapheneReset(t *testing.T) {
	g := NewGraphene(1000, 4, 4096)
	g.ObserveBulk(0, 7, 999, 0)
	g.Reset()
	if act := g.ObserveBulk(0, 7, 1, 0); len(act.RefreshRows) != 0 {
		t.Fatal("reset did not clear counters")
	}
	if g.TrackedRows() != 1 {
		t.Fatalf("tracked rows = %d", g.TrackedRows())
	}
}

func TestBlockHammerBlacklisting(t *testing.T) {
	window := 64 * dram.Millisecond
	bh := NewBlockHammer(1000, SafeDelay(10_000, window), 1024, 4, window, 1)
	if bh.Blacklisted(0, 9) {
		t.Fatal("fresh row blacklisted")
	}
	act := bh.ObserveBulk(0, 9, 999, 0)
	if act.ThrottleDelay != 0 {
		t.Fatalf("below threshold throttled: %v", act.ThrottleDelay)
	}
	act = bh.ObserveBulk(0, 9, 100, 0)
	if act.ThrottleDelay == 0 {
		t.Fatal("no throttle after crossing threshold")
	}
	if !bh.Blacklisted(0, 9) {
		t.Fatal("row should be blacklisted")
	}
}

func TestBlockHammerThrottleProportional(t *testing.T) {
	window := 64 * dram.Millisecond
	delay := SafeDelay(10_000, window)
	bh := NewBlockHammer(1000, delay, 1024, 4, window, 1)
	bh.ObserveBulk(0, 9, 1000, 0)
	act := bh.ObserveBulk(0, 9, 500, 0)
	if want := dram.Picos(500) * delay; act.ThrottleDelay != want {
		t.Fatalf("throttle = %v, want %v", act.ThrottleDelay, want)
	}
}

func TestBlockHammerWindowRotation(t *testing.T) {
	window := dram.Picos(1000)
	bh := NewBlockHammer(100, 10, 256, 4, window, 1)
	bh.ObserveBulk(0, 9, 150, 0)
	if !bh.Blacklisted(0, 9) {
		t.Fatal("should be blacklisted in first window")
	}
	// Two windows later the filters have rotated out.
	bh.ObserveBulk(0, 50, 1, 2500)
	if bh.Blacklisted(0, 9) {
		t.Fatal("blacklist should expire after rotation")
	}
}

func TestSafeDelay(t *testing.T) {
	w := 64 * dram.Millisecond
	d := SafeDelay(32_000, w)
	// 32K activations spaced by d must take ≥ tREFW.
	if dram.Picos(32_000)*d < w {
		t.Fatalf("unsafe delay %v", d)
	}
	if SafeDelay(0, w) != w {
		t.Fatal("degenerate threshold should return full window")
	}
}

func TestRFMFiresEveryRAAIMT(t *testing.T) {
	fired := 0
	r := NewRFM(32, func(bank int, now dram.Picos) { fired++ })
	r.ObserveBulk(0, 1, 31, 0)
	if fired != 0 {
		t.Fatal("fired early")
	}
	r.ObserveBulk(0, 2, 1, 0)
	if fired != 1 {
		t.Fatalf("fired = %d, want 1", fired)
	}
	r.ObserveBulk(0, 3, 96, 0)
	if fired != 4 {
		t.Fatalf("fired = %d, want 4 after 128 total", fired)
	}
	if r.RFMCount != 4 {
		t.Fatalf("RFMCount = %d", r.RFMCount)
	}
	r.Reset()
	r.ObserveBulk(1, 1, 31, 0)
	if fired != 4 {
		t.Fatal("reset did not clear RAA")
	}
}

func TestAreaModelsMatchPaperAnchors(t *testing.T) {
	// Baselines at the worst-case threshold.
	if g := GrapheneArea(10_000); math.Abs(g-0.005) > 1e-9 {
		t.Fatalf("Graphene baseline = %v", g)
	}
	if b := BlockHammerArea(10_000); math.Abs(b-0.006) > 1e-9 {
		t.Fatalf("BlockHammer baseline = %v", b)
	}
	cfg := RowAwareConfig{
		WeakRowFraction: 0.05,
		ThresholdWeak:   10_000,
		ThresholdStrong: 20_000,
		RowsPerBank:     65536,
	}
	gRed := AreaReduction(GrapheneArea(10_000), RowAwareGrapheneArea(cfg))
	if gRed < 0.7 || gRed > 0.9 {
		t.Fatalf("Graphene row-aware reduction = %v, want ≈0.8", gRed)
	}
	bRed := AreaReduction(BlockHammerArea(10_000), RowAwareBlockHammerArea(cfg))
	if bRed < 0.25 || bRed > 0.4 {
		t.Fatalf("BlockHammer row-aware reduction = %v, want ≈0.33", bRed)
	}
}

func TestRetirementPolicyTemperatureAware(t *testing.T) {
	p := NewRetirementPolicy()
	p.AddCellRange(10, 70, 90)
	p.AddCellRange(20, 50, 55)
	p.AddCellRange(20, 80, 85)
	cold := p.RetiredRows(52, 0)
	if len(cold) != 1 || cold[0] != 20 {
		t.Fatalf("retired at 52 °C: %v", cold)
	}
	hot := p.RetiredRows(85, 0)
	if len(hot) != 2 {
		t.Fatalf("retired at 85 °C: %v", hot)
	}
	mid := p.RetiredRows(62, 0)
	if len(mid) != 0 {
		t.Fatalf("retired at 62 °C: %v", mid)
	}
	// Guard band pulls nearby ranges in.
	guarded := p.RetiredRows(62, 10)
	if len(guarded) != 2 {
		t.Fatalf("retired at 62±10 °C: %v", guarded)
	}
	if p.ProfiledRows() != 2 {
		t.Fatalf("profiled rows = %d", p.ProfiledRows())
	}
}

func TestOpenTimeLimiter(t *testing.T) {
	l := NewOpenTimeLimiter(dram.PicosFromNs(50))
	short := l.Clamp(dram.PicosFromNs(40))
	if len(short) != 1 || short[0] != dram.PicosFromNs(40) {
		t.Fatalf("short clamp = %v", short)
	}
	long := l.Clamp(dram.PicosFromNs(160))
	var sum dram.Picos
	for _, p := range long {
		if p > dram.PicosFromNs(50) {
			t.Fatalf("segment %v exceeds cap", p)
		}
		sum += p
	}
	if sum != dram.PicosFromNs(160) {
		t.Fatalf("segments sum to %v", sum)
	}
	if l.ExtraActs != 3 {
		t.Fatalf("extra activations = %d, want 3", l.ExtraActs)
	}
}

func TestColumnAwareECCBeatsUniform(t *testing.T) {
	// A heavy-tailed column flip profile (like Fig. 12's).
	flips := make([]int, 64)
	for i := range flips {
		flips[i] = 1
	}
	flips[3] = 120
	flips[40] = 95
	flips[41] = 80
	const budget = 12
	aware := PlanColumnECC(flips, budget, 1)
	uniform := UniformECCPlan(len(flips), budget, 1)
	ea := aware.UncorrectedExposure(flips)
	eu := uniform.UncorrectedExposure(flips)
	if ea >= eu {
		t.Fatalf("column-aware exposure %v >= uniform %v", ea, eu)
	}
	// Budget conserved.
	sum := 0
	for _, c := range aware.CorrectPerWord {
		sum += c - 1
	}
	if sum != budget {
		t.Fatalf("aware plan used %d of %d budget", sum, budget)
	}
}

func newEvalBench(t *testing.T, seed uint64) *rh.Bench {
	t.Helper()
	b, err := rh.NewBench(rh.BenchConfig{
		Profile: rh.ProfileByName("A"),
		Seed:    seed,
		Geometry: rh.Geometry{
			Banks: 1, RowsPerBank: 256, SubarrayRows: 256,
			Chips: 8, ChipWidth: 8, ColumnsPerRow: 64,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestEvaluateUndefendedBaselineFlips(t *testing.T) {
	b := newEvalBench(t, 3)
	res, err := Evaluate(EvalConfig{
		Bench: b, Bank: 0, VictimPhys: 100, Hammers: 300_000,
		Pattern: rh.PatCheckered, Trial: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.VictimFlips == 0 {
		t.Fatal("undefended attack should flip bits")
	}
	if res.PreventiveRefreshes != 0 || res.ThrottleDelay != 0 {
		t.Fatalf("baseline should have no mitigation activity: %+v", res)
	}
}

func TestEvaluateGraphenePreventsFlips(t *testing.T) {
	b := newEvalBench(t, 3)
	// Threshold well below any HCfirst in the module.
	g := NewGraphene(8_000, 64, 256)
	res, err := Evaluate(EvalConfig{
		Bench: b, Mechanism: g, Bank: 0, VictimPhys: 100, Hammers: 300_000,
		Pattern: rh.PatCheckered, Trial: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.VictimFlips != 0 {
		t.Fatalf("Graphene-defended attack flipped %d bits", res.VictimFlips)
	}
	if res.PreventiveRefreshes == 0 {
		t.Fatal("Graphene never refreshed under attack")
	}
}

func TestEvaluateBlockHammerPreventsFlips(t *testing.T) {
	b := newEvalBench(t, 3)
	tm := b.Timing()
	bh := NewBlockHammer(8_000, SafeDelay(16_000, tm.TREFW), 4096, 4, tm.TREFW/2, 1)
	res, err := Evaluate(EvalConfig{
		Bench: b, Mechanism: bh, Bank: 0, VictimPhys: 100, Hammers: 300_000,
		Pattern: rh.PatCheckered, Trial: 1, AutoRefresh: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.VictimFlips != 0 {
		t.Fatalf("BlockHammer-defended attack flipped %d bits", res.VictimFlips)
	}
	if res.ThrottleDelay == 0 {
		t.Fatal("BlockHammer never throttled")
	}
	if res.RefreshWindows == 0 {
		t.Fatal("throttling should have stretched the attack past tREFW")
	}
}

func TestEvaluatePARAReducesFlips(t *testing.T) {
	b := newEvalBench(t, 5)
	base, err := Evaluate(EvalConfig{
		Bench: b, Bank: 0, VictimPhys: 100, Hammers: 300_000,
		Pattern: rh.PatCheckered, Trial: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	b2 := newEvalBench(t, 5)
	p := NewPARA(PARAProbability(8_000, 1e-9), 256, 7)
	defended, err := Evaluate(EvalConfig{
		Bench: b2, Mechanism: p, Bank: 0, VictimPhys: 100, Hammers: 300_000,
		Pattern: rh.PatCheckered, Trial: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if defended.VictimFlips >= base.VictimFlips {
		t.Fatalf("PARA did not reduce flips: %d vs %d", defended.VictimFlips, base.VictimFlips)
	}
}

func TestEvaluateValidation(t *testing.T) {
	if _, err := Evaluate(EvalConfig{}); err == nil {
		t.Fatal("expected error for nil bench")
	}
}
