package defense

import "rowhammer/internal/dram"

// RFM models the DDR5/LPDDR5 Refresh Management interface (§2.3): the
// memory controller counts activations per bank (the Rolling
// Accumulated ACT counter, RAA) and must issue an RFM command when the
// count reaches RAAIMT, giving the on-DRAM-die defense time to refresh
// victims of whatever rows it sampled.
type RFM struct {
	// RAAIMT is the RAA Initial Management Threshold.
	RAAIMT int64
	// OnRFM is invoked when the controller must issue an RFM command;
	// it represents the DRAM-internal mitigation (e.g. the module's
	// TRR sampler riding on a maintenance operation).
	OnRFM func(bank int, now dram.Picos)

	raa map[int]int64
	// RFMCount tallies RFM commands issued (the overhead proxy: each
	// RFM blocks the bank for ~tRFC).
	RFMCount int64
}

// NewRFM builds an RFM counter set.
func NewRFM(raaimt int64, onRFM func(bank int, now dram.Picos)) *RFM {
	return &RFM{RAAIMT: raaimt, OnRFM: onRFM, raa: make(map[int]int64)}
}

// Name implements Mechanism.
func (r *RFM) Name() string { return "RFM" }

// ObserveBulk implements Mechanism: RFM never refreshes specific rows
// from the controller side; it fires the on-die hook every RAAIMT
// activations.
func (r *RFM) ObserveBulk(bank, row int, n int64, now dram.Picos) Action {
	r.raa[bank] += n
	for r.raa[bank] >= r.RAAIMT {
		r.raa[bank] -= r.RAAIMT
		r.RFMCount++
		if r.OnRFM != nil {
			r.OnRFM(bank, now)
		}
	}
	return Action{}
}

// Reset implements Mechanism.
func (r *RFM) Reset() {
	r.raa = make(map[int]int64)
	r.RFMCount = 0
}
