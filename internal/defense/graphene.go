package defense

import "rowhammer/internal/dram"

// Graphene (Park et al., MICRO 2020) tracks frequently activated rows
// with a Misra-Gries summary: any row activated more than the table's
// guarantee threshold is certainly present, so refreshing the
// neighbors of rows whose estimated count crosses the threshold gives
// a deterministic security guarantee.
type Graphene struct {
	// Threshold is the estimated-count value at which a tracked row's
	// neighbors are refreshed (configured from HCfirst with a safety
	// margin).
	Threshold int64
	// TableSize is the number of Misra-Gries entries; the guarantee
	// holds when TableSize ≥ W/Threshold for W activations per window.
	TableSize int
	// Rows is the bank's row count.
	Rows int

	entries   map[int]int64 // tracked row → estimated count
	spillover int64
}

// GrapheneTableSize returns the entries needed to guarantee detection
// of any row crossing threshold within a window of maxActs
// activations.
func GrapheneTableSize(maxActs, threshold int64) int {
	if threshold <= 0 {
		return 1
	}
	n := int(maxActs/threshold) + 1
	if n < 1 {
		n = 1
	}
	return n
}

// NewGraphene builds a Graphene tracker.
func NewGraphene(threshold int64, tableSize, rows int) *Graphene {
	return &Graphene{
		Threshold: threshold,
		TableSize: tableSize,
		Rows:      rows,
		entries:   make(map[int]int64, tableSize),
	}
}

// Name implements Mechanism.
func (g *Graphene) Name() string { return "Graphene" }

// ObserveBulk implements Mechanism with exact bulk Misra-Gries
// semantics: n identical activations either all increment an existing
// entry, or fill a free slot, or raise the spillover floor.
func (g *Graphene) ObserveBulk(bank, row int, n int64, now dram.Picos) Action {
	if n <= 0 {
		return Action{}
	}
	c, tracked := g.entries[row]
	switch {
	case tracked:
		c += n
	case len(g.entries) < g.TableSize:
		c = g.spillover + n
	default:
		// Misra-Gries decrement step, n times: the minimum entry and
		// the incoming row shed counts together. Bulk equivalent:
		// raise the spillover floor and displace the minimum entry if
		// the incoming count overtakes it.
		min := int64(-1)
		minRow := -1
		for r, v := range g.entries {
			if min < 0 || v < min {
				min, minRow = v, r
			}
		}
		incoming := g.spillover + n
		if incoming > min {
			delete(g.entries, minRow)
			g.spillover = min
			c = incoming
		} else {
			g.spillover += n
			return Action{}
		}
	}
	var act Action
	for c >= g.Threshold {
		act.RefreshRows = append(act.RefreshRows, neighbors(row, g.Rows)...)
		c -= g.Threshold
	}
	g.entries[row] = c
	return act
}

// Reset implements Mechanism (called at refresh-window boundaries).
func (g *Graphene) Reset() {
	g.entries = make(map[int]int64, g.TableSize)
	g.spillover = 0
}

// TrackedRows returns how many rows are currently tracked.
func (g *Graphene) TrackedRows() int { return len(g.entries) }
