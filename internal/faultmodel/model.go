package faultmodel

import (
	"fmt"
	"math"

	"rowhammer/internal/dram"
	"rowhammer/internal/rng"
)

// Reference conditions: the baseline DDR4 timings and temperature at
// which profile HCfirst values are calibrated.
const (
	refAggOnNs  = 34.5
	refAggOffNs = 16.5
	refTempC    = 50.0
)

// Distance weights: a double-sided victim receives one unit of
// effective hammering per hammer (two distance-1 activations × 0.5);
// distance-2 aggression has a small residual effect.
const (
	weightDist1 = 0.5
	weightDist2 = 0.02
)

// Hash stream discriminators (arbitrary distinct constants).
const (
	keyRow       = 0x1001
	keyRowU      = 0x1002
	keyRowInf    = 0x1003
	keyCellMult1 = 0x2001
	keyCellMult2 = 0x2002
	keyCellRange = 0x2003
	keyCellGapU  = 0x2004
	keyCellGapT  = 0x2005
	keyColDesign = 0x3001
	keyColProc   = 0x3002
	keyModule    = 0x4001
	keyNoise1    = 0x5001
	keyNoise2    = 0x5002
)

// trialNoiseSigma is the lognormal sigma of per-measurement threshold
// noise applied when a non-zero salt is set (models run-to-run
// variation; the paper repeats each test five times and keeps the
// minimum HCfirst).
const trialNoiseSigma = 0.04

// trialNoiseZMax truncates the trial-noise deviate to ±4σ. The bound
// makes the noise factor range [exp(-σ·4), exp(σ·4)] ≈ [0.85, 1.17],
// which gives the candidate walk a finite threshold-cutoff inflation;
// an unbounded Box-Muller draw (|z| up to ~37 at the Uniform01
// resolution) would force the walk to visit essentially every cell.
// Only ~6e-5 of draws are affected by the truncation.
const trialNoiseZMax = 4.0

// trialNoiseFloor/Ceil bound every possible trialNoiseFactor value,
// padded by a relative epsilon so the bounds stay conservative even if
// math.Exp is not perfectly monotone at the truncation boundary. The
// kernel walk uses them to decide unambiguous cells without paying for
// the Box-Muller draw; cells inside the band get the exact factor.
var (
	trialNoiseFloor = math.Exp(-trialNoiseSigma*trialNoiseZMax) * (1 - 1e-12)
	trialNoiseCeil  = math.Exp(trialNoiseSigma*trialNoiseZMax) * (1 + 1e-12)
)

// minCellMult and minColFactor clamp the threshold factors from below,
// giving the early-out bound a hard floor and keeping the Fig. 11 row
// quantile calibration intact (without the clamp, the global minimum
// over millions of Pareto draws would fall far below the anchored
// per-row minimum).
const (
	minCellMult  = 0.6
	minColFactor = 0.35
)

// Config configures a Model for one module.
type Config struct {
	Profile *Profile
	// ModuleSeed identifies the module: process variation (row, cell,
	// per-chip column factors, module base HC) derives from it.
	ModuleSeed uint64
	Geometry   dram.Geometry
}

// Model implements dram.Disturber with the calibrated per-cell
// parametric RowHammer model. A Model belongs to exactly one module
// and is not safe for concurrent use.
type Model struct {
	p      *Profile
	seed   uint64
	geo    dram.Geometry
	baseHC float64

	// colFactor[chip][arrayCol]: per-column threshold multipliers.
	colFactor [][]float64
	// tempCum is the cumulative probability of p.TempClusters.
	tempCum []float64

	rowCache map[uint64]rowParams
	// candCache memoizes per-(bank,row) candidate-cell sets, the
	// threshold-sorted working set of the disturb kernel (kernel.go).
	// Sharded and lock-protected; may be shared between the models of
	// cloned benches (ShareKernelCache).
	candCache *candLRU
	// replay memoizes whole disturb evaluations by exact input
	// (replay.go); per-model, unlocked.
	replay *replayCache

	salt uint64
	// batchSalts is the declared trial batch (SetTrialSalts): every
	// salt the enclosing repetition loop will run, so one walk can
	// evaluate them all.
	batchSalts []uint64
	soloSalt   [1]uint64

	// Walk scratch, reused across Disturb calls (zero-alloc steady
	// state): maskArena backs walkMasks, one row-sized bitplane per
	// salt of the current batch.
	maskArena []uint64
	walkMasks [][]uint64
	walkFlips []int
}

type rowParams struct {
	hc   float64 // row base HCfirst at reference conditions
	tinf float64 // temperature inflection point (max vulnerability)
}

// NewModel builds the fault model for one module.
func NewModel(cfg Config) (*Model, error) {
	if cfg.Profile == nil {
		return nil, fmt.Errorf("faultmodel: nil profile")
	}
	if err := cfg.Geometry.Validate(); err != nil {
		return nil, err
	}
	if cfg.Profile.TailAlpha <= 0 || cfg.Profile.VulnFrac <= 0 || cfg.Profile.VulnFrac > 1 {
		return nil, fmt.Errorf("faultmodel: profile %s has invalid tail parameters", cfg.Profile.Name)
	}
	m := &Model{
		p:         cfg.Profile,
		seed:      cfg.ModuleSeed,
		geo:       cfg.Geometry,
		rowCache:  make(map[uint64]rowParams),
		candCache: newCandLRU(candCacheBudgetBytes),
		replay:    newReplayCache(),
	}

	// Module-level base HCfirst: lognormal module-to-module variation.
	z := rng.NormalFromHash(
		rng.Hash64(m.seed, keyModule, 1),
		rng.Hash64(m.seed, keyModule, 2),
	)
	m.baseHC = cfg.Profile.BaseHC * math.Exp(cfg.Profile.ModuleSigma*z)

	// Per-column factors: design component shared across chips (and
	// modules of the same manufacturer); process component per
	// (module, chip).
	designKey := rng.Hash64(uint64(len(cfg.Profile.Name)), uint64(cfg.Profile.Name[0]), keyColDesign)
	arrayCols := m.geo.ChipRowBits()
	wp := cfg.Profile.ColProcessWeight
	m.colFactor = make([][]float64, m.geo.Chips)
	for chip := range m.colFactor {
		m.colFactor[chip] = make([]float64, arrayCols)
		for c := 0; c < arrayCols; c++ {
			zd := rng.NormalFromHash(
				rng.Hash64(designKey, uint64(c), 1),
				rng.Hash64(designKey, uint64(c), 2),
			)
			zp := rng.NormalFromHash(
				rng.Hash64(m.seed, keyColProc, uint64(chip), uint64(c), 1),
				rng.Hash64(m.seed, keyColProc, uint64(chip), uint64(c), 2),
			)
			zc := math.Sqrt(1-wp)*zd + math.Sqrt(wp)*zp
			f := math.Exp(cfg.Profile.ColSigma * zc)
			if f < minColFactor {
				f = minColFactor
			}
			m.colFactor[chip][c] = f
		}
	}

	// Cumulative temperature-cluster distribution.
	total := 0.0
	for _, c := range cfg.Profile.TempClusters {
		total += c.Prob
	}
	if total <= 0 {
		return nil, fmt.Errorf("faultmodel: profile %s has no temperature clusters", cfg.Profile.Name)
	}
	m.tempCum = make([]float64, len(cfg.Profile.TempClusters))
	run := 0.0
	for i, c := range cfg.Profile.TempClusters {
		run += c.Prob / total
		m.tempCum[i] = run
	}
	return m, nil
}

// Profile returns the manufacturer profile backing the model.
func (m *Model) Profile() *Profile { return m.p }

// ModuleBaseHC returns the module's most-vulnerable-row HCfirst at
// reference conditions.
func (m *Model) ModuleBaseHC() float64 { return m.baseHC }

// SetSalt sets the measurement-noise salt. Salt 0 disables noise; any
// other value yields an independent, deterministic noise realization
// (one per test repetition).
func (m *Model) SetSalt(salt uint64) { m.salt = salt }

// SetTrialSalts declares the full set of salts an enclosing repetition
// loop will run (e.g. 1..R for a min-of-R policy). When the current
// salt is a member, each kernel walk evaluates every declared salt at
// once and caches the per-salt flip bitplanes, so later trials over
// the same hammer program replay instead of re-walking. Nil or empty
// reverts to single-salt walks. Purely an evaluation-order hint:
// results are bit-identical either way.
func (m *Model) SetTrialSalts(salts []uint64) {
	m.batchSalts = append(m.batchSalts[:0], salts...)
}

// ShareKernelCache attaches this model to src's candidate-set cache.
// Candidate sets are pure functions of (profile, module seed,
// geometry), so sharing is only valid between models with identical
// identity — cloned measurement cores of one bench — and lets
// parallel cores stop rebuilding each other's rows. The sharded cache
// is safe for concurrent use; each model itself remains
// single-goroutine.
func (m *Model) ShareKernelCache(src *Model) error {
	if m.seed != src.seed || m.p.Name != src.p.Name || m.geo != src.geo {
		return fmt.Errorf("faultmodel: cannot share kernel cache across different module identities")
	}
	m.candCache = src.candCache
	return nil
}

// rowParamsFor returns (caching) the per-row parameters.
func (m *Model) rowParamsFor(bank, row int) rowParams {
	key := uint64(bank)<<32 | uint64(uint32(row))
	if rp, ok := m.rowCache[key]; ok {
		return rp
	}
	h := rng.Hash64(m.seed, keyRow, uint64(bank), uint64(row))
	u := rng.Uniform01(rng.Hash64(h, keyRowU))
	rp := rowParams{
		hc: m.baseHC * m.p.RowMultiplier(u),
		tinf: rng.UniformRange(rng.Hash64(h, keyRowInf),
			m.p.InflectionLoC, m.p.InflectionHiC),
	}
	m.rowCache[key] = rp
	return rp
}

// tempFactor returns the disturbance-effectiveness multiplier at
// temperature T for a row with inflection point tinf.
func (m *Model) tempFactor(tempC, tinf float64) float64 {
	trend := math.Exp(m.p.TempSlope * (tempC - refTempC))
	d := (tempC - tinf) / 40
	inflect := 1 - m.p.InflectionCurvature*d*d
	if inflect < 0.5 {
		inflect = 0.5
	}
	return trend * inflect
}

// onOffFactor converts average on/off times (ns) to a disturbance
// multiplier.
func (m *Model) onOffFactor(onNs, offNs float64) float64 {
	fOn := 1 + m.p.OnTimeGainPerNs*(onNs-refAggOnNs)
	if fOn < 0.2 {
		fOn = 0.2
	}
	fOff := 1 / (1 + m.p.OffTimeDecayPerNs*(offNs-refAggOffNs))
	if fOff < 0.05 {
		fOff = 0.05
	}
	if fOff > 1.5 {
		fOff = 1.5
	}
	return fOn * fOff
}

// EffectiveHammers aggregates a ledger into the model's effective
// hammer count at the recorded temperature. Exposed for tests and
// analytical defense evaluations.
func (m *Model) EffectiveHammers(led *dram.RowLedger, tinf float64) float64 {
	heff := 0.0
	weights := [dram.MaxDisturbDistance]float64{weightDist1, weightDist2}
	for di := range led.Dist {
		d := led.Dist[di]
		if d.Count == 0 {
			continue
		}
		heff += float64(d.Count) * weights[di] * m.onOffFactor(d.AvgOnNs(), d.AvgOffNs())
	}
	if heff == 0 {
		return 0
	}
	return heff * m.tempFactor(ledgerTempC(led), tinf)
}

// ledgerTempC selects the temperature a ledger's disturbance was
// recorded at: the nearest distance class that actually recorded
// activations, falling back to reference conditions for an empty
// ledger. Presence is decided by Count > 0 — an average of exactly
// 0 °C is a valid recorded temperature, not an "unset" sentinel.
func ledgerTempC(led *dram.RowLedger) float64 {
	for di := range led.Dist {
		if led.Dist[di].Count > 0 {
			return led.Dist[di].AvgTempC()
		}
	}
	return refTempC
}

// cellTempRange draws the vulnerable temperature range of a cell from
// the profile's cluster distribution. lo==50 / hi==90 are censored
// bounds: the true range extends beyond the tested window.
func (m *Model) cellTempRange(h uint64) (lo, hi float64) {
	u := rng.Uniform01(rng.Hash64(h, keyCellRange))
	for i, cum := range m.tempCum {
		if u <= cum {
			c := m.p.TempClusters[i]
			return c.LoC, c.HiC
		}
	}
	c := m.p.TempClusters[len(m.p.TempClusters)-1]
	return c.LoC, c.HiC
}

// tempInRange reports whether temperature T activates a cell with
// vulnerable range [lo, hi], honoring censoring at the tested limits
// and the cell's optional single-point gap.
func (m *Model) tempInRange(h uint64, tempC, lo, hi float64) bool {
	const margin = tempMargin
	if lo > 50 && tempC < lo-margin {
		return false
	}
	if hi < 90 && tempC > hi+margin {
		return false
	}
	// Gap cells: one interior 5 °C point of the range is skipped.
	if hi-lo >= 10 && m.p.GapProb > 0 {
		if rng.Uniform01(rng.Hash64(h, keyCellGapU)) < m.p.GapProb {
			interior := int(hi-lo)/5 - 1
			pick := int(rng.Uniform01(rng.Hash64(h, keyCellGapT)) * float64(interior))
			if pick >= interior {
				pick = interior - 1
			}
			gapT := lo + float64(5*(pick+1))
			if math.Abs(tempC-gapT) < margin {
				return false
			}
		}
	}
	return true
}

// disturbSetup computes the shared preamble of both disturb paths:
// row parameters, effective hammers, the early-out bound, and the
// gating temperature. ok is false when no cell can possibly flip.
func (m *Model) disturbSetup(ctx dram.DisturbContext) (rp rowParams, heff, tempC float64, ok bool) {
	rp = m.rowParamsFor(ctx.Bank, ctx.Row)
	heff = m.EffectiveHammers(ctx.Ledger, rp.tinf)
	if heff <= 0 {
		return rp, 0, 0, false
	}
	// Early out: no cell's threshold can be below
	// rowHC × minCellMult × minColFactor, and coupling only weakens
	// disturbance.
	if heff < rp.hc*minCellMult*minColFactor {
		return rp, 0, 0, false
	}
	return rp, heff, ledgerTempC(ctx.Ledger), true
}

// Disturb implements dram.Disturber via the memoized candidate-cell
// kernel (kernel.go): it returns the flip count and a bitplane mask
// for the module to XOR into the stored row. Repeated inputs replay a
// cached bitplane (replay.go); fresh inputs run one trial-batched walk
// over every salt declared via SetTrialSalts. The returned mask
// aliases model-owned scratch and is valid until the next call.
func (m *Model) Disturb(ctx dram.DisturbContext) (int, []uint64) {
	rp, heff, tempC, ok := m.disturbSetup(ctx)
	if !ok {
		return 0, nil
	}
	key := replayKey{bank: ctx.Bank, row: ctx.Row, led: *ctx.Ledger}
	if e := m.replay.get(key, ctx); e != nil {
		if si := saltIndex(e.salts, m.salt); si >= 0 {
			return e.flips[si], e.masks[si]
		}
	}
	salts := m.walkSalts()
	m.ensureWalkScratch(len(salts), len(ctx.Data))
	m.disturbBatch(ctx, rp, heff, tempC, salts, m.walkMasks, m.walkFlips)
	m.replay.put(key, ctx, salts, m.walkMasks, m.walkFlips)
	si := saltIndex(salts, m.salt)
	return m.walkFlips[si], m.walkMasks[si]
}

// DisturbBatch evaluates one trial-batched candidate walk directly,
// bypassing the replay cache: masks[i] (each len(ctx.Data), zeroed
// here) and flips[i] receive salt i's flip bitplane and count.
// len(masks) and len(flips) must equal len(salts). Exposed for the
// batch differential tests and benchmarks; production traffic goes
// through Disturb.
func (m *Model) DisturbBatch(ctx dram.DisturbContext, salts []uint64, masks [][]uint64, flips []int) {
	rp, heff, tempC, ok := m.disturbSetup(ctx)
	if !ok {
		for i := range masks {
			clearWords(masks[i])
			flips[i] = 0
		}
		return
	}
	m.disturbBatch(ctx, rp, heff, tempC, salts, masks, flips)
}

// walkSalts selects the salt set for one walk: the declared trial
// batch when the current salt belongs to it, else just the current
// salt.
func (m *Model) walkSalts() []uint64 {
	if saltIndex(m.batchSalts, m.salt) >= 0 {
		return m.batchSalts
	}
	m.soloSalt[0] = m.salt
	return m.soloSalt[:]
}

// ensureWalkScratch sizes the per-model walk scratch: nSalts bitplanes
// of words each, carved from one flat arena, reused call to call.
func (m *Model) ensureWalkScratch(nSalts, words int) {
	need := nSalts * words
	if cap(m.maskArena) < need {
		m.maskArena = make([]uint64, need)
	}
	m.maskArena = m.maskArena[:need]
	m.walkMasks = m.walkMasks[:0]
	for i := 0; i < nSalts; i++ {
		m.walkMasks = append(m.walkMasks, m.maskArena[i*words:(i+1)*words:(i+1)*words])
	}
	if cap(m.walkFlips) < nSalts {
		m.walkFlips = make([]int, nSalts)
	}
	m.walkFlips = m.walkFlips[:nSalts]
}

// ReferenceDisturb is the naive per-bit disturb path: it re-derives
// every cell parameter from the hash stream on every call and flips
// ctx.Data in place, bit by bit. It is the equivalence anchor for the
// candidate kernel and the bitplane mask application — Disturb's mask,
// XORed into a copy of the row, must produce bit-identical stored
// data (see the differential tests) — and is kept only for that
// purpose; all production callers go through Disturb.
func (m *Model) ReferenceDisturb(ctx dram.DisturbContext) int {
	rp, heff, tempC, ok := m.disturbSetup(ctx)
	if !ok {
		return 0
	}
	return m.disturbReference(ctx, rp, heff, tempC)
}

// disturbReference walks every bit of the row, deriving per-cell
// parameters inline with the variadic hash (the readable, obviously-
// correct form of the model).
func (m *Model) disturbReference(ctx dram.DisturbContext, rp rowParams, heff, tempC float64) int {
	up := ctx.Down
	down := ctx.Up
	geo := ctx.Geometry
	cw := geo.ChipWidth
	chips := geo.Chips

	flips := 0
	rowBits := geo.RowBits()
	for bit := 0; bit < rowBits; bit++ {
		h := rng.Hash64(m.seed, uint64(ctx.Bank), uint64(ctx.Row), uint64(bit))

		// Per-cell threshold multiplier: Pareto lower tail. A cell is
		// vulnerable with probability VulnFrac; among vulnerable cells
		// the multiplier is (rowBits·u)^(1/α), which anchors the
		// expected per-row minimum at ≈1 and makes the number of
		// cells below a threshold h grow as h^α.
		u := rng.Uniform01(rng.Hash64(h, keyCellMult1))
		if u > m.p.VulnFrac {
			continue
		}
		mult := math.Pow(float64(rowBits)*u, 1/m.p.TailAlpha)
		if mult < minCellMult {
			mult = minCellMult
		}

		// Column factor: array column within the chip. rel is the
		// cell's threshold relative to the row HCfirst; the candidate
		// kernel stores exactly this product, so the grouping must
		// stay rel-first to keep both paths bit-identical.
		line := bit % cw
		rest := bit / cw
		chip := rest % chips
		col := rest / chips
		arrayCol := col*cw + line
		rel := mult * m.colFactor[chip][arrayCol]
		threshold := rp.hc * rel

		if m.salt != 0 {
			threshold *= m.trialNoiseFactor(h)
		}
		if heff < threshold*minCoupling {
			continue
		}

		// Orientation: a cell flips only when storing its charged
		// state (true-cell: 1, anti-cell: 0).
		word, off := bit/64, uint(bit%64)
		stored := ctx.Data[word] >> off & 1
		charged := h & 1 // 1 ⇒ true-cell
		if stored != charged {
			continue
		}

		// Vulnerable temperature range.
		lo, hi := m.cellTempRange(h)
		if !m.tempInRange(h, tempC, lo, hi) {
			continue
		}

		// Data-pattern coupling with the adjacent aggressor rows: an
		// aggressor bit opposite to the victim's maximizes coupling.
		coupling := minCoupling
		if bitDiffers(up, word, off, stored) || bitDiffers(down, word, off, stored) {
			coupling = 1.0
		}
		if heff*coupling < threshold {
			continue
		}

		ctx.Data[word] ^= 1 << off
		flips++
	}
	return flips
}

// trialNoiseFactor returns the multiplicative per-trial threshold
// noise for a cell under the current salt: lognormal with sigma
// trialNoiseSigma, deviate truncated to ±trialNoiseZMax. Both disturb
// paths share it so the truncation semantics cannot drift apart.
func (m *Model) trialNoiseFactor(h uint64) float64 {
	return m.trialNoiseFactorFor(h, m.salt)
}

// trialNoiseFactorFor is trialNoiseFactor under an explicit salt; the
// trial-batched walk evaluates every declared salt in one pass.
func (m *Model) trialNoiseFactorFor(h, salt uint64) float64 {
	z := rng.NormalFromHash(
		rng.Hash64x3(h, keyNoise1, salt),
		rng.Hash64x3(h, keyNoise2, salt))
	if z > trialNoiseZMax {
		z = trialNoiseZMax
	} else if z < -trialNoiseZMax {
		z = -trialNoiseZMax
	}
	return math.Exp(trialNoiseSigma * z)
}

// minCoupling is the disturbance multiplier when both adjacent
// aggressor rows store the same value as the victim cell (minimum
// bitline/wordline coupling).
const minCoupling = 0.5

// bitDiffers reports whether the neighbor row's bit differs from the
// victim's stored bit; unallocated neighbors read as zero.
func bitDiffers(neighbor []uint64, word int, off uint, stored uint64) bool {
	var nb uint64
	if neighbor != nil {
		nb = neighbor[word] >> off & 1
	}
	return nb != stored
}

// CellInfo describes a cell's generated circuit-level parameters
// (diagnostic/experiment use: ground truth the measurement pipeline is
// expected to recover).
type CellInfo struct {
	ThresholdHC  float64
	TrueCell     bool
	TempLoC      float64
	TempHiC      float64
	ColumnFactor float64
}

// Cell returns the generated parameters of one cell. Invulnerable
// cells (outside the Pareto tail) report an infinite threshold.
func (m *Model) Cell(bank, row, bit int) CellInfo {
	rp := m.rowParamsFor(bank, row)
	h := rng.Hash64(m.seed, uint64(bank), uint64(row), uint64(bit))
	u := rng.Uniform01(rng.Hash64(h, keyCellMult1))
	mult := math.Inf(1)
	if u <= m.p.VulnFrac {
		mult = math.Pow(float64(m.geo.RowBits())*u, 1/m.p.TailAlpha)
		if mult < minCellMult {
			mult = minCellMult
		}
	}
	cw := m.geo.ChipWidth
	line := bit % cw
	rest := bit / cw
	chip := rest % m.geo.Chips
	col := rest / m.geo.Chips
	cf := m.colFactor[chip][col*cw+line]
	lo, hi := m.cellTempRange(h)
	return CellInfo{
		ThresholdHC:  rp.hc * (mult * cf),
		TrueCell:     h&1 == 1,
		TempLoC:      lo,
		TempHiC:      hi,
		ColumnFactor: cf,
	}
}

// RowBaseHC returns the generated base HCfirst of a physical row.
func (m *Model) RowBaseHC(bank, row int) float64 { return m.rowParamsFor(bank, row).hc }

// RowInflection returns the generated temperature inflection point of
// a physical row.
func (m *Model) RowInflection(bank, row int) float64 { return m.rowParamsFor(bank, row).tinf }
