package faultmodel

import "rowhammer/internal/dram"

// The disturb replay cache.
//
// Characterization repeats the same hammer program over and over: the
// min-of-five trial policy re-runs every test per salt, the HCfirst
// binary search revisits the same hammer counts across trials, and the
// benchmark loop is literally the same program each iteration. All of
// them present the kernel with a disturb input it has already seen —
// the same (bank, row), the same ledger totals, the same stored words
// in the victim and its neighbors. The walk is a pure function of
// exactly those inputs plus the trial salt, so its result (the flip
// bitplane and count, per salt) can be replayed without walking at
// all.
//
// A hit is decided by comparing the full stored words — an exact
// memcmp, never a hash — so a replay is bit-identical by construction:
// any input difference, down to one bit of one neighbor row, misses
// and re-walks. Entries hold the whole declared trial batch
// (Model.SetTrialSalts), which is how one batched walk serves every
// trial of a repetition loop.

// replayMaxEntries bounds the cache. An entry at the paper-scale
// 8 KiB row plane with five trial salts is ~64 KiB, so the cache stays
// under ~8 MiB per model even in the worst case; bench geometries are
// two orders of magnitude smaller.
const replayMaxEntries = 128

// replayKey identifies a disturb input cheaply: the victim coordinate
// plus the full ledger value (comparable struct). Stored words are
// verified separately on lookup.
type replayKey struct {
	bank, row int
	led       dram.RowLedger
}

type replayEntry struct {
	key        replayKey
	data       []uint64
	up, down   []uint64
	salts      []uint64
	masks      [][]uint64
	maskWords  []uint64 // flat backing for masks
	flips      []int
	prev, next *replayEntry
}

// replayCache is a small exact-match LRU over disturb evaluations.
// It belongs to one Model (single-goroutine), so it is unlocked.
type replayCache struct {
	entries    map[replayKey]*replayEntry
	head, tail *replayEntry
}

func newReplayCache() *replayCache {
	return &replayCache{entries: make(map[replayKey]*replayEntry, replayMaxEntries)}
}

// get returns the cached entry for key when its recorded stored words
// exactly match ctx, promoting it to most-recently-used.
func (c *replayCache) get(key replayKey, ctx dram.DisturbContext) *replayEntry {
	e, ok := c.entries[key]
	if !ok {
		return nil
	}
	if !wordsEqual(e.data, ctx.Data) || !wordsEqual(e.up, ctx.Up) || !wordsEqual(e.down, ctx.Down) {
		return nil
	}
	c.moveToFront(e)
	return e
}

// saltIndex returns the index of salt in salts, or -1.
func saltIndex(salts []uint64, salt uint64) int {
	for i, s := range salts {
		if s == salt {
			return i
		}
	}
	return -1
}

// put records a walk result, recycling the least-recently-used entry's
// buffers once the cache is full so the steady state allocates
// nothing.
func (c *replayCache) put(key replayKey, ctx dram.DisturbContext, salts []uint64, masks [][]uint64, flips []int) {
	e, ok := c.entries[key]
	if ok {
		c.moveToFront(e)
	} else if len(c.entries) >= replayMaxEntries {
		e = c.tail
		c.unlink(e)
		delete(c.entries, e.key)
		e.key = key
		c.entries[key] = e
		c.pushFront(e)
	} else {
		e = &replayEntry{key: key}
		c.entries[key] = e
		c.pushFront(e)
	}
	e.data = append(e.data[:0], ctx.Data...)
	e.up = append(e.up[:0], ctx.Up...)
	e.down = append(e.down[:0], ctx.Down...)
	e.salts = append(e.salts[:0], salts...)
	e.flips = append(e.flips[:0], flips...)
	words := len(ctx.Data)
	need := len(masks) * words
	if cap(e.maskWords) < need {
		e.maskWords = make([]uint64, need)
	}
	e.maskWords = e.maskWords[:need]
	e.masks = e.masks[:0]
	for i, mk := range masks {
		dst := e.maskWords[i*words : (i+1)*words : (i+1)*words]
		copy(dst, mk)
		e.masks = append(e.masks, dst)
	}
}

func (c *replayCache) pushFront(e *replayEntry) {
	e.prev, e.next = nil, c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}

func (c *replayCache) unlink(e *replayEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		c.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		c.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (c *replayCache) moveToFront(e *replayEntry) {
	if c.head == e {
		return
	}
	c.unlink(e)
	c.pushFront(e)
}

// wordsEqual reports exact equality of two word slices. A nil slice
// equals only another empty slice: neighbor presence is part of the
// input identity even though absent neighbors read as zeros.
func wordsEqual(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
