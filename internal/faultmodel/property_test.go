package faultmodel

import (
	"math"
	"testing"
	"testing/quick"

	"rowhammer/internal/dram"
)

// Property tests on the fault model's core invariants.

func TestPropertyTempFactorPositiveBounded(t *testing.T) {
	for _, p := range Profiles() {
		m := newTestModel(t, p, 101)
		if err := quick.Check(func(rawT, rawInf uint16) bool {
			tempC := 40 + float64(rawT%60)   // 40..100 °C
			tinf := 20 + float64(rawInf%100) // 20..120 °C
			f := m.tempFactor(tempC, tinf)
			return f > 0 && f < 3
		}, &quick.Config{MaxCount: 200}); err != nil {
			t.Fatalf("mfr %s: %v", p.Name, err)
		}
	}
}

func TestPropertyTempFactorPeaksAtInflection(t *testing.T) {
	m := newTestModel(t, MfrB(), 103) // zero slope isolates the inflection term
	const tinf = 70.0
	peak := m.tempFactor(tinf, tinf)
	for _, tempC := range []float64{50, 60, 80, 90} {
		if f := m.tempFactor(tempC, tinf); f > peak {
			t.Fatalf("factor at %v °C (%v) exceeds inflection peak (%v)", tempC, f, peak)
		}
	}
}

func TestPropertyOnOffFactorMonotone(t *testing.T) {
	for _, p := range Profiles() {
		m := newTestModel(t, p, 107)
		prev := -1.0
		for on := 34.5; on <= 154.5; on += 10 {
			f := m.onOffFactor(on, 16.5)
			if f <= 0 {
				t.Fatalf("mfr %s: non-positive factor", p.Name)
			}
			if prev > 0 && f < prev {
				t.Fatalf("mfr %s: on-time factor not monotone at %v", p.Name, on)
			}
			prev = f
		}
		prev = math.Inf(1)
		for off := 16.5; off <= 40.5; off += 3 {
			f := m.onOffFactor(34.5, off)
			if f > prev {
				t.Fatalf("mfr %s: off-time factor not monotone at %v", p.Name, off)
			}
			prev = f
		}
	}
}

func TestPropertyOnOffFactorClamps(t *testing.T) {
	m := newTestModel(t, MfrA(), 109)
	// Absurd inputs must stay within the documented clamps.
	if f := m.onOffFactor(1e6, 16.5); f <= 0 {
		t.Fatalf("huge on-time factor %v", f)
	}
	if f := m.onOffFactor(34.5, 1e9); f < 0.05*0.2 {
		t.Fatalf("huge off-time factor %v below clamp", f)
	}
	if f := m.onOffFactor(-100, -100); f <= 0 {
		t.Fatalf("negative-time factor %v", f)
	}
}

func TestPropertyCellThresholdTailExponent(t *testing.T) {
	// The count of cells below h must grow ≈ h^alpha (the model's
	// central calibration property).
	m := newTestModel(t, MfrA(), 113)
	alpha := MfrA().TailAlpha
	geo := testGeometry()
	count := func(h float64) int {
		n := 0
		for row := 8; row < 48; row++ {
			base := m.RowBaseHC(0, row)
			for bit := 0; bit < geo.RowBits(); bit += 7 { // sample
				ci := m.Cell(0, row, bit)
				if !math.IsInf(ci.ThresholdHC, 1) && ci.ThresholdHC/ci.ColumnFactor <= h*base {
					n++
				}
			}
		}
		return n
	}
	n1 := count(1.5)
	n2 := count(3.0)
	if n1 == 0 {
		t.Skip("sample too sparse")
	}
	got := math.Log(float64(n2)/float64(n1)) / math.Log(2)
	if math.Abs(got-alpha) > 0.8 {
		t.Fatalf("measured tail exponent %.2f, want ≈%.1f", got, alpha)
	}
}

func TestPropertyDisturbNeverFlipsTwice(t *testing.T) {
	// A cell flips at most once per sense: flipping moves it out of
	// its charged state, so re-evaluating the same data cannot flip it
	// back within the same Disturb call. Verified by checking the flip
	// count equals the Hamming distance of the data before/after.
	m := newTestModel(t, MfrA(), 127)
	geo := testGeometry()
	data := make([]uint64, geo.RowWords())
	for i := range data {
		data[i] = 0x5555555555555555
	}
	before := make([]uint64, len(data))
	copy(before, data)
	agg := make([]uint64, geo.RowWords())
	for i := range agg {
		agg[i] = 0xaaaaaaaaaaaaaaaa
	}
	flips := disturbApply(m, dram.DisturbContext{
		Bank: 0, Row: 20, Ledger: mkLedger(400_000, 34.5, 16.5, 50),
		Data: data, Geometry: geo,
		Up: agg, Down: agg,
	})
	hamming := 0
	for i := range data {
		d := data[i] ^ before[i]
		for d != 0 {
			hamming++
			d &= d - 1
		}
	}
	if flips != hamming {
		t.Fatalf("reported %d flips, Hamming distance %d", flips, hamming)
	}
}

func TestPropertyEffectiveHammersMonotoneInCount(t *testing.T) {
	m := newTestModel(t, MfrC(), 131)
	if err := quick.Check(func(a, b uint16) bool {
		ha := int64(a)%5000 + 1
		hb := ha + int64(b)%5000 + 1
		la := mkLedger(ha, 34.5, 16.5, 50)
		lb := mkLedger(hb, 34.5, 16.5, 50)
		return m.EffectiveHammers(lb, 70) >= m.EffectiveHammers(la, 70)
	}, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyDistanceTwoWeaker(t *testing.T) {
	// Pure distance-2 aggression must be far weaker than distance-1.
	m := newTestModel(t, MfrA(), 137)
	mk := func(dist int, hammers int64) *dram.RowLedger {
		led := &dram.RowLedger{}
		led.Record(dist, dram.PicosFromNs(34.5), dram.PicosFromNs(16.5), 50)
		d := &led.Dist[dist-1]
		d.Count = hammers
		d.SumOn = dram.Picos(hammers) * dram.PicosFromNs(34.5)
		d.SumOff = dram.Picos(hammers) * dram.PicosFromNs(16.5)
		d.SumTempMilliC = hammers * 50_000
		return led
	}
	h1 := m.EffectiveHammers(mk(1, 10_000), 70)
	h2 := m.EffectiveHammers(mk(2, 10_000), 70)
	if h2*10 > h1 {
		t.Fatalf("distance-2 effect %.1f not ≪ distance-1 %.1f", h2, h1)
	}
}
