package faultmodel

import (
	"sync"
	"testing"
	"testing/quick"

	"rowhammer/internal/rng"
)

// mkCells builds a candidate slice of the given length (contents are
// irrelevant to the cache; only the byte cost matters).
func mkCells(n int) []candidate {
	return make([]candidate, n)
}

// TestPropertyShardedEvictionRespectsBudget drives random put/get
// sequences through the sharded LRU and checks the byte-budget
// invariant after every operation: each shard stays within its budget
// unless it holds exactly one (oversized) entry — the documented
// newest-entry-survives rule — so entries no larger than a shard
// budget can never push the cache past the global budget.
func TestPropertyShardedEvictionRespectsBudget(t *testing.T) {
	const budget = 64 * candidateBytes * candShardCount
	if err := quick.Check(func(seed uint64, ops uint8) bool {
		l := newCandLRU(budget)
		n := int(ops)%200 + 50
		for i := 0; i < n; i++ {
			h := rng.Hash64x2(seed, uint64(i))
			key := h % 97
			if h&1 == 0 {
				l.get(key)
				continue
			}
			// Sizes up to the full shard budget (64 candidates).
			l.put(key, mkCells(int(h>>8)%64+1))
			for si := range l.shards {
				s := &l.shards[si]
				if s.bytes > s.budgetBytes && len(s.entries) != 1 {
					return false
				}
			}
			if l.totalBytes() > budget {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestShardedLRUConcurrentGetPut hammers the cache from 16 goroutines
// with overlapping key ranges — the access pattern of parallel
// measurement cores sharing one kernel cache — and is run under the
// race detector by `make race`. Afterwards the budget invariant must
// still hold and hot keys must be retrievable.
func TestShardedLRUConcurrentGetPut(t *testing.T) {
	const (
		workers = 16
		keys    = 64
		rounds  = 2000
	)
	budget := keys / 2 * 32 * candidateBytes
	l := newCandLRU(budget)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				h := rng.Hash64x2(uint64(w), uint64(i))
				key := h % keys
				if cells, ok := l.get(key); ok {
					_ = len(cells)
					continue
				}
				l.put(key, mkCells(int(h>>8)%32+1))
			}
		}(w)
	}
	wg.Wait()
	for si := range l.shards {
		s := &l.shards[si]
		if s.bytes > s.budgetBytes && len(s.entries) != 1 {
			t.Fatalf("shard %d over budget with %d entries (%d > %d bytes)",
				si, len(s.entries), s.bytes, s.budgetBytes)
		}
	}
	if got := l.lenEntries(); got == 0 {
		t.Fatal("cache empty after concurrent workload")
	}
}
