// Package faultmodel implements the circuit-level RowHammer disturbance
// model behind the simulated DRAM chips: per-cell vulnerability
// parameters derived deterministically from cell coordinates, and four
// manufacturer profiles calibrated against the aggregate statistics the
// paper reports (Fig. 3 temperature-range clusters, Fig. 4/5
// temperature trends, Fig. 7–10 aggressor-on/off-time responses,
// Fig. 11 row variation, Fig. 12/13 column variation, Fig. 14/15
// subarray structure).
//
// The model is a generator, not a lookup table: experiments re-measure
// every statistic through the full command-level methodology, so the
// shape of each figure must emerge from measurement.
package faultmodel

import (
	"fmt"
	"math"

	"rowhammer/internal/dram"
)

// QuantilePoint is one knot of a quantile function.
type QuantilePoint struct {
	Q, V float64
}

// TempCluster is one vulnerable-temperature-range cluster: cells whose
// range is [LoC, HiC] (Celsius, inclusive), with the cluster's share of
// the vulnerable-cell population. Lo==50 means "extends to or below
// 50 °C"; Hi==90 means "extends to or above 90 °C" (the tested limits).
type TempCluster struct {
	LoC, HiC float64
	Prob     float64
}

// ModuleInfo describes one tested module line (Table 2 / Table 4).
type ModuleInfo struct {
	Type       string // "DDR4" or "DDR3"
	ChipID     string
	Vendor     string
	ModuleID   string
	FreqMTs    int
	DateCode   string
	Density    string
	DieRev     string
	Org        string // x4/x8
	NumModules int
	NumChips   int
}

// Profile holds the calibrated fault-model parameters of one DRAM
// manufacturer.
type Profile struct {
	// Name is the anonymized manufacturer letter ("A".."D").
	Name string
	// MfrLike names the real manufacturer the profile is calibrated
	// against (documentation only).
	MfrLike string

	// RowHCQuantiles is the quantile function of the per-row weakness
	// multiplier: a row's base HCfirst is BaseHC × Q(u). Q(0)=1 by
	// construction (the most vulnerable row defines BaseHC).
	RowHCQuantiles []QuantilePoint
	// BaseHC is the module-level most-vulnerable-row HCfirst (hammers)
	// at 50 °C, baseline timings, worst-case data pattern.
	BaseHC float64
	// ModuleSigma is the lognormal sigma of module-to-module BaseHC
	// variation.
	ModuleSigma float64
	// TailAlpha is the Pareto exponent of the per-cell threshold
	// distribution's lower tail: the number of cells with threshold
	// ≤ h grows as (h/rowHC)^TailAlpha. This single exponent couples
	// the BER and HCfirst sensitivities exactly as the paper's joint
	// data implies: a disturbance multiplier f changes HCfirst by 1/f
	// and BER by f^TailAlpha (e.g. Mfr A: tAggOn ×1.667 ⇒ HCfirst
	// −40%, BER ×1.667^4.55 ≈ ×10.2).
	TailAlpha float64
	// VulnFrac is the fraction of cells that are vulnerable at all
	// (the tail's total mass); the rest never flip.
	VulnFrac float64

	// TempClusters is the Fig. 3 vulnerable-temperature-range
	// distribution (need not be normalized; sampling normalizes).
	TempClusters []TempCluster
	// GapProb is the probability a vulnerable cell skips one interior
	// temperature point of its range (Table 3's complement).
	GapProb float64
	// TempSlope is the fractional change of disturbance effectiveness
	// per °C above 50 °C (positive: hotter ⇒ more vulnerable).
	TempSlope float64
	// InflectionLoC/InflectionHiC bound the per-row temperature
	// inflection point (uniform draw); vulnerability peaks at the
	// inflection (Yang et al. charge-trap model).
	InflectionLoC, InflectionHiC float64
	// InflectionCurvature scales the quadratic vulnerability loss away
	// from the inflection point, per (40 °C)².
	InflectionCurvature float64

	// OnTimeGainPerNs: disturbance multiplier 1 + gain×(tAggOn−34.5ns).
	OnTimeGainPerNs float64
	// OffTimeDecayPerNs: multiplier 1/(1 + decay×(tAggOff−16.5ns)).
	OffTimeDecayPerNs float64

	// ColSigma is the lognormal sigma of per-column threshold factors.
	ColSigma float64
	// ColProcessWeight in [0,1] splits column variance between a
	// design-induced component (shared by every chip of this
	// manufacturer) and a process-induced component (per chip):
	// 0 ⇒ pure design (cross-chip CV = 0), 1 ⇒ pure process.
	ColProcessWeight float64

	// Remap is the internal logical→physical row mapping scheme.
	Remap dram.RemapScheme

	// Modules is the Table 2 / Table 4 inventory.
	Modules []ModuleInfo
}

// RowMultiplier evaluates the row-weakness quantile function at u.
func (p *Profile) RowMultiplier(u float64) float64 {
	return evalQuantiles(p.RowHCQuantiles, u)
}

// evalQuantiles linearly interpolates a quantile function.
func evalQuantiles(qs []QuantilePoint, u float64) float64 {
	if len(qs) == 0 {
		return 1
	}
	if u <= qs[0].Q {
		return qs[0].V
	}
	for i := 1; i < len(qs); i++ {
		if u <= qs[i].Q {
			a, b := qs[i-1], qs[i]
			if b.Q == a.Q {
				return b.V
			}
			f := (u - a.Q) / (b.Q - a.Q)
			return a.V + f*(b.V-a.V)
		}
	}
	return qs[len(qs)-1].V
}

// invPhi approximates the standard normal quantile function
// (Acklam's rational approximation; sufficient accuracy for
// calibration constants).
func invPhi(p float64) float64 {
	if p <= 0 || p >= 1 {
		panic(fmt.Sprintf("faultmodel: invPhi domain error: %v", p))
	}
	a := [6]float64{-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02, 1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00}
	b := [5]float64{-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02, 6.680131188771972e+01, -1.328068155288572e+01}
	c := [6]float64{-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00, -2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00}
	d := [4]float64{7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00, 3.754408661907416e+00}
	const plow = 0.02425
	switch {
	case p < plow:
		q := sqrtNegLog(p)
		return (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p > 1-plow:
		q := sqrtNegLog(1 - p)
		return -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	default:
		q := p - 0.5
		r := q * q
		return (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	}
}

func sqrtNegLog(p float64) float64 {
	return math.Sqrt(-2 * math.Log(p))
}
