package faultmodel

import (
	"math"
	"testing"

	"rowhammer/internal/dram"
	"rowhammer/internal/stats"
)

func testGeometry() dram.Geometry {
	return dram.Geometry{Banks: 2, RowsPerBank: 1024, SubarrayRows: 512, Chips: 8, ChipWidth: 8, ColumnsPerRow: 64}
}

func newTestModel(t *testing.T, p *Profile, seed uint64) *Model {
	t.Helper()
	m, err := NewModel(Config{Profile: p, ModuleSeed: seed, Geometry: testGeometry()})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// mkLedger builds a double-sided ledger: hammers pairs of distance-1
// activations at the given on/off times (ns) and temperature.
func mkLedger(hammers int64, onNs, offNs, tempC float64) *dram.RowLedger {
	led := &dram.RowLedger{}
	d := &led.Dist[0]
	d.Count = 2 * hammers
	d.SumOn = dram.Picos(2*hammers) * dram.PicosFromNs(onNs)
	d.SumOff = dram.Picos(2*hammers) * dram.PicosFromNs(offNs)
	d.SumTempMilliC = 2 * hammers * int64(tempC*1000)
	return led
}

// disturbApply runs the kernel Disturb path and XORs the returned flip
// mask into ctx.Data, reproducing the stored-data effect the module
// applies after every sense.
func disturbApply(m *Model, ctx dram.DisturbContext) int {
	n, mask := m.Disturb(ctx)
	dram.ApplyFlipMask(ctx.Data, mask)
	return n
}

// disturbRow runs Disturb over a fresh victim row holding pattern and
// returns the flip count. Aggressor rows hold aggPattern.
func disturbRow(m *Model, bank, row int, led *dram.RowLedger, pattern, aggPattern uint64) int {
	geo := testGeometry()
	data := make([]uint64, geo.RowWords())
	agg := make([]uint64, geo.RowWords())
	for i := range data {
		data[i] = pattern
		agg[i] = aggPattern
	}
	return disturbApply(m, dram.DisturbContext{
		Bank: bank, Row: row, Ledger: led, Data: data, Geometry: geo,
		Up: agg, Down: agg,
	})
}

// berOverRows sums flips over the first n in-subarray rows.
func berOverRows(m *Model, hammers int64, onNs, offNs, tempC float64, n int) int {
	total := 0
	for row := 8; row < 8+n; row++ {
		led := mkLedger(hammers, onNs, offNs, tempC)
		total += disturbRow(m, 0, row, led, 0, ^uint64(0))
	}
	return total
}

func TestDisturbDeterministic(t *testing.T) {
	m := newTestModel(t, MfrA(), 7)
	led1 := mkLedger(150_000, 34.5, 16.5, 50)
	led2 := mkLedger(150_000, 34.5, 16.5, 50)
	a := disturbRow(m, 0, 10, led1, 0, ^uint64(0))
	b := disturbRow(m, 0, 10, led2, 0, ^uint64(0))
	if a != b {
		t.Fatalf("non-deterministic: %d vs %d", a, b)
	}
	if a == 0 {
		t.Fatal("150K hammers at WCDP-like data should flip some cells")
	}
}

func TestDisturbMonotoneInHammerCount(t *testing.T) {
	m := newTestModel(t, MfrA(), 7)
	prev := -1
	for _, hc := range []int64{10_000, 50_000, 150_000, 400_000} {
		n := berOverRows(m, hc, 34.5, 16.5, 50, 20)
		if n < prev {
			t.Fatalf("flips decreased with hammer count: %d → %d at %d", prev, n, hc)
		}
		prev = n
	}
}

func TestEarlyOutOnLowHammerCount(t *testing.T) {
	m := newTestModel(t, MfrD(), 7) // highest BaseHC
	led := mkLedger(10, 34.5, 16.5, 50)
	if n := disturbRow(m, 0, 10, led, 0, ^uint64(0)); n != 0 {
		t.Fatalf("10 hammers should never flip (base HC ~85K), got %d", n)
	}
}

func TestEmptyLedgerNoFlips(t *testing.T) {
	m := newTestModel(t, MfrA(), 7)
	if n := disturbRow(m, 0, 10, &dram.RowLedger{}, 0, ^uint64(0)); n != 0 {
		t.Fatalf("empty ledger flipped %d", n)
	}
}

func TestLongerOnTimeIncreasesFlips(t *testing.T) {
	for _, p := range Profiles() {
		m := newTestModel(t, p, 11)
		base := berOverRows(m, 150_000, 34.5, 16.5, 50, 30)
		long := berOverRows(m, 150_000, 154.5, 16.5, 50, 30)
		if base == 0 {
			t.Fatalf("mfr %s: baseline produced no flips", p.Name)
		}
		if long <= base {
			t.Fatalf("mfr %s: tAggOn 154.5ns flips %d <= baseline %d", p.Name, long, base)
		}
	}
}

func TestLongerOffTimeDecreasesFlips(t *testing.T) {
	for _, p := range Profiles() {
		m := newTestModel(t, p, 11)
		base := berOverRows(m, 150_000, 34.5, 16.5, 50, 30)
		long := berOverRows(m, 150_000, 34.5, 40.5, 50, 30)
		if long >= base {
			t.Fatalf("mfr %s: tAggOff 40.5ns flips %d >= baseline %d", p.Name, long, base)
		}
	}
}

func TestTemperatureTrendPerManufacturer(t *testing.T) {
	// BER must rise with temperature for A/C/D and fall for B
	// (Obsv. 4), measured over enough rows to average out per-row
	// inflection effects.
	for _, tc := range []struct {
		p        *Profile
		increase bool
	}{
		{MfrA(), true}, {MfrB(), false}, {MfrC(), true}, {MfrD(), true},
	} {
		m := newTestModel(t, tc.p, 13)
		cold := berOverRows(m, 150_000, 34.5, 16.5, 50, 60)
		hot := berOverRows(m, 150_000, 34.5, 16.5, 90, 60)
		if tc.increase && hot <= cold {
			t.Errorf("mfr %s: hot %d <= cold %d, want increase", tc.p.Name, hot, cold)
		}
		if !tc.increase && hot >= cold {
			t.Errorf("mfr %s: hot %d >= cold %d, want decrease", tc.p.Name, hot, cold)
		}
	}
}

func TestCouplingAntiParallelStronger(t *testing.T) {
	m := newTestModel(t, MfrA(), 17)
	total0, total1 := 0, 0
	for row := 8; row < 40; row++ {
		// Victim zeros, aggressors ones: anti-cells storing 0 see
		// maximal coupling.
		led := mkLedger(150_000, 34.5, 16.5, 50)
		total1 += disturbRow(m, 0, row, led, 0, ^uint64(0))
		// Victim zeros, aggressors zeros: same charge pattern, weak
		// coupling only.
		led = mkLedger(150_000, 34.5, 16.5, 50)
		total0 += disturbRow(m, 0, row, led, 0, 0)
	}
	if total1 <= total0 {
		t.Fatalf("anti-parallel aggressors flips %d <= parallel %d", total1, total0)
	}
}

func TestOrientationGate(t *testing.T) {
	// A cell flips only when storing its charged state: flipping the
	// victim pattern flips a *different* (complementary) set of cells.
	m := newTestModel(t, MfrA(), 19)
	geo := testGeometry()
	mk := func(pattern uint64) []uint64 {
		data := make([]uint64, geo.RowWords())
		for i := range data {
			data[i] = pattern
		}
		ones := make([]uint64, geo.RowWords())
		for i := range ones {
			ones[i] = 0x5555555555555555 // differs from both 0 and ^0 at every position
		}
		disturbApply(m, dram.DisturbContext{
			Bank: 0, Row: 10, Ledger: mkLedger(300_000, 34.5, 16.5, 50),
			Data: data, Geometry: geo,
			Up: ones, Down: ones,
		})
		return data
	}
	zeros := mk(0)
	onesV := mk(^uint64(0))
	// Bits that flipped from 0 (0→1 flips: anti-cells).
	// Bits that flipped from 1 (1→0 flips: true-cells).
	for w := range zeros {
		flippedFromZero := zeros[w]
		flippedFromOne := ^onesV[w]
		if overlap := flippedFromZero & flippedFromOne; overlap != 0 {
			t.Fatalf("word %d: bits %#x flipped in both orientations", w, overlap)
		}
	}
}

func TestTempRangeGatePerCell(t *testing.T) {
	// Find cells that flip at 50°C but have a bounded range, verify
	// they don't flip at 90°C (and vice versa), consistent with
	// Cell() ground truth.
	m := newTestModel(t, MfrA(), 23)
	geo := testGeometry()
	flipsAt := func(tempC float64, row int) map[int]bool {
		data := make([]uint64, geo.RowWords())
		agg := make([]uint64, geo.RowWords())
		for i := range agg {
			agg[i] = ^uint64(0)
		}
		disturbApply(m, dram.DisturbContext{
			Bank: 0, Row: row, Ledger: mkLedger(400_000, 34.5, 16.5, tempC),
			Data: data, Geometry: geo,
			Up: agg, Down: agg,
		})
		out := map[int]bool{}
		for bit := 0; bit < geo.RowBits(); bit++ {
			if data[bit/64]>>(uint(bit%64))&1 == 1 {
				out[bit] = true
			}
		}
		return out
	}
	checked := 0
	for row := 8; row < 24; row++ {
		cold := flipsAt(50, row)
		hot := flipsAt(90, row)
		for bit := range cold {
			ci := m.Cell(0, row, bit)
			if ci.TempHiC < 90 && hot[bit] {
				t.Fatalf("row %d bit %d: range [%v,%v] but flipped at 90°C", row, bit, ci.TempLoC, ci.TempHiC)
			}
			checked++
		}
		for bit := range hot {
			ci := m.Cell(0, row, bit)
			if ci.TempLoC > 50 && cold[bit] {
				t.Fatalf("row %d bit %d: range [%v,%v] but flipped at 50°C", row, bit, ci.TempLoC, ci.TempHiC)
			}
		}
	}
	if checked == 0 {
		t.Fatal("no flips observed; test vacuous")
	}
}

func TestRowMultiplierQuantiles(t *testing.T) {
	p := MfrA()
	if got := p.RowMultiplier(0); got != 1 {
		t.Fatalf("Q(0) = %v, want 1", got)
	}
	if got := p.RowMultiplier(1); got != 5 {
		t.Fatalf("Q(1) = %v, want 5", got)
	}
	if got := p.RowMultiplier(0.05); math.Abs(got-2.0) > 1e-9 {
		t.Fatalf("Q(0.05) = %v, want 2.0", got)
	}
	// Interpolation between knots.
	mid := p.RowMultiplier(0.03)
	if mid <= 1.6 || mid >= 2.0 {
		t.Fatalf("Q(0.03) = %v, want within (1.6, 2.0)", mid)
	}
	// Monotone.
	prev := 0.0
	for u := 0.0; u <= 1.0; u += 0.01 {
		v := p.RowMultiplier(u)
		if v < prev {
			t.Fatalf("quantile fn not monotone at %v", u)
		}
		prev = v
	}
}

func TestRowBaseHCDistribution(t *testing.T) {
	m := newTestModel(t, MfrA(), 29)
	var hcs []float64
	for row := 0; row < 2000; row++ {
		hcs = append(hcs, m.RowBaseHC(0, row%1024)+float64(row/1024)*0) // dedup below
	}
	hcs = hcs[:1024]
	minHC := stats.Min(hcs)
	// 95% of rows should be ≥ ~2× the min (Fig. 11 calibration).
	p5 := stats.Percentile(hcs, 5)
	ratio := p5 / minHC
	if ratio < 1.5 || ratio > 2.6 {
		t.Fatalf("P5/min HCfirst ratio = %v, want ≈2.0", ratio)
	}
}

func TestModuleVariation(t *testing.T) {
	a := newTestModel(t, MfrA(), 1)
	b := newTestModel(t, MfrA(), 2)
	if a.ModuleBaseHC() == b.ModuleBaseHC() {
		t.Fatal("different module seeds should differ in base HC")
	}
	a2 := newTestModel(t, MfrA(), 1)
	if a.ModuleBaseHC() != a2.ModuleBaseHC() {
		t.Fatal("same seed must reproduce base HC")
	}
}

func TestColumnFactorDesignVsProcess(t *testing.T) {
	// Mfr B (design-dominated): column factors nearly identical across
	// chips and across modules. Mfr A (process-dominated): high
	// cross-chip variation.
	cv := func(p *Profile) float64 {
		m1 := newTestModel(t, p, 31)
		var cvs []float64
		for col := 0; col < 64; col++ {
			var vals []float64
			for chip := 0; chip < 8; chip++ {
				vals = append(vals, math.Log(m1.colFactor[chip][col]))
			}
			cvs = append(cvs, stats.StdDev(vals))
		}
		return stats.Mean(cvs)
	}
	spreadA := cv(MfrA())
	spreadB := cv(MfrB())
	if spreadB >= spreadA/3 {
		t.Fatalf("cross-chip column spread: B=%v should be well below A=%v", spreadB, spreadA)
	}
}

func TestSaltChangesMarginalCellsOnly(t *testing.T) {
	m := newTestModel(t, MfrA(), 37)
	led := mkLedger(150_000, 34.5, 16.5, 50)
	m.SetSalt(1)
	a := disturbRow(m, 0, 10, led, 0, ^uint64(0))
	led = mkLedger(150_000, 34.5, 16.5, 50)
	m.SetSalt(2)
	b := disturbRow(m, 0, 10, led, 0, ^uint64(0))
	m.SetSalt(0)
	// Counts should be close (noise is 4%), rarely identical across
	// many rows; just check the mechanism doesn't explode.
	if a == 0 || b == 0 {
		t.Fatal("salted runs produced no flips")
	}
	diff := math.Abs(float64(a-b)) / float64(a)
	if diff > 0.5 {
		t.Fatalf("salt changed flips too much: %d vs %d", a, b)
	}
}

func TestEffectiveHammersScaling(t *testing.T) {
	m := newTestModel(t, MfrA(), 41)
	led := mkLedger(1000, 34.5, 16.5, 50)
	h1 := m.EffectiveHammers(led, 50)
	led2 := mkLedger(2000, 34.5, 16.5, 50)
	h2 := m.EffectiveHammers(led2, 50)
	if math.Abs(h2/h1-2) > 1e-9 {
		t.Fatalf("effective hammers not linear: %v, %v", h1, h2)
	}
	// Baseline double-sided: heff ≈ hammer count at the row's
	// inflection-neutral factor; verify weight normalization.
	if h1 < 500 || h1 > 1500 {
		t.Fatalf("heff = %v for 1000 hammers, want ≈1000", h1)
	}
}

func TestCellGroundTruthThresholdPositive(t *testing.T) {
	m := newTestModel(t, MfrC(), 43)
	for bit := 0; bit < 100; bit++ {
		ci := m.Cell(0, 5, bit)
		if ci.ThresholdHC <= 0 {
			t.Fatalf("bit %d threshold %v", bit, ci.ThresholdHC)
		}
		if ci.TempLoC < 50 || ci.TempHiC > 90 || ci.TempLoC > ci.TempHiC {
			t.Fatalf("bit %d range [%v,%v]", bit, ci.TempLoC, ci.TempHiC)
		}
	}
}

func TestNewModelErrors(t *testing.T) {
	if _, err := NewModel(Config{Profile: nil, Geometry: testGeometry()}); err == nil {
		t.Fatal("expected error for nil profile")
	}
	if _, err := NewModel(Config{Profile: MfrA(), Geometry: dram.Geometry{}}); err == nil {
		t.Fatal("expected error for invalid geometry")
	}
	bad := MfrA()
	bad.TempClusters = nil
	if _, err := NewModel(Config{Profile: bad, Geometry: testGeometry()}); err == nil {
		t.Fatal("expected error for empty cluster distribution")
	}
}

func TestProfileRegistry(t *testing.T) {
	ps := Profiles()
	if len(ps) != 4 {
		t.Fatalf("want 4 profiles, got %d", len(ps))
	}
	names := map[string]bool{}
	for _, p := range ps {
		if names[p.Name] {
			t.Fatalf("duplicate profile %s", p.Name)
		}
		names[p.Name] = true
		if p.BaseHC <= 0 || p.TailAlpha <= 0 || p.VulnFrac <= 0 || len(p.TempClusters) == 0 || p.Remap == nil {
			t.Fatalf("profile %s incomplete", p.Name)
		}
		if len(p.Modules) == 0 {
			t.Fatalf("profile %s missing module inventory", p.Name)
		}
	}
	if ProfileByName("A") == nil || ProfileByName("Z") != nil {
		t.Fatal("ProfileByName lookup broken")
	}
}

func TestTable2ChipCounts(t *testing.T) {
	// 248 DDR4 + 24 DDR3 chips across the inventory.
	ddr4, ddr3 := 0, 0
	for _, p := range Profiles() {
		for _, mi := range p.Modules {
			switch mi.Type {
			case "DDR4":
				ddr4 += mi.NumChips
			case "DDR3":
				ddr3 += mi.NumChips
			}
		}
	}
	if ddr4 != 248 {
		t.Fatalf("DDR4 chips = %d, want 248", ddr4)
	}
	if ddr3 != 24 {
		t.Fatalf("DDR3 chips = %d, want 24", ddr3)
	}
}

func TestFig3MatricesRoughlyNormalized(t *testing.T) {
	for _, p := range Profiles() {
		sum := 0.0
		for _, c := range p.TempClusters {
			if c.LoC > c.HiC {
				t.Fatalf("mfr %s: inverted cluster [%v,%v]", p.Name, c.LoC, c.HiC)
			}
			sum += c.Prob
		}
		if sum < 0.95 || sum > 1.05 {
			t.Fatalf("mfr %s: cluster mass %v, want ≈1", p.Name, sum)
		}
	}
}

func TestInvPhi(t *testing.T) {
	cases := map[float64]float64{0.5: 0, 0.975: 1.96, 0.025: -1.96, 0.999: 3.09}
	for p, want := range cases {
		if got := invPhi(p); math.Abs(got-want) > 0.01 {
			t.Fatalf("invPhi(%v) = %v, want %v", p, got, want)
		}
	}
}

func TestInvPhiPanicsOutOfDomain(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	invPhi(0)
}
