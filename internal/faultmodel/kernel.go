package faultmodel

import (
	"math"
	"slices"
	"sort"

	"rowhammer/internal/dram"
	"rowhammer/internal/rng"
)

// The candidate-cell disturb kernel.
//
// Every characterization experiment reduces to asking, millions of
// times, "which cells in this row flip under this effective hammer
// count?". The reference path (disturbReference) answers by re-hashing
// every bit of the row on every call. This kernel instead memoizes,
// per (bank, row), the full candidate-cell set with all hash-derived
// parameters precomputed, sorted ascending by rel — the cell threshold
// relative to the row HCfirst. A Disturb call then binary-searches the
// cutoff reachable at the ledger's effective hammer count and walks
// only the candidates below it, evaluating the remaining per-call
// predicates (stored data orientation, gating temperature, trial
// noise, aggressor coupling) lazily per candidate.
//
// Equivalence with the reference path is load-bearing: the builder
// replays the exact hash draws and float expressions of
// disturbReference (rel grouping included — float multiplication is
// not associative), and the differential tests in kernel_test.go
// assert bit-identical flip sets across profiles, temperatures, data
// patterns, seeds, and salts.

// tempMargin is half of the 5 °C test step (exclusive): the slack
// around a cell's vulnerable range and gap point.
const tempMargin = 2.4

// candidate is one vulnerable cell of a row with every hash-derived
// parameter resolved at build time. 48 bytes.
type candidate struct {
	rel    float64 // mult × colFactor: threshold ≡ rowHC × rel (sort key)
	h      uint64  // per-cell hash (feeds the salted trial noise)
	loGate float64 // reject when tempC < loGate (−Inf: censored at 50 °C)
	hiGate float64 // reject when tempC > hiGate (+Inf: censored at 90 °C)
	gapT   float64 // skipped interior temperature point (NaN: no gap)
	bit    int32
	charged uint8 // 1 ⇒ true-cell
}

// candidateBytes is the approximate per-cell cache cost, for sizing
// the LRU.
const candidateBytes = 48

// candCacheBudgetBytes bounds the total candidate-cache memory per
// model. 64 MiB holds hundreds of rows at bench geometries and ~20
// rows at the paper-scale 64 Ki-bit geometry.
const candCacheBudgetBytes = 64 << 20

// candCacheRows converts the memory budget into an LRU row capacity.
func candCacheRows(rowBits int) int {
	rows := candCacheBudgetBytes / (rowBits * candidateBytes)
	if rows < 16 {
		rows = 16
	}
	if rows > 4096 {
		rows = 4096
	}
	return rows
}

// buildCandidates generates the sorted candidate set of one row. The
// per-cell draws mirror disturbReference exactly, using the
// fixed-arity hash fast paths (bit-identical to the variadic Hash64).
func (m *Model) buildCandidates(bank, row int) []candidate {
	rowBits := m.geo.RowBits()
	cw := m.geo.ChipWidth
	chips := m.geo.Chips
	cells := make([]candidate, 0, rowBits)
	// The (seed, bank, row) fold is shared by every bit of the row;
	// Hash64Suffix completes it per bit, bit-identically to Hash64x4.
	prefix := rng.HashPrefix(m.seed, uint64(bank), uint64(row))
	for bit := 0; bit < rowBits; bit++ {
		h := rng.Hash64Suffix(prefix, uint64(bit))

		u := rng.Uniform01(rng.Hash64x2(h, keyCellMult1))
		if u > m.p.VulnFrac {
			continue
		}
		mult := math.Pow(float64(rowBits)*u, 1/m.p.TailAlpha)
		if mult < minCellMult {
			mult = minCellMult
		}

		line := bit % cw
		rest := bit / cw
		chip := rest % chips
		col := rest / chips
		rel := mult * m.colFactor[chip][col*cw+line]

		// Resolve the temperature range and gap draws once; censored
		// bounds become infinite gates and "no gap" becomes NaN, so
		// the walk needs only three float compares.
		lo, hi := m.cellTempRange(h)
		loGate := math.Inf(-1)
		if lo > 50 {
			loGate = lo - tempMargin
		}
		hiGate := math.Inf(1)
		if hi < 90 {
			hiGate = hi + tempMargin
		}
		gapT := math.NaN()
		if hi-lo >= 10 && m.p.GapProb > 0 {
			if rng.Uniform01(rng.Hash64x2(h, keyCellGapU)) < m.p.GapProb {
				interior := int(hi-lo)/5 - 1
				pick := int(rng.Uniform01(rng.Hash64x2(h, keyCellGapT)) * float64(interior))
				if pick >= interior {
					pick = interior - 1
				}
				gapT = lo + float64(5*(pick+1))
			}
		}

		cells = append(cells, candidate{
			rel:     rel,
			h:       h,
			loGate:  loGate,
			hiGate:  hiGate,
			gapT:    gapT,
			bit:     int32(bit),
			charged: uint8(h & 1),
		})
	}
	// The (rel, bit) key is unique per cell, so any sorting algorithm
	// yields the same array; SortFunc avoids sort.Slice's reflection-
	// based swapper on this hot build path.
	slices.SortFunc(cells, func(a, b candidate) int {
		if a.rel != b.rel {
			if a.rel < b.rel {
				return -1
			}
			return 1
		}
		return int(a.bit - b.bit)
	})
	return cells
}

// candidates returns the row's candidate set, building and caching it
// on first use.
func (m *Model) candidates(bank, row int) []candidate {
	key := uint64(bank)<<32 | uint64(uint32(row))
	if cs, ok := m.candCache.get(key); ok {
		return cs
	}
	cs := m.buildCandidates(bank, row)
	m.candCache.put(key, cs)
	return cs
}

// disturbCandidates is the kernel walk. A cell can flip only when
// heff·coupling ≥ rowHC·rel·noise with coupling ≤ 1 and noise ≥
// exp(−σ·zmax), so candidates with rel above the inflated cutoff are
// unreachable and the sorted order lets a binary search skip them all.
func (m *Model) disturbCandidates(ctx dram.DisturbContext, rp rowParams, heff, tempC float64) int {
	cells := m.candidates(ctx.Bank, ctx.Row)

	cut := heff / (rp.hc * minCoupling)
	if m.salt != 0 {
		cut *= math.Exp(trialNoiseSigma * trialNoiseZMax)
	}
	n := sort.Search(len(cells), func(i int) bool { return cells[i].rel > cut })

	up := ctx.NeighborData(1)
	down := ctx.NeighborData(-1)
	flips := 0
	for i := 0; i < n; i++ {
		c := &cells[i]

		word, off := int(c.bit)>>6, uint(c.bit)&63
		stored := ctx.Data[word] >> off & 1
		if stored != uint64(c.charged) {
			continue
		}

		// Gate comparisons are false for −Inf/+Inf/NaN exactly where
		// tempInRange accepts, so censored ranges and gap-free cells
		// pass for free.
		if tempC < c.loGate || tempC > c.hiGate || math.Abs(tempC-c.gapT) < tempMargin {
			continue
		}

		coupling := minCoupling
		if bitDiffers(up, word, off, stored) || bitDiffers(down, word, off, stored) {
			coupling = 1.0
		}

		base := rp.hc * c.rel
		eff := heff * coupling
		if m.salt == 0 {
			if eff < base {
				continue
			}
		} else if eff < base*trialNoiseFloor {
			// Below even the most favorable truncated noise draw.
			continue
		} else if eff < base*trialNoiseCeil && eff < base*m.trialNoiseFactor(c.h) {
			// Marginal band: only here does the outcome depend on the
			// cell's actual noise draw, so only here do we pay for it.
			continue
		}

		ctx.Data[word] ^= 1 << off
		flips++
	}
	return flips
}

// candLRU is a bounded least-recently-used cache of candidate sets,
// keyed like rowCache by bank<<32|row.
type candLRU struct {
	limit   int
	entries map[uint64]*candEntry
	head    *candEntry // most recently used
	tail    *candEntry
}

type candEntry struct {
	key        uint64
	cells      []candidate
	prev, next *candEntry
}

func newCandLRU(limit int) *candLRU {
	if limit < 1 {
		limit = 1
	}
	return &candLRU{limit: limit, entries: make(map[uint64]*candEntry, limit)}
}

func (l *candLRU) get(key uint64) ([]candidate, bool) {
	e, ok := l.entries[key]
	if !ok {
		return nil, false
	}
	l.moveToFront(e)
	return e.cells, true
}

func (l *candLRU) put(key uint64, cells []candidate) {
	if e, ok := l.entries[key]; ok {
		e.cells = cells
		l.moveToFront(e)
		return
	}
	e := &candEntry{key: key, cells: cells}
	l.entries[key] = e
	l.pushFront(e)
	if len(l.entries) > l.limit {
		evict := l.tail
		l.unlink(evict)
		delete(l.entries, evict.key)
	}
}

func (l *candLRU) pushFront(e *candEntry) {
	e.prev, e.next = nil, l.head
	if l.head != nil {
		l.head.prev = e
	}
	l.head = e
	if l.tail == nil {
		l.tail = e
	}
}

func (l *candLRU) unlink(e *candEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		l.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		l.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (l *candLRU) moveToFront(e *candEntry) {
	if l.head == e {
		return
	}
	l.unlink(e)
	l.pushFront(e)
}
