package faultmodel

import (
	"math"
	"slices"
	"sort"
	"sync"

	"rowhammer/internal/dram"
	"rowhammer/internal/rng"
)

// The candidate-cell disturb kernel.
//
// Every characterization experiment reduces to asking, millions of
// times, "which cells in this row flip under this effective hammer
// count?". The reference path (disturbReference) answers by re-hashing
// every bit of the row on every call. This kernel instead memoizes,
// per (bank, row), the full candidate-cell set with all hash-derived
// parameters precomputed, sorted ascending by rel — the cell threshold
// relative to the row HCfirst. A disturb call then binary-searches the
// cutoff reachable at the ledger's effective hammer count and walks
// only the candidates below it, evaluating the remaining per-call
// predicates lazily per candidate. The walk is trial-batched: the
// cutoff search and the trial-independent predicates (stored data
// orientation, gating temperature, aggressor coupling) run once per
// candidate, and only the per-trial noise comparison runs per salt,
// each salt accumulating its own flip bitplane (see disturbBatch and
// the replay cache in replay.go).
//
// Equivalence with the reference path is load-bearing: the builder
// replays the exact hash draws and float expressions of
// disturbReference (rel grouping included — float multiplication is
// not associative), and the differential tests in kernel_test.go
// assert bit-identical flip sets across profiles, temperatures, data
// patterns, seeds, and salts.

// tempMargin is half of the 5 °C test step (exclusive): the slack
// around a cell's vulnerable range and gap point.
const tempMargin = 2.4

// candidate is one vulnerable cell of a row with every hash-derived
// parameter resolved at build time. 48 bytes.
type candidate struct {
	rel    float64 // mult × colFactor: threshold ≡ rowHC × rel (sort key)
	h      uint64  // per-cell hash (feeds the salted trial noise)
	loGate float64 // reject when tempC < loGate (−Inf: censored at 50 °C)
	hiGate float64 // reject when tempC > hiGate (+Inf: censored at 90 °C)
	gapT   float64 // skipped interior temperature point (NaN: no gap)
	bit    int32
	charged uint8 // 1 ⇒ true-cell
}

// candidateBytes is the approximate per-cell cache cost, for sizing
// the LRU.
const candidateBytes = 48

// candCacheBudgetBytes bounds the total candidate-cache memory per
// cache (shared across every model attached to it). 64 MiB holds
// hundreds of rows at bench geometries and ~20 rows at the paper-scale
// 64 Ki-bit geometry.
const candCacheBudgetBytes = 64 << 20

// candShardCount is the power-of-two number of candLRU shards. Each
// shard has its own lock and an equal slice of the byte budget, so
// parallel measurement cores touching different rows lock different
// shards instead of serializing on one cache.
const candShardCount = 8

// buildCandidates generates the sorted candidate set of one row. The
// per-cell draws mirror disturbReference exactly, using the
// fixed-arity hash fast paths (bit-identical to the variadic Hash64).
func (m *Model) buildCandidates(bank, row int) []candidate {
	rowBits := m.geo.RowBits()
	cw := m.geo.ChipWidth
	chips := m.geo.Chips
	cells := make([]candidate, 0, rowBits)
	// The (seed, bank, row) fold is shared by every bit of the row;
	// Hash64Suffix completes it per bit, bit-identically to Hash64x4.
	prefix := rng.HashPrefix(m.seed, uint64(bank), uint64(row))
	for bit := 0; bit < rowBits; bit++ {
		h := rng.Hash64Suffix(prefix, uint64(bit))

		u := rng.Uniform01(rng.Hash64x2(h, keyCellMult1))
		if u > m.p.VulnFrac {
			continue
		}
		mult := math.Pow(float64(rowBits)*u, 1/m.p.TailAlpha)
		if mult < minCellMult {
			mult = minCellMult
		}

		line := bit % cw
		rest := bit / cw
		chip := rest % chips
		col := rest / chips
		rel := mult * m.colFactor[chip][col*cw+line]

		// Resolve the temperature range and gap draws once; censored
		// bounds become infinite gates and "no gap" becomes NaN, so
		// the walk needs only three float compares.
		lo, hi := m.cellTempRange(h)
		loGate := math.Inf(-1)
		if lo > 50 {
			loGate = lo - tempMargin
		}
		hiGate := math.Inf(1)
		if hi < 90 {
			hiGate = hi + tempMargin
		}
		gapT := math.NaN()
		if hi-lo >= 10 && m.p.GapProb > 0 {
			if rng.Uniform01(rng.Hash64x2(h, keyCellGapU)) < m.p.GapProb {
				interior := int(hi-lo)/5 - 1
				pick := int(rng.Uniform01(rng.Hash64x2(h, keyCellGapT)) * float64(interior))
				if pick >= interior {
					pick = interior - 1
				}
				gapT = lo + float64(5*(pick+1))
			}
		}

		cells = append(cells, candidate{
			rel:     rel,
			h:       h,
			loGate:  loGate,
			hiGate:  hiGate,
			gapT:    gapT,
			bit:     int32(bit),
			charged: uint8(h & 1),
		})
	}
	// The (rel, bit) key is unique per cell, so any sorting algorithm
	// yields the same array; SortFunc avoids sort.Slice's reflection-
	// based swapper on this hot build path.
	slices.SortFunc(cells, func(a, b candidate) int {
		if a.rel != b.rel {
			if a.rel < b.rel {
				return -1
			}
			return 1
		}
		return int(a.bit - b.bit)
	})
	return cells
}

// candidates returns the row's candidate set, building and caching it
// on first use. The returned slice is read-only: it may be shared
// with other models attached to the same cache on other goroutines.
func (m *Model) candidates(bank, row int) []candidate {
	key := uint64(bank)<<32 | uint64(uint32(row))
	if cs, ok := m.candCache.get(key); ok {
		return cs
	}
	cs := m.buildCandidates(bank, row)
	m.candCache.put(key, cs)
	return cs
}

// disturbBatch is the trial-batched kernel walk. A cell can flip only
// when heff·coupling ≥ rowHC·rel·noise with coupling ≤ 1 and noise ≥
// exp(−σ·zmax), so candidates with rel above the inflated cutoff are
// unreachable under every salt and the sorted order lets a binary
// search skip them all at once. masks[i] (len == len(ctx.Data), zeroed
// here) and flips[i] receive salt i's flip bitplane and count.
func (m *Model) disturbBatch(ctx dram.DisturbContext, rp rowParams, heff, tempC float64, salts []uint64, masks [][]uint64, flips []int) {
	for i := range masks {
		clearWords(masks[i])
		flips[i] = 0
	}
	cells := m.candidates(ctx.Bank, ctx.Row)

	cut := heff / (rp.hc * minCoupling)
	salted := false
	for _, s := range salts {
		if s != 0 {
			salted = true
			break
		}
	}
	if salted {
		cut *= math.Exp(trialNoiseSigma * trialNoiseZMax)
	}
	n := sort.Search(len(cells), func(i int) bool { return cells[i].rel > cut })

	up, down := ctx.Up, ctx.Down
	for i := 0; i < n; i++ {
		c := &cells[i]

		word, off := int(c.bit)>>6, uint(c.bit)&63
		stored := ctx.Data[word] >> off & 1
		if stored != uint64(c.charged) {
			continue
		}

		// Gate comparisons are false for −Inf/+Inf/NaN exactly where
		// tempInRange accepts, so censored ranges and gap-free cells
		// pass for free.
		if tempC < c.loGate || tempC > c.hiGate || math.Abs(tempC-c.gapT) < tempMargin {
			continue
		}

		coupling := minCoupling
		if bitDiffers(up, word, off, stored) || bitDiffers(down, word, off, stored) {
			coupling = 1.0
		}

		base := rp.hc * c.rel
		eff := heff * coupling
		for si, salt := range salts {
			if salt == 0 {
				if eff < base {
					continue
				}
			} else if eff < base*trialNoiseFloor {
				// Below even the most favorable truncated noise draw.
				continue
			} else if eff < base*trialNoiseCeil && eff < base*m.trialNoiseFactorFor(c.h, salt) {
				// Marginal band: only here does the outcome depend on
				// the cell's actual noise draw, so only here do we pay
				// for it — once per (cell, salt) that lands in the band.
				continue
			}
			masks[si][word] |= 1 << off
			flips[si]++
		}
	}
}

// clearWords zeroes a word slice (compiles to a memclr).
func clearWords(w []uint64) {
	for i := range w {
		w[i] = 0
	}
}

// candLRU is a sharded, byte-budgeted, least-recently-used cache of
// candidate sets, keyed like rowCache by bank<<32|row. The key hashes
// onto one of candShardCount shards, each with its own lock and an
// equal slice of the global byte budget (the per-shard budgets sum to
// candCacheBudgetBytes), so parallel measurement cores sharing one
// cache do not serialize on a single mutex.
type candLRU struct {
	shards [candShardCount]candShard
}

type candShard struct {
	mu          sync.Mutex
	budgetBytes int
	bytes       int
	entries     map[uint64]*candEntry
	head        *candEntry // most recently used
	tail        *candEntry
}

type candEntry struct {
	key        uint64
	cells      []candidate
	bytes      int
	prev, next *candEntry
}

// newCandLRU builds a sharded LRU holding at most budgetBytes of
// candidate data in total, split evenly across the shards.
func newCandLRU(budgetBytes int) *candLRU {
	per := budgetBytes / candShardCount
	if per < 1 {
		per = 1
	}
	l := &candLRU{}
	for i := range l.shards {
		l.shards[i].budgetBytes = per
		l.shards[i].entries = make(map[uint64]*candEntry)
	}
	return l
}

// shardFor selects the shard for a key via a splitmix64 finalizer, so
// the adjacent rows a hammer program touches spread across shards.
func (l *candLRU) shardFor(key uint64) *candShard {
	h := key
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return &l.shards[h&(candShardCount-1)]
}

func (l *candLRU) get(key uint64) ([]candidate, bool) {
	s := l.shardFor(key)
	s.mu.Lock()
	e, ok := s.entries[key]
	if !ok {
		s.mu.Unlock()
		return nil, false
	}
	s.moveToFront(e)
	cells := e.cells
	s.mu.Unlock()
	return cells, true
}

func (l *candLRU) put(key uint64, cells []candidate) {
	cost := len(cells) * candidateBytes
	s := l.shardFor(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.entries[key]; ok {
		s.bytes += cost - e.bytes
		e.cells, e.bytes = cells, cost
		s.moveToFront(e)
	} else {
		e := &candEntry{key: key, cells: cells, bytes: cost}
		s.entries[key] = e
		s.pushFront(e)
		s.bytes += cost
	}
	// Evict least-recently-used entries beyond the shard budget. The
	// newest entry always survives, so a row larger than the whole
	// budget is still cached (and evicted by the next insert).
	for s.bytes > s.budgetBytes && len(s.entries) > 1 {
		evict := s.tail
		s.unlink(evict)
		delete(s.entries, evict.key)
		s.bytes -= evict.bytes
	}
}

// totalBytes sums the cached candidate bytes across shards (test and
// diagnostic use).
func (l *candLRU) totalBytes() int {
	n := 0
	for i := range l.shards {
		s := &l.shards[i]
		s.mu.Lock()
		n += s.bytes
		s.mu.Unlock()
	}
	return n
}

// lenEntries counts cached rows across shards (test use).
func (l *candLRU) lenEntries() int {
	n := 0
	for i := range l.shards {
		s := &l.shards[i]
		s.mu.Lock()
		n += len(s.entries)
		s.mu.Unlock()
	}
	return n
}

func (s *candShard) pushFront(e *candEntry) {
	e.prev, e.next = nil, s.head
	if s.head != nil {
		s.head.prev = e
	}
	s.head = e
	if s.tail == nil {
		s.tail = e
	}
}

func (s *candShard) unlink(e *candEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		s.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		s.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (s *candShard) moveToFront(e *candEntry) {
	if s.head == e {
		return
	}
	s.unlink(e)
	s.pushFront(e)
}
