package faultmodel

import (
	"fmt"
	"testing"

	"rowhammer/internal/dram"
	"rowhammer/internal/rng"
)

// fillPattern fills a row buffer with a named data pattern.
func fillPattern(buf []uint64, pattern string, seed uint64) {
	for i := range buf {
		switch pattern {
		case "zeros":
			buf[i] = 0
		case "ones":
			buf[i] = ^uint64(0)
		case "checkered":
			buf[i] = 0xaaaaaaaaaaaaaaaa
		case "random":
			buf[i] = rng.Hash64x2(seed, uint64(i))
		default:
			panic("unknown pattern " + pattern)
		}
	}
}

// diffDisturb runs the candidate kernel and the reference per-bit path
// on identical inputs and fails the test unless the flip sets are
// bit-identical.
func diffDisturb(t *testing.T, kern, ref *Model, bank, row int, led *dram.RowLedger, victim, agg string, patSeed uint64) (flips int) {
	t.Helper()
	geo := kern.geo
	dataK := make([]uint64, geo.RowWords())
	dataR := make([]uint64, geo.RowWords())
	aggData := make([]uint64, geo.RowWords())
	fillPattern(dataK, victim, patSeed)
	fillPattern(dataR, victim, patSeed)
	fillPattern(aggData, agg, patSeed+1)
	neighbors := func(int) []uint64 { return aggData }

	ledCopy := *led
	nK := kern.Disturb(dram.DisturbContext{
		Bank: bank, Row: row, Ledger: led, Data: dataK, Geometry: geo,
		NeighborData: neighbors,
	})
	nR := ref.ReferenceDisturb(dram.DisturbContext{
		Bank: bank, Row: row, Ledger: &ledCopy, Data: dataR, Geometry: geo,
		NeighborData: neighbors,
	})
	if nK != nR {
		t.Fatalf("flip count diverged: kernel %d, reference %d (row %d, victim %s, agg %s)", nK, nR, row, victim, agg)
	}
	for w := range dataK {
		if dataK[w] != dataR[w] {
			t.Fatalf("flip set diverged at word %d: kernel %#x, reference %#x (row %d, victim %s, agg %s)",
				w, dataK[w], dataR[w], row, victim, agg)
		}
	}
	return nK
}

// TestKernelMatchesReference is the kernel's differential anchor: for
// all four manufacturer profiles, the full 50–90 °C grid, several data
// patterns, module seeds, and salted/unsalted trials, the candidate
// kernel must produce flip sets bit-identical to the naive per-bit
// reference path.
func TestKernelMatchesReference(t *testing.T) {
	patterns := []struct{ victim, agg string }{
		{"zeros", "ones"},
		{"ones", "zeros"},
		{"checkered", "checkered"},
		{"random", "random"},
	}
	totalFlips := 0
	for _, p := range Profiles() {
		for _, seed := range []uint64{3, 0x5eed} {
			kern := newTestModel(t, p, seed)
			ref := newTestModel(t, p, seed)
			for _, salt := range []uint64{0, 1, 5} {
				kern.SetSalt(salt)
				ref.SetSalt(salt)
				for tempC := 50.0; tempC <= 90; tempC += 5 {
					for pi, pat := range patterns {
						row := 8 + pi
						// Hammer counts spanning early-out, marginal, and
						// saturated regimes.
						for _, hammers := range []int64{40_000, 150_000, 512_000} {
							led := mkLedger(hammers, 34.5, 16.5, tempC)
							totalFlips += diffDisturb(t, kern, ref, 0, row, led, pat.victim, pat.agg, seed^uint64(tempC))
						}
					}
				}
			}
		}
	}
	if totalFlips == 0 {
		t.Fatal("differential sweep observed no flips; test vacuous")
	}
}

// TestKernelMatchesReferenceOffNominalTimings covers ledger shapes the
// temperature grid sweep does not: non-reference on/off timings and
// distance-2-only disturbance.
func TestKernelMatchesReferenceOffNominalTimings(t *testing.T) {
	for _, p := range Profiles() {
		kern := newTestModel(t, p, 17)
		ref := newTestModel(t, p, 17)
		for row := 8; row < 12; row++ {
			for _, tm := range []struct{ on, off float64 }{{154.5, 16.5}, {34.5, 40.5}, {9.7, 7.9}} {
				led := mkLedger(300_000, tm.on, tm.off, 65)
				diffDisturb(t, kern, ref, 0, row, led, "checkered", "random", 99)
			}
			// Distance-2-only ledger: dist-1 empty, so the temperature
			// source must come from dist 2 in both paths.
			led := &dram.RowLedger{}
			d := &led.Dist[1]
			d.Count = 8_000_000
			d.SumOn = dram.Picos(d.Count) * dram.PicosFromNs(34.5)
			d.SumOff = dram.Picos(d.Count) * dram.PicosFromNs(16.5)
			d.SumTempMilliC = d.Count * 70_000
			diffDisturb(t, kern, ref, 0, row, led, "zeros", "ones", 7)
		}
	}
}

// TestKernelLRUEvictionRecomputesIdentically shrinks the candidate
// cache far below the working set and proves that rows rebuilt after
// eviction produce the same flip sets as a cold model.
func TestKernelLRUEvictionRecomputesIdentically(t *testing.T) {
	p := MfrA()
	small := newTestModel(t, p, 23)
	small.candCache = newCandLRU(2) // working set below will be 8 rows
	cold := newTestModel(t, p, 23)

	run := func(m *Model, row int) []uint64 {
		geo := m.geo
		data := make([]uint64, geo.RowWords())
		agg := make([]uint64, geo.RowWords())
		fillPattern(agg, "ones", 0)
		led := mkLedger(400_000, 34.5, 16.5, 50)
		m.Disturb(dram.DisturbContext{
			Bank: 0, Row: row, Ledger: led, Data: data, Geometry: geo,
			NeighborData: func(int) []uint64 { return agg },
		})
		return data
	}

	rows := []int{8, 9, 10, 11, 12, 13, 14, 15}
	first := map[int][]uint64{}
	for _, r := range rows {
		first[r] = run(small, r)
	}
	if got := len(small.candCache.entries); got != 2 {
		t.Fatalf("LRU held %d rows, want capacity 2", got)
	}
	// Every early row has been evicted by now; revisiting must rebuild
	// and reproduce both the first pass and a never-evicted cold model.
	for _, r := range rows {
		again := run(small, r)
		want := run(cold, r)
		for w := range again {
			if again[w] != first[r][w] || again[w] != want[w] {
				t.Fatalf("row %d word %d: evicted rebuild %#x, first pass %#x, cold model %#x",
					r, w, again[w], first[r][w], want[w])
			}
		}
	}
}

// TestKernelLRUBoundsMemory checks the cache never exceeds its
// capacity no matter how many rows are touched.
func TestKernelLRUBoundsMemory(t *testing.T) {
	m := newTestModel(t, MfrC(), 29)
	capRows := m.candCache.limit
	for row := 8; row < 8+2*capRows; row++ {
		led := mkLedger(150_000, 34.5, 16.5, 50)
		disturbRow(m, 0, row, led, 0, ^uint64(0))
	}
	if got := len(m.candCache.entries); got > capRows {
		t.Fatalf("cache grew to %d rows, limit %d", got, capRows)
	}
}

// TestCandidateSetSortedAndComplete sanity-checks the builder output:
// sorted ascending by rel, one entry per vulnerable bit, and rel
// consistent with Cell() ground truth.
func TestCandidateSetSortedAndComplete(t *testing.T) {
	for _, p := range Profiles() {
		m := newTestModel(t, p, 31)
		cells := m.candidates(0, 9)
		if len(cells) == 0 {
			t.Fatalf("mfr %s: empty candidate set", p.Name)
		}
		seen := map[int32]bool{}
		rowHC := m.RowBaseHC(0, 9)
		for i, c := range cells {
			if i > 0 && cells[i-1].rel > c.rel {
				t.Fatalf("mfr %s: candidates not sorted at %d", p.Name, i)
			}
			if seen[c.bit] {
				t.Fatalf("mfr %s: duplicate bit %d", p.Name, c.bit)
			}
			seen[c.bit] = true
			ci := m.Cell(0, 9, int(c.bit))
			if got, want := rowHC*c.rel, ci.ThresholdHC; got != want {
				t.Fatalf("mfr %s bit %d: kernel threshold %v, Cell() %v", p.Name, c.bit, got, want)
			}
		}
	}
}

// TestLedgerTempCZeroCelsius pins the sentinel fix: a ledger whose
// only recorded temperature averages exactly 0 °C must gate at 0 °C,
// not silently fall back to dist-2 or reference conditions.
func TestLedgerTempCZeroCelsius(t *testing.T) {
	led := &dram.RowLedger{}
	led.Dist[0].Count = 100
	led.Dist[0].SumTempMilliC = 0 // genuinely 0 °C
	led.Dist[1].Count = 50
	led.Dist[1].SumTempMilliC = 50 * 70_000
	if got := ledgerTempC(led); got != 0 {
		t.Fatalf("ledgerTempC = %v, want 0 (dist-1 recorded 0 °C)", got)
	}
	led.Dist[0].Count = 0
	if got := ledgerTempC(led); got != 70 {
		t.Fatalf("ledgerTempC = %v, want 70 (dist-1 empty, dist-2 at 70 °C)", got)
	}
	led.Dist[1].Count = 0
	if got := ledgerTempC(led); got != refTempC {
		t.Fatalf("ledgerTempC = %v, want reference %v for empty ledger", got, refTempC)
	}
}

func BenchmarkDisturbKernel(b *testing.B) {
	benchDisturb(b, func(m *Model, ctx dram.DisturbContext) int { return m.Disturb(ctx) })
}

func BenchmarkDisturbReference(b *testing.B) {
	benchDisturb(b, func(m *Model, ctx dram.DisturbContext) int { return m.ReferenceDisturb(ctx) })
}

func benchDisturb(b *testing.B, disturb func(*Model, dram.DisturbContext) int) {
	geo := testGeometry()
	m, err := NewModel(Config{Profile: MfrA(), ModuleSeed: 61, Geometry: geo})
	if err != nil {
		b.Fatal(err)
	}
	data := make([]uint64, geo.RowWords())
	agg := make([]uint64, geo.RowWords())
	fillPattern(agg, "ones", 0)
	b.ReportAllocs()
	b.ResetTimer()
	sink := 0
	for i := 0; i < b.N; i++ {
		led := mkLedger(512_000, 34.5, 16.5, 50)
		for w := range data {
			data[w] = 0
		}
		sink += disturb(m, dram.DisturbContext{
			Bank: 0, Row: 100, Ledger: led, Data: data, Geometry: geo,
			NeighborData: func(int) []uint64 { return agg },
		})
	}
	if sink == 0 {
		b.Fatal("no flips")
	}
	_ = fmt.Sprint(sink)
}
