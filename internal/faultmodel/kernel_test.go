package faultmodel

import (
	"fmt"
	"testing"

	"rowhammer/internal/dram"
	"rowhammer/internal/rng"
)

// fillPattern fills a row buffer with a named data pattern.
func fillPattern(buf []uint64, pattern string, seed uint64) {
	for i := range buf {
		switch pattern {
		case "zeros":
			buf[i] = 0
		case "ones":
			buf[i] = ^uint64(0)
		case "checkered":
			buf[i] = 0xaaaaaaaaaaaaaaaa
		case "random":
			buf[i] = rng.Hash64x2(seed, uint64(i))
		default:
			panic("unknown pattern " + pattern)
		}
	}
}

// diffDisturb runs the candidate kernel and the reference per-bit path
// on identical inputs and fails the test unless the flip sets are
// bit-identical.
func diffDisturb(t *testing.T, kern, ref *Model, bank, row int, led *dram.RowLedger, victim, agg string, patSeed uint64) (flips int) {
	t.Helper()
	geo := kern.geo
	dataK := make([]uint64, geo.RowWords())
	dataR := make([]uint64, geo.RowWords())
	neighbors := make([]uint64, geo.RowWords())
	fillPattern(dataK, victim, patSeed)
	fillPattern(dataR, victim, patSeed)
	fillPattern(neighbors, agg, patSeed+1)

	ledCopy := *led
	// The kernel path emits a flip bitplane which is XORed in
	// afterwards (as the module does); the reference path flips dataR
	// in place, bit by bit. Comparing the resulting words proves the
	// mask application is bit-identical to per-bit updates.
	nK := disturbApply(kern, dram.DisturbContext{
		Bank: bank, Row: row, Ledger: led, Data: dataK, Geometry: geo,
		Up: neighbors, Down: neighbors,
	})
	nR := ref.ReferenceDisturb(dram.DisturbContext{
		Bank: bank, Row: row, Ledger: &ledCopy, Data: dataR, Geometry: geo,
		Up: neighbors, Down: neighbors,
	})
	if nK != nR {
		t.Fatalf("flip count diverged: kernel %d, reference %d (row %d, victim %s, agg %s)", nK, nR, row, victim, agg)
	}
	for w := range dataK {
		if dataK[w] != dataR[w] {
			t.Fatalf("flip set diverged at word %d: kernel %#x, reference %#x (row %d, victim %s, agg %s)",
				w, dataK[w], dataR[w], row, victim, agg)
		}
	}
	return nK
}

// TestKernelMatchesReference is the kernel's differential anchor: for
// all four manufacturer profiles, the full 50–90 °C grid, several data
// patterns, module seeds, and salted/unsalted trials, the candidate
// kernel must produce flip sets bit-identical to the naive per-bit
// reference path.
func TestKernelMatchesReference(t *testing.T) {
	patterns := []struct{ victim, agg string }{
		{"zeros", "ones"},
		{"ones", "zeros"},
		{"checkered", "checkered"},
		{"random", "random"},
	}
	totalFlips := 0
	for _, p := range Profiles() {
		for _, seed := range []uint64{3, 0x5eed} {
			kern := newTestModel(t, p, seed)
			ref := newTestModel(t, p, seed)
			for _, salt := range []uint64{0, 1, 5} {
				kern.SetSalt(salt)
				ref.SetSalt(salt)
				for tempC := 50.0; tempC <= 90; tempC += 5 {
					for pi, pat := range patterns {
						row := 8 + pi
						// Hammer counts spanning early-out, marginal, and
						// saturated regimes.
						for _, hammers := range []int64{40_000, 150_000, 512_000} {
							led := mkLedger(hammers, 34.5, 16.5, tempC)
							totalFlips += diffDisturb(t, kern, ref, 0, row, led, pat.victim, pat.agg, seed^uint64(tempC))
						}
					}
				}
			}
		}
	}
	if totalFlips == 0 {
		t.Fatal("differential sweep observed no flips; test vacuous")
	}
}

// TestKernelMatchesReferenceOffNominalTimings covers ledger shapes the
// temperature grid sweep does not: non-reference on/off timings and
// distance-2-only disturbance.
func TestKernelMatchesReferenceOffNominalTimings(t *testing.T) {
	for _, p := range Profiles() {
		kern := newTestModel(t, p, 17)
		ref := newTestModel(t, p, 17)
		for row := 8; row < 12; row++ {
			for _, tm := range []struct{ on, off float64 }{{154.5, 16.5}, {34.5, 40.5}, {9.7, 7.9}} {
				led := mkLedger(300_000, tm.on, tm.off, 65)
				diffDisturb(t, kern, ref, 0, row, led, "checkered", "random", 99)
			}
			// Distance-2-only ledger: dist-1 empty, so the temperature
			// source must come from dist 2 in both paths.
			led := &dram.RowLedger{}
			d := &led.Dist[1]
			d.Count = 8_000_000
			d.SumOn = dram.Picos(d.Count) * dram.PicosFromNs(34.5)
			d.SumOff = dram.Picos(d.Count) * dram.PicosFromNs(16.5)
			d.SumTempMilliC = d.Count * 70_000
			diffDisturb(t, kern, ref, 0, row, led, "zeros", "ones", 7)
		}
	}
}

// TestKernelLRUEvictionRecomputesIdentically shrinks the candidate
// cache far below the working set and proves that rows rebuilt after
// eviction produce the same flip sets as a cold model. It drives the
// walk through DisturbBatch, which bypasses the replay cache, so a
// revisit really does hit the candidate LRU.
func TestKernelLRUEvictionRecomputesIdentically(t *testing.T) {
	p := MfrA()
	small := newTestModel(t, p, 23)
	// A 1-byte budget keeps exactly one (oversized) entry per shard:
	// maximal thrash, every collision evicts.
	small.candCache = newCandLRU(1)
	cold := newTestModel(t, p, 23)

	run := func(m *Model, row int) []uint64 {
		geo := m.geo
		data := make([]uint64, geo.RowWords())
		agg := make([]uint64, geo.RowWords())
		fillPattern(agg, "ones", 0)
		led := mkLedger(400_000, 34.5, 16.5, 50)
		masks := [][]uint64{make([]uint64, geo.RowWords())}
		flips := []int{0}
		m.DisturbBatch(dram.DisturbContext{
			Bank: 0, Row: row, Ledger: led, Data: data, Geometry: geo,
			Up: agg, Down: agg,
		}, []uint64{0}, masks, flips)
		dram.ApplyFlipMask(data, masks[0])
		return data
	}

	var rows []int
	for r := 8; r < 40; r++ {
		rows = append(rows, r)
	}
	first := map[int][]uint64{}
	for _, r := range rows {
		first[r] = run(small, r)
	}
	if got := small.candCache.lenEntries(); got > candShardCount {
		t.Fatalf("thrashed LRU held %d rows, want at most one per shard (%d)", got, candShardCount)
	}
	// Most rows have been evicted by now; revisiting must rebuild and
	// reproduce both the first pass and a never-evicted cold model.
	for _, r := range rows {
		again := run(small, r)
		want := run(cold, r)
		for w := range again {
			if again[w] != first[r][w] || again[w] != want[w] {
				t.Fatalf("row %d word %d: evicted rebuild %#x, first pass %#x, cold model %#x",
					r, w, again[w], first[r][w], want[w])
			}
		}
	}
}

// TestKernelLRUBoundsMemory checks that the per-shard budgets sum to
// the global byte budget and that a thrashing workload never exceeds
// it (each entry fits its shard budget here, so the min-one-entry
// retention rule cannot push a shard over).
func TestKernelLRUBoundsMemory(t *testing.T) {
	m := newTestModel(t, MfrC(), 29)
	sum := 0
	for i := range m.candCache.shards {
		sum += m.candCache.shards[i].budgetBytes
	}
	if sum > candCacheBudgetBytes || sum < candCacheBudgetBytes-candShardCount {
		t.Fatalf("per-shard budgets sum to %d, want %d (± rounding)", sum, candCacheBudgetBytes)
	}

	// Shrink to ~4 average rows per shard and touch far more rows.
	perRow := len(m.candidates(0, 8)) * candidateBytes
	budget := 32 * perRow
	small := newCandLRU(budget)
	m.candCache = small
	for row := 8; row < 8+256; row++ {
		led := mkLedger(150_000, 34.5, 16.5, 50)
		disturbRow(m, 0, row, led, 0, ^uint64(0))
	}
	if got := small.totalBytes(); got > budget {
		t.Fatalf("cache holds %d bytes, budget %d", got, budget)
	}
	if got := small.lenEntries(); got >= 256 {
		t.Fatalf("no eviction happened across %d rows (%d entries)", 256, got)
	}
}

// TestCandidateSetSortedAndComplete sanity-checks the builder output:
// sorted ascending by rel, one entry per vulnerable bit, and rel
// consistent with Cell() ground truth.
func TestCandidateSetSortedAndComplete(t *testing.T) {
	for _, p := range Profiles() {
		m := newTestModel(t, p, 31)
		cells := m.candidates(0, 9)
		if len(cells) == 0 {
			t.Fatalf("mfr %s: empty candidate set", p.Name)
		}
		seen := map[int32]bool{}
		rowHC := m.RowBaseHC(0, 9)
		for i, c := range cells {
			if i > 0 && cells[i-1].rel > c.rel {
				t.Fatalf("mfr %s: candidates not sorted at %d", p.Name, i)
			}
			if seen[c.bit] {
				t.Fatalf("mfr %s: duplicate bit %d", p.Name, c.bit)
			}
			seen[c.bit] = true
			ci := m.Cell(0, 9, int(c.bit))
			if got, want := rowHC*c.rel, ci.ThresholdHC; got != want {
				t.Fatalf("mfr %s bit %d: kernel threshold %v, Cell() %v", p.Name, c.bit, got, want)
			}
		}
	}
}

// TestLedgerTempCZeroCelsius pins the sentinel fix: a ledger whose
// only recorded temperature averages exactly 0 °C must gate at 0 °C,
// not silently fall back to dist-2 or reference conditions.
func TestLedgerTempCZeroCelsius(t *testing.T) {
	led := &dram.RowLedger{}
	led.Dist[0].Count = 100
	led.Dist[0].SumTempMilliC = 0 // genuinely 0 °C
	led.Dist[1].Count = 50
	led.Dist[1].SumTempMilliC = 50 * 70_000
	if got := ledgerTempC(led); got != 0 {
		t.Fatalf("ledgerTempC = %v, want 0 (dist-1 recorded 0 °C)", got)
	}
	led.Dist[0].Count = 0
	if got := ledgerTempC(led); got != 70 {
		t.Fatalf("ledgerTempC = %v, want 70 (dist-1 empty, dist-2 at 70 °C)", got)
	}
	led.Dist[1].Count = 0
	if got := ledgerTempC(led); got != refTempC {
		t.Fatalf("ledgerTempC = %v, want reference %v for empty ledger", got, refTempC)
	}
}

func BenchmarkDisturbKernel(b *testing.B) {
	benchDisturb(b, func(m *Model, ctx dram.DisturbContext) int {
		n, _ := m.Disturb(ctx)
		return n
	})
}

func BenchmarkDisturbReference(b *testing.B) {
	benchDisturb(b, func(m *Model, ctx dram.DisturbContext) int { return m.ReferenceDisturb(ctx) })
}

func benchDisturb(b *testing.B, disturb func(*Model, dram.DisturbContext) int) {
	geo := testGeometry()
	m, err := NewModel(Config{Profile: MfrA(), ModuleSeed: 61, Geometry: geo})
	if err != nil {
		b.Fatal(err)
	}
	data := make([]uint64, geo.RowWords())
	agg := make([]uint64, geo.RowWords())
	fillPattern(agg, "ones", 0)
	b.ReportAllocs()
	b.ResetTimer()
	sink := 0
	for i := 0; i < b.N; i++ {
		led := mkLedger(512_000, 34.5, 16.5, 50)
		for w := range data {
			data[w] = 0
		}
		sink += disturb(m, dram.DisturbContext{
			Bank: 0, Row: 100, Ledger: led, Data: data, Geometry: geo,
			Up: agg, Down: agg,
		})
	}
	if sink == 0 {
		b.Fatal("no flips")
	}
	_ = fmt.Sprint(sink)
}
