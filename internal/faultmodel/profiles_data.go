package faultmodel

import "rowhammer/internal/dram"

// tempClustersFromMatrix converts a Fig. 3-style lower-triangular
// cluster matrix into TempClusters. rows[i] holds the percentages for
// upper limit 50+5i °C, with entries for lower limits 50, 55, ...,
// 50+5i °C.
func tempClustersFromMatrix(rows [][]float64) []TempCluster {
	var out []TempCluster
	for i, row := range rows {
		hi := 50 + 5*float64(i)
		for j, pct := range row {
			lo := 50 + 5*float64(j)
			if pct > 0 {
				out = append(out, TempCluster{LoC: lo, HiC: hi, Prob: pct / 100})
			}
		}
	}
	return out
}

// The Fig. 3 vulnerable-temperature-range matrices, transcribed from
// the paper (percent of vulnerable cells per (lower, upper) cluster).
var (
	fig3MfrA = [][]float64{
		{4.8},
		{4.2, 0.3},
		{4.4, 0.3, 0.3},
		{4.0, 0.4, 0.2, 0.3},
		{3.8, 0.4, 0.3, 0.2, 0.4},
		{3.5, 0.5, 0.4, 0.4, 0.2, 0.3},
		{3.0, 0.5, 0.5, 0.5, 0.3, 0.3, 0.3},
		{2.7, 0.5, 0.5, 0.5, 0.4, 0.4, 0.3, 0.4},
		{14.2, 3.7, 3.9, 5.0, 5.4, 6.2, 6.5, 7.0, 7.4},
	}
	fig3MfrB = [][]float64{
		{7.0},
		{6.4, 0.3},
		{6.2, 0.2, 0.3},
		{6.2, 0.2, 0.2, 0.3},
		{5.4, 0.3, 0.2, 0.2, 0.3},
		{4.7, 0.3, 0.3, 0.2, 0.1, 0.2},
		{4.4, 0.4, 0.4, 0.3, 0.2, 0.2, 0.2},
		{3.8, 0.4, 0.4, 0.3, 0.3, 0.2, 0.1, 0.2},
		{17.4, 3.1, 3.7, 3.9, 4.1, 4.5, 3.9, 4.0, 4.3},
	}
	fig3MfrC = [][]float64{
		{4.8},
		{3.4, 0.4},
		{4.3, 0.4, 0.3},
		{3.8, 0.6, 0.3, 0.4},
		{3.1, 0.5, 0.3, 0.3, 0.4},
		{3.1, 0.7, 0.5, 0.5, 0.3, 0.4},
		{2.6, 0.7, 0.5, 0.6, 0.5, 0.3, 0.4},
		{2.2, 0.6, 0.5, 0.6, 0.5, 0.5, 0.4, 0.5},
		{9.6, 3.8, 3.6, 5.2, 6.0, 5.9, 7.9, 8.7, 9.0},
	}
	fig3MfrD = [][]float64{
		{4.3},
		{3.7, 0.3},
		{4.0, 0.1, 0.2},
		{4.0, 0.1, 0.1, 0.2},
		{3.3, 0.1, 0.1, 0.1, 0.2},
		{3.4, 0.2, 0.1, 0.1, 0.1, 0.2},
		{3.3, 0.2, 0.2, 0.1, 0.1, 0.1, 0.2},
		{3.1, 0.2, 0.2, 0.2, 0.1, 0.1, 0.1, 0.3},
		{29.8, 4.1, 4.1, 4.4, 4.7, 4.6, 4.8, 5.0, 5.2},
	}
)

// Row-weakness quantile functions. A/B/C share the wide heavy-tailed
// shape behind Fig. 11's 1.6×/2.0×/2.2× percentile ratios; D's rows
// vary much less (its Fig. 11/14 curves are flat), which also yields
// Fig. 14's steeper min-vs-avg slope for D.
var (
	wideRowQuantiles = []QuantilePoint{
		{0, 1.0}, {0.01, 1.6}, {0.05, 2.0}, {0.10, 2.2}, {0.25, 2.3},
		{0.50, 2.45}, {0.75, 2.7}, {0.90, 3.0}, {0.99, 3.8}, {1, 5.0},
	}
	narrowRowQuantiles = []QuantilePoint{
		{0, 1.0}, {0.01, 1.15}, {0.05, 1.25}, {0.10, 1.3}, {0.25, 1.4},
		{0.50, 1.5}, {0.75, 1.65}, {0.90, 1.8}, {0.99, 2.1}, {1, 2.5},
	}
)

// Profiles returns the four calibrated manufacturer profiles.
// The returned slice is freshly allocated; callers may modify it.
func Profiles() []*Profile {
	return []*Profile{MfrA(), MfrB(), MfrC(), MfrD()}
}

// ProfileByName returns the profile with the given letter name, or nil.
func ProfileByName(name string) *Profile {
	for _, p := range Profiles() {
		if p.Name == name {
			return p
		}
	}
	return nil
}

// MfrA returns the Micron-like profile: BER strongly increasing with
// temperature, strongest tAggOn response (BER ×10.2), mostly
// process-induced column variation, 27.8% flip-free columns.
func MfrA() *Profile {
	return &Profile{
		Name:    "A",
		MfrLike: "Micron-like",

		RowHCQuantiles: wideRowQuantiles,
		BaseHC:         45e3,
		ModuleSigma:    0.35,
		TailAlpha:      5.0,
		VulnFrac:       1.0,

		TempClusters:  tempClustersFromMatrix(fig3MfrA),
		GapProb:       0.009, // Table 3: 99.1% flip at all in-range temps
		TempSlope:     0.0012,
		InflectionLoC: 43, InflectionHiC: 103,
		InflectionCurvature: 0.10,

		OnTimeGainPerNs:   0.00556, // HCfirst −40.0% at +120 ns
		OffTimeDecayPerNs: 0.0141,  // HCfirst +33.8% at +24 ns

		ColSigma:         0.40,
		ColProcessWeight: 0.90,

		Remap: dram.DirectRemap{},
		Modules: []ModuleInfo{
			{Type: "DDR4", ChipID: "MT40A2G4WE-083E:B", Vendor: "Micron", ModuleID: "MTA18ASF2G72PZ-2G3B1QG", FreqMTs: 2400, DateCode: "1911", Density: "8Gb", DieRev: "B", Org: "x4", NumModules: 6, NumChips: 96},
			{Type: "DDR4", ChipID: "MT40A2G4WE-083E:B", Vendor: "Micron", ModuleID: "MTA18ASF2G72PZ-2G3B1QG", FreqMTs: 2400, DateCode: "1843", Density: "8Gb", DieRev: "B", Org: "x4", NumModules: 2, NumChips: 32},
			{Type: "DDR4", ChipID: "MT40A2G4WE-083E:B", Vendor: "Micron", ModuleID: "MTA18ASF2G72PZ-2G3B1QG", FreqMTs: 2400, DateCode: "1844", Density: "8Gb", DieRev: "B", Org: "x4", NumModules: 1, NumChips: 16},
			{Type: "DDR3", ChipID: "MT41K512M8DA-107:P", Vendor: "Crucial", ModuleID: "CT51264BF160BJ.M8FP", FreqMTs: 1600, DateCode: "1703", Density: "4Gb", DieRev: "P", Org: "x8", NumModules: 1, NumChips: 8},
		},
	}
}

// MfrB returns the Samsung-like profile: the only manufacturer whose
// BER *decreases* with temperature; weakest tAggOn response; almost
// purely design-induced column variation (every column flips).
func MfrB() *Profile {
	return &Profile{
		Name:    "B",
		MfrLike: "Samsung-like",

		RowHCQuantiles: wideRowQuantiles,
		BaseHC:         33e3,
		ModuleSigma:    0.55,
		TailAlpha:      4.0,
		VulnFrac:       1.0,

		TempClusters:  tempClustersFromMatrix(fig3MfrB),
		GapProb:       0.011, // Table 3: 98.9%
		TempSlope:     0.0,
		InflectionLoC: 30, InflectionHiC: 90,
		InflectionCurvature: 0.10,

		OnTimeGainPerNs:   0.00329, // HCfirst −28.3%
		OffTimeDecayPerNs: 0.0103,  // HCfirst +24.7%

		ColSigma:         0.08,
		ColProcessWeight: 0.10,

		Remap: dram.MirrorRemap{},
		Modules: []ModuleInfo{
			{Type: "DDR4", ChipID: "K4A4G085WF-BCTD", Vendor: "G.SKILL", ModuleID: "F4-2400C17S-8GNT", FreqMTs: 2400, DateCode: "2021-01", Density: "4Gb", DieRev: "F", Org: "x8", NumModules: 4, NumChips: 32},
			{Type: "DDR3", ChipID: "K4B4G0846Q", Vendor: "Samsung", ModuleID: "M471B5173QH0-YK0", FreqMTs: 1600, DateCode: "1416", Density: "4Gb", DieRev: "Q", Org: "x8", NumModules: 1, NumChips: 8},
		},
	}
}

// MfrC returns the SK-Hynix-like profile: moderate temperature
// response, strongest tAggOff response (HCfirst +50.1%), mixed
// design/process column variation, 31.1% flip-free columns.
func MfrC() *Profile {
	return &Profile{
		Name:    "C",
		MfrLike: "SK-Hynix-like",

		RowHCQuantiles: wideRowQuantiles,
		BaseHC:         48e3,
		ModuleSigma:    0.35,
		TailAlpha:      4.3,
		VulnFrac:       1.0,

		TempClusters:  tempClustersFromMatrix(fig3MfrC),
		GapProb:       0.020, // Table 3: 98.0%
		TempSlope:     -0.0011,
		InflectionLoC: 28, InflectionHiC: 87,
		InflectionCurvature: 0.10,

		OnTimeGainPerNs:   0.00405, // HCfirst −32.7%
		OffTimeDecayPerNs: 0.0209,  // HCfirst +50.1%

		ColSigma:         0.45,
		ColProcessWeight: 0.45,

		Remap: dram.DefaultScramble(),
		Modules: []ModuleInfo{
			{Type: "DDR4", ChipID: "DWCW (partial marking)", Vendor: "G.SKILL", ModuleID: "F4-2400C17S-8GNT", FreqMTs: 2400, DateCode: "2042", Density: "4Gb", DieRev: "B", Org: "x8", NumModules: 5, NumChips: 40},
			{Type: "DDR3", ChipID: "H5TC4G83BFR-PBA", Vendor: "SK Hynix", ModuleID: "HMT451S6BFR8A-PB", FreqMTs: 1600, DateCode: "1535", Density: "4Gb", DieRev: "B", Org: "x8", NumModules: 1, NumChips: 8},
		},
	}
}

// MfrD returns the Nanya-like profile: the strongest BER increase with
// temperature (≈ +200% at 90 °C), narrow row-to-row variation (flat
// Fig. 11 curves, steep Fig. 14 slope), highest absolute HCfirst.
func MfrD() *Profile {
	return &Profile{
		Name:    "D",
		MfrLike: "Nanya-like",

		RowHCQuantiles: narrowRowQuantiles,
		BaseHC:         85e3,
		ModuleSigma:    0.08,
		TailAlpha:      5.0,
		VulnFrac:       1.0,

		TempClusters:  tempClustersFromMatrix(fig3MfrD),
		GapProb:       0.008, // Table 3: 99.2%
		TempSlope:     0.0048,
		InflectionLoC: 46, InflectionHiC: 106,
		InflectionCurvature: 0.10,

		OnTimeGainPerNs:   0.00496, // HCfirst −37.3%
		OffTimeDecayPerNs: 0.0140,  // HCfirst +33.7%

		ColSigma:         0.22,
		ColProcessWeight: 0.60,

		Remap: dram.DirectRemap{},
		Modules: []ModuleInfo{
			{Type: "DDR4", ChipID: "D1028AN9CPGRK", Vendor: "Kingston", ModuleID: "KVR24N17S8/8", FreqMTs: 2400, DateCode: "2046", Density: "8Gb", DieRev: "C", Org: "x8", NumModules: 4, NumChips: 32},
		},
	}
}
