// Package profiling wires the standard pprof profile outputs into the
// CLIs (-cpuprofile / -memprofile), so hot-path regressions in the
// field can be diagnosed with `go tool pprof` against a production
// binary.
package profiling

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling when cpuPath is non-empty and arranges a
// heap snapshot at memPath when that is non-empty. The returned stop
// function finishes both profiles and is safe to call more than once;
// callers must invoke it on every exit path (os.Exit skips deferred
// calls, so fatal helpers should call it explicitly).
func Start(cpuPath, memPath string) (stop func(), err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("profiling: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("profiling: %w", err)
		}
	}
	stopped := false
	return func() {
		if stopped {
			return
		}
		stopped = true
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "profiling: closing cpu profile: %v\n", err)
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintf(os.Stderr, "profiling: %v\n", err)
				return
			}
			defer f.Close()
			// Materialize final heap statistics before the snapshot.
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "profiling: writing heap profile: %v\n", err)
			}
		}
	}, nil
}
