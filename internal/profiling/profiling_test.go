package profiling

import (
	"os"
	"path/filepath"
	"testing"
)

func TestStartWritesProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	stop, err := Start(cpu, mem)
	if err != nil {
		t.Fatal(err)
	}
	// Burn a little CPU so the profile has samples to encode.
	x := 0
	for i := 0; i < 1_000_000; i++ {
		x += i * i
	}
	_ = x
	stop()
	stop() // must be idempotent: fatal paths and defers both call it
	for _, p := range []string{cpu, mem} {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile %s: %v", p, err)
		}
		if st.Size() == 0 {
			t.Fatalf("profile %s is empty", p)
		}
	}
}

func TestStartNoop(t *testing.T) {
	stop, err := Start("", "")
	if err != nil {
		t.Fatal(err)
	}
	stop()
}

func TestStartBadPath(t *testing.T) {
	if _, err := Start(filepath.Join(t.TempDir(), "missing", "cpu.pprof"), ""); err == nil {
		t.Fatal("expected error for uncreatable cpu profile path")
	}
}
