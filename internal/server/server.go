package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"

	"rowhammer/internal/artifact"
	"rowhammer/internal/store"
)

// Server is the HTTP API over a campaign manager and its artifact
// store.
//
//	POST /v1/campaigns            submit a Spec; 202 + status (idempotent)
//	GET  /v1/campaigns            list campaign statuses
//	GET  /v1/campaigns/{id}       one campaign's status
//	GET  /v1/campaigns/{id}/events  status stream over SSE until terminal
//	GET  /v1/artifacts            query the index (experiment, kind, mfr, seed, temp)
//	GET  /v1/artifacts/{id}       raw artifact payload, byte-identical to ingest
//	GET  /v1/artifacts/{id}/meta  the index entry
//	GET  /v1/artifacts/{id}/rows  filtered/sorted rows (prefix=, label=k:v)
//	GET  /healthz                 liveness + store size
type Server struct {
	mgr *Manager
	st  *store.Store
	mux *http.ServeMux

	// maxSpecBytes bounds the POST /v1/campaigns request body; a spec
	// is a few hundred bytes of JSON, so anything near the limit is
	// hostile or broken. DefaultMaxSpecBytes unless SetMaxSpecBytes
	// says otherwise.
	maxSpecBytes int64
}

// DefaultMaxSpecBytes bounds a submitted campaign spec (1 MiB).
const DefaultMaxSpecBytes = 1 << 20

// New builds the HTTP API over mgr and its store.
func New(mgr *Manager, st *store.Store) *Server {
	s := &Server{mgr: mgr, st: st, mux: http.NewServeMux(), maxSpecBytes: DefaultMaxSpecBytes}
	s.mux.HandleFunc("POST /v1/campaigns", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/campaigns", s.handleCampaigns)
	s.mux.HandleFunc("GET /v1/campaigns/{id}", s.handleCampaign)
	s.mux.HandleFunc("GET /v1/campaigns/{id}/events", s.handleEvents)
	s.mux.HandleFunc("GET /v1/artifacts", s.handleArtifacts)
	s.mux.HandleFunc("GET /v1/artifacts/{id}", s.handleArtifact)
	s.mux.HandleFunc("GET /v1/artifacts/{id}/meta", s.handleArtifactMeta)
	s.mux.HandleFunc("GET /v1/artifacts/{id}/rows", s.handleArtifactRows)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	return s
}

// Handler returns the routed handler.
func (s *Server) Handler() http.Handler { return s.mux }

// SetMaxSpecBytes overrides the submit body bound (<= 0 restores the
// default).
func (s *Server) SetMaxSpecBytes(n int64) {
	if n <= 0 {
		n = DefaultMaxSpecBytes
	}
	s.maxSpecBytes = n
}

// Mount registers additional routes — e.g. the shard lease service
// (leasesvc.Service.Register) — on the server's mux, so rhserved
// serves campaigns, artifacts and leases from one listener.
func (s *Server) Mount(register func(mux *http.ServeMux)) { register(s.mux) }

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec Spec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.maxSpecBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Errorf("spec exceeds %d bytes", s.maxSpecBytes))
			return
		}
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding spec: %w", err))
		return
	}
	st, existing, err := s.mgr.Submit(spec)
	var qerr *QueueFullError
	switch {
	case errors.Is(err, ErrDraining):
		writeError(w, http.StatusServiceUnavailable, err)
		return
	case errors.As(err, &qerr):
		// Backpressure, not rejection: the queue is full right now.
		// Retry-After is a heuristic (campaigns vary in length), but
		// it keeps well-behaved clients from hammering a full queue.
		w.Header().Set("Retry-After", "5")
		writeError(w, http.StatusTooManyRequests, err)
		return
	case err != nil:
		writeError(w, http.StatusBadRequest, err)
		return
	}
	code := http.StatusAccepted
	if existing {
		code = http.StatusOK
	}
	writeJSON(w, code, struct {
		Status
		Existing bool `json:"existing"`
	}{st, existing})
}

func (s *Server) handleCampaigns(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.mgr.Statuses())
}

func (s *Server) handleCampaign(w http.ResponseWriter, r *http.Request) {
	st, ok := s.mgr.Status(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown campaign %q", r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// handleEvents streams status snapshots as server-sent events: one
// `event: status` per change, ending after the terminal status.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	ch, cancel, ok := s.mgr.Subscribe(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown campaign %q", r.PathValue("id")))
		return
	}
	defer cancel()
	flusher, canFlush := w.(http.Flusher)
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	for {
		select {
		case st, open := <-ch:
			if !open {
				return
			}
			payload, err := json.Marshal(st)
			if err != nil {
				return
			}
			if _, err := fmt.Fprintf(w, "event: status\ndata: %s\n\n", payload); err != nil {
				return
			}
			if canFlush {
				flusher.Flush()
			}
		case <-r.Context().Done():
			return
		}
	}
}

// parseQuery maps URL query parameters onto a store query.
func parseQuery(r *http.Request) (store.Query, error) {
	q := store.Query{
		Experiment: r.URL.Query().Get("experiment"),
		Kind:       r.URL.Query().Get("kind"),
		Mfr:        r.URL.Query().Get("mfr"),
	}
	if v := r.URL.Query().Get("seed"); v != "" {
		seed, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			return q, fmt.Errorf("bad seed %q: %w", v, err)
		}
		q.Seed = &seed
	}
	if v := r.URL.Query().Get("temp"); v != "" {
		temp, err := strconv.ParseFloat(v, 64)
		if err != nil {
			return q, fmt.Errorf("bad temp %q: %w", v, err)
		}
		q.Temp = &temp
	}
	return q, nil
}

func (s *Server) handleArtifacts(w http.ResponseWriter, r *http.Request) {
	q, err := parseQuery(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	metas := s.st.List(q)
	if metas == nil {
		metas = []store.Meta{}
	}
	writeJSON(w, http.StatusOK, metas)
}

// handleArtifact serves the stored payload verbatim — the bytes are
// identical to what `rhchar -format json` (experiment kinds) or
// `rhfleet -summary` (measurement kinds) writes for the same spec.
func (s *Server) handleArtifact(w http.ResponseWriter, r *http.Request) {
	_, payload, err := s.st.Get(r.PathValue("id"))
	if err != nil {
		writeError(w, statusForStoreErr(err), err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(payload)
}

func (s *Server) handleArtifactMeta(w http.ResponseWriter, r *http.Request) {
	meta, _, err := s.st.Get(r.PathValue("id"))
	if err != nil {
		writeError(w, statusForStoreErr(err), err)
		return
	}
	writeJSON(w, http.StatusOK, meta)
}

// handleArtifactRows decodes the stored artifact and serves its rows
// through the shared artifact query helpers: prefix= filters on the
// row-key prefix, label=name:value on a label, and the result is
// key-sorted for stable pagination-free reads.
func (s *Server) handleArtifactRows(w http.ResponseWriter, r *http.Request) {
	_, payload, err := s.st.Get(r.PathValue("id"))
	if err != nil {
		writeError(w, statusForStoreErr(err), err)
		return
	}
	a, err := artifact.Decode(payload)
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, fmt.Errorf("artifact %s is not decodable: %w", r.PathValue("id"), err))
		return
	}
	rows := a.Rows
	if prefix := r.URL.Query().Get("prefix"); prefix != "" {
		rows = artifact.Filter(rows, artifact.KeyPrefix(prefix))
	}
	if label := r.URL.Query().Get("label"); label != "" {
		name, value, ok := cutLabel(label)
		if !ok {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad label filter %q (want name:value)", label))
			return
		}
		rows = artifact.Filter(rows, artifact.HasLabel(name, value))
	}
	artifact.SortRowsByKey(rows)
	if rows == nil {
		rows = []artifact.Row{}
	}
	writeJSON(w, http.StatusOK, rows)
}

func cutLabel(s string) (name, value string, ok bool) {
	for i := 0; i < len(s); i++ {
		if s[i] == ':' {
			return s[:i], s[i+1:], true
		}
	}
	return "", "", false
}

// handleHealthz reports liveness and store size. Once the daemon
// starts draining it answers 503 with "draining": true — readiness,
// not liveness: the process is healthy but should receive no new
// traffic, which is exactly what load-balancer health checks consume.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.mgr.Draining() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{
			"ok": false, "draining": true, "artifacts": s.st.Len(),
		})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"ok": true, "artifacts": s.st.Len()})
}

func statusForStoreErr(err error) int {
	if errors.Is(err, store.ErrNotFound) {
		return http.StatusNotFound
	}
	return http.StatusInternalServerError
}
