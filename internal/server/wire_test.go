package server

import (
	"errors"
	"testing"
	"time"

	rh "rowhammer"
	"rowhammer/internal/exp"
)

// TestResolveExperiment: measurement kinds win bare-name collisions
// (the wcdp measurement kind predates the wcdp experiment), the exp:
// prefix forces the experiment, and unknown names resolve to nothing.
func TestResolveExperiment(t *testing.T) {
	cases := []struct {
		kind string
		want string // experiment ID, "" = measurement/unknown
	}{
		{"hcfirst", ""},
		{"ber", ""},
		{"wcdp", ""}, // collision: measurement kind wins
		{"spatial", ""},
		{"fig5", "fig5"},
		{"table3", "table3"},
		{"exp:wcdp", "wcdp"}, // explicit prefix selects the experiment
		{"exp:fig5", "fig5"},
		{"nosuch", ""},
		{"exp:nosuch", ""},
	}
	for _, c := range cases {
		e := ResolveExperiment(c.kind)
		got := ""
		if e != nil {
			got = e.ID
		}
		if got != c.want {
			t.Errorf("ResolveExperiment(%q) = %q, want %q", c.kind, got, c.want)
		}
	}
}

func TestSpecCampaignSpec(t *testing.T) {
	wire := Spec{
		Kind: "ber", Mfrs: []string{"A", "B"}, ModulesPerMfr: 2, Seed: 7,
		Scale: "tiny", Temps: []float64{50, 55}, Workers: 3, MaxRetries: 2,
		JobTimeoutMS: 1500, RetryBackoffMS: 10, BreakerThreshold: 3, WatchdogFactor: 2,
	}
	spec, err := wire.CampaignSpec()
	if err != nil {
		t.Fatal(err)
	}
	if spec.Scale != rh.TinyScale() || spec.Geometry != rh.TinyGeometry() {
		t.Error("tiny scale not applied")
	}
	if spec.JobTimeout != 1500*time.Millisecond || spec.RetryBackoff != 10*time.Millisecond {
		t.Errorf("durations not lowered: %v %v", spec.JobTimeout, spec.RetryBackoff)
	}
	if spec.Kind != "ber" || spec.Seed != 7 || spec.Workers != 3 {
		t.Errorf("fields lost: %+v", spec)
	}
	if _, err := (Spec{Scale: "huge"}).CampaignSpec(); err == nil {
		t.Error("unknown scale accepted")
	}
}

func TestResolveValidation(t *testing.T) {
	if _, err := Resolve(rh.CampaignSpec{Kind: "nosuch"}); err == nil {
		t.Error("unknown kind accepted")
	}
	// Bad temperature grids are rejected here, before any job runs.
	var tse *rh.TempStepError
	_, err := Resolve(rh.CampaignSpec{Kind: "ber", Temps: []float64{90, 70, 50}})
	if !errors.As(err, &tse) {
		t.Errorf("descending temps: want *TempStepError, got %v", err)
	}
	// Experiment kinds resolve with their fleet identity.
	rsv, err := Resolve(rh.CampaignSpec{Kind: "fig5", Scale: rh.TinyScale(), Geometry: rh.TinyGeometry(), Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rsv.Exp == nil || rsv.Exp.ID != "fig5" || rsv.Spec.Kind != exp.FleetKind("fig5") {
		t.Fatalf("fig5 resolution wrong: %+v", rsv.Spec)
	}
	if rsv.Runner == nil {
		t.Fatal("nil runner")
	}
}
