package server

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	rh "rowhammer"
	"rowhammer/internal/exp"
	"rowhammer/internal/store"
)

// tinyFig5 is the canonical small experiment campaign used across
// the server tests: 4 shards, tiny scale, deterministic.
func tinyFig5() Spec { return Spec{Kind: "fig5", Scale: "tiny", Seed: 1} }

// fig5Bytes computes the artifact bytes the fig5 campaign must
// produce — the same bytes `rhchar -exp fig5 -scale tiny -seed 1
// -format json` prints, per the golden tests.
func fig5Bytes(t *testing.T) []byte {
	t.Helper()
	e := exp.ByID("fig5")
	if e == nil {
		t.Fatal("fig5 not registered")
	}
	a, err := e.ComputeAll(context.Background(), exp.Config{Scale: rh.TinyScale(), Geometry: rh.TinyGeometry(), Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := a.Encode()
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func newTestManager(t *testing.T, dir string, cfg ManagerConfig) (*Manager, *store.Store) {
	t.Helper()
	st, _, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	mgr, err := NewManager(st, cfg)
	if err != nil {
		st.Close()
		t.Fatal(err)
	}
	t.Cleanup(func() { mgr.Close(); st.Close() })
	return mgr, st
}

// waitTerminal polls until the campaign reaches a terminal or drained
// state.
func waitTerminal(t *testing.T, mgr *Manager, id string) Status {
	t.Helper()
	deadline := time.Now().Add(2 * time.Minute)
	for {
		st, ok := mgr.Status(id)
		if !ok {
			t.Fatalf("campaign %s vanished", id)
		}
		if st.Terminal() || st.State == StateDrained {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("campaign %s stuck in %s (%d/%d)", id, st.State, st.Done, st.Total)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestSubmitRunsCampaignToStoredArtifact(t *testing.T) {
	mgr, st := newTestManager(t, t.TempDir(), ManagerConfig{MaxActive: 2})
	status, existing, err := mgr.Submit(tinyFig5())
	if err != nil || existing {
		t.Fatalf("Submit = %+v existing=%v err=%v", status, existing, err)
	}
	if status.Total != 4 {
		t.Fatalf("fig5 expands to %d jobs, want 4", status.Total)
	}
	final := waitTerminal(t, mgr, status.ID)
	if final.State != StateDone || final.ArtifactID != status.ID || final.Failed != 0 {
		t.Fatalf("final status = %+v", final)
	}
	meta, payload, err := st.Get(final.ArtifactID)
	if err != nil {
		t.Fatal(err)
	}
	if meta.Experiment != "fig5" || meta.Kind != exp.FleetKind("fig5") || meta.Seed != 1 {
		t.Fatalf("meta = %+v", meta)
	}
	if want := fig5Bytes(t); string(payload) != string(want) {
		t.Fatalf("stored artifact is not byte-identical to ComputeAll: %d vs %d bytes", len(payload), len(want))
	}
}

func TestSubmitIsIdempotent(t *testing.T) {
	mgr, _ := newTestManager(t, t.TempDir(), ManagerConfig{})
	first, _, err := mgr.Submit(tinyFig5())
	if err != nil {
		t.Fatal(err)
	}
	again, existing, err := mgr.Submit(tinyFig5())
	if err != nil || !existing || again.ID != first.ID {
		t.Fatalf("resubmit: %+v existing=%v err=%v", again, existing, err)
	}
	waitTerminal(t, mgr, first.ID)
	// Resubmitting a completed campaign returns its terminal status
	// without re-running it.
	done, existing, err := mgr.Submit(tinyFig5())
	if err != nil || !existing || done.State != StateDone {
		t.Fatalf("resubmit after done: %+v existing=%v err=%v", done, existing, err)
	}
}

func TestSubmitRejectsBadSpecs(t *testing.T) {
	mgr, _ := newTestManager(t, t.TempDir(), ManagerConfig{})
	for name, spec := range map[string]Spec{
		"unknown kind":     {Kind: "nosuch"},
		"unknown scale":    {Kind: "ber", Scale: "huge"},
		"descending temps": {Kind: "ber", Scale: "tiny", Temps: []float64{90, 50}},
	} {
		if _, _, err := mgr.Submit(spec); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	if n := len(mgr.Statuses()); n != 0 {
		t.Fatalf("rejected specs left %d campaigns behind", n)
	}
}

func TestFIFOQueueRespectsMaxActive(t *testing.T) {
	mgr, _ := newTestManager(t, t.TempDir(), ManagerConfig{MaxActive: 1, WorkerBudget: 2})
	var ids []string
	for _, seed := range []uint64{1, 2, 3} {
		spec := tinyFig5()
		spec.Seed = seed
		st, _, err := mgr.Submit(spec)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, st.ID)
	}
	for _, id := range ids {
		if st := waitTerminal(t, mgr, id); st.State != StateDone {
			t.Fatalf("campaign %s: %+v", id, st)
		}
	}
	if n := len(mgr.Statuses()); n != 3 {
		t.Fatalf("have %d campaigns, want 3", n)
	}
}

// TestRecoverResumesInterruptedCampaign is the restart-convergence
// guarantee: a campaign directory holding a spec and a *partial* v2
// checkpoint (as a crash mid-campaign leaves behind) is re-enqueued
// by NewManager, resumed — adopted records are not re-run — and the
// published artifact is byte-identical to an uninterrupted run.
func TestRecoverResumesInterruptedCampaign(t *testing.T) {
	// First: a clean run, for the full checkpoint and reference bytes.
	cleanDir := t.TempDir()
	cleanMgr, cleanStore := newTestManager(t, cleanDir, ManagerConfig{})
	st0, _, err := cleanMgr.Submit(tinyFig5())
	if err != nil {
		t.Fatal(err)
	}
	if s := waitTerminal(t, cleanMgr, st0.ID); s.State != StateDone {
		t.Fatalf("clean run: %+v", s)
	}
	_, want, err := cleanStore.Get(st0.ID)
	if err != nil {
		t.Fatal(err)
	}
	ckpt, err := os.ReadFile(filepath.Join(cleanDir, "campaigns", st0.ID, "ckpt.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	specBytes, err := os.ReadFile(filepath.Join(cleanDir, "campaigns", st0.ID, "spec.json"))
	if err != nil {
		t.Fatal(err)
	}

	// Second: a store whose campaign dir looks crash-interrupted —
	// spec.json, header + 2 of 4 checkpointed records, no status.json.
	lines := strings.SplitAfter(string(ckpt), "\n")
	if len(lines) < 5 {
		t.Fatalf("expected header + 4 records, got %d lines", len(lines))
	}
	partial := strings.Join(lines[:3], "") // header + 2 records
	crashDir := t.TempDir()
	cdir := filepath.Join(crashDir, "campaigns", st0.ID)
	if err := os.MkdirAll(cdir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(cdir, "spec.json"), specBytes, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(cdir, "ckpt.jsonl"), []byte(partial), 0o644); err != nil {
		t.Fatal(err)
	}

	var resumedWith []string
	mgr, crashStore := newTestManager(t, crashDir, ManagerConfig{
		Log: func(format string, args ...any) {
			resumedWith = append(resumedWith, format)
		},
	})
	final := waitTerminal(t, mgr, st0.ID)
	if final.State != StateDone {
		t.Fatalf("recovered campaign: %+v", final)
	}
	_, got, err := crashStore.Get(st0.ID)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Fatal("resumed artifact differs from uninterrupted run")
	}
	var sawResume bool
	for _, msg := range resumedWith {
		if strings.Contains(msg, "resuming with") {
			sawResume = true
		}
	}
	if !sawResume {
		t.Errorf("no resume log; recovery may have re-run everything: %q", resumedWith)
	}
}

// TestRecoverServesTerminalStatus: a done campaign's status and
// artifact survive a restart without re-running anything.
func TestRecoverServesTerminalStatus(t *testing.T) {
	dir := t.TempDir()
	st, _, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	mgr, err := NewManager(st, ManagerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	sub, _, err := mgr.Submit(tinyFig5())
	if err != nil {
		t.Fatal(err)
	}
	final := waitTerminal(t, mgr, sub.ID)
	mgr.Close()
	st.Close()

	st2, rep, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if rep.Loaded != 1 {
		t.Fatalf("store reload: %+v", rep)
	}
	mgr2, err := NewManager(st2, ManagerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer mgr2.Close()
	got, ok := mgr2.Status(sub.ID)
	if !ok || got != final {
		t.Fatalf("restarted status = %+v ok=%v, want %+v", got, ok, final)
	}
	// Subscribe to a terminal campaign: snapshot, then closed channel.
	ch, cancel, ok := mgr2.Subscribe(sub.ID)
	if !ok {
		t.Fatal("subscribe failed")
	}
	defer cancel()
	if first := <-ch; first.State != StateDone {
		t.Fatalf("snapshot = %+v", first)
	}
	if _, open := <-ch; open {
		t.Fatal("channel not closed after terminal snapshot")
	}
}

func TestDrainRejectsNewSubmits(t *testing.T) {
	mgr, _ := newTestManager(t, t.TempDir(), ManagerConfig{})
	ctx, cancelCtx := context.WithTimeout(context.Background(), time.Minute)
	defer cancelCtx()
	if err := mgr.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	if _, _, err := mgr.Submit(tinyFig5()); err != ErrDraining {
		t.Fatalf("Submit while draining = %v, want ErrDraining", err)
	}
}

func TestStatusPersistedAtomically(t *testing.T) {
	dir := t.TempDir()
	mgr, _ := newTestManager(t, dir, ManagerConfig{})
	sub, _, err := mgr.Submit(tinyFig5())
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, mgr, sub.ID)
	b, err := os.ReadFile(filepath.Join(dir, "campaigns", sub.ID, "status.json"))
	if err != nil {
		t.Fatal(err)
	}
	var st Status
	if err := json.Unmarshal(b, &st); err != nil {
		t.Fatal(err)
	}
	if st.State != StateDone || st.ID != sub.ID {
		t.Fatalf("persisted status = %+v", st)
	}
}
