package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"rowhammer/internal/leasesvc"
	"rowhammer/internal/shard"
)

// slowSpec is a campaign wide enough (16 jobs) and narrow enough
// (workers: 1) to still be running while the tests behind it poke at
// the queue — the measurement jobs are real compute, not sleeps.
func slowSpec(seed uint64) Spec {
	return Spec{Kind: "hcfirst", Mfrs: []string{"A", "B", "C", "D"},
		ModulesPerMfr: 4, Seed: seed, Scale: "tiny", Workers: 1}
}

// TestShardedSubmitByteIdenticalArtifact: a wire spec with shards > 1
// fans the campaign across in-process shard workers, lays its
// checkpoints out under <campaign>/shards, and publishes an artifact
// byte-identical to the unsharded run of the same spec. Shards is an
// execution knob, so both runs share one campaign identity.
func TestShardedSubmitByteIdenticalArtifact(t *testing.T) {
	// Unsharded reference.
	refMgr, refStore := newTestManager(t, t.TempDir(), ManagerConfig{})
	refSt, _, err := refMgr.Submit(tinyFig5())
	if err != nil {
		t.Fatal(err)
	}
	if s := waitTerminal(t, refMgr, refSt.ID); s.State != StateDone {
		t.Fatalf("unsharded run: %+v", s)
	}
	_, want, err := refStore.Get(refSt.ID)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	mgr, st := newTestManager(t, dir, ManagerConfig{})
	spec := tinyFig5()
	spec.Shards = 3
	sub, _, err := mgr.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if sub.ID != refSt.ID {
		t.Fatalf("sharding changed the campaign identity: %s vs %s", sub.ID, refSt.ID)
	}
	final := waitTerminal(t, mgr, sub.ID)
	if final.State != StateDone || final.Failed != 0 || final.Done != final.Total {
		t.Fatalf("sharded run: %+v", final)
	}
	_, got, err := st.Get(sub.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("sharded artifact differs from unsharded run (%d vs %d bytes)", len(got), len(want))
	}
	// The on-disk layout is the same one `rhfleet -coordinate` uses:
	// one checkpoint per shard under <campaign>/shards.
	shardsDir := filepath.Join(dir, "campaigns", sub.ID, "shards")
	for _, a := range shard.Partition(3) {
		if _, err := os.Stat(shard.CheckpointPath(shardsDir, a)); err != nil {
			t.Errorf("shard %s left no checkpoint: %v", a, err)
		}
	}
}

// TestSubmitQueueFullTypedError: with the FIFO queue bounded, the
// submit that would overflow it gets *QueueFullError — not a silent
// drop, not an unbounded queue.
func TestSubmitQueueFullTypedError(t *testing.T) {
	mgr, _ := newTestManager(t, t.TempDir(), ManagerConfig{MaxActive: 1, MaxQueued: 1})
	first, _, err := mgr.Submit(slowSpec(1)) // occupies the active slot
	if err != nil {
		t.Fatal(err)
	}
	queued, _, err := mgr.Submit(slowSpec(2)) // fills the queue
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = mgr.Submit(slowSpec(3))
	var qerr *QueueFullError
	if !errors.As(err, &qerr) {
		t.Fatalf("overflow submit = %v, want *QueueFullError", err)
	}
	if qerr.Queued != 1 || qerr.Max != 1 {
		t.Fatalf("QueueFullError = %+v", qerr)
	}
	// Backpressure, not rejection: once the queue drains the same
	// spec is accepted.
	waitTerminal(t, mgr, first.ID)
	waitTerminal(t, mgr, queued.ID)
	retry, _, err := mgr.Submit(slowSpec(3))
	if err != nil {
		t.Fatalf("resubmit after drain: %v", err)
	}
	waitTerminal(t, mgr, retry.ID)
}

// TestHTTPQueueFull429: the HTTP layer maps *QueueFullError to 429
// Too Many Requests with a Retry-After hint.
func TestHTTPQueueFull429(t *testing.T) {
	ts, _, _ := newTestServer(t, ManagerConfig{MaxActive: 1, MaxQueued: 1})
	if _, code := postSpec(t, ts.URL, slowSpec(1)); code != http.StatusAccepted {
		t.Fatalf("first submit = %d", code)
	}
	if _, code := postSpec(t, ts.URL, slowSpec(2)); code != http.StatusAccepted {
		t.Fatalf("second submit = %d", code)
	}
	body, err := json.Marshal(slowSpec(3))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/campaigns", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow submit = %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Fatal("429 without Retry-After header")
	}
}

// TestHTTPHealthzDraining: /healthz flips to 503 with "draining" once
// graceful shutdown begins — readiness for load balancers, distinct
// from the liveness 200.
func TestHTTPHealthzDraining(t *testing.T) {
	ts, mgr, _ := newTestServer(t, ManagerConfig{})
	var health map[string]any
	if code := getJSON(t, ts.URL+"/healthz", &health); code != http.StatusOK || health["ok"] != true {
		t.Fatalf("healthz before drain: %d %+v", code, health)
	}
	if err := mgr.Drain(t.Context()); err != nil {
		t.Fatal(err)
	}
	health = nil
	if code := getJSON(t, ts.URL+"/healthz", &health); code != http.StatusServiceUnavailable {
		t.Fatalf("healthz while draining: %d %+v", code, health)
	}
	if health["draining"] != true || health["ok"] != false {
		t.Fatalf("draining healthz body = %+v", health)
	}
}

// TestHTTPSubmitBodyBound: POST /v1/campaigns refuses a body larger
// than the configured spec bound with 413 — a slow-loris or runaway
// client cannot make the daemon buffer an arbitrary spec — and the
// refusal leaks no campaign state: a well-formed spec still submits.
func TestHTTPSubmitBodyBound(t *testing.T) {
	mgr, st := newTestManager(t, t.TempDir(), ManagerConfig{})
	srv := New(mgr, st)
	srv.SetMaxSpecBytes(1 << 10)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	// Valid JSON that exceeds the bound: the byte limit must trip
	// before the decoder can object to anything else.
	huge := []byte(`{"kind":"` + strings.Repeat("x", 2<<10) + `"}`)
	resp, err := http.Post(ts.URL+"/v1/campaigns", "application/json", bytes.NewReader(huge))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized spec = %d, want 413", resp.StatusCode)
	}
	if got := mgr.Statuses(); len(got) != 0 {
		t.Fatalf("oversized spec leaked %d campaign(s)", len(got))
	}
	if _, code := postSpec(t, ts.URL, slowSpec(1)); code != http.StatusAccepted {
		t.Fatalf("well-formed submit after 413 = %d, want 202", code)
	}
}

// TestHTTPMountLeases: the shard lease service mounts onto the
// campaign server's mux, so one rhserved listener serves campaigns,
// artifacts and fenced shard leases.
func TestHTTPMountLeases(t *testing.T) {
	mgr, st := newTestManager(t, t.TempDir(), ManagerConfig{})
	srv := New(mgr, st)
	srv.Mount(leasesvc.NewService(0).Register)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	client := &leasesvc.Client{BaseURL: ts.URL}
	key := leasesvc.Key{Campaign: "deadbeefdeadbeef", Shard: 0, Of: 2}
	grant, err := client.Acquire(t.Context(), key, "test", 0)
	if err != nil {
		t.Fatalf("acquire through mounted mux: %v", err)
	}
	if grant.Token != 1 {
		t.Fatalf("first token = %d, want 1", grant.Token)
	}
	if err := client.Beat(t.Context(), key, grant.Token, leasesvc.Beat{Seq: 1, Done: 0, Total: 4}); err != nil {
		t.Fatalf("beat through mounted mux: %v", err)
	}
	// The campaign routes still answer beside the lease routes.
	if code := getJSON(t, ts.URL+"/v1/campaigns", nil); code != http.StatusOK {
		t.Fatalf("GET /v1/campaigns beside leases = %d", code)
	}
	if err := client.Release(t.Context(), key, grant.Token); err != nil {
		t.Fatalf("release through mounted mux: %v", err)
	}
}
