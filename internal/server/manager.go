package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"rowhammer/internal/campaign"
	"rowhammer/internal/durable"
	"rowhammer/internal/exp"
	"rowhammer/internal/leasesvc"
	"rowhammer/internal/shard"
	"rowhammer/internal/store"
)

// Campaign states. Queued, running and drained are non-terminal:
// after a restart the manager re-enqueues them and the engine resumes
// from the campaign's v2 checkpoint. Done and failed are terminal and
// persisted, so restarts serve them without re-running anything.
const (
	StateQueued  = "queued"
	StateRunning = "running"
	StateDrained = "drained"
	StateDone    = "done"
	StateFailed  = "failed"
)

// ErrDraining is returned by Submit once graceful shutdown has begun.
var ErrDraining = errors.New("server: draining; not accepting new campaigns")

// QueueFullError is returned by Submit when the FIFO queue is at
// ManagerConfig.MaxQueued — the backpressure signal the HTTP layer
// turns into 429 + Retry-After.
type QueueFullError struct {
	// Queued is the current queue depth; Max the configured bound.
	Queued, Max int
}

func (e *QueueFullError) Error() string {
	return fmt.Sprintf("server: submit queue full (%d queued, max %d); retry later", e.Queued, e.Max)
}

// Status is one campaign's externally visible state — the GET
// /v1/campaigns/{id} body and the SSE event payload.
type Status struct {
	ID    string `json:"id"`
	State string `json:"state"`
	// Kind is the resolved engine kind (exp:fig5, ber, ...).
	Kind string `json:"kind"`
	// Done / Total / Failed count jobs; Done includes jobs adopted
	// from a resume checkpoint.
	Done   int `json:"done"`
	Total  int `json:"total"`
	Failed int `json:"failed"`
	// Error describes a terminal failure.
	Error string `json:"error,omitempty"`
	// ArtifactID names the stored artifact once the campaign is done.
	ArtifactID string `json:"artifact_id,omitempty"`
}

// Terminal reports whether the state can no longer change.
func (s Status) Terminal() bool { return s.State == StateDone || s.State == StateFailed }

// runState is one campaign under management.
type runState struct {
	id       string
	wire     Spec
	resolved Resolved
	dir      string

	mu     sync.Mutex
	status Status
	subs   map[chan Status]struct{}
	closed bool // terminal published; subscriber channels closed
}

// ManagerConfig sizes the manager.
type ManagerConfig struct {
	// MaxActive bounds concurrently running campaigns (<1 = 1);
	// further submissions queue FIFO.
	MaxActive int
	// MaxQueued bounds the FIFO queue (0 = unbounded): when the queue
	// is full, Submit returns *QueueFullError instead of enqueueing.
	MaxQueued int
	// WorkerBudget caps each campaign's worker pool (0 = no cap) so
	// concurrent campaigns cannot oversubscribe the machine.
	WorkerBudget int
	// Fleet, when non-nil, is the daemon's lease service. Sharded
	// campaigns are fanned out across workers registered with its
	// worker registry (rhfleet -worker processes pulling placements)
	// whenever at least one is alive at start; with no fleet — or an
	// empty one — shards run in-process, the degenerate case of the
	// same coordinator. A fleet that vanishes mid-campaign is bounded
	// the same way: once every worker has been gone past the
	// scheduler's patience, the remaining shards finish in-process.
	Fleet *leasesvc.Service
	// Log, when non-nil, receives one-line progress messages.
	Log func(format string, args ...any)
}

// Manager schedules campaigns over the engine and publishes results
// into the artifact store. All methods are safe for concurrent use.
type Manager struct {
	store *store.Store
	cfg   ManagerConfig

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	mu       sync.Mutex
	runs     map[string]*runState
	queue    []string // FIFO of queued campaign IDs
	active   int
	draining bool
	drainCh  chan struct{}
}

// NewManager builds a manager over an open store and recovers any
// campaigns persisted under it: terminal campaigns are served from
// their status files; interrupted ones (queued, running or drained at
// the time of the crash or shutdown) are re-enqueued and resume from
// their v2 checkpoints.
func NewManager(st *store.Store, cfg ManagerConfig) (*Manager, error) {
	if cfg.MaxActive < 1 {
		cfg.MaxActive = 1
	}
	if cfg.Log == nil {
		cfg.Log = func(string, ...any) {}
	}
	ctx, cancel := context.WithCancel(context.Background())
	m := &Manager{
		store:   st,
		cfg:     cfg,
		ctx:     ctx,
		cancel:  cancel,
		runs:    make(map[string]*runState),
		drainCh: make(chan struct{}),
	}
	if err := m.recover(); err != nil {
		cancel()
		return nil, err
	}
	return m, nil
}

func (m *Manager) campaignsDir() string { return filepath.Join(m.store.Dir(), "campaigns") }

// recover reloads persisted campaigns after a restart.
func (m *Manager) recover() error {
	dir := m.campaignsDir()
	entries, err := os.ReadDir(dir)
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("server: recover: %w", err)
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].Name() < entries[j].Name() })
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		id := e.Name()
		specBytes, err := os.ReadFile(filepath.Join(dir, id, "spec.json"))
		if err != nil {
			m.cfg.Log("recover: %s: unreadable spec, skipping: %v", id, err)
			continue
		}
		var wire Spec
		if err := json.Unmarshal(specBytes, &wire); err != nil {
			m.cfg.Log("recover: %s: corrupt spec, skipping: %v", id, err)
			continue
		}
		r, err := m.newRun(wire)
		if err != nil {
			m.cfg.Log("recover: %s: spec no longer resolves, skipping: %v", id, err)
			continue
		}
		if r.id != id {
			m.cfg.Log("recover: %s: spec hashes to %s, skipping", id, r.id)
			continue
		}
		if st, ok := loadTerminalStatus(filepath.Join(dir, id, "status.json")); ok {
			r.status = st
			r.closed = true
			m.runs[id] = r
			continue
		}
		m.runs[id] = r
		m.queue = append(m.queue, id)
		m.cfg.Log("recover: %s re-enqueued (will resume from checkpoint)", id)
	}
	m.schedule()
	return nil
}

// loadTerminalStatus reads a persisted status file; ok only when it
// decodes to a terminal state.
func loadTerminalStatus(path string) (Status, bool) {
	b, err := os.ReadFile(path)
	if err != nil {
		return Status{}, false
	}
	var st Status
	if json.Unmarshal(b, &st) != nil || !st.Terminal() {
		return Status{}, false
	}
	return st, true
}

// newRun resolves a wire spec into a managed run. The campaign ID is
// derived from the engine spec's identity hash, so resubmitting the
// same spec names the same campaign (idempotent submits) and a spec
// directory always matches its content.
func (m *Manager) newRun(wire Spec) (*runState, error) {
	if m.cfg.WorkerBudget > 0 && (wire.Workers < 1 || wire.Workers > m.cfg.WorkerBudget) {
		wire.Workers = m.cfg.WorkerBudget
	}
	raw, err := wire.CampaignSpec()
	if err != nil {
		return nil, err
	}
	rsv, err := Resolve(raw)
	if err != nil {
		return nil, err
	}
	id := "c" + rsv.Spec.IdentityHash()
	return &runState{
		id:       id,
		wire:     wire,
		resolved: rsv,
		dir:      filepath.Join(m.campaignsDir(), id),
		status: Status{
			ID:    id,
			State: StateQueued,
			Kind:  rsv.Spec.Kind,
			Total: len(campaign.Expand(rsv.Spec)),
		},
		subs: make(map[chan Status]struct{}),
	}, nil
}

// Submit enqueues a campaign. Submitting a spec that hashes to an
// existing campaign returns that campaign's status with existing set
// — a completed campaign is never re-run, and a queued or running one
// is never duplicated.
func (m *Manager) Submit(wire Spec) (Status, bool, error) {
	r, err := m.newRun(wire)
	if err != nil {
		return Status{}, false, err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if prev, ok := m.runs[r.id]; ok {
		return prev.snapshot(), true, nil
	}
	if m.draining {
		return Status{}, false, ErrDraining
	}
	if m.cfg.MaxQueued > 0 && len(m.queue) >= m.cfg.MaxQueued {
		return Status{}, false, &QueueFullError{Queued: len(m.queue), Max: m.cfg.MaxQueued}
	}
	// Persist the spec before acknowledging: a crash after Submit
	// returns must be able to re-enqueue the campaign.
	if err := os.MkdirAll(r.dir, 0o755); err != nil {
		return Status{}, false, fmt.Errorf("server: %w", err)
	}
	specBytes, err := json.MarshalIndent(r.wire, "", "  ")
	if err != nil {
		return Status{}, false, err
	}
	if err := durable.AtomicWriteFile(filepath.Join(r.dir, "spec.json"), append(specBytes, '\n'), 0o644); err != nil {
		return Status{}, false, err
	}
	m.runs[r.id] = r
	m.queue = append(m.queue, r.id)
	m.schedule()
	return r.snapshot(), false, nil
}

// schedule starts queued campaigns while capacity allows. Caller
// holds m.mu.
func (m *Manager) schedule() {
	for m.active < m.cfg.MaxActive && len(m.queue) > 0 && !m.draining {
		id := m.queue[0]
		m.queue = m.queue[1:]
		r, ok := m.runs[id]
		if !ok {
			continue
		}
		m.active++
		m.wg.Add(1)
		go m.runCampaign(r)
	}
}

// Status returns one campaign's status.
func (m *Manager) Status(id string) (Status, bool) {
	m.mu.Lock()
	r, ok := m.runs[id]
	m.mu.Unlock()
	if !ok {
		return Status{}, false
	}
	return r.snapshot(), true
}

// Statuses returns every campaign's status, sorted by ID.
func (m *Manager) Statuses() []Status {
	m.mu.Lock()
	runs := make([]*runState, 0, len(m.runs))
	for _, r := range m.runs {
		runs = append(runs, r)
	}
	m.mu.Unlock()
	out := make([]Status, 0, len(runs))
	for _, r := range runs {
		out = append(out, r.snapshot())
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Subscribe returns a channel of status snapshots for one campaign:
// the current status immediately, then one per change. The channel is
// closed after the terminal status (or immediately after the snapshot
// when the campaign is already terminal). Call cancel to unsubscribe.
func (m *Manager) Subscribe(id string) (<-chan Status, func(), bool) {
	m.mu.Lock()
	r, ok := m.runs[id]
	m.mu.Unlock()
	if !ok {
		return nil, nil, false
	}
	ch := make(chan Status, 16)
	r.mu.Lock()
	ch <- r.status
	if r.closed {
		close(ch)
		r.mu.Unlock()
		return ch, func() {}, true
	}
	r.subs[ch] = struct{}{}
	r.mu.Unlock()
	cancel := func() {
		r.mu.Lock()
		if _, live := r.subs[ch]; live {
			delete(r.subs, ch)
			close(ch)
		}
		r.mu.Unlock()
	}
	return ch, cancel, true
}

// snapshot returns the current status under the run's lock.
func (r *runState) snapshot() Status {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.status
}

// update mutates the status under the run's lock and publishes the
// new snapshot to subscribers. Slow subscribers miss intermediate
// snapshots (newest-wins, non-blocking) but never the terminal one:
// when the status is terminal the channels are drained and closed
// after the final send.
func (r *runState) update(f func(*Status)) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return
	}
	f(&r.status)
	for ch := range r.subs {
		select {
		case ch <- r.status:
		default:
			// Full buffer: drop the oldest pending snapshot so the
			// latest always lands.
			select {
			case <-ch:
			default:
			}
			select {
			case ch <- r.status:
			default:
			}
		}
	}
	if r.status.Terminal() {
		for ch := range r.subs {
			delete(r.subs, ch)
			close(ch)
		}
		r.closed = true
	}
}

// runCampaign executes one campaign: create or resume its v2
// checkpoint, run the engine under the manager's drain signal, and on
// success publish the deliverable artifact into the store.
func (m *Manager) runCampaign(r *runState) {
	defer m.wg.Done()
	defer func() {
		m.mu.Lock()
		m.active--
		m.schedule()
		m.mu.Unlock()
	}()

	err := m.execute(r)
	switch {
	case err == nil:
	case errors.Is(err, campaign.ErrDrained) || errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		// Interrupted, not failed: the checkpoint is flushed and the
		// campaign resumes on the next startup (or explicit resubmit
		// after drain is lifted — same ID, same checkpoint).
		m.cfg.Log("campaign %s drained; resumable from checkpoint", r.id)
		r.update(func(s *Status) { s.State = StateDrained })
	default:
		m.cfg.Log("campaign %s failed: %v", r.id, err)
		r.update(func(s *Status) { s.State = StateFailed; s.Error = err.Error() })
		m.persistStatus(r)
	}
}

// execute is the fallible body of runCampaign.
func (m *Manager) execute(r *runState) error {
	if n := r.wire.Shards; n > 1 {
		return m.executeSharded(r, n)
	}
	cs := r.resolved.Spec
	ckpt := filepath.Join(r.dir, "ckpt.jsonl")

	var done map[string]campaign.Record
	var cw *campaign.CheckpointWriter
	if _, statErr := os.Stat(ckpt); statErr == nil {
		rep, err := campaign.LoadCheckpointReport(ckpt, campaign.ResumeOptions{ExpectSpec: &cs})
		if err != nil {
			return fmt.Errorf("resume %s: %w", ckpt, err)
		}
		done = rep.Records
		if len(done) > 0 {
			m.cfg.Log("campaign %s resuming with %d checkpointed records", r.id, len(done))
		}
		cw, err = campaign.AppendCheckpoint(ckpt, cs)
		if err != nil {
			return err
		}
	} else {
		var err error
		cw, err = campaign.CreateCheckpoint(ckpt, cs)
		if err != nil {
			return err
		}
	}
	defer cw.Close()

	r.update(func(s *Status) { s.State = StateRunning })
	opts := campaign.Options{
		Runner:  r.resolved.Runner,
		Records: cw,
		Done:    done,
		Drain:   m.drainCh,
		Progress: func(jobsDone, total int, rec campaign.Record) {
			r.update(func(s *Status) {
				s.Done, s.Total = jobsDone, total
				if rec.Failed() {
					s.Failed++
				}
			})
		},
	}
	res, err := campaign.Run(m.ctx, cs, opts)
	if cerr := cw.Close(); cerr != nil && err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}
	if res.Failed > 0 {
		return fmt.Errorf("campaign %s: %d of %d jobs failed", r.id, res.Failed, res.Jobs())
	}
	return m.finish(r, res)
}

// finish publishes a complete, failure-free result and marks the
// campaign done.
func (m *Manager) finish(r *runState, res *campaign.Result) error {
	meta, err := m.ingest(r, res)
	if err != nil {
		return fmt.Errorf("campaign %s: publishing artifact: %w", r.id, err)
	}
	m.cfg.Log("campaign %s done: artifact %s (%d bytes)", r.id, meta.ID, meta.Bytes)
	r.update(func(s *Status) { s.State = StateDone; s.ArtifactID = meta.ID })
	m.persistStatus(r)
	return nil
}

// inprocWorker adapts a RunShard goroutine to the coordinator's
// WorkerHandle: Kill cancels the worker's context, Drain stops its
// dispatch gracefully, and Wait does not return until RunShard has
// released the shard lease.
type inprocWorker struct {
	cancel    context.CancelFunc
	drainOnce sync.Once
	drain     chan struct{}
	done      chan struct{}
	err       error
}

func (w *inprocWorker) Wait() error { <-w.done; return w.err }
func (w *inprocWorker) Kill()       { w.cancel() }
func (w *inprocWorker) Drain()      { w.drainOnce.Do(func() { close(w.drain) }) }

// executeSharded fans one campaign across n in-process shard workers
// under the shard coordinator: each worker runs its slice of the grid
// with its own checkpoint and lease in <campaign>/shards, the
// campaign's worker budget is divided among the shards, and the
// merged result ingests byte-identical to an unsharded run. The same
// directory and file formats as `rhfleet -coordinate` means the two
// supervision paths share one on-disk truth and one merge.
func (m *Manager) executeSharded(r *runState, n int) error {
	if live := m.liveFleetWorkers(); live > 0 {
		m.cfg.Log("campaign %s: fanning %d shard(s) out across %d registered fleet worker(s)", r.id, n, live)
		err := m.executeFleet(r, n)
		if !errors.Is(err, shard.ErrNoWorkers) {
			return err
		}
		// The whole fleet vanished mid-campaign. The shard checkpoints
		// on disk are the truth either way, so finish the remaining
		// jobs in-process — the degenerate case this campaign would
		// have started as had the fleet been empty at submit.
		m.cfg.Log("campaign %s: fleet vanished (%v); finishing remaining shards in-process", r.id, err)
	}
	cs := r.resolved.Spec
	dir := filepath.Join(r.dir, "shards")

	// Divide the campaign's worker budget among shards; identity is
	// unaffected (Workers is a scheduling knob).
	shardSpec := cs
	if per := cs.Workers / n; per > 0 {
		shardSpec.Workers = per
	} else {
		shardSpec.Workers = 1
	}

	// Campaign-wide progress: shards report concurrently and respawns
	// re-report resumed jobs, so counts are by unique job key.
	var progMu sync.Mutex
	seen := make(map[string]bool)
	failed := make(map[string]bool)
	progress := func(_, _ int, rec campaign.Record) {
		progMu.Lock()
		seen[rec.Key] = true
		if rec.Failed() {
			failed[rec.Key] = true
		} else {
			delete(failed, rec.Key)
		}
		jobsDone, jobsFailed := len(seen), len(failed)
		progMu.Unlock()
		r.update(func(s *Status) { s.Done, s.Failed = jobsDone, jobsFailed })
	}

	spawn := func(ctx context.Context, a shard.Assignment, gen int) (shard.WorkerHandle, error) {
		wctx, cancel := context.WithCancel(ctx)
		w := &inprocWorker{cancel: cancel, drain: make(chan struct{}), done: make(chan struct{})}
		go func() {
			defer close(w.done)
			defer cancel()
			_, w.err = shard.RunShard(wctx, shard.RunConfig{
				Dir:        dir,
				Assignment: a,
				Spec:       shardSpec,
				Runner:     r.resolved.Runner,
				Drain:      w.drain,
				Progress:   progress,
			})
		}()
		return w, nil
	}

	r.update(func(s *Status) { s.State = StateRunning })
	res, rep, err := shard.Coordinate(m.ctx, shard.Config{
		Dir:    dir,
		Spec:   cs,
		Shards: n,
		Spawn:  spawn,
		Drain:  m.drainCh,
		Log:    func(f string, args ...any) { m.cfg.Log("campaign "+r.id+": "+f, args...) },
	})
	if err != nil {
		return err
	}
	if rep.Failed > 0 {
		return fmt.Errorf("campaign %s: %d of %d jobs failed", r.id, rep.Failed, res.Total)
	}
	return m.finish(r, res)
}

// liveFleetWorkers counts alive registrations in the fleet registry.
func (m *Manager) liveFleetWorkers() int {
	if m.cfg.Fleet == nil {
		return 0
	}
	n := 0
	for _, w := range m.cfg.Fleet.Workers() {
		if w.Alive {
			n++
		}
	}
	return n
}

// executeFleet fans one sharded campaign out across the fleet: the
// wire spec is persisted into the shard directory for workers to
// resolve, and the coordinator places shards onto registered workers
// instead of spawning anything. Supervision, stall handling,
// reassignment bounds and the byte-identical merge are the same code
// path executeSharded's in-process fan-out uses — that is the point.
func (m *Manager) executeFleet(r *runState, n int) error {
	cs := r.resolved.Spec
	dir, err := filepath.Abs(filepath.Join(r.dir, "shards"))
	if err != nil {
		return err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	// Persist the spec in the server wire schema — the same file a
	// `rhfleet -coordinate` run writes for its workers, and the same
	// schema POST /v1/campaigns accepts. Identity ignores Workers, so
	// dividing the budget among shards is safe.
	wireShard := r.wire
	if per := wireShard.Workers / n; per >= 1 {
		wireShard.Workers = per
	} else {
		wireShard.Workers = 1
	}
	wb, err := json.MarshalIndent(wireShard, "", "  ")
	if err != nil {
		return err
	}
	if err := durable.AtomicWriteFile(shard.SpecPath(dir), append(wb, '\n'), 0o644); err != nil {
		return err
	}

	r.update(func(s *Status) { s.State = StateRunning })
	res, rep, err := shard.Coordinate(m.ctx, shard.Config{
		Dir:      dir,
		Spec:     cs,
		Shards:   n,
		Fleet:    m.cfg.Fleet,
		LeaseTTL: m.cfg.Fleet.DefaultLeaseTTL(),
		Drain:    m.drainCh,
		Progress: func(done, total int) {
			r.update(func(s *Status) { s.Done, s.Total = done, total })
		},
		Log: func(f string, args ...any) { m.cfg.Log("campaign "+r.id+": "+f, args...) },
	})
	if err != nil {
		return err
	}
	if rep.Failed > 0 {
		return fmt.Errorf("campaign %s: %d of %d jobs failed", r.id, rep.Failed, res.Total)
	}
	return m.finish(r, res)
}

// ingest publishes the campaign's deliverable into the store:
// experiment kinds store the merged artifact bit-identical to `rhchar
// -format json` (and `rhfleet -artifact`); measurement kinds store
// the fleet summary, bit-identical to `rhfleet -summary`.
func (m *Manager) ingest(r *runState, res *campaign.Result) (store.Meta, error) {
	cs := r.resolved.Spec
	meta := store.Meta{
		ID:    r.id,
		Kind:  cs.Kind,
		Mfrs:  cs.Mfrs,
		Seed:  cs.Seed,
		Temps: cs.Temps,
	}
	var payload []byte
	if e := r.resolved.Exp; e != nil {
		a, err := exp.MergeFleet(*e, res.Records)
		if err != nil {
			return store.Meta{}, err
		}
		if payload, err = a.Encode(); err != nil {
			return store.Meta{}, err
		}
		meta.Experiment = e.ID
		meta.Schema = e.Schema
	} else {
		summary, err := campaign.Aggregate(res).MarshalIndent()
		if err != nil {
			return store.Meta{}, err
		}
		payload = append(summary, '\n')
	}
	return m.store.Put(meta, payload)
}

// persistStatus records a terminal status atomically so restarts
// serve it without re-running the campaign.
func (m *Manager) persistStatus(r *runState) {
	st := r.snapshot()
	if !st.Terminal() {
		return
	}
	b, err := json.MarshalIndent(st, "", "  ")
	if err == nil {
		err = durable.AtomicWriteFile(filepath.Join(r.dir, "status.json"), append(b, '\n'), 0o644)
	}
	if err != nil {
		m.cfg.Log("campaign %s: persisting status: %v", r.id, err)
	}
}

// Draining reports whether graceful shutdown has begun — the health
// endpoint's signal to tell load balancers to stop routing here.
func (m *Manager) Draining() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.draining
}

// Drain begins graceful shutdown: no new campaigns are accepted or
// started, running engines stop dispatching and finish their
// in-flight jobs, and Drain returns when every campaign goroutine has
// exited or ctx expires (the caller then escalates to Close). Queued
// and drained campaigns stay on disk and resume at the next startup.
func (m *Manager) Drain(ctx context.Context) error {
	m.mu.Lock()
	if !m.draining {
		m.draining = true
		close(m.drainCh)
	}
	m.mu.Unlock()
	doneCh := make(chan struct{})
	go func() { m.wg.Wait(); close(doneCh) }()
	select {
	case <-doneCh:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Close aborts hard: running campaigns are cancelled mid-job (their
// checkpoints keep every finished record) and Close returns once all
// campaign goroutines exit.
func (m *Manager) Close() {
	m.cancel()
	m.mu.Lock()
	if !m.draining {
		m.draining = true
		close(m.drainCh)
	}
	m.mu.Unlock()
	m.wg.Wait()
}
