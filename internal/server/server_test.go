package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"testing"
	"time"

	"rowhammer/internal/artifact"
	"rowhammer/internal/store"
)

func newTestServer(t *testing.T, cfg ManagerConfig) (*httptest.Server, *Manager, *store.Store) {
	t.Helper()
	mgr, st := newTestManager(t, t.TempDir(), cfg)
	ts := httptest.NewServer(New(mgr, st).Handler())
	t.Cleanup(ts.Close)
	return ts, mgr, st
}

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil && err != io.EOF {
			t.Fatalf("GET %s: %v", url, err)
		}
	}
	return resp.StatusCode
}

func postSpec(t *testing.T, url string, spec Spec) (Status, int) {
	t.Helper()
	body, _ := json.Marshal(spec)
	resp, err := http.Post(url+"/v1/campaigns", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st struct {
		Status
		Existing bool `json:"existing"`
	}
	json.NewDecoder(resp.Body).Decode(&st)
	return st.Status, resp.StatusCode
}

func TestHTTPSubmitStatusAndArtifact(t *testing.T) {
	ts, _, _ := newTestServer(t, ManagerConfig{MaxActive: 2})

	st, code := postSpec(t, ts.URL, tinyFig5())
	if code != http.StatusAccepted {
		t.Fatalf("POST = %d, want 202", code)
	}
	// Idempotent resubmit: 200, same ID.
	again, code := postSpec(t, ts.URL, tinyFig5())
	if code != http.StatusOK || again.ID != st.ID {
		t.Fatalf("resubmit = %d %+v", code, again)
	}

	// Poll status until done.
	deadline := time.Now().Add(2 * time.Minute)
	var final Status
	for {
		if code := getJSON(t, ts.URL+"/v1/campaigns/"+st.ID, &final); code != http.StatusOK {
			t.Fatalf("GET status = %d", code)
		}
		if final.Terminal() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("campaign stuck: %+v", final)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if final.State != StateDone {
		t.Fatalf("final = %+v", final)
	}

	// The stored artifact round-trips byte-identically over HTTP.
	resp, err := http.Get(ts.URL + "/v1/artifacts/" + final.ArtifactID)
	if err != nil {
		t.Fatal(err)
	}
	payload, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if want := fig5Bytes(t); !bytes.Equal(payload, want) {
		t.Fatalf("HTTP artifact differs from ComputeAll bytes (%d vs %d)", len(payload), len(want))
	}

	// Index queries find it — and reject garbage parameters.
	var metas []store.Meta
	if code := getJSON(t, ts.URL+"/v1/artifacts?experiment=fig5&mfr=A&seed=1", &metas); code != http.StatusOK || len(metas) != 1 {
		t.Fatalf("query = %d, %d metas", code, len(metas))
	}
	if code := getJSON(t, ts.URL+"/v1/artifacts?experiment=nosuch", &metas); code != http.StatusOK || len(metas) != 0 {
		t.Fatalf("empty query = %d, %d metas", code, len(metas))
	}
	if code := getJSON(t, ts.URL+"/v1/artifacts?seed=notanumber", nil); code != http.StatusBadRequest {
		t.Fatalf("bad seed = %d, want 400", code)
	}

	// Meta and rows endpoints.
	var meta store.Meta
	if code := getJSON(t, ts.URL+"/v1/artifacts/"+final.ArtifactID+"/meta", &meta); code != http.StatusOK || meta.Experiment != "fig5" {
		t.Fatalf("meta = %d %+v", code, meta)
	}
	var rows []artifact.Row
	if code := getJSON(t, ts.URL+"/v1/artifacts/"+final.ArtifactID+"/rows?prefix=mfr=A", &rows); code != http.StatusOK {
		t.Fatalf("rows = %d", code)
	}
	if len(rows) == 0 {
		t.Fatal("prefix query returned no rows")
	}
	for i, row := range rows {
		if !strings.HasPrefix(row.Key, "mfr=A") {
			t.Fatalf("row %d key %q escapes the prefix filter", i, row.Key)
		}
		if i > 0 && rows[i-1].Key > row.Key {
			t.Fatalf("rows not key-sorted at %d", i)
		}
	}

	// 404s.
	if code := getJSON(t, ts.URL+"/v1/campaigns/cnope", nil); code != http.StatusNotFound {
		t.Fatalf("unknown campaign = %d", code)
	}
	if code := getJSON(t, ts.URL+"/v1/artifacts/nope", nil); code != http.StatusNotFound {
		t.Fatalf("unknown artifact = %d", code)
	}
	var health map[string]any
	if code := getJSON(t, ts.URL+"/healthz", &health); code != http.StatusOK || health["ok"] != true {
		t.Fatalf("healthz = %d %+v", code, health)
	}
}

func TestHTTPRejectsBadSubmissions(t *testing.T) {
	ts, _, _ := newTestServer(t, ManagerConfig{})
	for name, body := range map[string]string{
		"not json":       "{",
		"unknown field":  `{"kind":"ber","bogus":1}`,
		"unknown kind":   `{"kind":"nosuch"}`,
		"unknown scale":  `{"kind":"ber","scale":"huge"}`,
		"inverted temps": `{"kind":"ber","scale":"tiny","temps":[90,50]}`,
	} {
		resp, err := http.Post(ts.URL+"/v1/campaigns", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: %d, want 400", name, resp.StatusCode)
		}
	}
}

// TestSSEStreamsToCompletion consumes the events endpoint and
// requires a well-formed SSE stream whose final event is terminal.
func TestSSEStreamsToCompletion(t *testing.T) {
	ts, _, _ := newTestServer(t, ManagerConfig{})
	st, code := postSpec(t, ts.URL, tinyFig5())
	if code != http.StatusAccepted {
		t.Fatalf("POST = %d", code)
	}
	resp, err := http.Get(ts.URL + "/v1/campaigns/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}
	var last Status
	events := 0
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		events++
		if err := json.Unmarshal([]byte(line[len("data: "):]), &last); err != nil {
			t.Fatalf("bad event payload %q: %v", line, err)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if events == 0 {
		t.Fatal("no events received")
	}
	if !last.Terminal() {
		t.Fatalf("stream ended on non-terminal status %+v", last)
	}
	if last.State != StateDone || last.Done != last.Total {
		t.Fatalf("final event = %+v", last)
	}
}

// TestServerLoad hammers the API with concurrent query clients while
// campaigns run: 4 concurrent campaigns and >=1k query clients. Run
// under -race via `make race`. The p99 query latency is reported in
// the test log and must stay under a generous bound — this is a
// smoke ceiling against pathological lock contention, not a
// benchmark.
func TestServerLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("load test skipped in -short")
	}
	ts, _, _ := newTestServer(t, ManagerConfig{MaxActive: 4, WorkerBudget: 2})

	var ids []string
	for _, seed := range []uint64{11, 12, 13, 14} {
		spec := tinyFig5()
		spec.Seed = seed
		st, code := postSpec(t, ts.URL, spec)
		if code != http.StatusAccepted {
			t.Fatalf("POST seed %d = %d", seed, code)
		}
		ids = append(ids, st.ID)
	}

	const clients = 1000
	const perClient = 3
	type sample struct {
		d   time.Duration
		err error
	}
	results := make(chan sample, clients*perClient)
	paths := []string{
		"/v1/campaigns",
		"/v1/artifacts",
		"/v1/artifacts?experiment=fig5&seed=11",
		"/healthz",
	}
	client := &http.Client{Timeout: 30 * time.Second}
	for c := 0; c < clients; c++ {
		go func(c int) {
			for i := 0; i < perClient; i++ {
				url := ts.URL + paths[(c+i)%len(paths)]
				start := time.Now()
				resp, err := client.Get(url)
				if err == nil {
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					if resp.StatusCode != http.StatusOK {
						err = fmt.Errorf("GET %s: %d", url, resp.StatusCode)
					}
				}
				results <- sample{time.Since(start), err}
			}
		}(c)
	}
	latencies := make([]time.Duration, 0, clients*perClient)
	for i := 0; i < clients*perClient; i++ {
		s := <-results
		if s.err != nil {
			t.Fatal(s.err)
		}
		latencies = append(latencies, s.d)
	}

	// All campaigns complete under load.
	deadline := time.Now().Add(3 * time.Minute)
	for _, id := range ids {
		for {
			var st Status
			getJSON(t, ts.URL+"/v1/campaigns/"+id, &st)
			if st.State == StateDone {
				break
			}
			if st.Terminal() {
				t.Fatalf("campaign %s: %+v", id, st)
			}
			if time.Now().After(deadline) {
				t.Fatalf("campaign %s stuck under load: %+v", id, st)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}

	// p99 over all queries.
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	p50 := latencies[len(latencies)/2]
	p99 := latencies[len(latencies)*99/100]
	t.Logf("load: %d queries, p50 %v, p99 %v, max %v", len(latencies), p50, p99, latencies[len(latencies)-1])
	if bound := 10 * time.Second; p99 > bound {
		t.Fatalf("p99 query latency %v exceeds %v", p99, bound)
	}
}
