// Package server is the campaign-as-a-service layer behind rhserved:
// a campaign manager that runs multiple concurrent campaigns on the
// internal/campaign engine with FIFO scheduling, per-campaign worker
// budgets and checkpoint resume, plus the HTTP API that accepts
// campaign specs, streams progress over SSE, and serves queries over
// the indexed artifact store.
package server

import (
	"fmt"
	"time"

	rh "rowhammer"
	"rowhammer/internal/campaign"
	"rowhammer/internal/exp"
)

// Spec is the wire form of a campaign: the POST /v1/campaigns body
// and, identically, the rhfleet -spec file schema. One schema for
// both entry points means a spec file tested on the CLI submits to
// the daemon unchanged.
type Spec struct {
	// Kind is a measurement kind (hcfirst, ber, wcdp, spatial) or a
	// paper experiment ID (fig5, table3, ...; exp: prefix forces the
	// experiment on a name collision).
	Kind string `json:"kind"`
	// Mfrs lists manufacturer profiles (measurement kinds only;
	// experiment campaigns shard themselves).
	Mfrs []string `json:"mfrs"`
	// ModulesPerMfr is the fleet width per manufacturer.
	ModulesPerMfr int `json:"modules_per_mfr"`
	// Seed is the master seed; module seeds derive from it.
	Seed uint64 `json:"seed"`
	// Scale names the measurement scale: tiny, default, paper.
	Scale string `json:"scale"`
	// Temps is the BER temperature grid in °C.
	Temps []float64 `json:"temps"`
	// Workers bounds the campaign's worker pool (0 = one per CPU,
	// subject to the server's per-campaign budget).
	Workers int `json:"workers"`
	// MaxRetries, JobTimeoutMS, RetryBackoffMS, BreakerThreshold and
	// WatchdogFactor are the hardening knobs, same semantics as the
	// rhfleet flags.
	MaxRetries       int   `json:"max_retries"`
	JobTimeoutMS     int64 `json:"job_timeout_ms"`
	RetryBackoffMS   int64 `json:"retry_backoff_ms"`
	BreakerThreshold int   `json:"breaker_threshold"`
	WatchdogFactor   int   `json:"watchdog_factor"`
	// Shards, when > 1, fans the campaign across that many
	// internally supervised shard workers (internal/shard), each with
	// its own checkpoint and lease. An execution knob like Workers:
	// it is excluded from the campaign's identity, and the merged
	// result is byte-identical to an unsharded run of the same spec.
	Shards int `json:"shards,omitempty"`
}

// CampaignSpec lowers the wire spec to the library spec, resolving
// the named scale.
func (s Spec) CampaignSpec() (rh.CampaignSpec, error) {
	spec := rh.CampaignSpec{
		Kind:             s.Kind,
		Mfrs:             s.Mfrs,
		ModulesPerMfr:    s.ModulesPerMfr,
		Seed:             s.Seed,
		Temps:            s.Temps,
		Workers:          s.Workers,
		MaxRetries:       s.MaxRetries,
		JobTimeout:       time.Duration(s.JobTimeoutMS) * time.Millisecond,
		RetryBackoff:     time.Duration(s.RetryBackoffMS) * time.Millisecond,
		BreakerThreshold: s.BreakerThreshold,
		WatchdogFactor:   s.WatchdogFactor,
	}
	name := s.Scale
	if name == "" {
		name = "default"
	}
	sc, geom, ok := rh.NamedScale(name)
	if !ok {
		return spec, fmt.Errorf("unknown scale %q (tiny, default, paper)", name)
	}
	spec.Scale, spec.Geometry = sc, geom
	return spec, nil
}

// Resolved is a campaign ready for the engine: the normalized engine
// spec, its runner, and — for experiment kinds — the experiment whose
// merged artifact is the campaign's deliverable.
type Resolved struct {
	// Spec is the normalized engine spec; its IdentityHash names the
	// campaign.
	Spec campaign.Spec
	// Runner executes the campaign's jobs.
	Runner campaign.Runner
	// Exp is non-nil for experiment kinds (exp:fig5, ...); nil for
	// the per-module measurement kinds.
	Exp *exp.Experiment
}

// Resolve validates a campaign spec and lowers it to the engine.
// Measurement kinds (hcfirst, ber, wcdp, spatial) expand mfrs ×
// modules and win any name collision; everything else resolves as a
// paper experiment, which shards itself (one job per shard). The exp:
// prefix forces the experiment (e.g. exp:wcdp runs the Table 1 survey
// experiment rather than the wcdp measurement kind). All validation —
// unknown kinds, bad temperature grids, watchdog without timeout —
// happens here, before any job runs or any file is touched.
func Resolve(spec rh.CampaignSpec) (Resolved, error) {
	if e := ResolveExperiment(spec.Kind); e != nil {
		ecfg := exp.Config{Scale: spec.Scale, Geometry: spec.Geometry, Seed: spec.Seed, Workers: spec.Workers}
		cs := exp.FleetSpec(*e, ecfg)
		cs.MaxRetries = spec.MaxRetries
		cs.JobTimeout = spec.JobTimeout
		cs.RetryBackoff = spec.RetryBackoff
		cs.BreakerThreshold = spec.BreakerThreshold
		cs.WatchdogFactor = spec.WatchdogFactor
		n, err := cs.Normalize()
		if err != nil {
			return Resolved{}, err
		}
		return Resolved{Spec: n, Runner: exp.FleetRunner(ecfg), Exp: e}, nil
	}
	if err := validMeasurementKind(spec.Kind); err != nil {
		return Resolved{}, err
	}
	cs, runner, err := rh.CampaignEngine(spec)
	if err != nil {
		return Resolved{}, err
	}
	return Resolved{Spec: cs, Runner: runner}, nil
}

// ResolveExperiment maps a campaign kind to a paper experiment, or
// nil for the measurement kinds. Measurement kinds win a bare-name
// collision (the "wcdp" measurement kind predates the wcdp
// experiment); the exp: prefix selects the experiment explicitly.
func ResolveExperiment(kind string) *exp.Experiment {
	if e := exp.FleetExperiment(kind); e != nil {
		return e
	}
	for _, k := range rh.CampaignKinds() {
		if kind == k {
			return nil
		}
	}
	return exp.ByID(kind)
}

// validMeasurementKind rejects unknown measurement kinds (empty
// defaults later); experiment IDs are resolved before this runs.
func validMeasurementKind(kind string) error {
	if kind == "" {
		return nil
	}
	for _, k := range rh.CampaignKinds() {
		if kind == k {
			return nil
		}
	}
	return fmt.Errorf("unknown experiment kind %q (have hcfirst, ber, wcdp, spatial, or a paper experiment id from rhchar -list)", kind)
}
