package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"testing"
	"time"

	"rowhammer/internal/leasesvc"
	"rowhammer/internal/shard"
)

// fleetWorkerRun builds the Run func a fleet worker uses — the exact
// steps `rhfleet -worker` performs per placement: load the persisted
// wire spec from the placement's shard directory, resolve it, check
// the campaign identity, and run the shard under the fenced lease.
func fleetWorkerRun(fleet *leasesvc.Service, ttl time.Duration) func(context.Context, leasesvc.Placement, <-chan struct{}) error {
	return func(ctx context.Context, p leasesvc.Placement, drain <-chan struct{}) error {
		b, err := os.ReadFile(shard.SpecPath(p.Dir))
		if err != nil {
			return err
		}
		var ws Spec
		if err := json.Unmarshal(b, &ws); err != nil {
			return err
		}
		raw, err := ws.CampaignSpec()
		if err != nil {
			return err
		}
		rsv, err := Resolve(raw)
		if err != nil {
			return err
		}
		if got := rsv.Spec.IdentityHash(); got != p.Campaign {
			return fmt.Errorf("placement names campaign %s, spec resolves to %s", p.Campaign, got)
		}
		_, err = shard.RunShard(ctx, shard.RunConfig{
			Dir:        p.Dir,
			Assignment: shard.Assignment{Index: p.Shard, Of: p.Of},
			Spec:       rsv.Spec,
			Runner:     rsv.Runner,
			Drain:      drain,
			BeatEvery:  25 * time.Millisecond,
			Lease:      fleet,
			LeaseTTL:   ttl,
		})
		return err
	}
}

func waitLiveWorkers(t *testing.T, fleet *leasesvc.Service, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		live := 0
		for _, w := range fleet.Workers() {
			if w.Alive {
				live++
			}
		}
		if live >= n {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("%d fleet workers never came alive", n)
}

// TestFleetSubmitByteIdenticalArtifact: a sharded campaign submitted
// to a manager with live registered workers runs entirely on the
// fleet — the manager spawns nothing — and publishes an artifact
// byte-identical to the unsharded in-process run. The workers resolve
// the persisted spec.json themselves, so this also pins the wire
// round-trip a real rhfleet -worker performs.
func TestFleetSubmitByteIdenticalArtifact(t *testing.T) {
	refMgr, refStore := newTestManager(t, t.TempDir(), ManagerConfig{})
	refSt, _, err := refMgr.Submit(tinyFig5())
	if err != nil {
		t.Fatal(err)
	}
	if s := waitTerminal(t, refMgr, refSt.ID); s.State != StateDone {
		t.Fatalf("unsharded run: %+v", s)
	}
	_, want, err := refStore.Get(refSt.ID)
	if err != nil {
		t.Fatal(err)
	}

	ttl := 500 * time.Millisecond
	fleet := leasesvc.NewService(ttl)
	wctx, wcancel := context.WithCancel(context.Background())
	defer wcancel()
	for _, id := range []string{"w1", "w2"} {
		id := id
		go shard.RunWorker(wctx, shard.WorkerConfig{
			Registry: fleet, ID: id, TTL: ttl,
			Run: fleetWorkerRun(fleet, ttl),
			Log: t.Logf,
		})
	}
	waitLiveWorkers(t, fleet, 2)

	mgr, st := newTestManager(t, t.TempDir(), ManagerConfig{Fleet: fleet, Log: t.Logf})
	spec := tinyFig5()
	spec.Shards = 3
	sub, _, err := mgr.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if sub.ID != refSt.ID {
		t.Fatalf("fleet fan-out changed the campaign identity: %s vs %s", sub.ID, refSt.ID)
	}
	final := waitTerminal(t, mgr, sub.ID)
	if final.State != StateDone {
		t.Fatalf("fleet run: %+v", final)
	}
	_, got, err := st.Get(sub.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("fleet artifact differs from unsharded run (%d vs %d bytes)", len(got), len(want))
	}
}

// TestFleetFallsBackInProcessWhenEmpty: a Fleet with no live workers
// must not strand sharded campaigns — they run in-process, the
// degenerate case.
func TestFleetFallsBackInProcessWhenEmpty(t *testing.T) {
	fleet := leasesvc.NewService(500 * time.Millisecond)
	mgr, _ := newTestManager(t, t.TempDir(), ManagerConfig{Fleet: fleet})
	spec := tinyFig5()
	spec.Shards = 2
	sub, _, err := mgr.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if s := waitTerminal(t, mgr, sub.ID); s.State != StateDone {
		t.Fatalf("empty-fleet sharded run: %+v", s)
	}
}

// TestFleetFallsBackWhenFleetVanishes: the fleet-vs-in-process choice
// is not one-shot. When every registered worker dies mid-campaign,
// the scheduler's bounded no-worker wait surfaces ErrNoWorkers and
// the manager finishes the remaining shards in-process — the campaign
// completes instead of pinning one of the max-active slots on
// "waiting" forever.
func TestFleetFallsBackWhenFleetVanishes(t *testing.T) {
	ttl := 150 * time.Millisecond
	fleet := leasesvc.NewService(ttl)
	wctx, wcancel := context.WithCancel(context.Background())
	defer wcancel()
	workerDone := make(chan struct{})
	// A worker that acquires whatever it is handed and then blocks,
	// heartbeating its lease — healthy-looking until it is killed.
	go func() {
		defer close(workerDone)
		shard.RunWorker(wctx, shard.WorkerConfig{
			Registry: fleet, ID: "doomed", TTL: ttl, Log: t.Logf,
			Run: func(ctx context.Context, p leasesvc.Placement, _ <-chan struct{}) error {
				g, err := fleet.Acquire(ctx, p.LeaseKey(), "doomed", ttl)
				if err != nil {
					return err
				}
				defer fleet.Release(context.Background(), p.LeaseKey(), g.Token)
				tick := time.NewTicker(ttl / 4)
				defer tick.Stop()
				for seq := uint64(1); ; seq++ {
					select {
					case <-ctx.Done():
						return ctx.Err()
					case <-tick.C:
						fleet.Beat(ctx, p.LeaseKey(), g.Token, leasesvc.Beat{Seq: seq})
					}
				}
			},
		})
	}()
	waitLiveWorkers(t, fleet, 1)

	mgr, st := newTestManager(t, t.TempDir(), ManagerConfig{Fleet: fleet, Log: t.Logf})
	spec := tinyFig5()
	spec.Shards = 2
	sub, _, err := mgr.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	// Kill the whole fleet once a shard is visibly running on it, so
	// the campaign has committed to fleet placement.
	deadline := time.Now().Add(10 * time.Second)
	for held := false; !held; time.Sleep(5 * time.Millisecond) {
		if time.Now().After(deadline) {
			t.Fatal("no shard lease ever became held on the fleet")
		}
		for _, v := range fleet.List() {
			held = held || v.Held
		}
	}
	wcancel()
	<-workerDone

	if s := waitTerminal(t, mgr, sub.ID); s.State != StateDone {
		t.Fatalf("vanished-fleet campaign = %+v, want done via in-process fallback", s)
	}
	if _, _, err := st.Get(sub.ID); err != nil {
		t.Fatalf("artifact missing after fallback: %v", err)
	}
}
