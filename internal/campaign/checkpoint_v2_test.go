package campaign

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func v2Spec() Spec {
	s, err := testSpec([]string{"A", "B"}, 2).Normalize()
	if err != nil {
		panic(err)
	}
	return s
}

func v2Record(key string, x float64) Record {
	return Record{Key: key, Kind: KindHCFirst, Mfr: "A", Metrics: map[string]float64{"x": x}}
}

func TestCheckpointV2RoundTrip(t *testing.T) {
	spec := v2Spec()
	var buf bytes.Buffer
	cw := NewCheckpointWriter(&buf, spec)
	recs := []Record{v2Record("hcfirst/A/0", 1), v2Record("hcfirst/A/1", 2)}
	for _, r := range recs {
		if err := cw.WriteRecord(r); err != nil {
			t.Fatal(err)
		}
	}
	rep, err := ReadCheckpointReport(bytes.NewReader(buf.Bytes()), ResumeOptions{ExpectSpec: &spec})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Version != 2 || rep.Header == nil {
		t.Fatalf("version = %d, header = %v; want v2 header", rep.Version, rep.Header)
	}
	if rep.Header.Spec != spec.IdentityHash() || rep.Header.Kind != spec.Kind {
		t.Fatalf("header = %+v does not describe the spec", rep.Header)
	}
	if len(rep.Records) != 2 || rep.DuplicateRecords != 0 || rep.CorruptRecords != 0 || rep.TornFinal {
		t.Fatalf("report = %+v, want 2 clean records", rep)
	}
	if rep.Records["hcfirst/A/1"].Metrics["x"] != 2 {
		t.Fatalf("record content lost: %+v", rep.Records["hcfirst/A/1"])
	}
	// The strict reader (engine resume path) handles v2 too.
	got, err := ReadCheckpoint(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("strict reader parsed %d records, want 2", len(got))
	}
}

func TestCheckpointV2EveryLineHasCRCTrailer(t *testing.T) {
	var buf bytes.Buffer
	cw := NewCheckpointWriter(&buf, v2Spec())
	if err := cw.WriteRecord(v2Record("hcfirst/A/0", 1)); err != nil {
		t.Fatal(err)
	}
	lines := bytes.Split(bytes.TrimSuffix(buf.Bytes(), []byte{'\n'}), []byte{'\n'})
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want header + record", len(lines))
	}
	if !bytes.HasPrefix(lines[0], []byte("#rhckpt")) {
		t.Fatalf("first line is not a header: %q", lines[0])
	}
	for i, ln := range lines {
		if _, ok := splitCRCLine(ln); !ok {
			t.Fatalf("line %d lacks a valid CRC trailer: %q", i, ln)
		}
	}
}

func TestCheckpointV2CorruptInteriorQuarantined(t *testing.T) {
	spec := v2Spec()
	var buf bytes.Buffer
	cw := NewCheckpointWriter(&buf, spec)
	for i, k := range []string{"hcfirst/A/0", "hcfirst/A/1", "hcfirst/B/0"} {
		if err := cw.WriteRecord(v2Record(k, float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	// Flip one payload byte in the middle record: its CRC no longer
	// matches, simulating bit-rot.
	lines := bytes.SplitAfter(buf.Bytes(), []byte{'\n'})
	mid := lines[2] // header, rec0, rec1, rec2
	mid[bytes.IndexByte(mid, ':')+1] ^= 0x20
	damaged := bytes.Join(lines, nil)

	rep, err := ReadCheckpointReport(bytes.NewReader(damaged), ResumeOptions{ExpectSpec: &spec})
	if err != nil {
		t.Fatalf("interior corruption must quarantine, not abort: %v", err)
	}
	if rep.CorruptRecords != 1 || len(rep.Corrupt) != 1 {
		t.Fatalf("corrupt = %d (%d retained), want 1", rep.CorruptRecords, len(rep.Corrupt))
	}
	if rep.Corrupt[0].Line != 3 || !strings.Contains(rep.Corrupt[0].Reason, "CRC") {
		t.Fatalf("quarantined line = %+v, want line 3 with CRC reason", rep.Corrupt[0])
	}
	if len(rep.Records) != 2 {
		t.Fatalf("surviving records = %d, want 2", len(rep.Records))
	}
	// The strict reader refuses the same stream.
	if _, err := ReadCheckpoint(bytes.NewReader(damaged)); err == nil {
		t.Fatal("strict reader should reject interior corruption")
	}
}

func TestCheckpointV2TornFinalTolerated(t *testing.T) {
	spec := v2Spec()
	var buf bytes.Buffer
	cw := NewCheckpointWriter(&buf, spec)
	if err := cw.WriteRecord(v2Record("hcfirst/A/0", 1)); err != nil {
		t.Fatal(err)
	}
	full := buf.Len()
	if err := cw.WriteRecord(v2Record("hcfirst/A/1", 2)); err != nil {
		t.Fatal(err)
	}
	// Cut the final record anywhere inside it, including inside the
	// CRC trailer. Every cut must be survivable: either the tail is
	// recognized as torn and skipped, or — when the cut lands exactly
	// after the intact JSON payload — the record is adopted with its
	// original content (a mid-write crash cannot corrupt bytes, only
	// truncate them). Nothing is ever quarantined as interior
	// corruption, and the first record always survives.
	want := v2Record("hcfirst/A/1", 2)
	for cut := full + 1; cut < buf.Len(); cut++ {
		rep, err := ReadCheckpointReport(bytes.NewReader(buf.Bytes()[:cut]), ResumeOptions{ExpectSpec: &spec})
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if rep.CorruptRecords != 0 {
			t.Fatalf("cut %d: torn final must not count as corrupt", cut)
		}
		if rep.Records["hcfirst/A/0"].Metrics["x"] != 1 {
			t.Fatalf("cut %d: first record lost", cut)
		}
		switch len(rep.Records) {
		case 1:
			if !rep.TornFinal {
				t.Fatalf("cut %d: dropped tail not reported as torn", cut)
			}
		case 2:
			got := rep.Records["hcfirst/A/1"]
			if got.Metrics["x"] != want.Metrics["x"] || got.Kind != want.Kind {
				t.Fatalf("cut %d: adopted tail record differs: %+v", cut, got)
			}
		default:
			t.Fatalf("cut %d: %d records", cut, len(rep.Records))
		}
	}
}

func TestCheckpointV2SpecMismatchRejected(t *testing.T) {
	specA := v2Spec()
	var buf bytes.Buffer
	cw := NewCheckpointWriter(&buf, specA)
	if err := cw.WriteRecord(v2Record("hcfirst/A/0", 1)); err != nil {
		t.Fatal(err)
	}
	specB := specA
	specB.Seed = specA.Seed + 1
	_, err := ReadCheckpointReport(bytes.NewReader(buf.Bytes()), ResumeOptions{ExpectSpec: &specB})
	if !errors.Is(err, ErrSpecMismatch) {
		t.Fatalf("want ErrSpecMismatch, got %v", err)
	}
	// Fingerprint (scale/geometry identity) differences are stale too.
	specC := specA
	specC.Fingerprint = "other-scale"
	if _, err := ReadCheckpointReport(bytes.NewReader(buf.Bytes()), ResumeOptions{ExpectSpec: &specC}); !errors.Is(err, ErrSpecMismatch) {
		t.Fatalf("fingerprint change: want ErrSpecMismatch, got %v", err)
	}
	// Scheduling knobs are not identity: a different worker count or
	// retry budget still resumes.
	specD := specA
	specD.Workers = specA.Workers + 7
	specD.MaxRetries = 9
	if _, err := ReadCheckpointReport(bytes.NewReader(buf.Bytes()), ResumeOptions{ExpectSpec: &specD}); err != nil {
		t.Fatalf("scheduling knobs must not invalidate a checkpoint: %v", err)
	}
}

func TestCheckpointV1StillLoads(t *testing.T) {
	spec := v2Spec()
	var buf bytes.Buffer
	for i, k := range []string{"hcfirst/A/0", "hcfirst/A/1"} {
		if err := WriteRecord(&buf, v2Record(k, float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	rep, err := ReadCheckpointReport(bytes.NewReader(buf.Bytes()), ResumeOptions{ExpectSpec: &spec})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Version != 1 || rep.Header != nil {
		t.Fatalf("v1 stream reported as version %d", rep.Version)
	}
	if len(rep.Records) != 2 {
		t.Fatalf("records = %d, want 2", len(rep.Records))
	}
}

func TestCheckpointDuplicatePrecedenceRule(t *testing.T) {
	// The documented rule: later wins, except success is never
	// replaced by failure.
	ok1 := Record{Key: "k", Metrics: map[string]float64{"x": 1}}
	ok2 := Record{Key: "k", Metrics: map[string]float64{"x": 2}}
	bad := Record{Key: "k", Err: "boom"}

	cases := []struct {
		name    string
		seq     []Record
		wantX   float64
		wantErr bool
		dups    int
	}{
		{"failure then success: success wins", []Record{bad, ok1}, 1, false, 1},
		{"success then failure: success survives", []Record{ok1, bad}, 1, false, 1},
		{"later success replaces earlier success", []Record{ok1, ok2}, 2, false, 1},
		{"later failure replaces earlier failure", []Record{bad, bad}, 0, true, 1},
		{"fail, ok, fail: ok survives both", []Record{bad, ok1, bad}, 1, false, 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var buf bytes.Buffer
			for _, r := range tc.seq {
				if err := WriteRecord(&buf, r); err != nil {
					t.Fatal(err)
				}
			}
			rep, err := ReadCheckpointReport(bytes.NewReader(buf.Bytes()), ResumeOptions{})
			if err != nil {
				t.Fatal(err)
			}
			got := rep.Records["k"]
			if got.Failed() != tc.wantErr {
				t.Fatalf("failed = %v, want %v", got.Failed(), tc.wantErr)
			}
			if !tc.wantErr && got.Metrics["x"] != tc.wantX {
				t.Fatalf("x = %v, want %v", got.Metrics["x"], tc.wantX)
			}
			if rep.DuplicateRecords != tc.dups {
				t.Fatalf("DuplicateRecords = %d, want %d", rep.DuplicateRecords, tc.dups)
			}
		})
	}
}

func TestAppendCheckpointVerifiesHeaderAndAccumulates(t *testing.T) {
	spec := v2Spec()
	path := filepath.Join(t.TempDir(), "ck.jsonl")
	cw, err := CreateCheckpoint(path, spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := cw.WriteRecord(v2Record("hcfirst/A/0", 1)); err != nil {
		t.Fatal(err)
	}
	if err := cw.Close(); err != nil {
		t.Fatal(err)
	}

	// Appending under a different campaign identity is refused.
	other := spec
	other.Seed++
	if _, err := AppendCheckpoint(path, other); !errors.Is(err, ErrSpecMismatch) {
		t.Fatalf("append with wrong spec: want ErrSpecMismatch, got %v", err)
	}

	// Appending under the same identity accumulates records without a
	// second header.
	cw2, err := AppendCheckpoint(path, spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := cw2.WriteRecord(v2Record("hcfirst/A/1", 2)); err != nil {
		t.Fatal(err)
	}
	if err := cw2.Close(); err != nil {
		t.Fatal(err)
	}
	rep, err := LoadCheckpointReport(path, ResumeOptions{ExpectSpec: &spec})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Records) != 2 || rep.CorruptRecords != 0 {
		t.Fatalf("after append: %d records, %d corrupt; want 2, 0", len(rep.Records), rep.CorruptRecords)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if n := bytes.Count(raw, []byte("#rhckpt")); n != 1 {
		t.Fatalf("file has %d headers, want exactly 1", n)
	}
}

func TestAppendCheckpointIsolatesTornTail(t *testing.T) {
	spec := v2Spec()
	path := filepath.Join(t.TempDir(), "ck.jsonl")
	cw, err := CreateCheckpoint(path, spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := cw.WriteRecord(v2Record("hcfirst/A/0", 1)); err != nil {
		t.Fatal(err)
	}
	if err := cw.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-write: append half a record, no newline.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"key":"hcfirst/A/1","metr`)
	f.Close()

	cw2, err := AppendCheckpoint(path, spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := cw2.WriteRecord(v2Record("hcfirst/A/1", 2)); err != nil {
		t.Fatal(err)
	}
	if err := cw2.Close(); err != nil {
		t.Fatal(err)
	}
	// The torn tail must not bleed into the appended record: the new
	// record survives, the torn fragment is quarantined as one line.
	rep, err := LoadCheckpointReport(path, ResumeOptions{ExpectSpec: &spec})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Records) != 2 {
		t.Fatalf("records = %d, want 2 (torn tail must not eat the appended record)", len(rep.Records))
	}
	if rep.CorruptRecords != 1 {
		t.Fatalf("corrupt = %d, want 1 (the isolated torn fragment)", rep.CorruptRecords)
	}
	if rep.QuarantinePath == "" {
		t.Fatal("quarantine sidecar not written")
	}
	side, err := os.ReadFile(rep.QuarantinePath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(side, []byte(`{"key":"hcfirst/A/1","metr`)) {
		t.Fatalf("sidecar should carry the quarantined line verbatim:\n%s", side)
	}
	if !bytes.HasPrefix(side, []byte("#rhckpt-quarantine")) {
		t.Fatalf("sidecar should start with a summary report:\n%s", side)
	}
}

func TestCompactCheckpointFile(t *testing.T) {
	spec := v2Spec()
	path := filepath.Join(t.TempDir(), "ck.jsonl")
	cw, err := CreateCheckpoint(path, spec)
	if err != nil {
		t.Fatal(err)
	}
	// Duplicates (a re-run job) and a failure-then-success pair.
	for _, r := range []Record{
		v2Record("hcfirst/A/0", 1),
		{Key: "hcfirst/A/1", Err: "transient"},
		v2Record("hcfirst/A/0", 10),
		v2Record("hcfirst/A/1", 2),
	} {
		if err := cw.WriteRecord(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := cw.Close(); err != nil {
		t.Fatal(err)
	}
	// And a torn tail.
	f, _ := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	f.WriteString(`{"key":"hcfirst/B/0"`)
	f.Close()

	rep, err := CompactCheckpointFile(path, &spec)
	if err != nil {
		t.Fatal(err)
	}
	if rep.DuplicateRecords != 2 || !rep.TornFinal {
		t.Fatalf("compact report = %+v, want 2 duplicates and a torn tail", rep)
	}

	// The compacted file is clean: one header, one line per key, no
	// duplicates, no torn tail, strict-readable.
	rep2, err := LoadCheckpointReport(path, ResumeOptions{ExpectSpec: &spec})
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Version != 2 || rep2.DuplicateRecords != 0 || rep2.CorruptRecords != 0 || rep2.TornFinal {
		t.Fatalf("compacted file not clean: %+v", rep2)
	}
	if len(rep2.Records) != 2 {
		t.Fatalf("compacted records = %d, want 2", len(rep2.Records))
	}
	if rep2.Records["hcfirst/A/0"].Metrics["x"] != 10 || rep2.Records["hcfirst/A/1"].Metrics["x"] != 2 {
		t.Fatalf("compaction lost precedence: %+v", rep2.Records)
	}
	if _, err := LoadCheckpointFile(path); err != nil {
		t.Fatalf("strict reader on compacted file: %v", err)
	}
}

func TestCompactUpgradesV1File(t *testing.T) {
	spec := v2Spec()
	path := filepath.Join(t.TempDir(), "v1.jsonl")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteRecord(f, v2Record("hcfirst/A/0", 1)); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if _, err := CompactCheckpointFile(path, nil); err == nil {
		t.Fatal("v1 compaction without a spec must fail (no header to preserve)")
	}
	if _, err := CompactCheckpointFile(path, &spec); err != nil {
		t.Fatal(err)
	}
	rep, err := LoadCheckpointReport(path, ResumeOptions{ExpectSpec: &spec})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Version != 2 || len(rep.Records) != 1 {
		t.Fatalf("v1 upgrade produced version %d with %d records", rep.Version, len(rep.Records))
	}
}

func TestCompactMissingFile(t *testing.T) {
	spec := v2Spec()
	if _, err := CompactCheckpointFile(filepath.Join(t.TempDir(), "nope.jsonl"), &spec); err == nil {
		t.Fatal("want error for missing checkpoint")
	}
}

func TestLoadCheckpointReportMissingFile(t *testing.T) {
	rep, err := LoadCheckpointReport(filepath.Join(t.TempDir(), "nope.jsonl"), ResumeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Records) != 0 {
		t.Fatalf("missing file should resume fresh, got %d records", len(rep.Records))
	}
}

func TestQuarantineRetentionIsBounded(t *testing.T) {
	var buf bytes.Buffer
	for i := 0; i < 200; i++ {
		buf.WriteString("not json at all\n")
	}
	buf.WriteString(`{"key":"k","metrics":{"x":1}}` + "\n")
	rep, err := ReadCheckpointReport(bytes.NewReader(buf.Bytes()), ResumeOptions{MaxQuarantinedLines: 10})
	if err != nil {
		t.Fatal(err)
	}
	if rep.CorruptRecords != 200 {
		t.Fatalf("CorruptRecords = %d, want exact count 200", rep.CorruptRecords)
	}
	if len(rep.Corrupt) != 10 {
		t.Fatalf("retained %d lines, want capped at 10", len(rep.Corrupt))
	}
	if len(rep.Records) != 1 {
		t.Fatalf("the valid record should survive, got %d", len(rep.Records))
	}
}
