package campaign

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

// fakeRunner returns a deterministic runner whose metrics depend only
// on (spec seed, job), mirroring the keyed-seed fault model.
func fakeRunner(delayUnlock <-chan struct{}) Runner {
	return func(ctx context.Context, spec Spec, job Job) (Record, error) {
		if delayUnlock != nil {
			select {
			case <-delayUnlock:
			case <-ctx.Done():
				return Record{}, ctx.Err()
			}
		}
		seed := spec.Seed ^ uint64(len(job.Mfr)) ^ uint64(job.Module)*2654435761
		return Record{
			Seed:    seed,
			Pattern: "checkered",
			Metrics: map[string]float64{
				"hc_min": float64(seed%100_000) + 512,
				"rows":   24,
			},
			Series: map[string][]float64{"hc": {float64(seed % 7), float64(seed % 13)}},
		}, nil
	}
}

func testSpec(mfrs []string, modules int) Spec {
	return Spec{Kind: KindHCFirst, Mfrs: mfrs, ModulesPerMfr: modules, Seed: 42, Workers: 4}
}

func TestExpandDeterministicOrder(t *testing.T) {
	spec, err := testSpec([]string{"A", "B"}, 3).Normalize()
	if err != nil {
		t.Fatal(err)
	}
	jobs := Expand(spec)
	want := []string{"hcfirst/A/0", "hcfirst/A/1", "hcfirst/A/2", "hcfirst/B/0", "hcfirst/B/1", "hcfirst/B/2"}
	if len(jobs) != len(want) {
		t.Fatalf("expanded %d jobs, want %d", len(jobs), len(want))
	}
	for i, j := range jobs {
		if j.Key() != want[i] {
			t.Fatalf("job %d key %q, want %q", i, j.Key(), want[i])
		}
	}
}

func TestNormalizeRejectsUnknownKind(t *testing.T) {
	_, err := Spec{Kind: "bogus"}.Normalize()
	if err == nil || !strings.Contains(err.Error(), "bogus") {
		t.Fatalf("want unknown-kind error, got %v", err)
	}
}

func TestRunCompletesAllJobs(t *testing.T) {
	var cp bytes.Buffer
	res, err := Run(context.Background(), testSpec([]string{"A", "B", "C", "D"}, 4), Options{
		Runner:     fakeRunner(nil),
		Checkpoint: &cp,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Completed != 16 || res.Failed != 0 || res.Skipped != 0 {
		t.Fatalf("completed/failed/skipped = %d/%d/%d, want 16/0/0", res.Completed, res.Failed, res.Skipped)
	}
	if n := bytes.Count(cp.Bytes(), []byte{'\n'}); n != 16 {
		t.Fatalf("checkpoint has %d lines, want 16", n)
	}
	recs, err := ReadCheckpoint(&cp)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 16 {
		t.Fatalf("checkpoint parsed %d records, want 16", len(recs))
	}
}

func TestAggregateOrderIndependent(t *testing.T) {
	spec := testSpec([]string{"A", "B"}, 8)
	run := func(workers int) []byte {
		s := spec
		s.Workers = workers
		res, err := Run(context.Background(), s, Options{Runner: fakeRunner(nil)})
		if err != nil {
			t.Fatal(err)
		}
		b, err := Aggregate(res).MarshalIndent()
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	serial := run(1)
	parallel := run(8)
	if !bytes.Equal(serial, parallel) {
		t.Fatalf("aggregate depends on worker count:\nserial:   %s\nparallel: %s", serial, parallel)
	}
}

func TestPanickingJobIsRetriedThenReported(t *testing.T) {
	// First attempt of job B/1 panics; the retry succeeds.
	var calls atomic.Int64
	inner := fakeRunner(nil)
	runner := func(ctx context.Context, spec Spec, job Job) (Record, error) {
		if job.Key() == "hcfirst/B/1" && calls.Add(1) == 1 {
			panic("injected fault")
		}
		return inner(ctx, spec, job)
	}
	res, err := Run(context.Background(), testSpec([]string{"A", "B"}, 2), Options{Runner: runner})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	rec := res.Records["hcfirst/B/1"]
	if rec.Failed() {
		t.Fatalf("retried job should succeed, got err %q", rec.Err)
	}
	if rec.Attempts != 2 {
		t.Fatalf("attempts = %d, want 2", rec.Attempts)
	}
}

func TestPersistentPanicIsReportedNotLost(t *testing.T) {
	inner := fakeRunner(nil)
	runner := func(ctx context.Context, spec Spec, job Job) (Record, error) {
		if job.Key() == "hcfirst/A/0" {
			panic("hard fault")
		}
		return inner(ctx, spec, job)
	}
	var cp bytes.Buffer
	spec := testSpec([]string{"A"}, 2)
	spec.MaxRetries = 2
	res, err := Run(context.Background(), spec, Options{Runner: runner, Checkpoint: &cp})
	if err == nil || !strings.Contains(err.Error(), "1 of 2 jobs failed") {
		t.Fatalf("want failure-count error, got %v", err)
	}
	rec, ok := res.Records["hcfirst/A/0"]
	if !ok {
		t.Fatalf("failed job missing from records")
	}
	if !rec.Failed() || !strings.Contains(rec.Err, "hard fault") {
		t.Fatalf("failed record = %+v", rec)
	}
	if rec.Attempts != 3 {
		t.Fatalf("attempts = %d, want 3 (1 + 2 retries)", rec.Attempts)
	}
	// The failed record is checkpointed too, so it is never lost.
	recs, err := ReadCheckpoint(&cp)
	if err != nil {
		t.Fatal(err)
	}
	if got := recs["hcfirst/A/0"]; !got.Failed() {
		t.Fatalf("checkpoint should carry the failed record, got %+v", got)
	}
}

func TestInterruptedResumeBitIdenticalAggregate(t *testing.T) {
	spec := testSpec([]string{"A", "B", "C", "D"}, 4) // 16 modules

	// Reference: uninterrupted run.
	ref, err := Run(context.Background(), spec, Options{Runner: fakeRunner(nil)})
	if err != nil {
		t.Fatal(err)
	}
	refSum, err := Aggregate(ref).MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}

	// Interrupted run: cancel after 5 completions.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var cp bytes.Buffer
	var once sync.Once
	var completions atomic.Int64
	res, err := Run(ctx, spec, Options{
		Runner:     fakeRunner(nil),
		Checkpoint: &cp,
		Progress: func(done, total int, rec Record) {
			if !rec.Failed() && completions.Add(1) >= 5 {
				once.Do(cancel)
			}
		},
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupted run should report cancellation, got %v", err)
	}
	if res.Completed >= 16 {
		t.Fatalf("run was not actually interrupted (completed %d)", res.Completed)
	}

	// Resume from the streamed checkpoint.
	done, err := ReadCheckpoint(bytes.NewReader(cp.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	resumed, err := Run(context.Background(), spec, Options{Runner: fakeRunner(nil), Done: done})
	if err != nil {
		t.Fatalf("resumed run: %v", err)
	}
	if resumed.Skipped == 0 {
		t.Fatalf("resume should skip checkpointed jobs")
	}
	if resumed.Skipped+resumed.Completed != 16 {
		t.Fatalf("skipped %d + completed %d != 16", resumed.Skipped, resumed.Completed)
	}
	gotSum, err := Aggregate(resumed).MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(refSum, gotSum) {
		t.Fatalf("interrupted+resumed aggregate differs from uninterrupted run:\nref: %s\ngot: %s", refSum, gotSum)
	}
}

func TestReadCheckpointToleratesTornTrailingLine(t *testing.T) {
	var cp bytes.Buffer
	recs := []Record{
		{Key: "hcfirst/A/0", Kind: KindHCFirst, Mfr: "A", Metrics: map[string]float64{"x": 1}},
		{Key: "hcfirst/A/1", Kind: KindHCFirst, Mfr: "A", Metrics: map[string]float64{"x": 2}},
	}
	for _, r := range recs {
		if err := WriteRecord(&cp, r); err != nil {
			t.Fatal(err)
		}
	}
	// Simulate a kill mid-write: a torn final line.
	cp.WriteString(`{"key":"hcfirst/A/2","metrics":{"x":`)
	got, err := ReadCheckpoint(bytes.NewReader(cp.Bytes()))
	if err != nil {
		t.Fatalf("torn trailing line should be tolerated: %v", err)
	}
	if len(got) != 2 {
		t.Fatalf("parsed %d records, want 2", len(got))
	}
}

func TestReadCheckpointRejectsTornInteriorLine(t *testing.T) {
	var cp bytes.Buffer
	cp.WriteString(`{"key":"a","metrics":{` + "\n")
	if err := WriteRecord(&cp, Record{Key: "hcfirst/A/0"}); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadCheckpoint(bytes.NewReader(cp.Bytes())); err == nil {
		t.Fatal("interior corruption should be an error")
	}
}

func TestReadCheckpointSuccessWinsOverFailure(t *testing.T) {
	var cp bytes.Buffer
	ok := Record{Key: "hcfirst/A/0", Metrics: map[string]float64{"x": 1}}
	bad := Record{Key: "hcfirst/A/0", Err: "boom"}
	for _, r := range []Record{bad, ok, bad} {
		if err := WriteRecord(&cp, r); err != nil {
			t.Fatal(err)
		}
	}
	got, err := ReadCheckpoint(bytes.NewReader(cp.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got["hcfirst/A/0"].Failed() {
		t.Fatalf("successful record should win, got %+v", got["hcfirst/A/0"])
	}
}

func TestFailedRecordsAreRerunOnResume(t *testing.T) {
	done := map[string]Record{
		"hcfirst/A/0": {Key: "hcfirst/A/0", Err: "previous crash"},
		"hcfirst/A/1": {Key: "hcfirst/A/1", Metrics: map[string]float64{"x": 1}},
	}
	var ran []string
	var mu sync.Mutex
	inner := fakeRunner(nil)
	runner := func(ctx context.Context, spec Spec, job Job) (Record, error) {
		mu.Lock()
		ran = append(ran, job.Key())
		mu.Unlock()
		return inner(ctx, spec, job)
	}
	spec := testSpec([]string{"A"}, 2)
	spec.Workers = 1
	res, err := Run(context.Background(), spec, Options{Runner: runner, Done: done})
	if err != nil {
		t.Fatal(err)
	}
	if res.Skipped != 1 || res.Completed != 1 {
		t.Fatalf("skipped/completed = %d/%d, want 1/1", res.Skipped, res.Completed)
	}
	if len(ran) != 1 || ran[0] != "hcfirst/A/0" {
		t.Fatalf("resume should re-run only the failed job, ran %v", ran)
	}
}

func TestSummaryTextStable(t *testing.T) {
	res, err := Run(context.Background(), testSpec([]string{"A"}, 2), Options{Runner: fakeRunner(nil)})
	if err != nil {
		t.Fatal(err)
	}
	txt := Aggregate(res).Text()
	if !strings.Contains(txt, "campaign hcfirst: 2/2 jobs done") {
		t.Fatalf("unexpected summary text:\n%s", txt)
	}
	if !strings.Contains(txt, "Mfr. A (2 modules)") {
		t.Fatalf("summary text missing per-mfr block:\n%s", txt)
	}
}

func TestRunRequiresRunner(t *testing.T) {
	_, err := Run(context.Background(), testSpec([]string{"A"}, 1), Options{})
	if err == nil {
		t.Fatal("want error for missing runner")
	}
}

func TestProgressReportsMonotonicCounts(t *testing.T) {
	var mu sync.Mutex
	var seen []int
	_, err := Run(context.Background(), testSpec([]string{"A", "B"}, 2), Options{
		Runner: fakeRunner(nil),
		Progress: func(done, total int, rec Record) {
			mu.Lock()
			seen = append(seen, done)
			mu.Unlock()
			if total != 4 {
				panic(fmt.Sprintf("total = %d, want 4", total))
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != 4 {
		t.Fatalf("progress called %d times, want 4", len(seen))
	}
	for i, d := range seen {
		if d != i+1 {
			t.Fatalf("progress counts %v not monotonic", seen)
		}
	}
}
