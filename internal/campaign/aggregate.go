package campaign

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"rowhammer/internal/stats"
)

// MetricSummary pairs a metric name with its population statistics.
type MetricSummary struct {
	Metric string        `json:"metric"`
	Stats  stats.Summary `json:"stats"`
}

// MfrSummary aggregates every successful module record of one
// manufacturer.
type MfrSummary struct {
	Mfr     string          `json:"mfr"`
	Modules int             `json:"modules"`
	Metrics []MetricSummary `json:"metrics,omitempty"`
}

// Coverage is the explicit accounting a degraded fleet reports: when
// any job failed or was quarantined, the summary says exactly which
// coverage was lost instead of silently shrinking the population.
// Failed counts every failed job (quarantined included); Quarantined
// is the subset whose module tripped the circuit breaker.
type Coverage struct {
	Jobs               int           `json:"jobs"`
	Completed          int           `json:"completed"`
	Retried            int           `json:"retried"`
	Failed             int           `json:"failed"`
	Quarantined        int           `json:"quarantined"`
	QuarantinedModules []string      `json:"quarantined_modules,omitempty"`
	FailedJobs         []string      `json:"failed_jobs,omitempty"`
	Attempts           stats.Summary `json:"attempts"`
}

// Summary is the fleet-level aggregate of a campaign. It is computed
// from the record *set* (sorted by job key, metric values sorted by
// the summarizer), so it is invariant under completion order — the
// property that makes interrupted+resumed campaigns bit-identical to
// uninterrupted ones.
//
// Coverage is present only when coverage was actually lost (a job
// failed, a module was quarantined, or jobs are missing). A campaign
// that survives transient faults through retries therefore emits a
// summary bit-identical to a fault-free run's.
type Summary struct {
	Kind     string          `json:"kind"`
	Seed     uint64          `json:"seed"`
	Jobs     int             `json:"jobs"`
	Done     int             `json:"done"`
	Failed   int             `json:"failed"`
	Coverage *Coverage       `json:"coverage,omitempty"`
	Mfrs     []MfrSummary    `json:"per_mfr,omitempty"`
	Fleet    []MetricSummary `json:"fleet,omitempty"`
	Pattern  map[string]int  `json:"patterns,omitempty"`
}

// Aggregate merges the result's records into a fleet summary. Failed
// records contribute to the Failed count only; their metrics are
// excluded.
func Aggregate(res *Result) Summary {
	sum := Summary{
		Kind: res.Spec.Kind,
		Seed: res.Spec.Seed,
		Jobs: len(Expand(res.Spec)),
	}
	// Canonical record order: sorted job keys.
	perMfr := make(map[string]map[string][]float64) // mfr -> metric -> values
	fleet := make(map[string][]float64)
	modules := make(map[string]int)
	patterns := make(map[string]int)
	quarantined := make(map[string]bool)
	var failedJobs []string
	var attempts []int
	var retried int
	for _, key := range sortedKeys(res.Records) {
		rec := res.Records[key]
		if rec.Attempts > 0 {
			attempts = append(attempts, rec.Attempts)
		}
		if rec.Attempts > 1 {
			retried++
		}
		if rec.Failed() {
			sum.Failed++
			if rec.Quarantined {
				quarantined[rec.ModuleID()] = true
			} else {
				failedJobs = append(failedJobs, rec.Key)
			}
			continue
		}
		sum.Done++
		modules[rec.Mfr]++
		if rec.Pattern != "" {
			patterns[rec.Pattern]++
		}
		if perMfr[rec.Mfr] == nil {
			perMfr[rec.Mfr] = make(map[string][]float64)
		}
		for _, m := range sortedNames(rec.Metrics) {
			v := rec.Metrics[m]
			perMfr[rec.Mfr][m] = append(perMfr[rec.Mfr][m], v)
			fleet[m] = append(fleet[m], v)
		}
	}
	for _, mfr := range res.Spec.Mfrs {
		byMetric, ok := perMfr[mfr]
		if !ok {
			continue
		}
		ms := MfrSummary{Mfr: mfr, Modules: modules[mfr]}
		for _, m := range sortedNames(byMetric) {
			ms.Metrics = append(ms.Metrics, MetricSummary{Metric: m, Stats: stats.Summarize(byMetric[m])})
		}
		sum.Mfrs = append(sum.Mfrs, ms)
	}
	for _, m := range sortedNames(fleet) {
		sum.Fleet = append(sum.Fleet, MetricSummary{Metric: m, Stats: stats.Summarize(fleet[m])})
	}
	if len(patterns) > 0 {
		sum.Pattern = patterns
	}
	// Coverage accounting appears exactly when coverage was lost, so a
	// fully-recovered (transient-fault) run stays bit-identical to a
	// fault-free one while a degraded fleet names what is missing.
	if sum.Failed > 0 || sum.Done < sum.Jobs {
		sum.Coverage = &Coverage{
			Jobs:               sum.Jobs,
			Completed:          sum.Done,
			Retried:            retried,
			Failed:             sum.Failed,
			Quarantined:        len(quarantined),
			QuarantinedModules: sortedNames(quarantined),
			FailedJobs:         failedJobs,
			Attempts:           stats.SummarizeInts(attempts),
		}
	}
	return sum
}

// MarshalIndent renders the summary as deterministic, human-diffable
// JSON: struct field order is fixed and all maps serialize with sorted
// keys, so two summaries are bit-identical iff their contents are.
func (s Summary) MarshalIndent() ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}

// Text renders a compact fixed-order textual summary for terminals.
func (s Summary) Text() string {
	var b strings.Builder
	fmt.Fprintf(&b, "campaign %s: %d/%d jobs done", s.Kind, s.Done, s.Jobs)
	if s.Failed > 0 {
		fmt.Fprintf(&b, " (%d failed)", s.Failed)
	}
	b.WriteByte('\n')
	if c := s.Coverage; c != nil {
		fmt.Fprintf(&b, "  coverage: %d/%d completed, %d retried, %d failed, %d quarantined\n",
			c.Completed, c.Jobs, c.Retried, c.Failed, c.Quarantined)
		if len(c.QuarantinedModules) > 0 {
			fmt.Fprintf(&b, "  quarantined modules: %s\n", strings.Join(c.QuarantinedModules, ", "))
		}
		if len(c.FailedJobs) > 0 {
			fmt.Fprintf(&b, "  failed jobs: %s\n", strings.Join(c.FailedJobs, ", "))
		}
	}
	for _, ms := range s.Mfrs {
		fmt.Fprintf(&b, "  Mfr. %s (%d modules)\n", ms.Mfr, ms.Modules)
		for _, m := range ms.Metrics {
			fmt.Fprintf(&b, "    %-18s n=%-4d min=%.4g p50=%.4g p90=%.4g max=%.4g mean=%.4g\n",
				m.Metric, m.Stats.N, m.Stats.Min, m.Stats.Median, m.Stats.P90, m.Stats.Max, m.Stats.Mean)
		}
	}
	if len(s.Fleet) > 0 {
		fmt.Fprintf(&b, "  fleet\n")
		for _, m := range s.Fleet {
			fmt.Fprintf(&b, "    %-18s n=%-4d min=%.4g p50=%.4g p90=%.4g max=%.4g mean=%.4g\n",
				m.Metric, m.Stats.N, m.Stats.Min, m.Stats.Median, m.Stats.P90, m.Stats.Max, m.Stats.Mean)
		}
	}
	return b.String()
}

// sortedNames returns a string-keyed map's keys in canonical order.
func sortedNames[V any](m map[string]V) []string {
	names := make([]string, 0, len(m))
	for k := range m {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}
