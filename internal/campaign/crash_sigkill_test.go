//go:build unix

package campaign

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"syscall"
	"testing"

	"rowhammer/internal/durable"
)

// TestCrashHelperProcess is not a test of its own: it is the
// subprocess body driven by TestCrashSIGKILLRandomPoints. It resumes
// the campaign from RH_CRASH_CKPT, appends new records through a
// failpoint that SIGKILLs the process after exactly RH_CRASH_FAILPOINT
// checkpoint bytes (-1 disarms), and on a full run publishes the
// summary to RH_CRASH_SUMMARY via the atomic writer — the same
// load/append/publish sequence rhfleet performs.
func TestCrashHelperProcess(t *testing.T) {
	if os.Getenv("RH_CAMPAIGN_CRASH_HELPER") != "1" {
		t.Skip("subprocess body; driven by TestCrashSIGKILLRandomPoints")
	}
	die := func(stage string, err error) {
		fmt.Fprintf(os.Stderr, "crash helper: %s: %v\n", stage, err)
		os.Exit(1)
	}
	spec := crashSpec()
	path := os.Getenv("RH_CRASH_CKPT")
	rep, err := LoadCheckpointReport(path, ResumeOptions{ExpectSpec: &spec})
	if err != nil {
		die("load checkpoint", err)
	}
	cw, err := AppendCheckpoint(path, spec)
	if err != nil {
		die("append checkpoint", err)
	}
	if off, err := strconv.ParseInt(os.Getenv("RH_CRASH_FAILPOINT"), 10, 64); err == nil && off >= 0 {
		cw.Wrap(func(w io.Writer) io.Writer {
			return &durable.FailpointWriter{W: w, Remaining: off, OnTrip: func() error {
				// Die mid-write, exactly at the byte budget: the kernel
				// reclaims the process with no chance to clean up.
				return syscall.Kill(os.Getpid(), syscall.SIGKILL)
			}}
		})
	}
	res, err := Run(context.Background(), spec, Options{Runner: fakeRunner(nil), Records: cw, Done: rep.Records})
	if err != nil {
		die("run", err)
	}
	if err := cw.Close(); err != nil {
		die("close checkpoint", err)
	}
	sum, err := Aggregate(res).MarshalIndent()
	if err != nil {
		die("aggregate", err)
	}
	if err := durable.AtomicWriteFile(os.Getenv("RH_CRASH_SUMMARY"), sum, 0o644); err != nil {
		die("publish summary", err)
	}
}

// runCrashHelper reexecutes the test binary as the crash helper and
// reports whether the child was killed by SIGKILL (1) or ran to
// completion (0). Any other outcome fails the test.
func runCrashHelper(t *testing.T, ckpt, sum string, failpoint int64) int {
	t.Helper()
	cmd := exec.Command(os.Args[0], "-test.run=^TestCrashHelperProcess$")
	cmd.Env = append(os.Environ(),
		"RH_CAMPAIGN_CRASH_HELPER=1",
		"RH_CRASH_CKPT="+ckpt,
		"RH_CRASH_SUMMARY="+sum,
		"RH_CRASH_FAILPOINT="+strconv.FormatInt(failpoint, 10),
	)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	err := cmd.Run()
	if err == nil {
		return 0
	}
	var ee *exec.ExitError
	if errors.As(err, &ee) {
		if ws, ok := ee.Sys().(syscall.WaitStatus); ok && ws.Signaled() && ws.Signal() == syscall.SIGKILL {
			return 1
		}
	}
	t.Fatalf("crash helper (failpoint %d) failed unexpectedly: %v\n%s", failpoint, err, stderr.Bytes())
	return 0
}

// TestCrashSIGKILLRandomPoints is the randomized half of the
// kill-anywhere guarantee: a real subprocess is SIGKILLed mid-write at
// 20+ deterministic-random checkpoint byte offsets (every third trial
// is killed a second time during its first resume), then resumed
// disarmed. Every trial's published summary must be bit-identical to
// an uninterrupted run's, and the surviving checkpoint must still load
// under the strict spec check.
func TestCrashSIGKILLRandomPoints(t *testing.T) {
	spec := crashSpec()
	refSum, full := referenceSummary(t, spec)
	prng := rand.New(rand.NewSource(0x5eed))
	const trials = 20
	kills := 0
	for trial := 0; trial < trials; trial++ {
		dir := crashDir(t)
		ckpt := filepath.Join(dir, "fleet.jsonl")
		sum := filepath.Join(dir, "summary.json")
		// The fresh run writes the full stream, so any offset strictly
		// inside it is a guaranteed kill.
		if n := runCrashHelper(t, ckpt, sum, int64(prng.Intn(len(full)))); n != 1 {
			t.Fatalf("trial %d: armed helper survived its failpoint", trial)
		}
		kills++
		if trial%3 == 0 {
			// Kill again during the resume: the torn tail from the first
			// kill is now interior, exercising newline isolation and
			// quarantine on the next load. The offset may exceed what the
			// resume still has to write, so surviving is legitimate here.
			kills += runCrashHelper(t, ckpt, sum, int64(prng.Intn(256)))
		}
		if n := runCrashHelper(t, ckpt, sum, -1); n != 0 {
			t.Fatalf("trial %d: disarmed helper was killed", trial)
		}
		got, err := os.ReadFile(sum)
		if err != nil {
			t.Fatalf("trial %d: published summary missing: %v", trial, err)
		}
		if !bytes.Equal(refSum, got) {
			t.Fatalf("trial %d: resumed summary differs from uninterrupted run\nref: %s\ngot: %s", trial, refSum, got)
		}
		rep, err := LoadCheckpointReport(ckpt, ResumeOptions{ExpectSpec: &spec})
		if err != nil {
			t.Fatalf("trial %d: final checkpoint unreadable: %v", trial, err)
		}
		if want := len(Expand(spec)); len(rep.Records) != want {
			t.Fatalf("trial %d: final checkpoint has %d records, want %d", trial, len(rep.Records), want)
		}
	}
	if kills < 20 {
		t.Fatalf("only %d SIGKILL points exercised, want >= 20", kills)
	}
}
