package campaign

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"testing"

	"rowhammer/internal/durable"
)

// crashSpec is the small campaign the crash-injection harness kills
// and resumes: 2 manufacturers × 2 modules, enough to have both
// complete and in-flight records at any cut point.
func crashSpec() Spec {
	s := testSpec([]string{"A", "B"}, 2)
	s.Workers = 2
	return s
}

// crashDir returns a workspace for crash artifacts. When RH_CRASH_DIR
// is set (the `make crash` target), artifacts land there so CI can
// upload quarantine sidecars from failed runs; otherwise t.TempDir
// keeps everything ephemeral.
func crashDir(t *testing.T) string {
	t.Helper()
	base := os.Getenv("RH_CRASH_DIR")
	if base == "" {
		return t.TempDir()
	}
	dir, err := os.MkdirTemp(base, filepath.Base(t.Name())+"-*")
	if err != nil {
		t.Fatal(err)
	}
	return dir
}

// referenceSummary runs the crash spec uninterrupted and returns its
// canonical summary bytes plus the full checkpoint image.
func referenceSummary(t *testing.T, spec Spec) (sum, checkpoint []byte) {
	t.Helper()
	var buf bytes.Buffer
	cw := NewCheckpointWriter(&buf, spec)
	res, err := Run(context.Background(), spec, Options{Runner: fakeRunner(nil), Records: cw})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Aggregate(res).MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}
	return b, buf.Bytes()
}

// TestCrashFailpointEveryByteOffset is the exhaustive half of the
// kill-anywhere guarantee: the checkpoint write is cut at every
// single byte offset of the full stream (header included), and every
// resulting truncated checkpoint must resume to a summary
// bit-identical to an uninterrupted run's. No offset may produce
// interior corruption, a failed parse, or a divergent aggregate.
func TestCrashFailpointEveryByteOffset(t *testing.T) {
	spec := crashSpec()
	refSum, full := referenceSummary(t, spec)
	for off := 0; off <= len(full); off++ {
		var buf bytes.Buffer
		fp := &durable.FailpointWriter{W: &buf, Remaining: int64(off)}
		cw := NewCheckpointWriter(fp, spec)
		// The engine latches the write error and keeps running; only
		// the checkpoint stream is cut, exactly as a full disk or
		// yanked volume would.
		_, runErr := Run(context.Background(), spec, Options{Runner: fakeRunner(nil), Records: cw})
		if off < len(full) && runErr == nil {
			t.Fatalf("offset %d: cut checkpoint stream must surface a write error", off)
		}
		if buf.Len() > off {
			t.Fatalf("offset %d: %d bytes leaked past the failpoint", off, buf.Len())
		}

		rep, err := ReadCheckpointReport(bytes.NewReader(buf.Bytes()), ResumeOptions{ExpectSpec: &spec})
		if err != nil {
			t.Fatalf("offset %d: resume parse: %v", off, err)
		}
		if rep.CorruptRecords != 0 {
			t.Fatalf("offset %d: a clean cut produced %d corrupt interior records", off, rep.CorruptRecords)
		}
		resumed, err := Run(context.Background(), spec, Options{Runner: fakeRunner(nil), Done: rep.Records})
		if err != nil {
			t.Fatalf("offset %d: resumed run: %v", off, err)
		}
		gotSum, err := Aggregate(resumed).MarshalIndent()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(refSum, gotSum) {
			t.Fatalf("offset %d: resumed summary differs from uninterrupted run\nref: %s\ngot: %s", off, refSum, gotSum)
		}
	}
}

// TestCrashFailpointDuringCompaction cuts the atomic publication of a
// compacted checkpoint: because compaction writes through
// AtomicWriteFile, a crash mid-compaction must leave the original
// file untouched and loadable.
func TestCrashFailpointDuringCompaction(t *testing.T) {
	spec := crashSpec()
	dir := crashDir(t)
	path := filepath.Join(dir, "fleet.jsonl")
	cw, err := CreateCheckpoint(path, spec)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"hcfirst/A/0", "hcfirst/A/1"} {
		if err := cw.WriteRecord(Record{Key: k, Kind: KindHCFirst, Mfr: "A", Metrics: map[string]float64{"x": 1}}); err != nil {
			t.Fatal(err)
		}
	}
	if err := cw.Close(); err != nil {
		t.Fatal(err)
	}
	before, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Failure injected before publication: a stale spec aborts the
	// compaction, which must leave the original file untouched.
	wrong := spec
	wrong.Seed++
	if _, err := CompactCheckpointFile(path, &wrong); err == nil {
		t.Fatal("compaction under a mismatched spec should fail")
	}
	// Failure injected at publication: a read-only directory blocks
	// the atomic temp+rename. Root bypasses permission bits, so this
	// sabotage only works for ordinary users.
	if os.Geteuid() != 0 {
		if err := os.Chmod(dir, 0o555); err != nil {
			t.Fatal(err)
		}
		if _, err := CompactCheckpointFile(path, &spec); err == nil {
			t.Fatal("compaction into a read-only directory should fail")
		}
		os.Chmod(dir, 0o755)
	}
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before, after) {
		t.Fatal("failed compaction modified the original checkpoint")
	}
	if _, err := LoadCheckpointReport(path, ResumeOptions{ExpectSpec: &spec}); err != nil {
		t.Fatalf("original checkpoint unreadable after failed compaction: %v", err)
	}
}
