package campaign

import (
	"context"
	"errors"
	"fmt"
	"io"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"rowhammer/internal/rng"
)

// ErrDrained is returned by Run when the graceful-drain signal
// (Options.Drain) stopped dispatch before every job ran: in-flight
// jobs were allowed to finish and their records checkpointed, so the
// campaign is cleanly resumable.
var ErrDrained = errors.New("campaign: drained: dispatch stopped by graceful shutdown; resume from the checkpoint")

// Runner executes one job and returns its record. Runners must be
// deterministic in (spec seed, job) and safe for concurrent use; the
// engine adds panic recovery, per-attempt deadlines, backoff and retry
// around every call. The attempt number is available to the runner via
// Attempt(ctx), which is what lets deterministic fault injectors
// (internal/inject) key transient faults on the attempt.
type Runner func(ctx context.Context, spec Spec, job Job) (Record, error)

// attemptKey carries the 1-based attempt number in the job context.
type attemptKey struct{}

// withAttempt annotates ctx with the attempt number.
func withAttempt(ctx context.Context, n int) context.Context {
	return context.WithValue(ctx, attemptKey{}, n)
}

// Attempt returns the 1-based attempt number of the running job, or 1
// when the context does not carry one (e.g. a runner called directly).
func Attempt(ctx context.Context) int {
	if n, ok := ctx.Value(attemptKey{}).(int); ok {
		return n
	}
	return 1
}

// beatKey carries the watchdog heartbeat slot in the job context.
type beatKey struct{}

// heartbeat is the watchdog's per-attempt liveness slot.
type heartbeat struct{ last atomic.Int64 }

// Heartbeat marks the running job attempt as live, resetting its
// watchdog clock (Spec.WatchdogFactor). Long-running runners call it
// between measurement phases to prove they are making progress; a
// no-op when the context carries no watchdog (watchdog disabled, or a
// runner called directly).
func Heartbeat(ctx context.Context) {
	if hb, ok := ctx.Value(beatKey{}).(*heartbeat); ok {
		hb.last.Store(time.Now().UnixNano())
	}
}

// RecordWriter is a record-granular checkpoint sink; *CheckpointWriter
// implements it with the v2 header + CRC trailer format.
type RecordWriter interface{ WriteRecord(Record) error }

// Options configures one engine run.
type Options struct {
	// Runner executes jobs (required).
	Runner Runner
	// Checkpoint, when non-nil, receives one JSONL record per finished
	// job (successful or failed), written as each job completes. If the
	// writer also implements Sync (like *os.File), it is synced after
	// every record so a crash can lose at most the in-flight record.
	Checkpoint io.Writer
	// Records, when non-nil, takes precedence over Checkpoint as the
	// per-record sink — this is how the v2 CRC-trailered
	// CheckpointWriter plugs into the engine.
	Records RecordWriter
	// Done holds records from a previous run (see ReadCheckpoint);
	// successful entries are adopted without re-running their jobs.
	Done map[string]Record
	// Only, when non-nil, restricts the run to the jobs whose keys it
	// contains — the shard filter: a shard worker executes (and
	// checkpoints, and counts in its totals) exactly its assigned
	// slice of the job grid, so N disjoint shard runs cover the
	// campaign with no overlap and their merged records equal a
	// single-process run's.
	Only map[string]bool
	// Drain, when non-nil, is the graceful-shutdown signal: once it is
	// closed (or delivers), the engine stops dispatching queued jobs
	// but lets in-flight jobs finish and checkpoint under ctx, then
	// Run returns ErrDrained with the partial, resumable result. The
	// hard stop remains ctx's cancellation.
	Drain <-chan struct{}
	// Progress, when non-nil, is called after every finished or skipped
	// job with the running completion counts. It is called from the
	// collector goroutine only, so it needs no locking.
	Progress func(done, total int, rec Record)
}

// Result is the outcome of a campaign run.
type Result struct {
	Spec Spec
	// Records maps job key → record for every job that has a result,
	// including records adopted from a resume checkpoint.
	Records map[string]Record
	// Total is the number of jobs this run was responsible for: the
	// full grid, or the Options.Only slice of it for shard runs.
	Total int
	// Completed counts jobs run to success by this engine invocation,
	// Skipped jobs adopted from the resume checkpoint, and Failed jobs
	// that exhausted their retries (including cancellations and
	// quarantined modules).
	Completed, Skipped, Failed int
	// Retried counts jobs that needed more than one attempt, and
	// Quarantined the subset of failed jobs whose module tripped the
	// circuit breaker.
	Retried, Quarantined int
}

// Jobs returns the total number of jobs the spec expands to.
func (r *Result) Jobs() int { return len(Expand(r.Spec)) }

// QuarantinedModules lists the modules quarantined by the circuit
// breaker, sorted, one entry per module.
func (r *Result) QuarantinedModules() []string {
	seen := map[string]bool{}
	for _, rec := range r.Records {
		if rec.Quarantined {
			seen[rec.ModuleID()] = true
		}
	}
	return sortedNames(seen)
}

// Run executes the campaign: it expands the spec, skips jobs already
// present in opts.Done, and runs the remainder on spec.Workers
// goroutines. Finished records are streamed to opts.Checkpoint in
// completion order; aggregation (Aggregate) is order-independent, so
// the checkpoint's ordering never affects the summary.
//
// On cancellation Run returns the partial Result together with the
// context error; everything already checkpointed can be resumed.
func Run(ctx context.Context, spec Spec, opts Options) (*Result, error) {
	spec, err := spec.Normalize()
	if err != nil {
		return nil, err
	}
	if opts.Runner == nil {
		return nil, fmt.Errorf("campaign: Options.Runner is required")
	}
	jobs := Expand(spec)
	if opts.Only != nil {
		kept := make([]Job, 0, len(opts.Only))
		for _, j := range jobs {
			if opts.Only[j.Key()] {
				kept = append(kept, j)
			}
		}
		jobs = kept
	}
	res := &Result{Spec: spec, Total: len(jobs), Records: make(map[string]Record, len(jobs))}

	pending := make([]Job, 0, len(jobs))
	for _, j := range jobs {
		if rec, ok := opts.Done[j.Key()]; ok && !rec.Failed() {
			res.Records[j.Key()] = rec
			res.Skipped++
			continue
		}
		pending = append(pending, j)
	}

	br := newBreaker(spec.BreakerThreshold)
	jobCh := make(chan Job)
	recCh := make(chan Record)
	var wg sync.WaitGroup
	workers := spec.Workers
	if workers > len(pending) {
		workers = len(pending)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobCh {
				recCh <- runJob(ctx, opts.Runner, spec, j, br)
			}
		}()
	}
	// drained is written by the dispatcher goroutine before it returns
	// and read only after the collector loop ends; the close(jobCh) →
	// wg.Wait → close(recCh) chain orders those accesses.
	drained := false
	go func() {
		defer close(jobCh)
		for _, j := range pending {
			select {
			case jobCh <- j:
			case <-ctx.Done():
				return
			case <-opts.Drain:
				drained = true
				return
			}
		}
	}()
	go func() {
		wg.Wait()
		close(recCh)
	}()

	done := res.Skipped
	if opts.Progress != nil {
		for _, k := range sortedKeys(res.Records) {
			opts.Progress(done, len(jobs), res.Records[k])
		}
	}
	var cpErr error
	for rec := range recCh {
		res.Records[rec.Key] = rec
		if rec.Failed() {
			res.Failed++
			if rec.Quarantined {
				res.Quarantined++
			}
		} else {
			res.Completed++
		}
		if rec.Attempts > 1 {
			res.Retried++
		}
		done++
		if cpErr == nil {
			switch {
			case opts.Records != nil:
				cpErr = opts.Records.WriteRecord(rec)
			case opts.Checkpoint != nil:
				cpErr = WriteRecord(opts.Checkpoint, rec)
			}
		}
		if opts.Progress != nil {
			opts.Progress(done, len(jobs), rec)
		}
	}
	if cpErr != nil {
		return res, fmt.Errorf("campaign: writing checkpoint: %w", cpErr)
	}
	if err := ctx.Err(); err != nil {
		return res, err
	}
	if drained && len(res.Records) < len(jobs) {
		return res, ErrDrained
	}
	if res.Failed > 0 {
		if res.Quarantined > 0 {
			return res, fmt.Errorf("campaign: %d of %d jobs failed (%d quarantined: %s)",
				res.Failed, len(jobs), res.Quarantined, strings.Join(res.QuarantinedModules(), ", "))
		}
		return res, fmt.Errorf("campaign: %d of %d jobs failed", res.Failed, len(jobs))
	}
	return res, nil
}

// breaker is the per-module circuit breaker: it counts consecutive
// failed attempts per module and opens (quarantines) a module once the
// threshold is reached. Workers share one breaker, so it is locked.
type breaker struct {
	mu        sync.Mutex
	threshold int
	consec    map[string]int
	open      map[string]bool
}

func newBreaker(threshold int) *breaker {
	return &breaker{threshold: threshold, consec: map[string]int{}, open: map[string]bool{}}
}

// tripped reports whether the module is quarantined.
func (b *breaker) tripped(module string) bool {
	if b.threshold <= 0 {
		return false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.open[module]
}

// observe records one attempt outcome and reports whether the module
// is now (or already was) quarantined.
func (b *breaker) observe(module string, failed bool) bool {
	if b.threshold <= 0 {
		return false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if !failed {
		b.consec[module] = 0
		return b.open[module]
	}
	b.consec[module]++
	if b.consec[module] >= b.threshold {
		b.open[module] = true
	}
	return b.open[module]
}

// runJob executes one job with panic recovery, per-attempt deadlines,
// deterministic exponential backoff and the circuit breaker.
func runJob(ctx context.Context, runner Runner, spec Spec, job Job, br *breaker) Record {
	module := job.ModuleID()
	var lastErr error
	attempts := 0
	for attempts <= spec.MaxRetries {
		if br.tripped(module) {
			return quarantinedRecord(job, attempts, lastErr)
		}
		attempts++
		rec, err := safeRun(ctx, spec, runner, job, attempts)
		if err == nil {
			br.observe(module, false)
			rec.Key = job.Key()
			rec.Kind = job.Kind
			rec.Mfr = job.Mfr
			rec.Module = job.Module
			rec.Attempts = attempts
			return rec
		}
		lastErr = err
		if br.observe(module, true) {
			return quarantinedRecord(job, attempts, lastErr)
		}
		if ctx.Err() != nil {
			// The campaign (not just the attempt) was cancelled:
			// retrying would just fail again.
			break
		}
		if attempts <= spec.MaxRetries && !sleepBackoff(ctx, spec, job, attempts) {
			break
		}
	}
	return Record{
		Key: job.Key(), Kind: job.Kind, Mfr: job.Mfr, Module: job.Module,
		Attempts: attempts, Err: lastErr.Error(),
	}
}

// quarantinedRecord builds the failed record of a breaker-tripped
// module. cause may be nil when the module was quarantined by an
// earlier job before this one ran an attempt.
func quarantinedRecord(job Job, attempts int, cause error) Record {
	msg := fmt.Sprintf("module %s quarantined by circuit breaker", job.ModuleID())
	if cause != nil {
		msg = fmt.Sprintf("%s: %v", msg, cause)
	}
	return Record{
		Key: job.Key(), Kind: job.Kind, Mfr: job.Mfr, Module: job.Module,
		Attempts: attempts, Err: msg, Quarantined: true,
	}
}

// safeRun invokes the runner for one attempt — with the attempt number
// in the context, under the per-attempt deadline — and, when the
// watchdog is armed (Spec.WatchdogFactor), supervises the attempt so a
// runner that wedges without respecting its context cannot hold a
// worker hostage forever.
func safeRun(ctx context.Context, spec Spec, runner Runner, job Job, attempt int) (Record, error) {
	actx := withAttempt(ctx, attempt)
	var hb *heartbeat
	if spec.WatchdogFactor > 0 {
		hb = &heartbeat{}
		hb.last.Store(time.Now().UnixNano())
		actx = context.WithValue(actx, beatKey{}, hb)
	}
	var cancel context.CancelFunc = func() {}
	if spec.JobTimeout > 0 {
		actx, cancel = context.WithTimeout(actx, spec.JobTimeout)
	}
	defer cancel()
	if hb == nil {
		return runAttempt(actx, spec, runner, job, attempt)
	}

	// Supervised attempt: the runner executes in its own goroutine
	// while this worker watches the heartbeat clock. A stall of
	// JobTimeout×WatchdogFactor first cancels the attempt (a runner
	// that merely missed its deadline gets to unwind); a second full
	// window with no return abandons the attempt — the goroutine is
	// left to die on its own, the buffered channel swallows its late
	// result, and the stall error feeds the normal bounded retry path,
	// which is what requeues the job.
	type outcome struct {
		rec Record
		err error
	}
	ch := make(chan outcome, 1)
	go func() {
		rec, err := runAttempt(actx, spec, runner, job, attempt)
		ch <- outcome{rec, err}
	}()
	threshold := spec.JobTimeout * time.Duration(spec.WatchdogFactor)
	cancelled := false
	for {
		idle := time.Duration(time.Now().UnixNano() - hb.last.Load())
		wait := threshold - idle
		if wait < time.Millisecond {
			wait = time.Millisecond
		}
		t := time.NewTimer(wait)
		select {
		case o := <-ch:
			t.Stop()
			return o.rec, o.err
		case <-t.C:
			if time.Duration(time.Now().UnixNano()-hb.last.Load()) < threshold {
				continue // a heartbeat arrived while we slept
			}
			if !cancelled {
				cancelled = true
				cancel()
				// Grant one more full window to unwind after the cancel.
				hb.last.Store(time.Now().UnixNano())
				continue
			}
			return Record{}, fmt.Errorf("job %s attempt %d stalled: no heartbeat or return within %v after cancellation; attempt abandoned by watchdog",
				job.Key(), attempt, threshold)
		}
	}
}

// runAttempt is one bare runner invocation, converting a panic into an
// error so a single bad module cannot take down the fleet run.
func runAttempt(actx context.Context, spec Spec, runner Runner, job Job, attempt int) (rec Record, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("job %s panicked: %v", job.Key(), r)
		}
	}()
	rec, err = runner(actx, spec, job)
	if err == nil && actx.Err() != nil {
		// The attempt deadline fired but the runner returned a record
		// anyway: treat it as failed — a timed-out readout is torn.
		err = fmt.Errorf("job %s attempt %d: %w", job.Key(), attempt, actx.Err())
	}
	return rec, err
}

// sleepBackoff blocks for the deterministic backoff delay before the
// next retry; it returns false when the campaign is cancelled first.
func sleepBackoff(ctx context.Context, spec Spec, job Job, attempt int) bool {
	d := backoffDelay(spec, job, attempt)
	if d <= 0 {
		return true
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// backoffDelay returns the engine's per-retry delay for one job.
func backoffDelay(spec Spec, job Job, attempt int) time.Duration {
	return Backoff(spec.RetryBackoff, spec.Seed, job.Key(), attempt)
}

// Backoff returns base·2^(attempt-1) capped at 32×, plus a jitter in
// [0, base) derived deterministically from (seed, key, attempt) —
// reproducible, yet decorrelated across keys so retries never
// stampede the substrate in lockstep. The engine uses it for job
// retries; the lease-service client reuses it for its network
// retries, so one backoff policy covers every retried call in the
// system.
func Backoff(base time.Duration, seed uint64, key string, attempt int) time.Duration {
	if base <= 0 {
		return 0
	}
	shift := attempt - 1
	if shift > 5 {
		shift = 5
	}
	jitter := time.Duration(rng.Hash64(seed, rng.HashString(key), uint64(attempt)) % uint64(base))
	return base<<shift + jitter
}
