package campaign

import (
	"context"
	"fmt"
	"io"
	"sync"
)

// Runner executes one job and returns its record. Runners must be
// deterministic in (spec seed, job) and safe for concurrent use; the
// engine adds panic recovery and retry around every call.
type Runner func(ctx context.Context, spec Spec, job Job) (Record, error)

// Options configures one engine run.
type Options struct {
	// Runner executes jobs (required).
	Runner Runner
	// Checkpoint, when non-nil, receives one JSONL record per finished
	// job (successful or failed), written as each job completes.
	Checkpoint io.Writer
	// Done holds records from a previous run (see ReadCheckpoint);
	// successful entries are adopted without re-running their jobs.
	Done map[string]Record
	// Progress, when non-nil, is called after every finished or skipped
	// job with the running completion counts. It is called from the
	// collector goroutine only, so it needs no locking.
	Progress func(done, total int, rec Record)
}

// Result is the outcome of a campaign run.
type Result struct {
	Spec Spec
	// Records maps job key → record for every job that has a result,
	// including records adopted from a resume checkpoint.
	Records map[string]Record
	// Completed counts jobs run to success by this engine invocation,
	// Skipped jobs adopted from the resume checkpoint, and Failed jobs
	// that exhausted their retries (including cancellations).
	Completed, Skipped, Failed int
}

// Jobs returns the total number of jobs the spec expands to.
func (r *Result) Jobs() int { return len(Expand(r.Spec)) }

// Run executes the campaign: it expands the spec, skips jobs already
// present in opts.Done, and runs the remainder on spec.Workers
// goroutines. Finished records are streamed to opts.Checkpoint in
// completion order; aggregation (Aggregate) is order-independent, so
// the checkpoint's ordering never affects the summary.
//
// On cancellation Run returns the partial Result together with the
// context error; everything already checkpointed can be resumed.
func Run(ctx context.Context, spec Spec, opts Options) (*Result, error) {
	spec, err := spec.Normalize()
	if err != nil {
		return nil, err
	}
	if opts.Runner == nil {
		return nil, fmt.Errorf("campaign: Options.Runner is required")
	}
	jobs := Expand(spec)
	res := &Result{Spec: spec, Records: make(map[string]Record, len(jobs))}

	pending := make([]Job, 0, len(jobs))
	for _, j := range jobs {
		if rec, ok := opts.Done[j.Key()]; ok && !rec.Failed() {
			res.Records[j.Key()] = rec
			res.Skipped++
			continue
		}
		pending = append(pending, j)
	}

	jobCh := make(chan Job)
	recCh := make(chan Record)
	var wg sync.WaitGroup
	workers := spec.Workers
	if workers > len(pending) {
		workers = len(pending)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobCh {
				recCh <- runJob(ctx, opts.Runner, spec, j)
			}
		}()
	}
	go func() {
		defer close(jobCh)
		for _, j := range pending {
			select {
			case jobCh <- j:
			case <-ctx.Done():
				return
			}
		}
	}()
	go func() {
		wg.Wait()
		close(recCh)
	}()

	done := res.Skipped
	if opts.Progress != nil {
		for _, k := range sortedKeys(res.Records) {
			opts.Progress(done, len(jobs), res.Records[k])
		}
	}
	var cpErr error
	for rec := range recCh {
		res.Records[rec.Key] = rec
		if rec.Failed() {
			res.Failed++
		} else {
			res.Completed++
		}
		done++
		if opts.Checkpoint != nil && cpErr == nil {
			cpErr = WriteRecord(opts.Checkpoint, rec)
		}
		if opts.Progress != nil {
			opts.Progress(done, len(jobs), rec)
		}
	}
	if cpErr != nil {
		return res, fmt.Errorf("campaign: writing checkpoint: %w", cpErr)
	}
	if err := ctx.Err(); err != nil {
		return res, err
	}
	if res.Failed > 0 {
		return res, fmt.Errorf("campaign: %d of %d jobs failed", res.Failed, len(jobs))
	}
	return res, nil
}

// runJob executes one job with panic recovery and bounded retry.
func runJob(ctx context.Context, runner Runner, spec Spec, job Job) Record {
	var lastErr error
	attempts := 0
	for attempts <= spec.MaxRetries {
		attempts++
		rec, err := safeRun(ctx, runner, spec, job)
		if err == nil {
			rec.Key = job.Key()
			rec.Kind = job.Kind
			rec.Mfr = job.Mfr
			rec.Module = job.Module
			rec.Attempts = attempts
			return rec
		}
		lastErr = err
		if ctx.Err() != nil {
			// Cancelled mid-job: retrying would just fail again.
			break
		}
	}
	return Record{
		Key: job.Key(), Kind: job.Kind, Mfr: job.Mfr, Module: job.Module,
		Attempts: attempts, Err: lastErr.Error(),
	}
}

// safeRun invokes the runner, converting a panic into an error so a
// single bad module cannot take down the fleet run.
func safeRun(ctx context.Context, runner Runner, spec Spec, job Job) (rec Record, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("job %s panicked: %v", job.Key(), r)
		}
	}()
	return runner(ctx, spec, job)
}
