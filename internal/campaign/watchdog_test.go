package campaign

import (
	"bytes"
	"context"
	"errors"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestNormalizeWatchdogRequiresJobTimeout(t *testing.T) {
	s := testSpec([]string{"A"}, 1)
	s.WatchdogFactor = 3
	if _, err := s.Normalize(); err == nil {
		t.Fatal("WatchdogFactor without JobTimeout must be rejected")
	}
	s.JobTimeout = time.Second
	if _, err := s.Normalize(); err != nil {
		t.Fatal(err)
	}
	s.WatchdogFactor = -1
	s.JobTimeout = 0
	n, err := s.Normalize()
	if err != nil || n.WatchdogFactor != 0 {
		t.Fatalf("negative factor should normalize to 0, got %d, %v", n.WatchdogFactor, err)
	}
}

func TestWatchdogAbandonsWedgedRunner(t *testing.T) {
	// Job A/0 wedges: it ignores its context entirely and blocks until
	// the test ends. The watchdog must free the worker, requeue
	// through the bounded retry path, and report a stalled record —
	// without the rest of the fleet losing coverage.
	release := make(chan struct{})
	defer close(release)
	inner := fakeRunner(nil)
	runner := func(ctx context.Context, spec Spec, job Job) (Record, error) {
		if job.Key() == "hcfirst/A/0" {
			<-release // wedged: no ctx, no heartbeat
			return Record{}, errors.New("released")
		}
		return inner(ctx, spec, job)
	}
	spec := testSpec([]string{"A"}, 3)
	spec.Workers = 2
	spec.MaxRetries = 1
	spec.JobTimeout = 20 * time.Millisecond
	spec.WatchdogFactor = 2

	start := time.Now()
	res, err := Run(context.Background(), spec, Options{Runner: runner})
	if err == nil || !strings.Contains(err.Error(), "1 of 3 jobs failed") {
		t.Fatalf("want single-job failure, got %v", err)
	}
	rec := res.Records["hcfirst/A/0"]
	if !rec.Failed() || !strings.Contains(rec.Err, "watchdog") {
		t.Fatalf("stalled record = %+v, want watchdog abandonment", rec)
	}
	if rec.Attempts != 2 {
		t.Fatalf("attempts = %d, want 2 (initial + 1 bounded requeue)", rec.Attempts)
	}
	if res.Completed != 2 {
		t.Fatalf("completed = %d, want 2 healthy jobs", res.Completed)
	}
	// Sanity: the run finished in bounded time — roughly
	// 2 attempts × 2 windows × (JobTimeout×factor) — not forever.
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("watchdog took %v, fleet was effectively stalled", elapsed)
	}
}

func TestWatchdogHeartbeatDefersAbandonment(t *testing.T) {
	// This runner also ignores its deadline, but it heartbeats while
	// it works and returns its own answer after several watchdog
	// windows. The heartbeats must keep the watchdog from abandoning
	// the attempt, so the job's own error — not a stall report — is
	// what lands in the record.
	runner := func(ctx context.Context, spec Spec, job Job) (Record, error) {
		deadline := time.After(120 * time.Millisecond) // 6 watchdog windows
		tick := time.NewTicker(5 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-deadline:
				return Record{}, errors.New("gave up on its own")
			case <-tick.C:
				Heartbeat(ctx)
			}
		}
	}
	spec := testSpec([]string{"A"}, 1)
	spec.Workers = 1
	spec.MaxRetries = 0
	spec.JobTimeout = 10 * time.Millisecond
	spec.WatchdogFactor = 2

	res, err := Run(context.Background(), spec, Options{Runner: runner})
	if err == nil {
		t.Fatal("job fails by its own hand; Run should report it")
	}
	rec := res.Records["hcfirst/A/0"]
	if strings.Contains(rec.Err, "watchdog") {
		t.Fatalf("heartbeating runner was abandoned by the watchdog: %+v", rec)
	}
	if !strings.Contains(rec.Err, "gave up on its own") {
		t.Fatalf("record should carry the runner's own error, got %q", rec.Err)
	}
}

func TestHeartbeatWithoutWatchdogIsNoop(t *testing.T) {
	Heartbeat(context.Background()) // must not panic
}

func TestDrainStopsDispatchAndReturnsErrDrained(t *testing.T) {
	// One worker, four jobs. Drain fires while job 1 is running: jobs
	// 2-4 must never dispatch, job 1 must complete (not be cancelled)
	// and be checkpointed, and Run must return ErrDrained.
	started := make(chan struct{})
	var startOnce atomic.Bool
	drain := make(chan struct{})
	go func() {
		<-started
		close(drain)
	}()
	inner := fakeRunner(nil)
	runner := func(ctx context.Context, spec Spec, job Job) (Record, error) {
		if startOnce.CompareAndSwap(false, true) {
			close(started)
		}
		time.Sleep(50 * time.Millisecond) // drain fires mid-job
		if ctx.Err() != nil {
			return Record{}, ctx.Err() // drain must NOT cancel in-flight work
		}
		return inner(ctx, spec, job)
	}
	spec := testSpec([]string{"A"}, 4)
	spec.Workers = 1

	var cp bytes.Buffer
	cw := NewCheckpointWriter(&cp, spec)
	res, err := Run(context.Background(), spec, Options{Runner: runner, Records: cw, Drain: drain})
	if !errors.Is(err, ErrDrained) {
		t.Fatalf("want ErrDrained, got %v", err)
	}
	if res.Completed != 1 || res.Failed != 0 {
		t.Fatalf("completed/failed = %d/%d, want 1/0 (in-flight job finishes cleanly)", res.Completed, res.Failed)
	}
	// The drained checkpoint resumes to a bit-identical summary.
	rep, err := ReadCheckpointReport(bytes.NewReader(cp.Bytes()), ResumeOptions{ExpectSpec: &spec})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Records) != 1 {
		t.Fatalf("checkpoint has %d records, want the 1 drained job", len(rep.Records))
	}
	resumed, err := Run(context.Background(), spec, Options{Runner: fakeRunner(nil), Done: rep.Records})
	if err != nil {
		t.Fatal(err)
	}
	if resumed.Skipped != 1 || resumed.Completed != 3 {
		t.Fatalf("resume skipped/completed = %d/%d, want 1/3", resumed.Skipped, resumed.Completed)
	}
	ref, err := Run(context.Background(), spec, Options{Runner: fakeRunner(nil)})
	if err != nil {
		t.Fatal(err)
	}
	refSum, _ := Aggregate(ref).MarshalIndent()
	gotSum, _ := Aggregate(resumed).MarshalIndent()
	if !bytes.Equal(refSum, gotSum) {
		t.Fatalf("drain+resume summary differs from uninterrupted run:\nref: %s\ngot: %s", refSum, gotSum)
	}
}

func TestDrainNeverFiringIsHarmless(t *testing.T) {
	drain := make(chan struct{})
	defer close(drain)
	res, err := Run(context.Background(), testSpec([]string{"A"}, 2), Options{Runner: fakeRunner(nil), Drain: drain})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 2 {
		t.Fatalf("completed = %d, want 2", res.Completed)
	}
}

// TestWatchdogLateReturnDoesNotCorruptCheckpoint: an abandoned
// attempt's goroutine eventually returns — long after the watchdog
// gave up and the bounded retry already recorded the job. The late
// result must be swallowed, never checkpointed: the checkpoint holds
// exactly one clean record for the job, and it is the retry's, not
// the zombie's (latest-wins precedence is for crash/resume rework,
// not a back door for abandoned attempts).
func TestWatchdogLateReturnDoesNotCorruptCheckpoint(t *testing.T) {
	spec := testSpec([]string{"A"}, 1)
	spec.Workers = 1
	spec.MaxRetries = 1
	spec.JobTimeout = 10 * time.Millisecond
	spec.WatchdogFactor = 2
	nspec, err := spec.Normalize()
	if err != nil {
		t.Fatal(err)
	}

	var calls atomic.Int32
	release := make(chan struct{})
	lateReturned := make(chan struct{})
	runner := func(ctx context.Context, spec Spec, job Job) (Record, error) {
		if calls.Add(1) == 1 {
			// Wedged: no ctx, no heartbeat. The watchdog abandons this
			// attempt; the goroutine lives on until the test releases it.
			<-release
			defer close(lateReturned)
			return Record{Pattern: "zombie", Metrics: map[string]float64{"hc_min": 1}}, nil
		}
		return Record{Pattern: "retry", Metrics: map[string]float64{"hc_min": 2}}, nil
	}

	path := filepath.Join(t.TempDir(), "ckpt.jsonl")
	cw, err := CreateCheckpoint(path, nspec)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(context.Background(), nspec, Options{Runner: runner, Records: cw})
	if err != nil {
		t.Fatalf("retry should have rescued the job: %v", err)
	}
	if res.Retried != 1 || res.Completed != 1 {
		t.Fatalf("result = %+v, want 1 retried, 1 completed", res)
	}

	// Now let the zombie return its stale success and give any buggy
	// write path a moment to land before sealing the checkpoint.
	close(release)
	<-lateReturned
	time.Sleep(20 * time.Millisecond)
	if err := cw.Close(); err != nil {
		t.Fatal(err)
	}

	rep, err := LoadCheckpointReport(path, ResumeOptions{ExpectSpec: &nspec})
	if err != nil {
		t.Fatal(err)
	}
	if rep.DuplicateRecords != 0 || rep.CorruptRecords != 0 || rep.TornFinal {
		t.Fatalf("checkpoint not clean: %d duplicate(s), %d corrupt, torn=%v",
			rep.DuplicateRecords, rep.CorruptRecords, rep.TornFinal)
	}
	if len(rep.Records) != 1 {
		t.Fatalf("checkpoint has %d records, want exactly 1", len(rep.Records))
	}
	rec, ok := rep.Records["hcfirst/A/0"]
	if !ok {
		t.Fatalf("job record missing; have %v", rep.Records)
	}
	if rec.Failed() || rec.Attempts != 2 || rec.Pattern != "retry" {
		t.Fatalf("final record = %+v, want the retry's success (attempts=2)", rec)
	}
}
