package campaign

import (
	"bytes"
	"context"
	"testing"
	"time"
)

func TestBackoffDelayDeterministicAndBounded(t *testing.T) {
	spec := Spec{Seed: 7, RetryBackoff: time.Millisecond}
	job := Job{Kind: KindHCFirst, Mfr: "A", Module: 3}
	for attempt := 1; attempt <= 10; attempt++ {
		d := backoffDelay(spec, job, attempt)
		if d != backoffDelay(spec, job, attempt) {
			t.Fatalf("attempt %d: backoff not deterministic", attempt)
		}
		shift := attempt - 1
		if shift > 5 {
			shift = 5 // exponential growth caps at 32×
		}
		lo := spec.RetryBackoff << shift
		hi := lo + spec.RetryBackoff
		if d < lo || d >= hi {
			t.Fatalf("attempt %d: delay %v outside [%v, %v)", attempt, d, lo, hi)
		}
	}
	// Jitter decorrelates jobs: two jobs should not share a delay.
	other := Job{Kind: KindHCFirst, Mfr: "B", Module: 3}
	if backoffDelay(spec, job, 1) == backoffDelay(spec, other, 1) {
		t.Fatal("distinct jobs drew identical jitter")
	}
	if backoffDelay(Spec{Seed: 7}, job, 1) != 0 {
		t.Fatal("zero base must mean zero delay")
	}
}

func TestAttemptDefaultsToOne(t *testing.T) {
	if got := Attempt(context.Background()); got != 1 {
		t.Fatalf("Attempt on a bare context = %d, want 1", got)
	}
	if got := Attempt(withAttempt(context.Background(), 4)); got != 4 {
		t.Fatalf("Attempt = %d, want 4", got)
	}
}

// syncCounter is an io.Writer with a Sync method, standing in for *os.File.
type syncCounter struct {
	bytes.Buffer
	syncs int
}

func (s *syncCounter) Sync() error { s.syncs++; return nil }

func TestWriteRecordSyncsDurableWriters(t *testing.T) {
	w := &syncCounter{}
	recs := []Record{
		{Key: "hcfirst/A/0", Seed: 1},
		{Key: "hcfirst/A/1", Seed: 2},
	}
	for _, rec := range recs {
		if err := WriteRecord(w, rec); err != nil {
			t.Fatal(err)
		}
	}
	if w.syncs != len(recs) {
		t.Fatalf("syncs = %d, want one per record (%d)", w.syncs, len(recs))
	}
	// The stream itself stays valid JSONL.
	got, err := ReadCheckpoint(bytes.NewReader(w.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("read back %d records, want %d", len(got), len(recs))
	}
}

func TestBreakerOpensAtThresholdAndResets(t *testing.T) {
	br := newBreaker(3)
	if br.tripped("A/0") {
		t.Fatal("fresh breaker should be closed")
	}
	br.observe("A/0", true)
	br.observe("A/0", true)
	if br.observe("A/0", true) != true {
		t.Fatal("third consecutive failure should open the breaker")
	}
	if !br.tripped("A/0") {
		t.Fatal("breaker should stay open")
	}
	if br.tripped("A/1") {
		t.Fatal("breakers are per-module")
	}
	// A success in between resets the consecutive count.
	br.observe("B/0", true)
	br.observe("B/0", false)
	br.observe("B/0", true)
	br.observe("B/0", true)
	if br.tripped("B/0") {
		t.Fatal("non-consecutive failures must not trip the breaker")
	}
	// Threshold 0 disables the breaker entirely.
	off := newBreaker(0)
	for i := 0; i < 10; i++ {
		off.observe("C/0", true)
	}
	if off.tripped("C/0") {
		t.Fatal("disabled breaker must never trip")
	}
}
