package campaign

import (
	"bytes"
	"testing"
)

// fuzzSeedStream builds a small valid v2 stream for the fuzz corpora.
func fuzzSeedStream() []byte {
	var buf bytes.Buffer
	cw := NewCheckpointWriter(&buf, testSpec([]string{"A"}, 2))
	cw.WriteRecord(Record{Key: "hcfirst/A/0", Kind: KindHCFirst, Mfr: "A", Metrics: map[string]float64{"x": 1}})
	cw.WriteRecord(Record{Key: "hcfirst/A/1", Kind: KindHCFirst, Mfr: "A", Module: 1, Err: "boom"})
	return buf.Bytes()
}

// FuzzReadCheckpoint feeds arbitrary bytes to both checkpoint readers.
// Invariants: no input panics; quarantine retention stays bounded; and
// when the strict reader accepts an input, the report reader agrees
// with it record-for-record (they share one parser and one precedence
// rule, and must never drift apart).
func FuzzReadCheckpoint(f *testing.F) {
	valid := fuzzSeedStream()
	f.Add(valid)
	f.Add(valid[:len(valid)-9]) // torn final record
	f.Add([]byte(`{"key":"hcfirst/A/0","kind":"hcfirst","mfr":"A"}` + "\n")) // v1
	f.Add([]byte("#rhckpt{\"v\":2,\"spec\":\"0123456789abcdef\"}\tdeadbeef\n"))
	f.Add([]byte("not json\tnothex99\n\n\tcafe1234\n"))
	f.Add([]byte{0x00, 0xff, '\t', '\n', '\t'})
	f.Fuzz(func(t *testing.T, data []byte) {
		opts := ResumeOptions{MaxQuarantinedLines: 8}
		rep, err := ReadCheckpointReport(bytes.NewReader(data), opts)
		if err == nil {
			if rep == nil {
				t.Fatal("nil report without error")
			}
			if len(rep.Corrupt) > opts.MaxQuarantinedLines {
				t.Fatalf("retained %d corrupt lines, cap is %d", len(rep.Corrupt), opts.MaxQuarantinedLines)
			}
		}
		recs, serr := ReadCheckpoint(bytes.NewReader(data))
		if serr == nil {
			if err != nil {
				t.Fatalf("strict reader accepted what the report reader rejected: %v", err)
			}
			if len(recs) != len(rep.Records) {
				t.Fatalf("strict adopted %d records, report %d", len(recs), len(rep.Records))
			}
			for k, r := range recs {
				if rr, ok := rep.Records[k]; !ok || rr.Err != r.Err || rr.Attempts != r.Attempts {
					t.Fatalf("readers disagree on record %q", k)
				}
			}
		}
	})
}

// FuzzRecordCRCTrailer round-trips arbitrary payloads through the
// CRC32C trailer codec and requires any single-bit corruption of the
// encoded line to be detected (CRC32 catches all 1-bit errors).
func FuzzRecordCRCTrailer(f *testing.F) {
	f.Add([]byte(`{"key":"hcfirst/A/0"}`))
	f.Add([]byte{})
	f.Add([]byte("payload with \t embedded tab and trailer-alike\tdeadbeef"))
	f.Fuzz(func(t *testing.T, payload []byte) {
		line := appendCRCLine(nil, payload)
		got, ok := splitCRCLine(bytes.TrimSuffix(line, []byte{'\n'}))
		if !ok {
			t.Fatalf("round-trip failed for %q", payload)
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("payload mangled: %q -> %q", payload, got)
		}
		// Flip every bit of the payload and separator. Trailer bytes are
		// exempt: a case-flipped hex digit ('f'→'F') decodes to the same
		// checksum over an intact payload, which is acceptance, not
		// corruption. A flipped payload must never be handed back as the
		// original.
		for i := 0; i < len(line)-9; i++ {
			for bit := 0; bit < 8; bit++ {
				mut := append([]byte(nil), line...)
				mut[i] ^= 1 << uint(bit)
				if p, ok := splitCRCLine(bytes.TrimSuffix(mut, []byte{'\n'})); ok && bytes.Equal(p, payload) {
					t.Fatalf("flip of byte %d bit %d went undetected", i, bit)
				}
			}
		}
	})
}
