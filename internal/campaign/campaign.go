// Package campaign implements a deterministic fleet-characterization
// engine: it expands a campaign specification (manufacturers × module
// instances × experiment kind) into per-module jobs, runs them on a
// bounded worker pool with cancellation, panic recovery and bounded
// retry, streams completed records to a JSONL checkpoint, and merges
// per-module records into order-independent fleet aggregates — so an
// interrupted-and-resumed campaign produces bit-identical summaries to
// an uninterrupted one.
//
// The package is measurement-agnostic: jobs are executed by a Runner
// callback supplied by the caller (the public rowhammer.RunCampaign
// API wires it to the per-module measurement cores), which keeps this
// engine free of import cycles and lets tests inject fault-injecting
// runners.
package campaign

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"rowhammer/internal/pool"
	"rowhammer/internal/rng"
)

// The built-in experiment kinds a campaign can run per module.
// They mirror the paper's characterization axes: HCfirst sweeps
// (Fig. 11), BER across a temperature grid (§5), worst-case data
// pattern surveys (§4.2/Table 1), and spatial subarray profiles (§7).
const (
	KindHCFirst = "hcfirst"
	KindBER     = "ber"
	KindWCDP    = "wcdp"
	KindSpatial = "spatial"
)

// Kinds lists the built-in experiment kinds.
func Kinds() []string { return []string{KindHCFirst, KindBER, KindWCDP, KindSpatial} }

// extraKinds holds caller-registered experiment kinds. The engine is
// experiment-generic: any registered kind can be expanded into jobs,
// checkpointed and resumed; the registering layer supplies the Runner
// that executes it (internal/exp registers one kind per experiment).
var (
	extraKindsMu sync.Mutex
	extraKinds   = map[string]bool{}
)

// RegisterKind opens the campaign engine to a new experiment kind.
// Registration is idempotent and typically happens in the registering
// package's init.
func RegisterKind(kind string) {
	extraKindsMu.Lock()
	defer extraKindsMu.Unlock()
	extraKinds[kind] = true
}

// RegisteredKinds lists every valid kind — built-ins plus registered
// experiment kinds — sorted.
func RegisteredKinds() []string {
	out := Kinds()
	extraKindsMu.Lock()
	for k := range extraKinds {
		out = append(out, k)
	}
	extraKindsMu.Unlock()
	sort.Strings(out)
	return out
}

// ValidKind reports whether kind names a built-in or registered
// experiment kind.
func ValidKind(kind string) bool {
	for _, k := range Kinds() {
		if k == kind {
			return true
		}
	}
	extraKindsMu.Lock()
	defer extraKindsMu.Unlock()
	return extraKinds[kind]
}

// Spec declares a fleet campaign. The zero value is normalized to a
// four-manufacturer, four-modules-each HCfirst campaign.
type Spec struct {
	// Kind selects the per-module experiment (Kind* constants).
	Kind string `json:"kind"`
	// Mfrs lists the manufacturer profiles to cover.
	Mfrs []string `json:"mfrs"`
	// ModulesPerMfr is the number of module instances per manufacturer.
	ModulesPerMfr int `json:"modules_per_mfr"`
	// Seed is the master seed; per-module seeds are derived from it by
	// the runner, which is what makes the whole campaign deterministic.
	Seed uint64 `json:"seed"`
	// Workers bounds the worker pool (< 1 selects NumCPU).
	Workers int `json:"workers,omitempty"`
	// MaxRetries is how many times a failed or panicked job is retried
	// before it is reported as failed (default 1).
	MaxRetries int `json:"max_retries,omitempty"`
	// JobTimeout bounds one job *attempt*: the runner's context is
	// cancelled after this long and the attempt counts as failed, so a
	// wedged module cannot stall the fleet (0 = no per-job deadline).
	JobTimeout time.Duration `json:"job_timeout,omitempty"`
	// RetryBackoff is the base of the exponential retry backoff:
	// before retry k the worker sleeps RetryBackoff·2^(k-1), capped at
	// 32×RetryBackoff, plus a deterministic jitter in [0, RetryBackoff)
	// derived from (Seed, job key, attempt) — so backoff schedules are
	// reproducible and never synchronize across workers (0 = retry
	// immediately, the pre-hardening behavior).
	RetryBackoff time.Duration `json:"retry_backoff,omitempty"`
	// BreakerThreshold is the circuit breaker: a module is quarantined
	// after this many consecutive failed attempts, skipping any
	// remaining retries and excluding the module from the aggregate
	// with explicit coverage accounting (0 = breaker disabled).
	BreakerThreshold int `json:"breaker_threshold,omitempty"`
	// WatchdogFactor arms the stuck-job watchdog: an attempt whose
	// runner neither returns nor heartbeats (Heartbeat) for
	// JobTimeout×WatchdogFactor is first cancelled, and if it still
	// does not return within another such window the attempt is
	// abandoned — the worker is freed and the job requeued through the
	// bounded retry path, so one wedged module that ignores its
	// context can no longer stall the fleet forever. 0 disables the
	// watchdog; a non-zero value requires JobTimeout > 0.
	WatchdogFactor int `json:"watchdog_factor,omitempty"`
	// Temps is the temperature grid of BER campaigns; empty selects the
	// runner's default grid.
	Temps []float64 `json:"temps,omitempty"`
	// Fingerprint is an opaque caller-supplied measurement-identity
	// tag folded into IdentityHash. The rowhammer layer sets it from
	// the Scale and Geometry, which change measured values without
	// changing the job set — a checkpoint taken at one scale must not
	// resume into a campaign at another.
	Fingerprint string `json:"fingerprint,omitempty"`
}

// IdentityHash returns a 16-hex-digit hash of the fields that define
// what the campaign measures — Kind, Mfrs, ModulesPerMfr, Seed, Temps
// and Fingerprint. Scheduling knobs (workers, retries, timeouts,
// backoff, breaker, watchdog) are deliberately excluded: changing how
// fast a campaign runs never invalidates its checkpoint. A v2
// checkpoint records the hash in its header, and resume rejects a
// mismatch (ErrSpecMismatch).
func (s Spec) IdentityHash() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s|%s|%d|%d|%s", s.Kind, strings.Join(s.Mfrs, ","), s.ModulesPerMfr, s.Seed, s.Fingerprint)
	for _, t := range s.Temps {
		fmt.Fprintf(&b, "|%g", t)
	}
	return fmt.Sprintf("%016x", rng.HashString(b.String()))
}

// Normalize fills Spec defaults and validates the kind.
func (s Spec) Normalize() (Spec, error) {
	if s.Kind == "" {
		s.Kind = KindHCFirst
	}
	if !ValidKind(s.Kind) {
		return s, fmt.Errorf("campaign: unknown experiment kind %q (have %s)",
			s.Kind, strings.Join(RegisteredKinds(), ", "))
	}
	if len(s.Mfrs) == 0 {
		s.Mfrs = []string{"A", "B", "C", "D"}
	}
	if s.ModulesPerMfr < 1 {
		s.ModulesPerMfr = 4
	}
	if s.Seed == 0 {
		s.Seed = 0x5eed
	}
	if s.Workers < 1 {
		s.Workers = pool.DefaultWorkers()
	}
	if s.MaxRetries < 0 {
		s.MaxRetries = 0
	} else if s.MaxRetries == 0 {
		s.MaxRetries = 1
	}
	if s.JobTimeout < 0 {
		s.JobTimeout = 0
	}
	if s.RetryBackoff < 0 {
		s.RetryBackoff = 0
	}
	if s.BreakerThreshold < 0 {
		s.BreakerThreshold = 0
	}
	if s.WatchdogFactor < 0 {
		s.WatchdogFactor = 0
	}
	if s.WatchdogFactor > 0 && s.JobTimeout <= 0 {
		return s, fmt.Errorf("campaign: WatchdogFactor requires JobTimeout > 0 (the watchdog deadline is JobTimeout×%d)", s.WatchdogFactor)
	}
	return s, nil
}

// Job is one unit of campaign work: one experiment on one module
// instance of one manufacturer.
type Job struct {
	Kind   string `json:"kind"`
	Mfr    string `json:"mfr"`
	Module int    `json:"module"`
}

// Key returns the job's stable identity, used for checkpoint matching
// and order-independent aggregation.
func (j Job) Key() string { return fmt.Sprintf("%s/%s/%d", j.Kind, j.Mfr, j.Module) }

// ModuleID returns the job's module identity ("mfr/index") — the unit
// the circuit breaker quarantines.
func (j Job) ModuleID() string { return fmt.Sprintf("%s/%d", j.Mfr, j.Module) }

// Expand lists every job of the spec in a deterministic canonical
// order (manufacturers as given, module indexes ascending).
func Expand(spec Spec) []Job {
	jobs := make([]Job, 0, len(spec.Mfrs)*spec.ModulesPerMfr)
	for _, mfr := range spec.Mfrs {
		for i := 0; i < spec.ModulesPerMfr; i++ {
			jobs = append(jobs, Job{Kind: spec.Kind, Mfr: mfr, Module: i})
		}
	}
	return jobs
}

// Remaining lists, in canonical order, the jobs of the spec that have
// no successful record in done — the work left after an interrupted
// run. only, when non-nil, restricts the answer to that job-key slice
// (a shard's assignment), which is how a coordinator computes exactly
// what a dead shard still owed from the shard's own checkpoint.
func Remaining(spec Spec, done map[string]Record, only map[string]bool) []Job {
	var out []Job
	for _, j := range Expand(spec) {
		if only != nil && !only[j.Key()] {
			continue
		}
		if rec, ok := done[j.Key()]; ok && !rec.Failed() {
			continue
		}
		out = append(out, j)
	}
	return out
}

// Record is the result of one job — the unit streamed to the JSONL
// checkpoint. Metrics and Series use maps so every experiment kind
// shares one schema; encoding/json sorts map keys, which keeps the
// serialized form deterministic.
type Record struct {
	Key     string `json:"key"`
	Kind    string `json:"kind"`
	Mfr     string `json:"mfr"`
	Module  int    `json:"module"`
	Seed    uint64 `json:"seed"`
	Pattern string `json:"pattern,omitempty"`
	// Attempts is how many runs the job needed (retries included).
	Attempts int `json:"attempts,omitempty"`
	// Err is set when the job exhausted its retries; failed records are
	// re-run on resume.
	Err string `json:"err,omitempty"`
	// Quarantined marks a failed record whose module tripped the
	// circuit breaker (Spec.BreakerThreshold consecutive failures);
	// quarantined modules are reported by name in the summary's
	// coverage accounting.
	Quarantined bool `json:"quarantined,omitempty"`
	// Metrics holds the scalar measurements of the module.
	Metrics map[string]float64 `json:"metrics,omitempty"`
	// Series holds vector measurements (e.g. per-temperature BER).
	Series map[string][]float64 `json:"series,omitempty"`
	// Artifact carries an experiment shard's structured fragment
	// (internal/artifact, compact JSON) for experiment-kind jobs;
	// json.RawMessage keeps the bytes verbatim through checkpoint
	// round trips so resumed fragments merge bit-identically.
	Artifact json.RawMessage `json:"artifact,omitempty"`
	// Fence is the fencing token of the shard lease under which the
	// record was appended (internal/shard remote leases). Zero for
	// local-flock and single-process runs. The token never feeds the
	// aggregate — it exists so a checkpoint says which lease generation
	// published each record, and so a fenced zombie's appends are
	// attributable when forensics ever need them.
	Fence uint64 `json:"fence,omitempty"`
}

// Failed reports whether the record describes a failed job.
func (r Record) Failed() bool { return r.Err != "" }

// ModuleID returns the record's module identity ("mfr/index").
func (r Record) ModuleID() string { return fmt.Sprintf("%s/%d", r.Mfr, r.Module) }

// sortedKeys returns the record map's keys in canonical order.
func sortedKeys(records map[string]Record) []string {
	keys := make([]string, 0, len(records))
	for k := range records {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
