// The chaos suite: the hardened campaign engine driven through the
// deterministic fault injector (internal/inject). It proves the key
// robustness invariant — because measurement cores are pure functions
// of (spec, job) and retries are deterministic, a campaign run under
// any *transient* fault profile produces a fleet summary bit-identical
// to the fault-free run, while *dead* modules degrade gracefully into
// a summary that names exactly which coverage was lost.
package campaign_test

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"rowhammer/internal/campaign"
	"rowhammer/internal/inject"
)

// pureRunner is deterministic in (spec seed, job) — the property the
// bit-identical invariant rests on, shared by the real measurement
// cores.
func pureRunner(ctx context.Context, spec campaign.Spec, job campaign.Job) (campaign.Record, error) {
	seed := spec.Seed ^ uint64(len(job.Mfr))<<32 ^ uint64(job.Module)*2654435761
	return campaign.Record{
		Seed:    seed,
		Pattern: "checkered",
		Metrics: map[string]float64{"hc_min": float64(seed%100_000) + 512, "rows": 24},
		Series:  map[string][]float64{"hc": {float64(seed % 7), float64(seed % 13)}},
	}, nil
}

// chaosSpec is a 16-module fleet with the hardening knobs engaged:
// per-attempt deadlines, deterministic backoff, bounded retries.
func chaosSpec() campaign.Spec {
	return campaign.Spec{
		Kind:          campaign.KindHCFirst,
		Mfrs:          []string{"A", "B", "C", "D"},
		ModulesPerMfr: 4,
		Seed:          42,
		Workers:       8,
		MaxRetries:    4,
		RetryBackoff:  200 * time.Microsecond,
		JobTimeout:    5 * time.Second,
	}
}

func summarize(t *testing.T, res *campaign.Result) []byte {
	t.Helper()
	b, err := campaign.Aggregate(res).MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestChaosTransientProfileBitIdentical is the acceptance invariant:
// command errors + latency spikes + torn readouts + thermal drift,
// all transient, must aggregate bit-identically to a fault-free run.
func TestChaosTransientProfileBitIdentical(t *testing.T) {
	spec := chaosSpec()

	ref, err := campaign.Run(context.Background(), spec, campaign.Options{Runner: pureRunner})
	if err != nil {
		t.Fatalf("fault-free run: %v", err)
	}
	refSum := summarize(t, ref)

	profile := inject.Chaos(7)
	faulty := inject.WrapRunner(pureRunner, profile)
	res, err := campaign.Run(context.Background(), spec, campaign.Options{Runner: faulty})
	if err != nil {
		t.Fatalf("chaos run should recover every transient fault, got %v", err)
	}
	if res.Retried == 0 {
		t.Fatal("chaos profile injected no faults — the test is vacuous")
	}
	gotSum := summarize(t, res)
	if !bytes.Equal(refSum, gotSum) {
		t.Fatalf("summary under transient faults differs from fault-free run:\nref: %s\ngot: %s", refSum, gotSum)
	}

	// The injection itself is deterministic: a second chaos run sees
	// the exact same faults.
	res2, err := campaign.Run(context.Background(), spec, campaign.Options{Runner: inject.WrapRunner(pureRunner, inject.Chaos(7))})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Retried != res.Retried {
		t.Fatalf("fault injection not deterministic: %d vs %d jobs retried", res.Retried, res2.Retried)
	}
	for key, rec := range res.Records {
		if res2.Records[key].Attempts != rec.Attempts {
			t.Fatalf("job %s: attempts %d vs %d across identical chaos runs", key, rec.Attempts, res2.Records[key].Attempts)
		}
	}
}

// TestChaosLatencySpikeDeadlineRecovers: a spike longer than the
// per-attempt deadline turns into a timed-out first attempt; the
// retry runs clean and the summary stays bit-identical.
func TestChaosLatencySpikeDeadlineRecovers(t *testing.T) {
	spec := chaosSpec()
	spec.JobTimeout = 25 * time.Millisecond
	spec.RetryBackoff = 0

	ref, err := campaign.Run(context.Background(), spec, campaign.Options{Runner: pureRunner})
	if err != nil {
		t.Fatal(err)
	}

	profile := &inject.Profile{
		Name: "stall", Seed: 3,
		LatencySpikeRate: 1, LatencySpike: 10 * time.Second, // far beyond the deadline
		MaxFaultAttempts: 1,
	}
	res, err := campaign.Run(context.Background(), spec, campaign.Options{Runner: inject.WrapRunner(pureRunner, profile)})
	if err != nil {
		t.Fatalf("deadline should convert stalls into retries, got %v", err)
	}
	for key, rec := range res.Records {
		if rec.Attempts != 2 {
			t.Fatalf("job %s: attempts = %d, want 2 (deadline-killed first attempt + clean retry)", key, rec.Attempts)
		}
	}
	if ref2, got := summarize(t, ref), summarize(t, res); !bytes.Equal(ref2, got) {
		t.Fatalf("summary after deadline recoveries differs:\nref: %s\ngot: %s", ref2, got)
	}
}

// TestChaosDeadModulesQuarantinedWithCoverage: persistently-dead
// modules trip the circuit breaker and the summary names exactly
// which coverage was lost — graceful degradation, never a silently
// shrunk population.
func TestChaosDeadModulesQuarantinedWithCoverage(t *testing.T) {
	spec := chaosSpec()
	spec.BreakerThreshold = 2
	spec.RetryBackoff = 0

	profile := inject.Dead(7, "A/0", "C/2")
	res, err := campaign.Run(context.Background(), spec, campaign.Options{Runner: inject.WrapRunner(pureRunner, profile)})
	if err == nil || !strings.Contains(err.Error(), "quarantined") {
		t.Fatalf("dead modules must surface as a quarantine error, got %v", err)
	}
	if res.Completed != 14 || res.Failed != 2 || res.Quarantined != 2 {
		t.Fatalf("completed/failed/quarantined = %d/%d/%d, want 14/2/2", res.Completed, res.Failed, res.Quarantined)
	}
	if got := res.QuarantinedModules(); len(got) != 2 || got[0] != "A/0" || got[1] != "C/2" {
		t.Fatalf("quarantined modules = %v, want [A/0 C/2]", got)
	}

	sum := campaign.Aggregate(res)
	if sum.Coverage == nil {
		t.Fatal("degraded summary must carry coverage accounting")
	}
	c := sum.Coverage
	if c.Completed != 14 || c.Quarantined != 2 || c.Jobs != 16 {
		t.Fatalf("coverage = %+v, want 14 completed / 2 quarantined of 16", c)
	}
	if len(c.QuarantinedModules) != 2 || c.QuarantinedModules[0] != "A/0" || c.QuarantinedModules[1] != "C/2" {
		t.Fatalf("coverage names %v, want [A/0 C/2]", c.QuarantinedModules)
	}
	// The breaker must have cut retries short: threshold 2, not the
	// 5 attempts MaxRetries would allow.
	for _, key := range []string{"hcfirst/A/0", "hcfirst/C/2"} {
		rec := res.Records[key]
		if !rec.Quarantined || rec.Attempts != 2 {
			t.Fatalf("record %s = %+v, want quarantined after 2 attempts", key, rec)
		}
	}
	// The healthy population's statistics must be present (14 modules
	// across 4 manufacturers, A and C one short).
	for _, ms := range sum.Mfrs {
		want := 4
		if ms.Mfr == "A" || ms.Mfr == "C" {
			want = 3
		}
		if ms.Modules != want {
			t.Fatalf("Mfr %s has %d modules in the aggregate, want %d", ms.Mfr, ms.Modules, want)
		}
	}
}

// TestChaosDeadModuleWithoutBreakerExhaustsRetries: with the breaker
// disabled a dead module burns every retry and lands in FailedJobs —
// still explicit accounting, just without quarantine semantics.
func TestChaosDeadModuleWithoutBreakerExhaustsRetries(t *testing.T) {
	spec := chaosSpec()
	spec.RetryBackoff = 0

	res, err := campaign.Run(context.Background(), spec, campaign.Options{Runner: inject.WrapRunner(pureRunner, inject.Dead(7, "B/1"))})
	if err == nil {
		t.Fatal("dead module must fail the campaign")
	}
	if errors.Is(err, context.Canceled) {
		t.Fatalf("unexpected cancellation: %v", err)
	}
	rec := res.Records["hcfirst/B/1"]
	if rec.Quarantined {
		t.Fatal("breaker disabled: record must not be quarantined")
	}
	if rec.Attempts != spec.MaxRetries+1 {
		t.Fatalf("attempts = %d, want %d (all retries exhausted)", rec.Attempts, spec.MaxRetries+1)
	}
	sum := campaign.Aggregate(res)
	if sum.Coverage == nil || len(sum.Coverage.FailedJobs) != 1 || sum.Coverage.FailedJobs[0] != "hcfirst/B/1" {
		t.Fatalf("coverage must name the failed job, got %+v", sum.Coverage)
	}
}

// TestChaosFaultyRunResumesBitIdentical: interrupt a chaos run, resume
// it under the same fault profile, and the final summary still equals
// the fault-free reference — checkpoint/resume and fault injection
// compose.
func TestChaosFaultyRunResumesBitIdentical(t *testing.T) {
	spec := chaosSpec()

	ref, err := campaign.Run(context.Background(), spec, campaign.Options{Runner: pureRunner})
	if err != nil {
		t.Fatal(err)
	}
	refSum := summarize(t, ref)

	// Interrupted chaos run: cancel after 5 completions.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var cp bytes.Buffer
	completions := 0
	_, err = campaign.Run(ctx, spec, campaign.Options{
		Runner:     inject.WrapRunner(pureRunner, inject.Chaos(7)),
		Checkpoint: &cp,
		Progress: func(done, total int, rec campaign.Record) {
			if !rec.Failed() {
				if completions++; completions == 5 {
					cancel()
				}
			}
		},
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupted chaos run should report cancellation, got %v", err)
	}

	done, err := campaign.ReadCheckpoint(bytes.NewReader(cp.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	resumed, err := campaign.Run(context.Background(), spec, campaign.Options{
		Runner: inject.WrapRunner(pureRunner, inject.Chaos(7)),
		Done:   done,
	})
	if err != nil {
		t.Fatalf("resumed chaos run: %v", err)
	}
	if got := summarize(t, resumed); !bytes.Equal(refSum, got) {
		t.Fatalf("interrupted+resumed chaos summary differs from fault-free run:\nref: %s\ngot: %s", refSum, got)
	}
}
