package campaign

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"sync"

	"rowhammer/internal/durable"
)

// Checkpoint format. Version 2 is self-describing and self-verifying:
//
//	#rhckpt{"v":2,"spec":"<hash>","kind":...}\t<crc32c>\n   header
//	{"key":...,"metrics":...}\t<crc32c>\n                   record
//	...
//
// Every line carries a CRC32C (Castagnoli) trailer over its payload,
// separated by a tab — raw tabs are illegal inside JSON, so the
// separator is unambiguous. The header pins the campaign identity
// (spec hash, kind, module set, seed) so a checkpoint can never be
// resumed into a different campaign, and the per-record CRCs turn
// silent bit-rot into explicit quarantine instead of corrupt resumes.
// Version 1 files (plain JSONL, no header, no trailers) still load;
// the two line formats can even coexist in one file, which is what a
// v2 binary appending to a v1 checkpoint produces.
const checkpointHeaderPrefix = "#rhckpt"

// ErrSpecMismatch is returned when a checkpoint's header identifies a
// different campaign than the one resuming from it — the
// stale-resume protection that keeps records measured under one
// (kind, module set, seed, scale) from silently polluting another.
var ErrSpecMismatch = errors.New("campaign: checkpoint belongs to a different campaign spec")

// ErrShardMismatch is returned when a checkpoint's header carries a
// shard assignment that disagrees with the resuming process — a shard
// worker must not adopt another shard's slice of the grid, and a
// whole-campaign resume must not silently absorb one shard's partial
// records as if they were the full campaign.
var ErrShardMismatch = errors.New("campaign: checkpoint belongs to a different shard assignment")

// CheckpointHeader is the self-describing first line of a v2
// checkpoint. Of > 0 marks a shard checkpoint: the file holds shard
// Shard of Of's disjoint slice of the job grid, not the whole
// campaign. Spec stays the campaign identity hash — identical across
// all shards of one campaign — which is what lets a merge verify that
// every shard file measured the same thing.
type CheckpointHeader struct {
	Version       int      `json:"v"`
	Spec          string   `json:"spec"`
	Kind          string   `json:"kind"`
	Mfrs          []string `json:"mfrs"`
	ModulesPerMfr int      `json:"modules_per_mfr"`
	Seed          uint64   `json:"seed"`
	Shard         int      `json:"shard,omitempty"`
	Of            int      `json:"of,omitempty"`
}

// Sharded reports whether the header describes one shard's slice of
// the campaign rather than the whole grid.
func (h CheckpointHeader) Sharded() bool { return h.Of > 0 }

// HeaderForSpec builds the v2 header describing spec.
func HeaderForSpec(spec Spec) CheckpointHeader {
	if n, err := spec.Normalize(); err == nil {
		spec = n
	}
	return CheckpointHeader{
		Version:       2,
		Spec:          spec.IdentityHash(),
		Kind:          spec.Kind,
		Mfrs:          spec.Mfrs,
		ModulesPerMfr: spec.ModulesPerMfr,
		Seed:          spec.Seed,
	}
}

// appendCRCLine and splitCRCLine are the shared CRC-trailed line
// codec from internal/durable; the store's index log uses the same
// one, so there is exactly one on-disk line format to fuzz and trust.
func appendCRCLine(dst, payload []byte) []byte { return durable.AppendCRCLine(dst, payload) }

func splitCRCLine(line []byte) (payload []byte, ok bool) { return durable.SplitCRCLine(line) }

// parseHeaderLine decodes a CRC-verified v2 header line.
func parseHeaderLine(line []byte) (*CheckpointHeader, bool) {
	payload, ok := splitCRCLine(line)
	if !ok || !bytes.HasPrefix(payload, []byte(checkpointHeaderPrefix)) {
		return nil, false
	}
	var h CheckpointHeader
	if json.Unmarshal(payload[len(checkpointHeaderPrefix):], &h) != nil || h.Version != 2 {
		return nil, false
	}
	return &h, true
}

// parseRecordLine decodes one checkpoint record line of either
// version. A line containing a tab must carry a valid CRC trailer
// (JSON never contains raw tabs); a line without one is a v1 record.
func parseRecordLine(raw []byte) (Record, error) {
	payload := raw
	if p, ok := splitCRCLine(raw); ok {
		payload = p
	} else if bytes.IndexByte(raw, '\t') >= 0 {
		return Record{}, fmt.Errorf("CRC trailer mismatch")
	}
	var rec Record
	if err := json.Unmarshal(payload, &rec); err != nil {
		return Record{}, err
	}
	if rec.Key == "" {
		return Record{}, fmt.Errorf("record has no key")
	}
	return rec, nil
}

// syncer is the durability hook of *os.File-like checkpoint writers.
type syncer interface{ Sync() error }

// CheckpointWriter streams v2 checkpoint lines: a self-describing
// header followed by CRC32C-trailed records, each fsynced when the
// underlying writer supports Sync. It is safe for use from one
// goroutine (the engine's collector); Compact and the CLIs get their
// own instances.
type CheckpointWriter struct {
	mu            sync.Mutex
	w             io.Writer
	closer        io.Closer
	header        CheckpointHeader
	headerWritten bool
}

// NewCheckpointWriter writes a v2 checkpoint for spec to w. The
// header line is written lazily before the first record (or
// explicitly via WriteHeader), so wrapping w with a crash-injection
// failpoint before any write covers the header bytes too.
func NewCheckpointWriter(w io.Writer, spec Spec) *CheckpointWriter {
	return &CheckpointWriter{w: w, header: HeaderForSpec(spec)}
}

// Wrap replaces the underlying writer with f(current) — the failpoint
// seam: a crash-injection harness interposes a writer that cuts the
// stream at an exact byte offset (or kills the process there).
func (cw *CheckpointWriter) Wrap(f func(io.Writer) io.Writer) {
	cw.mu.Lock()
	defer cw.mu.Unlock()
	cw.w = f(cw.w)
}

// Header returns the header this writer stamps on the checkpoint.
func (cw *CheckpointWriter) Header() CheckpointHeader { return cw.header }

// WriteHeader writes the header line if it has not been written yet.
func (cw *CheckpointWriter) WriteHeader() error {
	cw.mu.Lock()
	defer cw.mu.Unlock()
	return cw.ensureHeader()
}

func (cw *CheckpointWriter) ensureHeader() error {
	if cw.headerWritten {
		return nil
	}
	hb, err := json.Marshal(cw.header)
	if err != nil {
		return err
	}
	payload := append([]byte(checkpointHeaderPrefix), hb...)
	if _, err := cw.w.Write(appendCRCLine(nil, payload)); err != nil {
		return err
	}
	cw.headerWritten = true
	return cw.sync()
}

// WriteRecord appends one CRC-trailed record line and fsyncs it, so a
// crash — not just a SIGINT — can lose at most the in-flight record,
// never completed jobs buffered in the OS page cache.
func (cw *CheckpointWriter) WriteRecord(rec Record) error {
	cw.mu.Lock()
	defer cw.mu.Unlock()
	if err := cw.ensureHeader(); err != nil {
		return err
	}
	b, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	if _, err := cw.w.Write(appendCRCLine(nil, b)); err != nil {
		return err
	}
	return cw.sync()
}

func (cw *CheckpointWriter) sync() error {
	if s, ok := cw.w.(syncer); ok {
		return s.Sync()
	}
	return nil
}

// Sync flushes the underlying writer when it supports it.
func (cw *CheckpointWriter) Sync() error {
	cw.mu.Lock()
	defer cw.mu.Unlock()
	return cw.sync()
}

// Close syncs and closes the underlying file when this writer owns
// one (CreateCheckpoint/AppendCheckpoint).
func (cw *CheckpointWriter) Close() error {
	cw.mu.Lock()
	defer cw.mu.Unlock()
	err := cw.sync()
	if cw.closer != nil {
		if cerr := cw.closer.Close(); err == nil {
			err = cerr
		}
		cw.closer = nil
	}
	return err
}

// CreateCheckpoint creates (or truncates) path as a fresh v2
// checkpoint for spec. The header is written with the first record.
func CreateCheckpoint(path string, spec Spec) (*CheckpointWriter, error) {
	return CreateShardCheckpoint(path, spec, 0, 0)
}

// CreateShardCheckpoint creates (or truncates) path as a fresh v2
// checkpoint holding shard shard/of's slice of the campaign; of = 0
// creates a whole-campaign checkpoint.
func CreateShardCheckpoint(path string, spec Spec, shard, of int) (*CheckpointWriter, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	cw := NewCheckpointWriter(f, spec)
	cw.header.Shard, cw.header.Of = shard, of
	cw.closer = f
	return cw, nil
}

// AppendCheckpoint opens path for appending new records of the same
// campaign. An existing v2 header is verified against spec
// (ErrSpecMismatch protects against resuming into the wrong
// campaign, ErrShardMismatch against adopting one shard's partial
// slice as the whole campaign); a file killed mid-line gets a newline
// first so the torn tail is isolated as one quarantinable line
// instead of corrupting the first new record; an empty or headerless
// (v1) file gets a v2 header before the first appended record.
func AppendCheckpoint(path string, spec Spec) (*CheckpointWriter, error) {
	return AppendShardCheckpoint(path, spec, 0, 0)
}

// AppendShardCheckpoint opens path for appending records of shard
// shard/of of the campaign. The existing header — when present —
// must carry both the campaign identity and the same shard
// assignment: shard checkpoints from different campaigns or
// different slices never silently interleave.
func AppendShardCheckpoint(path string, spec Spec, shard, of int) (*CheckpointWriter, error) {
	header, hasHeader, tornTail, err := scanCheckpointFile(path)
	if err != nil {
		return nil, err
	}
	if hasHeader {
		want := HeaderForSpec(spec)
		if header.Spec != want.Spec {
			return nil, fmt.Errorf("%w: %s has spec %s (kind %s, %d mfrs × %d modules, seed %d), campaign has spec %s",
				ErrSpecMismatch, path, header.Spec, header.Kind, len(header.Mfrs), header.ModulesPerMfr, header.Seed, want.Spec)
		}
		if header.Shard != shard || header.Of != of {
			return nil, fmt.Errorf("%w: %s holds %s, this process is %s",
				ErrShardMismatch, path, describeShard(header.Shard, header.Of), describeShard(shard, of))
		}
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	cw := NewCheckpointWriter(f, spec)
	cw.header.Shard, cw.header.Of = shard, of
	cw.closer = f
	cw.headerWritten = hasHeader
	if tornTail {
		if _, err := f.Write([]byte{'\n'}); err != nil {
			f.Close()
			return nil, err
		}
	}
	return cw, nil
}

// describeShard names a header's shard assignment for error messages.
func describeShard(shard, of int) string {
	if of <= 0 {
		return "the whole campaign"
	}
	return fmt.Sprintf("shard %d/%d", shard, of)
}

// scanCheckpointFile reports the first valid v2 header of path (if
// any) and whether the file ends mid-line (torn tail, no trailing
// newline). A missing file is an empty one.
func scanCheckpointFile(path string) (header CheckpointHeader, hasHeader, tornTail bool, err error) {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return CheckpointHeader{}, false, false, nil
		}
		return CheckpointHeader{}, false, false, err
	}
	defer f.Close()
	var lastByte byte
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		if !hasHeader {
			if h, ok := parseHeaderLine(line); ok {
				header, hasHeader = *h, true
			}
		}
	}
	if err := sc.Err(); err != nil {
		return CheckpointHeader{}, false, false, err
	}
	// Scanner strips the final newline either way; check the raw tail.
	if info, err := f.Stat(); err == nil && info.Size() > 0 {
		b := []byte{0}
		if _, err := f.ReadAt(b, info.Size()-1); err == nil {
			lastByte = b[0]
		}
		tornTail = lastByte != '\n'
	}
	return header, hasHeader, tornTail, nil
}

// WriteRecord appends one v1 (plain JSONL) record to a checkpoint
// stream. encoding/json sorts map keys, so a record's serialized form
// depends only on its contents — never on insertion order.
//
// When w implements Sync (like *os.File) the write is fsynced before
// returning. New code should prefer CheckpointWriter, which adds the
// v2 header and CRC trailers; this writer is kept for v1
// compatibility and in-memory tests.
func WriteRecord(w io.Writer, rec Record) error {
	b, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	b = append(b, '\n')
	if _, err := w.Write(b); err != nil {
		return err
	}
	if s, ok := w.(syncer); ok {
		return s.Sync()
	}
	return nil
}

// ResumeOptions configures checkpoint parsing for resume.
type ResumeOptions struct {
	// ExpectSpec, when non-nil, rejects checkpoints whose v2 header
	// identifies a different campaign (ErrSpecMismatch). Headerless v1
	// files carry no identity and are accepted as-is.
	ExpectSpec *Spec
	// MaxQuarantinedLines bounds how many corrupt raw lines the report
	// retains (and the sidecar receives); the count in CorruptRecords
	// is always exact. 0 selects the default of 64.
	MaxQuarantinedLines int
}

// CorruptLine is one quarantined checkpoint line.
type CorruptLine struct {
	// Line is the 1-based line number in the source stream.
	Line int
	// Raw is the offending line verbatim.
	Raw []byte
	// Reason says why the line was quarantined.
	Reason string
}

// ResumeReport is the outcome of parsing a checkpoint for resume:
// the adopted records plus explicit accounting of everything the
// parser had to tolerate, so a resumed campaign can say exactly what
// it recovered rather than silently absorbing damage.
type ResumeReport struct {
	// Version is 2 when a v2 header was found, else 1.
	Version int
	// Header is the v2 header, when present.
	Header *CheckpointHeader
	// Records maps job key → adopted record (see the precedence rule
	// in ReadCheckpoint's doc comment).
	Records map[string]Record
	// Lines counts non-blank lines scanned.
	Lines int
	// DuplicateRecords counts lines whose key had already appeared —
	// the normal artifact of crash/resume cycles re-running in-flight
	// jobs, surfaced so operators can see how much rework occurred.
	DuplicateRecords int
	// CorruptRecords counts interior lines that failed CRC or JSON
	// validation and were quarantined rather than adopted.
	CorruptRecords int
	// Corrupt holds the quarantined lines (capped at
	// MaxQuarantinedLines; CorruptRecords is the exact total).
	Corrupt []CorruptLine
	// TornFinal reports that the stream's last line was incomplete —
	// the expected artifact of a crash mid-write — and was skipped.
	TornFinal bool
	// QuarantinePath is the .corrupt sidecar written by
	// LoadCheckpointReport when corrupt lines were found.
	QuarantinePath string
}

// ReadCheckpointReport parses a v1 or v2 JSONL checkpoint stream into
// a resume report. It verifies per-record CRCs (v2), rejects streams
// whose header identifies a different campaign than opts.ExpectSpec,
// tolerates a torn final line, and quarantines corrupt interior lines
// into the report instead of failing the whole resume.
//
// Duplicate-key precedence: the later record wins, except that a
// successful record is never replaced by a failed one — a resumed run
// may re-fail a job another run completed, and the completed
// measurement must survive. A later success does replace an earlier
// failure, and a later success replaces an earlier success (the
// rewrite is counted in DuplicateRecords either way).
func ReadCheckpointReport(r io.Reader, opts ResumeOptions) (*ResumeReport, error) {
	return readCheckpoint(r, opts, false)
}

// ReadCheckpoint parses a JSONL checkpoint stream into a key→record
// map suitable for Options.Done, accepting both v1 and v2 formats.
// It applies the same duplicate-key precedence as ReadCheckpointReport
// (later wins; success is never replaced by failure). A torn trailing
// line — the usual artifact of killing a run mid-write — is tolerated
// and skipped; torn or corrupt interior lines are reported as errors.
// Resume paths that should survive interior corruption use
// ReadCheckpointReport, which quarantines instead.
func ReadCheckpoint(r io.Reader) (map[string]Record, error) {
	rep, err := readCheckpoint(r, ResumeOptions{}, true)
	if err != nil {
		return nil, err
	}
	return rep.Records, nil
}

func readCheckpoint(r io.Reader, opts ResumeOptions, strict bool) (*ResumeReport, error) {
	maxKeep := opts.MaxQuarantinedLines
	if maxKeep <= 0 {
		maxKeep = 64
	}
	rep := &ResumeReport{Version: 1, Records: make(map[string]Record)}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	line := 0
	// One bad line is held pending: if it turns out to be the final
	// line it is a torn write and is forgiven; if more lines follow it
	// is interior corruption — fatal in strict mode, quarantined in
	// report mode.
	var pending *CorruptLine
	flushPending := func() error {
		if pending == nil {
			return nil
		}
		if strict {
			return fmt.Errorf("campaign: checkpoint line %d: %s", pending.Line, pending.Reason)
		}
		rep.CorruptRecords++
		if len(rep.Corrupt) < maxKeep {
			rep.Corrupt = append(rep.Corrupt, *pending)
		}
		pending = nil
		return nil
	}
	for sc.Scan() {
		line++
		raw := bytes.TrimSpace(sc.Bytes())
		if len(raw) == 0 {
			continue
		}
		if err := flushPending(); err != nil {
			return nil, err
		}
		rep.Lines++
		if bytes.HasPrefix(raw, []byte(checkpointHeaderPrefix)) {
			h, ok := parseHeaderLine(raw)
			switch {
			case ok && rep.Header == nil:
				rep.Header = h
				rep.Version = 2
				if opts.ExpectSpec != nil {
					want := HeaderForSpec(*opts.ExpectSpec)
					if h.Spec != want.Spec {
						return nil, fmt.Errorf("%w: checkpoint spec %s (kind %s, %d mfrs × %d modules, seed %d), campaign spec %s",
							ErrSpecMismatch, h.Spec, h.Kind, len(h.Mfrs), h.ModulesPerMfr, h.Seed, want.Spec)
					}
				}
			case ok:
				// A second valid header: quarantine the duplicate.
				pending = &CorruptLine{Line: line, Raw: append([]byte(nil), raw...), Reason: "duplicate checkpoint header"}
			default:
				pending = &CorruptLine{Line: line, Raw: append([]byte(nil), raw...), Reason: "invalid checkpoint header"}
			}
			continue
		}
		rec, err := parseRecordLine(raw)
		if err != nil {
			pending = &CorruptLine{Line: line, Raw: append([]byte(nil), raw...), Reason: err.Error()}
			continue
		}
		if prev, ok := rep.Records[rec.Key]; ok {
			rep.DuplicateRecords++
			if !prev.Failed() && rec.Failed() {
				continue
			}
		}
		rep.Records[rec.Key] = rec
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if pending != nil {
		rep.TornFinal = true
	}
	return rep, nil
}

// LoadCheckpointFile reads a JSONL checkpoint from disk with strict
// (ReadCheckpoint) semantics. A missing file yields an empty map, so
// "resume from a checkpoint that does not exist yet" degrades to a
// fresh run.
func LoadCheckpointFile(path string) (map[string]Record, error) {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return map[string]Record{}, nil
		}
		return nil, err
	}
	defer f.Close()
	return ReadCheckpoint(f)
}

// LoadCheckpointReport reads a checkpoint from disk for resume. A
// missing file yields an empty report. When corrupt interior lines
// were quarantined, they are published atomically to a "<path>.corrupt"
// sidecar — a summary header followed by the offending lines verbatim
// — so damaged measurements are preserved for forensics instead of
// silently dropped, and the report's QuarantinePath names the sidecar.
func LoadCheckpointReport(path string, opts ResumeOptions) (*ResumeReport, error) {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return &ResumeReport{Version: 1, Records: map[string]Record{}}, nil
		}
		return nil, err
	}
	rep, err := ReadCheckpointReport(f, opts)
	f.Close()
	if err != nil {
		return nil, err
	}
	if rep.CorruptRecords > 0 {
		sidecar := path + ".corrupt"
		var buf bytes.Buffer
		sum, _ := json.Marshal(struct {
			Source    string `json:"source"`
			Corrupt   int    `json:"corrupt_records"`
			Retained  int    `json:"retained_lines"`
			TornFinal bool   `json:"torn_final"`
		}{path, rep.CorruptRecords, len(rep.Corrupt), rep.TornFinal})
		fmt.Fprintf(&buf, "#rhckpt-quarantine%s\n", sum)
		for _, c := range rep.Corrupt {
			fmt.Fprintf(&buf, "# line %d: %s\n", c.Line, c.Reason)
			buf.Write(c.Raw)
			buf.WriteByte('\n')
		}
		if err := durable.AtomicWriteFile(sidecar, buf.Bytes(), 0o644); err != nil {
			return nil, fmt.Errorf("campaign: writing quarantine sidecar: %w", err)
		}
		rep.QuarantinePath = sidecar
	}
	return rep, nil
}

// CompactCheckpointFile rewrites path as a fresh v2 checkpoint
// holding one line per surviving record (duplicates resolved by the
// resume precedence rule, corrupt lines quarantined to the sidecar,
// torn tail dropped), published atomically so a crash mid-compaction
// leaves the original file intact. The spec is needed to stamp a v2
// header when path is a headerless v1 file; a v2 file keeps its own
// header, which must match spec when one is given.
func CompactCheckpointFile(path string, spec *Spec) (*ResumeReport, error) {
	opts := ResumeOptions{}
	if spec != nil {
		opts.ExpectSpec = spec
	}
	rep, err := LoadCheckpointReport(path, opts)
	if err != nil {
		return nil, err
	}
	if rep.Lines == 0 && len(rep.Records) == 0 {
		if _, err := os.Stat(path); os.IsNotExist(err) {
			return nil, fmt.Errorf("campaign: compact %s: no checkpoint", path)
		}
	}
	var header CheckpointHeader
	switch {
	case rep.Header != nil:
		header = *rep.Header
	case spec != nil:
		header = HeaderForSpec(*spec)
	default:
		return nil, fmt.Errorf("campaign: compact %s: v1 checkpoint has no header; the campaign spec is required to write one", path)
	}
	var buf bytes.Buffer
	cw := NewCheckpointWriter(&buf, Spec{})
	cw.header = header
	if err := cw.WriteHeader(); err != nil {
		return nil, err
	}
	for _, k := range sortedKeys(rep.Records) {
		if err := cw.WriteRecord(rep.Records[k]); err != nil {
			return nil, err
		}
	}
	if err := durable.AtomicWriteFile(path, buf.Bytes(), 0o644); err != nil {
		return nil, err
	}
	return rep, nil
}
