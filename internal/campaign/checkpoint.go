package campaign

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// syncer is the durability hook of *os.File-like checkpoint writers.
type syncer interface{ Sync() error }

// WriteRecord appends one record to a JSONL checkpoint stream.
// encoding/json sorts map keys, so a record's serialized form depends
// only on its contents — never on insertion order.
//
// When w implements Sync (like *os.File) the write is fsynced before
// returning, so a crash — not just a SIGINT — can lose at most the
// in-flight record, never completed jobs buffered in the OS page
// cache.
func WriteRecord(w io.Writer, rec Record) error {
	b, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	b = append(b, '\n')
	if _, err := w.Write(b); err != nil {
		return err
	}
	if s, ok := w.(syncer); ok {
		return s.Sync()
	}
	return nil
}

// ReadCheckpoint parses a JSONL checkpoint stream into a key→record
// map suitable for Options.Done. Later lines win over earlier ones for
// the same key, except that a successful record is never replaced by a
// failed one (a resumed run may re-fail a job another run completed).
// A torn trailing line — the usual artifact of killing a run mid-write
// — is tolerated and skipped; torn or malformed interior lines are
// reported as errors.
func ReadCheckpoint(r io.Reader) (map[string]Record, error) {
	out := make(map[string]Record)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	var pendingErr error
	line := 0
	for sc.Scan() {
		line++
		if pendingErr != nil {
			return nil, pendingErr
		}
		raw := bytes.TrimSpace(sc.Bytes())
		if len(raw) == 0 {
			continue
		}
		var rec Record
		if err := json.Unmarshal(raw, &rec); err != nil {
			// Only fatal if a later line exists: a malformed final line
			// is a torn write from an interrupted run.
			pendingErr = fmt.Errorf("campaign: checkpoint line %d: %w", line, err)
			continue
		}
		if rec.Key == "" {
			pendingErr = fmt.Errorf("campaign: checkpoint line %d: record has no key", line)
			continue
		}
		if prev, ok := out[rec.Key]; ok && !prev.Failed() && rec.Failed() {
			continue
		}
		out[rec.Key] = rec
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// LoadCheckpointFile reads a JSONL checkpoint from disk. A missing
// file yields an empty map, so "resume from a checkpoint that does not
// exist yet" degrades to a fresh run.
func LoadCheckpointFile(path string) (map[string]Record, error) {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return map[string]Record{}, nil
		}
		return nil, err
	}
	defer f.Close()
	return ReadCheckpoint(f)
}
