//go:build !unix

package durable

import (
	"fmt"
	"os"
)

// AcquireLock on platforms without flock falls back to O_EXCL
// creation. Unlike the flock variant, a lockfile left by a crashed
// process looks held until it is deleted by hand — the tradeoff of
// not having kernel-owned advisory locks.
func AcquireLock(path string) (*Lock, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		if os.IsExist(err) {
			holder, _ := os.ReadFile(path)
			if len(holder) > 0 {
				return nil, fmt.Errorf("%w: %s (held by pid %s)", ErrLocked, path, string(holder))
			}
			return nil, fmt.Errorf("%w: %s", ErrLocked, path)
		}
		return nil, fmt.Errorf("durable: lock %s: %w", path, err)
	}
	fmt.Fprintf(f, "%d", os.Getpid())
	f.Sync()
	return &Lock{f: f, path: path}, nil
}

// ProbeLock without flock can only consult existence: a present
// lockfile is assumed held (a crashed holder looks alive until its
// file is deleted by hand — the same tradeoff AcquireLock documents).
func ProbeLock(path string) (held bool, err error) {
	if _, err := os.Stat(path); err != nil {
		if os.IsNotExist(err) {
			return false, nil
		}
		return false, fmt.Errorf("durable: probe %s: %w", path, err)
	}
	return true, nil
}

// Release deletes the lockfile. Safe to call on a nil Lock.
func (l *Lock) Release() error {
	if l == nil || l.f == nil {
		return nil
	}
	err := l.f.Close()
	if rerr := os.Remove(l.path); err == nil {
		err = rerr
	}
	l.f = nil
	return err
}
