package durable

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestAtomicWriteFileCreatesAndReplaces(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "summary.json")
	if err := AtomicWriteFile(path, []byte("v1"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil || string(got) != "v1" {
		t.Fatalf("read back %q, %v", got, err)
	}
	if err := AtomicWriteFile(path, []byte("v2"), 0o600); err != nil {
		t.Fatal(err)
	}
	got, _ = os.ReadFile(path)
	if string(got) != "v2" {
		t.Fatalf("replaced content = %q, want v2", got)
	}
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if perm := info.Mode().Perm(); perm != 0o600 {
		t.Fatalf("perm = %o, want 600", perm)
	}
	// No temp debris left behind.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		names := make([]string, 0, len(entries))
		for _, e := range entries {
			names = append(names, e.Name())
		}
		t.Fatalf("directory has debris: %v", names)
	}
}

func TestAtomicWriteFileMissingDir(t *testing.T) {
	err := AtomicWriteFile(filepath.Join(t.TempDir(), "nope", "x"), []byte("x"), 0o644)
	if err == nil {
		t.Fatal("want error for missing directory")
	}
}

func TestAcquireLockExcludesSecondHolder(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt.lock")
	l1, err := AcquireLock(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := AcquireLock(path); !errors.Is(err, ErrLocked) {
		t.Fatalf("second acquire: want ErrLocked, got %v", err)
	}
	if err := l1.Release(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("release should remove the lockfile, stat err = %v", err)
	}
	l2, err := AcquireLock(path)
	if err != nil {
		t.Fatalf("reacquire after release: %v", err)
	}
	defer l2.Release()
	// Error message names the holder pid for diagnostics.
	_, err = AcquireLock(path)
	if err == nil || !strings.Contains(err.Error(), "pid") {
		t.Fatalf("want holder pid in error, got %v", err)
	}
}

func TestReleaseNilLockIsNoop(t *testing.T) {
	var l *Lock
	if err := l.Release(); err != nil {
		t.Fatal(err)
	}
	l2 := &Lock{}
	if err := l2.Release(); err != nil {
		t.Fatal(err)
	}
}

func TestFailpointWriterCutsAtExactOffset(t *testing.T) {
	payload := []byte("abcdefghij")
	for off := int64(0); off <= int64(len(payload)); off++ {
		var buf bytes.Buffer
		fp := &FailpointWriter{W: &buf, Remaining: off}
		n, err := fp.Write(payload)
		if off == int64(len(payload)) {
			if err != nil || n != len(payload) {
				t.Fatalf("offset %d: write = %d, %v; want full clean write", off, n, err)
			}
			continue
		}
		if !errors.Is(err, ErrFailpoint) {
			t.Fatalf("offset %d: err = %v, want ErrFailpoint", off, err)
		}
		if int64(n) != off || int64(buf.Len()) != off {
			t.Fatalf("offset %d: wrote %d bytes (buffer %d), want exactly %d", off, n, buf.Len(), off)
		}
		// Once tripped, nothing further gets through.
		if n2, err2 := fp.Write([]byte("x")); n2 != 0 || !errors.Is(err2, ErrFailpoint) {
			t.Fatalf("offset %d: post-trip write = %d, %v", off, n2, err2)
		}
	}
}

func TestFailpointWriterSpansMultipleWrites(t *testing.T) {
	var buf bytes.Buffer
	fp := &FailpointWriter{W: &buf, Remaining: 5}
	if _, err := fp.Write([]byte("abc")); err != nil {
		t.Fatal(err)
	}
	n, err := fp.Write([]byte("defg"))
	if !errors.Is(err, ErrFailpoint) || n != 2 {
		t.Fatalf("second write = %d, %v; want 2, ErrFailpoint", n, err)
	}
	if got := buf.String(); got != "abcde" {
		t.Fatalf("buffer = %q, want abcde", got)
	}
	if !fp.Tripped() {
		t.Fatal("Tripped() should report true")
	}
}

func TestFailpointWriterOnTripHook(t *testing.T) {
	sentinel := errors.New("custom crash")
	fp := &FailpointWriter{W: &bytes.Buffer{}, Remaining: 0, OnTrip: func() error { return sentinel }}
	if _, err := fp.Write([]byte("x")); !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want sentinel", err)
	}
}

func TestFailpointWriterSyncPassthrough(t *testing.T) {
	f, err := os.CreateTemp(t.TempDir(), "fp")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	fp := &FailpointWriter{W: f, Remaining: 100}
	if _, err := fp.Write([]byte("data")); err != nil {
		t.Fatal(err)
	}
	if err := fp.Sync(); err != nil {
		t.Fatalf("Sync through to *os.File: %v", err)
	}
	// Non-syncable writer: Sync is a no-op.
	fp2 := &FailpointWriter{W: &bytes.Buffer{}, Remaining: 1}
	if err := fp2.Sync(); err != nil {
		t.Fatal(err)
	}
}
