//go:build unix

package durable

import (
	"bufio"
	"errors"
	"os"
	"os/exec"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestAcquireLockContention races many goroutines over one lockfile.
// flock is per open file description, so every AcquireLock call —
// even within one process — contends for the same exclusive lock.
// The invariant: at most one holder at any instant, and the lock is
// always reacquirable after a release (no lost-wakeup, no leaked fd).
func TestAcquireLockContention(t *testing.T) {
	path := filepath.Join(t.TempDir(), "contended.lock")
	const (
		goroutines = 16
		wantTotal  = 64 // acquisitions across all goroutines before stopping
	)
	var (
		holders  atomic.Int32 // current holders; must never exceed 1
		acquired atomic.Int32 // successful acquisitions so far
		maxSeen  atomic.Int32
		wg       sync.WaitGroup
	)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for acquired.Load() < wantTotal {
				l, err := AcquireLock(path)
				if errors.Is(err, ErrLocked) {
					continue // lost the race; try again
				}
				if err != nil {
					t.Errorf("AcquireLock: %v", err)
					return
				}
				n := holders.Add(1)
				for {
					m := maxSeen.Load()
					if n <= m || maxSeen.CompareAndSwap(m, n) {
						break
					}
				}
				acquired.Add(1)
				holders.Add(-1)
				if err := l.Release(); err != nil {
					t.Errorf("Release: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if got := maxSeen.Load(); got != 1 {
		t.Fatalf("observed %d concurrent holders, want exactly 1", got)
	}
	if got := acquired.Load(); got < wantTotal {
		t.Fatalf("only %d acquisitions completed, want >= %d", got, wantTotal)
	}
}

// TestAcquireLockCrossProcess exercises the two-process story the
// daemon relies on: a child process holds the store lock, the parent
// is refused with ErrLocked, and when the child dies — killed, not a
// clean Release — the kernel drops the flock and the parent acquires
// immediately with no manual stale-lock cleanup.
func TestAcquireLockCrossProcess(t *testing.T) {
	if os.Getenv("DURABLE_LOCK_HELPER") != "" {
		t.Skip("helper invocation")
	}
	path := filepath.Join(t.TempDir(), "cross.lock")

	cmd := exec.Command(os.Args[0], "-test.run", "TestHelperProcessHoldLock", "-test.v")
	cmd.Env = append(os.Environ(), "DURABLE_LOCK_HELPER="+path)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	// Wait for the child to report it holds the lock.
	held := make(chan struct{})
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			if sc.Text() == "LOCK-HELD" {
				close(held)
				return
			}
		}
	}()
	select {
	case <-held:
	case <-time.After(30 * time.Second):
		t.Fatal("helper never acquired the lock")
	}

	if _, err := AcquireLock(path); !errors.Is(err, ErrLocked) {
		t.Fatalf("parent acquire while child holds: want ErrLocked, got %v", err)
	}

	// SIGKILL the holder: no Release runs, yet the lock must free.
	if err := cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	cmd.Wait()

	deadline := time.Now().Add(10 * time.Second)
	for {
		l, err := AcquireLock(path)
		if err == nil {
			l.Release()
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("lock never freed after holder was killed: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestHelperProcessHoldLock is the child side of the cross-process
// test: acquire the lock named by the env var, announce it, and hold
// until killed.
func TestHelperProcessHoldLock(t *testing.T) {
	path := os.Getenv("DURABLE_LOCK_HELPER")
	if path == "" {
		t.Skip("not a helper invocation")
	}
	l, err := AcquireLock(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Release()
	os.Stdout.WriteString("LOCK-HELD\n")
	time.Sleep(time.Minute) // parent kills us long before this
}
