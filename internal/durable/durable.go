// Package durable is the crash-safety toolkit of the fleet engine:
// atomic file publication (temp + fsync + rename + directory fsync),
// advisory lockfiles so two processes cannot interleave writes to one
// checkpoint, and a failpoint writer that cuts a write at an exact
// byte offset — the seam the kill-anywhere crash-injection harness
// drives to prove that a campaign killed at any instant resumes to a
// bit-identical summary.
package durable

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"syscall"
)

// AtomicWriteFile publishes data at path atomically: it writes a
// temporary file in the same directory, fsyncs it, renames it over
// path, and fsyncs the directory so the rename itself survives a
// crash. Readers never observe a partially-written or torn file — they
// see either the old content or the new content, nothing in between.
func AtomicWriteFile(path string, data []byte, perm os.FileMode) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp-")
	if err != nil {
		return fmt.Errorf("durable: atomic write %s: %w", path, err)
	}
	tmpName := tmp.Name()
	// On any failure before the rename, the temp file is removed so
	// aborted publications leave no debris next to the target.
	fail := func(err error) error {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("durable: atomic write %s: %w", path, err)
	}
	if _, err := tmp.Write(data); err != nil {
		return fail(err)
	}
	if err := tmp.Chmod(perm); err != nil {
		return fail(err)
	}
	if err := tmp.Sync(); err != nil {
		return fail(err)
	}
	if err := tmp.Close(); err != nil {
		return fail(err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("durable: atomic write %s: %w", path, err)
	}
	return SyncDir(dir)
}

// SyncDir fsyncs a directory so a just-created or just-renamed entry
// is durable. Filesystems that do not support fsync on directories
// (reported as EINVAL or ENOTSUP) are tolerated: on those the rename
// is already as durable as it can be made.
func SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("durable: sync dir %s: %w", dir, err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		if errors.Is(err, syscall.EINVAL) || errors.Is(err, syscall.ENOTSUP) {
			return nil
		}
		return fmt.Errorf("durable: sync dir %s: %w", dir, err)
	}
	return nil
}
