//go:build unix

package durable

import (
	"fmt"
	"os"
	"syscall"
)

// AcquireLock takes an advisory exclusive flock on path, creating the
// file if needed, and records the holder's PID in it for diagnostics.
// It does not block: when another live process holds the lock it
// returns an error wrapping ErrLocked. A lockfile left behind by a
// SIGKILLed process is not stale — the kernel drops the flock with the
// process — so crash recovery needs no manual cleanup.
func AcquireLock(path string) (*Lock, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("durable: lock %s: %w", path, err)
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		f.Close()
		if err == syscall.EWOULDBLOCK {
			holder, _ := os.ReadFile(path)
			if len(holder) > 0 {
				return nil, fmt.Errorf("%w: %s (held by pid %s)", ErrLocked, path, string(holder))
			}
			return nil, fmt.Errorf("%w: %s", ErrLocked, path)
		}
		return nil, fmt.Errorf("durable: lock %s: %w", path, err)
	}
	// Best-effort holder diagnostics; the flock is the actual lock.
	f.Truncate(0)
	fmt.Fprintf(f, "%d", os.Getpid())
	f.Sync()
	return &Lock{f: f, path: path}, nil
}

// ProbeLock reports whether a live process holds the flock on path,
// without disturbing the file's contents: it opens read-only and
// takes (then immediately drops) a non-blocking shared flock. A
// missing file probes as unheld. This is how a shard coordinator
// tells a dead worker (flock dropped by the kernel) from a live one —
// no PID bookkeeping, no stale-lockfile heuristics.
func ProbeLock(path string) (held bool, err error) {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return false, nil
		}
		return false, fmt.Errorf("durable: probe %s: %w", path, err)
	}
	defer f.Close()
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_SH|syscall.LOCK_NB); err != nil {
		if err == syscall.EWOULDBLOCK {
			return true, nil
		}
		return false, fmt.Errorf("durable: probe %s: %w", path, err)
	}
	syscall.Flock(int(f.Fd()), syscall.LOCK_UN)
	return false, nil
}

// Release removes the lockfile and drops the flock. Safe to call on a
// nil Lock (no-op) so callers can Release unconditionally.
func (l *Lock) Release() error {
	if l == nil || l.f == nil {
		return nil
	}
	// Remove while still holding the flock so a racing AcquireLock
	// either sees the old inode (and its lock) or no file at all.
	os.Remove(l.path)
	err := syscall.Flock(int(l.f.Fd()), syscall.LOCK_UN)
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	l.f = nil
	return err
}
