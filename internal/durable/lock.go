package durable

import (
	"errors"
	"os"
)

// ErrLocked is returned by AcquireLock when another live process
// holds the lockfile.
var ErrLocked = errors.New("durable: lockfile held by another process")

// Lock is a held advisory lockfile; Release it when done.
type Lock struct {
	f    *os.File
	path string
}

// Path returns the lockfile path.
func (l *Lock) Path() string { return l.path }
