package durable

import (
	"errors"
	"os"
)

// ErrLocked is returned by AcquireLock when another live process
// holds the lockfile.
var ErrLocked = errors.New("durable: lockfile held by another process")

// Lock is a held advisory lockfile; Release it when done.
type Lock struct {
	f    *os.File
	path string
}

// Path returns the lockfile path.
func (l *Lock) Path() string { return l.path }

// File exposes the held lockfile for callers that keep live state in
// it — the shard lease writes its CRC-trailed heartbeat line through
// this handle, so the liveness proof (the kernel-held flock) and the
// progress report share one inode. Nil once released.
func (l *Lock) File() *os.File {
	if l == nil {
		return nil
	}
	return l.f
}
