package durable

import (
	"errors"
	"io"
)

// ErrFailpoint is the injected failure a tripped FailpointWriter
// reports when its OnTrip hook does not terminate the process.
var ErrFailpoint = errors.New("durable: failpoint tripped")

// FailpointWriter is the crash-injection seam of the checkpoint
// pipeline: it passes writes through to W until Remaining bytes have
// gone by, then cuts the stream at exactly that offset — the tail of
// the triggering write is dropped — and fires OnTrip. With the
// default OnTrip (nil) the write returns ErrFailpoint, simulating a
// full disk or I/O error; a test harness can instead SIGKILL its own
// process from OnTrip to simulate a crash at an exact byte offset.
// Every subsequent write fails too, so a tripped writer never lets a
// later record sneak past the injected crash point.
//
// Sync is forwarded to W when supported, so fsync-per-record behavior
// is preserved up to the cut: everything before the failpoint is as
// durable as it would have been in a real run.
type FailpointWriter struct {
	W         io.Writer
	Remaining int64
	OnTrip    func() error

	tripped bool
}

func (fp *FailpointWriter) Write(p []byte) (int, error) {
	if fp.tripped {
		return 0, fp.trip()
	}
	if int64(len(p)) <= fp.Remaining {
		fp.Remaining -= int64(len(p))
		return fp.W.Write(p)
	}
	n := int(fp.Remaining)
	fp.Remaining = 0
	fp.tripped = true
	if n > 0 {
		if wrote, err := fp.W.Write(p[:n]); err != nil {
			return wrote, err
		}
	}
	return n, fp.trip()
}

// Sync forwards to W when it supports fsync (like *os.File).
func (fp *FailpointWriter) Sync() error {
	if s, ok := fp.W.(interface{ Sync() error }); ok {
		return s.Sync()
	}
	return nil
}

// Tripped reports whether the failpoint has fired.
func (fp *FailpointWriter) Tripped() bool { return fp.tripped }

func (fp *FailpointWriter) trip() error {
	if fp.OnTrip != nil {
		if err := fp.OnTrip(); err != nil {
			return err
		}
	}
	return ErrFailpoint
}
