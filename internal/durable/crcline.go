package durable

import (
	"bytes"
	"hash/crc32"
	"strconv"
)

// CRC-trailed line codec: "payload\tXXXXXXXX\n" with the trailer a
// CRC32C (Castagnoli) over the payload in eight hex digits. Raw tabs
// are illegal inside JSON, so the separator is unambiguous for JSON
// payloads. The campaign checkpoint v2 format and the artifact
// store's index log share this codec, so both turn silent bit-rot
// into explicit quarantine.

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// CRC32C returns the Castagnoli CRC of data — the checksum every
// CRC-trailed line, and the store's artifact envelopes, carry.
func CRC32C(data []byte) uint32 { return crc32.Checksum(data, crcTable) }

// AppendCRCLine appends payload, a tab, the payload's CRC32C as eight
// hex digits, and a newline to dst.
func AppendCRCLine(dst, payload []byte) []byte {
	dst = append(dst, payload...)
	dst = append(dst, '\t')
	dst = appendHex32(dst, CRC32C(payload))
	return append(dst, '\n')
}

// appendHex32 appends v as exactly eight lower-case hex digits.
func appendHex32(dst []byte, v uint32) []byte {
	var buf [8]byte
	for i := 7; i >= 0; i-- {
		buf[i] = "0123456789abcdef"[v&0xf]
		v >>= 4
	}
	return append(dst, buf[:]...)
}

// SplitCRCLine splits a "payload\tXXXXXXXX" line (newline already
// stripped). ok reports that a well-formed trailer is present and its
// CRC matches the payload.
func SplitCRCLine(line []byte) (payload []byte, ok bool) {
	i := bytes.LastIndexByte(line, '\t')
	if i < 0 || len(line)-i-1 != 8 {
		return nil, false
	}
	want, err := strconv.ParseUint(string(line[i+1:]), 16, 32)
	if err != nil {
		return nil, false
	}
	payload = line[:i]
	if CRC32C(payload) != uint32(want) {
		return nil, false
	}
	return payload, true
}
