package durable

import (
	"bytes"
	"testing"
)

func TestCRCLineRoundTrip(t *testing.T) {
	payloads := [][]byte{
		[]byte(`{"key":"mfr=A","v":1}`),
		[]byte(""),
		[]byte("#rhckpt{\"v\":2}"),
		bytes.Repeat([]byte{0xff, 0x00}, 512),
	}
	for _, p := range payloads {
		line := AppendCRCLine(nil, p)
		if line[len(line)-1] != '\n' {
			t.Fatalf("line missing newline: %q", line)
		}
		got, ok := SplitCRCLine(line[:len(line)-1])
		if !ok || !bytes.Equal(got, p) {
			t.Fatalf("round trip of %q failed: got %q ok=%v", p, got, ok)
		}
	}
}

func TestSplitCRCLineRejectsDamage(t *testing.T) {
	line := AppendCRCLine(nil, []byte(`{"a":1}`))
	line = line[:len(line)-1] // strip newline as callers do
	cases := map[string][]byte{
		"no trailer":      []byte(`{"a":1}`),
		"short trailer":   append([]byte(nil), line[:len(line)-1]...),
		"flipped payload": flipByte(line, 1),
		"flipped crc":     flipHexDigit(line, len(line)-1),
		"empty line":      nil,
	}
	for name, in := range cases {
		if _, ok := SplitCRCLine(in); ok {
			t.Errorf("%s: SplitCRCLine accepted %q", name, in)
		}
	}
}

func flipByte(line []byte, i int) []byte {
	out := append([]byte(nil), line...)
	out[i] ^= 0x01
	return out
}

// flipHexDigit swaps one trailer digit for a different valid hex
// digit, so the trailer stays well-formed but mismatched.
func flipHexDigit(line []byte, i int) []byte {
	out := append([]byte(nil), line...)
	if out[i] == '0' {
		out[i] = '1'
	} else {
		out[i] = '0'
	}
	return out
}

func TestCRC32CKnownValue(t *testing.T) {
	// RFC 3720 test vector: CRC32C of 32 zero bytes.
	if got := CRC32C(make([]byte, 32)); got != 0x8a9136aa {
		t.Fatalf("CRC32C(zeros) = %08x, want 8a9136aa", got)
	}
}
