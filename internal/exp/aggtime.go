package exp

import (
	"context"
	"fmt"
	"text/tabwriter"

	rh "rowhammer"
	"rowhammer/internal/dram"
	"rowhammer/internal/softmc"
	"rowhammer/internal/stats"
)

// The paper's aggressor-time grids (§6): on-time 34.5→154.5 ns in
// 30 ns steps, off-time 16.5→40.5 ns in 6 ns steps.
var (
	aggOnGridNs  = []float64{34.5, 64.5, 94.5, 124.5, 154.5}
	aggOffGridNs = []float64{16.5, 22.5, 28.5, 34.5, 40.5}
)

// Fig6Result verifies the command timing of the three §6 test types.
type Fig6Result struct {
	// Spacings[test] lists ACT→PRE and PRE→ACT distances measured
	// from the executor trace, for "baseline", "aggressor-on",
	// "aggressor-off".
	OnSpacing, OffSpacing map[string]dram.Picos
}

// Fig6 builds the three §6 command sequences and measures the
// ACT→PRE / PRE→ACT spacings from the executor trace.
func Fig6(cfg Config) (Fig6Result, error) {
	cfg = cfg.normalize()
	res := Fig6Result{
		OnSpacing:  make(map[string]dram.Picos),
		OffSpacing: make(map[string]dram.Picos),
	}
	b, err := rh.NewBench(rh.BenchConfig{Profile: rh.ProfileByName("A"), Seed: cfg.Seed, Geometry: cfg.Geometry})
	if err != nil {
		return res, err
	}
	tm := b.Timing()
	tests := []struct {
		name    string
		on, off dram.Picos
	}{
		{"baseline", tm.TRAS, tm.TRP},
		{"aggressor-on", dram.PicosFromNs(154.5), tm.TRP},
		{"aggressor-off", tm.TRAS, dram.PicosFromNs(40.5)},
	}
	for _, tc := range tests {
		bld := softmc.NewBuilder(tm.TCK)
		// Settle any pending tRP/tRC from the previous sequence.
		bld.Wait(tm.TRC)
		bld.Act(0, 9).Wait(tc.on).Pre(0).Wait(tc.off).
			Act(0, 11).Wait(tc.on).Pre(0).Wait(tc.off).
			Act(0, 9).Wait(tc.on).Pre(0)
		b.Exec.SetTrace(true)
		tr, err := b.Exec.Run(bld.Program())
		if err != nil {
			return res, err
		}
		b.Exec.SetTrace(false)
		// Trace: ACT PRE ACT PRE ACT PRE.
		res.OnSpacing[tc.name] = tr.Trace[1].At - tr.Trace[0].At
		res.OffSpacing[tc.name] = tr.Trace[2].At - tr.Trace[1].At
	}
	return res, nil
}

// RunFig6 prints the measured command spacings.
func RunFig6(ctx context.Context, cfg Config) error {
	cfg = cfg.WithContext(ctx)
	cfg = cfg.normalize()
	res, err := Fig6(cfg)
	if err != nil {
		return err
	}
	w := tabwriter.NewWriter(cfg.Out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "test\ttAggOn (ACT→PRE)\ttAggOff (PRE→ACT)")
	for _, name := range []string{"baseline", "aggressor-on", "aggressor-off"} {
		fmt.Fprintf(w, "%s\t%.1f ns\t%.1f ns\n", name,
			res.OnSpacing[name].Nanoseconds(), res.OffSpacing[name].Nanoseconds())
	}
	return w.Flush()
}

// aggSweepRows is the per-module victim budget of §6 sweeps.
const aggSweepRows = 12

// AggTimePoint summarizes one grid value for one manufacturer.
type AggTimePoint struct {
	ValueNs float64
	// BERs and HCs are per-(module,row) samples.
	BERs []float64
	HCs  []float64
	// Box/letter statistics for the figure rendering.
	BERBox stats.BoxPlot
	HCLV   stats.LetterValues
}

// AggTimeResult is a full §6 sweep for all manufacturers.
type AggTimeResult struct {
	Mfrs   []string
	Points [][]AggTimePoint // [mfr][gridIdx]
}

// aggSweep runs the §6 measurement over a timing grid; onSweep selects
// the aggressor-on grid (vs off).
//
// The sweep uses wide (≥8K-bit) rows: BER amplification factors up to
// ~10× need cell-count headroom on the weakest rows, which narrow
// test-geometry rows would saturate.
func aggSweep(cfg Config, gridNs []float64, onSweep bool) (AggTimeResult, error) {
	cfg = cfg.normalize()
	if cfg.Geometry.ColumnsPerRow < 128 {
		cfg.Geometry.ColumnsPerRow = 128
	}
	var res AggTimeResult
	perMfr, err := mapMfrs(cfg, func(mfr string) ([]AggTimePoint, error) {
		bs, err := benches(cfg, mfr)
		if err != nil {
			return nil, err
		}
		rows := sampleRows(cfg, aggSweepRows)
		points := make([]AggTimePoint, len(gridNs))
		for gi, v := range gridNs {
			points[gi].ValueNs = v
		}
		for _, b := range bs {
			t := rh.NewTester(b)
			pat, err := wcdp(t, cfg)
			if err != nil {
				return nil, err
			}
			for gi, v := range gridNs {
				onNs, offNs := 0.0, 0.0
				if onSweep {
					onNs = v
				} else {
					offNs = v
				}
				for _, row := range rows {
					hr, err := t.BER(rh.HammerConfig{
						Bank: 0, VictimPhys: row, Hammers: cfg.Scale.Hammers,
						AggOnNs: onNs, AggOffNs: offNs, Pattern: pat,
					}, cfg.Scale.Repetitions)
					if err != nil {
						return nil, err
					}
					points[gi].BERs = append(points[gi].BERs, float64(hr.Victim.Count()))
					hc, err := t.HCFirstMin(rh.HCFirstConfig{
						Bank: 0, VictimPhys: row, MaxHammers: cfg.Scale.MaxHammers,
						AggOnNs: onNs, AggOffNs: offNs, Pattern: pat,
					}, cfg.Scale.Repetitions)
					if err != nil {
						return nil, err
					}
					if hc.Found {
						points[gi].HCs = append(points[gi].HCs, float64(hc.HCfirst))
					}
				}
			}
		}
		for gi := range points {
			if len(points[gi].BERs) > 0 {
				points[gi].BERBox, _ = stats.NewBoxPlot(points[gi].BERs)
			}
			if len(points[gi].HCs) > 0 {
				points[gi].HCLV, _ = stats.NewLetterValues(points[gi].HCs, 2)
			}
		}
		return points, nil
	})
	if err != nil {
		return res, err
	}
	res.Mfrs = mfrNames
	res.Points = perMfr
	return res, nil
}

// AggOnSweep measures Figs. 7 and 8.
func AggOnSweep(cfg Config) (AggTimeResult, error) { return aggSweep(cfg, aggOnGridNs, true) }

// AggOffSweep measures Figs. 9 and 10.
func AggOffSweep(cfg Config) (AggTimeResult, error) { return aggSweep(cfg, aggOffGridNs, false) }

// MeanBERRatio returns mean BER at the last grid point over the first.
func (r AggTimeResult) MeanBERRatio(mfrIdx int) float64 {
	pts := r.Points[mfrIdx]
	base := stats.Mean(pts[0].BERs)
	if base == 0 {
		return 0
	}
	return stats.Mean(pts[len(pts)-1].BERs) / base
}

// MeanHCChange returns the fractional mean HCfirst change from the
// first to the last grid point.
func (r AggTimeResult) MeanHCChange(mfrIdx int) float64 {
	pts := r.Points[mfrIdx]
	base := stats.Mean(pts[0].HCs)
	if base == 0 {
		return 0
	}
	return stats.Mean(pts[len(pts)-1].HCs)/base - 1
}

// CVChange returns the fractional change of the BER coefficient of
// variation from the first to the last grid point (Obsv. 9/11).
func (r AggTimeResult) CVChange(mfrIdx int) float64 {
	pts := r.Points[mfrIdx]
	base := stats.CV(pts[0].BERs)
	if base == 0 {
		return 0
	}
	return stats.CV(pts[len(pts)-1].BERs)/base - 1
}

func printAggBER(cfg Config, res AggTimeResult, label string) error {
	for i, mfr := range res.Mfrs {
		fmt.Fprintf(cfg.Out, "Mfr. %s (mean BER ratio last/first: %.1fx)\n", mfr, res.MeanBERRatio(i))
		w := tabwriter.NewWriter(cfg.Out, 2, 4, 2, ' ', 0)
		fmt.Fprintf(w, "%s\tmin\tQ1\tmedian\tQ3\tmax\tmean\n", label)
		for _, p := range res.Points[i] {
			fmt.Fprintf(w, "%.1f\t%.0f\t%.0f\t%.0f\t%.0f\t%.0f\t%.1f\n",
				p.ValueNs, p.BERBox.Min, p.BERBox.Q1, p.BERBox.Median, p.BERBox.Q3, p.BERBox.Max, stats.Mean(p.BERs))
		}
		if err := w.Flush(); err != nil {
			return err
		}
		fmt.Fprintln(cfg.Out)
	}
	return nil
}

func printAggHC(cfg Config, res AggTimeResult, label string) error {
	for i, mfr := range res.Mfrs {
		fmt.Fprintf(cfg.Out, "Mfr. %s (mean HCfirst change: %+.1f%%)\n", mfr, 100*res.MeanHCChange(i))
		w := tabwriter.NewWriter(cfg.Out, 2, 4, 2, ' ', 0)
		fmt.Fprintf(w, "%s\tmedian HCfirst\tquartile box\tsamples\n", label)
		for _, p := range res.Points[i] {
			box := "-"
			if len(p.HCLV.Boxes) > 0 {
				box = fmt.Sprintf("[%.0f, %.0f]", p.HCLV.Boxes[0][0], p.HCLV.Boxes[0][1])
			}
			fmt.Fprintf(w, "%.1f\t%.0f\t%s\t%d\n", p.ValueNs, p.HCLV.Median, box, len(p.HCs))
		}
		if err := w.Flush(); err != nil {
			return err
		}
		fmt.Fprintln(cfg.Out)
	}
	return nil
}

// RunFig7 prints BER vs aggressor on-time.
func RunFig7(ctx context.Context, cfg Config) error {
	cfg = cfg.WithContext(ctx)
	cfg = cfg.normalize()
	res, err := AggOnSweep(cfg)
	if err != nil {
		return err
	}
	return printAggBER(cfg, res, "tAggOn(ns)")
}

// RunFig8 prints HCfirst vs aggressor on-time.
func RunFig8(ctx context.Context, cfg Config) error {
	cfg = cfg.WithContext(ctx)
	cfg = cfg.normalize()
	res, err := AggOnSweep(cfg)
	if err != nil {
		return err
	}
	return printAggHC(cfg, res, "tAggOn(ns)")
}

// RunFig9 prints BER vs aggressor off-time.
func RunFig9(ctx context.Context, cfg Config) error {
	cfg = cfg.WithContext(ctx)
	cfg = cfg.normalize()
	res, err := AggOffSweep(cfg)
	if err != nil {
		return err
	}
	return printAggBER(cfg, res, "tAggOff(ns)")
}

// RunFig10 prints HCfirst vs aggressor off-time.
func RunFig10(ctx context.Context, cfg Config) error {
	cfg = cfg.WithContext(ctx)
	cfg = cfg.normalize()
	res, err := AggOffSweep(cfg)
	if err != nil {
		return err
	}
	return printAggHC(cfg, res, "tAggOff(ns)")
}
