package exp

import (
	"context"
	"fmt"
	"io"
	"text/tabwriter"

	rh "rowhammer"
	"rowhammer/internal/artifact"
	"rowhammer/internal/dram"
	"rowhammer/internal/softmc"
	"rowhammer/internal/stats"
)

// The paper's aggressor-time grids (§6): on-time 34.5→154.5 ns in
// 30 ns steps, off-time 16.5→40.5 ns in 6 ns steps.
var (
	aggOnGridNs  = []float64{34.5, 64.5, 94.5, 124.5, 154.5}
	aggOffGridNs = []float64{16.5, 22.5, 28.5, 34.5, 40.5}
)

// Fig6Result verifies the command timing of the three §6 test types.
type Fig6Result struct {
	// Spacings[test] lists ACT→PRE and PRE→ACT distances measured
	// from the executor trace, for "baseline", "aggressor-on",
	// "aggressor-off".
	OnSpacing, OffSpacing map[string]dram.Picos
}

// fig6Tests names the three §6 test types in print order.
var fig6Tests = []string{"baseline", "aggressor-on", "aggressor-off"}

// Fig6 builds the three §6 command sequences and measures the
// ACT→PRE / PRE→ACT spacings from the executor trace.
func Fig6(cfg Config) (Fig6Result, error) {
	cfg = cfg.normalize()
	res := Fig6Result{
		OnSpacing:  make(map[string]dram.Picos),
		OffSpacing: make(map[string]dram.Picos),
	}
	b, err := rh.NewBench(rh.BenchConfig{Profile: rh.ProfileByName("A"), Seed: cfg.Seed, Geometry: cfg.Geometry})
	if err != nil {
		return res, err
	}
	tm := b.Timing()
	tests := []struct {
		name    string
		on, off dram.Picos
	}{
		{"baseline", tm.TRAS, tm.TRP},
		{"aggressor-on", dram.PicosFromNs(154.5), tm.TRP},
		{"aggressor-off", tm.TRAS, dram.PicosFromNs(40.5)},
	}
	for _, tc := range tests {
		bld := softmc.NewBuilder(tm.TCK)
		// Settle any pending tRP/tRC from the previous sequence.
		bld.Wait(tm.TRC)
		bld.Act(0, 9).Wait(tc.on).Pre(0).Wait(tc.off).
			Act(0, 11).Wait(tc.on).Pre(0).Wait(tc.off).
			Act(0, 9).Wait(tc.on).Pre(0)
		b.Exec.SetTrace(true)
		tr, err := b.Exec.Run(bld.Program())
		if err != nil {
			return res, err
		}
		b.Exec.SetTrace(false)
		// Trace: ACT PRE ACT PRE ACT PRE.
		res.OnSpacing[tc.name] = tr.Trace[1].At - tr.Trace[0].At
		res.OffSpacing[tc.name] = tr.Trace[2].At - tr.Trace[1].At
	}
	return res, nil
}

// fig6Shard measures the command spacings (single shard: one trace).
func fig6Shard(ctx context.Context, cfg Config, shard string) (*artifact.Artifact, error) {
	cfg = cfg.WithContext(ctx).normalize()
	res, err := Fig6(cfg)
	if err != nil {
		return nil, err
	}
	a := artifact.New(shard)
	for _, name := range fig6Tests {
		a.AddRow("test="+name).Tag("test", name).
			Set("on_ns", res.OnSpacing[name].Nanoseconds()).
			Set("off_ns", res.OffSpacing[name].Nanoseconds())
	}
	return a, nil
}

// renderFig6 prints the measured command spacings from the artifact.
func renderFig6(out io.Writer, a *artifact.Artifact) error {
	w := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "test\ttAggOn (ACT→PRE)\ttAggOff (PRE→ACT)")
	for _, name := range fig6Tests {
		r := a.Row("test=" + name)
		if r == nil {
			return fmt.Errorf("exp: fig6 artifact missing test %s", name)
		}
		fmt.Fprintf(w, "%s\t%.1f ns\t%.1f ns\n", name, r.V("on_ns"), r.V("off_ns"))
	}
	return w.Flush()
}

// aggSweepRows is the per-module victim budget of §6 sweeps.
const aggSweepRows = 12

// AggTimePoint summarizes one grid value for one manufacturer.
type AggTimePoint struct {
	ValueNs float64
	// BERs and HCs are per-(module,row) samples.
	BERs []float64
	HCs  []float64
	// Box/letter statistics for the figure rendering.
	BERBox stats.BoxPlot
	HCLV   stats.LetterValues
}

// AggTimeResult is a full §6 sweep for all manufacturers.
type AggTimeResult struct {
	Mfrs   []string
	Points [][]AggTimePoint // [mfr][gridIdx]
}

// aggNormalize applies the §6 geometry floor: BER amplification
// factors up to ~10× need cell-count headroom (≥8K-bit rows) that
// narrow test-geometry rows would saturate.
func aggNormalize(cfg Config) Config {
	cfg = cfg.normalize()
	if cfg.Geometry.ColumnsPerRow < 128 {
		cfg.Geometry.ColumnsPerRow = 128
	}
	return cfg
}

// aggSweepMfr runs the §6 measurement of one manufacturer over a
// timing grid; onSweep selects the aggressor-on grid (vs off).
func aggSweepMfr(cfg Config, mfr string, gridNs []float64, onSweep bool) ([]AggTimePoint, error) {
	bs, err := benches(cfg, mfr)
	if err != nil {
		return nil, err
	}
	rows := sampleRows(cfg, aggSweepRows)
	points := make([]AggTimePoint, len(gridNs))
	for gi, v := range gridNs {
		points[gi].ValueNs = v
	}
	for _, b := range bs {
		t := rh.NewTester(b)
		pat, err := wcdp(t, cfg)
		if err != nil {
			return nil, err
		}
		for gi, v := range gridNs {
			onNs, offNs := 0.0, 0.0
			if onSweep {
				onNs = v
			} else {
				offNs = v
			}
			for _, row := range rows {
				hr, err := t.BER(rh.HammerConfig{
					Bank: 0, VictimPhys: row, Hammers: cfg.Scale.Hammers,
					AggOnNs: onNs, AggOffNs: offNs, Pattern: pat,
				}, cfg.Scale.Repetitions)
				if err != nil {
					return nil, err
				}
				points[gi].BERs = append(points[gi].BERs, float64(hr.Victim.Count()))
				hc, err := t.HCFirstMin(rh.HCFirstConfig{
					Bank: 0, VictimPhys: row, MaxHammers: cfg.Scale.MaxHammers,
					AggOnNs: onNs, AggOffNs: offNs, Pattern: pat,
				}, cfg.Scale.Repetitions)
				if err != nil {
					return nil, err
				}
				if hc.Found {
					points[gi].HCs = append(points[gi].HCs, float64(hc.HCfirst))
				}
			}
		}
	}
	for gi := range points {
		if len(points[gi].BERs) > 0 {
			points[gi].BERBox, _ = stats.NewBoxPlot(points[gi].BERs)
		}
		if len(points[gi].HCs) > 0 {
			points[gi].HCLV, _ = stats.NewLetterValues(points[gi].HCs, 2)
		}
	}
	return points, nil
}

// aggSweep runs the §6 measurement over a timing grid for all
// manufacturers.
func aggSweep(cfg Config, gridNs []float64, onSweep bool) (AggTimeResult, error) {
	cfg = aggNormalize(cfg)
	var res AggTimeResult
	perMfr, err := mapMfrs(cfg, func(mfr string) ([]AggTimePoint, error) {
		return aggSweepMfr(cfg, mfr, gridNs, onSweep)
	})
	if err != nil {
		return res, err
	}
	res.Mfrs = mfrNames
	res.Points = perMfr
	return res, nil
}

// AggOnSweep measures Figs. 7 and 8.
func AggOnSweep(cfg Config) (AggTimeResult, error) { return aggSweep(cfg, aggOnGridNs, true) }

// AggOffSweep measures Figs. 9 and 10.
func AggOffSweep(cfg Config) (AggTimeResult, error) { return aggSweep(cfg, aggOffGridNs, false) }

// MeanBERRatio returns mean BER at the last grid point over the first.
func (r AggTimeResult) MeanBERRatio(mfrIdx int) float64 {
	pts := r.Points[mfrIdx]
	base := stats.Mean(pts[0].BERs)
	if base == 0 {
		return 0
	}
	return stats.Mean(pts[len(pts)-1].BERs) / base
}

// MeanHCChange returns the fractional mean HCfirst change from the
// first to the last grid point.
func (r AggTimeResult) MeanHCChange(mfrIdx int) float64 {
	pts := r.Points[mfrIdx]
	base := stats.Mean(pts[0].HCs)
	if base == 0 {
		return 0
	}
	return stats.Mean(pts[len(pts)-1].HCs)/base - 1
}

// CVChange returns the fractional change of the BER coefficient of
// variation from the first to the last grid point (Obsv. 9/11).
func (r AggTimeResult) CVChange(mfrIdx int) float64 {
	pts := r.Points[mfrIdx]
	base := stats.CV(pts[0].BERs)
	if base == 0 {
		return 0
	}
	return stats.CV(pts[len(pts)-1].BERs)/base - 1
}

// aggShard returns the per-manufacturer Compute of one §6 sweep. The
// artifact stores the raw per-grid-point samples; renderers rebuild
// the box/letter statistics from them, so the fragment stays compact
// and the rendered text stays byte-identical.
func aggShard(gridNs []float64, onSweep bool) func(context.Context, Config, string) (*artifact.Artifact, error) {
	return func(ctx context.Context, cfg Config, mfr string) (*artifact.Artifact, error) {
		cfg = aggNormalize(cfg.WithContext(ctx))
		points, err := aggSweepMfr(cfg, mfr, gridNs, onSweep)
		if err != nil {
			return nil, err
		}
		a := artifact.New(mfr)
		for gi, p := range points {
			key := fmt.Sprintf("%s/g=%02d", mfrKey(mfr), gi)
			a.AddRow(key).Set("value_ns", p.ValueNs)
			a.AddSeries(key+"/bers", p.BERs)
			a.AddSeries(key+"/hcs", p.HCs)
		}
		return a, nil
	}
}

// aggPoints rebuilds one manufacturer's sweep points from the
// artifact, recomputing the derived statistics from the stored raw
// samples with the same stats code the typed compute uses.
func aggPoints(a *artifact.Artifact, mfr string) []AggTimePoint {
	var points []AggTimePoint
	for _, r := range a.RowsWithPrefix(mfrKey(mfr) + "/g=") {
		p := AggTimePoint{
			ValueNs: r.V("value_ns"),
			BERs:    a.SeriesPoints(r.Key + "/bers"),
			HCs:     a.SeriesPoints(r.Key + "/hcs"),
		}
		if len(p.BERs) > 0 {
			p.BERBox, _ = stats.NewBoxPlot(p.BERs)
		}
		if len(p.HCs) > 0 {
			p.HCLV, _ = stats.NewLetterValues(p.HCs, 2)
		}
		points = append(points, p)
	}
	return points
}

// aggResult rebuilds the full sweep result from the merged artifact.
func aggResult(a *artifact.Artifact) AggTimeResult {
	res := AggTimeResult{Mfrs: a.Shards}
	for _, mfr := range a.Shards {
		res.Points = append(res.Points, aggPoints(a, mfr))
	}
	return res
}

// renderAggBER returns the BER-sweep renderer (Figs. 7 and 9).
func renderAggBER(label string) func(io.Writer, *artifact.Artifact) error {
	return func(out io.Writer, a *artifact.Artifact) error {
		res := aggResult(a)
		for i, mfr := range res.Mfrs {
			fmt.Fprintf(out, "Mfr. %s (mean BER ratio last/first: %.1fx)\n", mfr, res.MeanBERRatio(i))
			w := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
			fmt.Fprintf(w, "%s\tmin\tQ1\tmedian\tQ3\tmax\tmean\n", label)
			for _, p := range res.Points[i] {
				fmt.Fprintf(w, "%.1f\t%.0f\t%.0f\t%.0f\t%.0f\t%.0f\t%.1f\n",
					p.ValueNs, p.BERBox.Min, p.BERBox.Q1, p.BERBox.Median, p.BERBox.Q3, p.BERBox.Max, stats.Mean(p.BERs))
			}
			if err := w.Flush(); err != nil {
				return err
			}
			fmt.Fprintln(out)
		}
		return nil
	}
}

// renderAggHC returns the HCfirst-sweep renderer (Figs. 8 and 10).
func renderAggHC(label string) func(io.Writer, *artifact.Artifact) error {
	return func(out io.Writer, a *artifact.Artifact) error {
		res := aggResult(a)
		for i, mfr := range res.Mfrs {
			fmt.Fprintf(out, "Mfr. %s (mean HCfirst change: %+.1f%%)\n", mfr, 100*res.MeanHCChange(i))
			w := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
			fmt.Fprintf(w, "%s\tmedian HCfirst\tquartile box\tsamples\n", label)
			for _, p := range res.Points[i] {
				box := "-"
				if len(p.HCLV.Boxes) > 0 {
					box = fmt.Sprintf("[%.0f, %.0f]", p.HCLV.Boxes[0][0], p.HCLV.Boxes[0][1])
				}
				fmt.Fprintf(w, "%.1f\t%.0f\t%s\t%d\n", p.ValueNs, p.HCLV.Median, box, len(p.HCs))
			}
			if err := w.Flush(); err != nil {
				return err
			}
			fmt.Fprintln(out)
		}
		return nil
	}
}
