package exp

import (
	"bytes"
	"context"
	"strings"
	"testing"

	rh "rowhammer"
)

// tinyConfig keeps experiment tests fast while preserving the trends.
func tinyConfig() Config {
	return Config{
		Scale: rh.Scale{
			RowsPerRegion: 10,
			Regions:       2,
			Hammers:       150_000,
			MaxHammers:    512_000,
			Repetitions:   1,
			ModulesPerMfr: 2,
		},
		Seed: 0x5eed,
		Geometry: rh.Geometry{
			Banks: 1, RowsPerBank: 512, SubarrayRows: 128,
			Chips: 8, ChipWidth: 8, ColumnsPerRow: 32,
		},
	}
}

func TestRegistryComplete(t *testing.T) {
	ids := map[string]bool{}
	for _, e := range All() {
		if e.ID == "" || e.Title == "" || e.Section == "" || e.Schema < 1 ||
			len(e.Shards) == 0 || e.Compute == nil || e.Render == nil {
			t.Fatalf("incomplete experiment %+v", e)
		}
		if ids[e.ID] {
			t.Fatalf("duplicate id %s", e.ID)
		}
		ids[e.ID] = true
	}
	// Every table and figure of the evaluation must be present.
	for _, id := range []string{
		"table2", "table3", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8",
		"fig9", "fig10", "fig11", "fig12", "fig13", "fig14", "fig15",
		"atk1", "atk2", "atk3", "def1", "def2", "def3", "def4", "def5", "def6",
	} {
		if !ids[id] {
			t.Fatalf("missing experiment %s", id)
		}
	}
	if ByID("fig11") == nil || ByID("nope") != nil {
		t.Fatal("ByID lookup broken")
	}
}

func TestTable2Inventory(t *testing.T) {
	res := Table2()
	if res.DDR4Chips != 248 || res.DDR3Chips != 24 {
		t.Fatalf("chip counts %d/%d, want 248/24", res.DDR4Chips, res.DDR3Chips)
	}
	if res.DDR4Modules != 22 || res.DDR3Modules != 3 {
		t.Fatalf("module counts %d/%d, want 22/3", res.DDR4Modules, res.DDR3Modules)
	}
	var buf bytes.Buffer
	cfg := tinyConfig()
	cfg.Out = &buf
	if err := ByID("table2").Run(context.Background(), cfg); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "248 DDR4 chips") {
		t.Fatalf("output missing totals:\n%s", buf.String())
	}
}

func TestTable3NoGapDominates(t *testing.T) {
	res, err := Table3(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Mfrs) != 4 {
		t.Fatalf("mfrs = %v", res.Mfrs)
	}
	for i, mfr := range res.Mfrs {
		if res.NoGapFrac[i] < 0.9 {
			t.Errorf("mfr %s: no-gap fraction %.3f, want > 0.9 (paper ≈0.98-0.99)", mfr, res.NoGapFrac[i])
		}
	}
}

func TestFig3ClusterShape(t *testing.T) {
	res, err := Fig3(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i, mfr := range res.Mfrs {
		m := res.Matrices[i]
		if m.Total == 0 {
			t.Fatalf("mfr %s: no vulnerable cells", mfr)
		}
		// Obsv. 2: the full-range cluster is the largest single
		// cluster for every manufacturer (paper: 9.6%–29.8%).
		full := m.FullRangeFraction()
		if full < 0.04 {
			t.Errorf("mfr %s: full-range fraction %.3f too small", mfr, full)
		}
	}
	// Obsv. 3: narrow-range cells exist but are a small minority.
	for i, mfr := range res.Mfrs {
		if n := res.Matrices[i].NarrowRangeFraction(); n > 0.5 {
			t.Errorf("mfr %s: single-temperature cells %.2f, want minority", mfr, n)
		}
	}
}

func TestFig4TemperatureTrends(t *testing.T) {
	res, err := Fig4(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i, mfr := range res.Mfrs {
		at90 := res.TrendAt(i, 90)
		switch mfr {
		case "B":
			if at90 >= 0 {
				t.Errorf("Mfr B BER change at 90 °C = %+.2f, want negative", at90)
			}
		default:
			if at90 <= 0 {
				t.Errorf("Mfr %s BER change at 90 °C = %+.2f, want positive", mfr, at90)
			}
		}
	}
	// Mfr D shows the strongest increase (paper ≈ +200%).
	if res.TrendAt(3, 90) <= res.TrendAt(2, 90) {
		t.Errorf("Mfr D trend %.2f should exceed Mfr C %.2f", res.TrendAt(3, 90), res.TrendAt(2, 90))
	}
}

func TestFig5HCFirstChange(t *testing.T) {
	res, err := Fig5(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i, mfr := range res.Mfrs {
		if len(res.Change90[i]) == 0 {
			t.Fatalf("mfr %s: no rows measured", mfr)
		}
		// Obsv. 5: both directions occur — crossings well inside
		// (0, 100).
		if res.Cross90[i] <= 5 || res.Cross90[i] >= 95 {
			t.Errorf("mfr %s: 50→90 crossing P%.0f, want interior", mfr, res.Cross90[i])
		}
		// Obsv. 7: larger temperature change ⇒ larger cumulative
		// magnitude (paper: ≈4×).
		if res.MagnitudeRatio[i] <= 1 {
			t.Errorf("mfr %s: magnitude ratio %.2f, want > 1", mfr, res.MagnitudeRatio[i])
		}
	}
}

func TestFig6CommandTimings(t *testing.T) {
	res, err := Fig6(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if got := res.OnSpacing["baseline"].Nanoseconds(); got != 34.5 {
		t.Fatalf("baseline tAggOn = %v", got)
	}
	if got := res.OnSpacing["aggressor-on"].Nanoseconds(); got != 154.5 {
		t.Fatalf("aggressor-on tAggOn = %v", got)
	}
	if got := res.OffSpacing["aggressor-off"].Nanoseconds(); got != 40.5 {
		t.Fatalf("aggressor-off tAggOff = %v", got)
	}
	if got := res.OffSpacing["baseline"].Nanoseconds(); got != 16.5 {
		t.Fatalf("baseline tAggOff = %v", got)
	}
}

func TestFig7And8AggressorOnTrends(t *testing.T) {
	res, err := AggOnSweep(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i, mfr := range res.Mfrs {
		if r := res.MeanBERRatio(i); r <= 1.5 {
			t.Errorf("mfr %s: BER ratio %.2f at 154.5 ns, want > 1.5 (paper 3.1–10.2x)", mfr, r)
		}
		if c := res.MeanHCChange(i); c >= -0.1 {
			t.Errorf("mfr %s: HCfirst change %+.2f, want < -0.1 (paper −28%%…−40%%)", mfr, c)
		}
	}
	// Mfr A has the strongest BER response (paper 10.2×) and B the
	// weakest (3.1×).
	if res.MeanBERRatio(0) <= res.MeanBERRatio(1) {
		t.Errorf("Mfr A BER ratio %.1f should exceed Mfr B %.1f", res.MeanBERRatio(0), res.MeanBERRatio(1))
	}
}

func TestFig9And10AggressorOffTrends(t *testing.T) {
	res, err := AggOffSweep(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i, mfr := range res.Mfrs {
		pts := res.Points[i]
		if len(pts[0].BERs) == 0 {
			t.Fatalf("mfr %s: no baseline samples", mfr)
		}
		if r := res.MeanBERRatio(i); r >= 0.7 {
			t.Errorf("mfr %s: BER ratio %.2f at 40.5 ns, want < 0.7 (paper ÷2.9–6.3)", mfr, r)
		}
		if c := res.MeanHCChange(i); c <= 0.1 {
			t.Errorf("mfr %s: HCfirst change %+.2f, want > +0.1 (paper +25%%…+50%%)", mfr, c)
		}
	}
}

func TestFig11RowVariation(t *testing.T) {
	res, err := Fig11(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i, mfr := range res.Mfrs {
		s := res.Summary[i]
		if s.Vulnerable < 5 {
			t.Fatalf("mfr %s: only %d vulnerable rows", mfr, s.Vulnerable)
		}
		if s.RatioP95 < 1.0 {
			t.Errorf("mfr %s: P95 ratio %.2f < 1", mfr, s.RatioP95)
		}
		// Ratios are ordered by construction: deeper percentiles sit
		// closer to the minimum.
		if !(s.RatioP99 <= s.RatioP95 && s.RatioP95 <= s.RatioP90) {
			t.Errorf("mfr %s: ratio ordering violated: %+v", mfr, s)
		}
	}
}

func TestFig12And13ColumnVariation(t *testing.T) {
	cfg := tinyConfig()
	res, err := Fig12(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Obsv. 13: Mfr B (low column sigma) has far fewer zero-flip
	// columns than A/C.
	byName := map[string]int{}
	for i, m := range res.Mfrs {
		byName[m] = i
	}
	if res.ZeroFrac[byName["B"]] >= res.ZeroFrac[byName["A"]] {
		t.Errorf("Mfr B zero-columns %.2f should be below Mfr A %.2f",
			res.ZeroFrac[byName["B"]], res.ZeroFrac[byName["A"]])
	}

	f13, err := Fig13(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Obsv. 14: B is design-dominated (low cross-chip variation), A is
	// process-dominated (high cross-chip variation). At test scale the
	// mean CV is the robust version of the paper's CV=0/CV=1 bucket
	// masses.
	if f13.MeanCV[byName["B"]] >= f13.MeanCV[byName["A"]] {
		t.Errorf("Mfr B mean cross-chip CV %.2f should be below Mfr A %.2f",
			f13.MeanCV[byName["B"]], f13.MeanCV[byName["A"]])
	}
	// A's heavy column factors concentrate flips in few columns.
	if f13.ColumnSkew[byName["B"]] >= f13.ColumnSkew[byName["A"]] {
		t.Errorf("Mfr B column skew %.2f should be below Mfr A %.2f",
			f13.ColumnSkew[byName["B"]], f13.ColumnSkew[byName["A"]])
	}
}

func TestFig14SubarrayRegression(t *testing.T) {
	res, err := Fig14(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i, mfr := range res.Mfrs {
		fit := res.Fits[i]
		if fit.Slope <= 0 || fit.Slope >= 1.2 {
			t.Errorf("mfr %s: slope %.2f outside plausible range (min cannot exceed avg)", mfr, fit.Slope)
		}
		if len(res.Subarrays[i]) < 4 {
			t.Errorf("mfr %s: only %d subarray points", mfr, len(res.Subarrays[i]))
		}
		// Obsv. 15: the minimum is well below the average in every
		// subarray.
		for _, s := range res.Subarrays[i] {
			if s.Min > s.Avg {
				t.Fatalf("mfr %s: subarray %d min %.0f above avg %.0f", mfr, s.Subarray, s.Min, s.Avg)
			}
		}
	}
}

func TestFig15SubarraySimilarity(t *testing.T) {
	res, err := Fig15(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i, mfr := range res.Mfrs {
		if len(res.SameModule[i]) == 0 || len(res.DiffModule[i]) == 0 {
			t.Fatalf("mfr %s: missing pair populations", mfr)
		}
		// Obsv. 16: same-module subarrays are at least as similar as
		// different-module subarrays. The separation scales with
		// module-to-module variation, so it is only individually
		// assertable for the high-variation manufacturers (B, C);
		// for A and D at this sample size the populations overlap.
		switch mfr {
		case "B", "C":
			if res.P5Same[i] <= res.P5Diff[i] {
				t.Errorf("mfr %s: P5 same %.3f not above P5 diff %.3f", mfr, res.P5Same[i], res.P5Diff[i])
			}
		default:
			if res.P5Same[i] < res.P5Diff[i]-0.2 {
				t.Errorf("mfr %s: P5 same %.3f far below P5 diff %.3f", mfr, res.P5Same[i], res.P5Diff[i])
			}
		}
	}
}

func TestAttack1InformedChoice(t *testing.T) {
	res, err := Attack1(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i, mfr := range res.Mfrs {
		if res.InformedHC[i] > res.MedianHC[i] {
			t.Errorf("mfr %s: informed HC %d above median %d", mfr, res.InformedHC[i], res.MedianHC[i])
		}
		if res.Reduction[i] < 0 {
			t.Errorf("mfr %s: negative reduction", mfr)
		}
	}
}

func TestAttack2TriggerCensus(t *testing.T) {
	res, err := Attack2(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.AboveCellFrac <= 0 {
		t.Fatal("no at-or-above sensor cells found")
	}
	if res.TriggerFound && !res.Valid {
		t.Fatalf("trigger found but misbehaved: below=%v above=%v", res.FiredBelow, res.FiredAbove)
	}
}

func TestAttack3ExtendedOnTime(t *testing.T) {
	res, err := Attack3(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Mfrs) == 0 {
		t.Fatal("no manufacturers measured")
	}
	for i, mfr := range res.Mfrs {
		if res.HCReduction[i] <= 0.05 {
			t.Errorf("mfr %s: HC reduction %.2f, want > 0.05 (paper ≈36%%)", mfr, res.HCReduction[i])
		}
		if res.BERRatio[i] > 0 && res.BERRatio[i] <= 1 {
			t.Errorf("mfr %s: BER ratio %.2f, want > 1 (paper 3.2–10.2x)", mfr, res.BERRatio[i])
		}
		if !res.BaselinePrevented[i] {
			t.Errorf("mfr %s: defense failed to stop the baseline attack", mfr)
		}
		if !res.ExtendedDefeats[i] {
			t.Errorf("mfr %s: extended attack did not defeat the threshold defense", mfr)
		}
	}
}

func TestDefense1RowAwareSavings(t *testing.T) {
	res, err := Defense1(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i, mfr := range res.Mfrs {
		if res.P5HC[i] <= res.WorstHC[i] {
			t.Errorf("mfr %s: P5 HC not above worst case", mfr)
		}
		// At test scale the measured P5/worst ratio understates the
		// paper's 2× (few rows ⇒ the empirical P5 hugs the min), so
		// only the direction is asserted here; EXPERIMENTS.md records
		// the full-scale values.
		if res.GrapheneReduction[i] <= 0 {
			t.Errorf("mfr %s: Graphene saving %.2f, want positive", mfr, res.GrapheneReduction[i])
		}
		if res.BHReduction[i] <= 0 {
			t.Errorf("mfr %s: BlockHammer saving %.2f, want positive", mfr, res.BHReduction[i])
		}
		// Graphene benefits more from threshold relaxation than
		// BlockHammer (steeper area law).
		if res.GrapheneReduction[i] <= res.BHReduction[i] {
			t.Errorf("mfr %s: Graphene saving %.2f should exceed BlockHammer %.2f",
				mfr, res.GrapheneReduction[i], res.BHReduction[i])
		}
		if res.PARARelaxed[i] >= res.PARABase[i] {
			t.Errorf("mfr %s: relaxed PARA slowdown not lower", mfr)
		}
	}
}

func TestDefense2SampledProfiling(t *testing.T) {
	res, err := Defense2(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Mfrs) == 0 {
		t.Fatal("no results")
	}
	for i, mfr := range res.Mfrs {
		if res.Speedup[i] < 2 {
			t.Errorf("mfr %s: speedup %.0f < 2", mfr, res.Speedup[i])
		}
		if res.RelError[i] < -0.6 || res.RelError[i] > 0.6 {
			t.Errorf("mfr %s: estimate off by %+.0f%%", mfr, 100*res.RelError[i])
		}
	}
}

func TestDefense3Retirement(t *testing.T) {
	res, err := Defense3(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.ProfiledRows == 0 {
		t.Fatal("no rows profiled")
	}
	if res.Coverage < 0.999 {
		t.Fatalf("retirement coverage %.3f, want 1.0 (policy built from the same profile)", res.Coverage)
	}
}

func TestDefense4Cooling(t *testing.T) {
	res, err := Defense4(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]int{}
	for i, m := range res.Mfrs {
		byName[m] = i
	}
	if res.BERReduction[byName["A"]] <= 0 {
		t.Errorf("Mfr A cooling reduction %.2f, want positive (paper ≈25%%)", res.BERReduction[byName["A"]])
	}
	if res.BERReduction[byName["B"]] >= 0 {
		t.Errorf("Mfr B cooling reduction %.2f, want negative (B worsens when cooled)", res.BERReduction[byName["B"]])
	}
}

func TestDefense5OpenTimeLimiter(t *testing.T) {
	res, err := Defense5(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.ExtendedHC >= res.BaselineHC {
		t.Fatalf("extended attack HC %d not below baseline %d", res.ExtendedHC, res.BaselineHC)
	}
	if res.LimitedHC != res.BaselineHC {
		t.Fatalf("limiter should restore baseline HCfirst: %d vs %d", res.LimitedHC, res.BaselineHC)
	}
	if res.ExtraActs == 0 {
		t.Fatal("limiter cost not accounted")
	}
	// Scheduler proxy: a bounded open time costs a benign streaming
	// workload some latency, far below a closed-page policy, while
	// enforcing the cap.
	if res.BenignSlowdown < 0 || res.BenignSlowdown > 0.5 {
		t.Fatalf("benign slowdown %.2f implausible", res.BenignSlowdown)
	}
	if res.MaxRowOpenNsCapped <= 0 {
		t.Fatal("cap bound not measured")
	}
}

func TestDefense6ColumnAwareECC(t *testing.T) {
	res, err := Defense6(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i, mfr := range res.Mfrs {
		if res.ExposureRatio[i] >= 1 {
			t.Errorf("mfr %s: column-aware ECC exposure ratio %.2f, want < 1", mfr, res.ExposureRatio[i])
		}
	}
}

func TestRunAllPrintersProduceOutput(t *testing.T) {
	// Smoke-run the cheap printers end to end.
	for _, id := range []string{"table2", "fig6"} {
		e := ByID(id)
		var buf bytes.Buffer
		cfg := tinyConfig()
		cfg.Out = &buf
		if err := e.Run(context.Background(), cfg); err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if buf.Len() == 0 {
			t.Fatalf("%s produced no output", id)
		}
	}
}

func TestCheapPrintersSmoke(t *testing.T) {
	// End-to-end smoke of printers not covered elsewhere; the heavy
	// sweep printers share their compute paths with the tested
	// compute functions.
	for _, id := range []string{"wcdp", "defcompare", "manysided", "interference", "def5"} {
		id := id
		t.Run(id, func(t *testing.T) {
			e := ByID(id)
			if e == nil {
				t.Fatalf("experiment %s missing", id)
			}
			var buf bytes.Buffer
			cfg := tinyConfig()
			cfg.Out = &buf
			if err := e.Run(context.Background(), cfg); err != nil {
				t.Fatal(err)
			}
			if buf.Len() == 0 {
				t.Fatal("no output")
			}
		})
	}
}
