package exp

import (
	"context"
	"fmt"
	"io"
	"text/tabwriter"

	rh "rowhammer"
	"rowhammer/internal/artifact"
	"rowhammer/internal/defense"
	"rowhammer/internal/dram"
	"rowhammer/internal/sched"
)

// DefCompareRow is one mechanism's scorecard.
type DefCompareRow struct {
	Name string
	// AttackFlips under a full-window double-sided attack (0 = safe).
	AttackFlips int
	// AttackRefreshes/Throttle are the mitigation activity during the
	// attack.
	AttackRefreshes int64
	ThrottleMs      float64
	// BenignRefreshRate is preventive refreshes per benign activation.
	BenignRefreshRate float64
	// AreaPct is the estimated die-area cost where a model exists
	// (negative = not modeled).
	AreaPct float64
}

// DefCompareResult is the full comparison on one module.
type DefCompareResult struct {
	Mfr       string
	Threshold int64
	Rows      []DefCompareRow
}

// DefCompare evaluates PARA, Graphene, TWiCe, BlockHammer and
// RFM+SilverBullet against the same attack and the same benign
// workload on one Mfr A module — the systems view behind §8.2's
// improvement discussion.
func DefCompare(cfg Config) (DefCompareResult, error) {
	cfg = cfg.normalize()
	res := DefCompareResult{Mfr: "A"}
	mkBench := func() (*rh.Bench, error) {
		return rh.NewBench(rh.BenchConfig{
			Profile:  rh.ProfileByName("A"),
			Seed:     moduleSeed(cfg, "A", 21),
			Geometry: cfg.Geometry,
		})
	}
	// Derive the protection threshold from a quick HCfirst probe.
	b0, err := mkBench()
	if err != nil {
		return res, err
	}
	t0 := rh.NewTester(b0)
	victim := sampleRows(cfg, 4)[1]
	hc, err := t0.HCFirst(rh.HCFirstConfig{Bank: 0, VictimPhys: victim, Pattern: rh.PatCheckered, Trial: 1, MaxHammers: cfg.Scale.MaxHammers})
	if err != nil {
		return res, err
	}
	if !hc.Found {
		return res, fmt.Errorf("exp: probe victim not vulnerable")
	}
	threshold := hc.HCfirst / 2
	res.Threshold = threshold
	rows := cfg.Geometry.RowsPerBank
	tm := b0.Timing()

	benign := sched.Generate(sched.WorkloadConfig{
		Requests: 30_000, Banks: cfg.Geometry.Banks, Rows: rows,
		Cols: cfg.Geometry.ColumnsPerRow, Locality: 0.7,
		InterArrival: dram.PicosFromNs(40), Seed: cfg.Seed,
	})

	mechs := []struct {
		name string
		mk   func() defense.Mechanism
		area float64
		// autoRefresh: throttling defenses need the refresh window
		// modeled to be meaningful.
		autoRefresh bool
	}{
		{"PARA", func() defense.Mechanism {
			return defense.NewPARA(defense.PARAProbability(threshold, 1e-12), rows, 31)
		}, 0, false},
		{"Graphene", func() defense.Mechanism {
			return defense.NewGraphene(threshold, defense.GrapheneTableSize(cfg.Scale.MaxHammers*2, threshold), rows)
		}, defense.GrapheneArea(threshold), false},
		{"TWiCe", func() defense.Mechanism {
			return defense.NewTWiCe(threshold, tm.TREFW, rows)
		}, -1, false},
		{"BlockHammer", func() defense.Mechanism {
			return defense.NewBlockHammer(threshold, defense.SafeDelay(2*threshold, tm.TREFW), 8192, 4, tm.TREFW/2, 31)
		}, defense.BlockHammerArea(threshold), true},
		{"RFM+SilverBullet", func() defense.Mechanism {
			return defense.NewRFMSilverBullet(threshold/2, 32, 8, rows)
		}, -1, false},
	}

	for _, mc := range mechs {
		b, err := mkBench()
		if err != nil {
			return res, err
		}
		mech := mc.mk()
		ev, err := defense.Evaluate(defense.EvalConfig{
			Bench: b, Mechanism: mech, Bank: 0, VictimPhys: victim,
			Hammers: cfg.Scale.MaxHammers, Pattern: rh.PatCheckered, Trial: 1,
			AutoRefresh: mc.autoRefresh,
		})
		if err != nil {
			return res, err
		}
		mech.Reset()
		bo := defense.BenignOverhead(mech, benign)
		res.Rows = append(res.Rows, DefCompareRow{
			Name:              mc.name,
			AttackFlips:       ev.VictimFlips,
			AttackRefreshes:   ev.PreventiveRefreshes,
			ThrottleMs:        float64(ev.ThrottleDelay) / 1e9,
			BenignRefreshRate: bo.RefreshRate,
			AreaPct:           mc.area * 100,
		})
	}
	return res, nil
}

// defCompareShard measures the mechanism scorecard (single shard:
// every mechanism faces the same module and workload).
func defCompareShard(ctx context.Context, cfg Config, shard string) (*artifact.Artifact, error) {
	cfg = cfg.WithContext(ctx).normalize()
	res, err := DefCompare(cfg)
	if err != nil {
		return nil, err
	}
	a := artifact.New(shard)
	a.AddRow("probe").Tag("mfr", res.Mfr).
		SetInt("threshold", res.Threshold).SetInt("max_hammers", cfg.Scale.MaxHammers)
	for i, r := range res.Rows {
		a.AddRow(fmt.Sprintf("mech=%02d", i)).Tag("name", r.Name).
			SetInt("attack_flips", int64(r.AttackFlips)).
			SetInt("attack_refreshes", r.AttackRefreshes).
			Set("throttle_ms", r.ThrottleMs).
			Set("benign_refresh_rate", r.BenignRefreshRate).
			Set("area_pct", r.AreaPct)
	}
	return a, nil
}

// renderDefCompare prints the comparison from the artifact.
func renderDefCompare(out io.Writer, a *artifact.Artifact) error {
	p := a.Row("probe")
	if p == nil {
		return fmt.Errorf("exp: defcompare artifact missing probe row")
	}
	fmt.Fprintf(out, "Mfr. %s module, protection threshold %d (half the probed HCfirst), %d-hammer attack\n",
		p.Label("mfr"), p.Int("threshold"), p.Int("max_hammers"))
	w := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "mechanism\tattack flips\tattack refreshes\tthrottle (ms)\tbenign refresh rate\tarea (% die)")
	for _, r := range a.RowsWithPrefix("mech=") {
		area := "n/a"
		if r.V("area_pct") >= 0 {
			area = fmt.Sprintf("%.2f", r.V("area_pct"))
		}
		fmt.Fprintf(w, "%s\t%d\t%d\t%.1f\t%.4f\t%s\n",
			r.Label("name"), r.Int("attack_flips"), r.Int("attack_refreshes"),
			r.V("throttle_ms"), r.V("benign_refresh_rate"), area)
	}
	return w.Flush()
}
