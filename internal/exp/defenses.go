package exp

import (
	"context"
	"fmt"
	"io"
	"text/tabwriter"

	rh "rowhammer"
	"rowhammer/internal/artifact"
	"rowhammer/internal/defense"
	"rowhammer/internal/sched"
)

// Defense1Result quantifies Improvement 1: row-aware thresholds.
type Defense1Result struct {
	Mfrs []string
	// WorstHC and P5HC are the measured worst-case and 5th-percentile
	// HCfirst values the configurations derive from.
	WorstHC, P5HC []float64
	// Area fractions and reductions per mechanism.
	GrapheneBase, GrapheneRowAware       []float64
	BlockHammerBase, BlockHammerRowAware []float64
	GrapheneReduction, BHReduction       []float64
	// PARA slowdown at worst-case vs relaxed probability.
	PARABase, PARARelaxed []float64
}

// defense1Out is one manufacturer's row-aware configuration study.
type defense1Out struct {
	worst, p5             float64
	gBase, gRow, gRed     float64
	bBase, bRow, bRed     float64
	paraBase, paraRelaxed float64
}

// defense1From derives the row-aware configuration from one
// manufacturer's row-variation summary.
func defense1From(cfg Config, s rh.RowVariationSummary) defense1Out {
	worst := s.MinHC
	p5 := s.MinHC * s.RatioP95
	rcfg := defense.RowAwareConfig{
		WeakRowFraction: 0.05,
		ThresholdWeak:   int64(worst),
		ThresholdStrong: int64(p5),
		RowsPerBank:     cfg.Geometry.RowsPerBank,
	}
	gb := defense.GrapheneArea(rcfg.ThresholdWeak)
	gr := defense.RowAwareGrapheneArea(rcfg)
	bb := defense.BlockHammerArea(rcfg.ThresholdWeak)
	br := defense.RowAwareBlockHammerArea(rcfg)
	return defense1Out{
		worst: worst, p5: p5,
		gBase: gb, gRow: gr, gRed: defense.AreaReduction(gb, gr),
		bBase: bb, bRow: br, bRed: defense.AreaReduction(bb, br),
		paraBase:    defense.PARASlowdown(defense.PARAProbability(int64(worst), 1e-15)),
		paraRelaxed: defense.PARASlowdown(defense.PARAProbability(int64(p5), 1e-15)),
	}
}

// Defense1 derives row-aware defense configurations from measured row
// variation.
func Defense1(cfg Config) (Defense1Result, error) {
	cfg = cfg.normalize()
	f11, err := Fig11(cfg)
	if err != nil {
		return Defense1Result{}, err
	}
	var res Defense1Result
	for i, mfr := range f11.Mfrs {
		o := defense1From(cfg, f11.Summary[i])
		res.Mfrs = append(res.Mfrs, mfr)
		res.WorstHC = append(res.WorstHC, o.worst)
		res.P5HC = append(res.P5HC, o.p5)
		res.GrapheneBase = append(res.GrapheneBase, o.gBase)
		res.GrapheneRowAware = append(res.GrapheneRowAware, o.gRow)
		res.BlockHammerBase = append(res.BlockHammerBase, o.bBase)
		res.BlockHammerRowAware = append(res.BlockHammerRowAware, o.bRow)
		res.GrapheneReduction = append(res.GrapheneReduction, o.gRed)
		res.BHReduction = append(res.BHReduction, o.bRed)
		res.PARABase = append(res.PARABase, o.paraBase)
		res.PARARelaxed = append(res.PARARelaxed, o.paraRelaxed)
	}
	return res, nil
}

// defense1Shard measures one manufacturer's row-aware configuration.
func defense1Shard(ctx context.Context, cfg Config, mfr string) (*artifact.Artifact, error) {
	cfg = cfg.WithContext(ctx).normalize()
	_, s, err := fig11Mfr(cfg, mfr)
	if err != nil {
		return nil, err
	}
	o := defense1From(cfg, s)
	a := artifact.New(mfr)
	a.AddRow(mfrKey(mfr)).
		Set("worst_hc", o.worst).Set("p5_hc", o.p5).
		Set("graphene_base", o.gBase).Set("graphene_row", o.gRow).Set("graphene_red", o.gRed).
		Set("bh_base", o.bBase).Set("bh_row", o.bRow).Set("bh_red", o.bRed).
		Set("para_base", o.paraBase).Set("para_relaxed", o.paraRelaxed)
	return a, nil
}

// renderDefense1 prints Improvement 1 from the artifact.
func renderDefense1(out io.Writer, a *artifact.Artifact) error {
	w := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "Mfr\tworst HCfirst\tP5 HCfirst\tGraphene area\t→ row-aware\tsaving\tBlockHammer area\t→ row-aware\tsaving\tPARA slowdown\t→ relaxed")
	for _, mfr := range a.Shards {
		r := a.Row(mfrKey(mfr))
		if r == nil {
			return fmt.Errorf("exp: def1 artifact missing shard %s", mfr)
		}
		fmt.Fprintf(w, "%s\t%.0f\t%.0f\t%.2f%%\t%.2f%%\t%s\t%.2f%%\t%.2f%%\t%s\t%s\t%s\n",
			mfr, r.V("worst_hc"), r.V("p5_hc"),
			100*r.V("graphene_base"), 100*r.V("graphene_row"), pct(r.V("graphene_red")),
			100*r.V("bh_base"), 100*r.V("bh_row"), pct(r.V("bh_red")),
			pct(r.V("para_base")), pct(r.V("para_relaxed")))
	}
	return w.Flush()
}

// Defense2Result quantifies Improvement 2: subarray-sampled profiling.
type Defense2Result struct {
	Mfrs []string
	// FullMin is the module's true minimum HCfirst from full
	// profiling; SampledEstimate the prediction from profiling a
	// subset of subarrays via the Fig. 14 linear model.
	FullMin, SampledEstimate []float64
	RelError                 []float64
	// Speedup is subarrays-total / subarrays-sampled.
	Speedup []float64
}

// defense2Out is one manufacturer's sampled-profiling prediction. ok
// is false when the manufacturer lacks the modules/subarrays for the
// transfer study at test scale.
type defense2Out struct {
	ok                        bool
	trueMin, estimate, relErr float64
	speedup                   float64
}

// defense2Mfr predicts one manufacturer's new-module worst case from
// one sampled subarray plus a through-origin model fitted on the
// other modules.
func defense2Mfr(cfg Config, mfr string) (defense2Out, error) {
	var out defense2Out
	perModule, err := profileSubarrays(cfg, mfr)
	if err != nil {
		return out, err
	}
	if len(perModule) < 2 || len(perModule[0]) < 2 {
		return out, nil
	}
	// Train on modules 1..n-1 with a through-origin (ratio)
	// estimator: the min/avg relation transfers across modules of
	// a manufacturer even when their absolute HCfirst levels
	// differ (Fig. 14's intercepts are small relative to the
	// HCfirst range).
	ratioSum, ratioN := 0.0, 0
	for _, subs := range perModule[1:] {
		for _, s := range subs {
			if s.Avg > 0 {
				ratioSum += s.Min / s.Avg
				ratioN++
			}
		}
	}
	if ratioN == 0 {
		return out, nil
	}
	ratio := ratioSum / float64(ratioN)
	// Predict module 0's worst case from one sampled subarray.
	target := perModule[0]
	sampled := target[0]
	estimate := ratio * sampled.Avg
	trueMin := target[0].Min
	for _, s := range target[1:] {
		if s.Min < trueMin {
			trueMin = s.Min
		}
	}
	out.ok = true
	out.trueMin = trueMin
	out.estimate = estimate
	if trueMin > 0 {
		out.relErr = (estimate - trueMin) / trueMin
	}
	out.speedup = float64(len(target))
	return out, nil
}

// Defense2 predicts a new module's worst-case HCfirst from one sampled
// subarray plus a min-vs-avg linear model fitted on *other* modules of
// the same manufacturer (Obsv. 15/16: the relation transfers across
// modules).
func Defense2(cfg Config) (Defense2Result, error) {
	cfg = cfg.normalize()
	var res Defense2Result
	for _, mfr := range mfrNames {
		o, err := defense2Mfr(cfg, mfr)
		if err != nil {
			return res, err
		}
		if !o.ok {
			continue
		}
		res.Mfrs = append(res.Mfrs, mfr)
		res.FullMin = append(res.FullMin, o.trueMin)
		res.SampledEstimate = append(res.SampledEstimate, o.estimate)
		res.RelError = append(res.RelError, o.relErr)
		res.Speedup = append(res.Speedup, o.speedup)
	}
	return res, nil
}

// defense2Shard measures one manufacturer's sampled-profiling study.
func defense2Shard(ctx context.Context, cfg Config, mfr string) (*artifact.Artifact, error) {
	cfg = cfg.WithContext(ctx).normalize()
	o, err := defense2Mfr(cfg, mfr)
	if err != nil {
		return nil, err
	}
	a := artifact.New(mfr)
	if o.ok {
		a.AddRow(mfrKey(mfr)).
			Set("true_min", o.trueMin).Set("estimate", o.estimate).
			Set("rel_error", o.relErr).Set("speedup", o.speedup)
	}
	return a, nil
}

// renderDefense2 prints Improvement 2 from the artifact.
func renderDefense2(out io.Writer, a *artifact.Artifact) error {
	w := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "Mfr\ttrue min HCfirst\tsampled estimate\trel. error\tprofiling speedup")
	for _, mfr := range a.Shards {
		r := a.Row(mfrKey(mfr))
		if r == nil {
			continue
		}
		fmt.Fprintf(w, "%s\t%.0f\t%.0f\t%+.1f%%\t%.0fx\n",
			mfr, r.V("true_min"), r.V("estimate"), 100*r.V("rel_error"), r.V("speedup"))
	}
	return w.Flush()
}

// Defense3Result quantifies Improvement 3: temperature-aware row
// retirement.
type Defense3Result struct {
	Mfr string
	// RetiredAt50/RetiredAt85 are the retired-row counts.
	RetiredAt50, RetiredAt85 int
	ProfiledRows             int
	// Coverage: fraction of rows that flipped at 85 °C that the
	// 85 °C retirement set contains.
	Coverage float64
}

// Defense3 builds a retirement policy from a temperature sweep and
// checks its coverage.
func Defense3(cfg Config) (Defense3Result, error) {
	cfg = cfg.normalize()
	res := Defense3Result{Mfr: "A"}
	bs, err := benches(cfg, "A")
	if err != nil {
		return res, err
	}
	t := rh.NewTester(bs[0])
	rows := sampleRows(cfg, tempSweepRows)
	sweep, err := t.TemperatureSweep(rh.TempSweepConfig{
		Bank: 0, Victims: rows, Hammers: cfg.Scale.Hammers,
		Pattern: rh.PatCheckered, Repetitions: 1,
	})
	if err != nil {
		return res, err
	}
	policy := defense.NewRetirementPolicy()
	flippedAt85 := map[int]bool{}
	for cell, mask := range sweep.Cells {
		lo, hi := maskLoHi(mask)
		policy.AddCellRange(cell.Row, sweep.Temps[lo], sweep.Temps[hi])
		for ti, temp := range sweep.Temps {
			if temp == 85 && mask&(1<<uint(ti)) != 0 {
				flippedAt85[cell.Row] = true
			}
		}
	}
	res.ProfiledRows = policy.ProfiledRows()
	r50 := policy.RetiredRows(50, 0)
	r85 := policy.RetiredRows(85, 0)
	res.RetiredAt50 = len(r50)
	res.RetiredAt85 = len(r85)
	retired := map[int]bool{}
	for _, r := range r85 {
		retired[r] = true
	}
	covered := 0
	for row := range flippedAt85 {
		if retired[row] {
			covered++
		}
	}
	if len(flippedAt85) > 0 {
		res.Coverage = float64(covered) / float64(len(flippedAt85))
	} else {
		res.Coverage = 1
	}
	return res, nil
}

// defense3Shard measures the retirement study (single shard: one
// Mfr A module).
func defense3Shard(ctx context.Context, cfg Config, shard string) (*artifact.Artifact, error) {
	cfg = cfg.WithContext(ctx).normalize()
	res, err := Defense3(cfg)
	if err != nil {
		return nil, err
	}
	a := artifact.New(shard)
	a.AddRow("retirement").Tag("mfr", res.Mfr).
		SetInt("profiled", int64(res.ProfiledRows)).
		SetInt("retired_50", int64(res.RetiredAt50)).
		SetInt("retired_85", int64(res.RetiredAt85)).
		Set("coverage", res.Coverage)
	return a, nil
}

// renderDefense3 prints Improvement 3 from the artifact.
func renderDefense3(out io.Writer, a *artifact.Artifact) error {
	r := a.Row("retirement")
	if r == nil {
		return fmt.Errorf("exp: def3 artifact missing retirement row")
	}
	fmt.Fprintf(out, "Mfr. %s: %d profiled rows; retire %d rows at 50°C, %d at 85°C; 85°C coverage %s\n",
		r.Label("mfr"), r.Int("profiled"), r.Int("retired_50"), r.Int("retired_85"), pct(r.V("coverage")))
	return nil
}

// Defense4Result quantifies Improvement 4: cooling.
type Defense4Result struct {
	Mfrs []string
	// BERReduction going from 90 °C to 50 °C (positive = cooling
	// helps; negative for Mfr B).
	BERReduction []float64
}

// defense4Reduction derives the cooling reduction from the Fig. 4
// trend at 90 °C: BER(90) = (1+at90)×BER(50).
func defense4Reduction(at90 float64) float64 {
	if 1+at90 > 0 {
		return at90 / (1 + at90)
	}
	return 0
}

// Defense4 compares BER at 90 °C and 50 °C.
func Defense4(cfg Config) (Defense4Result, error) {
	cfg = cfg.normalize()
	f4, err := Fig4(cfg)
	if err != nil {
		return Defense4Result{}, err
	}
	var res Defense4Result
	for i, mfr := range f4.Mfrs {
		res.Mfrs = append(res.Mfrs, mfr)
		res.BERReduction = append(res.BERReduction, defense4Reduction(f4.TrendAt(i, 90)))
	}
	return res, nil
}

// defense4Shard measures one manufacturer's cooling reduction.
func defense4Shard(ctx context.Context, cfg Config, mfr string) (*artifact.Artifact, error) {
	cfg = cfg.WithContext(ctx).normalize()
	points, err := fig4Mfr(cfg, mfr)
	if err != nil {
		return nil, err
	}
	a := artifact.New(mfr)
	a.AddRow(mfrKey(mfr)).Set("ber_reduction", defense4Reduction(trendAt(points, 90)))
	return a, nil
}

// renderDefense4 prints Improvement 4 from the artifact.
func renderDefense4(out io.Writer, a *artifact.Artifact) error {
	w := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "Mfr\tBER reduction from cooling 90→50 °C")
	for _, mfr := range a.Shards {
		r := a.Row(mfrKey(mfr))
		if r == nil {
			return fmt.Errorf("exp: def4 artifact missing shard %s", mfr)
		}
		fmt.Fprintf(w, "%s\t%s\n", mfr, pct(r.V("ber_reduction")))
	}
	return w.Flush()
}

// Defense5Result quantifies Improvement 5: open-time limiting.
type Defense5Result struct {
	Mfr string
	// ExtendedHC is the HCfirst under a 154.5 ns on-time attack;
	// LimitedHC the HCfirst when the controller caps open time at
	// tRAS; BaselineHC the plain baseline.
	ExtendedHC, LimitedHC, BaselineHC int64
	// ExtraActs is the limiter's cost on a benign long-open workload.
	ExtraActs int64
	// Scheduler-level cost on a row-buffer-friendly benign workload:
	// average request latency under plain open-page vs the capped
	// policy, and the cap's enforced bound on row-open time.
	OpenPageLatencyNs, CappedLatencyNs float64
	BenignSlowdown                     float64
	MaxRowOpenNsCapped                 float64
}

// Defense5 shows the open-time limiter restoring HCfirst.
func Defense5(cfg Config) (Defense5Result, error) {
	cfg = cfg.normalize()
	res := Defense5Result{Mfr: "A"}
	bs, err := benches(cfg, "A")
	if err != nil {
		return res, err
	}
	b := bs[0]
	t := rh.NewTester(b)
	tm := b.Timing()
	rows := sampleRows(cfg, 4)
	victim := rows[len(rows)/2]

	base, err := t.HCFirst(rh.HCFirstConfig{Bank: 0, VictimPhys: victim, Pattern: rh.PatCheckered, Trial: 1, MaxHammers: cfg.Scale.MaxHammers})
	if err != nil {
		return res, err
	}
	ext, err := t.HCFirst(rh.HCFirstConfig{Bank: 0, VictimPhys: victim, Pattern: rh.PatCheckered, Trial: 1, AggOnNs: 154.5, MaxHammers: cfg.Scale.MaxHammers})
	if err != nil {
		return res, err
	}
	// The limiter caps every open interval at tRAS: the attacker's
	// requested 154.5 ns opens become tRAS opens (plus extra
	// activations of the *aggressor*, which only hammer faster — the
	// limiter therefore also throttles total bank time; HCfirst
	// returns to the baseline).
	limiter := defense.NewOpenTimeLimiter(tm.TRAS)
	limiter.Clamp(rh.Picos(154.5 * 1000))
	lim, err := t.HCFirst(rh.HCFirstConfig{Bank: 0, VictimPhys: victim, Pattern: rh.PatCheckered, Trial: 1, MaxHammers: cfg.Scale.MaxHammers})
	if err != nil {
		return res, err
	}
	res.BaselineHC = base.HCfirst
	res.ExtendedHC = ext.HCfirst
	res.LimitedHC = lim.HCfirst
	res.ExtraActs = limiter.ExtraActs

	// Scheduler-level benign cost: a row-buffer-friendly workload
	// under open-page vs the capped policy.
	reqs := sched.Generate(sched.WorkloadConfig{
		Requests: 20000, Banks: cfg.Geometry.Banks, Rows: cfg.Geometry.RowsPerBank,
		Cols: cfg.Geometry.ColumnsPerRow, Locality: 0.85,
		InterArrival: rh.Picos(30_000), Seed: cfg.Seed,
	})
	open, err := sched.Simulate(reqs, tm, sched.OpenPage, 0)
	if err != nil {
		return res, err
	}
	capped, err := sched.Simulate(reqs, tm, sched.CappedOpenPage, 4*tm.TRAS)
	if err != nil {
		return res, err
	}
	res.OpenPageLatencyNs = open.AvgLatencyNs()
	res.CappedLatencyNs = capped.AvgLatencyNs()
	if open.AvgLatencyNs() > 0 {
		res.BenignSlowdown = capped.AvgLatencyNs()/open.AvgLatencyNs() - 1
	}
	res.MaxRowOpenNsCapped = capped.MaxRowOpen.Nanoseconds()
	return res, nil
}

// defense5Shard measures the open-time limiter study (single shard:
// one Mfr A module plus a scheduler simulation).
func defense5Shard(ctx context.Context, cfg Config, shard string) (*artifact.Artifact, error) {
	cfg = cfg.WithContext(ctx).normalize()
	res, err := Defense5(cfg)
	if err != nil {
		return nil, err
	}
	a := artifact.New(shard)
	a.AddRow("limiter").Tag("mfr", res.Mfr).
		SetInt("baseline_hc", res.BaselineHC).SetInt("extended_hc", res.ExtendedHC).
		SetInt("limited_hc", res.LimitedHC).SetInt("extra_acts", res.ExtraActs).
		Set("open_latency_ns", res.OpenPageLatencyNs).Set("capped_latency_ns", res.CappedLatencyNs).
		Set("benign_slowdown", res.BenignSlowdown).Set("max_row_open_ns", res.MaxRowOpenNsCapped)
	return a, nil
}

// renderDefense5 prints Improvement 5 from the artifact.
func renderDefense5(out io.Writer, a *artifact.Artifact) error {
	r := a.Row("limiter")
	if r == nil {
		return fmt.Errorf("exp: def5 artifact missing limiter row")
	}
	fmt.Fprintf(out, "Mfr. %s: HCfirst baseline %d; extended-on-time attack %d; with open-time limiter %d (restored); limiter cost: %d extra ACTs per long open\n",
		r.Label("mfr"), r.Int("baseline_hc"), r.Int("extended_hc"), r.Int("limited_hc"), r.Int("extra_acts"))
	fmt.Fprintf(out, "benign workload (85%% row locality): %.1f ns avg latency open-page → %.1f ns capped (%.1f%% slowdown); max row-open bounded to %.1f ns\n",
		r.V("open_latency_ns"), r.V("capped_latency_ns"), 100*r.V("benign_slowdown"), r.V("max_row_open_ns"))
	return nil
}

// Defense6Result quantifies Improvement 6: column-aware ECC.
type Defense6Result struct {
	Mfrs []string
	// ExposureRatio = column-aware exposure / uniform exposure (< 1
	// means the column-aware plan absorbs more flips).
	ExposureRatio []float64
}

// defense6From plans ECC provisioning from one measured column
// profile.
func defense6From(acc *rh.ColumnAccumulator) float64 {
	// Flatten (chip, column) counts to one profile.
	var flips []int
	for _, chip := range acc.Counts {
		flips = append(flips, chip...)
	}
	budget := len(flips) / 4
	aware := defense.PlanColumnECC(flips, budget, 1)
	uniform := defense.UniformECCPlan(len(flips), budget, 1)
	ea := aware.UncorrectedExposure(flips)
	eu := uniform.UncorrectedExposure(flips)
	if eu > 0 {
		return ea / eu
	}
	return 1.0
}

// Defense6 plans ECC provisioning from measured column profiles.
func Defense6(cfg Config) (Defense6Result, error) {
	cfg = cfg.normalize()
	f12, err := Fig12(cfg)
	if err != nil {
		return Defense6Result{}, err
	}
	var res Defense6Result
	for i, mfr := range f12.Mfrs {
		res.Mfrs = append(res.Mfrs, mfr)
		res.ExposureRatio = append(res.ExposureRatio, defense6From(f12.Acc[i]))
	}
	return res, nil
}

// defense6Shard measures one manufacturer's ECC planning study.
func defense6Shard(ctx context.Context, cfg Config, mfr string) (*artifact.Artifact, error) {
	cfg = cfg.WithContext(ctx).normalize()
	cfg.Geometry = columnGeometry(cfg.Geometry)
	acc, err := fig12Mfr(cfg, mfr)
	if err != nil {
		return nil, err
	}
	a := artifact.New(mfr)
	a.AddRow(mfrKey(mfr)).Set("exposure_ratio", defense6From(acc))
	return a, nil
}

// renderDefense6 prints Improvement 6 from the artifact.
func renderDefense6(out io.Writer, a *artifact.Artifact) error {
	w := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "Mfr\tcolumn-aware / uniform uncorrected exposure")
	for _, mfr := range a.Shards {
		r := a.Row(mfrKey(mfr))
		if r == nil {
			return fmt.Errorf("exp: def6 artifact missing shard %s", mfr)
		}
		fmt.Fprintf(w, "%s\t%.2f\n", mfr, r.V("exposure_ratio"))
	}
	return w.Flush()
}
