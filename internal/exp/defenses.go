package exp

import (
	"context"
	"fmt"
	"text/tabwriter"

	rh "rowhammer"
	"rowhammer/internal/defense"
	"rowhammer/internal/sched"
)

// Defense1Result quantifies Improvement 1: row-aware thresholds.
type Defense1Result struct {
	Mfrs []string
	// WorstHC and P5HC are the measured worst-case and 5th-percentile
	// HCfirst values the configurations derive from.
	WorstHC, P5HC []float64
	// Area fractions and reductions per mechanism.
	GrapheneBase, GrapheneRowAware       []float64
	BlockHammerBase, BlockHammerRowAware []float64
	GrapheneReduction, BHReduction       []float64
	// PARA slowdown at worst-case vs relaxed probability.
	PARABase, PARARelaxed []float64
}

// Defense1 derives row-aware defense configurations from measured row
// variation.
func Defense1(cfg Config) (Defense1Result, error) {
	cfg = cfg.normalize()
	f11, err := Fig11(cfg)
	if err != nil {
		return Defense1Result{}, err
	}
	var res Defense1Result
	for i, mfr := range f11.Mfrs {
		s := f11.Summary[i]
		worst := s.MinHC
		p5 := s.MinHC * s.RatioP95
		rcfg := defense.RowAwareConfig{
			WeakRowFraction: 0.05,
			ThresholdWeak:   int64(worst),
			ThresholdStrong: int64(p5),
			RowsPerBank:     cfg.Geometry.RowsPerBank,
		}
		gb := defense.GrapheneArea(rcfg.ThresholdWeak)
		gr := defense.RowAwareGrapheneArea(rcfg)
		bb := defense.BlockHammerArea(rcfg.ThresholdWeak)
		br := defense.RowAwareBlockHammerArea(rcfg)
		res.Mfrs = append(res.Mfrs, mfr)
		res.WorstHC = append(res.WorstHC, worst)
		res.P5HC = append(res.P5HC, p5)
		res.GrapheneBase = append(res.GrapheneBase, gb)
		res.GrapheneRowAware = append(res.GrapheneRowAware, gr)
		res.BlockHammerBase = append(res.BlockHammerBase, bb)
		res.BlockHammerRowAware = append(res.BlockHammerRowAware, br)
		res.GrapheneReduction = append(res.GrapheneReduction, defense.AreaReduction(gb, gr))
		res.BHReduction = append(res.BHReduction, defense.AreaReduction(bb, br))
		pBase := defense.PARAProbability(int64(worst), 1e-15)
		pRelax := defense.PARAProbability(int64(p5), 1e-15)
		res.PARABase = append(res.PARABase, defense.PARASlowdown(pBase))
		res.PARARelaxed = append(res.PARARelaxed, defense.PARASlowdown(pRelax))
	}
	return res, nil
}

// RunDefense1 prints Improvement 1.
func RunDefense1(ctx context.Context, cfg Config) error {
	cfg = cfg.WithContext(ctx)
	cfg = cfg.normalize()
	res, err := Defense1(cfg)
	if err != nil {
		return err
	}
	w := tabwriter.NewWriter(cfg.Out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "Mfr\tworst HCfirst\tP5 HCfirst\tGraphene area\t→ row-aware\tsaving\tBlockHammer area\t→ row-aware\tsaving\tPARA slowdown\t→ relaxed")
	for i, mfr := range res.Mfrs {
		fmt.Fprintf(w, "%s\t%.0f\t%.0f\t%.2f%%\t%.2f%%\t%s\t%.2f%%\t%.2f%%\t%s\t%s\t%s\n",
			mfr, res.WorstHC[i], res.P5HC[i],
			100*res.GrapheneBase[i], 100*res.GrapheneRowAware[i], pct(res.GrapheneReduction[i]),
			100*res.BlockHammerBase[i], 100*res.BlockHammerRowAware[i], pct(res.BHReduction[i]),
			pct(res.PARABase[i]), pct(res.PARARelaxed[i]))
	}
	return w.Flush()
}

// Defense2Result quantifies Improvement 2: subarray-sampled profiling.
type Defense2Result struct {
	Mfrs []string
	// FullMin is the module's true minimum HCfirst from full
	// profiling; SampledEstimate the prediction from profiling a
	// subset of subarrays via the Fig. 14 linear model.
	FullMin, SampledEstimate []float64
	RelError                 []float64
	// Speedup is subarrays-total / subarrays-sampled.
	Speedup []float64
}

// Defense2 predicts a new module's worst-case HCfirst from one sampled
// subarray plus a min-vs-avg linear model fitted on *other* modules of
// the same manufacturer (Obsv. 15/16: the relation transfers across
// modules).
func Defense2(cfg Config) (Defense2Result, error) {
	cfg = cfg.normalize()
	var res Defense2Result
	for _, mfr := range mfrNames {
		perModule, err := profileSubarrays(cfg, mfr)
		if err != nil {
			return res, err
		}
		if len(perModule) < 2 || len(perModule[0]) < 2 {
			continue
		}
		// Train on modules 1..n-1 with a through-origin (ratio)
		// estimator: the min/avg relation transfers across modules of
		// a manufacturer even when their absolute HCfirst levels
		// differ (Fig. 14's intercepts are small relative to the
		// HCfirst range).
		ratioSum, ratioN := 0.0, 0
		for _, subs := range perModule[1:] {
			for _, s := range subs {
				if s.Avg > 0 {
					ratioSum += s.Min / s.Avg
					ratioN++
				}
			}
		}
		if ratioN == 0 {
			continue
		}
		ratio := ratioSum / float64(ratioN)
		// Predict module 0's worst case from one sampled subarray.
		target := perModule[0]
		sampled := target[0]
		estimate := ratio * sampled.Avg
		trueMin := target[0].Min
		for _, s := range target[1:] {
			if s.Min < trueMin {
				trueMin = s.Min
			}
		}
		res.Mfrs = append(res.Mfrs, mfr)
		res.FullMin = append(res.FullMin, trueMin)
		res.SampledEstimate = append(res.SampledEstimate, estimate)
		rel := 0.0
		if trueMin > 0 {
			rel = (estimate - trueMin) / trueMin
		}
		res.RelError = append(res.RelError, rel)
		res.Speedup = append(res.Speedup, float64(len(target)))
	}
	return res, nil
}

// RunDefense2 prints Improvement 2.
func RunDefense2(ctx context.Context, cfg Config) error {
	cfg = cfg.WithContext(ctx)
	cfg = cfg.normalize()
	res, err := Defense2(cfg)
	if err != nil {
		return err
	}
	w := tabwriter.NewWriter(cfg.Out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "Mfr\ttrue min HCfirst\tsampled estimate\trel. error\tprofiling speedup")
	for i, mfr := range res.Mfrs {
		fmt.Fprintf(w, "%s\t%.0f\t%.0f\t%+.1f%%\t%.0fx\n",
			mfr, res.FullMin[i], res.SampledEstimate[i], 100*res.RelError[i], res.Speedup[i])
	}
	return w.Flush()
}

// Defense3Result quantifies Improvement 3: temperature-aware row
// retirement.
type Defense3Result struct {
	Mfr string
	// RetiredAt50/RetiredAt85 are the retired-row counts.
	RetiredAt50, RetiredAt85 int
	ProfiledRows             int
	// Coverage: fraction of rows that flipped at 85 °C that the
	// 85 °C retirement set contains.
	Coverage float64
}

// Defense3 builds a retirement policy from a temperature sweep and
// checks its coverage.
func Defense3(cfg Config) (Defense3Result, error) {
	cfg = cfg.normalize()
	res := Defense3Result{Mfr: "A"}
	bs, err := benches(cfg, "A")
	if err != nil {
		return res, err
	}
	t := rh.NewTester(bs[0])
	rows := sampleRows(cfg, tempSweepRows)
	sweep, err := t.TemperatureSweep(rh.TempSweepConfig{
		Bank: 0, Victims: rows, Hammers: cfg.Scale.Hammers,
		Pattern: rh.PatCheckered, Repetitions: 1,
	})
	if err != nil {
		return res, err
	}
	policy := defense.NewRetirementPolicy()
	flippedAt85 := map[int]bool{}
	for cell, mask := range sweep.Cells {
		lo, hi := maskLoHi(mask)
		policy.AddCellRange(cell.Row, sweep.Temps[lo], sweep.Temps[hi])
		for ti, temp := range sweep.Temps {
			if temp == 85 && mask&(1<<uint(ti)) != 0 {
				flippedAt85[cell.Row] = true
			}
		}
	}
	res.ProfiledRows = policy.ProfiledRows()
	r50 := policy.RetiredRows(50, 0)
	r85 := policy.RetiredRows(85, 0)
	res.RetiredAt50 = len(r50)
	res.RetiredAt85 = len(r85)
	retired := map[int]bool{}
	for _, r := range r85 {
		retired[r] = true
	}
	covered := 0
	for row := range flippedAt85 {
		if retired[row] {
			covered++
		}
	}
	if len(flippedAt85) > 0 {
		res.Coverage = float64(covered) / float64(len(flippedAt85))
	} else {
		res.Coverage = 1
	}
	return res, nil
}

// RunDefense3 prints Improvement 3.
func RunDefense3(ctx context.Context, cfg Config) error {
	cfg = cfg.WithContext(ctx)
	cfg = cfg.normalize()
	res, err := Defense3(cfg)
	if err != nil {
		return err
	}
	fmt.Fprintf(cfg.Out, "Mfr. %s: %d profiled rows; retire %d rows at 50°C, %d at 85°C; 85°C coverage %s\n",
		res.Mfr, res.ProfiledRows, res.RetiredAt50, res.RetiredAt85, pct(res.Coverage))
	return nil
}

// Defense4Result quantifies Improvement 4: cooling.
type Defense4Result struct {
	Mfrs []string
	// BERReduction going from 90 °C to 50 °C (positive = cooling
	// helps; negative for Mfr B).
	BERReduction []float64
}

// Defense4 compares BER at 90 °C and 50 °C.
func Defense4(cfg Config) (Defense4Result, error) {
	cfg = cfg.normalize()
	f4, err := Fig4(cfg)
	if err != nil {
		return Defense4Result{}, err
	}
	var res Defense4Result
	for i, mfr := range f4.Mfrs {
		at90 := f4.TrendAt(i, 90)
		// BER(90) = (1+at90)×BER(50) ⇒ cooling reduction:
		red := 0.0
		if 1+at90 > 0 {
			red = at90 / (1 + at90)
		}
		res.Mfrs = append(res.Mfrs, mfr)
		res.BERReduction = append(res.BERReduction, red)
	}
	return res, nil
}

// RunDefense4 prints Improvement 4.
func RunDefense4(ctx context.Context, cfg Config) error {
	cfg = cfg.WithContext(ctx)
	cfg = cfg.normalize()
	res, err := Defense4(cfg)
	if err != nil {
		return err
	}
	w := tabwriter.NewWriter(cfg.Out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "Mfr\tBER reduction from cooling 90→50 °C")
	for i, mfr := range res.Mfrs {
		fmt.Fprintf(w, "%s\t%s\n", mfr, pct(res.BERReduction[i]))
	}
	return w.Flush()
}

// Defense5Result quantifies Improvement 5: open-time limiting.
type Defense5Result struct {
	Mfr string
	// ExtendedHC is the HCfirst under a 154.5 ns on-time attack;
	// LimitedHC the HCfirst when the controller caps open time at
	// tRAS; BaselineHC the plain baseline.
	ExtendedHC, LimitedHC, BaselineHC int64
	// ExtraActs is the limiter's cost on a benign long-open workload.
	ExtraActs int64
	// Scheduler-level cost on a row-buffer-friendly benign workload:
	// average request latency under plain open-page vs the capped
	// policy, and the cap's enforced bound on row-open time.
	OpenPageLatencyNs, CappedLatencyNs float64
	BenignSlowdown                     float64
	MaxRowOpenNsCapped                 float64
}

// Defense5 shows the open-time limiter restoring HCfirst.
func Defense5(cfg Config) (Defense5Result, error) {
	cfg = cfg.normalize()
	res := Defense5Result{Mfr: "A"}
	bs, err := benches(cfg, "A")
	if err != nil {
		return res, err
	}
	b := bs[0]
	t := rh.NewTester(b)
	tm := b.Timing()
	rows := sampleRows(cfg, 4)
	victim := rows[len(rows)/2]

	base, err := t.HCFirst(rh.HCFirstConfig{Bank: 0, VictimPhys: victim, Pattern: rh.PatCheckered, Trial: 1, MaxHammers: cfg.Scale.MaxHammers})
	if err != nil {
		return res, err
	}
	ext, err := t.HCFirst(rh.HCFirstConfig{Bank: 0, VictimPhys: victim, Pattern: rh.PatCheckered, Trial: 1, AggOnNs: 154.5, MaxHammers: cfg.Scale.MaxHammers})
	if err != nil {
		return res, err
	}
	// The limiter caps every open interval at tRAS: the attacker's
	// requested 154.5 ns opens become tRAS opens (plus extra
	// activations of the *aggressor*, which only hammer faster — the
	// limiter therefore also throttles total bank time; HCfirst
	// returns to the baseline).
	limiter := defense.NewOpenTimeLimiter(tm.TRAS)
	limiter.Clamp(rh.Picos(154.5 * 1000))
	lim, err := t.HCFirst(rh.HCFirstConfig{Bank: 0, VictimPhys: victim, Pattern: rh.PatCheckered, Trial: 1, MaxHammers: cfg.Scale.MaxHammers})
	if err != nil {
		return res, err
	}
	res.BaselineHC = base.HCfirst
	res.ExtendedHC = ext.HCfirst
	res.LimitedHC = lim.HCfirst
	res.ExtraActs = limiter.ExtraActs

	// Scheduler-level benign cost: a row-buffer-friendly workload
	// under open-page vs the capped policy.
	reqs := sched.Generate(sched.WorkloadConfig{
		Requests: 20000, Banks: cfg.Geometry.Banks, Rows: cfg.Geometry.RowsPerBank,
		Cols: cfg.Geometry.ColumnsPerRow, Locality: 0.85,
		InterArrival: rh.Picos(30_000), Seed: cfg.Seed,
	})
	open, err := sched.Simulate(reqs, tm, sched.OpenPage, 0)
	if err != nil {
		return res, err
	}
	capped, err := sched.Simulate(reqs, tm, sched.CappedOpenPage, 4*tm.TRAS)
	if err != nil {
		return res, err
	}
	res.OpenPageLatencyNs = open.AvgLatencyNs()
	res.CappedLatencyNs = capped.AvgLatencyNs()
	if open.AvgLatencyNs() > 0 {
		res.BenignSlowdown = capped.AvgLatencyNs()/open.AvgLatencyNs() - 1
	}
	res.MaxRowOpenNsCapped = capped.MaxRowOpen.Nanoseconds()
	return res, nil
}

// RunDefense5 prints Improvement 5.
func RunDefense5(ctx context.Context, cfg Config) error {
	cfg = cfg.WithContext(ctx)
	cfg = cfg.normalize()
	res, err := Defense5(cfg)
	if err != nil {
		return err
	}
	fmt.Fprintf(cfg.Out, "Mfr. %s: HCfirst baseline %d; extended-on-time attack %d; with open-time limiter %d (restored); limiter cost: %d extra ACTs per long open\n",
		res.Mfr, res.BaselineHC, res.ExtendedHC, res.LimitedHC, res.ExtraActs)
	fmt.Fprintf(cfg.Out, "benign workload (85%% row locality): %.1f ns avg latency open-page → %.1f ns capped (%.1f%% slowdown); max row-open bounded to %.1f ns\n",
		res.OpenPageLatencyNs, res.CappedLatencyNs, 100*res.BenignSlowdown, res.MaxRowOpenNsCapped)
	return nil
}

// Defense6Result quantifies Improvement 6: column-aware ECC.
type Defense6Result struct {
	Mfrs []string
	// ExposureRatio = column-aware exposure / uniform exposure (< 1
	// means the column-aware plan absorbs more flips).
	ExposureRatio []float64
}

// Defense6 plans ECC provisioning from measured column profiles.
func Defense6(cfg Config) (Defense6Result, error) {
	cfg = cfg.normalize()
	f12, err := Fig12(cfg)
	if err != nil {
		return Defense6Result{}, err
	}
	var res Defense6Result
	for i, mfr := range f12.Mfrs {
		// Flatten (chip, column) counts to one profile.
		var flips []int
		for _, chip := range f12.Acc[i].Counts {
			flips = append(flips, chip...)
		}
		budget := len(flips) / 4
		aware := defense.PlanColumnECC(flips, budget, 1)
		uniform := defense.UniformECCPlan(len(flips), budget, 1)
		ea := aware.UncorrectedExposure(flips)
		eu := uniform.UncorrectedExposure(flips)
		ratio := 1.0
		if eu > 0 {
			ratio = ea / eu
		}
		res.Mfrs = append(res.Mfrs, mfr)
		res.ExposureRatio = append(res.ExposureRatio, ratio)
	}
	return res, nil
}

// RunDefense6 prints Improvement 6.
func RunDefense6(ctx context.Context, cfg Config) error {
	cfg = cfg.WithContext(ctx)
	cfg = cfg.normalize()
	res, err := Defense6(cfg)
	if err != nil {
		return err
	}
	w := tabwriter.NewWriter(cfg.Out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "Mfr\tcolumn-aware / uniform uncorrected exposure")
	for i, mfr := range res.Mfrs {
		fmt.Fprintf(w, "%s\t%.2f\n", mfr, res.ExposureRatio[i])
	}
	return w.Flush()
}
