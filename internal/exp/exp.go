// Package exp contains one driver per table and figure of the paper's
// evaluation (§5–§8). Every experiment is split into three stages:
// Compute (typed, pure, ctx-aware measurement of one shard), Artifact
// (the uniform rows/series structure of internal/artifact), and
// Render (the paper's text report, generated from the artifact alone).
// Typed compute functions remain exported so tests can assert the
// reproduced trends; the registry drives everything else — rhchar,
// golden tests, and experiment-generic fleet campaigns.
package exp

import (
	"context"
	"fmt"
	"io"
	"sort"

	rh "rowhammer"
	"rowhammer/internal/artifact"
	"rowhammer/internal/pool"
)

// Config parameterizes an experiment run.
type Config struct {
	// Scale bounds the measurement work.
	Scale rh.Scale
	// Seed derives per-module seeds.
	Seed uint64
	// Out receives the rendered report in Run; Compute never writes
	// to it. A nil Out is rejected by Run rather than silently
	// discarded.
	Out io.Writer
	// Geometry of the modules under test; zero value selects the
	// reduced-scale DDR4 geometry.
	Geometry rh.Geometry
	// Ctx carries cancellation and deadlines into the measurement
	// loops; nil selects context.Background().
	Ctx context.Context
	// Workers bounds the per-shard fan-out (< 1 selects one worker
	// per CPU).
	Workers int
}

// normalize fills config defaults via the shared helper all
// measurement layers use. The temps knob — the only one
// FillMeasureDefaults can reject — is not part of Config, so the
// error is statically nil here.
func (c Config) normalize() Config {
	_ = rh.FillMeasureDefaults(&c.Scale, &c.Geometry, &c.Seed, nil)
	if c.Ctx == nil {
		c.Ctx = context.Background()
	}
	return c
}

// WithContext returns a copy of the config carrying ctx.
func (c Config) WithContext(ctx context.Context) Config {
	c.Ctx = ctx
	return c
}

// Experiment is one runnable paper artifact.
type Experiment struct {
	// ID is the registry key (rhchar -exp, rhfleet -exp).
	ID string
	// Title is the human-readable caption.
	Title string
	// Section is the paper section the artifact reproduces.
	Section string
	// Schema versions the experiment's artifact layout; it is folded
	// into campaign identity so a checkpoint written under an older
	// layout cannot silently resume.
	Schema int
	// Shards is the experiment's decomposition hint: independent
	// units of work (typically one per manufacturer) that the fleet
	// engine schedules as separate jobs.
	Shards []string
	// Compute measures one shard and returns its artifact fragment.
	Compute func(ctx context.Context, cfg Config, shard string) (*artifact.Artifact, error)
	// Render writes the paper's text report from the merged artifact.
	Render func(w io.Writer, a *artifact.Artifact) error
}

// ComputeAll measures every shard on the config's worker pool and
// merges the fragments into the experiment's full artifact. Results
// are independent of worker count and shard completion order.
func (e Experiment) ComputeAll(ctx context.Context, cfg Config) (*artifact.Artifact, error) {
	cfg = cfg.WithContext(ctx).normalize()
	frags, err := pool.Map(cfg.Ctx, cfg.Workers, len(e.Shards), func(i int) (*artifact.Artifact, error) {
		return e.Compute(cfg.Ctx, cfg, e.Shards[i])
	})
	if err != nil {
		return nil, err
	}
	return artifact.Merge(e.ID, e.Schema, frags...)
}

// Run computes the full artifact and renders the text report to
// cfg.Out.
func (e Experiment) Run(ctx context.Context, cfg Config) error {
	if cfg.Out == nil {
		return fmt.Errorf("exp: %s: Config.Out is nil — the caller must supply a writer (or use ComputeAll for the artifact)", e.ID)
	}
	a, err := e.ComputeAll(ctx, cfg)
	if err != nil {
		return err
	}
	return e.Render(cfg.Out, a)
}

// Shard names: most experiments decompose per manufacturer; a few are
// single-module or cross-module studies that run as one shard.
var (
	mfrShards  = mfrNames
	oneShard   = []string{"all"}
	ddr3Shards = []string{"A", "B", "C"}
)

// All returns every experiment in paper order.
func All() []Experiment {
	return []Experiment{
		{ID: "table2", Title: "Table 2/4: tested DRAM module inventory", Section: "§4.1", Schema: 1, Shards: oneShard, Compute: table2Shard, Render: renderTable2},
		{ID: "table3", Title: "Table 3: cells flipping at all in-range temperatures", Section: "§5.1", Schema: 1, Shards: mfrShards, Compute: table3Shard, Render: renderTable3},
		{ID: "fig3", Title: "Fig. 3: vulnerable temperature range clusters", Section: "§5.1", Schema: 1, Shards: mfrShards, Compute: fig3Shard, Render: renderFig3},
		{ID: "fig4", Title: "Fig. 4: BER change vs temperature", Section: "§5.2", Schema: 1, Shards: mfrShards, Compute: fig4Shard, Render: renderFig4},
		{ID: "fig5", Title: "Fig. 5: HCfirst change distribution vs temperature", Section: "§5.3", Schema: 1, Shards: mfrShards, Compute: fig5Shard, Render: renderFig5},
		{ID: "fig6", Title: "Fig. 6: aggressor on/off-time command timing", Section: "§6", Schema: 1, Shards: oneShard, Compute: fig6Shard, Render: renderFig6},
		{ID: "fig7", Title: "Fig. 7: BER vs aggressor on-time", Section: "§6.1", Schema: 1, Shards: mfrShards, Compute: aggShard(aggOnGridNs, true), Render: renderAggBER("tAggOn(ns)")},
		{ID: "fig8", Title: "Fig. 8: HCfirst vs aggressor on-time", Section: "§6.1", Schema: 1, Shards: mfrShards, Compute: aggShard(aggOnGridNs, true), Render: renderAggHC("tAggOn(ns)")},
		{ID: "fig9", Title: "Fig. 9: BER vs aggressor off-time", Section: "§6.2", Schema: 1, Shards: mfrShards, Compute: aggShard(aggOffGridNs, false), Render: renderAggBER("tAggOff(ns)")},
		{ID: "fig10", Title: "Fig. 10: HCfirst vs aggressor off-time", Section: "§6.2", Schema: 1, Shards: mfrShards, Compute: aggShard(aggOffGridNs, false), Render: renderAggHC("tAggOff(ns)")},
		{ID: "fig11", Title: "Fig. 11: HCfirst distribution across rows", Section: "§7.1", Schema: 1, Shards: mfrShards, Compute: fig11Shard, Render: renderFig11},
		{ID: "fig12", Title: "Fig. 12: bit flips across columns", Section: "§7.2", Schema: 1, Shards: mfrShards, Compute: fig12Shard, Render: renderFig12},
		{ID: "fig13", Title: "Fig. 13: column vulnerability vs cross-chip variation", Section: "§7.2", Schema: 1, Shards: mfrShards, Compute: fig13Shard, Render: renderFig13},
		{ID: "fig14", Title: "Fig. 14: subarray min-vs-avg HCfirst regression", Section: "§7.3", Schema: 1, Shards: mfrShards, Compute: fig14Shard, Render: renderFig14},
		{ID: "fig15", Title: "Fig. 15: subarray HCfirst similarity (Bhattacharyya)", Section: "§7.3", Schema: 1, Shards: mfrShards, Compute: fig15Shard, Render: renderFig15},
		{ID: "atk1", Title: "Attack Improvement 1: temperature-targeted row choice", Section: "§8.1", Schema: 1, Shards: mfrShards, Compute: attack1Shard, Render: renderAttack1},
		{ID: "atk2", Title: "Attack Improvement 2: temperature-triggered attack", Section: "§8.1", Schema: 1, Shards: oneShard, Compute: attack2Shard, Render: renderAttack2},
		{ID: "atk3", Title: "Attack Improvement 3: extended aggressor on-time", Section: "§8.1", Schema: 1, Shards: mfrShards, Compute: attack3Shard, Render: renderAttack3},
		{ID: "def1", Title: "Defense Improvement 1: row-aware thresholds", Section: "§8.2", Schema: 1, Shards: mfrShards, Compute: defense1Shard, Render: renderDefense1},
		{ID: "def2", Title: "Defense Improvement 2: subarray-sampled profiling", Section: "§8.2", Schema: 1, Shards: mfrShards, Compute: defense2Shard, Render: renderDefense2},
		{ID: "def3", Title: "Defense Improvement 3: temperature-aware row retirement", Section: "§8.2", Schema: 1, Shards: oneShard, Compute: defense3Shard, Render: renderDefense3},
		{ID: "def4", Title: "Defense Improvement 4: cooling reduces BER", Section: "§8.2", Schema: 1, Shards: mfrShards, Compute: defense4Shard, Render: renderDefense4},
		{ID: "def5", Title: "Defense Improvement 5: row open-time limiting", Section: "§8.2", Schema: 1, Shards: oneShard, Compute: defense5Shard, Render: renderDefense5},
		{ID: "def6", Title: "Defense Improvement 6: column-aware ECC", Section: "§8.2", Schema: 1, Shards: mfrShards, Compute: defense6Shard, Render: renderDefense6},
		{ID: "ddr3", Title: "Extension: Obsv. 2 verified on DDR3 SODIMMs", Section: "§5.1", Schema: 1, Shards: ddr3Shards, Compute: ddr3Shard, Render: renderDDR3},
		{ID: "manysided", Title: "Extension: many-sided (TRRespass-style) attack vs TRR", Section: "§2.3", Schema: 1, Shards: oneShard, Compute: manySidedShard, Render: renderManySided},
		{ID: "interference", Title: "Extension: §4.2 interference-isolation checklist", Section: "§4.2", Schema: 1, Shards: oneShard, Compute: interferenceShard, Render: renderInterference},
		{ID: "defcompare", Title: "Extension: mechanism scorecard (coverage, overhead, area)", Section: "§8.2", Schema: 1, Shards: oneShard, Compute: defCompareShard, Render: renderDefCompare},
		{ID: "wcdp", Title: "Extension: worst-case data pattern survey (§4.2, Table 1)", Section: "§4.2", Schema: 1, Shards: mfrShards, Compute: wcdpShard, Render: renderWCDP},
	}
}

// ByID returns the experiment with the given id, or nil.
func ByID(id string) *Experiment {
	for _, e := range All() {
		if e.ID == id {
			e := e
			return &e
		}
	}
	return nil
}

// moduleSeed derives the seed of module instance i of a manufacturer,
// using the same derivation as fleet campaigns so results line up.
func moduleSeed(cfg Config, mfr string, i int) uint64 {
	return rh.ModuleSeed(cfg.Seed, mfr, i)
}

// benches builds the configured number of module benches for one
// manufacturer.
func benches(cfg Config, mfr string) ([]*rh.Bench, error) {
	n := cfg.Scale.ModulesPerMfr
	if n < 1 {
		n = 1
	}
	out := make([]*rh.Bench, 0, n)
	for i := 0; i < n; i++ {
		b, err := rh.NewBench(rh.BenchConfig{
			Profile:  rh.ProfileByName(mfr),
			Seed:     moduleSeed(cfg, mfr, i),
			Geometry: cfg.Geometry,
		})
		if err != nil {
			return nil, err
		}
		out = append(out, b)
	}
	return out, nil
}

// mfrNames lists the manufacturers in paper order.
var mfrNames = []string{"A", "B", "C", "D"}

// sampleRows subsamples the scale's region rows down to at most n,
// evenly spaced, preserving region coverage.
func sampleRows(cfg Config, n int) []int {
	return cfg.Scale.SampleRows(cfg.Geometry, n)
}

// pct formats a fraction as a percentage.
func pct(f float64) string { return fmt.Sprintf("%.1f%%", 100*f) }

// sortedCopy returns a sorted copy of xs.
func sortedCopy(xs []float64) []float64 {
	out := make([]float64, len(xs))
	copy(out, xs)
	sort.Float64s(out)
	return out
}

// mfrKey is the row/series key prefix of one manufacturer shard.
func mfrKey(mfr string) string { return "mfr=" + mfr }
