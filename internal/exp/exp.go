// Package exp contains one driver per table and figure of the paper's
// evaluation (§5–§8), each re-measuring the artifact through the full
// command-level methodology and printing the same rows/series the
// paper reports. Compute functions return typed results so tests can
// assert the reproduced trends; Run methods print them.
package exp

import (
	"context"
	"fmt"
	"io"
	"sort"

	rh "rowhammer"
)

// Config parameterizes an experiment run.
type Config struct {
	// Scale bounds the measurement work.
	Scale rh.Scale
	// Seed derives per-module seeds.
	Seed uint64
	// Out receives the printed artifact.
	Out io.Writer
	// Geometry of the modules under test; zero value selects the
	// reduced-scale DDR4 geometry.
	Geometry rh.Geometry
	// Ctx carries cancellation and deadlines into the measurement
	// loops; nil selects context.Background().
	Ctx context.Context
	// Workers bounds the per-manufacturer fan-out (< 1 selects one
	// worker per CPU).
	Workers int
}

// normalize fills config defaults.
func (c Config) normalize() Config {
	if c.Scale == (rh.Scale{}) {
		c.Scale = rh.DefaultScale()
	}
	if c.Out == nil {
		c.Out = io.Discard
	}
	if c.Geometry == (rh.Geometry{}) {
		c.Geometry = rh.DefaultDDR4Geometry()
	}
	if c.Seed == 0 {
		c.Seed = 0x5eed
	}
	if c.Ctx == nil {
		c.Ctx = context.Background()
	}
	return c
}

// WithContext returns a copy of the config carrying ctx.
func (c Config) WithContext(ctx context.Context) Config {
	c.Ctx = ctx
	return c
}

// Experiment is one runnable paper artifact.
type Experiment struct {
	ID    string
	Title string
	Run   func(ctx context.Context, cfg Config) error
}

// All returns every experiment in paper order.
func All() []Experiment {
	return []Experiment{
		{"table2", "Table 2/4: tested DRAM module inventory", RunTable2},
		{"table3", "Table 3: cells flipping at all in-range temperatures", RunTable3},
		{"fig3", "Fig. 3: vulnerable temperature range clusters", RunFig3},
		{"fig4", "Fig. 4: BER change vs temperature", RunFig4},
		{"fig5", "Fig. 5: HCfirst change distribution vs temperature", RunFig5},
		{"fig6", "Fig. 6: aggressor on/off-time command timing", RunFig6},
		{"fig7", "Fig. 7: BER vs aggressor on-time", RunFig7},
		{"fig8", "Fig. 8: HCfirst vs aggressor on-time", RunFig8},
		{"fig9", "Fig. 9: BER vs aggressor off-time", RunFig9},
		{"fig10", "Fig. 10: HCfirst vs aggressor off-time", RunFig10},
		{"fig11", "Fig. 11: HCfirst distribution across rows", RunFig11},
		{"fig12", "Fig. 12: bit flips across columns", RunFig12},
		{"fig13", "Fig. 13: column vulnerability vs cross-chip variation", RunFig13},
		{"fig14", "Fig. 14: subarray min-vs-avg HCfirst regression", RunFig14},
		{"fig15", "Fig. 15: subarray HCfirst similarity (Bhattacharyya)", RunFig15},
		{"atk1", "Attack Improvement 1: temperature-targeted row choice", RunAttack1},
		{"atk2", "Attack Improvement 2: temperature-triggered attack", RunAttack2},
		{"atk3", "Attack Improvement 3: extended aggressor on-time", RunAttack3},
		{"def1", "Defense Improvement 1: row-aware thresholds", RunDefense1},
		{"def2", "Defense Improvement 2: subarray-sampled profiling", RunDefense2},
		{"def3", "Defense Improvement 3: temperature-aware row retirement", RunDefense3},
		{"def4", "Defense Improvement 4: cooling reduces BER", RunDefense4},
		{"def5", "Defense Improvement 5: row open-time limiting", RunDefense5},
		{"def6", "Defense Improvement 6: column-aware ECC", RunDefense6},
		{"ddr3", "Extension: Obsv. 2 verified on DDR3 SODIMMs", RunDDR3},
		{"manysided", "Extension: many-sided (TRRespass-style) attack vs TRR", RunManySided},
		{"interference", "Extension: §4.2 interference-isolation checklist", RunInterference},
		{"defcompare", "Extension: mechanism scorecard (coverage, overhead, area)", RunDefCompare},
		{"wcdp", "Extension: worst-case data pattern survey (§4.2, Table 1)", RunWCDP},
	}
}

// ByID returns the experiment with the given id, or nil.
func ByID(id string) *Experiment {
	for _, e := range All() {
		if e.ID == id {
			e := e
			return &e
		}
	}
	return nil
}

// moduleSeed derives the seed of module instance i of a manufacturer,
// using the same derivation as fleet campaigns so results line up.
func moduleSeed(cfg Config, mfr string, i int) uint64 {
	return rh.ModuleSeed(cfg.Seed, mfr, i)
}

// benches builds the configured number of module benches for one
// manufacturer.
func benches(cfg Config, mfr string) ([]*rh.Bench, error) {
	n := cfg.Scale.ModulesPerMfr
	if n < 1 {
		n = 1
	}
	out := make([]*rh.Bench, 0, n)
	for i := 0; i < n; i++ {
		b, err := rh.NewBench(rh.BenchConfig{
			Profile:  rh.ProfileByName(mfr),
			Seed:     moduleSeed(cfg, mfr, i),
			Geometry: cfg.Geometry,
		})
		if err != nil {
			return nil, err
		}
		out = append(out, b)
	}
	return out, nil
}

// mfrNames lists the manufacturers in paper order.
var mfrNames = []string{"A", "B", "C", "D"}

// sampleRows subsamples the scale's region rows down to at most n,
// evenly spaced, preserving region coverage.
func sampleRows(cfg Config, n int) []int {
	return cfg.Scale.SampleRows(cfg.Geometry, n)
}

// pct formats a fraction as a percentage.
func pct(f float64) string { return fmt.Sprintf("%.1f%%", 100*f) }

// sortedCopy returns a sorted copy of xs.
func sortedCopy(xs []float64) []float64 {
	out := make([]float64, len(xs))
	copy(out, xs)
	sort.Float64s(out)
	return out
}
