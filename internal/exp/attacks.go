package exp

import (
	"context"
	"fmt"
	"text/tabwriter"

	rh "rowhammer"
	"rowhammer/internal/attack"
	"rowhammer/internal/defense"
)

// Attack1Result quantifies Improvement 1: informed (temperature-
// targeted) vs uninformed victim-row choice.
type Attack1Result struct {
	Mfrs []string
	// InformedHC/MedianHC at the attack temperature.
	InformedHC, MedianHC []int64
	// Reduction = 1 - informed/median.
	Reduction []float64
}

// Attack1 profiles candidate rows across temperatures and compares
// the informed choice against the median row.
func Attack1(cfg Config) (Attack1Result, error) {
	cfg = cfg.normalize()
	var res Attack1Result
	const attackTemp = 90
	for _, mfr := range mfrNames {
		bs, err := benches(cfg, mfr)
		if err != nil {
			return res, err
		}
		t := rh.NewTester(bs[0])
		rows := sampleRows(cfg, 12)
		planner, err := attack.BuildPlanner(t, 0, rows, []float64{50, 70, 90})
		if err != nil {
			return res, err
		}
		_, best, err := planner.BestRowAt(attackTemp)
		if err != nil {
			return res, err
		}
		median, err := planner.MedianRowAt(attackTemp)
		if err != nil {
			return res, err
		}
		res.Mfrs = append(res.Mfrs, mfr)
		res.InformedHC = append(res.InformedHC, best)
		res.MedianHC = append(res.MedianHC, median)
		res.Reduction = append(res.Reduction, 1-float64(best)/float64(median))
	}
	return res, nil
}

// RunAttack1 prints Improvement 1.
func RunAttack1(ctx context.Context, cfg Config) error {
	cfg = cfg.WithContext(ctx)
	cfg = cfg.normalize()
	res, err := Attack1(cfg)
	if err != nil {
		return err
	}
	w := tabwriter.NewWriter(cfg.Out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "Mfr\tinformed HCfirst @90°C\tmedian (uninformed)\thammer-count reduction")
	for i, mfr := range res.Mfrs {
		fmt.Fprintf(w, "%s\t%d\t%d\t%s\n", mfr, res.InformedHC[i], res.MedianHC[i], pct(res.Reduction[i]))
	}
	return w.Flush()
}

// Attack2Result quantifies Improvement 2: temperature-triggered
// attacks.
type Attack2Result struct {
	Mfr string
	// ExactCellFrac/AboveCellFrac are the shares of vulnerable cells
	// usable as exact-temperature / at-or-above sensors for the target.
	ExactCellFrac, AboveCellFrac float64
	// TriggerWorks reports the end-to-end trigger demo outcome.
	TriggerFound                  bool
	FiredBelow, FiredAbove, Valid bool
}

// Attack2 finds trigger cells at 70 °C and demonstrates an at-or-above
// trigger end to end on Mfr A.
func Attack2(cfg Config) (Attack2Result, error) {
	cfg = cfg.normalize()
	res := Attack2Result{Mfr: "A"}
	bs, err := benches(cfg, "A")
	if err != nil {
		return res, err
	}
	t := rh.NewTester(bs[0])
	rows := sampleRows(cfg, tempSweepRows)
	sweep, err := t.TemperatureSweep(rh.TempSweepConfig{
		Bank: 0, Victims: rows, Hammers: 2 * cfg.Scale.Hammers,
		Pattern: rh.PatCheckered, Repetitions: 1,
	})
	if err != nil {
		return res, err
	}
	// Census of usable sensor cells at 70 °C.
	targetIdx := 4 // 70 °C in the 50..90 grid
	exact, above, total := 0, 0, 0
	for _, mask := range sweep.Cells {
		total++
		lo, hi := maskLoHi(mask)
		if lo == targetIdx && hi == targetIdx {
			exact++
		}
		if lo >= targetIdx {
			above++
		}
	}
	if total > 0 {
		res.ExactCellFrac = float64(exact) / float64(total)
		res.AboveCellFrac = float64(above) / float64(total)
	}

	trig, err := attack.FindTrigger(sweep, attack.AtOrAbove, 70, 0, 2*cfg.Scale.Hammers, rh.PatCheckered)
	if err != nil {
		return res, nil // no trigger cell in this sample: census-only result
	}
	res.TriggerFound = true
	if err := bs[0].SetTemperature(55); err != nil {
		return res, err
	}
	res.FiredBelow, err = trig.Probe(t, 1)
	if err != nil {
		return res, err
	}
	if err := bs[0].SetTemperature(85); err != nil {
		return res, err
	}
	res.FiredAbove, err = trig.Probe(t, 1)
	if err != nil {
		return res, err
	}
	res.Valid = !res.FiredBelow && res.FiredAbove
	return res, nil
}

func maskLoHi(mask uint32) (lo, hi int) {
	lo, hi = -1, -1
	for i := 0; i < 32; i++ {
		if mask&(1<<uint(i)) != 0 {
			if lo < 0 {
				lo = i
			}
			hi = i
		}
	}
	return lo, hi
}

// RunAttack2 prints Improvement 2.
func RunAttack2(ctx context.Context, cfg Config) error {
	cfg = cfg.WithContext(ctx)
	cfg = cfg.normalize()
	res, err := Attack2(cfg)
	if err != nil {
		return err
	}
	fmt.Fprintf(cfg.Out, "Mfr. %s sensor census @70°C: exact-temperature cells %s, at-or-above cells %s\n",
		res.Mfr, pct(res.ExactCellFrac), pct(res.AboveCellFrac))
	if !res.TriggerFound {
		fmt.Fprintln(cfg.Out, "no at-or-above trigger cell in this sample (increase scale)")
		return nil
	}
	fmt.Fprintf(cfg.Out, "trigger demo: fired@55°C=%v fired@85°C=%v → valid=%v\n",
		res.FiredBelow, res.FiredAbove, res.Valid)
	return nil
}

// Attack3Result quantifies Improvement 3: extended aggressor on-time.
type Attack3Result struct {
	Mfrs []string
	// Reads is the extra READs per activation; OnTimeNs the resulting
	// on-time.
	Reads    int
	OnTimeNs float64
	// BaseHC/ExtHC are mean HCfirst without/with extension; BERRatio
	// the BER amplification.
	BaseHC, ExtHC []float64
	HCReduction   []float64
	BERRatio      []float64
	// DefenseDefeated: a Graphene tracker configured for the baseline
	// HCfirst lets the extended attack flip bits.
	BaselinePrevented, ExtendedDefeats []bool
}

// Attack3 measures the on-time extension attack and its effect on a
// threshold-configured defense.
func Attack3(cfg Config) (Attack3Result, error) {
	cfg = cfg.normalize()
	res := Attack3Result{Reads: 15}
	for _, mfr := range mfrNames {
		bs, err := benches(cfg, mfr)
		if err != nil {
			return res, err
		}
		b := bs[0]
		t := rh.NewTester(b)
		tm := b.Timing()
		onNs := attack.OnTimeWithReads(tm, res.Reads).Nanoseconds()
		res.OnTimeNs = onNs
		rows := sampleRows(cfg, 8)
		var baseSum, extSum, baseBER, extBER float64
		n := 0
		for _, row := range rows {
			base, err := t.HCFirst(rh.HCFirstConfig{Bank: 0, VictimPhys: row, Pattern: rh.PatCheckered, Trial: 1, MaxHammers: cfg.Scale.MaxHammers})
			if err != nil {
				return res, err
			}
			ext, err := t.HCFirst(rh.HCFirstConfig{Bank: 0, VictimPhys: row, Pattern: rh.PatCheckered, Trial: 1, AggOnNs: onNs, MaxHammers: cfg.Scale.MaxHammers})
			if err != nil {
				return res, err
			}
			if !base.Found || !ext.Found {
				continue
			}
			baseSum += float64(base.HCfirst)
			extSum += float64(ext.HCfirst)
			n++
			// 2× hammers so even the steep-tailed manufacturers show a
			// measurable baseline BER at test scale.
			hb, err := t.Hammer(rh.HammerConfig{Bank: 0, VictimPhys: row, Hammers: 2 * cfg.Scale.Hammers, Pattern: rh.PatCheckered, Trial: 1})
			if err != nil {
				return res, err
			}
			he, err := t.Hammer(rh.HammerConfig{Bank: 0, VictimPhys: row, Hammers: 2 * cfg.Scale.Hammers, Pattern: rh.PatCheckered, Trial: 1, AggOnNs: onNs})
			if err != nil {
				return res, err
			}
			baseBER += float64(hb.Victim.Count())
			extBER += float64(he.Victim.Count())
		}
		if n == 0 {
			continue
		}
		baseHC := baseSum / float64(n)
		extHC := extSum / float64(n)

		// Defense defeat demo: a tracker is configured for the
		// *baseline* HCfirst of the victim (with a safety margin that
		// still sits above the extended-on-time HCfirst, since the
		// designer did not anticipate Obsv. 8). It stops the baseline
		// attack; the extended attack flips bits before the tracker's
		// threshold is reached.
		victim := rows[0]
		vb, err := t.HCFirst(rh.HCFirstConfig{Bank: 0, VictimPhys: victim, Pattern: rh.PatCheckered, Trial: 1, MaxHammers: cfg.Scale.MaxHammers})
		if err != nil {
			return res, err
		}
		ve, err := t.HCFirst(rh.HCFirstConfig{Bank: 0, VictimPhys: victim, Pattern: rh.PatCheckered, Trial: 1, AggOnNs: onNs, MaxHammers: cfg.Scale.MaxHammers})
		if err != nil {
			return res, err
		}
		if !vb.Found || !ve.Found || ve.HCfirst >= vb.HCfirst {
			continue
		}
		threshold := (vb.HCfirst + ve.HCfirst) / 2
		mk := func() (*rh.Bench, error) {
			return rh.NewBench(rh.BenchConfig{Profile: b.Profile, Seed: b.Seed, Geometry: cfg.Geometry})
		}
		b1, err := mk()
		if err != nil {
			return res, err
		}
		g1 := defense.NewGraphene(threshold, 64, cfg.Geometry.RowsPerBank)
		r1, err := defense.Evaluate(defense.EvalConfig{
			Bench: b1, Mechanism: g1, Bank: 0, VictimPhys: victim,
			Hammers: cfg.Scale.MaxHammers, Pattern: rh.PatCheckered, Trial: 1,
		})
		if err != nil {
			return res, err
		}
		b2, err := mk()
		if err != nil {
			return res, err
		}
		g2 := defense.NewGraphene(threshold, 64, cfg.Geometry.RowsPerBank)
		r2, err := defense.Evaluate(defense.EvalConfig{
			Bench: b2, Mechanism: g2, Bank: 0, VictimPhys: victim,
			Hammers: cfg.Scale.MaxHammers, Pattern: rh.PatCheckered, Trial: 1, AggOnNs: onNs,
		})
		if err != nil {
			return res, err
		}

		res.Mfrs = append(res.Mfrs, mfr)
		res.BaseHC = append(res.BaseHC, baseHC)
		res.ExtHC = append(res.ExtHC, extHC)
		res.HCReduction = append(res.HCReduction, 1-extHC/baseHC)
		if baseBER > 0 {
			res.BERRatio = append(res.BERRatio, extBER/baseBER)
		} else {
			res.BERRatio = append(res.BERRatio, 0)
		}
		res.BaselinePrevented = append(res.BaselinePrevented, r1.VictimFlips == 0)
		res.ExtendedDefeats = append(res.ExtendedDefeats, r2.VictimFlips > 0)
	}
	return res, nil
}

// RunAttack3 prints Improvement 3.
func RunAttack3(ctx context.Context, cfg Config) error {
	cfg = cfg.WithContext(ctx)
	cfg = cfg.normalize()
	res, err := Attack3(cfg)
	if err != nil {
		return err
	}
	fmt.Fprintf(cfg.Out, "%d READs per activation → tAggOn %.1f ns\n", res.Reads, res.OnTimeNs)
	w := tabwriter.NewWriter(cfg.Out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "Mfr\tbase HCfirst\textended HCfirst\treduction\tBER ratio\tbaseline stopped\textended defeats defense")
	for i, mfr := range res.Mfrs {
		fmt.Fprintf(w, "%s\t%.0f\t%.0f\t%s\t%.1fx\t%v\t%v\n",
			mfr, res.BaseHC[i], res.ExtHC[i], pct(res.HCReduction[i]), res.BERRatio[i],
			res.BaselinePrevented[i], res.ExtendedDefeats[i])
	}
	return w.Flush()
}
