package exp

import (
	"context"
	"fmt"
	"io"
	"text/tabwriter"

	rh "rowhammer"
	"rowhammer/internal/artifact"
	"rowhammer/internal/attack"
	"rowhammer/internal/defense"
)

// Attack1Result quantifies Improvement 1: informed (temperature-
// targeted) vs uninformed victim-row choice.
type Attack1Result struct {
	Mfrs []string
	// InformedHC/MedianHC at the attack temperature.
	InformedHC, MedianHC []int64
	// Reduction = 1 - informed/median.
	Reduction []float64
}

// attack1Mfr profiles one manufacturer's candidate rows and compares
// the informed choice against the median row.
func attack1Mfr(cfg Config, mfr string) (best, median int64, err error) {
	const attackTemp = 90
	bs, err := benches(cfg, mfr)
	if err != nil {
		return 0, 0, err
	}
	t := rh.NewTester(bs[0])
	rows := sampleRows(cfg, 12)
	planner, err := attack.BuildPlanner(t, 0, rows, []float64{50, 70, 90})
	if err != nil {
		return 0, 0, err
	}
	_, best, err = planner.BestRowAt(attackTemp)
	if err != nil {
		return 0, 0, err
	}
	median, err = planner.MedianRowAt(attackTemp)
	if err != nil {
		return 0, 0, err
	}
	return best, median, nil
}

// Attack1 profiles candidate rows across temperatures and compares
// the informed choice against the median row.
func Attack1(cfg Config) (Attack1Result, error) {
	cfg = cfg.normalize()
	var res Attack1Result
	for _, mfr := range mfrNames {
		best, median, err := attack1Mfr(cfg, mfr)
		if err != nil {
			return res, err
		}
		res.Mfrs = append(res.Mfrs, mfr)
		res.InformedHC = append(res.InformedHC, best)
		res.MedianHC = append(res.MedianHC, median)
		res.Reduction = append(res.Reduction, 1-float64(best)/float64(median))
	}
	return res, nil
}

// attack1Shard measures one manufacturer's Improvement 1 numbers.
func attack1Shard(ctx context.Context, cfg Config, mfr string) (*artifact.Artifact, error) {
	cfg = cfg.WithContext(ctx).normalize()
	best, median, err := attack1Mfr(cfg, mfr)
	if err != nil {
		return nil, err
	}
	a := artifact.New(mfr)
	a.AddRow(mfrKey(mfr)).
		SetInt("informed_hc", best).SetInt("median_hc", median).
		Set("reduction", 1-float64(best)/float64(median))
	return a, nil
}

// renderAttack1 prints Improvement 1 from the artifact.
func renderAttack1(out io.Writer, a *artifact.Artifact) error {
	w := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "Mfr\tinformed HCfirst @90°C\tmedian (uninformed)\thammer-count reduction")
	for _, mfr := range a.Shards {
		r := a.Row(mfrKey(mfr))
		if r == nil {
			return fmt.Errorf("exp: atk1 artifact missing shard %s", mfr)
		}
		fmt.Fprintf(w, "%s\t%d\t%d\t%s\n", mfr, r.Int("informed_hc"), r.Int("median_hc"), pct(r.V("reduction")))
	}
	return w.Flush()
}

// Attack2Result quantifies Improvement 2: temperature-triggered
// attacks.
type Attack2Result struct {
	Mfr string
	// ExactCellFrac/AboveCellFrac are the shares of vulnerable cells
	// usable as exact-temperature / at-or-above sensors for the target.
	ExactCellFrac, AboveCellFrac float64
	// TriggerWorks reports the end-to-end trigger demo outcome.
	TriggerFound                  bool
	FiredBelow, FiredAbove, Valid bool
}

// Attack2 finds trigger cells at 70 °C and demonstrates an at-or-above
// trigger end to end on Mfr A.
func Attack2(cfg Config) (Attack2Result, error) {
	cfg = cfg.normalize()
	res := Attack2Result{Mfr: "A"}
	bs, err := benches(cfg, "A")
	if err != nil {
		return res, err
	}
	t := rh.NewTester(bs[0])
	rows := sampleRows(cfg, tempSweepRows)
	sweep, err := t.TemperatureSweep(rh.TempSweepConfig{
		Bank: 0, Victims: rows, Hammers: 2 * cfg.Scale.Hammers,
		Pattern: rh.PatCheckered, Repetitions: 1,
	})
	if err != nil {
		return res, err
	}
	// Census of usable sensor cells at 70 °C.
	targetIdx := 4 // 70 °C in the 50..90 grid
	exact, above, total := 0, 0, 0
	for _, mask := range sweep.Cells {
		total++
		lo, hi := maskLoHi(mask)
		if lo == targetIdx && hi == targetIdx {
			exact++
		}
		if lo >= targetIdx {
			above++
		}
	}
	if total > 0 {
		res.ExactCellFrac = float64(exact) / float64(total)
		res.AboveCellFrac = float64(above) / float64(total)
	}

	trig, err := attack.FindTrigger(sweep, attack.AtOrAbove, 70, 0, 2*cfg.Scale.Hammers, rh.PatCheckered)
	if err != nil {
		return res, nil // no trigger cell in this sample: census-only result
	}
	res.TriggerFound = true
	if err := bs[0].SetTemperature(55); err != nil {
		return res, err
	}
	res.FiredBelow, err = trig.Probe(t, 1)
	if err != nil {
		return res, err
	}
	if err := bs[0].SetTemperature(85); err != nil {
		return res, err
	}
	res.FiredAbove, err = trig.Probe(t, 1)
	if err != nil {
		return res, err
	}
	res.Valid = !res.FiredBelow && res.FiredAbove
	return res, nil
}

func maskLoHi(mask uint32) (lo, hi int) {
	lo, hi = -1, -1
	for i := 0; i < 32; i++ {
		if mask&(1<<uint(i)) != 0 {
			if lo < 0 {
				lo = i
			}
			hi = i
		}
	}
	return lo, hi
}

// boolInt stores a bool as an artifact value.
func boolInt(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// attack2Shard measures Improvement 2 (single shard: the demo runs on
// one Mfr A module end to end).
func attack2Shard(ctx context.Context, cfg Config, shard string) (*artifact.Artifact, error) {
	cfg = cfg.WithContext(ctx).normalize()
	res, err := Attack2(cfg)
	if err != nil {
		return nil, err
	}
	a := artifact.New(shard)
	a.AddRow("trigger").Tag("mfr", res.Mfr).
		Set("exact_frac", res.ExactCellFrac).Set("above_frac", res.AboveCellFrac).
		SetInt("found", boolInt(res.TriggerFound)).
		SetInt("fired_below", boolInt(res.FiredBelow)).
		SetInt("fired_above", boolInt(res.FiredAbove)).
		SetInt("valid", boolInt(res.Valid))
	return a, nil
}

// renderAttack2 prints Improvement 2 from the artifact.
func renderAttack2(out io.Writer, a *artifact.Artifact) error {
	r := a.Row("trigger")
	if r == nil {
		return fmt.Errorf("exp: atk2 artifact missing trigger row")
	}
	fmt.Fprintf(out, "Mfr. %s sensor census @70°C: exact-temperature cells %s, at-or-above cells %s\n",
		r.Label("mfr"), pct(r.V("exact_frac")), pct(r.V("above_frac")))
	if r.Int("found") == 0 {
		fmt.Fprintln(out, "no at-or-above trigger cell in this sample (increase scale)")
		return nil
	}
	fmt.Fprintf(out, "trigger demo: fired@55°C=%v fired@85°C=%v → valid=%v\n",
		r.Int("fired_below") != 0, r.Int("fired_above") != 0, r.Int("valid") != 0)
	return nil
}

// Attack3Result quantifies Improvement 3: extended aggressor on-time.
type Attack3Result struct {
	Mfrs []string
	// Reads is the extra READs per activation; OnTimeNs the resulting
	// on-time.
	Reads    int
	OnTimeNs float64
	// BaseHC/ExtHC are mean HCfirst without/with extension; BERRatio
	// the BER amplification.
	BaseHC, ExtHC []float64
	HCReduction   []float64
	BERRatio      []float64
	// DefenseDefeated: a Graphene tracker configured for the baseline
	// HCfirst lets the extended attack flip bits.
	BaselinePrevented, ExtendedDefeats []bool
}

// attack3Reads is the READs-per-activation count of Improvement 3.
const attack3Reads = 15

// attack3Out is one manufacturer's Improvement 3 measurement. ok is
// false when the module produced no usable sample at test scale (the
// manufacturer is left out of the table, as in the paper's appendix).
type attack3Out struct {
	onTimeNs                  float64
	ok                        bool
	baseHC, extHC, berRatio   float64
	basePrevented, extDefeats bool
}

// attack3Mfr measures one manufacturer's on-time extension attack and
// its effect on a threshold-configured defense.
func attack3Mfr(cfg Config, mfr string) (attack3Out, error) {
	var out attack3Out
	bs, err := benches(cfg, mfr)
	if err != nil {
		return out, err
	}
	b := bs[0]
	t := rh.NewTester(b)
	tm := b.Timing()
	onNs := attack.OnTimeWithReads(tm, attack3Reads).Nanoseconds()
	out.onTimeNs = onNs
	rows := sampleRows(cfg, 8)
	var baseSum, extSum, baseBER, extBER float64
	n := 0
	for _, row := range rows {
		base, err := t.HCFirst(rh.HCFirstConfig{Bank: 0, VictimPhys: row, Pattern: rh.PatCheckered, Trial: 1, MaxHammers: cfg.Scale.MaxHammers})
		if err != nil {
			return out, err
		}
		ext, err := t.HCFirst(rh.HCFirstConfig{Bank: 0, VictimPhys: row, Pattern: rh.PatCheckered, Trial: 1, AggOnNs: onNs, MaxHammers: cfg.Scale.MaxHammers})
		if err != nil {
			return out, err
		}
		if !base.Found || !ext.Found {
			continue
		}
		baseSum += float64(base.HCfirst)
		extSum += float64(ext.HCfirst)
		n++
		// 2× hammers so even the steep-tailed manufacturers show a
		// measurable baseline BER at test scale.
		hb, err := t.Hammer(rh.HammerConfig{Bank: 0, VictimPhys: row, Hammers: 2 * cfg.Scale.Hammers, Pattern: rh.PatCheckered, Trial: 1})
		if err != nil {
			return out, err
		}
		he, err := t.Hammer(rh.HammerConfig{Bank: 0, VictimPhys: row, Hammers: 2 * cfg.Scale.Hammers, Pattern: rh.PatCheckered, Trial: 1, AggOnNs: onNs})
		if err != nil {
			return out, err
		}
		baseBER += float64(hb.Victim.Count())
		extBER += float64(he.Victim.Count())
	}
	if n == 0 {
		return out, nil
	}
	baseHC := baseSum / float64(n)
	extHC := extSum / float64(n)

	// Defense defeat demo: a tracker is configured for the
	// *baseline* HCfirst of the victim (with a safety margin that
	// still sits above the extended-on-time HCfirst, since the
	// designer did not anticipate Obsv. 8). It stops the baseline
	// attack; the extended attack flips bits before the tracker's
	// threshold is reached.
	victim := rows[0]
	vb, err := t.HCFirst(rh.HCFirstConfig{Bank: 0, VictimPhys: victim, Pattern: rh.PatCheckered, Trial: 1, MaxHammers: cfg.Scale.MaxHammers})
	if err != nil {
		return out, err
	}
	ve, err := t.HCFirst(rh.HCFirstConfig{Bank: 0, VictimPhys: victim, Pattern: rh.PatCheckered, Trial: 1, AggOnNs: onNs, MaxHammers: cfg.Scale.MaxHammers})
	if err != nil {
		return out, err
	}
	if !vb.Found || !ve.Found || ve.HCfirst >= vb.HCfirst {
		return out, nil
	}
	threshold := (vb.HCfirst + ve.HCfirst) / 2
	mk := func() (*rh.Bench, error) {
		return rh.NewBench(rh.BenchConfig{Profile: b.Profile, Seed: b.Seed, Geometry: cfg.Geometry})
	}
	b1, err := mk()
	if err != nil {
		return out, err
	}
	g1 := defense.NewGraphene(threshold, 64, cfg.Geometry.RowsPerBank)
	r1, err := defense.Evaluate(defense.EvalConfig{
		Bench: b1, Mechanism: g1, Bank: 0, VictimPhys: victim,
		Hammers: cfg.Scale.MaxHammers, Pattern: rh.PatCheckered, Trial: 1,
	})
	if err != nil {
		return out, err
	}
	b2, err := mk()
	if err != nil {
		return out, err
	}
	g2 := defense.NewGraphene(threshold, 64, cfg.Geometry.RowsPerBank)
	r2, err := defense.Evaluate(defense.EvalConfig{
		Bench: b2, Mechanism: g2, Bank: 0, VictimPhys: victim,
		Hammers: cfg.Scale.MaxHammers, Pattern: rh.PatCheckered, Trial: 1, AggOnNs: onNs,
	})
	if err != nil {
		return out, err
	}

	out.ok = true
	out.baseHC = baseHC
	out.extHC = extHC
	if baseBER > 0 {
		out.berRatio = extBER / baseBER
	}
	out.basePrevented = r1.VictimFlips == 0
	out.extDefeats = r2.VictimFlips > 0
	return out, nil
}

// Attack3 measures the on-time extension attack and its effect on a
// threshold-configured defense.
func Attack3(cfg Config) (Attack3Result, error) {
	cfg = cfg.normalize()
	res := Attack3Result{Reads: attack3Reads}
	for _, mfr := range mfrNames {
		o, err := attack3Mfr(cfg, mfr)
		if err != nil {
			return res, err
		}
		res.OnTimeNs = o.onTimeNs
		if !o.ok {
			continue
		}
		res.Mfrs = append(res.Mfrs, mfr)
		res.BaseHC = append(res.BaseHC, o.baseHC)
		res.ExtHC = append(res.ExtHC, o.extHC)
		res.HCReduction = append(res.HCReduction, 1-o.extHC/o.baseHC)
		res.BERRatio = append(res.BERRatio, o.berRatio)
		res.BaselinePrevented = append(res.BaselinePrevented, o.basePrevented)
		res.ExtendedDefeats = append(res.ExtendedDefeats, o.extDefeats)
	}
	return res, nil
}

// attack3Shard measures one manufacturer's Improvement 3 numbers. The
// on-time info row is always present (the header uses the last
// shard's value, mirroring the serial loop); the result row only when
// the module produced a usable sample.
func attack3Shard(ctx context.Context, cfg Config, mfr string) (*artifact.Artifact, error) {
	cfg = cfg.WithContext(ctx).normalize()
	o, err := attack3Mfr(cfg, mfr)
	if err != nil {
		return nil, err
	}
	a := artifact.New(mfr)
	a.AddRow(mfrKey(mfr)+"/info").Set("on_time_ns", o.onTimeNs)
	if o.ok {
		a.AddRow(mfrKey(mfr)+"/res").
			Set("base_hc", o.baseHC).Set("ext_hc", o.extHC).
			Set("reduction", 1-o.extHC/o.baseHC).Set("ber_ratio", o.berRatio).
			SetInt("base_prevented", boolInt(o.basePrevented)).
			SetInt("ext_defeats", boolInt(o.extDefeats))
	}
	return a, nil
}

// renderAttack3 prints Improvement 3 from the artifact.
func renderAttack3(out io.Writer, a *artifact.Artifact) error {
	if len(a.Shards) == 0 {
		return fmt.Errorf("exp: atk3 artifact has no shards")
	}
	info := a.Row(mfrKey(a.Shards[len(a.Shards)-1]) + "/info")
	if info == nil {
		return fmt.Errorf("exp: atk3 artifact missing on-time info row")
	}
	fmt.Fprintf(out, "%d READs per activation → tAggOn %.1f ns\n", attack3Reads, info.V("on_time_ns"))
	w := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "Mfr\tbase HCfirst\textended HCfirst\treduction\tBER ratio\tbaseline stopped\textended defeats defense")
	for _, mfr := range a.Shards {
		r := a.Row(mfrKey(mfr) + "/res")
		if r == nil {
			continue
		}
		fmt.Fprintf(w, "%s\t%.0f\t%.0f\t%s\t%.1fx\t%v\t%v\n",
			mfr, r.V("base_hc"), r.V("ext_hc"), pct(r.V("reduction")), r.V("ber_ratio"),
			r.Int("base_prevented") != 0, r.Int("ext_defeats") != 0)
	}
	return w.Flush()
}
