package exp

import (
	"bytes"
	"context"
	"sort"
	"testing"

	"rowhammer/internal/campaign"
)

// TestFleetKindsRegistered: every experiment is a valid campaign kind,
// resolvable back to its experiment.
func TestFleetKindsRegistered(t *testing.T) {
	for _, e := range All() {
		kind := FleetKind(e.ID)
		if !campaign.ValidKind(kind) {
			t.Errorf("experiment %s: kind %s not registered", e.ID, kind)
		}
		got := FleetExperiment(kind)
		if got == nil || got.ID != e.ID {
			t.Errorf("FleetExperiment(%s) = %v, want %s", kind, got, e.ID)
		}
	}
	if FleetExperiment(campaign.KindHCFirst) != nil {
		t.Error("measurement kind resolved to an experiment")
	}
	if FleetExperiment(FleetKind("nosuch")) != nil {
		t.Error("unknown experiment kind resolved")
	}
}

// TestFleetSpecIdentity: the campaign identity covers the experiment
// ID and its artifact schema version, so a checkpoint written under a
// different experiment — or an older artifact layout — cannot resume.
func TestFleetSpecIdentity(t *testing.T) {
	cfg := tinyConfig()
	e := *ByID("fig5")
	base := FleetSpec(e, cfg)
	if base.Kind != "exp:fig5" {
		t.Fatalf("kind = %s", base.Kind)
	}
	if got, want := len(campaign.Expand(base)), len(e.Shards); got != want {
		t.Fatalf("jobs = %d, want one per shard (%d)", got, want)
	}
	bumped := e
	bumped.Schema++
	if FleetSpec(bumped, cfg).IdentityHash() == base.IdentityHash() {
		t.Error("schema bump did not change campaign identity")
	}
	other := *ByID("fig4")
	if FleetSpec(other, cfg).IdentityHash() == base.IdentityHash() {
		t.Error("different experiments share a campaign identity")
	}
	scaled := cfg
	scaled.Scale.Hammers *= 2
	if FleetSpec(e, scaled).IdentityHash() == base.IdentityHash() {
		t.Error("scale change did not change campaign identity")
	}
}

// runFleetCampaign runs one experiment campaign in-process and merges
// the records.
func runFleetCampaign(t *testing.T, e Experiment, cfg Config, opts campaign.Options) (*campaign.Result, []byte) {
	t.Helper()
	spec := FleetSpec(e, cfg)
	if opts.Runner == nil {
		opts.Runner = FleetRunner(cfg)
	}
	res, err := campaign.Run(context.Background(), spec, opts)
	if err != nil {
		t.Fatalf("campaign.Run: %v", err)
	}
	a, err := MergeFleet(e, res.Records)
	if err != nil {
		t.Fatalf("MergeFleet: %v", err)
	}
	buf, err := a.Encode()
	if err != nil {
		t.Fatal(err)
	}
	return res, buf
}

// TestFleetCampaignBitIdentical: running an experiment through the
// campaign engine publishes byte-for-byte the artifact ComputeAll
// produces — the contract that makes rhfleet -exp and rhchar
// interchangeable.
func TestFleetCampaignBitIdentical(t *testing.T) {
	cfg := tinyConfig()
	e := *ByID("fig5")
	direct, err := e.ComputeAll(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	want, err := direct.Encode()
	if err != nil {
		t.Fatal(err)
	}
	_, got := runFleetCampaign(t, e, cfg, campaign.Options{})
	if !bytes.Equal(want, got) {
		t.Error("fleet artifact differs from ComputeAll artifact")
	}
}

// TestFleetCampaignResumeBitIdentical interrupts an experiment
// campaign partway (drain after the first finished job), resumes from
// the partial records, and requires the merged artifact to be
// bit-identical to the uninterrupted run — checkpointed fragments must
// survive the round trip verbatim.
func TestFleetCampaignResumeBitIdentical(t *testing.T) {
	cfg := tinyConfig()
	e := *ByID("fig5")
	_, want := runFleetCampaign(t, e, cfg, campaign.Options{})

	// First leg: serial workers, drain as soon as one record lands.
	serial := cfg
	serial.Workers = 1
	spec := FleetSpec(e, serial)
	drain := make(chan struct{})
	var once bool
	partial, err := campaign.Run(context.Background(), spec, campaign.Options{
		Runner: FleetRunner(serial),
		Drain:  drain,
		Progress: func(done, total int, rec campaign.Record) {
			if !once {
				once = true
				close(drain)
			}
		},
	})
	if err != campaign.ErrDrained {
		t.Fatalf("first leg: err = %v, want ErrDrained", err)
	}
	if len(partial.Records) == 0 || len(partial.Records) == len(e.Shards) {
		t.Fatalf("first leg finished %d of %d shards; want a strict subset", len(partial.Records), len(e.Shards))
	}

	// Round-trip the partial records through checkpoint encode/decode
	// so the resumed fragments are the bytes a real checkpoint carries.
	var ckpt bytes.Buffer
	for _, key := range sortedRecordKeys(partial.Records) {
		if err := campaign.WriteRecord(&ckpt, partial.Records[key]); err != nil {
			t.Fatal(err)
		}
	}
	resumed, err := campaign.ReadCheckpoint(&ckpt)
	if err != nil {
		t.Fatal(err)
	}

	res, got := runFleetCampaign(t, e, cfg, campaign.Options{Done: resumed})
	if res.Skipped != len(resumed) {
		t.Errorf("resume adopted %d records, want %d", res.Skipped, len(resumed))
	}
	if !bytes.Equal(want, got) {
		t.Error("resumed fleet artifact differs from uninterrupted run")
	}
}

func sortedRecordKeys(records map[string]campaign.Record) []string {
	keys := make([]string, 0, len(records))
	for k := range records {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
