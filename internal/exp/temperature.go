package exp

import (
	"context"
	"fmt"
	"text/tabwriter"

	rh "rowhammer"
	"rowhammer/internal/stats"
)

// wcdp finds a module's worst-case data pattern on a small victim
// sample (§4.2), used by every characterization experiment.
func wcdp(t *rh.Tester, cfg Config) (rh.PatternKind, error) {
	cfg = cfg.normalize()
	victims := sampleRows(cfg, 3)
	if len(victims) == 0 {
		return rh.PatCheckered, fmt.Errorf("exp: no victim rows available")
	}
	s, err := t.SurveyPatterns(cfg.Ctx, 0, victims, cfg.Scale.Hammers)
	if err != nil {
		return rh.PatCheckered, err
	}
	return s.Best, nil
}

// tempSweepRows is the per-module victim budget of temperature sweeps.
const tempSweepRows = 24

// runTempSweeps sweeps every module of a manufacturer across the
// study temperatures.
func runTempSweeps(cfg Config, mfr string) ([]*rh.TempSweepResult, error) {
	bs, err := benches(cfg, mfr)
	if err != nil {
		return nil, err
	}
	rows := sampleRows(cfg, tempSweepRows)
	var out []*rh.TempSweepResult
	for _, b := range bs {
		t := rh.NewTester(b)
		pat, err := wcdp(t, cfg)
		if err != nil {
			return nil, err
		}
		sweep, err := t.TemperatureSweepCtx(cfg.Ctx, rh.TempSweepConfig{
			Bank:    0,
			Victims: rows,
			// 2x the BER hammer count: the paper picks 150K as "high
			// enough to provide a large number of bit flips in all
			// modules"; the steep-tailed simulated Mfr B needs the
			// doubling for dense per-cell statistics at test scale.
			Hammers:     2 * cfg.Scale.Hammers,
			Pattern:     pat,
			Repetitions: cfg.Scale.Repetitions,
		})
		if err != nil {
			return nil, err
		}
		out = append(out, sweep)
	}
	return out, nil
}

// mergeClusters sums per-module cluster matrices.
func mergeClusters(sweeps []*rh.TempSweepResult) *rh.TempClusterMatrix {
	var merged *rh.TempClusterMatrix
	for _, s := range sweeps {
		m := s.ClusterByRange()
		if merged == nil {
			merged = m
			continue
		}
		for hi := range m.Counts {
			for lo := range m.Counts[hi] {
				merged.Counts[hi][lo] += m.Counts[hi][lo]
			}
		}
		merged.NoGap += m.NoGap
		merged.OneGap += m.OneGap
		merged.MoreGap += m.MoreGap
		merged.Total += m.Total
	}
	if merged == nil {
		merged = &rh.TempClusterMatrix{Temps: rh.StudyTemps()}
	}
	return merged
}

// Table3Result holds the per-manufacturer no-gap fractions.
type Table3Result struct {
	Mfrs      []string
	NoGapFrac []float64
}

// Table3 measures the fraction of vulnerable cells that flip at every
// temperature point within their vulnerable range.
func Table3(cfg Config) (Table3Result, error) {
	cfg = cfg.normalize()
	var res Table3Result
	fracs, err := mapMfrs(cfg, func(mfr string) (float64, error) {
		sweeps, err := runTempSweeps(cfg, mfr)
		if err != nil {
			return 0, err
		}
		return mergeClusters(sweeps).NoGapFraction(), nil
	})
	if err != nil {
		return res, err
	}
	res.Mfrs = mfrNames
	res.NoGapFrac = fracs
	return res, nil
}

// RunTable3 prints Table 3.
func RunTable3(ctx context.Context, cfg Config) error {
	cfg = cfg.WithContext(ctx)
	cfg = cfg.normalize()
	res, err := Table3(cfg)
	if err != nil {
		return err
	}
	w := tabwriter.NewWriter(cfg.Out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "Mfr. A\tMfr. B\tMfr. C\tMfr. D")
	for i := range res.Mfrs {
		fmt.Fprintf(w, "%s", pct(res.NoGapFrac[i]))
		if i < len(res.Mfrs)-1 {
			fmt.Fprint(w, "\t")
		}
	}
	fmt.Fprintln(w)
	return w.Flush()
}

// Fig3Result holds the per-manufacturer cluster matrices.
type Fig3Result struct {
	Mfrs     []string
	Matrices []*rh.TempClusterMatrix
}

// Fig3 clusters vulnerable cells by their vulnerable temperature
// range.
func Fig3(cfg Config) (Fig3Result, error) {
	cfg = cfg.normalize()
	var res Fig3Result
	mats, err := mapMfrs(cfg, func(mfr string) (*rh.TempClusterMatrix, error) {
		sweeps, err := runTempSweeps(cfg, mfr)
		if err != nil {
			return nil, err
		}
		return mergeClusters(sweeps), nil
	})
	if err != nil {
		return res, err
	}
	res.Mfrs = mfrNames
	res.Matrices = mats
	return res, nil
}

// RunFig3 prints the Fig. 3 matrices.
func RunFig3(ctx context.Context, cfg Config) error {
	cfg = cfg.WithContext(ctx)
	cfg = cfg.normalize()
	res, err := Fig3(cfg)
	if err != nil {
		return err
	}
	for i, mfr := range res.Mfrs {
		m := res.Matrices[i]
		fmt.Fprintf(cfg.Out, "Mfr. %s (vulnerable cells: %d)\n", mfr, m.Total)
		w := tabwriter.NewWriter(cfg.Out, 2, 4, 1, ' ', 0)
		fmt.Fprint(w, "Hi\\Lo")
		for _, t := range m.Temps {
			fmt.Fprintf(w, "\t%.0f", t)
		}
		fmt.Fprintln(w)
		for hi := range m.Temps {
			fmt.Fprintf(w, "%.0f", m.Temps[hi])
			for lo := 0; lo <= hi; lo++ {
				fmt.Fprintf(w, "\t%s", pct(m.Fraction(lo, hi)))
			}
			fmt.Fprintln(w)
		}
		if err := w.Flush(); err != nil {
			return err
		}
		fmt.Fprintf(cfg.Out, "No gaps: %s  1 gap: %s  full range: %s  single temp: %s\n\n",
			pct(m.NoGapFraction()), pct(float64(m.OneGap)/float64(max1(m.Total))),
			pct(m.FullRangeFraction()), pct(m.NarrowRangeFraction()))
	}
	return nil
}

func max1(n int) int {
	if n < 1 {
		return 1
	}
	return n
}

// Fig4Point is BER change at one temperature for one victim distance.
type Fig4Point struct {
	TempC      float64
	Distance   int // 0 or ±2
	MeanChange float64
	CI95       float64
}

// Fig4Result holds per-manufacturer BER-vs-temperature series.
type Fig4Result struct {
	Mfrs   []string
	Series [][]Fig4Point
}

// Fig4 measures the percentage change in BER with temperature
// relative to the mean BER at 50 °C, per victim distance.
func Fig4(cfg Config) (Fig4Result, error) {
	cfg = cfg.normalize()
	var res Fig4Result
	perMfr, err := mapMfrs(cfg, func(mfr string) ([]Fig4Point, error) {
		sweeps, err := runTempSweeps(cfg, mfr)
		if err != nil {
			return nil, err
		}
		var series []Fig4Point
		for _, dist := range []int{-2, 0, 2} {
			count := func(hr rh.HammerResult) float64 {
				switch dist {
				case -2:
					return float64(hr.SingleLo.Count())
				case 2:
					return float64(hr.SingleHi.Count())
				default:
					return float64(hr.Victim.Count())
				}
			}
			// Baseline: mean across all samples at 50 °C.
			var base []float64
			for _, s := range sweeps {
				for _, hr := range s.Flips[0] {
					base = append(base, count(hr))
				}
			}
			mean50 := stats.Mean(base)
			if mean50 == 0 {
				continue
			}
			temps := sweeps[0].Temps
			for ti, temp := range temps {
				var changes []float64
				for _, s := range sweeps {
					for _, hr := range s.Flips[ti] {
						changes = append(changes, count(hr)/mean50-1)
					}
				}
				m, ci := stats.MeanCI95(changes)
				series = append(series, Fig4Point{TempC: temp, Distance: dist, MeanChange: m, CI95: ci})
			}
		}
		return series, nil
	})
	if err != nil {
		return res, err
	}
	res.Mfrs = mfrNames
	res.Series = perMfr
	return res, nil
}

// TrendAt returns the mean BER change at the given temperature for
// distance 0, or 0 when absent.
func (r Fig4Result) TrendAt(mfrIdx int, tempC float64) float64 {
	for _, p := range r.Series[mfrIdx] {
		if p.Distance == 0 && p.TempC == tempC {
			return p.MeanChange
		}
	}
	return 0
}

// RunFig4 prints the Fig. 4 series.
func RunFig4(ctx context.Context, cfg Config) error {
	cfg = cfg.WithContext(ctx)
	cfg = cfg.normalize()
	res, err := Fig4(cfg)
	if err != nil {
		return err
	}
	for i, mfr := range res.Mfrs {
		fmt.Fprintf(cfg.Out, "Mfr. %s\n", mfr)
		w := tabwriter.NewWriter(cfg.Out, 2, 4, 2, ' ', 0)
		fmt.Fprintln(w, "dist\ttemp\tBER change\t95% CI")
		for _, p := range res.Series[i] {
			fmt.Fprintf(w, "%+d\t%.0f\t%+.1f%%\t±%.1f%%\n", p.Distance, p.TempC, 100*p.MeanChange, 100*p.CI95)
		}
		if err := w.Flush(); err != nil {
			return err
		}
		fmt.Fprintln(cfg.Out)
	}
	return nil
}

// fig5Rows is the per-module victim budget of the Fig. 5 measurement.
const fig5Rows = 16

// Fig5Result holds the HCfirst-change distributions.
type Fig5Result struct {
	Mfrs []string
	// Change55/Change90[mfr] are per-row fractional HCfirst changes
	// going 50→55 °C and 50→90 °C.
	Change55, Change90 [][]float64
	// Crossing percentiles (share of rows with *increased* HCfirst).
	Cross55, Cross90 []float64
	// MagnitudeRatio is cumulative |change| at 90 over 55 (Obsv. 7).
	MagnitudeRatio []float64
}

// Fig5 measures the distribution of HCfirst change when temperature
// rises from 50 °C to 55 °C and to 90 °C.
func Fig5(cfg Config) (Fig5Result, error) {
	cfg = cfg.normalize()
	var res Fig5Result
	temps := []float64{50, 55, 90}
	type changes struct{ c55, c90 []float64 }
	perMfr, err := mapMfrs(cfg, func(mfr string) (changes, error) {
		bs, err := benches(cfg, mfr)
		if err != nil {
			return changes{}, err
		}
		rows := sampleRows(cfg, fig5Rows)
		var c changes
		for _, b := range bs {
			t := rh.NewTester(b)
			pat, err := wcdp(t, cfg)
			if err != nil {
				return c, err
			}
			hc, err := t.HCFirstAtTemps(0, rows, temps, rh.HCFirstConfig{
				Pattern:    pat,
				MaxHammers: cfg.Scale.MaxHammers,
			}, cfg.Scale.Repetitions)
			if err != nil {
				return c, err
			}
			for ri := range rows {
				base := hc[0][ri]
				if base <= 0 {
					continue
				}
				if hc[1][ri] > 0 {
					c.c55 = append(c.c55, float64(hc[1][ri]-base)/float64(base))
				}
				if hc[2][ri] > 0 {
					c.c90 = append(c.c90, float64(hc[2][ri]-base)/float64(base))
				}
			}
		}
		return c, nil
	})
	if err != nil {
		return res, err
	}
	res.Mfrs = mfrNames
	for _, c := range perMfr {
		res.Change55 = append(res.Change55, c.c55)
		res.Change90 = append(res.Change90, c.c90)
		res.Cross55 = append(res.Cross55, stats.CrossingPercentile(c.c55))
		res.Cross90 = append(res.Cross90, stats.CrossingPercentile(c.c90))
		ratio := 0.0
		if m55 := stats.CumulativeMagnitude(c.c55); m55 > 0 {
			// Normalize per-row so unequal sample sizes don't skew.
			ratio = (stats.CumulativeMagnitude(c.c90) / float64(max1(len(c.c90)))) /
				(m55 / float64(max1(len(c.c55))))
		}
		res.MagnitudeRatio = append(res.MagnitudeRatio, ratio)
	}
	return res, nil
}

// RunFig5 prints the Fig. 5 summary.
func RunFig5(ctx context.Context, cfg Config) error {
	cfg = cfg.WithContext(ctx)
	cfg = cfg.normalize()
	res, err := Fig5(cfg)
	if err != nil {
		return err
	}
	w := tabwriter.NewWriter(cfg.Out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "Mfr\tP(HC↑) 50→55\tP(HC↑) 50→90\t|Δ| ratio 90/55\tmedian Δ55\tmedian Δ90")
	for i, mfr := range res.Mfrs {
		med := func(xs []float64) float64 {
			if len(xs) == 0 {
				return 0
			}
			return stats.Median(xs)
		}
		fmt.Fprintf(w, "%s\tP%.0f\tP%.0f\t%.1fx\t%+.1f%%\t%+.1f%%\n",
			mfr, res.Cross55[i], res.Cross90[i], res.MagnitudeRatio[i],
			100*med(res.Change55[i]), 100*med(res.Change90[i]))
	}
	return w.Flush()
}
