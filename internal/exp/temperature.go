package exp

import (
	"context"
	"fmt"
	"io"
	"text/tabwriter"

	rh "rowhammer"
	"rowhammer/internal/artifact"
	"rowhammer/internal/stats"
)

// wcdp finds a module's worst-case data pattern on a small victim
// sample (§4.2), used by every characterization experiment.
func wcdp(t *rh.Tester, cfg Config) (rh.PatternKind, error) {
	cfg = cfg.normalize()
	victims := sampleRows(cfg, 3)
	if len(victims) == 0 {
		return rh.PatCheckered, fmt.Errorf("exp: no victim rows available")
	}
	s, err := t.SurveyPatterns(cfg.Ctx, 0, victims, cfg.Scale.Hammers)
	if err != nil {
		return rh.PatCheckered, err
	}
	return s.Best, nil
}

// tempSweepRows is the per-module victim budget of temperature sweeps.
const tempSweepRows = 24

// runTempSweeps sweeps every module of a manufacturer across the
// study temperatures.
func runTempSweeps(cfg Config, mfr string) ([]*rh.TempSweepResult, error) {
	bs, err := benches(cfg, mfr)
	if err != nil {
		return nil, err
	}
	rows := sampleRows(cfg, tempSweepRows)
	var out []*rh.TempSweepResult
	for _, b := range bs {
		t := rh.NewTester(b)
		pat, err := wcdp(t, cfg)
		if err != nil {
			return nil, err
		}
		sweep, err := t.TemperatureSweepCtx(cfg.Ctx, rh.TempSweepConfig{
			Bank:    0,
			Victims: rows,
			// 2x the BER hammer count: the paper picks 150K as "high
			// enough to provide a large number of bit flips in all
			// modules"; the steep-tailed simulated Mfr B needs the
			// doubling for dense per-cell statistics at test scale.
			Hammers:     2 * cfg.Scale.Hammers,
			Pattern:     pat,
			Repetitions: cfg.Scale.Repetitions,
		})
		if err != nil {
			return nil, err
		}
		out = append(out, sweep)
	}
	return out, nil
}

// mergeClusters sums per-module cluster matrices.
func mergeClusters(sweeps []*rh.TempSweepResult) *rh.TempClusterMatrix {
	var merged *rh.TempClusterMatrix
	for _, s := range sweeps {
		m := s.ClusterByRange()
		if merged == nil {
			merged = m
			continue
		}
		for hi := range m.Counts {
			for lo := range m.Counts[hi] {
				merged.Counts[hi][lo] += m.Counts[hi][lo]
			}
		}
		merged.NoGap += m.NoGap
		merged.OneGap += m.OneGap
		merged.MoreGap += m.MoreGap
		merged.Total += m.Total
	}
	if merged == nil {
		merged = &rh.TempClusterMatrix{Temps: rh.StudyTemps()}
	}
	return merged
}

// clusterMatrix runs the temperature sweeps of one manufacturer and
// merges them into its cluster matrix — the shared compute of Table 3
// and Fig. 3.
func clusterMatrix(cfg Config, mfr string) (*rh.TempClusterMatrix, error) {
	sweeps, err := runTempSweeps(cfg, mfr)
	if err != nil {
		return nil, err
	}
	return mergeClusters(sweeps), nil
}

// Table3Result holds the per-manufacturer no-gap fractions.
type Table3Result struct {
	Mfrs      []string
	NoGapFrac []float64
}

// Table3 measures the fraction of vulnerable cells that flip at every
// temperature point within their vulnerable range.
func Table3(cfg Config) (Table3Result, error) {
	cfg = cfg.normalize()
	var res Table3Result
	fracs, err := mapMfrs(cfg, func(mfr string) (float64, error) {
		m, err := clusterMatrix(cfg, mfr)
		if err != nil {
			return 0, err
		}
		return m.NoGapFraction(), nil
	})
	if err != nil {
		return res, err
	}
	res.Mfrs = mfrNames
	res.NoGapFrac = fracs
	return res, nil
}

// table3Shard measures one manufacturer's Table 3 statistic.
func table3Shard(ctx context.Context, cfg Config, mfr string) (*artifact.Artifact, error) {
	cfg = cfg.WithContext(ctx).normalize()
	m, err := clusterMatrix(cfg, mfr)
	if err != nil {
		return nil, err
	}
	a := artifact.New(mfr)
	a.AddRow(mfrKey(mfr)).Set("no_gap_frac", m.NoGapFraction())
	return a, nil
}

// renderTable3 prints Table 3 from the artifact.
func renderTable3(out io.Writer, a *artifact.Artifact) error {
	w := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "Mfr. A\tMfr. B\tMfr. C\tMfr. D")
	for i, mfr := range a.Shards {
		r := a.Row(mfrKey(mfr))
		if r == nil {
			return fmt.Errorf("exp: table3 artifact missing shard %s", mfr)
		}
		fmt.Fprintf(w, "%s", pct(r.V("no_gap_frac")))
		if i < len(a.Shards)-1 {
			fmt.Fprint(w, "\t")
		}
	}
	fmt.Fprintln(w)
	return w.Flush()
}

// Fig3Result holds the per-manufacturer cluster matrices.
type Fig3Result struct {
	Mfrs     []string
	Matrices []*rh.TempClusterMatrix
}

// Fig3 clusters vulnerable cells by their vulnerable temperature
// range.
func Fig3(cfg Config) (Fig3Result, error) {
	cfg = cfg.normalize()
	var res Fig3Result
	mats, err := mapMfrs(cfg, func(mfr string) (*rh.TempClusterMatrix, error) {
		return clusterMatrix(cfg, mfr)
	})
	if err != nil {
		return res, err
	}
	res.Mfrs = mfrNames
	res.Matrices = mats
	return res, nil
}

// clusterToArtifact stores a cluster matrix under the shard's key
// prefix: gap counts as row values, temps and per-hi count rows as
// series.
func clusterToArtifact(a *artifact.Artifact, key string, m *rh.TempClusterMatrix) {
	a.AddRow(key).
		SetInt("total", int64(m.Total)).SetInt("no_gap", int64(m.NoGap)).
		SetInt("one_gap", int64(m.OneGap)).SetInt("more_gap", int64(m.MoreGap))
	a.AddSeries(key+"/temps", append([]float64(nil), m.Temps...))
	for hi := range m.Counts {
		row := make([]float64, len(m.Counts[hi]))
		for lo, n := range m.Counts[hi] {
			row[lo] = float64(n)
		}
		a.AddSeries(fmt.Sprintf("%s/counts/hi=%02d", key, hi), row)
	}
}

// clusterFromArtifact rebuilds the cluster matrix stored under key.
func clusterFromArtifact(a *artifact.Artifact, key string) (*rh.TempClusterMatrix, error) {
	r := a.Row(key)
	temps := a.SeriesPoints(key + "/temps")
	if r == nil || temps == nil {
		return nil, fmt.Errorf("exp: artifact missing cluster matrix %q", key)
	}
	m := &rh.TempClusterMatrix{
		Temps:   temps,
		NoGap:   int(r.Int("no_gap")),
		OneGap:  int(r.Int("one_gap")),
		MoreGap: int(r.Int("more_gap")),
		Total:   int(r.Int("total")),
	}
	m.Counts = make([][]int, len(temps))
	for hi := range m.Counts {
		pts := a.SeriesPoints(fmt.Sprintf("%s/counts/hi=%02d", key, hi))
		if pts == nil {
			return nil, fmt.Errorf("exp: artifact missing counts row %d of %q", hi, key)
		}
		m.Counts[hi] = make([]int, len(pts))
		for lo, v := range pts {
			m.Counts[hi][lo] = int(v)
		}
	}
	return m, nil
}

// fig3Shard measures one manufacturer's cluster matrix.
func fig3Shard(ctx context.Context, cfg Config, mfr string) (*artifact.Artifact, error) {
	cfg = cfg.WithContext(ctx).normalize()
	m, err := clusterMatrix(cfg, mfr)
	if err != nil {
		return nil, err
	}
	a := artifact.New(mfr)
	clusterToArtifact(a, mfrKey(mfr), m)
	return a, nil
}

// renderFig3 prints the Fig. 3 matrices from the artifact.
func renderFig3(out io.Writer, a *artifact.Artifact) error {
	for _, mfr := range a.Shards {
		m, err := clusterFromArtifact(a, mfrKey(mfr))
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "Mfr. %s (vulnerable cells: %d)\n", mfr, m.Total)
		w := tabwriter.NewWriter(out, 2, 4, 1, ' ', 0)
		fmt.Fprint(w, "Hi\\Lo")
		for _, t := range m.Temps {
			fmt.Fprintf(w, "\t%.0f", t)
		}
		fmt.Fprintln(w)
		for hi := range m.Temps {
			fmt.Fprintf(w, "%.0f", m.Temps[hi])
			for lo := 0; lo <= hi; lo++ {
				fmt.Fprintf(w, "\t%s", pct(m.Fraction(lo, hi)))
			}
			fmt.Fprintln(w)
		}
		if err := w.Flush(); err != nil {
			return err
		}
		fmt.Fprintf(out, "No gaps: %s  1 gap: %s  full range: %s  single temp: %s\n\n",
			pct(m.NoGapFraction()), pct(float64(m.OneGap)/float64(max1(m.Total))),
			pct(m.FullRangeFraction()), pct(m.NarrowRangeFraction()))
	}
	return nil
}

func max1(n int) int {
	if n < 1 {
		return 1
	}
	return n
}

// Fig4Point is BER change at one temperature for one victim distance.
type Fig4Point struct {
	TempC      float64
	Distance   int // 0 or ±2
	MeanChange float64
	CI95       float64
}

// Fig4Result holds per-manufacturer BER-vs-temperature series.
type Fig4Result struct {
	Mfrs   []string
	Series [][]Fig4Point
}

// fig4Mfr measures one manufacturer's BER-change series.
func fig4Mfr(cfg Config, mfr string) ([]Fig4Point, error) {
	sweeps, err := runTempSweeps(cfg, mfr)
	if err != nil {
		return nil, err
	}
	var series []Fig4Point
	for _, dist := range []int{-2, 0, 2} {
		count := func(hr rh.HammerResult) float64 {
			switch dist {
			case -2:
				return float64(hr.SingleLo.Count())
			case 2:
				return float64(hr.SingleHi.Count())
			default:
				return float64(hr.Victim.Count())
			}
		}
		// Baseline: mean across all samples at 50 °C.
		var base []float64
		for _, s := range sweeps {
			for _, hr := range s.Flips[0] {
				base = append(base, count(hr))
			}
		}
		mean50 := stats.Mean(base)
		if mean50 == 0 {
			continue
		}
		temps := sweeps[0].Temps
		for ti, temp := range temps {
			var changes []float64
			for _, s := range sweeps {
				for _, hr := range s.Flips[ti] {
					changes = append(changes, count(hr)/mean50-1)
				}
			}
			m, ci := stats.MeanCI95(changes)
			series = append(series, Fig4Point{TempC: temp, Distance: dist, MeanChange: m, CI95: ci})
		}
	}
	return series, nil
}

// Fig4 measures the percentage change in BER with temperature
// relative to the mean BER at 50 °C, per victim distance.
func Fig4(cfg Config) (Fig4Result, error) {
	cfg = cfg.normalize()
	var res Fig4Result
	perMfr, err := mapMfrs(cfg, func(mfr string) ([]Fig4Point, error) {
		return fig4Mfr(cfg, mfr)
	})
	if err != nil {
		return res, err
	}
	res.Mfrs = mfrNames
	res.Series = perMfr
	return res, nil
}

// trendAt returns the mean BER change at the given temperature for
// distance 0, or 0 when absent.
func trendAt(points []Fig4Point, tempC float64) float64 {
	for _, p := range points {
		if p.Distance == 0 && p.TempC == tempC {
			return p.MeanChange
		}
	}
	return 0
}

// TrendAt returns the mean BER change at the given temperature for
// distance 0, or 0 when absent.
func (r Fig4Result) TrendAt(mfrIdx int, tempC float64) float64 {
	return trendAt(r.Series[mfrIdx], tempC)
}

// fig4Shard measures one manufacturer's Fig. 4 series.
func fig4Shard(ctx context.Context, cfg Config, mfr string) (*artifact.Artifact, error) {
	cfg = cfg.WithContext(ctx).normalize()
	points, err := fig4Mfr(cfg, mfr)
	if err != nil {
		return nil, err
	}
	a := artifact.New(mfr)
	for i, p := range points {
		a.AddRow(fmt.Sprintf("%s/p=%03d", mfrKey(mfr), i)).
			SetInt("dist", int64(p.Distance)).Set("temp_c", p.TempC).
			Set("mean_change", p.MeanChange).Set("ci95", p.CI95)
	}
	return a, nil
}

// renderFig4 prints the Fig. 4 series from the artifact.
func renderFig4(out io.Writer, a *artifact.Artifact) error {
	for _, mfr := range a.Shards {
		fmt.Fprintf(out, "Mfr. %s\n", mfr)
		w := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
		fmt.Fprintln(w, "dist\ttemp\tBER change\t95% CI")
		for _, p := range a.RowsWithPrefix(mfrKey(mfr) + "/p=") {
			fmt.Fprintf(w, "%+d\t%.0f\t%+.1f%%\t±%.1f%%\n",
				p.Int("dist"), p.V("temp_c"), 100*p.V("mean_change"), 100*p.V("ci95"))
		}
		if err := w.Flush(); err != nil {
			return err
		}
		fmt.Fprintln(out)
	}
	return nil
}

// fig5Rows is the per-module victim budget of the Fig. 5 measurement.
const fig5Rows = 16

// Fig5Result holds the HCfirst-change distributions.
type Fig5Result struct {
	Mfrs []string
	// Change55/Change90[mfr] are per-row fractional HCfirst changes
	// going 50→55 °C and 50→90 °C.
	Change55, Change90 [][]float64
	// Crossing percentiles (share of rows with *increased* HCfirst).
	Cross55, Cross90 []float64
	// MagnitudeRatio is cumulative |change| at 90 over 55 (Obsv. 7).
	MagnitudeRatio []float64
}

// fig5Changes holds one manufacturer's per-row HCfirst changes.
type fig5Changes struct{ c55, c90 []float64 }

// fig5Mfr measures one manufacturer's HCfirst-change distributions.
func fig5Mfr(cfg Config, mfr string) (fig5Changes, error) {
	temps := []float64{50, 55, 90}
	bs, err := benches(cfg, mfr)
	if err != nil {
		return fig5Changes{}, err
	}
	rows := sampleRows(cfg, fig5Rows)
	var c fig5Changes
	for _, b := range bs {
		t := rh.NewTester(b)
		pat, err := wcdp(t, cfg)
		if err != nil {
			return c, err
		}
		hc, err := t.HCFirstAtTemps(0, rows, temps, rh.HCFirstConfig{
			Pattern:    pat,
			MaxHammers: cfg.Scale.MaxHammers,
		}, cfg.Scale.Repetitions)
		if err != nil {
			return c, err
		}
		for ri := range rows {
			base := hc[0][ri]
			if base <= 0 {
				continue
			}
			if hc[1][ri] > 0 {
				c.c55 = append(c.c55, float64(hc[1][ri]-base)/float64(base))
			}
			if hc[2][ri] > 0 {
				c.c90 = append(c.c90, float64(hc[2][ri]-base)/float64(base))
			}
		}
	}
	return c, nil
}

// fig5Summary derives the crossing percentiles and magnitude ratio of
// one manufacturer's change distributions.
func fig5Summary(c fig5Changes) (cross55, cross90, ratio float64) {
	cross55 = stats.CrossingPercentile(c.c55)
	cross90 = stats.CrossingPercentile(c.c90)
	if m55 := stats.CumulativeMagnitude(c.c55); m55 > 0 {
		// Normalize per-row so unequal sample sizes don't skew.
		ratio = (stats.CumulativeMagnitude(c.c90) / float64(max1(len(c.c90)))) /
			(m55 / float64(max1(len(c.c55))))
	}
	return cross55, cross90, ratio
}

// Fig5 measures the distribution of HCfirst change when temperature
// rises from 50 °C to 55 °C and to 90 °C.
func Fig5(cfg Config) (Fig5Result, error) {
	cfg = cfg.normalize()
	var res Fig5Result
	perMfr, err := mapMfrs(cfg, func(mfr string) (fig5Changes, error) {
		return fig5Mfr(cfg, mfr)
	})
	if err != nil {
		return res, err
	}
	res.Mfrs = mfrNames
	for _, c := range perMfr {
		cross55, cross90, ratio := fig5Summary(c)
		res.Change55 = append(res.Change55, c.c55)
		res.Change90 = append(res.Change90, c.c90)
		res.Cross55 = append(res.Cross55, cross55)
		res.Cross90 = append(res.Cross90, cross90)
		res.MagnitudeRatio = append(res.MagnitudeRatio, ratio)
	}
	return res, nil
}

// fig5Shard measures one manufacturer's Fig. 5 distributions.
func fig5Shard(ctx context.Context, cfg Config, mfr string) (*artifact.Artifact, error) {
	cfg = cfg.WithContext(ctx).normalize()
	c, err := fig5Mfr(cfg, mfr)
	if err != nil {
		return nil, err
	}
	cross55, cross90, ratio := fig5Summary(c)
	a := artifact.New(mfr)
	a.AddRow(mfrKey(mfr)).
		Set("cross55", cross55).Set("cross90", cross90).Set("magnitude_ratio", ratio)
	a.AddSeries(mfrKey(mfr)+"/change55", c.c55)
	a.AddSeries(mfrKey(mfr)+"/change90", c.c90)
	return a, nil
}

// renderFig5 prints the Fig. 5 summary from the artifact.
func renderFig5(out io.Writer, a *artifact.Artifact) error {
	w := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "Mfr\tP(HC↑) 50→55\tP(HC↑) 50→90\t|Δ| ratio 90/55\tmedian Δ55\tmedian Δ90")
	for _, mfr := range a.Shards {
		r := a.Row(mfrKey(mfr))
		if r == nil {
			return fmt.Errorf("exp: fig5 artifact missing shard %s", mfr)
		}
		med := func(xs []float64) float64 {
			if len(xs) == 0 {
				return 0
			}
			return stats.Median(xs)
		}
		fmt.Fprintf(w, "%s\tP%.0f\tP%.0f\t%.1fx\t%+.1f%%\t%+.1f%%\n",
			mfr, r.V("cross55"), r.V("cross90"), r.V("magnitude_ratio"),
			100*med(a.SeriesPoints(mfrKey(mfr)+"/change55")),
			100*med(a.SeriesPoints(mfrKey(mfr)+"/change90")))
	}
	return w.Flush()
}
