package exp

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// -update regenerates the golden files from the current code:
//
//	go test ./internal/exp/ -run Golden -update
var updateGolden = flag.Bool("update", false, "rewrite golden files")

func goldenPath(name string) string {
	return filepath.Join("testdata", "golden", name)
}

// compareGolden asserts got matches the committed golden byte for
// byte. On mismatch the actual bytes are written next to the golden
// with a .actual suffix so CI can upload them for inspection.
func compareGolden(t *testing.T, path string, got []byte) {
	t.Helper()
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run with -update to create): %v", err)
	}
	if bytes.Equal(want, got) {
		return
	}
	actual := path + ".actual"
	if err := os.WriteFile(actual, got, 0o644); err != nil {
		t.Fatal(err)
	}
	t.Errorf("output differs from golden %s (actual bytes in %s)\n--- want %d bytes, got %d bytes\nfirst divergence at byte %d",
		path, actual, len(want), len(got), firstDiff(want, got))
}

func firstDiff(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	return n
}

// TestGoldenText locks every experiment's rendered text at tiny scale:
// the refactor onto the artifact pipeline must keep output
// byte-identical to the pre-refactor printers.
func TestGoldenText(t *testing.T) {
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			t.Parallel()
			var buf bytes.Buffer
			cfg := tinyConfig()
			cfg.Out = &buf
			if err := e.Run(context.Background(), cfg); err != nil {
				t.Fatal(err)
			}
			compareGolden(t, goldenPath(e.ID+".txt"), buf.Bytes())
		})
	}
}

// TestGoldenTextWorkerInvariance re-renders a parallel (mapMfrs-based)
// experiment at several worker counts: results must not depend on
// scheduling.
func TestGoldenTextWorkerInvariance(t *testing.T) {
	for _, workers := range []int{1, 3} {
		workers := workers
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			t.Parallel()
			var buf bytes.Buffer
			cfg := tinyConfig()
			cfg.Out = &buf
			cfg.Workers = workers
			e := ByID("fig5")
			if err := e.Run(context.Background(), cfg); err != nil {
				t.Fatal(err)
			}
			compareGolden(t, goldenPath("fig5.txt"), buf.Bytes())
		})
	}
}
