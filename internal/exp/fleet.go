package exp

import (
	"context"
	"fmt"
	"strings"

	"rowhammer/internal/artifact"
	"rowhammer/internal/campaign"
	"rowhammer/internal/rng"
)

// Fleet bridge: every registered experiment is also a campaign kind,
// so the fleet engine's worker pools, retry/backoff, circuit breaker,
// fault injection, watchdog and checkpoint/resume apply to paper
// experiments exactly as they do to the per-module measurement cores.
// One campaign job is one experiment shard; the shard's artifact
// fragment rides in Record.Artifact verbatim, and MergeFleet
// reassembles the full artifact bit-identically to ComputeAll.

// fleetKindPrefix namespaces experiment kinds away from the built-in
// measurement kinds (hcfirst, ber, ...).
const fleetKindPrefix = "exp:"

// FleetKind returns the campaign kind of an experiment ID.
func FleetKind(id string) string { return fleetKindPrefix + id }

// FleetExperiment resolves a campaign kind back to its experiment,
// or nil when the kind is not an experiment kind.
func FleetExperiment(kind string) *Experiment {
	id := strings.TrimPrefix(kind, fleetKindPrefix)
	if id == kind {
		return nil
	}
	return ByID(id)
}

func init() {
	for _, e := range All() {
		campaign.RegisterKind(FleetKind(e.ID))
	}
}

// FleetSpec lowers an experiment and config into a campaign spec whose
// jobs are the experiment's shards (one module instance per shard).
// The measurement identity — scale, geometry and the experiment's
// artifact schema version — is folded into the fingerprint, so a
// checkpoint written under a different scale or an older artifact
// layout cannot silently resume.
func FleetSpec(e Experiment, cfg Config) campaign.Spec {
	cfg = cfg.normalize()
	spec := campaign.Spec{
		Kind:          FleetKind(e.ID),
		Mfrs:          append([]string(nil), e.Shards...),
		ModulesPerMfr: 1,
		Seed:          cfg.Seed,
		Workers:       cfg.Workers,
		Fingerprint: fmt.Sprintf("%016x", rng.HashString(fmt.Sprintf(
			"scale:%+v|geom:%+v|artifact-schema:%d", cfg.Scale, cfg.Geometry, e.Schema))),
	}
	if n, err := spec.Normalize(); err == nil {
		spec = n
	}
	return spec
}

// FleetRunner returns the campaign runner that executes experiment
// shards: each job resolves its kind's experiment, computes the
// shard's fragment under the campaign context (so timeouts, watchdog
// cancellation and drain all reach the measurement loops), and embeds
// the fragment's compact encoding in the record.
func FleetRunner(cfg Config) campaign.Runner {
	return func(ctx context.Context, spec campaign.Spec, job campaign.Job) (campaign.Record, error) {
		e := FleetExperiment(job.Kind)
		if e == nil {
			return campaign.Record{}, fmt.Errorf("exp: job kind %q is not a registered experiment kind", job.Kind)
		}
		run := cfg
		run.Seed = spec.Seed
		frag, err := e.Compute(ctx, run, job.Mfr)
		if err != nil {
			return campaign.Record{}, err
		}
		buf, err := frag.EncodeCompact()
		if err != nil {
			return campaign.Record{}, err
		}
		return campaign.Record{Seed: spec.Seed, Artifact: buf}, nil
	}
}

// MergeFleet reassembles an experiment's full artifact from campaign
// records. Fragment bytes come back through Record.Artifact exactly as
// written, and artifact.Merge orders fragments canonically, so the
// result is bit-identical to ComputeAll on the same config no matter
// what order — or how many interrupted resumes — produced the records.
func MergeFleet(e Experiment, records map[string]campaign.Record) (*artifact.Artifact, error) {
	frags := make([]*artifact.Artifact, 0, len(records))
	for _, rec := range records {
		if rec.Failed() {
			return nil, fmt.Errorf("exp: shard %s failed: %s", rec.Key, rec.Err)
		}
		if len(rec.Artifact) == 0 {
			return nil, fmt.Errorf("exp: record %s carries no artifact fragment", rec.Key)
		}
		f, err := artifact.Decode(rec.Artifact)
		if err != nil {
			return nil, fmt.Errorf("exp: record %s: %w", rec.Key, err)
		}
		frags = append(frags, f)
	}
	if len(frags) != len(e.Shards) {
		return nil, fmt.Errorf("exp: %s artifact incomplete: %d of %d shards recorded", e.ID, len(frags), len(e.Shards))
	}
	return artifact.Merge(e.ID, e.Schema, frags...)
}
