package exp

import (
	"context"
	"fmt"
	"testing"
)

// TestGoldenArtifact locks every experiment's JSON artifact at tiny
// scale: the artifact is the contract between Compute and Render (and
// between rhchar and rhfleet), so its bytes must be as stable as the
// rendered text.
func TestGoldenArtifact(t *testing.T) {
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			t.Parallel()
			a, err := e.ComputeAll(context.Background(), tinyConfig())
			if err != nil {
				t.Fatal(err)
			}
			buf, err := a.Encode()
			if err != nil {
				t.Fatal(err)
			}
			compareGolden(t, goldenPath(e.ID+".json"), buf)
		})
	}
}

// TestGoldenArtifactWorkerInvariance re-computes a parallel experiment
// at several worker counts: artifact bytes must not depend on shard
// scheduling or completion order.
func TestGoldenArtifactWorkerInvariance(t *testing.T) {
	for _, workers := range []int{1, 3} {
		workers := workers
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			t.Parallel()
			cfg := tinyConfig()
			cfg.Workers = workers
			a, err := ByID("fig5").ComputeAll(context.Background(), cfg)
			if err != nil {
				t.Fatal(err)
			}
			buf, err := a.Encode()
			if err != nil {
				t.Fatal(err)
			}
			compareGolden(t, goldenPath("fig5.json"), buf)
		})
	}
}
