package exp

import (
	"context"
	"fmt"
	"text/tabwriter"

	rh "rowhammer"
)

// WCDPResult records which Table 1 data pattern is the worst case for
// each module — the §4.2 methodology step the characterization
// experiments rely on.
type WCDPResult struct {
	Mfrs []string
	// Patterns[mfr][module] is the winning pattern.
	Patterns [][]rh.PatternKind
	// Gain[mfr] is flips under the WCDP over flips under the weakest
	// pattern (add-one smoothed: sparse modules can have zero-flip
	// weakest patterns).
	Gain []float64
}

// WCDP surveys the worst-case data pattern across modules.
func WCDP(cfg Config) (WCDPResult, error) {
	cfg = cfg.normalize()
	var res WCDPResult
	type mfrOut struct {
		pats []rh.PatternKind
		gain float64
	}
	perMfr, err := mapMfrs(cfg, func(mfr string) (mfrOut, error) {
		bs, err := benches(cfg, mfr)
		if err != nil {
			return mfrOut{}, err
		}
		victims := sampleRows(cfg, 6)
		var out mfrOut
		bestSum, worstSum := 0, 0
		for _, b := range bs {
			t := rh.NewTester(b)
			s, err := t.SurveyPatterns(cfg.Ctx, 0, victims, cfg.Scale.Hammers)
			if err != nil {
				return out, err
			}
			out.pats = append(out.pats, s.Best)
			bestSum += s.BestFlips
			worstSum += s.WorstFlips
		}
		out.gain = float64(bestSum+1) / float64(worstSum+1)
		return out, nil
	})
	if err != nil {
		return res, err
	}
	res.Mfrs = mfrNames
	for _, o := range perMfr {
		res.Patterns = append(res.Patterns, o.pats)
		res.Gain = append(res.Gain, o.gain)
	}
	return res, nil
}

// RunWCDP prints the pattern survey.
func RunWCDP(ctx context.Context, cfg Config) error {
	cfg = cfg.WithContext(ctx)
	cfg = cfg.normalize()
	res, err := WCDP(cfg)
	if err != nil {
		return err
	}
	w := tabwriter.NewWriter(cfg.Out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "Mfr\tper-module WCDP\tbest/worst pattern flip ratio")
	for i, mfr := range res.Mfrs {
		names := ""
		for mi, p := range res.Patterns[i] {
			if mi > 0 {
				names += ", "
			}
			names += p.String()
		}
		fmt.Fprintf(w, "%s\t%s\t%.1fx\n", mfr, names, res.Gain[i])
	}
	return w.Flush()
}
