package exp

import (
	"context"
	"fmt"
	"io"
	"text/tabwriter"

	rh "rowhammer"
	"rowhammer/internal/artifact"
)

// WCDPResult records which Table 1 data pattern is the worst case for
// each module — the §4.2 methodology step the characterization
// experiments rely on.
type WCDPResult struct {
	Mfrs []string
	// Patterns[mfr][module] is the winning pattern.
	Patterns [][]rh.PatternKind
	// Gain[mfr] is flips under the WCDP over flips under the weakest
	// pattern (add-one smoothed: sparse modules can have zero-flip
	// weakest patterns).
	Gain []float64
}

// wcdpMfr surveys one manufacturer's modules for their worst-case
// pattern.
func wcdpMfr(cfg Config, mfr string) ([]rh.PatternKind, float64, error) {
	bs, err := benches(cfg, mfr)
	if err != nil {
		return nil, 0, err
	}
	victims := sampleRows(cfg, 6)
	var pats []rh.PatternKind
	bestSum, worstSum := 0, 0
	for _, b := range bs {
		t := rh.NewTester(b)
		s, err := t.SurveyPatterns(cfg.Ctx, 0, victims, cfg.Scale.Hammers)
		if err != nil {
			return nil, 0, err
		}
		pats = append(pats, s.Best)
		bestSum += s.BestFlips
		worstSum += s.WorstFlips
	}
	return pats, float64(bestSum+1) / float64(worstSum+1), nil
}

// WCDP surveys the worst-case data pattern across modules.
func WCDP(cfg Config) (WCDPResult, error) {
	cfg = cfg.normalize()
	var res WCDPResult
	type mfrOut struct {
		pats []rh.PatternKind
		gain float64
	}
	perMfr, err := mapMfrs(cfg, func(mfr string) (mfrOut, error) {
		pats, gain, err := wcdpMfr(cfg, mfr)
		return mfrOut{pats: pats, gain: gain}, err
	})
	if err != nil {
		return res, err
	}
	res.Mfrs = mfrNames
	for _, o := range perMfr {
		res.Patterns = append(res.Patterns, o.pats)
		res.Gain = append(res.Gain, o.gain)
	}
	return res, nil
}

// wcdpShard surveys one manufacturer's worst-case patterns.
func wcdpShard(ctx context.Context, cfg Config, mfr string) (*artifact.Artifact, error) {
	cfg = cfg.WithContext(ctx).normalize()
	pats, gain, err := wcdpMfr(cfg, mfr)
	if err != nil {
		return nil, err
	}
	a := artifact.New(mfr)
	a.AddRow(mfrKey(mfr)).Set("gain", gain)
	pts := make([]float64, len(pats))
	for i, p := range pats {
		pts[i] = float64(p)
	}
	a.AddSeries(mfrKey(mfr)+"/patterns", pts)
	return a, nil
}

// renderWCDP prints the pattern survey from the artifact.
func renderWCDP(out io.Writer, a *artifact.Artifact) error {
	w := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "Mfr\tper-module WCDP\tbest/worst pattern flip ratio")
	for _, mfr := range a.Shards {
		r := a.Row(mfrKey(mfr))
		if r == nil {
			return fmt.Errorf("exp: wcdp artifact missing shard %s", mfr)
		}
		names := ""
		for mi, v := range a.SeriesPoints(mfrKey(mfr) + "/patterns") {
			if mi > 0 {
				names += ", "
			}
			names += rh.PatternKind(int(v)).String()
		}
		fmt.Fprintf(w, "%s\t%s\t%.1fx\n", mfr, names, r.V("gain"))
	}
	return w.Flush()
}
