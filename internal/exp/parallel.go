package exp

import (
	"rowhammer/internal/pool"
)

// mapMfrs runs f for every manufacturer on the config's shared worker
// pool (each builds its own module benches, so there is no shared
// mutable state) and returns the results in paper order. It honors the
// config's context for cancellation, and every manufacturer's error is
// reported — failures are joined with errors.Join rather than the
// first one masking the rest.
func mapMfrs[T any](cfg Config, f func(mfr string) (T, error)) ([]T, error) {
	cfg = cfg.normalize()
	return pool.Map(cfg.Ctx, cfg.Workers, len(mfrNames), func(i int) (T, error) {
		return f(mfrNames[i])
	})
}
