package exp

import "sync"

// mapMfrs runs f for every manufacturer concurrently (each builds its
// own module benches, so there is no shared mutable state) and returns
// the results in paper order. The first error wins.
func mapMfrs[T any](f func(mfr string) (T, error)) ([]T, error) {
	out := make([]T, len(mfrNames))
	errs := make([]error, len(mfrNames))
	var wg sync.WaitGroup
	for i, mfr := range mfrNames {
		wg.Add(1)
		go func(i int, mfr string) {
			defer wg.Done()
			out[i], errs[i] = f(mfr)
		}(i, mfr)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}
