package exp

import "testing"

func TestDDR3Observation2(t *testing.T) {
	res, err := DDR3(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Mfrs) != 3 {
		t.Fatalf("mfrs = %v", res.Mfrs)
	}
	for i, mfr := range res.Mfrs {
		if res.Vulnerable[i] == 0 {
			t.Fatalf("mfr %s DDR3: no vulnerable cells", mfr)
		}
		if res.FullRangeFrac[i] <= 0 {
			t.Errorf("mfr %s DDR3: no full-range cells (Obsv. 2 should hold on DDR3)", mfr)
		}
		if res.NoGapFrac[i] < 0.9 {
			t.Errorf("mfr %s DDR3: no-gap fraction %.2f", mfr, res.NoGapFrac[i])
		}
	}
}

func TestManySidedDefeatsTRR(t *testing.T) {
	res, err := ManySided(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.DoubleFlips != 0 {
		t.Errorf("TRR failed to stop the double-sided attack: %d flips", res.DoubleFlips)
	}
	if res.TRRRefreshesDouble == 0 {
		t.Error("TRR never fired against the double-sided attack")
	}
	if res.ManyFlips == 0 {
		t.Error("many-sided attack should defeat the 4-entry TRR sampler")
	}
}

func TestInterferenceChecklist(t *testing.T) {
	res, err := Interference(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if ms := float64(res.HCfirstDuration) / 1e9; ms >= 64 {
		t.Errorf("hammer test %f ms exceeds the 64 ms methodology budget", ms)
	}
	if res.RetentionFlips != 0 {
		t.Errorf("retention interfered: %d flips", res.RetentionFlips)
	}
	if res.TRRActivity != 0 {
		t.Errorf("TRR fired without REF: %d", res.TRRActivity)
	}
	if res.ECCVisibleFlips >= res.ECCRawFlips {
		t.Errorf("on-die ECC should mask flips: %d raw vs %d visible", res.ECCRawFlips, res.ECCVisibleFlips)
	}
}

func TestDefCompareScorecard(t *testing.T) {
	res, err := DefCompare(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 {
		t.Fatalf("expected 5 mechanisms, got %d", len(res.Rows))
	}
	byName := map[string]DefCompareRow{}
	for _, r := range res.Rows {
		byName[r.Name] = r
		if r.AttackFlips != 0 {
			t.Errorf("%s: attack succeeded with %d flips", r.Name, r.AttackFlips)
		}
	}
	// PARA pays benign bandwidth; deterministic trackers don't.
	if byName["PARA"].BenignRefreshRate <= byName["Graphene"].BenignRefreshRate {
		t.Error("PARA should out-refresh Graphene on benign traffic")
	}
	if byName["Graphene"].BenignRefreshRate != 0 || byName["TWiCe"].BenignRefreshRate != 0 {
		t.Error("deterministic trackers refreshed benign traffic")
	}
	// BlockHammer defends by throttling, not refreshing.
	if byName["BlockHammer"].ThrottleMs <= 0 {
		t.Error("BlockHammer never throttled the attack")
	}
	if byName["BlockHammer"].AttackRefreshes != 0 {
		t.Error("BlockHammer should not refresh")
	}
	// RFM+SilverBullet refreshes via the on-die path.
	if byName["RFM+SilverBullet"].AttackRefreshes == 0 {
		t.Error("RFM+SilverBullet never refreshed under attack")
	}
}

func TestWCDPSurvey(t *testing.T) {
	res, err := WCDP(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i, mfr := range res.Mfrs {
		if len(res.Patterns[i]) == 0 {
			t.Fatalf("mfr %s: no modules surveyed", mfr)
		}
		// Pattern choice must matter: the WCDP flips strictly more
		// than the weakest pattern (the coupling mechanism).
		if res.Gain[i] <= 1 {
			t.Errorf("mfr %s: WCDP gain %.2f, want > 1", mfr, res.Gain[i])
		}
	}
}
