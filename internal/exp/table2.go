package exp

import (
	"context"
	"fmt"
	"io"
	"text/tabwriter"

	rh "rowhammer"
	"rowhammer/internal/artifact"
)

// Table2Result is the tested-module inventory (Tables 2 and 4).
type Table2Result struct {
	DDR4Chips, DDR3Chips     int
	DDR4Modules, DDR3Modules int
	Rows                     []Table2Row
}

// Table2Row is one inventory line.
type Table2Row struct {
	Mfr      string
	Type     string
	ChipID   string
	ModuleID string
	Freq     int
	DateCode string
	Density  string
	DieRev   string
	Org      string
	Modules  int
	Chips    int
}

// Table2 assembles the inventory from the manufacturer profiles.
func Table2() Table2Result {
	var res Table2Result
	for _, p := range rh.Profiles() {
		for _, m := range p.Modules {
			res.Rows = append(res.Rows, Table2Row{
				Mfr: p.Name, Type: m.Type, ChipID: m.ChipID, ModuleID: m.ModuleID,
				Freq: m.FreqMTs, DateCode: m.DateCode, Density: m.Density,
				DieRev: m.DieRev, Org: m.Org, Modules: m.NumModules, Chips: m.NumChips,
			})
			switch m.Type {
			case "DDR4":
				res.DDR4Chips += m.NumChips
				res.DDR4Modules += m.NumModules
			case "DDR3":
				res.DDR3Chips += m.NumChips
				res.DDR3Modules += m.NumModules
			}
		}
	}
	return res
}

// table2Shard builds the inventory artifact (single shard: the
// inventory is pure metadata, no measurement to decompose).
func table2Shard(ctx context.Context, cfg Config, shard string) (*artifact.Artifact, error) {
	res := Table2()
	a := artifact.New(shard)
	for i, r := range res.Rows {
		a.AddRow(fmt.Sprintf("row=%02d", i)).
			Tag("mfr", r.Mfr).Tag("type", r.Type).Tag("chip", r.ChipID).
			Tag("module", r.ModuleID).Tag("date", r.DateCode).Tag("density", r.Density).
			Tag("die", r.DieRev).Tag("org", r.Org).
			SetInt("freq_mts", int64(r.Freq)).SetInt("modules", int64(r.Modules)).SetInt("chips", int64(r.Chips))
	}
	a.AddRow("totals").
		SetInt("ddr4_chips", int64(res.DDR4Chips)).SetInt("ddr4_modules", int64(res.DDR4Modules)).
		SetInt("ddr3_chips", int64(res.DDR3Chips)).SetInt("ddr3_modules", int64(res.DDR3Modules))
	return a, nil
}

// renderTable2 prints Tables 2/4 from the artifact.
func renderTable2(out io.Writer, a *artifact.Artifact) error {
	w := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "Mfr\tType\tChip\tModule\tMT/s\tDate\tDensity\tDie\tOrg\t#Mod\t#Chips")
	for _, r := range a.RowsWithPrefix("row=") {
		fmt.Fprintf(w, "%s\t%s\t%s\t%s\t%d\t%s\t%s\t%s\t%s\t%d\t%d\n",
			r.Label("mfr"), r.Label("type"), r.Label("chip"), r.Label("module"),
			r.Int("freq_mts"), r.Label("date"), r.Label("density"), r.Label("die"),
			r.Label("org"), r.Int("modules"), r.Int("chips"))
	}
	if err := w.Flush(); err != nil {
		return err
	}
	t := a.Row("totals")
	if t == nil {
		return fmt.Errorf("exp: table2 artifact missing totals row")
	}
	fmt.Fprintf(out, "Total: %d DDR4 chips (%d modules), %d DDR3 chips (%d modules)\n",
		t.Int("ddr4_chips"), t.Int("ddr4_modules"), t.Int("ddr3_chips"), t.Int("ddr3_modules"))
	return nil
}
