package exp

import (
	"context"
	"fmt"
	"text/tabwriter"

	rh "rowhammer"
)

// Table2Result is the tested-module inventory (Tables 2 and 4).
type Table2Result struct {
	DDR4Chips, DDR3Chips     int
	DDR4Modules, DDR3Modules int
	Rows                     []Table2Row
}

// Table2Row is one inventory line.
type Table2Row struct {
	Mfr      string
	Type     string
	ChipID   string
	ModuleID string
	Freq     int
	DateCode string
	Density  string
	DieRev   string
	Org      string
	Modules  int
	Chips    int
}

// Table2 assembles the inventory from the manufacturer profiles.
func Table2() Table2Result {
	var res Table2Result
	for _, p := range rh.Profiles() {
		for _, m := range p.Modules {
			res.Rows = append(res.Rows, Table2Row{
				Mfr: p.Name, Type: m.Type, ChipID: m.ChipID, ModuleID: m.ModuleID,
				Freq: m.FreqMTs, DateCode: m.DateCode, Density: m.Density,
				DieRev: m.DieRev, Org: m.Org, Modules: m.NumModules, Chips: m.NumChips,
			})
			switch m.Type {
			case "DDR4":
				res.DDR4Chips += m.NumChips
				res.DDR4Modules += m.NumModules
			case "DDR3":
				res.DDR3Chips += m.NumChips
				res.DDR3Modules += m.NumModules
			}
		}
	}
	return res
}

// RunTable2 prints Tables 2/4.
func RunTable2(ctx context.Context, cfg Config) error {
	cfg = cfg.WithContext(ctx)
	cfg = cfg.normalize()
	res := Table2()
	w := tabwriter.NewWriter(cfg.Out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "Mfr\tType\tChip\tModule\tMT/s\tDate\tDensity\tDie\tOrg\t#Mod\t#Chips")
	for _, r := range res.Rows {
		fmt.Fprintf(w, "%s\t%s\t%s\t%s\t%d\t%s\t%s\t%s\t%s\t%d\t%d\n",
			r.Mfr, r.Type, r.ChipID, r.ModuleID, r.Freq, r.DateCode, r.Density, r.DieRev, r.Org, r.Modules, r.Chips)
	}
	if err := w.Flush(); err != nil {
		return err
	}
	fmt.Fprintf(cfg.Out, "Total: %d DDR4 chips (%d modules), %d DDR3 chips (%d modules)\n",
		res.DDR4Chips, res.DDR4Modules, res.DDR3Chips, res.DDR3Modules)
	return nil
}
