package exp

import (
	"context"
	"fmt"
	"io"
	"text/tabwriter"

	rh "rowhammer"
	"rowhammer/internal/artifact"
	"rowhammer/internal/stats"
)

// fig11Rows is the per-module victim budget for the row-variation
// profile.
const fig11Rows = 40

// Fig11Result holds per-manufacturer row HCfirst profiles.
type Fig11Result struct {
	Mfrs []string
	// Curves[mfr][module] is the descending HCfirst curve.
	Curves [][][]float64
	// Summary aggregates Obsv. 12's ratios across all modules of a
	// manufacturer.
	Summary []rh.RowVariationSummary
}

// fig11Mfr profiles one manufacturer's row HCfirst distribution.
func fig11Mfr(cfg Config, mfr string) ([][]float64, rh.RowVariationSummary, error) {
	bs, err := benches(cfg, mfr)
	if err != nil {
		return nil, rh.RowVariationSummary{}, err
	}
	rows := sampleRows(cfg, fig11Rows)
	var curves [][]float64
	var all []rh.RowHC
	for _, b := range bs {
		t := rh.NewTester(b)
		pat, err := wcdp(t, cfg)
		if err != nil {
			return nil, rh.RowVariationSummary{}, err
		}
		profile, err := t.RowHCFirstProfileCtx(cfg.Ctx, 0, rows, rh.HCFirstConfig{
			Pattern: pat, MaxHammers: cfg.Scale.MaxHammers,
		}, cfg.Scale.Repetitions)
		if err != nil {
			return nil, rh.RowVariationSummary{}, err
		}
		curves = append(curves, rh.VulnerableHCs(profile))
		all = append(all, profile...)
	}
	summary, err := rh.SummarizeRowVariation(all)
	return curves, summary, err
}

// Fig11 measures the distribution of HCfirst across rows.
func Fig11(cfg Config) (Fig11Result, error) {
	cfg = cfg.normalize()
	var res Fig11Result
	type mfrOut struct {
		curves  [][]float64
		summary rh.RowVariationSummary
	}
	perMfr, err := mapMfrs(cfg, func(mfr string) (mfrOut, error) {
		curves, summary, err := fig11Mfr(cfg, mfr)
		return mfrOut{curves: curves, summary: summary}, err
	})
	if err != nil {
		return res, err
	}
	res.Mfrs = mfrNames
	for _, o := range perMfr {
		res.Curves = append(res.Curves, o.curves)
		res.Summary = append(res.Summary, o.summary)
	}
	return res, nil
}

// fig11Shard measures one manufacturer's Fig. 11 profile.
func fig11Shard(ctx context.Context, cfg Config, mfr string) (*artifact.Artifact, error) {
	cfg = cfg.WithContext(ctx).normalize()
	curves, s, err := fig11Mfr(cfg, mfr)
	if err != nil {
		return nil, err
	}
	a := artifact.New(mfr)
	a.AddRow(mfrKey(mfr)).
		Set("min_hc", s.MinHC).Set("ratio_p99", s.RatioP99).
		Set("ratio_p95", s.RatioP95).Set("ratio_p90", s.RatioP90).
		SetInt("vulnerable", int64(s.Vulnerable)).SetInt("modules", int64(len(curves)))
	for mi, curve := range curves {
		a.AddSeries(fmt.Sprintf("%s/curve/m=%02d", mfrKey(mfr), mi), curve)
	}
	return a, nil
}

// renderFig11 prints the Fig. 11 percentile curves and Obsv. 12 ratios.
func renderFig11(out io.Writer, a *artifact.Artifact) error {
	for _, mfr := range a.Shards {
		r := a.Row(mfrKey(mfr))
		if r == nil {
			return fmt.Errorf("exp: fig11 artifact missing shard %s", mfr)
		}
		fmt.Fprintf(out, "Mfr. %s: min HCfirst %.0f; P99/P95/P90 ratios %.1fx/%.1fx/%.1fx (%d vulnerable rows)\n",
			mfr, r.V("min_hc"), r.V("ratio_p99"), r.V("ratio_p95"), r.V("ratio_p90"), r.Int("vulnerable"))
		w := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
		fmt.Fprintln(w, "module\tP1\tP25\tP50\tP75\tP99")
		for mi := 0; mi < int(r.Int("modules")); mi++ {
			curve := a.SeriesPoints(fmt.Sprintf("%s/curve/m=%02d", mfrKey(mfr), mi))
			if len(curve) == 0 {
				continue
			}
			asc := sortedCopy(curve)
			fmt.Fprintf(w, "%s%d\t%.0f\t%.0f\t%.0f\t%.0f\t%.0f\n", mfr, mi,
				stats.Quantile(asc, 0.01), stats.Quantile(asc, 0.25), stats.Quantile(asc, 0.5),
				stats.Quantile(asc, 0.75), stats.Quantile(asc, 0.99))
		}
		if err := w.Flush(); err != nil {
			return err
		}
	}
	return nil
}

// columnGeometry narrows the column space so column statistics are
// dense at test scale (the paper accumulates over 24K rows; we
// accumulate over a few hundred).
func columnGeometry(g rh.Geometry) rh.Geometry {
	g.ColumnsPerRow = 16
	return g
}

// fig12Rows is the victim budget of the column analyses. Column
// statistics need dense flip counts (the paper accumulates over 24K
// rows), so the budget is independent of the scale's per-region row
// count: victims are spread across the whole bank.
const fig12Rows = 96

// fig12HotThreshold is the "hot column" flip-count cutoff (Obsv. 13).
const fig12HotThreshold = 20

// spreadRows selects up to n victim rows spread uniformly across the
// bank, skipping subarray edges.
func spreadRows(g rh.Geometry, n int) []int {
	var rows []int
	step := g.RowsPerBank / (n + 1)
	if step < 1 {
		step = 1
	}
	for r := step; r < g.RowsPerBank && len(rows) < n; r += step {
		if r%g.SubarrayRows == 0 || r%g.SubarrayRows == g.SubarrayRows-1 {
			continue
		}
		rows = append(rows, r)
	}
	return rows
}

// Fig12Result holds per-manufacturer column flip counts.
type Fig12Result struct {
	Mfrs []string
	Acc  []*rh.ColumnAccumulator
	// ZeroFrac and HotFrac summarize Obsv. 13 (hot = >N flips where N
	// scales with the accumulated total).
	ZeroFrac, HotFrac []float64
	HotThreshold      int
}

// fig12Mfr accumulates one manufacturer's per-(chip, column) flips.
// cfg must already carry the narrowed column geometry.
func fig12Mfr(cfg Config, mfr string) (*rh.ColumnAccumulator, error) {
	bs, err := benches(cfg, mfr)
	if err != nil {
		return nil, err
	}
	acc := rh.NewColumnAccumulator(cfg.Geometry)
	rows := spreadRows(cfg.Geometry, fig12Rows)
	for _, b := range bs {
		t := rh.NewTester(b)
		pat, err := wcdp(t, cfg)
		if err != nil {
			return nil, err
		}
		// Calibrate the hammer count so every manufacturer
		// accumulates comparably dense counts (the paper gets
		// density from 24K rows; we compensate with hammers).
		hammers := cfg.Scale.Hammers
		for ; hammers < cfg.Scale.MaxHammers; hammers = min64(2*hammers, cfg.Scale.MaxHammers) {
			probe, err := t.Hammer(rh.HammerConfig{
				Bank: 0, VictimPhys: rows[len(rows)/2], Hammers: hammers, Pattern: pat, Trial: 1,
			})
			if err != nil {
				return nil, err
			}
			if probe.Victim.Count() >= 25 {
				break
			}
		}
		for _, row := range rows {
			hr, err := t.Hammer(rh.HammerConfig{
				Bank: 0, VictimPhys: row, Hammers: hammers, Pattern: pat, Trial: 1,
			})
			if err != nil {
				return nil, err
			}
			acc.Add(hr.Victim)
			acc.Add(hr.SingleLo)
			acc.Add(hr.SingleHi)
		}
	}
	return acc, nil
}

// Fig12 accumulates bit flips per (chip, array column).
func Fig12(cfg Config) (Fig12Result, error) {
	cfg = cfg.normalize()
	cfg.Geometry = columnGeometry(cfg.Geometry)
	res := Fig12Result{HotThreshold: fig12HotThreshold}
	accs, err := mapMfrs(cfg, func(mfr string) (*rh.ColumnAccumulator, error) {
		return fig12Mfr(cfg, mfr)
	})
	if err != nil {
		return res, err
	}
	res.Mfrs = mfrNames
	for _, acc := range accs {
		res.Acc = append(res.Acc, acc)
		res.ZeroFrac = append(res.ZeroFrac, acc.ZeroColumnFraction())
		res.HotFrac = append(res.HotFrac, acc.HotColumnFraction(res.HotThreshold))
	}
	return res, nil
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// fig12Shard measures one manufacturer's column flip summary.
func fig12Shard(ctx context.Context, cfg Config, mfr string) (*artifact.Artifact, error) {
	cfg = cfg.WithContext(ctx).normalize()
	cfg.Geometry = columnGeometry(cfg.Geometry)
	acc, err := fig12Mfr(cfg, mfr)
	if err != nil {
		return nil, err
	}
	maxFlips := 0
	for _, chip := range acc.Counts {
		for _, n := range chip {
			if n > maxFlips {
				maxFlips = n
			}
		}
	}
	a := artifact.New(mfr)
	a.AddRow(mfrKey(mfr)).
		Set("zero_frac", acc.ZeroColumnFraction()).
		Set("hot_frac", acc.HotColumnFraction(fig12HotThreshold)).
		SetInt("max_flips", int64(maxFlips))
	return a, nil
}

// renderFig12 prints the column heatmap summary from the artifact.
func renderFig12(out io.Writer, a *artifact.Artifact) error {
	w := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "Mfr\tzero-flip columns\t>%d-flip columns\tmax column flips\n", fig12HotThreshold)
	for _, mfr := range a.Shards {
		r := a.Row(mfrKey(mfr))
		if r == nil {
			return fmt.Errorf("exp: fig12 artifact missing shard %s", mfr)
		}
		fmt.Fprintf(w, "%s\t%s\t%s\t%d\n", mfr, pct(r.V("zero_frac")), pct(r.V("hot_frac")), r.Int("max_flips"))
	}
	return w.Flush()
}

// Fig13Result holds the column-variation 2-D histograms.
type Fig13Result struct {
	Mfrs []string
	// Hist[mfr][relVulnBucket][cvBucket], 11×11 as in the paper.
	Hist [][][]int
	// ZeroCVFrac is the share of vulnerable columns in the lowest CV
	// bucket (design-dominated); OneCVFrac the share in the saturated
	// top bucket (process-dominated).
	ZeroCVFrac, OneCVFrac []float64
	// MeanCV is the average cross-chip CV over vulnerable columns — a
	// small-sample-robust summary of the design-vs-process split.
	MeanCV []float64
	// ColumnSkew is the mean over chips of the CV of per-column flip
	// counts within the chip: high when a few columns dominate each
	// chip's flips (heavy column-factor variation, Mfr A/C style).
	// Note that CV of *pooled* totals would measure the opposite:
	// pooling chips averages away process-induced variation but keeps
	// design-induced stripes.
	ColumnSkew []float64
}

// fig13Stats holds one manufacturer's Fig. 13 clustering.
type fig13Stats struct {
	hist               [][]int
	zeroFrac, oneFrac  float64
	meanCV, columnSkew float64
}

// fig13FromAcc clusters one accumulator's columns by relative
// vulnerability and cross-chip CV.
func fig13FromAcc(acc *rh.ColumnAccumulator) fig13Stats {
	rel, cv := acc.ColumnVariation()
	// Only vulnerable columns participate (paper plots the
	// population of columns with flips).
	var relV, cvV []float64
	zero, one := 0, 0
	for c := range rel {
		if rel[c] == 0 {
			continue
		}
		relV = append(relV, rel[c])
		cvV = append(cvV, cv[c])
		if cv[c] < 1.0/11 {
			zero++
		}
		if cv[c] >= 10.0/11 {
			one++
		}
	}
	var hist [][]int
	if len(relV) > 0 {
		hist = stats.Histogram2D(cvV, relV, 0, 1.0001, 11, 0, 1.0001, 11)
	}
	// Mean within-chip column skew.
	var chipCVs []float64
	for chip := range acc.Counts {
		var counts []float64
		for _, n := range acc.Counts[chip] {
			counts = append(counts, float64(n))
		}
		chipCVs = append(chipCVs, stats.CV(counts))
	}
	n := float64(max1(len(relV)))
	return fig13Stats{
		hist:       hist,
		zeroFrac:   float64(zero) / n,
		oneFrac:    float64(one) / n,
		meanCV:     stats.Mean(cvV),
		columnSkew: stats.Mean(chipCVs),
	}
}

// Fig13 clusters columns by relative vulnerability and cross-chip CV.
func Fig13(cfg Config) (Fig13Result, error) {
	cfg = cfg.normalize()
	f12, err := Fig12(cfg)
	if err != nil {
		return Fig13Result{}, err
	}
	var res Fig13Result
	for i, mfr := range f12.Mfrs {
		s := fig13FromAcc(f12.Acc[i])
		res.Mfrs = append(res.Mfrs, mfr)
		res.Hist = append(res.Hist, s.hist)
		res.ZeroCVFrac = append(res.ZeroCVFrac, s.zeroFrac)
		res.OneCVFrac = append(res.OneCVFrac, s.oneFrac)
		res.MeanCV = append(res.MeanCV, s.meanCV)
		res.ColumnSkew = append(res.ColumnSkew, s.columnSkew)
	}
	return res, nil
}

// fig13Shard measures one manufacturer's Fig. 13 clustering.
func fig13Shard(ctx context.Context, cfg Config, mfr string) (*artifact.Artifact, error) {
	cfg = cfg.WithContext(ctx).normalize()
	cfg.Geometry = columnGeometry(cfg.Geometry)
	acc, err := fig12Mfr(cfg, mfr)
	if err != nil {
		return nil, err
	}
	s := fig13FromAcc(acc)
	a := artifact.New(mfr)
	a.AddRow(mfrKey(mfr)).
		Set("zero_cv_frac", s.zeroFrac).Set("one_cv_frac", s.oneFrac).
		Set("mean_cv", s.meanCV).Set("column_skew", s.columnSkew)
	for yi, row := range s.hist {
		pts := make([]float64, len(row))
		for xi, n := range row {
			pts[xi] = float64(n)
		}
		a.AddSeries(fmt.Sprintf("%s/hist/y=%02d", mfrKey(mfr), yi), pts)
	}
	return a, nil
}

// renderFig13 prints the Fig. 13 cluster summary from the artifact.
func renderFig13(out io.Writer, a *artifact.Artifact) error {
	w := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "Mfr\tCV≈0 columns (design)\tCV≈1 columns (process)\tmean cross-chip CV\tcolumn skew")
	for _, mfr := range a.Shards {
		r := a.Row(mfrKey(mfr))
		if r == nil {
			return fmt.Errorf("exp: fig13 artifact missing shard %s", mfr)
		}
		fmt.Fprintf(w, "%s\t%s\t%s\t%.2f\t%.2f\n", mfr,
			pct(r.V("zero_cv_frac")), pct(r.V("one_cv_frac")), r.V("mean_cv"), r.V("column_skew"))
	}
	if err := w.Flush(); err != nil {
		return err
	}
	// The paper's 11×11 bucket grid (rows: relative vulnerability,
	// high to low; columns: CV 0→1), in percent of vulnerable columns.
	for _, mfr := range a.Shards {
		var hist [][]float64
		for yi := 0; ; yi++ {
			row := a.SeriesPoints(fmt.Sprintf("%s/hist/y=%02d", mfrKey(mfr), yi))
			if row == nil {
				break
			}
			hist = append(hist, row)
		}
		if hist == nil {
			continue
		}
		total := 0.0
		for _, row := range hist {
			for _, n := range row {
				total += n
			}
		}
		if total == 0 {
			continue
		}
		fmt.Fprintf(out, "\nMfr. %s bucket grid (rows: rel. vulnerability 1.0→0.0; cols: CV 0.0→1.0)\n", mfr)
		hw := tabwriter.NewWriter(out, 2, 4, 1, ' ', 0)
		for yi := len(hist) - 1; yi >= 0; yi-- {
			for xi, n := range hist[yi] {
				if xi > 0 {
					fmt.Fprint(hw, "\t")
				}
				if n == 0 {
					fmt.Fprint(hw, ".")
				} else {
					fmt.Fprintf(hw, "%.1f%%", 100*n/total)
				}
			}
			fmt.Fprintln(hw)
		}
		if err := hw.Flush(); err != nil {
			return err
		}
	}
	return nil
}

// subarrayRowBudget is rows profiled per subarray.
const subarrayRowBudget = 10

// profileSubarrays measures per-subarray HCfirst statistics for every
// module of a manufacturer.
func profileSubarrays(cfg Config, mfr string) ([][]rh.SubarrayStat, error) {
	bs, err := benches(cfg, mfr)
	if err != nil {
		return nil, err
	}
	g := cfg.Geometry
	// Sample rows from every subarray.
	var rows []int
	for sub := 0; sub < g.Subarrays(); sub++ {
		base := sub * g.SubarrayRows
		step := g.SubarrayRows / (subarrayRowBudget + 1)
		if step < 1 {
			step = 1
		}
		for k := 1; k <= subarrayRowBudget; k++ {
			r := base + k*step
			if r >= base+g.SubarrayRows-1 {
				break
			}
			rows = append(rows, r)
		}
	}
	var out [][]rh.SubarrayStat
	for _, b := range bs {
		t := rh.NewTester(b)
		pat, err := wcdp(t, cfg)
		if err != nil {
			return nil, err
		}
		profile, err := t.RowHCFirstProfileCtx(cfg.Ctx, 0, rows, rh.HCFirstConfig{
			Pattern: pat, MaxHammers: cfg.Scale.MaxHammers,
		}, cfg.Scale.Repetitions)
		if err != nil {
			return nil, err
		}
		out = append(out, rh.GroupBySubarray(g, profile))
	}
	return out, nil
}

// Fig14Result holds the subarray min-vs-avg regression per
// manufacturer.
type Fig14Result struct {
	Mfrs []string
	// Subarrays[mfr] pools every module's subarray stats.
	Subarrays [][]rh.SubarrayStat
	Fits      []stats.LinearFit
}

// fig14Mfr pools one manufacturer's subarray stats and fits min vs
// avg.
func fig14Mfr(cfg Config, mfr string) ([]rh.SubarrayStat, stats.LinearFit, error) {
	perModule, err := profileSubarrays(cfg, mfr)
	if err != nil {
		return nil, stats.LinearFit{}, err
	}
	var pooled []rh.SubarrayStat
	for _, subs := range perModule {
		pooled = append(pooled, subs...)
	}
	fit, err := rh.FitSubarrayMinVsAvg(pooled)
	return pooled, fit, err
}

// Fig14 regresses subarray minimum HCfirst on subarray average.
func Fig14(cfg Config) (Fig14Result, error) {
	cfg = cfg.normalize()
	var res Fig14Result
	type mfrOut struct {
		pooled []rh.SubarrayStat
		fit    stats.LinearFit
	}
	perMfr, err := mapMfrs(cfg, func(mfr string) (mfrOut, error) {
		pooled, fit, err := fig14Mfr(cfg, mfr)
		return mfrOut{pooled: pooled, fit: fit}, err
	})
	if err != nil {
		return res, err
	}
	res.Mfrs = mfrNames
	for _, o := range perMfr {
		res.Subarrays = append(res.Subarrays, o.pooled)
		res.Fits = append(res.Fits, o.fit)
	}
	return res, nil
}

// fig14Shard measures one manufacturer's Fig. 14 regression.
func fig14Shard(ctx context.Context, cfg Config, mfr string) (*artifact.Artifact, error) {
	cfg = cfg.WithContext(ctx).normalize()
	_, fit, err := fig14Mfr(cfg, mfr)
	if err != nil {
		return nil, err
	}
	a := artifact.New(mfr)
	a.AddRow(mfrKey(mfr)).
		Set("slope", fit.Slope).Set("intercept", fit.Intercept).
		Set("r2", fit.R2).SetInt("n", int64(fit.N))
	return a, nil
}

// renderFig14 prints the Fig. 14 regression from the artifact.
func renderFig14(out io.Writer, a *artifact.Artifact) error {
	w := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "Mfr\tfit\tR²\tsubarrays")
	for _, mfr := range a.Shards {
		r := a.Row(mfrKey(mfr))
		if r == nil {
			return fmt.Errorf("exp: fig14 artifact missing shard %s", mfr)
		}
		fmt.Fprintf(w, "%s\ty=%.2fx%+.0f\t%.2f\t%d\n", mfr,
			r.V("slope"), r.V("intercept"), r.V("r2"), r.Int("n"))
	}
	return w.Flush()
}

// Fig15Result compares subarray HCfirst distributions within and
// across modules.
type Fig15Result struct {
	Mfrs []string
	// SameModule/DiffModule[mfr] are the pairwise Bhattacharyya
	// coefficients (1.0 = identical distributions).
	SameModule, DiffModule [][]float64
	// P5Same/P5Diff are the 5th percentiles of each population.
	P5Same, P5Diff []float64
}

// fig15Mfr computes one manufacturer's pairwise subarray similarities.
func fig15Mfr(cfg Config, mfr string) (same, diff []float64, err error) {
	perModule, err := profileSubarrays(cfg, mfr)
	if err != nil {
		return nil, nil, err
	}
	for mi, subsA := range perModule {
		for ai := range subsA {
			for bi := ai + 1; bi < len(subsA); bi++ {
				same = append(same, rh.SubarraySimilarity(subsA[ai], subsA[bi]))
			}
			for mj := mi + 1; mj < len(perModule); mj++ {
				for _, sb := range perModule[mj] {
					diff = append(diff, rh.SubarraySimilarity(subsA[ai], sb))
				}
			}
		}
	}
	return same, diff, nil
}

// fig15P5 is the population summary of Fig. 15 (0 when empty).
func fig15P5(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	return stats.Percentile(xs, 5)
}

// Fig15 computes similarity of subarray HCfirst distributions.
func Fig15(cfg Config) (Fig15Result, error) {
	cfg = cfg.normalize()
	var res Fig15Result
	type mfrOut struct{ same, diff []float64 }
	perMfr, err := mapMfrs(cfg, func(mfr string) (mfrOut, error) {
		same, diff, err := fig15Mfr(cfg, mfr)
		return mfrOut{same: same, diff: diff}, err
	})
	if err != nil {
		return res, err
	}
	res.Mfrs = mfrNames
	for _, o := range perMfr {
		res.SameModule = append(res.SameModule, o.same)
		res.DiffModule = append(res.DiffModule, o.diff)
		res.P5Same = append(res.P5Same, fig15P5(o.same))
		res.P5Diff = append(res.P5Diff, fig15P5(o.diff))
	}
	return res, nil
}

// fig15Shard measures one manufacturer's similarity populations.
func fig15Shard(ctx context.Context, cfg Config, mfr string) (*artifact.Artifact, error) {
	cfg = cfg.WithContext(ctx).normalize()
	same, diff, err := fig15Mfr(cfg, mfr)
	if err != nil {
		return nil, err
	}
	a := artifact.New(mfr)
	a.AddSeries(mfrKey(mfr)+"/same", same)
	a.AddSeries(mfrKey(mfr)+"/diff", diff)
	return a, nil
}

// renderFig15 prints the similarity comparison from the artifact.
func renderFig15(out io.Writer, a *artifact.Artifact) error {
	w := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "Mfr\tP5 BDnorm same module\tP5 BDnorm different modules\tpairs (same/diff)")
	for _, mfr := range a.Shards {
		same := a.SeriesPoints(mfrKey(mfr) + "/same")
		diff := a.SeriesPoints(mfrKey(mfr) + "/diff")
		fmt.Fprintf(w, "%s\t%.3f\t%.3f\t%d/%d\n", mfr, fig15P5(same), fig15P5(diff),
			len(same), len(diff))
	}
	return w.Flush()
}
