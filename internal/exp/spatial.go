package exp

import (
	"context"
	"fmt"
	"text/tabwriter"

	rh "rowhammer"
	"rowhammer/internal/stats"
)

// fig11Rows is the per-module victim budget for the row-variation
// profile.
const fig11Rows = 40

// Fig11Result holds per-manufacturer row HCfirst profiles.
type Fig11Result struct {
	Mfrs []string
	// Curves[mfr][module] is the descending HCfirst curve.
	Curves [][][]float64
	// Summary aggregates Obsv. 12's ratios across all modules of a
	// manufacturer.
	Summary []rh.RowVariationSummary
}

// Fig11 measures the distribution of HCfirst across rows.
func Fig11(cfg Config) (Fig11Result, error) {
	cfg = cfg.normalize()
	var res Fig11Result
	type mfrOut struct {
		curves  [][]float64
		summary rh.RowVariationSummary
	}
	perMfr, err := mapMfrs(cfg, func(mfr string) (mfrOut, error) {
		bs, err := benches(cfg, mfr)
		if err != nil {
			return mfrOut{}, err
		}
		rows := sampleRows(cfg, fig11Rows)
		var out mfrOut
		var all []rh.RowHC
		for _, b := range bs {
			t := rh.NewTester(b)
			pat, err := wcdp(t, cfg)
			if err != nil {
				return out, err
			}
			profile, err := t.RowHCFirstProfileCtx(cfg.Ctx, 0, rows, rh.HCFirstConfig{
				Pattern: pat, MaxHammers: cfg.Scale.MaxHammers,
			}, cfg.Scale.Repetitions)
			if err != nil {
				return out, err
			}
			out.curves = append(out.curves, rh.VulnerableHCs(profile))
			all = append(all, profile...)
		}
		out.summary, err = rh.SummarizeRowVariation(all)
		return out, err
	})
	if err != nil {
		return res, err
	}
	res.Mfrs = mfrNames
	for _, o := range perMfr {
		res.Curves = append(res.Curves, o.curves)
		res.Summary = append(res.Summary, o.summary)
	}
	return res, nil
}

// RunFig11 prints the Fig. 11 percentile curves and Obsv. 12 ratios.
func RunFig11(ctx context.Context, cfg Config) error {
	cfg = cfg.WithContext(ctx)
	cfg = cfg.normalize()
	res, err := Fig11(cfg)
	if err != nil {
		return err
	}
	for i, mfr := range res.Mfrs {
		s := res.Summary[i]
		fmt.Fprintf(cfg.Out, "Mfr. %s: min HCfirst %.0f; P99/P95/P90 ratios %.1fx/%.1fx/%.1fx (%d vulnerable rows)\n",
			mfr, s.MinHC, s.RatioP99, s.RatioP95, s.RatioP90, s.Vulnerable)
		w := tabwriter.NewWriter(cfg.Out, 2, 4, 2, ' ', 0)
		fmt.Fprintln(w, "module\tP1\tP25\tP50\tP75\tP99")
		for mi, curve := range res.Curves[i] {
			if len(curve) == 0 {
				continue
			}
			asc := sortedCopy(curve)
			fmt.Fprintf(w, "%s%d\t%.0f\t%.0f\t%.0f\t%.0f\t%.0f\n", mfr, mi,
				stats.Quantile(asc, 0.01), stats.Quantile(asc, 0.25), stats.Quantile(asc, 0.5),
				stats.Quantile(asc, 0.75), stats.Quantile(asc, 0.99))
		}
		if err := w.Flush(); err != nil {
			return err
		}
	}
	return nil
}

// columnGeometry narrows the column space so column statistics are
// dense at test scale (the paper accumulates over 24K rows; we
// accumulate over a few hundred).
func columnGeometry(g rh.Geometry) rh.Geometry {
	g.ColumnsPerRow = 16
	return g
}

// fig12Rows is the victim budget of the column analyses. Column
// statistics need dense flip counts (the paper accumulates over 24K
// rows), so the budget is independent of the scale's per-region row
// count: victims are spread across the whole bank.
const fig12Rows = 96

// spreadRows selects up to n victim rows spread uniformly across the
// bank, skipping subarray edges.
func spreadRows(g rh.Geometry, n int) []int {
	var rows []int
	step := g.RowsPerBank / (n + 1)
	if step < 1 {
		step = 1
	}
	for r := step; r < g.RowsPerBank && len(rows) < n; r += step {
		if r%g.SubarrayRows == 0 || r%g.SubarrayRows == g.SubarrayRows-1 {
			continue
		}
		rows = append(rows, r)
	}
	return rows
}

// Fig12Result holds per-manufacturer column flip counts.
type Fig12Result struct {
	Mfrs []string
	Acc  []*rh.ColumnAccumulator
	// ZeroFrac and HotFrac summarize Obsv. 13 (hot = >N flips where N
	// scales with the accumulated total).
	ZeroFrac, HotFrac []float64
	HotThreshold      int
}

// Fig12 accumulates bit flips per (chip, array column).
func Fig12(cfg Config) (Fig12Result, error) {
	cfg = cfg.normalize()
	cfg.Geometry = columnGeometry(cfg.Geometry)
	res := Fig12Result{HotThreshold: 20}
	accs, err := mapMfrs(cfg, func(mfr string) (*rh.ColumnAccumulator, error) {
		bs, err := benches(cfg, mfr)
		if err != nil {
			return nil, err
		}
		acc := rh.NewColumnAccumulator(cfg.Geometry)
		rows := spreadRows(cfg.Geometry, fig12Rows)
		for _, b := range bs {
			t := rh.NewTester(b)
			pat, err := wcdp(t, cfg)
			if err != nil {
				return nil, err
			}
			// Calibrate the hammer count so every manufacturer
			// accumulates comparably dense counts (the paper gets
			// density from 24K rows; we compensate with hammers).
			hammers := cfg.Scale.Hammers
			for ; hammers < cfg.Scale.MaxHammers; hammers = min64(2*hammers, cfg.Scale.MaxHammers) {
				probe, err := t.Hammer(rh.HammerConfig{
					Bank: 0, VictimPhys: rows[len(rows)/2], Hammers: hammers, Pattern: pat, Trial: 1,
				})
				if err != nil {
					return nil, err
				}
				if probe.Victim.Count() >= 25 {
					break
				}
			}
			for _, row := range rows {
				hr, err := t.Hammer(rh.HammerConfig{
					Bank: 0, VictimPhys: row, Hammers: hammers, Pattern: pat, Trial: 1,
				})
				if err != nil {
					return nil, err
				}
				acc.Add(hr.Victim)
				acc.Add(hr.SingleLo)
				acc.Add(hr.SingleHi)
			}
		}
		return acc, nil
	})
	if err != nil {
		return res, err
	}
	res.Mfrs = mfrNames
	for _, acc := range accs {
		res.Acc = append(res.Acc, acc)
		res.ZeroFrac = append(res.ZeroFrac, acc.ZeroColumnFraction())
		res.HotFrac = append(res.HotFrac, acc.HotColumnFraction(res.HotThreshold))
	}
	return res, nil
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// RunFig12 prints the column heatmap summary.
func RunFig12(ctx context.Context, cfg Config) error {
	cfg = cfg.WithContext(ctx)
	cfg = cfg.normalize()
	res, err := Fig12(cfg)
	if err != nil {
		return err
	}
	w := tabwriter.NewWriter(cfg.Out, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "Mfr\tzero-flip columns\t>%d-flip columns\tmax column flips\n", res.HotThreshold)
	for i, mfr := range res.Mfrs {
		maxFlips := 0
		for _, chip := range res.Acc[i].Counts {
			for _, n := range chip {
				if n > maxFlips {
					maxFlips = n
				}
			}
		}
		fmt.Fprintf(w, "%s\t%s\t%s\t%d\n", mfr, pct(res.ZeroFrac[i]), pct(res.HotFrac[i]), maxFlips)
	}
	return w.Flush()
}

// Fig13Result holds the column-variation 2-D histograms.
type Fig13Result struct {
	Mfrs []string
	// Hist[mfr][relVulnBucket][cvBucket], 11×11 as in the paper.
	Hist [][][]int
	// ZeroCVFrac is the share of vulnerable columns in the lowest CV
	// bucket (design-dominated); OneCVFrac the share in the saturated
	// top bucket (process-dominated).
	ZeroCVFrac, OneCVFrac []float64
	// MeanCV is the average cross-chip CV over vulnerable columns — a
	// small-sample-robust summary of the design-vs-process split.
	MeanCV []float64
	// ColumnSkew is the mean over chips of the CV of per-column flip
	// counts within the chip: high when a few columns dominate each
	// chip's flips (heavy column-factor variation, Mfr A/C style).
	// Note that CV of *pooled* totals would measure the opposite:
	// pooling chips averages away process-induced variation but keeps
	// design-induced stripes.
	ColumnSkew []float64
}

// Fig13 clusters columns by relative vulnerability and cross-chip CV.
func Fig13(cfg Config) (Fig13Result, error) {
	cfg = cfg.normalize()
	f12, err := Fig12(cfg)
	if err != nil {
		return Fig13Result{}, err
	}
	var res Fig13Result
	for i, mfr := range f12.Mfrs {
		rel, cv := f12.Acc[i].ColumnVariation()
		// Only vulnerable columns participate (paper plots the
		// population of columns with flips).
		var relV, cvV []float64
		zero, one := 0, 0
		for c := range rel {
			if rel[c] == 0 {
				continue
			}
			relV = append(relV, rel[c])
			cvV = append(cvV, cv[c])
			if cv[c] < 1.0/11 {
				zero++
			}
			if cv[c] >= 10.0/11 {
				one++
			}
		}
		var hist [][]int
		if len(relV) > 0 {
			hist = stats.Histogram2D(cvV, relV, 0, 1.0001, 11, 0, 1.0001, 11)
		}
		// Mean within-chip column skew.
		var chipCVs []float64
		for chip := range f12.Acc[i].Counts {
			var counts []float64
			for _, n := range f12.Acc[i].Counts[chip] {
				counts = append(counts, float64(n))
			}
			chipCVs = append(chipCVs, stats.CV(counts))
		}
		n := float64(max1(len(relV)))
		res.Mfrs = append(res.Mfrs, mfr)
		res.Hist = append(res.Hist, hist)
		res.ZeroCVFrac = append(res.ZeroCVFrac, float64(zero)/n)
		res.OneCVFrac = append(res.OneCVFrac, float64(one)/n)
		res.MeanCV = append(res.MeanCV, stats.Mean(cvV))
		res.ColumnSkew = append(res.ColumnSkew, stats.Mean(chipCVs))
	}
	return res, nil
}

// RunFig13 prints the Fig. 13 cluster summary.
func RunFig13(ctx context.Context, cfg Config) error {
	cfg = cfg.WithContext(ctx)
	cfg = cfg.normalize()
	res, err := Fig13(cfg)
	if err != nil {
		return err
	}
	w := tabwriter.NewWriter(cfg.Out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "Mfr\tCV≈0 columns (design)\tCV≈1 columns (process)\tmean cross-chip CV\tcolumn skew")
	for i, mfr := range res.Mfrs {
		fmt.Fprintf(w, "%s\t%s\t%s\t%.2f\t%.2f\n", mfr,
			pct(res.ZeroCVFrac[i]), pct(res.OneCVFrac[i]), res.MeanCV[i], res.ColumnSkew[i])
	}
	if err := w.Flush(); err != nil {
		return err
	}
	// The paper's 11×11 bucket grid (rows: relative vulnerability,
	// high to low; columns: CV 0→1), in percent of vulnerable columns.
	for i, mfr := range res.Mfrs {
		if res.Hist[i] == nil {
			continue
		}
		total := 0
		for _, row := range res.Hist[i] {
			for _, n := range row {
				total += n
			}
		}
		if total == 0 {
			continue
		}
		fmt.Fprintf(cfg.Out, "\nMfr. %s bucket grid (rows: rel. vulnerability 1.0→0.0; cols: CV 0.0→1.0)\n", mfr)
		hw := tabwriter.NewWriter(cfg.Out, 2, 4, 1, ' ', 0)
		for yi := len(res.Hist[i]) - 1; yi >= 0; yi-- {
			for xi, n := range res.Hist[i][yi] {
				if xi > 0 {
					fmt.Fprint(hw, "\t")
				}
				if n == 0 {
					fmt.Fprint(hw, ".")
				} else {
					fmt.Fprintf(hw, "%.1f%%", 100*float64(n)/float64(total))
				}
			}
			fmt.Fprintln(hw)
		}
		if err := hw.Flush(); err != nil {
			return err
		}
	}
	return nil
}

// subarrayRowBudget is rows profiled per subarray.
const subarrayRowBudget = 10

// profileSubarrays measures per-subarray HCfirst statistics for every
// module of a manufacturer.
func profileSubarrays(cfg Config, mfr string) ([][]rh.SubarrayStat, error) {
	bs, err := benches(cfg, mfr)
	if err != nil {
		return nil, err
	}
	g := cfg.Geometry
	// Sample rows from every subarray.
	var rows []int
	for sub := 0; sub < g.Subarrays(); sub++ {
		base := sub * g.SubarrayRows
		step := g.SubarrayRows / (subarrayRowBudget + 1)
		if step < 1 {
			step = 1
		}
		for k := 1; k <= subarrayRowBudget; k++ {
			r := base + k*step
			if r >= base+g.SubarrayRows-1 {
				break
			}
			rows = append(rows, r)
		}
	}
	var out [][]rh.SubarrayStat
	for _, b := range bs {
		t := rh.NewTester(b)
		pat, err := wcdp(t, cfg)
		if err != nil {
			return nil, err
		}
		profile, err := t.RowHCFirstProfileCtx(cfg.Ctx, 0, rows, rh.HCFirstConfig{
			Pattern: pat, MaxHammers: cfg.Scale.MaxHammers,
		}, cfg.Scale.Repetitions)
		if err != nil {
			return nil, err
		}
		out = append(out, rh.GroupBySubarray(g, profile))
	}
	return out, nil
}

// Fig14Result holds the subarray min-vs-avg regression per
// manufacturer.
type Fig14Result struct {
	Mfrs []string
	// Subarrays[mfr] pools every module's subarray stats.
	Subarrays [][]rh.SubarrayStat
	Fits      []stats.LinearFit
}

// Fig14 regresses subarray minimum HCfirst on subarray average.
func Fig14(cfg Config) (Fig14Result, error) {
	cfg = cfg.normalize()
	var res Fig14Result
	type mfrOut struct {
		pooled []rh.SubarrayStat
		fit    stats.LinearFit
	}
	perMfr, err := mapMfrs(cfg, func(mfr string) (mfrOut, error) {
		perModule, err := profileSubarrays(cfg, mfr)
		if err != nil {
			return mfrOut{}, err
		}
		var out mfrOut
		for _, subs := range perModule {
			out.pooled = append(out.pooled, subs...)
		}
		out.fit, err = rh.FitSubarrayMinVsAvg(out.pooled)
		return out, err
	})
	if err != nil {
		return res, err
	}
	res.Mfrs = mfrNames
	for _, o := range perMfr {
		res.Subarrays = append(res.Subarrays, o.pooled)
		res.Fits = append(res.Fits, o.fit)
	}
	return res, nil
}

// RunFig14 prints the Fig. 14 regression.
func RunFig14(ctx context.Context, cfg Config) error {
	cfg = cfg.WithContext(ctx)
	cfg = cfg.normalize()
	res, err := Fig14(cfg)
	if err != nil {
		return err
	}
	w := tabwriter.NewWriter(cfg.Out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "Mfr\tfit\tR²\tsubarrays")
	for i, mfr := range res.Mfrs {
		f := res.Fits[i]
		fmt.Fprintf(w, "%s\ty=%.2fx%+.0f\t%.2f\t%d\n", mfr, f.Slope, f.Intercept, f.R2, f.N)
	}
	return w.Flush()
}

// Fig15Result compares subarray HCfirst distributions within and
// across modules.
type Fig15Result struct {
	Mfrs []string
	// SameModule/DiffModule[mfr] are the pairwise Bhattacharyya
	// coefficients (1.0 = identical distributions).
	SameModule, DiffModule [][]float64
	// P5Same/P5Diff are the 5th percentiles of each population.
	P5Same, P5Diff []float64
}

// Fig15 computes similarity of subarray HCfirst distributions.
func Fig15(cfg Config) (Fig15Result, error) {
	cfg = cfg.normalize()
	var res Fig15Result
	type mfrOut struct{ same, diff []float64 }
	perMfr, err := mapMfrs(cfg, func(mfr string) (mfrOut, error) {
		perModule, err := profileSubarrays(cfg, mfr)
		if err != nil {
			return mfrOut{}, err
		}
		var same, diff []float64
		for mi, subsA := range perModule {
			for ai := range subsA {
				for bi := ai + 1; bi < len(subsA); bi++ {
					same = append(same, rh.SubarraySimilarity(subsA[ai], subsA[bi]))
				}
				for mj := mi + 1; mj < len(perModule); mj++ {
					for _, sb := range perModule[mj] {
						diff = append(diff, rh.SubarraySimilarity(subsA[ai], sb))
					}
				}
			}
		}
		return mfrOut{same: same, diff: diff}, nil
	})
	if err != nil {
		return res, err
	}
	res.Mfrs = mfrNames
	p5 := func(xs []float64) float64 {
		if len(xs) == 0 {
			return 0
		}
		return stats.Percentile(xs, 5)
	}
	for _, o := range perMfr {
		res.SameModule = append(res.SameModule, o.same)
		res.DiffModule = append(res.DiffModule, o.diff)
		res.P5Same = append(res.P5Same, p5(o.same))
		res.P5Diff = append(res.P5Diff, p5(o.diff))
	}
	return res, nil
}

// RunFig15 prints the similarity comparison.
func RunFig15(ctx context.Context, cfg Config) error {
	cfg = cfg.WithContext(ctx)
	cfg = cfg.normalize()
	res, err := Fig15(cfg)
	if err != nil {
		return err
	}
	w := tabwriter.NewWriter(cfg.Out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "Mfr\tP5 BDnorm same module\tP5 BDnorm different modules\tpairs (same/diff)")
	for i, mfr := range res.Mfrs {
		fmt.Fprintf(w, "%s\t%.3f\t%.3f\t%d/%d\n", mfr, res.P5Same[i], res.P5Diff[i],
			len(res.SameModule[i]), len(res.DiffModule[i]))
	}
	return w.Flush()
}
