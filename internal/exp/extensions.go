package exp

import (
	"context"
	"fmt"
	"io"
	"text/tabwriter"

	rh "rowhammer"
	"rowhammer/internal/artifact"
	"rowhammer/internal/attack"
	"rowhammer/internal/dram"
	"rowhammer/internal/softmc"
)

// Extension experiments beyond the paper's numbered artifacts, within
// its scope: the DDR3 verification the paper mentions for Obsv. 2, a
// TRRespass-style many-sided attack against the in-DRAM TRR sampler
// (§2.3 background), and the §4.2 interference checklist.

// DDR3Result verifies Obsv. 2 on DDR3 SODIMM benches: a significant
// fraction of vulnerable cells flips at all tested temperatures.
type DDR3Result struct {
	Mfrs          []string
	FullRangeFrac []float64
	NoGapFrac     []float64
	Vulnerable    []int
}

// ddr3Mfr sweeps one manufacturer's DDR3 module across the study
// temperatures.
func ddr3Mfr(cfg Config, mfr string) (*rh.TempClusterMatrix, error) {
	geo := cfg.Geometry
	b, err := rh.NewBench(rh.BenchConfig{
		Profile:  rh.ProfileByName(mfr),
		Seed:     moduleSeed(cfg, mfr, 100), // distinct from DDR4 instances
		Geometry: geo,
		Timing:   rh.DDR3Timing(),
	})
	if err != nil {
		return nil, err
	}
	t := rh.NewTester(b)
	sweep, err := t.TemperatureSweep(rh.TempSweepConfig{
		Bank:        0,
		Victims:     sampleRows(cfg, tempSweepRows),
		Hammers:     2 * cfg.Scale.Hammers,
		Pattern:     rh.PatCheckered,
		Repetitions: cfg.Scale.Repetitions,
	})
	if err != nil {
		return nil, err
	}
	return sweep.ClusterByRange(), nil
}

// DDR3 sweeps DDR3 modules (manufacturers A–C have DDR3 SODIMMs in
// Table 2) across the study temperatures.
func DDR3(cfg Config) (DDR3Result, error) {
	cfg = cfg.normalize()
	var res DDR3Result
	for _, mfr := range ddr3Shards {
		m, err := ddr3Mfr(cfg, mfr)
		if err != nil {
			return res, err
		}
		res.Mfrs = append(res.Mfrs, mfr)
		res.FullRangeFrac = append(res.FullRangeFrac, m.FullRangeFraction())
		res.NoGapFrac = append(res.NoGapFrac, m.NoGapFraction())
		res.Vulnerable = append(res.Vulnerable, m.Total)
	}
	return res, nil
}

// ddr3Shard measures one manufacturer's DDR3 verification.
func ddr3Shard(ctx context.Context, cfg Config, mfr string) (*artifact.Artifact, error) {
	cfg = cfg.WithContext(ctx).normalize()
	m, err := ddr3Mfr(cfg, mfr)
	if err != nil {
		return nil, err
	}
	a := artifact.New(mfr)
	a.AddRow(mfrKey(mfr)).
		SetInt("vulnerable", int64(m.Total)).
		Set("full_range_frac", m.FullRangeFraction()).
		Set("no_gap_frac", m.NoGapFraction())
	return a, nil
}

// renderDDR3 prints the DDR3 verification from the artifact.
func renderDDR3(out io.Writer, a *artifact.Artifact) error {
	w := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "Mfr (DDR3)\tvulnerable cells\tfull-range fraction\tno-gap fraction")
	for _, mfr := range a.Shards {
		r := a.Row(mfrKey(mfr))
		if r == nil {
			return fmt.Errorf("exp: ddr3 artifact missing shard %s", mfr)
		}
		fmt.Fprintf(w, "%s\t%d\t%s\t%s\n", mfr, r.Int("vulnerable"),
			pct(r.V("full_range_frac")), pct(r.V("no_gap_frac")))
	}
	return w.Flush()
}

// ManySidedResult compares double-sided and TRRespass-style many-sided
// attacks against a TRR-protected module under a realistic refresh
// stream.
type ManySidedResult struct {
	// DoubleFlips/ManyFlips are victim bit flips under each pattern.
	DoubleFlips, ManyFlips int
	// TRRRefreshesDouble/Many count targeted refreshes TRR performed.
	TRRRefreshesDouble, TRRRefreshesMany int64
}

// trrAttack hammers a TRR-protected module with refresh commands
// interleaved at a realistic cadence, using the given aggressor set.
// rounds is the number of passes over the aggressor list, so the
// victim's nominal double-sided exposure is identical across patterns
// (each pass activates its two adjacent aggressors once).
func trrAttack(cfg Config, aggressors []int, victim int, rounds int64) (int, int64, error) {
	trr := dram.TRRConfig{TableSize: 4, SampleProb: 1.0 / 9, Threshold: 12_000, Seed: 3}
	b, err := rh.NewBench(rh.BenchConfig{
		Profile:  rh.ProfileByName("A"),
		Seed:     moduleSeed(cfg, "A", 7),
		Geometry: cfg.Geometry,
		TRR:      &trr,
	})
	if err != nil {
		return 0, 0, err
	}
	t := rh.NewTester(b)
	if err := t.InitPattern(0, victim, rh.PatCheckered); err != nil {
		return 0, 0, err
	}
	b.Model.SetSalt(1)
	defer b.Model.SetSalt(0)

	tm := b.Timing()
	ex := b.Exec
	const chunk = int64(1024)
	logical := make([]int, len(aggressors))
	for i, a := range aggressors {
		logical[i] = t.LogicalRow(a)
	}
	for issued := int64(0); issued < rounds; issued += chunk {
		n := chunk
		if issued+n > rounds {
			n = rounds - issued
		}
		bld := softmc.NewBuilder(tm.TCK)
		bld.Hammer(0, logical, n, tm.TRAS, tm.TRP)
		if _, err := ex.Run(bld.Program()); err != nil {
			return 0, 0, err
		}
		// A defended system refreshes continuously: issue a burst of
		// REFs after each chunk (TRR rides on REF).
		rb := softmc.NewBuilder(tm.TCK)
		rb.Wait(tm.TRP)
		for i := 0; i < 4; i++ {
			rb.Ref().Wait(tm.TRFC)
		}
		if _, err := ex.Run(rb.Program()); err != nil {
			return 0, 0, err
		}
	}
	flips, err := t.ReadFlips(0, victim, victim, rh.PatCheckered)
	if err != nil {
		return 0, 0, err
	}
	return flips.Count(), b.Module.Stats().TRRRefreshes, nil
}

// ManySided runs the comparison.
func ManySided(cfg Config) (ManySidedResult, error) {
	cfg = cfg.normalize()
	var res ManySidedResult
	// Keep the victim (and the many-sided decoy window) clear of
	// subarray edges.
	victim := cfg.Geometry.RowsPerBank/2 + 17
	const rounds = 250_000
	var err error
	res.DoubleFlips, res.TRRRefreshesDouble, err = trrAttack(cfg,
		attack.AggressorRows(attack.DoubleSided, victim, 0), victim, rounds)
	if err != nil {
		return res, err
	}
	res.ManyFlips, res.TRRRefreshesMany, err = trrAttack(cfg,
		attack.AggressorRows(attack.ManySided, victim, 8), victim, rounds)
	if err != nil {
		return res, err
	}
	return res, nil
}

// manySidedShard measures the TRR-evasion comparison (single shard:
// both attacks target the same module).
func manySidedShard(ctx context.Context, cfg Config, shard string) (*artifact.Artifact, error) {
	cfg = cfg.WithContext(ctx).normalize()
	res, err := ManySided(cfg)
	if err != nil {
		return nil, err
	}
	a := artifact.New(shard)
	a.AddRow("double").SetInt("flips", int64(res.DoubleFlips)).SetInt("trr_refreshes", res.TRRRefreshesDouble)
	a.AddRow("many").SetInt("flips", int64(res.ManyFlips)).SetInt("trr_refreshes", res.TRRRefreshesMany)
	return a, nil
}

// renderManySided prints the TRR-evasion comparison from the artifact.
func renderManySided(out io.Writer, a *artifact.Artifact) error {
	d, m := a.Row("double"), a.Row("many")
	if d == nil || m == nil {
		return fmt.Errorf("exp: manysided artifact missing attack rows")
	}
	fmt.Fprintf(out, "double-sided vs TRR: %d victim flips (%d targeted refreshes)\n",
		d.Int("flips"), d.Int("trr_refreshes"))
	fmt.Fprintf(out, "many-sided  vs TRR: %d victim flips (%d targeted refreshes)\n",
		m.Int("flips"), m.Int("trr_refreshes"))
	return nil
}

// InterferenceResult is the §4.2 "disabling sources of interference"
// checklist, verified by measurement.
type InterferenceResult struct {
	// HCfirstDuration is the longest single HCfirst test in DRAM time;
	// the paper bounds tests to 64 ms.
	HCfirstDuration dram.Picos
	// RetentionFlips observed with the retention model *enabled*
	// during a full HCfirst search (must be 0 for a valid
	// methodology).
	RetentionFlips int64
	// TRRActivity with TRR silicon present but no REF issued (must be
	// 0: §4.2 neutralizes TRR by withholding refresh).
	TRRActivity int64
	// ECCMasking: flips hidden by on-die ECC when enabled vs the
	// paper's no-ECC modules (non-zero, demonstrating why the study
	// excludes ECC modules).
	ECCRawFlips, ECCVisibleFlips int
}

// Interference verifies the methodology's isolation properties.
func Interference(cfg Config) (InterferenceResult, error) {
	cfg = cfg.normalize()
	var res InterferenceResult

	// 1+2: retention-enabled bench; run an HCfirst search and verify
	// the test stays inside the retention-safe window.
	ret := dram.DefaultRetentionConfig()
	trr := dram.DefaultTRRConfig()
	b, err := rh.NewBench(rh.BenchConfig{
		Profile:   rh.ProfileByName("A"),
		Seed:      moduleSeed(cfg, "A", 11),
		Geometry:  cfg.Geometry,
		Retention: &ret,
		TRR:       &trr,
	})
	if err != nil {
		return res, err
	}
	t := rh.NewTester(b)
	victim := sampleRows(cfg, 4)[1]
	start := b.Exec.Now()
	if _, err := t.Hammer(rh.HammerConfig{
		Bank: 0, VictimPhys: victim, Hammers: cfg.Scale.MaxHammers,
		Pattern: rh.PatCheckered, Trial: 1,
	}); err != nil {
		return res, err
	}
	res.HCfirstDuration = b.Exec.Now() - start
	res.RetentionFlips = b.Module.Stats().RetentionFlips
	res.TRRActivity = b.Module.Stats().TRRRefreshes

	// 3: ECC masking on an otherwise identical module.
	mkFlips := func(ecc bool) (int, error) {
		be, err := rh.NewBench(rh.BenchConfig{
			Profile:  rh.ProfileByName("A"),
			Seed:     moduleSeed(cfg, "A", 11),
			Geometry: cfg.Geometry,
			OnDieECC: ecc,
		})
		if err != nil {
			return 0, err
		}
		te := rh.NewTester(be)
		hr, err := te.Hammer(rh.HammerConfig{
			Bank: 0, VictimPhys: victim, Hammers: cfg.Scale.Hammers,
			Pattern: rh.PatCheckered, Trial: 1,
		})
		if err != nil {
			return 0, err
		}
		return hr.Victim.Count(), nil
	}
	if res.ECCRawFlips, err = mkFlips(false); err != nil {
		return res, err
	}
	if res.ECCVisibleFlips, err = mkFlips(true); err != nil {
		return res, err
	}
	return res, nil
}

// interferenceShard measures the §4.2 checklist (single shard: one
// instrumented module).
func interferenceShard(ctx context.Context, cfg Config, shard string) (*artifact.Artifact, error) {
	cfg = cfg.WithContext(ctx).normalize()
	res, err := Interference(cfg)
	if err != nil {
		return nil, err
	}
	a := artifact.New(shard)
	a.AddRow("checklist").
		SetInt("duration_ps", int64(res.HCfirstDuration)).
		SetInt("retention_flips", res.RetentionFlips).
		SetInt("trr_activity", res.TRRActivity).
		SetInt("ecc_raw", int64(res.ECCRawFlips)).
		SetInt("ecc_visible", int64(res.ECCVisibleFlips))
	return a, nil
}

// renderInterference prints the checklist from the artifact.
func renderInterference(out io.Writer, a *artifact.Artifact) error {
	r := a.Row("checklist")
	if r == nil {
		return fmt.Errorf("exp: interference artifact missing checklist row")
	}
	fmt.Fprintf(out, "longest hammer test: %.1f ms of DRAM time (budget: 64 ms)\n",
		float64(r.Int("duration_ps"))/1e9)
	fmt.Fprintf(out, "retention flips during test (model enabled): %d\n", r.Int("retention_flips"))
	fmt.Fprintf(out, "TRR refreshes without REF commands: %d\n", r.Int("trr_activity"))
	fmt.Fprintf(out, "ECC masking: %d raw flips → %d visible with on-die ECC\n",
		r.Int("ecc_raw"), r.Int("ecc_visible"))
	return nil
}
