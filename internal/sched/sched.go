// Package sched implements a small memory-request scheduler simulation
// used by Defense Improvement 5 (§8.2): the memory controller can
// bound every row's open time through its row-buffer policy, denying
// attackers the tAggOn amplification of Obsv. 8. The simulation
// quantifies what that costs benign workloads whose row-buffer
// locality normally benefits from long-open rows.
package sched

import (
	"fmt"

	"rowhammer/internal/dram"
	"rowhammer/internal/rng"
)

// Request is one memory access.
type Request struct {
	Bank    int
	Row     int
	Col     int
	Arrival dram.Picos
	IsWrite bool
}

// Policy selects the row-buffer management strategy.
type Policy int

// Policies.
const (
	// OpenPage keeps a row open until a conflicting access arrives.
	OpenPage Policy = iota
	// ClosedPage precharges after every access.
	ClosedPage
	// CappedOpenPage is OpenPage with a bound on row-open time
	// (Defense Improvement 5): rows are force-precharged at the cap.
	CappedOpenPage
)

// String names the policy.
func (p Policy) String() string {
	switch p {
	case OpenPage:
		return "open-page"
	case ClosedPage:
		return "closed-page"
	case CappedOpenPage:
		return "capped-open-page"
	default:
		return "unknown"
	}
}

// Result summarizes a simulation.
type Result struct {
	Requests     int
	RowHits      int
	RowMisses    int // row conflict: wrong row open
	RowEmpty     int // bank precharged
	Acts         int64
	TotalLatency dram.Picos
	// MaxRowOpen is the longest observed row-open interval — the
	// security property the capped policy enforces.
	MaxRowOpen dram.Picos
	// End is the completion time of the last request.
	End dram.Picos
}

// AvgLatencyNs returns the mean request latency in nanoseconds.
func (r Result) AvgLatencyNs() float64 {
	if r.Requests == 0 {
		return 0
	}
	return float64(r.TotalLatency) / float64(r.Requests) / 1000
}

// HitRate returns the row-buffer hit rate.
func (r Result) HitRate() float64 {
	if r.Requests == 0 {
		return 0
	}
	return float64(r.RowHits) / float64(r.Requests)
}

// bank tracks one bank's scheduling state.
type bank struct {
	open     bool
	row      int
	openedAt dram.Picos
	ready    dram.Picos // earliest next command time
	lastCol  dram.Picos
	everCol  bool
}

// Simulate services requests in arrival order (FCFS per bank) under
// the policy; cap is the open-time bound for CappedOpenPage.
func Simulate(reqs []Request, tm dram.Timing, pol Policy, cap dram.Picos) (Result, error) {
	if pol == CappedOpenPage && cap <= 0 {
		return Result{}, fmt.Errorf("sched: capped policy needs a positive cap")
	}
	var res Result
	banks := map[int]*bank{}
	maxP := func(a, b dram.Picos) dram.Picos {
		if a > b {
			return a
		}
		return b
	}
	closeRow := func(b *bank, at dram.Picos) {
		if !b.open {
			return
		}
		openFor := at - b.openedAt
		if openFor > res.MaxRowOpen {
			res.MaxRowOpen = openFor
		}
		b.open = false
		b.ready = at + tm.TRP
	}
	for _, rq := range reqs {
		b := banks[rq.Bank]
		if b == nil {
			b = &bank{}
			banks[rq.Bank] = b
		}
		start := maxP(rq.Arrival, b.ready)

		// Capped policy: if the open row would exceed the cap by the
		// time this request is serviced, it was force-precharged at
		// the cap boundary.
		if pol == CappedOpenPage && b.open {
			deadline := b.openedAt + cap
			if start >= deadline {
				closeAt := maxP(deadline, b.openedAt+tm.TRAS)
				closeRow(b, closeAt)
				start = maxP(start, b.ready)
			}
		}

		var done dram.Picos
		switch {
		case b.open && b.row == rq.Row:
			// Row hit: column access only.
			res.RowHits++
			colAt := start
			if b.everCol {
				colAt = maxP(colAt, b.lastCol+tm.TCCD)
			}
			b.lastCol, b.everCol = colAt, true
			done = colAt + tm.TRCD/2 // CAS-to-data proxy
		case b.open:
			// Row conflict: precharge, activate, access.
			res.RowMisses++
			closeAt := maxP(start, b.openedAt+tm.TRAS)
			closeRow(b, closeAt)
			actAt := b.ready
			b.open, b.row, b.openedAt = true, rq.Row, actAt
			b.everCol = false
			res.Acts++
			colAt := actAt + tm.TRCD
			b.lastCol, b.everCol = colAt, true
			done = colAt + tm.TRCD/2
		default:
			// Bank precharged: activate, access.
			res.RowEmpty++
			actAt := start
			b.open, b.row, b.openedAt = true, rq.Row, actAt
			b.everCol = false
			res.Acts++
			colAt := actAt + tm.TRCD
			b.lastCol, b.everCol = colAt, true
			done = colAt + tm.TRCD/2
		}

		if pol == ClosedPage {
			closeRow(b, maxP(done, b.openedAt+tm.TRAS))
		}
		res.Requests++
		res.TotalLatency += done - rq.Arrival
		if done > res.End {
			res.End = done
		}
	}
	// Close everything at the end so MaxRowOpen accounts for the tail.
	for _, b := range banks {
		if b.open {
			end := maxP(res.End, b.openedAt+tm.TRAS)
			if pol == CappedOpenPage && end > b.openedAt+cap {
				end = b.openedAt + maxP(cap, tm.TRAS)
			}
			closeRow(b, end)
		}
	}
	return res, nil
}

// WorkloadConfig parameterizes the synthetic request generator.
type WorkloadConfig struct {
	Requests int
	Banks    int
	Rows     int
	Cols     int
	// Locality is the probability that a request reuses the previous
	// row of its bank (row-buffer-friendly streaming: high; random
	// access: low).
	Locality float64
	// InterArrival is the mean gap between requests.
	InterArrival dram.Picos
	Seed         uint64
}

// Generate builds a synthetic request stream.
func Generate(cfg WorkloadConfig) []Request {
	s := rng.NewStream(rng.Hash64(cfg.Seed, 0x5c4e))
	reqs := make([]Request, 0, cfg.Requests)
	lastRow := make([]int, cfg.Banks)
	var now dram.Picos
	for i := 0; i < cfg.Requests; i++ {
		bank := s.Intn(cfg.Banks)
		row := lastRow[bank]
		if i == 0 || !s.Bernoulli(cfg.Locality) {
			row = s.Intn(cfg.Rows)
			lastRow[bank] = row
		}
		reqs = append(reqs, Request{
			Bank:    bank,
			Row:     row,
			Col:     s.Intn(cfg.Cols),
			Arrival: now,
			IsWrite: s.Bernoulli(0.3),
		})
		now += dram.Picos(float64(cfg.InterArrival) * (0.5 + s.Float64()))
	}
	return reqs
}
