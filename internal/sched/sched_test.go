package sched

import (
	"testing"

	"rowhammer/internal/dram"
)

func streamingWorkload(seed uint64) []Request {
	return Generate(WorkloadConfig{
		Requests: 5000, Banks: 4, Rows: 1024, Cols: 64,
		Locality: 0.9, InterArrival: dram.PicosFromNs(30), Seed: seed,
	})
}

func randomWorkload(seed uint64) []Request {
	return Generate(WorkloadConfig{
		Requests: 5000, Banks: 4, Rows: 1024, Cols: 64,
		Locality: 0.05, InterArrival: dram.PicosFromNs(30), Seed: seed,
	})
}

func TestGenerateDeterministicAndBounded(t *testing.T) {
	a := streamingWorkload(1)
	b := streamingWorkload(1)
	if len(a) != 5000 {
		t.Fatalf("len = %d", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("generator not deterministic")
		}
		if a[i].Bank < 0 || a[i].Bank >= 4 || a[i].Row < 0 || a[i].Row >= 1024 || a[i].Col < 0 || a[i].Col >= 64 {
			t.Fatalf("request out of bounds: %+v", a[i])
		}
		if i > 0 && a[i].Arrival < a[i-1].Arrival {
			t.Fatal("arrivals not monotone")
		}
	}
}

func TestOpenPageBeatsClosedPageOnStreaming(t *testing.T) {
	tm := dram.DDR4Timing()
	reqs := streamingWorkload(2)
	open, err := Simulate(reqs, tm, OpenPage, 0)
	if err != nil {
		t.Fatal(err)
	}
	closed, err := Simulate(reqs, tm, ClosedPage, 0)
	if err != nil {
		t.Fatal(err)
	}
	if open.HitRate() < 0.7 {
		t.Fatalf("streaming hit rate %.2f under open-page", open.HitRate())
	}
	if closed.RowHits != 0 {
		t.Fatalf("closed-page row hits = %d", closed.RowHits)
	}
	if open.AvgLatencyNs() >= closed.AvgLatencyNs() {
		t.Fatalf("open-page latency %.1f >= closed-page %.1f on a streaming workload",
			open.AvgLatencyNs(), closed.AvgLatencyNs())
	}
	if closed.Acts <= open.Acts {
		t.Fatalf("closed-page should activate more: %d vs %d", closed.Acts, open.Acts)
	}
}

func TestCappedPolicyBoundsOpenTime(t *testing.T) {
	tm := dram.DDR4Timing()
	cap := dram.PicosFromNs(200)
	reqs := streamingWorkload(3)
	open, err := Simulate(reqs, tm, OpenPage, 0)
	if err != nil {
		t.Fatal(err)
	}
	capped, err := Simulate(reqs, tm, CappedOpenPage, cap)
	if err != nil {
		t.Fatal(err)
	}
	if open.MaxRowOpen <= cap {
		t.Skip("workload never exceeds the cap; nothing to bound")
	}
	// Security property: no row stays open beyond the cap (plus the
	// tRAS minimum the DRAM itself requires).
	limit := cap
	if tm.TRAS > limit {
		limit = tm.TRAS
	}
	if capped.MaxRowOpen > limit {
		t.Fatalf("capped policy allowed %v ps open, cap %v", capped.MaxRowOpen, limit)
	}
	// Cost: some latency increase, but far less than closed-page.
	closed, err := Simulate(reqs, tm, ClosedPage, 0)
	if err != nil {
		t.Fatal(err)
	}
	if capped.AvgLatencyNs() > closed.AvgLatencyNs() {
		t.Fatalf("capped latency %.1f worse than closed-page %.1f",
			capped.AvgLatencyNs(), closed.AvgLatencyNs())
	}
}

func TestRandomWorkloadInsensitiveToPolicy(t *testing.T) {
	tm := dram.DDR4Timing()
	reqs := randomWorkload(4)
	open, err := Simulate(reqs, tm, OpenPage, 0)
	if err != nil {
		t.Fatal(err)
	}
	capped, err := Simulate(reqs, tm, CappedOpenPage, dram.PicosFromNs(200))
	if err != nil {
		t.Fatal(err)
	}
	// With ~5% locality the cap costs almost nothing.
	if capped.AvgLatencyNs() > open.AvgLatencyNs()*1.1 {
		t.Fatalf("cap cost %.1f→%.1f ns on a random workload",
			open.AvgLatencyNs(), capped.AvgLatencyNs())
	}
}

func TestSimulateValidation(t *testing.T) {
	if _, err := Simulate(nil, dram.DDR4Timing(), CappedOpenPage, 0); err == nil {
		t.Fatal("expected error for capped policy without cap")
	}
}

func TestPolicyStrings(t *testing.T) {
	for p, want := range map[Policy]string{
		OpenPage: "open-page", ClosedPage: "closed-page", CappedOpenPage: "capped-open-page",
	} {
		if p.String() != want {
			t.Fatalf("%d → %q", p, p.String())
		}
	}
}
