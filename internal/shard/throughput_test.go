package shard

import (
	"testing"
	"time"
)

func TestRateTrackerCreditsDeltasNotBaselines(t *testing.T) {
	rt := newRateTracker()
	t0 := time.Unix(1000, 0)

	// First observation of a resumed shard: 5 pre-existing records are
	// nobody's throughput.
	rt.observe("w1", 0, 5, t0)
	if _, ok := rt.rate("w1"); ok {
		t.Fatal("baseline observation should not credit a rate")
	}
	// Advances credit the placed worker: +5 over 1s, +5 over 1s more.
	rt.observe("w1", 0, 10, t0.Add(1*time.Second))
	rt.observe("w1", 0, 15, t0.Add(2*time.Second))
	r, ok := rt.rate("w1")
	if !ok || r < 4.9 || r > 5.1 {
		t.Fatalf("rate = %v ok=%v, want ~5 jobs/s", r, ok)
	}
	if got := rt.doneOf(0); got != 15 {
		t.Fatalf("doneOf = %d, want 15", got)
	}
	// A shard changing hands credits the new worker from its own
	// baseline — the delta follows the placement.
	rt.observe("w2", 0, 16, t0.Add(3*time.Second))
	rt.observe("w2", 0, 17, t0.Add(4*time.Second))
	if r, ok := rt.rate("w2"); !ok || r < 0.9 || r > 1.1 {
		t.Fatalf("w2 rate = %v ok=%v, want ~1 job/s", r, ok)
	}
	// Fallback for a cold worker is the median of known rates.
	if f := rt.fallbackRate(); f < 0.9 || f > 5.1 {
		t.Fatalf("fallback = %v, want within known rates", f)
	}
	if r := rt.rateOr("cold"); r != rt.fallbackRate() {
		t.Fatalf("rateOr(cold) = %v, want fallback %v", r, rt.fallbackRate())
	}
}

func TestEtaFor(t *testing.T) {
	if d := etaFor(0, 5); d != 0 {
		t.Fatalf("empty backlog eta = %v", d)
	}
	if d := etaFor(10, 5); d != 2*time.Second {
		t.Fatalf("eta = %v, want 2s", d)
	}
	if d := etaFor(3, 0); d != 3*time.Second {
		t.Fatalf("zero-rate eta should assume 1 job/s, got %v", d)
	}
}
