// Package shard splits one fleet campaign across many independent
// processes. A campaign spec expands to a canonically ordered job
// grid (internal/campaign.Expand); Partition cuts that grid into N
// disjoint contiguous ranges, one per shard, so N workers — separate
// processes, separate machines — each run their slice through the
// unchanged engine with their own crash-safe v2 checkpoint. Because
// per-job records are deterministic and aggregation is
// order-independent, the union of the shard checkpoints merges
// (MergeShards) into a summary and artifact byte-identical to a
// single-process run, no matter how the work was split, how often
// shards died and resumed, or which process re-ran a reassigned job.
//
// Fault tolerance is built on two artifacts per shard, both owned by
// internal/durable primitives:
//
//   - the shard checkpoint (campaign v2 format, shard-stamped header)
//     records exactly which jobs are done, so a dead shard's
//     *remaining* jobs are computable by anyone holding the file;
//   - the shard lease — a flock-guarded, CRC-trailed heartbeat file —
//     proves liveness: the kernel drops the flock the instant the
//     holder dies (SIGKILL included), and a holder that is alive but
//     wedged stops refreshing the heartbeat, so a coordinator can
//     distinguish dead, stalled and healthy workers without any IPC.
//
// Coordinate supervises N workers through a process-agnostic Spawn
// seam (exec'd rhfleet subprocesses, or in-process engine goroutines
// under rhserved), detects death and stalls by lease, and reassigns a
// dead shard's remaining jobs to a fresh worker that resumes from the
// dead shard's checkpoint — the straggler path that keeps one bad
// machine from stalling a 10k-module fleet.
package shard

import (
	"fmt"
	"strconv"
	"strings"

	"rowhammer/internal/campaign"
)

// Assignment names one shard's contiguous slice of a campaign's job
// grid: shard Index of Of.
type Assignment struct {
	Index int `json:"shard"`
	Of    int `json:"of"`
}

// String renders the assignment in the CLI's i/N form.
func (a Assignment) String() string { return fmt.Sprintf("%d/%d", a.Index, a.Of) }

// Validate rejects malformed assignments.
func (a Assignment) Validate() error {
	if a.Of < 1 {
		return fmt.Errorf("shard: shard count %d < 1", a.Of)
	}
	if a.Index < 0 || a.Index >= a.Of {
		return fmt.Errorf("shard: shard index %d outside [0,%d)", a.Index, a.Of)
	}
	return nil
}

// ParseAssignment parses the CLI form "i/N".
func ParseAssignment(s string) (Assignment, error) {
	idx, of, ok := strings.Cut(s, "/")
	if !ok {
		return Assignment{}, fmt.Errorf("shard: bad assignment %q (want i/N, e.g. 2/8)", s)
	}
	i, err := strconv.Atoi(strings.TrimSpace(idx))
	if err != nil {
		return Assignment{}, fmt.Errorf("shard: bad shard index in %q: %w", s, err)
	}
	n, err := strconv.Atoi(strings.TrimSpace(of))
	if err != nil {
		return Assignment{}, fmt.Errorf("shard: bad shard count in %q: %w", s, err)
	}
	a := Assignment{Index: i, Of: n}
	if err := a.Validate(); err != nil {
		return Assignment{}, err
	}
	return a, nil
}

// Partition lists the N assignments covering a campaign.
func Partition(n int) []Assignment {
	out := make([]Assignment, n)
	for i := range out {
		out[i] = Assignment{Index: i, Of: n}
	}
	return out
}

// cut returns the half-open job-index range [lo, hi) the assignment
// owns over a grid of total jobs. Ranges are contiguous — shard 0
// takes the first manufacturers/modules of the canonical order — and
// balanced to within one job, and every job index lands in exactly
// one shard for any total (shards beyond the job count get empty
// ranges).
func (a Assignment) cut(total int) (lo, hi int) {
	return a.Index * total / a.Of, (a.Index + 1) * total / a.Of
}

// Jobs lists the spec's jobs owned by the assignment, in canonical
// order.
func (a Assignment) Jobs(spec campaign.Spec) []campaign.Job {
	all := campaign.Expand(spec)
	lo, hi := a.cut(len(all))
	return all[lo:hi]
}

// Filter returns the assignment's job-key set — the engine's
// Options.Only filter and the coordinator's remaining-job scope.
func (a Assignment) Filter(spec campaign.Spec) map[string]bool {
	jobs := a.Jobs(spec)
	only := make(map[string]bool, len(jobs))
	for _, j := range jobs {
		only[j.Key()] = true
	}
	return only
}

// Remaining lists the assignment's jobs with no successful record in
// done — what a dead or interrupted shard still owes, computed from
// its checkpoint.
func (a Assignment) Remaining(spec campaign.Spec, done map[string]campaign.Record) []campaign.Job {
	return campaign.Remaining(spec, done, a.Filter(spec))
}
