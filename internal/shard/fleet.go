package shard

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"time"

	"rowhammer/internal/campaign"
	"rowhammer/internal/leasesvc"
)

// errLeaseLapsed marks a fleet attempt whose shard lease, once held,
// went unheld: the worker finished, drained, or died — the supervision
// loop re-reads the checkpoint to find out which, exactly as it does
// for a local worker's exit code.
var errLeaseLapsed = errors.New("shard lease lapsed or was released")

// ErrNoWorkers reports a fleet placement that waited out the
// scheduler's patience with zero live registered workers. It bounds a
// fleet that vanishes after the campaign chose fleet placement:
// attempts terminated with it exhaust MaxRespawns in a few polls, so
// the campaign fails (or, in rhserved, falls back to in-process
// shards) instead of pinning a slot on "waiting" forever.
var ErrNoWorkers = errors.New("shard: no live workers registered")

// fleetAttempt is one generation of one shard as the scheduler tracks
// it: where it is placed and what its lease has shown so far.
type fleetAttempt struct {
	a      Assignment
	gen    int
	worker string // "" while unplaced
	// baseTok is the lease's fencing token when the attempt started;
	// any later token is an acquire that happened on this attempt's
	// watch. Without it a fast shard whose acquire→run→release fits
	// entirely between two polls looks never-started and gets
	// re-placed (and rebalanced) forever.
	baseTok  uint64
	sawHeld  bool // the lease was observed held during this attempt
	held     bool // ... on the most recent tick
	lastDone int
	draining bool
	// starving is set while the placed worker has free capacity yet
	// the shard's lease stays unheld — the bound that turns a
	// placement a worker can never start (bad spec, unreadable dir)
	// into a normal reassignment instead of a hang.
	starving   time.Time
	waitLogged bool
}

// fleetExecutor places shard attempts onto workers registered with
// the lease service's worker registry and supervises them through
// their shard leases alone: an attempt is alive exactly while its
// lease is held, its throughput is the lease's done counter, and
// "kill" is withdrawing the placement — fencing makes the handover
// safe whether or not the worker ever hears about it.
type fleetExecutor struct {
	svc      *leasesvc.Service
	dir      string
	hash     string
	parts    []Assignment
	jobs     map[int]int // shard index → job count
	total    int
	ttl      time.Duration
	logf     func(format string, args ...any)
	progress func(done, total int)
	now      func() time.Time

	events   chan exitEvent
	attempts map[int]*fleetAttempt
	rates    *rateTracker
	// starved remembers, per shard, the worker whose starvation bound
	// last fired — the next placement avoids it when any alternative
	// exists, since the starved worker usually still looks least
	// loaded and landing there again just burns another respawn.
	starved map[int]string
	// noWorkersSince is when the live-worker set last became empty;
	// zero while at least one worker is alive.
	noWorkersSince time.Time
}

func newFleetExecutor(svc *leasesvc.Service, dir string, spec campaign.Spec, parts []Assignment, ttl time.Duration, logf func(string, ...any), progress func(done, total int)) *fleetExecutor {
	jobs := make(map[int]int, len(parts))
	total := 0
	for _, a := range parts {
		n := len(a.Jobs(spec))
		jobs[a.Index] = n
		total += n
	}
	return &fleetExecutor{
		svc: svc, dir: dir, hash: spec.IdentityHash(),
		parts: parts, jobs: jobs, total: total, ttl: ttl,
		logf: logf, progress: progress, now: time.Now,
		events:   make(chan exitEvent, len(parts)),
		attempts: make(map[int]*fleetAttempt, len(parts)),
		rates:    newRateTracker(),
		starved:  map[int]string{},
	}
}

func (e *fleetExecutor) placement(a Assignment) leasesvc.Placement {
	return leasesvc.Placement{Campaign: e.hash, Dir: e.dir, Shard: a.Index, Of: a.Of}
}

// startPatience bounds how long a queued placement may sit unstarted
// on a worker with free capacity. It must exceed the worker's own
// patient-acquire window (4×TTL), or a successor politely waiting for
// a predecessor's lease to age out would be judged wedged.
func (e *fleetExecutor) startPatience() time.Duration { return 6 * e.ttl }

func (e *fleetExecutor) Start(ctx context.Context, a Assignment, gen int) error {
	at := &fleetAttempt{a: a, gen: gen}
	done := 0
	if v, ok, err := e.svc.View(ctx, e.placement(a).LeaseKey()); err == nil && ok {
		at.baseTok = v.Token
		done = v.Done
	}
	// Baseline the shard's done count now (credited to nobody), so
	// even a shard whose entire run fits between two polls credits its
	// worker the full delta when the lapse is observed.
	e.rates.observe("", a.Index, done, e.now())
	e.attempts[a.Index] = at
	e.place(at, e.aliveWorkers())
	return nil
}

func (e *fleetExecutor) Kill(a Assignment) {
	at := e.attempts[a.Index]
	if at == nil {
		return
	}
	if at.worker != "" {
		e.svc.Unassign(at.worker, e.placement(a))
	}
	e.finish(at, errors.New("placement withdrawn by coordinator"))
}

func (e *fleetExecutor) Drain(a Assignment) {
	at := e.attempts[a.Index]
	if at == nil || at.draining {
		return
	}
	at.draining = true
	if at.worker != "" {
		e.svc.Unassign(at.worker, e.placement(a))
	}
	if !at.sawHeld {
		// Never started: nothing to wait for.
		e.finish(at, errors.New("drained before start"))
	}
	// Started: the worker sees the withdrawal on its next beat, drains
	// the shard, and releases the lease — Tick then finishes the
	// attempt through the normal lapse path.
}

func (e *fleetExecutor) Events() <-chan exitEvent { return e.events }

func (e *fleetExecutor) Close() {
	for _, at := range e.attempts {
		if at.worker != "" {
			e.svc.Unassign(at.worker, e.placement(at.a))
		}
	}
	e.attempts = map[int]*fleetAttempt{}
}

// finish retires an attempt and reports its termination. The
// placement is withdrawn so the worker stops caring about a shard the
// scheduler no longer tracks.
func (e *fleetExecutor) finish(at *fleetAttempt, err error) {
	if at.worker != "" {
		e.svc.Unassign(at.worker, e.placement(at.a))
	}
	delete(e.attempts, at.a.Index)
	e.events <- exitEvent{idx: at.a.Index, gen: at.gen, err: err}
}

func (e *fleetExecutor) aliveWorkers() map[string]leasesvc.WorkerView {
	out := map[string]leasesvc.WorkerView{}
	for _, w := range e.svc.Workers() {
		if w.Alive {
			out[w.ID] = w
		}
	}
	return out
}

// Tick is the whole scheduler: observe every attempt's lease, retire
// attempts whose lease lapsed, re-place attempts whose worker
// vanished before starting, bound wedged placements, heal assignments
// a re-registered worker lost, and rebalance queued shards off slow
// workers.
func (e *fleetExecutor) Tick() {
	ctx := context.Background()
	workers := e.aliveWorkers()
	now := e.now()

	// Track how long the fleet has been empty: a fleet that vanishes
	// after placement began must bound the wait, not pin the campaign
	// on "waiting" forever.
	if len(workers) == 0 {
		if e.noWorkersSince.IsZero() {
			e.noWorkersSince = now
		}
	} else {
		e.noWorkersSince = time.Time{}
	}

	// One lease observation per attempt feeds the rebalancer's
	// throughput signal.
	for _, at := range e.attempts {
		v, ok, err := e.svc.View(ctx, e.placement(at.a).LeaseKey())
		at.held = err == nil && ok && v.Held
		if err == nil && ok {
			at.lastDone = v.Done
		}
		if at.held {
			at.sawHeld = true
			delete(e.starved, at.a.Index)
			e.rates.observe(at.worker, at.a.Index, v.Done, now)
		} else if err == nil && ok && v.Token > at.baseTok {
			// The lease was acquired — and released — entirely between
			// polls: the shard ran on this attempt's watch even though no
			// tick caught it held. Mark it started so the lapse path
			// below retires it and the checkpoint decides the verdict,
			// and credit the run to the worker so fast workers still
			// earn a throughput signal.
			at.sawHeld = true
			delete(e.starved, at.a.Index)
			e.rates.observe(at.worker, at.a.Index, v.Done, now)
		}
	}

	// Busy slots are judged service-wide, not from this executor's
	// attempts alone: a worker's capacity may be occupied by another
	// campaign's placements (rhserved runs several against one shared
	// registry), which this executor can't see in its own attempt set.
	// Count every assignment whose shard lease is held, whoever placed
	// it, so a genuinely busy worker never starts the starving clock.
	busy := map[string]int{}
	for id, w := range workers {
		for _, p := range w.Assignments {
			if v, ok, err := e.svc.View(ctx, p.LeaseKey()); err == nil && ok && v.Held {
				busy[id]++
			}
		}
	}

	if e.progress != nil {
		done := 0
		for _, a := range e.parts {
			if v, ok, err := e.svc.View(ctx, e.placement(a).LeaseKey()); err == nil && ok {
				d := v.Done
				if m := e.jobs[a.Index]; d > m {
					d = m
				}
				done += d
			}
		}
		e.progress(done, e.total)
	}

	for _, at := range e.snapshot() {
		if at.held {
			at.starving = time.Time{}
			continue
		}
		if at.sawHeld {
			e.finish(at, errLeaseLapsed)
			continue
		}
		if at.draining {
			continue
		}
		if at.worker == "" || workers[at.worker].ID == "" {
			if at.worker != "" {
				e.logf("fleet: shard %s: worker %s gone before start; re-placing", at.a, at.worker)
				e.svc.Unassign(at.worker, e.placement(at.a))
				at.worker = ""
			}
			if len(workers) == 0 && now.Sub(e.noWorkersSince) > e.startPatience() {
				e.finish(at, fmt.Errorf("%w within %s", ErrNoWorkers, e.startPatience()))
				continue
			}
			e.place(at, workers)
			continue
		}
		// Queued on a live worker. A worker with a free slot that still
		// does not pick the shard up is wedged on it; bound that
		// instead of hanging the campaign.
		if busy[at.worker] < workers[at.worker].Slots {
			if at.starving.IsZero() {
				at.starving = now
			}
			if now.Sub(at.starving) > e.startPatience() {
				e.starved[at.a.Index] = at.worker
				e.finish(at, fmt.Errorf("worker %s never acquired the shard lease within %s", at.worker, e.startPatience()))
			}
		} else {
			at.starving = time.Time{}
		}
	}

	e.reconcile(workers)
	e.rebalance(workers)
}

// snapshot copies the attempt set so retirement during iteration is
// safe.
func (e *fleetExecutor) snapshot() []*fleetAttempt {
	out := make([]*fleetAttempt, 0, len(e.attempts))
	for _, at := range e.attempts {
		out = append(out, at)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].a.Index < out[j].a.Index })
	return out
}

// remaining estimates shard idx's unfinished jobs from its last lease
// observation.
func (e *fleetExecutor) remaining(idx int) int {
	r := e.jobs[idx] - e.rates.doneOf(idx)
	if r < 0 {
		return 0
	}
	return r
}

// loads sums each worker's outstanding jobs across its attempts.
func (e *fleetExecutor) loads() map[string]int {
	out := map[string]int{}
	for _, at := range e.attempts {
		if at.worker != "" {
			out[at.worker] += e.remaining(at.a.Index)
		}
	}
	return out
}

// place assigns an attempt to the worker with the lowest estimated
// completion time for its current load plus this shard.
func (e *fleetExecutor) place(at *fleetAttempt, workers map[string]leasesvc.WorkerView) {
	ids := make([]string, 0, len(workers))
	for id := range workers {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	// Re-place a starved shard away from the worker that starved it
	// whenever an alternative exists.
	if avoid, ok := e.starved[at.a.Index]; ok && len(ids) > 1 {
		kept := ids[:0]
		for _, id := range ids {
			if id != avoid {
				kept = append(kept, id)
			}
		}
		ids = kept
	}
	loads := e.loads()
	rem := e.remaining(at.a.Index)
	best := ""
	var bestETA time.Duration
	for _, id := range ids {
		eta := etaFor(loads[id]+rem, e.rates.rateOr(id))
		if best == "" || eta < bestETA {
			best, bestETA = id, eta
		}
	}
	if best == "" {
		if !at.waitLogged {
			e.logf("fleet: shard %s: no live workers registered; waiting", at.a)
			at.waitLogged = true
		}
		return
	}
	if err := e.svc.Assign(best, e.placement(at.a)); err != nil {
		e.logf("fleet: shard %s: assigning to worker %s: %v", at.a, best, err)
		return
	}
	at.worker = best
	at.starving = time.Time{}
	e.logf("fleet: shard %s: placed on worker %s (gen %d)", at.a, best, at.gen)
}

// reconcile re-asserts placements a worker lost by re-registering —
// registration wipes assignments (the token changed), so the
// scheduler, as the owner of placement state, writes them back.
func (e *fleetExecutor) reconcile(workers map[string]leasesvc.WorkerView) {
	for _, at := range e.attempts {
		if at.draining || at.worker == "" {
			continue
		}
		w, ok := workers[at.worker]
		if !ok {
			continue
		}
		p := e.placement(at.a)
		found := false
		for _, have := range w.Assignments {
			if have == p {
				found = true
				break
			}
		}
		if !found {
			if err := e.svc.Assign(at.worker, p); err == nil {
				e.logf("fleet: shard %s: re-asserting placement on worker %s", at.a, at.worker)
			}
		}
	}
}

// rebalance moves at most one queued (never-started) shard per tick
// from the worker with the worst estimated completion time to the one
// with the best, when the imbalance is decisive. Started shards are
// never moved: their checkpoints live where they run, and a move
// would pay a fencing handover for speculative gain.
func (e *fleetExecutor) rebalance(workers map[string]leasesvc.WorkerView) {
	if len(workers) < 2 {
		return
	}
	loads := e.loads()
	etas := map[string]time.Duration{}
	for id := range workers {
		etas[id] = etaFor(loads[id], e.rates.rateOr(id))
	}
	queued := map[string][]*fleetAttempt{}
	for _, at := range e.snapshot() {
		if at.worker != "" && !at.sawHeld && !at.draining {
			queued[at.worker] = append(queued[at.worker], at)
		}
	}
	donor, recipient := "", ""
	for id := range workers {
		if len(queued[id]) > 0 && (donor == "" || etas[id] > etas[donor] || (etas[id] == etas[donor] && id < donor)) {
			donor = id
		}
		if recipient == "" || etas[id] < etas[recipient] || (etas[id] == etas[recipient] && id < recipient) {
			recipient = id
		}
	}
	if donor == "" || donor == recipient {
		return
	}
	// Move the queued shard with the most work — the one whose wait
	// hurts most.
	at := queued[donor][0]
	for _, q := range queued[donor] {
		if e.remaining(q.a.Index) > e.remaining(at.a.Index) {
			at = q
		}
	}
	// Judge the move by where the shard would *land*: the recipient's
	// ETA with the moved shard's backlog on board. Comparing against
	// the recipient's empty queue instead makes the move itself flip
	// the asymmetry, and two equal-rate workers ping-pong one queued
	// shard forever.
	after := etaFor(loads[recipient]+e.remaining(at.a.Index), e.rates.rateOr(recipient))
	if etas[donor] <= 2*after || etas[donor]-after <= e.ttl/2 {
		return
	}
	e.svc.Unassign(donor, e.placement(at.a))
	if err := e.svc.Assign(recipient, e.placement(at.a)); err != nil {
		at.worker = ""
		return
	}
	at.worker = recipient
	at.starving = time.Time{}
	e.logf("fleet: shard %s: rebalance — reassigning queued shard from worker %s (eta %s) to %s (eta %s after move)",
		at.a, donor, etas[donor].Round(time.Millisecond), recipient, after.Round(time.Millisecond))
}

// etaFor converts a job backlog and a jobs/sec rate into a duration.
func etaFor(jobs int, rate float64) time.Duration {
	if jobs <= 0 {
		return 0
	}
	if rate <= 0 {
		rate = 1
	}
	return time.Duration(float64(jobs) / rate * float64(time.Second))
}
