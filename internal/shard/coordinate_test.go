package shard_test

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"rowhammer/internal/campaign"
	"rowhammer/internal/durable"
	"rowhammer/internal/shard"
)

// procWorker runs one shard in-process — the same WorkerHandle shape
// rhserved uses to fan a campaign out under its own roof.
type procWorker struct {
	cancel    context.CancelFunc
	drainOnce sync.Once
	drain     chan struct{}
	done      chan struct{}
	err       error
}

func (w *procWorker) Wait() error { <-w.done; return w.err }
func (w *procWorker) Kill()       { w.cancel() }
func (w *procWorker) Drain()      { w.drainOnce.Do(func() { close(w.drain) }) }

// inProcessSpawn builds a SpawnFunc running RunShard in a goroutine.
// pick lets a test swap the runner per (assignment, generation).
func inProcessSpawn(dir string, spec campaign.Spec, pick func(a shard.Assignment, gen int) campaign.Runner) shard.SpawnFunc {
	return func(ctx context.Context, a shard.Assignment, gen int) (shard.WorkerHandle, error) {
		wctx, cancel := context.WithCancel(ctx)
		w := &procWorker{cancel: cancel, drain: make(chan struct{}), done: make(chan struct{})}
		go func() {
			defer close(w.done)
			defer cancel()
			_, w.err = shard.RunShard(wctx, shard.RunConfig{
				Dir: dir, Assignment: a, Spec: spec, Runner: pick(a, gen),
				Drain: w.drain, BeatEvery: 10 * time.Millisecond,
			})
		}()
		return w, nil
	}
}

func TestCoordinateHappyPath(t *testing.T) {
	spec := testSpec()
	single, err := campaign.Run(context.Background(), spec, campaign.Options{Runner: pureRunner})
	if err != nil {
		t.Fatal(err)
	}
	want := summarize(t, single)

	dir := t.TempDir()
	res, rep, err := shard.Coordinate(context.Background(), shard.Config{
		Dir: dir, Spec: spec, Shards: 4,
		Spawn: inProcessSpawn(dir, spec, func(shard.Assignment, int) campaign.Runner { return pureRunner }),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Complete() {
		t.Fatalf("incomplete: %v", rep.Missing)
	}
	if got := summarize(t, res); !bytes.Equal(got, want) {
		t.Fatalf("coordinated summary differs:\n%s\nwant:\n%s", got, want)
	}
}

// TestCoordinateReassignsDeadShard: shard 1's first worker dies after
// one job; the coordinator must reassign its remaining jobs to a
// fresh worker and still merge byte-identical.
func TestCoordinateReassignsDeadShard(t *testing.T) {
	spec := testSpec()
	spec.Workers = 1
	single, err := campaign.Run(context.Background(), spec, campaign.Options{Runner: pureRunner})
	if err != nil {
		t.Fatal(err)
	}
	want := summarize(t, single)

	dir := t.TempDir()
	var logMu sync.Mutex
	var logs []string
	var respawned bool
	didOne := make(chan struct{})
	pick := func(a shard.Assignment, gen int) campaign.Runner {
		if a.Index != 1 || gen != 0 {
			if a.Index == 1 {
				respawned = true
			}
			return pureRunner
		}
		// Gen 0 of shard 1: complete one job, then wedge until killed
		// (context cancel stands in for SIGKILL; the checkpointed
		// record survives either way).
		n := 0
		return func(ctx context.Context, s campaign.Spec, j campaign.Job) (campaign.Record, error) {
			n++
			if n > 1 {
				<-ctx.Done()
				return campaign.Record{}, ctx.Err()
			}
			rec, err := pureRunner(ctx, s, j)
			close(didOne)
			return rec, err
		}
	}
	spawn := inProcessSpawn(dir, spec, pick)
	// Kill shard 1's gen-0 worker once its first job is checkpointed.
	wrapped := func(ctx context.Context, a shard.Assignment, gen int) (shard.WorkerHandle, error) {
		h, err := spawn(ctx, a, gen)
		if err == nil && a.Index == 1 && gen == 0 {
			go func() {
				<-didOne
				time.Sleep(30 * time.Millisecond) // let the record land
				h.Kill()
			}()
		}
		return h, err
	}
	res, rep, err := shard.Coordinate(context.Background(), shard.Config{
		Dir: dir, Spec: spec, Shards: 3, LeaseTTL: 300 * time.Millisecond, Poll: 50 * time.Millisecond,
		Spawn: wrapped,
		Log: func(f string, args ...any) {
			logMu.Lock()
			logs = append(logs, strings.TrimSpace(fmt.Sprintf(f, args...)))
			logMu.Unlock()
		},
	})
	if err != nil {
		t.Fatalf("coordinate: %v (logs: %v)", err, logs)
	}
	if !respawned {
		t.Fatal("shard 1 was never reassigned — the test is vacuous")
	}
	if !rep.Complete() {
		t.Fatalf("incomplete: %v", rep.Missing)
	}
	if got := summarize(t, res); !bytes.Equal(got, want) {
		t.Fatalf("reassigned summary differs:\n%s\nwant:\n%s", got, want)
	}
	logMu.Lock()
	defer logMu.Unlock()
	var sawReassign bool
	for _, l := range logs {
		if strings.Contains(l, "reassigning") {
			sawReassign = true
		}
	}
	if !sawReassign {
		t.Fatalf("no reassignment logged: %v", logs)
	}
}

// stalledWorker holds the shard lease but never beats — the straggler.
type stalledWorker struct {
	done chan struct{}
	kill chan struct{}
	once sync.Once
	err  error
}

func (w *stalledWorker) Wait() error { <-w.done; return w.err }
func (w *stalledWorker) Kill()       { w.once.Do(func() { close(w.kill) }) }

// TestCoordinateKillsStalledShard: a worker that is alive (lease
// held) but silent past the TTL must be killed and its slice
// reassigned.
func TestCoordinateKillsStalledShard(t *testing.T) {
	spec := testSpec()
	dir := t.TempDir()
	healthy := inProcessSpawn(dir, spec, func(shard.Assignment, int) campaign.Runner { return pureRunner })
	var stalledGen0 bool
	spawn := func(ctx context.Context, a shard.Assignment, gen int) (shard.WorkerHandle, error) {
		if a.Index == 0 && gen == 0 {
			stalledGen0 = true
			w := &stalledWorker{done: make(chan struct{}), kill: make(chan struct{})}
			go func() {
				defer close(w.done)
				lease, err := shard.AcquireLease(shard.LeasePath(dir, a), shard.LeaseInfo{
					Shard: a.Index, Of: a.Of, Spec: spec.IdentityHash(),
				})
				if err != nil {
					w.err = err
					return
				}
				<-w.kill // hang, never beating, until the coordinator kills us
				lease.Release()
				w.err = errors.New("killed while stalled")
			}()
			return w, nil
		}
		return healthy(ctx, a, gen)
	}
	res, rep, err := shard.Coordinate(context.Background(), shard.Config{
		Dir: dir, Spec: spec, Shards: 2,
		LeaseTTL: 150 * time.Millisecond, Poll: 30 * time.Millisecond,
		Spawn: spawn,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !stalledGen0 {
		t.Fatal("stall worker never spawned — vacuous")
	}
	if !rep.Complete() {
		t.Fatalf("incomplete after stall recovery: %v", rep.Missing)
	}
	if res.Total != len(campaign.Expand(spec)) {
		t.Fatalf("Total = %d", res.Total)
	}
}

// TestCoordinateGivesUpAfterMaxRespawns: a shard that dies on every
// generation must abort the campaign with a named-shard error, not
// crash-loop forever.
func TestCoordinateGivesUpAfterMaxRespawns(t *testing.T) {
	spec := testSpec()
	dir := t.TempDir()
	deaths := 0
	pick := func(a shard.Assignment, gen int) campaign.Runner {
		if a.Index != 0 {
			return pureRunner
		}
		deaths++
		return func(ctx context.Context, s campaign.Spec, j campaign.Job) (campaign.Record, error) {
			<-ctx.Done()
			return campaign.Record{}, ctx.Err()
		}
	}
	spawn := inProcessSpawn(dir, spec, pick)
	// Wrap: kill shard 0's worker shortly after spawn so "dies" is fast.
	wrapped := func(ctx context.Context, a shard.Assignment, gen int) (shard.WorkerHandle, error) {
		h, err := spawn(ctx, a, gen)
		if err == nil && a.Index == 0 {
			go func() { time.Sleep(30 * time.Millisecond); h.Kill() }()
		}
		return h, err
	}
	_, _, err := shard.Coordinate(context.Background(), shard.Config{
		Dir: dir, Spec: spec, Shards: 2, MaxRespawns: 2,
		LeaseTTL: time.Second, Poll: 50 * time.Millisecond,
		Spawn: wrapped,
	})
	if err == nil {
		t.Fatal("crash-looping shard should abort the campaign")
	}
	if !strings.Contains(err.Error(), "shard 0/2") || !strings.Contains(err.Error(), "gave up") {
		t.Fatalf("error should name the shard and the give-up: %v", err)
	}
	if deaths != 3 { // gen 0 + MaxRespawns reassignments
		t.Fatalf("spawned %d generations, want 3", deaths)
	}
}

// TestCoordinateDrainThenResume: a drain mid-run stops cleanly with
// ErrDrained; a second Coordinate over the same directory finishes
// the grid and merges byte-identical — the coordinator-restart path.
func TestCoordinateDrainThenResume(t *testing.T) {
	spec := testSpec()
	spec.Workers = 1
	single, err := campaign.Run(context.Background(), spec, campaign.Options{Runner: pureRunner})
	if err != nil {
		t.Fatal(err)
	}
	want := summarize(t, single)

	dir := t.TempDir()
	drain := make(chan struct{})
	var ran int32
	var ranMu sync.Mutex
	slow := func(ctx context.Context, s campaign.Spec, j campaign.Job) (campaign.Record, error) {
		ranMu.Lock()
		ran++
		if ran == 2 {
			close(drain)
		}
		ranMu.Unlock()
		time.Sleep(5 * time.Millisecond)
		return pureRunner(ctx, s, j)
	}
	_, rep, err := shard.Coordinate(context.Background(), shard.Config{
		Dir: dir, Spec: spec, Shards: 2, Drain: drain,
		LeaseTTL: time.Second, Poll: 50 * time.Millisecond,
		Spawn: inProcessSpawn(dir, spec, func(shard.Assignment, int) campaign.Runner { return slow }),
	})
	if !errors.Is(err, campaign.ErrDrained) {
		t.Fatalf("want ErrDrained, got %v", err)
	}
	if rep == nil || rep.Complete() {
		t.Fatal("drained run should be incomplete")
	}

	res, rep, err := shard.Coordinate(context.Background(), shard.Config{
		Dir: dir, Spec: spec, Shards: 2,
		Spawn: inProcessSpawn(dir, spec, func(shard.Assignment, int) campaign.Runner { return pureRunner }),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Complete() {
		t.Fatalf("resumed coordinate incomplete: %v", rep.Missing)
	}
	if got := summarize(t, res); !bytes.Equal(got, want) {
		t.Fatalf("drain+resume summary differs:\n%s\nwant:\n%s", got, want)
	}
}

func TestCoordinateRefusesSecondCoordinator(t *testing.T) {
	spec := testSpec()
	dir := t.TempDir()
	lock, err := durable.AcquireLock(shard.CoordinatorLockPath(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer lock.Release()
	_, _, err = shard.Coordinate(context.Background(), shard.Config{
		Dir: dir, Spec: spec, Shards: 2,
		Spawn: inProcessSpawn(dir, spec, func(shard.Assignment, int) campaign.Runner { return pureRunner }),
	})
	if !errors.Is(err, durable.ErrLocked) {
		t.Fatalf("want ErrLocked, got %v", err)
	}
}
