package shard_test

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"rowhammer/internal/campaign"
	"rowhammer/internal/leasesvc"
	"rowhammer/internal/shard"
)

// fleetHarness is an in-process fleet: one lease service (registry +
// shard leases) and N RunWorker loops whose Run executes RunShard
// against that same service — the exact composition the binaries
// deploy across machines, minus the wire.
type fleetHarness struct {
	t    *testing.T
	svc  *leasesvc.Service
	ttl  time.Duration
	dir  string
	spec campaign.Spec

	mu      sync.Mutex
	cancels map[string]context.CancelFunc
	drains  map[string]chan struct{}
	done    map[string]chan error
}

func newFleetHarness(t *testing.T, dir string, spec campaign.Spec, ttl time.Duration) *fleetHarness {
	return &fleetHarness{
		t: t, svc: leasesvc.NewService(ttl), ttl: ttl, dir: dir, spec: spec,
		cancels: map[string]context.CancelFunc{},
		drains:  map[string]chan struct{}{},
		done:    map[string]chan error{},
	}
}

// startWorker launches worker id. runner may be nil for pureRunner;
// onRecord, when non-nil, observes every finished job.
func (h *fleetHarness) startWorker(id string, runner campaign.Runner, onRecord func(p leasesvc.Placement)) {
	if runner == nil {
		runner = pureRunner
	}
	ctx, cancel := context.WithCancel(context.Background())
	drain := make(chan struct{})
	done := make(chan error, 1)
	h.mu.Lock()
	h.cancels[id] = cancel
	h.drains[id] = drain
	h.done[id] = done
	h.mu.Unlock()
	go func() {
		done <- shard.RunWorker(ctx, shard.WorkerConfig{
			Registry: h.svc, ID: id, TTL: h.ttl,
			Drain: drain,
			Log:   h.t.Logf,
			Run: func(ctx context.Context, p leasesvc.Placement, pdrain <-chan struct{}) error {
				_, err := shard.RunShard(ctx, shard.RunConfig{
					Dir:        p.Dir,
					Assignment: shard.Assignment{Index: p.Shard, Of: p.Of},
					Spec:       h.spec, Runner: runner,
					Drain: pdrain, BeatEvery: 20 * time.Millisecond,
					Lease: h.svc, LeaseTTL: h.ttl,
					Owner: id,
					Progress: func(_, _ int, _ campaign.Record) {
						if onRecord != nil {
							onRecord(p)
						}
					},
				})
				return err
			},
		})
	}()
	h.waitRegistered(id)
}

func (h *fleetHarness) waitRegistered(id string) {
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		for _, w := range h.svc.Workers() {
			if w.ID == id && w.Alive {
				return
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	h.t.Fatalf("worker %s never registered", id)
}

func (h *fleetHarness) kill(id string) {
	h.mu.Lock()
	cancel := h.cancels[id]
	done := h.done[id]
	h.mu.Unlock()
	cancel()
	<-done
	h.mu.Lock()
	delete(h.drains, id)
	delete(h.done, id)
	h.mu.Unlock()
}

func (h *fleetHarness) drainAll() {
	h.mu.Lock()
	defer h.mu.Unlock()
	for id, d := range h.drains {
		close(d)
		if err := <-h.done[id]; !errors.Is(err, campaign.ErrDrained) {
			h.t.Errorf("worker %s drain returned %v, want ErrDrained", id, err)
		}
	}
}

// TestFleetCoordinateHappyPath: shards submitted to a fleet of
// registered workers complete with zero spawned processes, and the
// merged result is byte-identical to a single-process run.
func TestFleetCoordinateHappyPath(t *testing.T) {
	spec := testSpec()
	single, err := campaign.Run(context.Background(), spec, campaign.Options{Runner: pureRunner})
	if err != nil {
		t.Fatal(err)
	}
	want := summarize(t, single)

	dir := t.TempDir()
	ttl := 400 * time.Millisecond
	h := newFleetHarness(t, dir, spec, ttl)
	h.startWorker("w1", nil, nil)
	h.startWorker("w2", nil, nil)

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	var progressed bool
	res, rep, err := shard.Coordinate(ctx, shard.Config{
		Dir: dir, Spec: spec, Shards: 4,
		Fleet: h.svc, LeaseTTL: ttl, Poll: 25 * time.Millisecond,
		Progress: func(done, total int) {
			if done > 0 && total == len(campaign.Expand(spec)) {
				progressed = true
			}
		},
		Log: t.Logf,
	})
	if err != nil {
		t.Fatalf("fleet coordinate: %v", err)
	}
	if !rep.Complete() {
		t.Fatalf("incomplete: %v", rep.Missing)
	}
	if got := summarize(t, res); !bytes.Equal(got, want) {
		t.Fatalf("fleet summary differs:\n%s\nwant:\n%s", got, want)
	}
	if !progressed {
		t.Fatal("Progress never observed done > 0 with the campaign-wide total")
	}
	h.drainAll()
}

// TestFleetCoordinateWorkerLossReassigns: a worker dies mid-shard; the
// scheduler reassigns its started shard (gen+1, through the lease
// lapse) and re-places its queued shards on the survivor, and the
// merge is still byte-identical.
func TestFleetCoordinateWorkerLossReassigns(t *testing.T) {
	spec := testSpec()
	spec.Workers = 1
	single, err := campaign.Run(context.Background(), spec, campaign.Options{Runner: pureRunner})
	if err != nil {
		t.Fatal(err)
	}
	want := summarize(t, single)

	dir := t.TempDir()
	ttl := 400 * time.Millisecond
	h := newFleetHarness(t, dir, spec, ttl)

	var recOnce sync.Once
	firstRecord := make(chan struct{})
	// w1 reports each record; slow jobs so the kill lands mid-shard.
	slow := func(ctx context.Context, s campaign.Spec, j campaign.Job) (campaign.Record, error) {
		time.Sleep(30 * time.Millisecond)
		return pureRunner(ctx, s, j)
	}
	h.startWorker("w1", slow, func(leasesvc.Placement) {
		recOnce.Do(func() { close(firstRecord) })
	})
	h.startWorker("w2", nil, nil)

	go func() {
		<-firstRecord
		time.Sleep(30 * time.Millisecond) // let the record land in the checkpoint
		h.kill("w1")
	}()

	var logMu sync.Mutex
	var logs []string
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	res, rep, err := shard.Coordinate(ctx, shard.Config{
		Dir: dir, Spec: spec, Shards: 3,
		Fleet: h.svc, LeaseTTL: ttl, Poll: 25 * time.Millisecond,
		Log: func(f string, args ...any) {
			logMu.Lock()
			logs = append(logs, fmt.Sprintf(f, args...))
			logMu.Unlock()
			t.Logf(f, args...)
		},
	})
	if err != nil {
		t.Fatalf("fleet coordinate after worker loss: %v", err)
	}
	if !rep.Complete() {
		t.Fatalf("incomplete: %v", rep.Missing)
	}
	if got := summarize(t, res); !bytes.Equal(got, want) {
		t.Fatalf("post-loss summary differs:\n%s\nwant:\n%s", got, want)
	}
	logMu.Lock()
	defer logMu.Unlock()
	var sawReassign bool
	for _, l := range logs {
		if strings.Contains(l, "reassigning") || strings.Contains(l, "re-placing") {
			sawReassign = true
		}
	}
	if !sawReassign {
		t.Fatalf("worker loss never triggered a reassignment: %v", logs)
	}
	h.drainAll()
}

// TestFleetCoordinateBoundsUnstartablePlacement: a placement its
// worker can never start (Run fails instantly, so the shard lease is
// never acquired) must exhaust MaxRespawns and abort — not hang the
// campaign forever.
func TestFleetCoordinateBoundsUnstartablePlacement(t *testing.T) {
	spec := testSpec()
	dir := t.TempDir()
	ttl := 100 * time.Millisecond
	h := newFleetHarness(t, dir, spec, ttl)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() {
		done <- shard.RunWorker(ctx, shard.WorkerConfig{
			Registry: h.svc, ID: "broken", TTL: ttl, Log: t.Logf,
			Run: func(context.Context, leasesvc.Placement, <-chan struct{}) error {
				return errors.New("cannot start anything")
			},
		})
	}()
	h.waitRegistered("broken")

	cctx, ccancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer ccancel()
	_, _, err := shard.Coordinate(cctx, shard.Config{
		Dir: dir, Spec: spec, Shards: 1, MaxRespawns: 1,
		Fleet: h.svc, LeaseTTL: ttl, Poll: 20 * time.Millisecond,
		Log: t.Logf,
	})
	if err == nil {
		t.Fatal("an unstartable placement should abort the campaign")
	}
	if !strings.Contains(err.Error(), "gave up") || !strings.Contains(err.Error(), "never acquired") {
		t.Fatalf("error should carry the give-up and the starvation cause: %v", err)
	}
	cancel()
	<-done
}

// TestLocalCoordinateMirrorsWorkersIntoRegistry: local coordination is
// the degenerate case of placement — with a Registry configured, each
// spawned worker appears in /v1/workers under a synthetic identity,
// and is deregistered when it exits.
func TestLocalCoordinateMirrorsWorkersIntoRegistry(t *testing.T) {
	spec := testSpec()
	dir := t.TempDir()
	svc := leasesvc.NewService(time.Second)
	_, rep, err := shard.Coordinate(context.Background(), shard.Config{
		Dir: dir, Spec: spec, Shards: 3, Registry: svc,
		LeaseTTL: time.Second, Poll: 20 * time.Millisecond,
		Spawn: inProcessSpawn(dir, spec, func(shard.Assignment, int) campaign.Runner { return pureRunner }),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Complete() {
		t.Fatalf("incomplete: %v", rep.Missing)
	}
	ws := svc.Workers()
	if len(ws) != 3 {
		t.Fatalf("registry mirror holds %d workers, want 3: %+v", len(ws), ws)
	}
	for _, w := range ws {
		if !strings.HasPrefix(w.ID, "local/shard-") {
			t.Fatalf("mirror id = %q", w.ID)
		}
		if w.Alive {
			t.Fatalf("worker %s still alive after its shard completed", w.ID)
		}
		if w.Token == 0 {
			t.Fatalf("worker %s never registered", w.ID)
		}
	}
}

// TestFleetCoordinateNoWorkersBounded: a fleet campaign whose worker
// set is empty must not wait forever — the scheduler gives up after
// its patience with ErrNoWorkers (which rhserved turns into an
// in-process fallback) instead of logging "waiting" unboundedly.
func TestFleetCoordinateNoWorkersBounded(t *testing.T) {
	spec := testSpec()
	svc := leasesvc.NewService(100 * time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	_, _, err := shard.Coordinate(ctx, shard.Config{
		Dir: t.TempDir(), Spec: spec, Shards: 2, MaxRespawns: 1,
		Fleet: svc, LeaseTTL: 100 * time.Millisecond, Poll: 20 * time.Millisecond,
		Log: t.Logf,
	})
	if !errors.Is(err, shard.ErrNoWorkers) {
		t.Fatalf("empty-fleet coordinate = %v, want ErrNoWorkers", err)
	}
}

// TestFleetForeignBusySlotIsNotStarvation: the starvation bound must
// judge a worker's free capacity service-wide. Here the only worker's
// single slot is occupied by another campaign's placement (its shard
// lease held by a different scheduler), so our queued shard is
// legitimately waiting, not wedged — with slot-blind accounting it
// would be judged "never acquired the shard lease" after 6×TTL,
// burn through MaxRespawns, and falsely abort.
func TestFleetForeignBusySlotIsNotStarvation(t *testing.T) {
	spec := testSpec()
	dir := t.TempDir()
	ttl := 100 * time.Millisecond
	h := newFleetHarness(t, dir, spec, ttl)

	foreign := leasesvc.Placement{Campaign: "feedfacefeedface", Dir: dir, Shard: 0, Of: 1}
	foreignHeld := make(chan struct{})
	releaseForeign := make(chan struct{})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	workerDone := make(chan error, 1)
	go func() {
		workerDone <- shard.RunWorker(ctx, shard.WorkerConfig{
			Registry: h.svc, ID: "shared", TTL: ttl, Slots: 1, Log: t.Logf,
			Run: func(ctx context.Context, p leasesvc.Placement, pdrain <-chan struct{}) error {
				if p == foreign {
					// The other campaign's shard: hold its lease and
					// keep beating until released.
					g, err := h.svc.Acquire(ctx, p.LeaseKey(), "other-campaign", ttl)
					if err != nil {
						return err
					}
					defer h.svc.Release(context.Background(), p.LeaseKey(), g.Token)
					close(foreignHeld)
					tick := time.NewTicker(ttl / 4)
					defer tick.Stop()
					for seq := uint64(1); ; seq++ {
						select {
						case <-releaseForeign:
							return nil
						case <-ctx.Done():
							return ctx.Err()
						case <-tick.C:
							h.svc.Beat(ctx, p.LeaseKey(), g.Token, leasesvc.Beat{Seq: seq})
						}
					}
				}
				_, err := shard.RunShard(ctx, shard.RunConfig{
					Dir:        p.Dir,
					Assignment: shard.Assignment{Index: p.Shard, Of: p.Of},
					Spec:       h.spec, Runner: pureRunner,
					Drain: pdrain, BeatEvery: 20 * time.Millisecond,
					Lease: h.svc, LeaseTTL: ttl, Owner: "shared",
				})
				return err
			},
		})
	}()
	h.waitRegistered("shared")
	if err := h.svc.Assign("shared", foreign); err != nil {
		t.Fatal(err)
	}
	<-foreignHeld

	// Free the slot only after the 6×TTL starvation bound would have
	// fired twice over — with MaxRespawns 1, slot-blind accounting
	// would have aborted the campaign well before this.
	go func() {
		time.Sleep(14 * ttl)
		close(releaseForeign)
	}()

	cctx, ccancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer ccancel()
	_, rep, err := shard.Coordinate(cctx, shard.Config{
		Dir: dir, Spec: spec, Shards: 1, MaxRespawns: 1,
		Fleet: h.svc, LeaseTTL: ttl, Poll: 20 * time.Millisecond,
		Log: t.Logf,
	})
	if err != nil {
		t.Fatalf("campaign aborted while its worker was busy with another campaign: %v", err)
	}
	if !rep.Complete() {
		t.Fatalf("incomplete: %v", rep.Missing)
	}
	cancel()
	<-workerDone
}
