package shard_test

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"rowhammer/internal/durable"
	"rowhammer/internal/shard"
)

func TestLeaseAcquireProbeBeatRelease(t *testing.T) {
	path := filepath.Join(t.TempDir(), "s.lease")
	l, err := shard.AcquireLease(path, shard.LeaseInfo{Shard: 1, Of: 4, Spec: "cafe", Total: 10})
	if err != nil {
		t.Fatal(err)
	}

	p, err := shard.ProbeLease(path)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Held || !p.InfoOK {
		t.Fatalf("live lease probes Held=%v InfoOK=%v", p.Held, p.InfoOK)
	}
	if p.Info.Shard != 1 || p.Info.Of != 4 || p.Info.Spec != "cafe" || p.Info.PID != os.Getpid() {
		t.Fatalf("probe info = %+v", p.Info)
	}

	// A second acquire of a live lease must fail with ErrLocked.
	if _, err := shard.AcquireLease(path, shard.LeaseInfo{Shard: 1, Of: 4}); !errors.Is(err, durable.ErrLocked) {
		t.Fatalf("double acquire: want ErrLocked, got %v", err)
	}

	if err := l.Beat(7, 10); err != nil {
		t.Fatal(err)
	}
	if err := l.Beat(9, 10); err != nil {
		t.Fatal(err)
	}
	p, err = shard.ProbeLease(path)
	if err != nil {
		t.Fatal(err)
	}
	if !p.InfoOK || p.Info.Done != 9 || p.Info.Seq != 2 {
		t.Fatalf("after 2 beats: %+v", p.Info)
	}

	if err := l.Release(); err != nil {
		t.Fatal(err)
	}
	p, err = shard.ProbeLease(path)
	if err != nil {
		t.Fatal(err)
	}
	if p.Held || p.InfoOK {
		t.Fatalf("released lease probes Held=%v InfoOK=%v", p.Held, p.InfoOK)
	}
	if _, err := os.Stat(path); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("clean release should remove the lease file")
	}
}

func TestLeaseProbeMissing(t *testing.T) {
	p, err := shard.ProbeLease(filepath.Join(t.TempDir(), "nope.lease"))
	if err != nil {
		t.Fatal(err)
	}
	if p.Held || p.InfoOK {
		t.Fatalf("missing lease probes %+v", p)
	}
}

func TestLeaseStalled(t *testing.T) {
	path := filepath.Join(t.TempDir(), "s.lease")
	l, err := shard.AcquireLease(path, shard.LeaseInfo{Shard: 0, Of: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Release()

	p, err := shard.ProbeLease(path)
	if err != nil {
		t.Fatal(err)
	}
	if p.Stalled(time.Hour) {
		t.Fatal("fresh lease reported stalled")
	}
	// Age the heartbeat file without beating.
	old := time.Now().Add(-time.Minute)
	if err := os.Chtimes(path, old, old); err != nil {
		t.Fatal(err)
	}
	p, err = shard.ProbeLease(path)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Stalled(time.Second) {
		t.Fatalf("aged live lease should stall (age %s)", p.Age)
	}
	// A beat rewrites the file and clears the stall.
	if err := l.Beat(1, 2); err != nil {
		t.Fatal(err)
	}
	p, err = shard.ProbeLease(path)
	if err != nil {
		t.Fatal(err)
	}
	if p.Stalled(time.Second) {
		t.Fatal("beat did not clear the stall clock")
	}
	// Stalled is only meaningful for a live holder: a dead shard is
	// dead, not stalled.
	l.Release()
	if err := writeFile(path, []byte("leftover")); err != nil {
		t.Fatal(err)
	}
	os.Chtimes(path, old, old)
	p, _ = shard.ProbeLease(path)
	if p.Stalled(time.Second) {
		t.Fatal("unheld lease reported stalled")
	}
}

// TestLeaseTornRewrite: a probe that catches a torn heartbeat line
// must report InfoOK=false, never garbage.
func TestLeaseTornRewrite(t *testing.T) {
	path := filepath.Join(t.TempDir(), "s.lease")
	l, err := shard.AcquireLease(path, shard.LeaseInfo{Shard: 2, Of: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Release()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Simulate the torn state mid-rewrite: truncate half the line.
	if err := os.WriteFile(path, raw[:len(raw)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	p, err := shard.ProbeLease(path)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Held {
		t.Fatal("flock should still be held")
	}
	if p.InfoOK {
		t.Fatal("torn heartbeat line must not verify")
	}
}
