package shard

import (
	"context"
	"fmt"
	"sync"
	"time"

	"rowhammer/internal/campaign"
)

// RunConfig configures one shard worker run.
type RunConfig struct {
	// Dir is the shard directory (layout helpers name the files).
	Dir string
	// Assignment is the shard's slice of the grid.
	Assignment Assignment
	// Spec is the resolved engine spec — identical across all shards
	// of the campaign; the assignment, not the spec, is what differs.
	Spec campaign.Spec
	// Runner executes jobs (required).
	Runner campaign.Runner
	// Drain, when delivered or closed, stops dispatch gracefully —
	// in-flight jobs finish and checkpoint, RunShard returns
	// campaign.ErrDrained.
	Drain <-chan struct{}
	// Progress, when non-nil, receives per-job completion callbacks
	// with shard-local totals.
	Progress func(done, total int, rec campaign.Record)
	// BeatEvery is the idle heartbeat interval (default 1s); every
	// finished job also beats, so the lease's Done counter tracks the
	// checkpoint. It should be well under the coordinator's LeaseTTL.
	BeatEvery time.Duration
	// ArmCheckpoint, when non-nil, is handed the checkpoint writer
	// before any byte is written — the crash-injection seam.
	ArmCheckpoint func(*campaign.CheckpointWriter)
	// Log, when non-nil, receives one-line progress messages.
	Log func(format string, args ...any)
}

// RunShard executes one shard of a campaign: acquire the shard lease
// (refusing to run if a live process already owns the slice), resume
// from the shard checkpoint, run exactly the assigned jobs through
// the engine, and heartbeat the lease throughout. On return the lease
// is released; on SIGKILL the kernel releases it. The checkpoint
// survives either way, which is what makes the shard's remaining jobs
// computable by whoever takes over.
func RunShard(ctx context.Context, cfg RunConfig) (*campaign.Result, error) {
	if err := cfg.Assignment.Validate(); err != nil {
		return nil, err
	}
	if cfg.Runner == nil {
		return nil, fmt.Errorf("shard: RunConfig.Runner is required")
	}
	spec, err := cfg.Spec.Normalize()
	if err != nil {
		return nil, err
	}
	logf := cfg.Log
	if logf == nil {
		logf = func(string, ...any) {}
	}
	a := cfg.Assignment
	only := a.Filter(spec)
	ckptPath := CheckpointPath(cfg.Dir, a)

	lease, err := AcquireLease(LeasePath(cfg.Dir, a), LeaseInfo{
		Shard: a.Index, Of: a.Of, Spec: spec.IdentityHash(), Total: len(only),
	})
	if err != nil {
		return nil, fmt.Errorf("shard %s: %w", a, err)
	}
	defer lease.Release()

	rep, err := campaign.LoadCheckpointReport(ckptPath, campaign.ResumeOptions{ExpectSpec: &spec})
	if err != nil {
		return nil, fmt.Errorf("shard %s: resume %s: %w", a, ckptPath, err)
	}
	if h := rep.Header; h != nil && (h.Shard != a.Index || h.Of != a.Of) {
		return nil, fmt.Errorf("%w: %s holds shard %d/%d, this worker is shard %s",
			campaign.ErrShardMismatch, ckptPath, h.Shard, h.Of, a)
	}
	if len(rep.Records) > 0 {
		logf("shard %s: resuming with %d checkpointed record(s)", a, len(rep.Records))
	}
	cw, err := campaign.AppendShardCheckpoint(ckptPath, spec, a.Index, a.Of)
	if err != nil {
		return nil, fmt.Errorf("shard %s: %w", a, err)
	}
	defer cw.Close()
	if cfg.ArmCheckpoint != nil {
		cfg.ArmCheckpoint(cw)
	}
	// Write the header eagerly: even a shard that dies before its
	// first record — or owns zero jobs — leaves a self-describing
	// checkpoint behind for the merge's identity check.
	if err := cw.WriteHeader(); err != nil {
		return nil, fmt.Errorf("shard %s: %w", a, err)
	}

	// Heartbeats: every finished job, plus an idle ticker so a shard
	// deep inside one long job still proves progress to the lease.
	beatEvery := cfg.BeatEvery
	if beatEvery <= 0 {
		beatEvery = time.Second
	}
	var beatMu sync.Mutex
	lastDone := 0
	beat := func(done int) {
		beatMu.Lock()
		if done >= 0 {
			lastDone = done
		}
		done = lastDone
		beatMu.Unlock()
		lease.Beat(done, len(only))
	}
	tickCtx, stopTick := context.WithCancel(context.Background())
	defer stopTick()
	go func() {
		t := time.NewTicker(beatEvery)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				beat(-1)
			case <-tickCtx.Done():
				return
			}
		}
	}()

	opts := campaign.Options{
		Runner:  cfg.Runner,
		Records: cw,
		Done:    rep.Records,
		Only:    only,
		Drain:   cfg.Drain,
		Progress: func(done, total int, rec campaign.Record) {
			beat(done)
			if cfg.Progress != nil {
				cfg.Progress(done, total, rec)
			}
		},
	}
	res, err := campaign.Run(ctx, spec, opts)
	if cerr := cw.Close(); cerr != nil && err == nil {
		err = cerr
	}
	return res, err
}
