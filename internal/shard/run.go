package shard

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"rowhammer/internal/campaign"
	"rowhammer/internal/leasesvc"
)

// RunConfig configures one shard worker run.
type RunConfig struct {
	// Dir is the shard directory (layout helpers name the files).
	Dir string
	// Assignment is the shard's slice of the grid.
	Assignment Assignment
	// Spec is the resolved engine spec — identical across all shards
	// of the campaign; the assignment, not the spec, is what differs.
	Spec campaign.Spec
	// Runner executes jobs (required).
	Runner campaign.Runner
	// Drain, when delivered or closed, stops dispatch gracefully —
	// in-flight jobs finish and checkpoint, RunShard returns
	// campaign.ErrDrained.
	Drain <-chan struct{}
	// Progress, when non-nil, receives per-job completion callbacks
	// with shard-local totals.
	Progress func(done, total int, rec campaign.Record)
	// BeatEvery is the idle heartbeat interval (default 1s); every
	// finished job also beats, so the lease's Done counter tracks the
	// checkpoint. It should be well under the coordinator's LeaseTTL.
	BeatEvery time.Duration
	// ArmCheckpoint, when non-nil, is handed the checkpoint writer
	// before any byte is written — the crash-injection seam.
	ArmCheckpoint func(*campaign.CheckpointWriter)
	// Log, when non-nil, receives one-line progress messages.
	Log func(format string, args ...any)

	// Lease, when non-nil, selects remote-lease mode: ownership comes
	// from this lease service instead of a local flock, acquisition
	// mints a fencing token that is raised into the shard's fence
	// file and stamped into (and enforced on) every record append,
	// and heartbeat failures degrade gracefully — after LeaseTTL of
	// continuous failure the worker self-fences: drains in-flight
	// work, flushes its checkpoint, and returns campaign.ErrDrained.
	Lease leasesvc.API
	// LeaseTTL is the TTL requested at acquisition (default
	// leasesvc.DefaultTTL). Remote mode only.
	LeaseTTL time.Duration
	// LeasePatience bounds how long acquisition waits for a held
	// lease to age out (default 4×TTL). Remote mode only.
	LeasePatience time.Duration
	// Owner labels the acquisition in the service for diagnostics
	// (default host:pid). Remote mode only.
	Owner string
}

// RunShard executes one shard of a campaign: acquire the shard lease
// (a local flock, or a remote lease service when cfg.Lease is set),
// resume from the shard checkpoint, run exactly the assigned jobs
// through the engine, and heartbeat the lease throughout. On return
// the lease is released; on SIGKILL the kernel releases the flock (or
// the service ages the remote lease out). The checkpoint survives
// either way, which is what makes the shard's remaining jobs
// computable by whoever takes over — and in remote mode the fence
// file guarantees whoever took over is the only one still able to
// write.
func RunShard(ctx context.Context, cfg RunConfig) (*campaign.Result, error) {
	if err := cfg.Assignment.Validate(); err != nil {
		return nil, err
	}
	if cfg.Runner == nil {
		return nil, fmt.Errorf("shard: RunConfig.Runner is required")
	}
	spec, err := cfg.Spec.Normalize()
	if err != nil {
		return nil, err
	}
	logf := cfg.Log
	if logf == nil {
		logf = func(string, ...any) {}
	}
	a := cfg.Assignment
	only := a.Filter(spec)
	ckptPath := CheckpointPath(cfg.Dir, a)

	// Ownership: flock locally, leased-and-fenced remotely.
	var beatFn func(done, total int)
	var keeper *remoteKeeper
	drain := cfg.Drain
	if cfg.Lease != nil {
		owner := cfg.Owner
		if owner == "" {
			owner = leasesvc.DefaultOwner()
		}
		key := leasesvc.Key{Campaign: spec.IdentityHash(), Shard: a.Index, Of: a.Of}
		keeper, err = acquireRemoteLease(ctx, cfg.Lease, key, owner, cfg.LeaseTTL, cfg.LeasePatience, logf)
		if err != nil {
			return nil, fmt.Errorf("shard %s: %w", a, err)
		}
		defer keeper.release()
		if err := RaiseFence(FencePath(cfg.Dir, a), keeper.token); err != nil {
			return nil, fmt.Errorf("shard %s: %w", a, err)
		}
		logf("shard %s: remote lease acquired, fencing token %d (ttl %s)", a, keeper.token, keeper.ttl)
		beatFn = func(done, total int) {
			// Bounded so a wedged network cannot pile up beats; a
			// deadline here is network weather, cancellation of ctx is
			// shutdown — keeper.beat tells them apart.
			bctx, cancel := context.WithTimeout(ctx, beatTimeout(keeper.ttl))
			keeper.beat(bctx, done, total)
			cancel()
		}
		// Self-fencing merges into the drain path: fenced or drained,
		// the engine stops dispatch, finishes in-flight jobs, and the
		// checkpoint keeps every record that made it.
		merged := make(chan struct{})
		stop := make(chan struct{})
		defer close(stop)
		go func() {
			select {
			case <-keeper.fenced:
				close(merged)
			case <-cfg.Drain:
				close(merged)
			case <-stop:
			}
		}()
		drain = merged
	} else {
		lease, lerr := AcquireLease(LeasePath(cfg.Dir, a), LeaseInfo{
			Shard: a.Index, Of: a.Of, Spec: spec.IdentityHash(), Total: len(only),
		})
		if lerr != nil {
			return nil, fmt.Errorf("shard %s: %w", a, lerr)
		}
		defer lease.Release()
		beatFn = func(done, total int) { lease.Beat(done, total) }
	}

	rep, err := campaign.LoadCheckpointReport(ckptPath, campaign.ResumeOptions{ExpectSpec: &spec})
	if err != nil {
		return nil, fmt.Errorf("shard %s: resume %s: %w", a, ckptPath, err)
	}
	if h := rep.Header; h != nil && (h.Shard != a.Index || h.Of != a.Of) {
		return nil, fmt.Errorf("%w: %s holds shard %d/%d, this worker is shard %s",
			campaign.ErrShardMismatch, ckptPath, h.Shard, h.Of, a)
	}
	if len(rep.Records) > 0 {
		logf("shard %s: resuming with %d checkpointed record(s)", a, len(rep.Records))
	}
	cw, err := campaign.AppendShardCheckpoint(ckptPath, spec, a.Index, a.Of)
	if err != nil {
		return nil, fmt.Errorf("shard %s: %w", a, err)
	}
	defer cw.Close()
	if cfg.ArmCheckpoint != nil {
		cfg.ArmCheckpoint(cw)
	}
	// Write the header eagerly: even a shard that dies before its
	// first record — or owns zero jobs — leaves a self-describing
	// checkpoint behind for the merge's identity check.
	if err := cw.WriteHeader(); err != nil {
		return nil, fmt.Errorf("shard %s: %w", a, err)
	}
	// In remote mode every append re-checks the fence file, so a
	// worker superseded mid-run is refused at its very next record.
	var records campaign.RecordWriter = cw
	if keeper != nil {
		records = NewFencedWriter(cw, FencePath(cfg.Dir, a), keeper.token)
	}

	// Heartbeats: every finished job, plus an idle ticker so a shard
	// deep inside one long job still proves progress to the lease.
	beatEvery := cfg.BeatEvery
	if beatEvery <= 0 {
		beatEvery = time.Second
	}
	var beatMu sync.Mutex
	lastDone := 0
	beat := func(done int) {
		beatMu.Lock()
		if done >= 0 {
			lastDone = done
		}
		done = lastDone
		beatMu.Unlock()
		beatFn(done, len(only))
	}
	tickCtx, stopTick := context.WithCancel(context.Background())
	defer stopTick()
	go func() {
		t := time.NewTicker(beatEvery)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				beat(-1)
			case <-tickCtx.Done():
				return
			}
		}
	}()

	opts := campaign.Options{
		Runner:  cfg.Runner,
		Records: records,
		Done:    rep.Records,
		Only:    only,
		Drain:   drain,
		Progress: func(done, total int, rec campaign.Record) {
			beat(done)
			if cfg.Progress != nil {
				cfg.Progress(done, total, rec)
			}
		},
	}
	res, err := campaign.Run(ctx, spec, opts)
	if cerr := cw.Close(); cerr != nil && err == nil {
		err = cerr
	}
	if keeper != nil && err != nil {
		if why, fenced := keeper.selfFenced(); fenced && errors.Is(err, campaign.ErrDrained) {
			err = fmt.Errorf("shard %s: self-fenced (%s): %w", a, why, err)
		}
	}
	return res, err
}

// beatTimeout bounds one heartbeat call well under the TTL so a
// failing beat is observed as failing while there is still time to
// react.
func beatTimeout(ttl time.Duration) time.Duration {
	d := ttl / 4
	if d < 250*time.Millisecond {
		d = 250 * time.Millisecond
	}
	if d > 5*time.Second {
		d = 5 * time.Second
	}
	return d
}
