package shard

import (
	"sort"
	"time"
)

// rateTracker estimates per-worker throughput from the done counters
// the shard leases report. Every advance of a shard's done count is
// credited to the worker the shard is placed on at observation time —
// the scheduler needs no cooperation from workers beyond the lease
// beats they already send. Progress is monotone across fencing
// handovers (the service keeps done/total through reacquisition), so
// deltas are meaningful even when a shard changes hands.
type rateTracker struct {
	workers  map[string]*workerRate
	lastDone map[int]int // shard index → last observed done
}

type workerRate struct {
	credited int       // jobs credited so far
	first    time.Time // when credit started accruing
	last     time.Time // most recent credit
}

func newRateTracker() *rateTracker {
	return &rateTracker{workers: map[string]*workerRate{}, lastDone: map[int]int{}}
}

// observe records shard idx's current done count and credits any
// advance to worker w. The first observation of a shard establishes
// its baseline without crediting anyone — pre-existing records from a
// resumed checkpoint are nobody's throughput.
func (t *rateTracker) observe(w string, idx, done int, now time.Time) {
	prev, seen := t.lastDone[idx]
	t.lastDone[idx] = done
	if !seen || done <= prev || w == "" {
		return
	}
	r := t.workers[w]
	if r == nil {
		// The first credit's accrual window is unobserved — it anchors
		// the clock but does not count.
		t.workers[w] = &workerRate{first: now}
		return
	}
	r.credited += done - prev
	r.last = now
}

// doneOf reports the last observed done count for shard idx.
func (t *rateTracker) doneOf(idx int) int { return t.lastDone[idx] }

// rate reports worker w's estimated throughput in jobs/sec, ok=false
// while there is not yet enough signal (fewer than two credit
// observations spread over measurable time).
func (t *rateTracker) rate(w string) (float64, bool) {
	r := t.workers[w]
	if r == nil || r.credited == 0 {
		return 0, false
	}
	elapsed := r.last.Sub(r.first)
	if elapsed <= 0 {
		return 0, false
	}
	return float64(r.credited) / elapsed.Seconds(), true
}

// fallbackRate is the throughput assumed for a worker with no signal
// yet: the median of the known rates, so cold workers are judged
// neither generous nor harsh, or 1 job/sec when nothing is known.
func (t *rateTracker) fallbackRate() float64 {
	var rates []float64
	for w := range t.workers {
		if r, ok := t.rate(w); ok {
			rates = append(rates, r)
		}
	}
	if len(rates) == 0 {
		return 1
	}
	sort.Float64s(rates)
	return rates[len(rates)/2]
}

// rateOr reports w's measured rate or the fallback.
func (t *rateTracker) rateOr(w string) float64 {
	if r, ok := t.rate(w); ok {
		return r
	}
	return t.fallbackRate()
}
