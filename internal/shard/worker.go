package shard

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"rowhammer/internal/campaign"
	"rowhammer/internal/leasesvc"
)

// WorkerConfig configures RunWorker — the pull loop a fleet worker
// runs against the placement layer.
type WorkerConfig struct {
	// Registry is the worker-registry protocol (required): *Service in
	// process, *Client across machines — the worker cannot tell.
	Registry leasesvc.RegistryAPI
	// ID names the worker's registration (default leasesvc's host:pid
	// owner string). Re-using an ID supersedes the previous holder.
	ID string
	// Owner labels the registration for diagnostics (default ID).
	Owner string
	// Slots is how many placements run concurrently (default 1).
	Slots int
	// TTL is the registration heartbeat TTL (default leasesvc's).
	TTL time.Duration
	// Run executes one placement (required). It is expected to acquire
	// the placement's shard lease itself (RunShard with a Lease does
	// exactly that), so a stale assignment delivered to two workers
	// costs one of them a refused acquire, never a duplicate record.
	// The drain channel closes when the scheduler withdraws the
	// placement; Run should stop gracefully and checkpoint.
	Run func(ctx context.Context, p leasesvc.Placement, drain <-chan struct{}) error
	// Drain, when delivered or closed, stops the worker gracefully:
	// in-flight placements finish draining, the worker deregisters,
	// and RunWorker returns campaign.ErrDrained.
	Drain <-chan struct{}
	// Log, when non-nil, receives one-line progress messages.
	Log func(format string, args ...any)
}

// RunWorker registers with the placement layer and executes whatever
// shard placements the scheduler assigns, until the context ends or a
// drain is requested. Assignments arrive as heartbeat answers: each
// beat returns the worker's current placement set, and the loop
// reconciles — new placements start (up to Slots at a time, the rest
// queue), withdrawn placements drain. Liveness flows the other way on
// the same channel: the scheduler trusts this worker only while its
// beat Seq keeps advancing.
//
// Correctness never rests on this loop. A worker that misses every
// memo still cannot corrupt a campaign: each placement's runner holds
// the shard's fenced lease, and a superseded registration only means
// the scheduler stopped counting on us.
func RunWorker(ctx context.Context, cfg WorkerConfig) error {
	if cfg.Registry == nil {
		return fmt.Errorf("shard: WorkerConfig.Registry is required")
	}
	if cfg.Run == nil {
		return fmt.Errorf("shard: WorkerConfig.Run is required")
	}
	id := cfg.ID
	if id == "" {
		id = leasesvc.DefaultOwner()
	}
	owner := cfg.Owner
	if owner == "" {
		owner = id
	}
	slots := cfg.Slots
	if slots < 1 {
		slots = 1
	}
	ttl := cfg.TTL
	if ttl <= 0 {
		ttl = leasesvc.DefaultTTL
	}
	logf := cfg.Log
	if logf == nil {
		logf = func(string, ...any) {}
	}

	grant, err := cfg.Registry.RegisterWorker(ctx, id, owner, slots, ttl)
	if err != nil {
		return fmt.Errorf("shard: worker %s: register: %w", id, err)
	}
	token := grant.Token
	logf("worker %s: registered (token %d, %d slot(s), ttl %s)", id, token, slots, grant.TTL)

	type placementDone struct {
		p   leasesvc.Placement
		err error
	}
	type placementRun struct {
		drain chan struct{}
		stop  sync.Once
	}
	running := map[leasesvc.Placement]*placementRun{}
	completed := map[leasesvc.Placement]bool{}
	failedAt := map[leasesvc.Placement]time.Time{}
	var pending []leasesvc.Placement
	finished := make(chan placementDone, slots+1)
	var wg sync.WaitGroup

	startEligible := func() {
		for len(running) < slots {
			picked := -1
			for i, p := range pending {
				// A placement that just failed gets a TTL of quiet
				// before a retry: without it, a placement that fails
				// instantly (unreadable spec, bad dir) would hot-loop
				// until the scheduler's own patience reassigns it.
				if t, ok := failedAt[p]; ok && time.Since(t) < ttl {
					continue
				}
				picked = i
				break
			}
			if picked < 0 {
				return
			}
			p := pending[picked]
			pending = append(pending[:picked], pending[picked+1:]...)
			r := &placementRun{drain: make(chan struct{})}
			running[p] = r
			logf("worker %s: starting shard %d/%d (%s)", id, p.Shard, p.Of, p.Dir)
			wg.Add(1)
			go func() {
				defer wg.Done()
				finished <- placementDone{p: p, err: cfg.Run(ctx, p, r.drain)}
			}()
		}
	}

	reconcile := func(ps []leasesvc.Placement, allowWithdraw bool) {
		desired := map[leasesvc.Placement]bool{}
		for _, p := range ps {
			desired[p] = true
		}
		if allowWithdraw {
			for p, r := range running {
				if !desired[p] {
					r.stop.Do(func() { close(r.drain) })
					logf("worker %s: shard %d/%d withdrawn; draining", id, p.Shard, p.Of)
				}
			}
			kept := pending[:0]
			for _, p := range pending {
				if desired[p] {
					kept = append(kept, p)
				}
			}
			pending = kept
		}
		for _, p := range ps {
			if running[p] != nil || completed[p] {
				continue
			}
			queuedAlready := false
			for _, q := range pending {
				if q == p {
					queuedAlready = true
					break
				}
			}
			if !queuedAlready {
				pending = append(pending, p)
			}
		}
		startEligible()
	}

	stopAll := func() {
		for _, r := range running {
			r.stop.Do(func() { close(r.drain) })
		}
	}
	collectAll := func() {
		for len(running) > 0 {
			f := <-finished
			delete(running, f.p)
		}
		wg.Wait()
	}
	deregister := func() {
		dctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		cfg.Registry.DeregisterWorker(dctx, id, token)
	}

	beatEvery := ttl / 4
	if beatEvery < 25*time.Millisecond {
		beatEvery = 25 * time.Millisecond
	}
	ticker := time.NewTicker(beatEvery)
	defer ticker.Stop()
	var seq uint64
	var beatFailing bool
	// After a (re-)registration the service holds no assignments for
	// our token yet; give the scheduler a beat or two to re-assert
	// them before treating an empty answer as a withdrawal of
	// everything we are running.
	withdrawalsAfter := time.Now().Add(ttl)

	for {
		select {
		case <-ctx.Done():
			stopAll()
			collectAll()
			deregister()
			return ctx.Err()
		case <-cfg.Drain:
			logf("worker %s: draining %d running placement(s)", id, len(running))
			stopAll()
			collectAll()
			deregister()
			return campaign.ErrDrained
		case f := <-finished:
			delete(running, f.p)
			switch {
			case f.err == nil:
				completed[f.p] = true
				delete(failedAt, f.p)
				logf("worker %s: shard %d/%d complete", id, f.p.Shard, f.p.Of)
			case errors.Is(f.err, campaign.ErrDrained):
				logf("worker %s: shard %d/%d drained", id, f.p.Shard, f.p.Of)
			default:
				failedAt[f.p] = time.Now()
				logf("worker %s: shard %d/%d failed: %v", id, f.p.Shard, f.p.Of, f.err)
			}
			startEligible()
		case <-ticker.C:
			seq++
			ps, err := cfg.Registry.WorkerBeat(ctx, id, token, seq)
			switch {
			case err == nil:
				beatFailing = false
				reconcile(ps, time.Now().After(withdrawalsAfter))
			case errors.Is(err, leasesvc.ErrFenced), errors.Is(err, leasesvc.ErrUnknown):
				// Superseded (or the registry restarted and forgot us):
				// take the identity back. Running placements keep
				// running — their shard leases, not this registration,
				// carry correctness.
				logf("worker %s: registration superseded (%v); re-registering", id, err)
				g, rerr := cfg.Registry.RegisterWorker(ctx, id, owner, slots, ttl)
				if rerr != nil {
					logf("worker %s: re-register: %v", id, rerr)
					continue
				}
				token, seq = g.Token, 0
				withdrawalsAfter = time.Now().Add(ttl)
			case errors.Is(err, context.Canceled):
				// The ctx arm will handle shutdown.
			default:
				if !beatFailing {
					beatFailing = true
					logf("worker %s: heartbeat failing (%v); placements keep running, leases carry correctness", id, err)
				}
			}
		}
	}
}
