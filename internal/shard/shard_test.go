package shard_test

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"testing"
	"time"

	"rowhammer/internal/campaign"
	"rowhammer/internal/shard"
)

// pureRunner is deterministic in (spec seed, job) — the property the
// byte-identical merge invariant rests on.
func pureRunner(ctx context.Context, spec campaign.Spec, job campaign.Job) (campaign.Record, error) {
	seed := spec.Seed ^ uint64(len(job.Mfr))<<32 ^ uint64(job.Module)*2654435761
	return campaign.Record{
		Seed:    seed,
		Pattern: "checkered",
		Metrics: map[string]float64{"hc_min": float64(seed%100_000) + 512, "rows": 24},
		Series:  map[string][]float64{"hc": {float64(seed % 7), float64(seed % 13)}},
	}, nil
}

func testSpec() campaign.Spec {
	return campaign.Spec{
		Kind:          campaign.KindHCFirst,
		Mfrs:          []string{"A", "B", "C"},
		ModulesPerMfr: 4,
		Seed:          99,
		Workers:       4,
		MaxRetries:    2,
		RetryBackoff:  100 * time.Microsecond,
		JobTimeout:    5 * time.Second,
	}
}

func summarize(t *testing.T, res *campaign.Result) []byte {
	t.Helper()
	b, err := campaign.Aggregate(res).MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestPartitionDisjointCoveringBalanced(t *testing.T) {
	spec := testSpec()
	all := campaign.Expand(spec)
	for _, n := range []int{1, 2, 3, 4, 5, 8, 12, 13, 50} {
		seen := map[string]int{}
		min, max := len(all), 0
		for _, a := range shard.Partition(n) {
			jobs := a.Jobs(spec)
			if len(jobs) < min {
				min = len(jobs)
			}
			if len(jobs) > max {
				max = len(jobs)
			}
			for _, j := range jobs {
				seen[j.Key()]++
			}
		}
		if len(seen) != len(all) {
			t.Fatalf("n=%d: partition covers %d of %d jobs", n, len(seen), len(all))
		}
		for key, c := range seen {
			if c != 1 {
				t.Fatalf("n=%d: job %s owned by %d shards", n, key, c)
			}
		}
		if max-min > 1 {
			t.Fatalf("n=%d: unbalanced partition, shard sizes range %d..%d", n, min, max)
		}
	}
}

func TestParseAssignment(t *testing.T) {
	a, err := shard.ParseAssignment("2/8")
	if err != nil || a.Index != 2 || a.Of != 8 {
		t.Fatalf("ParseAssignment(2/8) = %+v, %v", a, err)
	}
	for _, bad := range []string{"", "3", "8/8", "-1/4", "a/b", "1/0"} {
		if _, err := shard.ParseAssignment(bad); err == nil {
			t.Fatalf("ParseAssignment(%q) accepted", bad)
		}
	}
}

// TestShardedRunMergesByteIdentical is the tentpole invariant: an
// N-shard run, each shard an independent RunShard with its own
// checkpoint, merges into a summary byte-identical to a
// single-process run — for N of 2, 4 and 8 (8 > 6 jobs for one mfr
// grid exercises empty shards).
func TestShardedRunMergesByteIdentical(t *testing.T) {
	spec := testSpec()
	single, err := campaign.Run(context.Background(), spec, campaign.Options{Runner: pureRunner})
	if err != nil {
		t.Fatal(err)
	}
	want := summarize(t, single)

	for _, n := range []int{2, 4, 8, 13} {
		t.Run(fmt.Sprintf("N=%d", n), func(t *testing.T) {
			dir := t.TempDir()
			for _, a := range shard.Partition(n) {
				if _, err := shard.RunShard(context.Background(), shard.RunConfig{
					Dir: dir, Assignment: a, Spec: spec, Runner: pureRunner,
					BeatEvery: 10 * time.Millisecond,
				}); err != nil {
					t.Fatalf("shard %s: %v", a, err)
				}
			}
			res, rep, err := shard.MergeShards(spec, shard.CheckpointPaths(dir, n))
			if err != nil {
				t.Fatal(err)
			}
			if !rep.Complete() {
				t.Fatalf("merge incomplete, missing %v", rep.Missing)
			}
			if got := summarize(t, res); !bytes.Equal(got, want) {
				t.Fatalf("N=%d merged summary differs from single-process run:\n%s\nwant:\n%s", n, got, want)
			}
		})
	}
}

// TestShardResumeAfterPartialRun kills a shard mid-run (drain after
// two jobs), then resumes it with a fresh RunShard; the merge must
// still be byte-identical to the single-process run.
func TestShardResumeAfterPartialRun(t *testing.T) {
	spec := testSpec()
	spec.Workers = 1
	single, err := campaign.Run(context.Background(), spec, campaign.Options{Runner: pureRunner})
	if err != nil {
		t.Fatal(err)
	}
	want := summarize(t, single)

	dir := t.TempDir()
	const n = 2
	parts := shard.Partition(n)

	// Shard 0: drain after 2 of its 6 jobs, leaving a partial checkpoint.
	drain := make(chan struct{})
	ranJobs := 0
	slowRunner := func(ctx context.Context, s campaign.Spec, j campaign.Job) (campaign.Record, error) {
		ranJobs++
		if ranJobs == 2 {
			close(drain)
		}
		return pureRunner(ctx, s, j)
	}
	_, err = shard.RunShard(context.Background(), shard.RunConfig{
		Dir: dir, Assignment: parts[0], Spec: spec, Runner: slowRunner,
		Drain: drain, BeatEvery: 10 * time.Millisecond,
	})
	if !errors.Is(err, campaign.ErrDrained) {
		t.Fatalf("want ErrDrained from partial shard, got %v", err)
	}

	// A successor resumes shard 0's checkpoint and finishes the slice.
	res0, err := shard.RunShard(context.Background(), shard.RunConfig{
		Dir: dir, Assignment: parts[0], Spec: spec, Runner: pureRunner,
		BeatEvery: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res0.Skipped != 2 {
		t.Fatalf("resume should skip the 2 checkpointed jobs, skipped %d", res0.Skipped)
	}
	if _, err := shard.RunShard(context.Background(), shard.RunConfig{
		Dir: dir, Assignment: parts[1], Spec: spec, Runner: pureRunner,
		BeatEvery: 10 * time.Millisecond,
	}); err != nil {
		t.Fatal(err)
	}

	res, rep, err := shard.MergeShards(spec, shard.CheckpointPaths(dir, n))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Complete() {
		t.Fatalf("merge incomplete, missing %v", rep.Missing)
	}
	if got := summarize(t, res); !bytes.Equal(got, want) {
		t.Fatalf("kill+resume merged summary differs:\n%s\nwant:\n%s", got, want)
	}
}

// TestRunShardRejectsForeignAssignment: a worker handed shard 1's
// checkpoint path layout but shard 0's assignment must refuse rather
// than run the wrong slice.
func TestRunShardRejectsForeignCheckpoint(t *testing.T) {
	spec := testSpec()
	dir := t.TempDir()
	parts := shard.Partition(2)
	if _, err := shard.RunShard(context.Background(), shard.RunConfig{
		Dir: dir, Assignment: parts[0], Spec: spec, Runner: pureRunner,
	}); err != nil {
		t.Fatal(err)
	}
	// Point shard 1/2's worker at shard 0/2's checkpoint by renaming.
	src := shard.CheckpointPath(dir, parts[0])
	dst := shard.CheckpointPath(dir, parts[1])
	if err := copyFile(src, dst); err != nil {
		t.Fatal(err)
	}
	_, err := shard.RunShard(context.Background(), shard.RunConfig{
		Dir: dir, Assignment: parts[1], Spec: spec, Runner: pureRunner,
	})
	if !errors.Is(err, campaign.ErrShardMismatch) {
		t.Fatalf("want ErrShardMismatch, got %v", err)
	}
}

func TestMergeShardsRejectsForeignCampaign(t *testing.T) {
	specA := testSpec()
	specB := testSpec()
	specB.Seed = 1234 // different identity

	dirA, dirB := t.TempDir(), t.TempDir()
	for _, a := range shard.Partition(2) {
		if _, err := shard.RunShard(context.Background(), shard.RunConfig{
			Dir: dirA, Assignment: a, Spec: specA, Runner: pureRunner,
		}); err != nil {
			t.Fatal(err)
		}
		if _, err := shard.RunShard(context.Background(), shard.RunConfig{
			Dir: dirB, Assignment: a, Spec: specB, Runner: pureRunner,
		}); err != nil {
			t.Fatal(err)
		}
	}
	// Smuggle one of campaign B's shard files into A's directory.
	bad := shard.CheckpointPath(dirA, shard.Partition(2)[1])
	if err := copyFile(shard.CheckpointPath(dirB, shard.Partition(2)[1]), bad); err != nil {
		t.Fatal(err)
	}
	_, _, err := shard.MergeShards(specA, shard.CheckpointPaths(dirA, 2))
	var ierr *shard.IdentityError
	if !errors.As(err, &ierr) {
		t.Fatalf("want *IdentityError, got %v", err)
	}
	if ierr.Path != bad {
		t.Fatalf("IdentityError names %s, want offending file %s", ierr.Path, bad)
	}
	if ierr.Want != specA.IdentityHash() || ierr.Got != specB.IdentityHash() {
		t.Fatalf("IdentityError hashes = got %s want %s", ierr.Got, ierr.Want)
	}
}

func TestMergeShardsRejectsWholeCampaignFile(t *testing.T) {
	spec := testSpec()
	dir := t.TempDir()
	// A whole-campaign (unsharded) checkpoint masquerading as shard 0.
	path := shard.CheckpointPath(dir, shard.Partition(1)[0])
	cw, err := campaign.CreateCheckpoint(path, spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := cw.WriteHeader(); err != nil {
		t.Fatal(err)
	}
	cw.Close()
	_, _, err = shard.MergeShards(spec, []string{path})
	var ierr *shard.IdentityError
	if !errors.As(err, &ierr) {
		t.Fatalf("want *IdentityError for unsharded header, got %v", err)
	}
}

func TestMergeShardsMissingJobs(t *testing.T) {
	spec := testSpec()
	dir := t.TempDir()
	parts := shard.Partition(3)
	// Run only shards 0 and 2; shard 1's slice is absent. Write an
	// empty file where shard 1's checkpoint would be (a worker killed
	// pre-header) — the merge must tolerate it and report the gap.
	for _, i := range []int{0, 2} {
		if _, err := shard.RunShard(context.Background(), shard.RunConfig{
			Dir: dir, Assignment: parts[i], Spec: spec, Runner: pureRunner,
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := writeFile(shard.CheckpointPath(dir, parts[1]), nil); err != nil {
		t.Fatal(err)
	}
	_, rep, err := shard.MergeShards(spec, shard.CheckpointPaths(dir, 3))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Complete() {
		t.Fatal("merge of 2/3 shards reported complete")
	}
	if want := len(parts[1].Jobs(spec)); len(rep.Missing) != want {
		t.Fatalf("Missing = %d jobs, want %d", len(rep.Missing), want)
	}
}

func TestLayoutPaths(t *testing.T) {
	a := shard.Assignment{Index: 3, Of: 8}
	dir := "/tmp/x"
	if got := shard.CheckpointPath(dir, a); got != filepath.Join(dir, "shard-0003.ckpt") {
		t.Fatalf("CheckpointPath = %s", got)
	}
	if got := shard.LeasePath(dir, a); got != filepath.Join(dir, "shard-0003.ckpt.lease") {
		t.Fatalf("LeasePath = %s", got)
	}
	if got := shard.CheckpointPaths(dir, 2); len(got) != 2 || got[0] == got[1] {
		t.Fatalf("CheckpointPaths = %v", got)
	}
}
