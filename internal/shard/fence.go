package shard

import (
	"encoding/json"
	"fmt"
	"os"

	"rowhammer/internal/campaign"
	"rowhammer/internal/durable"
	"rowhammer/internal/leasesvc"
)

// The fence file is the on-disk half of the fencing protocol. The
// lease service mints monotonic tokens; the checkpoint directory
// remembers the highest token that ever started writing, in
// <ckpt>.fence — a successor raises it before its first append, and
// every append by every writer re-reads it first. A partitioned
// zombie that was superseded holds a token below the fence and gets
// ErrFenced on its next append, so its stale records can never enter
// the checkpoint no matter how long it lingers.
//
// The file is one CRC-trailed JSON line, rewritten atomically
// (durable.AtomicWriteFile): torn or damaged fence files read as
// errors, never as a silently lowered fence.

// ErrFenced aliases the lease service's sentinel so callers need only
// one errors.Is target whether the refusal came from the service (a
// fenced heartbeat) or from the checkpoint layer (a fenced append).
var ErrFenced = leasesvc.ErrFenced

// fenceVersion stamps fence lines for forward compatibility.
const fenceVersion = 1

type fenceLine struct {
	Version int    `json:"v"`
	Token   uint64 `json:"fence"`
}

// FencePath returns the shard's fence-file path under dir.
func FencePath(dir string, a Assignment) string {
	return CheckpointPath(dir, a) + ".fence"
}

// ReadFence returns the shard's high-water fencing token; a missing
// fence file is token 0 (nothing fenced yet). A present-but-unreadable
// file is an error — failing open would let a zombie write.
func ReadFence(path string) (uint64, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return 0, nil
		}
		return 0, fmt.Errorf("shard: fence %s: %w", path, err)
	}
	line := raw
	if n := len(line); n > 0 && line[n-1] == '\n' {
		line = line[:n-1]
	}
	payload, ok := durable.SplitCRCLine(line)
	if !ok {
		return 0, fmt.Errorf("shard: fence %s: damaged CRC line", path)
	}
	var fl fenceLine
	if err := json.Unmarshal(payload, &fl); err != nil || fl.Version != fenceVersion {
		return 0, fmt.Errorf("shard: fence %s: bad payload %q", path, payload)
	}
	return fl.Token, nil
}

// RaiseFence raises the shard's fence to token. Raising to or above
// the current value is the normal path; attempting to raise to a
// token *below* the current fence means the caller has itself been
// superseded and gets ErrFenced — it must not write.
func RaiseFence(path string, token uint64) error {
	cur, err := ReadFence(path)
	if err != nil {
		return err
	}
	if token < cur {
		return fmt.Errorf("%w: fence %s already at %d, cannot lower to %d", ErrFenced, path, cur, token)
	}
	if token == cur {
		return nil
	}
	payload, err := json.Marshal(fenceLine{Version: fenceVersion, Token: token})
	if err != nil {
		return err
	}
	return durable.AtomicWriteFile(path, durable.AppendCRCLine(nil, payload), 0o644)
}

// FencedWriter is a campaign.RecordWriter that enforces the fence on
// every single append: re-read the high-water token, refuse with
// ErrFenced when this writer's token is below it, and stamp the token
// into the record otherwise. The per-append re-read is the point —
// the fence can rise at any moment (a successor starting on another
// host against the same directory), and the very next append must
// see it.
type FencedWriter struct {
	w         campaign.RecordWriter
	fencePath string
	token     uint64
}

// NewFencedWriter wraps w with fence enforcement under token.
func NewFencedWriter(w campaign.RecordWriter, fencePath string, token uint64) *FencedWriter {
	return &FencedWriter{w: w, fencePath: fencePath, token: token}
}

// WriteRecord implements campaign.RecordWriter.
func (fw *FencedWriter) WriteRecord(rec campaign.Record) error {
	hw, err := ReadFence(fw.fencePath)
	if err != nil {
		return err
	}
	if fw.token < hw {
		return fmt.Errorf("%w: append with token %d below fence %d (%s)",
			ErrFenced, fw.token, hw, fw.fencePath)
	}
	rec.Fence = fw.token
	return fw.w.WriteRecord(rec)
}
