package shard_test

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"rowhammer/internal/campaign"
	"rowhammer/internal/leasesvc"
	"rowhammer/internal/shard"
)

// partitionableAPI wraps a lease API with a worker-side partition
// switch: while down, every call fails with a transport-style error —
// the service is healthy, this worker just cannot reach it.
type partitionableAPI struct {
	inner leasesvc.API
	mu    sync.Mutex
	down  bool
}

func (f *partitionableAPI) setDown(d bool) {
	f.mu.Lock()
	f.down = d
	f.mu.Unlock()
}

func (f *partitionableAPI) offline() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.down {
		return fmt.Errorf("dial tcp: connection timed out (injected partition)")
	}
	return nil
}

func (f *partitionableAPI) Acquire(ctx context.Context, key leasesvc.Key, owner string, ttl time.Duration) (leasesvc.Grant, error) {
	if err := f.offline(); err != nil {
		return leasesvc.Grant{}, err
	}
	return f.inner.Acquire(ctx, key, owner, ttl)
}

func (f *partitionableAPI) Beat(ctx context.Context, key leasesvc.Key, token uint64, b leasesvc.Beat) error {
	if err := f.offline(); err != nil {
		return err
	}
	return f.inner.Beat(ctx, key, token, b)
}

func (f *partitionableAPI) Release(ctx context.Context, key leasesvc.Key, token uint64) error {
	if err := f.offline(); err != nil {
		return err
	}
	return f.inner.Release(ctx, key, token)
}

func (f *partitionableAPI) View(ctx context.Context, key leasesvc.Key) (leasesvc.View, bool, error) {
	if err := f.offline(); err != nil {
		return leasesvc.View{}, false, err
	}
	return f.inner.View(ctx, key)
}

// Remote-lease happy path: a coordinator supervising lease-service
// workers via ServiceProbe merges byte-identical to a single-process
// run, every record is fenced with token 1, and nothing is duplicated.
func TestRemoteLeaseHappyPath(t *testing.T) {
	spec := testSpec()
	single, err := campaign.Run(context.Background(), spec, campaign.Options{Runner: pureRunner})
	if err != nil {
		t.Fatal(err)
	}
	want := summarize(t, single)
	norm, err := spec.Normalize()
	if err != nil {
		t.Fatal(err)
	}

	svc := leasesvc.NewService(time.Second)
	dir := t.TempDir()
	spawn := func(ctx context.Context, a shard.Assignment, gen int) (shard.WorkerHandle, error) {
		wctx, cancel := context.WithCancel(ctx)
		w := &procWorker{cancel: cancel, drain: make(chan struct{}), done: make(chan struct{})}
		go func() {
			defer close(w.done)
			defer cancel()
			_, w.err = shard.RunShard(wctx, shard.RunConfig{
				Dir: dir, Assignment: a, Spec: spec, Runner: pureRunner,
				Drain: w.drain, BeatEvery: 10 * time.Millisecond,
				Lease: svc, LeaseTTL: time.Second,
			})
		}()
		return w, nil
	}
	res, rep, err := shard.Coordinate(context.Background(), shard.Config{
		Dir: dir, Spec: spec, Shards: 3, Spawn: spawn,
		LeaseTTL: time.Second,
		Probe:    shard.ServiceProbe(svc, norm.IdentityHash()),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Complete() {
		t.Fatalf("incomplete: %v", rep.Missing)
	}
	if got := summarize(t, res); !bytes.Equal(got, want) {
		t.Fatalf("remote-lease summary differs:\n%s\nwant:\n%s", got, want)
	}
	for _, a := range shard.Partition(3) {
		token, err := shard.ReadFence(shard.FencePath(dir, a))
		if err != nil {
			t.Fatal(err)
		}
		if token != 1 {
			t.Fatalf("shard %s fence = %d, want 1 (single clean generation)", a, token)
		}
		ckptRep, err := campaign.LoadCheckpointReport(shard.CheckpointPath(dir, a), campaign.ResumeOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if ckptRep.DuplicateRecords != 0 {
			t.Fatalf("shard %s has %d duplicate records, want 0", a, ckptRep.DuplicateRecords)
		}
		for key, rec := range ckptRep.Records {
			if rec.Fence != 1 {
				t.Fatalf("shard %s record %s fence = %d, want 1", a, key, rec.Fence)
			}
		}
	}
}

// The fencing proof: a worker partitioned away mid-job is superseded
// by a successor holding a larger token; when the zombie's in-flight
// job finally completes, its append is rejected at the fence — the
// merged checkpoint carries no duplicate and no stale record.
func TestRemoteZombieFenced(t *testing.T) {
	spec := testSpec()
	spec.Workers = 1
	single, err := campaign.Run(context.Background(), spec, campaign.Options{Runner: pureRunner})
	if err != nil {
		t.Fatal(err)
	}
	want := summarize(t, single)

	const ttl = 200 * time.Millisecond
	svc := leasesvc.NewService(ttl)
	dir := t.TempDir()
	parts := shard.Partition(2)

	// Shard 1 runs cleanly in local-flock mode — mixed-mode merges
	// must work, and it keeps the drill focused on shard 0.
	if _, err := shard.RunShard(context.Background(), shard.RunConfig{
		Dir: dir, Assignment: parts[1], Spec: spec, Runner: pureRunner,
	}); err != nil {
		t.Fatal(err)
	}

	// Zombie: completes its first job, then holds the second in
	// flight until the gate opens.
	holding := make(chan struct{})
	gate := make(chan struct{})
	n := 0
	zombieRunner := func(ctx context.Context, s campaign.Spec, j campaign.Job) (campaign.Record, error) {
		n++
		if n == 2 {
			close(holding)
			<-gate
		}
		return pureRunner(ctx, s, j)
	}
	zombieAPI := &partitionableAPI{inner: svc}
	zombieDone := make(chan error, 1)
	go func() {
		_, err := shard.RunShard(context.Background(), shard.RunConfig{
			Dir: dir, Assignment: parts[0], Spec: spec, Runner: zombieRunner,
			BeatEvery: 10 * time.Millisecond,
			Lease:     zombieAPI, LeaseTTL: ttl,
		})
		zombieDone <- err
	}()

	<-holding
	// Partition the zombie: its beats stop reaching the service, the
	// service ages its lease out, and the successor may take over.
	zombieAPI.setDown(true)

	if _, err := shard.RunShard(context.Background(), shard.RunConfig{
		Dir: dir, Assignment: parts[0], Spec: spec, Runner: pureRunner,
		BeatEvery: 10 * time.Millisecond,
		Lease:     svc, LeaseTTL: ttl,
		Log: t.Logf,
	}); err != nil {
		t.Fatalf("successor: %v", err)
	}

	// Successor done: fence is at 2. Let the zombie's held job finish
	// — its append must be refused.
	close(gate)
	zombieErr := <-zombieDone
	if !errors.Is(zombieErr, shard.ErrFenced) {
		t.Fatalf("zombie exit = %v, want ErrFenced", zombieErr)
	}

	token, err := shard.ReadFence(shard.FencePath(dir, parts[0]))
	if err != nil {
		t.Fatal(err)
	}
	if token != 2 {
		t.Fatalf("fence = %d, want 2 (successor's token)", token)
	}
	rep, err := campaign.LoadCheckpointReport(shard.CheckpointPath(dir, parts[0]), campaign.ResumeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.DuplicateRecords != 0 {
		t.Fatalf("checkpoint has %d duplicate records, want 0 (the fence must reject the zombie's late append)", rep.DuplicateRecords)
	}
	// The job the zombie held in flight must carry the successor's
	// fence — the zombie's version never landed.
	jobs := parts[0].Jobs(spec)
	heldKey := jobs[1].Key()
	if rec, ok := rep.Records[heldKey]; !ok || rec.Fence != 2 {
		t.Fatalf("held job %s: record %+v, want fence 2", heldKey, rep.Records[heldKey])
	}
	res, mrep, err := shard.MergeShards(spec, shard.CheckpointPaths(dir, 2))
	if err != nil {
		t.Fatal(err)
	}
	if !mrep.Complete() {
		t.Fatalf("merge incomplete: %v", mrep.Missing)
	}
	if got := summarize(t, res); !bytes.Equal(got, want) {
		t.Fatalf("post-zombie summary differs:\n%s\nwant:\n%s", got, want)
	}
}

// Graceful degradation: a worker that loses the lease service
// entirely finishes its in-flight job, flushes the checkpoint, and
// self-fences into a drain — it does not keep publishing unsupervised
// and it does not lose the work it already did.
func TestRemoteSelfFenceOnPartition(t *testing.T) {
	spec := testSpec()
	spec.Workers = 1

	const ttl = 150 * time.Millisecond
	svc := leasesvc.NewService(ttl)
	api := &partitionableAPI{inner: svc}
	dir := t.TempDir()
	parts := shard.Partition(2)

	holding := make(chan struct{})
	gate := make(chan struct{})
	n := 0
	runner := func(ctx context.Context, s campaign.Spec, j campaign.Job) (campaign.Record, error) {
		n++
		if n == 2 {
			close(holding)
			<-gate
		}
		return pureRunner(ctx, s, j)
	}
	done := make(chan error, 1)
	var logMu sync.Mutex
	var logs []string
	go func() {
		_, err := shard.RunShard(context.Background(), shard.RunConfig{
			Dir: dir, Assignment: parts[0], Spec: spec, Runner: runner,
			BeatEvery: 10 * time.Millisecond,
			Lease:     api, LeaseTTL: ttl,
			Log: func(format string, args ...any) {
				logMu.Lock()
				logs = append(logs, fmt.Sprintf(format, args...))
				logMu.Unlock()
			},
		})
		done <- err
	}()

	<-holding
	api.setDown(true)
	// Give the heartbeat loop > TTL of continuous failure to trip the
	// self-fence, then let the in-flight job finish.
	time.Sleep(3 * ttl)
	close(gate)

	err := <-done
	if !errors.Is(err, campaign.ErrDrained) {
		t.Fatalf("worker exit = %v, want ErrDrained (graceful self-fence)", err)
	}
	if !strings.Contains(err.Error(), "self-fenced") {
		t.Fatalf("worker exit = %v, want a self-fenced explanation", err)
	}
	rep, err := campaign.LoadCheckpointReport(shard.CheckpointPath(dir, parts[0]), campaign.ResumeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Both the pre-partition job and the in-flight one are flushed;
	// nothing after the self-fence was dispatched.
	if len(rep.Records) != 2 {
		t.Fatalf("checkpoint has %d records, want 2 (one finished + one in-flight at partition)", len(rep.Records))
	}
	logMu.Lock()
	joined := strings.Join(logs, "\n")
	logMu.Unlock()
	if !strings.Contains(joined, "self-fencing") {
		t.Fatalf("logs never mention self-fencing:\n%s", joined)
	}
}

// Satellite: the fence file refuses to be lowered and refuses to be
// trusted when damaged.
func TestFenceFileSemantics(t *testing.T) {
	dir := t.TempDir()
	path := shard.FencePath(dir, shard.Partition(2)[0])
	if token, err := shard.ReadFence(path); err != nil || token != 0 {
		t.Fatalf("missing fence reads (%d, %v), want (0, nil)", token, err)
	}
	if err := shard.RaiseFence(path, 3); err != nil {
		t.Fatal(err)
	}
	if err := shard.RaiseFence(path, 3); err != nil {
		t.Fatalf("re-raising to the same token should be a no-op, got %v", err)
	}
	if err := shard.RaiseFence(path, 2); !errors.Is(err, shard.ErrFenced) {
		t.Fatalf("lowering the fence = %v, want ErrFenced", err)
	}
	if token, _ := shard.ReadFence(path); token != 3 {
		t.Fatalf("fence = %d, want 3", token)
	}
	if err := os.WriteFile(path, []byte("garbage\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := shard.ReadFence(path); err == nil {
		t.Fatal("damaged fence file must read as an error, not as token 0")
	}
}

// Satellite 1: staleness is judged by Seq monotonicity on the
// observer's clock — a clock-skewed host whose heartbeat file looks
// ancient is NOT stalled while its Seq advances, and a frozen Seq is
// stalled even when the file's mtime stays fresh.
func TestStallTrackerSeqMonotonicity(t *testing.T) {
	now := time.Unix(1_700_000_000, 0)
	tr := &shard.StallTracker{Now: func() time.Time { return now }}
	ttl := time.Second
	probe := func(seq uint64, age time.Duration, infoOK bool) shard.Probe {
		return shard.Probe{Held: true, InfoOK: infoOK, Age: age,
			Info: shard.LeaseInfo{Seq: seq}}
	}

	// Advancing Seq with an absurd wall-clock age (skewed host): never
	// stalled.
	for seq := uint64(1); seq <= 4; seq++ {
		now = now.Add(900 * time.Millisecond)
		if tr.Stalled(0, probe(seq, 48*time.Hour, true), ttl) {
			t.Fatalf("seq %d advancing but declared stalled (wall-clock age must not matter)", seq)
		}
	}
	// Frozen Seq with a perfectly fresh file mtime: stalled once the
	// observer has watched it frozen for > ttl.
	if tr.Stalled(0, probe(4, 0, true), ttl) {
		t.Fatal("frozen seq declared stalled before ttl elapsed")
	}
	now = now.Add(ttl + time.Millisecond)
	if !tr.Stalled(0, probe(4, 0, true), ttl) {
		t.Fatal("seq frozen for > ttl not declared stalled")
	}
	// A fresh generation after Forget starts a new clock.
	tr.Forget(0)
	if tr.Stalled(0, probe(4, 0, true), ttl) {
		t.Fatal("stalled immediately after Forget")
	}
	// No readable heartbeat: fall back to wall-clock age.
	if !tr.Stalled(1, probe(0, 2*ttl, false), ttl) {
		t.Fatal("no-heartbeat probe with old file not stalled via fallback")
	}
	if tr.Stalled(1, probe(0, ttl/2, false), ttl) {
		t.Fatal("no-heartbeat probe with fresh file declared stalled")
	}
	// Unheld probes are never stalled.
	if tr.Stalled(2, shard.Probe{Held: false, Age: time.Hour}, ttl) {
		t.Fatal("unheld lease declared stalled")
	}
}

// A reassigned shard's successor acquires a higher fencing token and
// its heartbeat Seq restarts at zero — below the dead predecessor's
// high-water Seq. The tracker must treat the token change as a new
// holder with a fresh stall clock, not as a frozen heartbeat, or it
// would kill every healthy successor ttl after the handover.
func TestStallTrackerTokenHandover(t *testing.T) {
	now := time.Unix(1_700_000_000, 0)
	tr := &shard.StallTracker{Now: func() time.Time { return now }}
	ttl := time.Second
	probe := func(token, seq uint64) shard.Probe {
		return shard.Probe{Held: true, InfoOK: true, Token: token,
			Info: shard.LeaseInfo{Seq: seq}}
	}

	// Predecessor (token 1) beats up to seq 9, then dies frozen.
	tr.Stalled(0, probe(1, 9), ttl)
	now = now.Add(ttl + time.Millisecond)
	if !tr.Stalled(0, probe(1, 9), ttl) {
		t.Fatal("frozen predecessor not declared stalled")
	}
	// Successor acquires token 2; its seq 1 < 9 must not read as
	// frozen.
	if tr.Stalled(0, probe(2, 1), ttl) {
		t.Fatal("successor with fresh token declared stalled on predecessor's seq")
	}
	// And its own clock only trips after its own ttl of frozen seq.
	now = now.Add(ttl / 2)
	if tr.Stalled(0, probe(2, 1), ttl) {
		t.Fatal("successor stalled before its own ttl elapsed")
	}
	now = now.Add(ttl)
	if !tr.Stalled(0, probe(2, 1), ttl) {
		t.Fatal("successor genuinely frozen for > ttl not declared stalled")
	}
}

// Satellite: a dead shard whose checkpoint has a corrupt interior
// record is reassigned — the corrupt line is quarantined to the
// .corrupt sidecar, exactly the lost jobs re-run, and the merge is
// still byte-identical.
func TestCoordinateReassignsCorruptInteriorShard(t *testing.T) {
	spec := testSpec()
	spec.Workers = 1
	single, err := campaign.Run(context.Background(), spec, campaign.Options{Runner: pureRunner})
	if err != nil {
		t.Fatal(err)
	}
	want := summarize(t, single)

	dir := t.TempDir()
	parts := shard.Partition(2)
	for _, a := range parts {
		if _, err := shard.RunShard(context.Background(), shard.RunConfig{
			Dir: dir, Assignment: a, Spec: spec, Runner: pureRunner,
		}); err != nil {
			t.Fatal(err)
		}
	}

	// Damage one interior record of shard 0 (the "worker died, disk
	// rotted a line" case): line 0 is the header, the last line must
	// stay intact (torn-final has its own path), so hit the middle.
	ckpt := shard.CheckpointPath(dir, parts[0])
	raw, err := os.ReadFile(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.Split(bytes.TrimSuffix(raw, []byte("\n")), []byte("\n"))
	if len(lines) < 4 {
		t.Fatalf("checkpoint too short to corrupt an interior line: %d lines", len(lines))
	}
	victim := len(lines) / 2
	mid := len(lines[victim]) / 2
	lines[victim][mid] ^= 0x20
	if err := os.WriteFile(ckpt, append(bytes.Join(lines, []byte("\n")), '\n'), 0o644); err != nil {
		t.Fatal(err)
	}

	var mu sync.Mutex
	rerun := map[string]int{}
	countingRunner := func(ctx context.Context, s campaign.Spec, j campaign.Job) (campaign.Record, error) {
		mu.Lock()
		rerun[j.Key()]++
		mu.Unlock()
		return pureRunner(ctx, s, j)
	}
	res, rep, err := shard.Coordinate(context.Background(), shard.Config{
		Dir: dir, Spec: spec, Shards: 2,
		Spawn: inProcessSpawn(dir, spec, func(shard.Assignment, int) campaign.Runner { return countingRunner }),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Complete() {
		t.Fatalf("merge incomplete: %v", rep.Missing)
	}
	if got := summarize(t, res); !bytes.Equal(got, want) {
		t.Fatalf("post-corruption summary differs:\n%s\nwant:\n%s", got, want)
	}
	// Exactly one job was lost to the corrupt line, and exactly that
	// one was re-run.
	mu.Lock()
	defer mu.Unlock()
	if len(rerun) != 1 {
		t.Fatalf("re-ran %d job(s) %v, want exactly the 1 lost to corruption", len(rerun), rerun)
	}
	// The quarantine sidecar names the damage.
	sidecar, err := os.ReadFile(ckpt + ".corrupt")
	if err != nil {
		t.Fatalf("quarantine sidecar missing: %v", err)
	}
	if !bytes.Contains(sidecar, []byte("#rhckpt-quarantine")) {
		t.Fatalf("sidecar lacks the quarantine header:\n%s", sidecar)
	}
}
