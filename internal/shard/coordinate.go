package shard

import (
	"context"
	"errors"
	"fmt"
	"os"
	"time"

	"rowhammer/internal/campaign"
	"rowhammer/internal/durable"
	"rowhammer/internal/leasesvc"
)

// WorkerHandle is a running shard worker as the coordinator sees it —
// an exec'd rhfleet subprocess or an in-process goroutine; the
// coordinator does not care which.
type WorkerHandle interface {
	// Wait blocks until the worker has fully stopped. For in-process
	// workers this must not return before the shard lease is
	// released, or the respawned successor will find the lease held.
	// Wait returns nil only when the worker finished its shard
	// cleanly; any other outcome (crash, drain, failed jobs) is a
	// non-nil error, and the coordinator re-reads the checkpoint to
	// decide what remains.
	Wait() error
	// Kill stops the worker immediately (SIGKILL or context cancel).
	Kill()
}

// DrainableWorker is optionally implemented by handles that can be
// asked to stop gracefully: finish in-flight jobs, checkpoint, exit.
type DrainableWorker interface{ Drain() }

// SpawnFunc starts a worker for one shard. gen is 0 for the first
// spawn and increments on every reassignment of that shard — the seam
// crash drills use to arm a failpoint on one generation only.
type SpawnFunc func(ctx context.Context, a Assignment, gen int) (WorkerHandle, error)

// Config configures a Coordinate run.
type Config struct {
	// Dir is the shard directory (created if absent).
	Dir string
	// Spec is the resolved campaign spec all shards execute.
	Spec campaign.Spec
	// Shards is the partition width N (>= 1).
	Shards int
	// Spawn starts one shard worker — local placement, where the
	// coordinator owns the worker processes. Exactly one of Spawn and
	// Fleet must be set.
	Spawn SpawnFunc
	// Fleet selects fleet placement: instead of spawning anything, the
	// coordinator schedules shards onto workers registered with this
	// lease service's worker registry (rhfleet -worker processes
	// pulling assignments over /v1/workers/beat), watches their shard
	// leases for liveness and throughput, and rebalances queued shards
	// off slow workers. Supervision — stall kill, reassignment bounded
	// by MaxRespawns, completion judged from checkpoints on disk — is
	// the exact code path local placement uses.
	Fleet *leasesvc.Service
	// Registry, in local (Spawn) mode, mirrors each spawned worker
	// into this service's worker registry, so GET /v1/workers reports
	// local workers the same way it reports a real fleet — local
	// coordination as the degenerate case of placement. Observational
	// only: correctness still rests on shard leases. Ignored in fleet
	// mode, where workers register themselves.
	Registry *leasesvc.Service
	// LeaseTTL is how long a held lease may go without a heartbeat
	// before the worker is declared stalled and killed. Default 15s.
	LeaseTTL time.Duration
	// Poll is the lease-probe interval. Default LeaseTTL/4.
	Poll time.Duration
	// MaxRespawns bounds reassignments per shard; exceeding it aborts
	// the campaign rather than respawning a crash-looping worker
	// forever. Default 3.
	MaxRespawns int
	// Probe, when non-nil, replaces the local flock probe — a
	// remote-lease coordinator supervises its workers through the
	// lease service (ServiceProbe) instead of the filesystem. The
	// stall judgment on top is identical either way: heartbeat Seq
	// monotonicity on the coordinator's clock (StallTracker), with
	// wall-clock age only as the no-heartbeat fallback. Fleet mode
	// defaults this to ServiceProbe over Fleet.
	Probe func(a Assignment) (Probe, error)
	// Progress, when non-nil, receives campaign-wide done/total as
	// observed through the shard leases (fleet mode only; done is
	// monotone because lease progress survives fencing handovers).
	Progress func(done, total int)
	// Drain, when delivered or closed, stops the run gracefully:
	// workers are asked to drain, nothing is respawned, and Coordinate
	// returns campaign.ErrDrained if the grid is incomplete.
	Drain <-chan struct{}
	// Log, when non-nil, receives one-line progress messages.
	Log func(format string, args ...any)
}

// exitEvent is one shard attempt's termination as seen by the event
// loop — a local worker process exiting, or (fleet mode) the shard's
// lease lapsing after having been held.
type exitEvent struct {
	idx int
	gen int
	err error
}

// Coordinate supervises an N-way sharded campaign run to completion:
// start an attempt per incomplete shard (spawn a worker locally, or
// place the shard onto a registered fleet worker), probe leases to
// catch dead and stalled workers, reassign a dead shard's remaining
// jobs to a fresh attempt (bounded by MaxRespawns), and finally merge
// the shard checkpoints into one result byte-identical to a
// single-process run.
//
// A shard counts as complete when every job it owns has a checkpoint
// record — failed records included, matching single-process semantics
// where a job that exhausts its retries is recorded, not respawned.
// Completion is always judged from the checkpoints on disk, never
// from worker exit codes, so a coordinator that is itself killed and
// restarted picks up exactly where the directory says things stand.
func Coordinate(ctx context.Context, cfg Config) (*campaign.Result, *MergeReport, error) {
	spec, err := cfg.Spec.Normalize()
	if err != nil {
		return nil, nil, err
	}
	if cfg.Shards < 1 {
		return nil, nil, fmt.Errorf("shard: Config.Shards must be >= 1, got %d", cfg.Shards)
	}
	if cfg.Spawn == nil && cfg.Fleet == nil {
		return nil, nil, fmt.Errorf("shard: Config.Spawn is required")
	}
	if cfg.Spawn != nil && cfg.Fleet != nil {
		return nil, nil, fmt.Errorf("shard: Config.Spawn and Config.Fleet are mutually exclusive")
	}
	logf := cfg.Log
	if logf == nil {
		logf = func(string, ...any) {}
	}
	ttl := cfg.LeaseTTL
	if ttl <= 0 {
		ttl = 15 * time.Second
	}
	poll := cfg.Poll
	if poll <= 0 {
		poll = ttl / 4
	}
	maxRespawns := cfg.MaxRespawns
	if maxRespawns <= 0 {
		maxRespawns = 3
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, nil, err
	}
	coordLock, err := durable.AcquireLock(CoordinatorLockPath(cfg.Dir))
	if err != nil {
		return nil, nil, fmt.Errorf("shard: another coordinator owns %s: %w", cfg.Dir, err)
	}
	defer coordLock.Release()

	probe := cfg.Probe
	if probe == nil {
		if cfg.Fleet != nil {
			probe = ServiceProbe(cfg.Fleet, spec.IdentityHash())
		} else {
			probe = func(a Assignment) (Probe, error) {
				return ProbeLease(LeasePath(cfg.Dir, a))
			}
		}
	}
	stalls := &StallTracker{}
	parts := Partition(cfg.Shards)

	// The executor is the only thing that differs between local and
	// fleet placement; everything below it — the supervision loop, the
	// stall judgment, reassignment bounds, disk-is-truth completion —
	// is shared.
	var exec executor
	if cfg.Fleet != nil {
		exec = newFleetExecutor(cfg.Fleet, cfg.Dir, spec, parts, ttl, logf, cfg.Progress)
	} else {
		exec = newLocalExecutor(cfg.Spawn, cfg.Registry, cfg.Dir, spec.IdentityHash(), ttl, logf, len(parts))
	}
	defer exec.Close()

	active := make(map[int]int, cfg.Shards) // shard index → current generation
	gens := make(map[int]int, cfg.Shards)
	done := make(map[int]bool, cfg.Shards)

	start := func(a Assignment) error {
		gen := gens[a.Index]
		if err := exec.Start(ctx, a, gen); err != nil {
			return fmt.Errorf("shard %s: spawn: %w", a, err)
		}
		active[a.Index] = gen
		return nil
	}

	// Judge every shard from disk before starting anything: a restarted
	// coordinator skips shards whose checkpoints are already complete.
	for _, a := range parts {
		missing, haveCkpt, err := shardMissing(spec, a, CheckpointPath(cfg.Dir, a))
		if err != nil {
			return nil, nil, err
		}
		if haveCkpt && len(missing) == 0 {
			done[a.Index] = true
			continue
		}
		if haveCkpt {
			logf("shard %s: resuming, %d job(s) remaining", a, len(missing))
		}
		if err := start(a); err != nil {
			return nil, nil, err
		}
	}

	draining := false
	startDrain := func() {
		if draining {
			return
		}
		draining = true
		logf("coordinator: draining %d active shard(s)", len(active))
		for idx := range active {
			exec.Drain(parts[idx])
		}
	}

	ticker := time.NewTicker(poll)
	defer ticker.Stop()
	for len(active) > 0 {
		select {
		case <-ctx.Done():
			return nil, nil, ctx.Err()
		case <-cfg.Drain:
			startDrain()
		case <-ticker.C:
			// Let the executor observe the world first: fleet placement
			// watches leases and worker registrations here (and may
			// synthesize exit events); local placement heartbeats its
			// registry mirror.
			exec.Tick()
			// A dead worker surfaces through its exit event; the probe
			// exists for stragglers — alive (lease held) but silent.
			// Staleness is judged by Seq monotonicity on our own
			// clock, so a clock-skewed host with an advancing Seq is
			// never mistaken for a stall.
			for idx := range active {
				a := parts[idx]
				p, err := probe(a)
				if err != nil {
					continue
				}
				if stalls.Stalled(idx, p, ttl) {
					logf("shard %s: stalled (heartbeat seq %d frozen for > %s, pid %d); killing",
						a, p.Info.Seq, ttl, p.Info.PID)
					exec.Kill(a)
				}
			}
		case ev := <-exec.Events():
			delete(active, ev.idx)
			stalls.Forget(ev.idx)
			a := parts[ev.idx]
			missing, haveCkpt, merr := shardMissing(spec, a, CheckpointPath(cfg.Dir, a))
			if merr != nil {
				return nil, nil, merr
			}
			if haveCkpt && len(missing) == 0 {
				done[ev.idx] = true
				if ev.err != nil {
					// Every job has a record despite the non-clean exit:
					// the worker died after its last record landed, or
					// some jobs are recorded as failed.
					logf("shard %s: complete (worker exited: %v)", a, ev.err)
				} else {
					logf("shard %s: complete", a)
				}
				continue
			}
			if draining {
				logf("shard %s: drained with %d job(s) remaining", a, len(missing))
				continue
			}
			gens[ev.idx]++
			if gens[ev.idx] > maxRespawns {
				// Wrap the last attempt's error so callers can react to
				// the cause — rhserved falls back to in-process shards
				// when it is ErrNoWorkers.
				return nil, nil, fmt.Errorf(
					"shard %s: gave up after %d reassignment(s); %d job(s) still missing (last worker: %w)",
					a, maxRespawns, len(missing), ev.err)
			}
			logf("shard %s: worker gen %d died with %d job(s) remaining (%v); reassigning to gen %d",
				a, ev.gen, len(missing), ev.err, gens[ev.idx])
			if err := start(a); err != nil {
				return nil, nil, err
			}
		}
	}

	res, rep, err := MergeShards(spec, CheckpointPaths(cfg.Dir, cfg.Shards))
	if err != nil {
		return nil, nil, err
	}
	if !rep.Complete() {
		if draining {
			return res, rep, campaign.ErrDrained
		}
		return res, rep, fmt.Errorf("shard: merge incomplete: %d job(s) missing", len(rep.Missing))
	}
	return res, rep, nil
}

// shardMissing reports the shard's jobs that have no checkpoint
// record at all (failed records count as done — they are results),
// plus whether the checkpoint file exists yet.
func shardMissing(spec campaign.Spec, a Assignment, ckptPath string) (missing []string, haveCkpt bool, err error) {
	recs := map[string]campaign.Record{}
	if _, statErr := os.Stat(ckptPath); statErr == nil {
		haveCkpt = true
		rep, lerr := campaign.LoadCheckpointReport(ckptPath, campaign.ResumeOptions{ExpectSpec: &spec})
		if lerr != nil {
			return nil, true, fmt.Errorf("shard %s: %s: %w", a, ckptPath, lerr)
		}
		if h := rep.Header; h != nil && (h.Shard != a.Index || h.Of != a.Of) {
			return nil, true, fmt.Errorf("%w: %s holds shard %d/%d, expected %s",
				campaign.ErrShardMismatch, ckptPath, h.Shard, h.Of, a)
		}
		recs = rep.Records
	} else if !errors.Is(statErr, os.ErrNotExist) {
		return nil, false, statErr
	}
	for _, j := range a.Jobs(spec) {
		if _, ok := recs[j.Key()]; !ok {
			missing = append(missing, j.Key())
		}
	}
	return missing, haveCkpt, nil
}
