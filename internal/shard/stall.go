package shard

import (
	"sync"
	"time"
)

// StallTracker judges shard staleness by heartbeat Seq monotonicity
// on the *observer's* clock, with wall-clock file age only as a
// fallback. The failure it exists to prevent: a worker on a host
// with a skewed clock writes heartbeats whose mtimes look ancient to
// the coordinator — Probe.Age alone would declare it stalled and
// kill a perfectly healthy worker. The tracker instead remembers,
// per shard, the last Seq it saw and when *it* saw it change; a
// holder is stalled only when its Seq has been frozen for longer
// than TTL of the observer's own time. Only when a probe carries no
// readable heartbeat at all (InfoOK false — torn line, pre-first-
// beat) does the mtime age remain the best available signal.
type StallTracker struct {
	// Now is the observer clock; time.Now when nil. A test seam.
	Now func() time.Time

	mu   sync.Mutex
	seen map[int]stallSeen
}

type stallSeen struct {
	token uint64
	seq   uint64
	at    time.Time
}

func (t *StallTracker) now() time.Time {
	if t.Now != nil {
		return t.Now()
	}
	return time.Now()
}

// Stalled reports whether shard idx's probe shows a holder that is
// alive but frozen for longer than ttl.
func (t *StallTracker) Stalled(idx int, p Probe, ttl time.Duration) bool {
	if !p.Held || ttl <= 0 {
		t.Forget(idx)
		return false
	}
	if !p.InfoOK {
		// No heartbeat to judge by — fall back to file age, exactly
		// the pre-tracker behavior.
		return p.Age > ttl
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.seen == nil {
		t.seen = map[int]stallSeen{}
	}
	now := t.now()
	s, ok := t.seen[idx]
	// A fencing-token change is a new holder: its Seq restarts at
	// zero, so comparing it against the predecessor's high-water Seq
	// would brand a freshly-acquired successor as frozen. Reset the
	// clock instead.
	if !ok || p.Token != s.token || p.Info.Seq > s.seq {
		t.seen[idx] = stallSeen{token: p.Token, seq: p.Info.Seq, at: now}
		return false
	}
	return now.Sub(s.at) > ttl
}

// Forget drops shard idx's history — called when its worker exits,
// so a respawned generation starts with a fresh stall clock.
func (t *StallTracker) Forget(idx int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	delete(t.seen, idx)
}
