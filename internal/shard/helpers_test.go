package shard_test

import (
	"io"
	"os"
)

func copyFile(src, dst string) error {
	in, err := os.Open(src)
	if err != nil {
		return err
	}
	defer in.Close()
	out, err := os.Create(dst)
	if err != nil {
		return err
	}
	if _, err := io.Copy(out, in); err != nil {
		out.Close()
		return err
	}
	return out.Close()
}

func writeFile(path string, b []byte) error {
	return os.WriteFile(path, b, 0o644)
}
