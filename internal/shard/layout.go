package shard

import (
	"fmt"
	"path/filepath"
)

// Shard directory layout. One campaign's distributed run lives in a
// single directory:
//
//	<dir>/spec.json          wire spec the workers were spawned with
//	<dir>/coordinator.lock   one coordinator per directory (flock)
//	<dir>/shard-0003.ckpt    shard 3's v2 checkpoint (shard-stamped header)
//	<dir>/shard-0003.ckpt.lease  shard 3's lease (flock + heartbeat)
//
// Checkpoint names are zero-padded so shell globs and directory
// listings sort in shard order.

// CheckpointPath returns the shard's checkpoint path under dir.
func CheckpointPath(dir string, a Assignment) string {
	return filepath.Join(dir, fmt.Sprintf("shard-%04d.ckpt", a.Index))
}

// LeasePath returns the shard's lease path under dir.
func LeasePath(dir string, a Assignment) string {
	return CheckpointPath(dir, a) + ".lease"
}

// SpecPath returns the persisted wire-spec path under dir.
func SpecPath(dir string) string { return filepath.Join(dir, "spec.json") }

// CoordinatorLockPath returns the coordinator's lockfile path.
func CoordinatorLockPath(dir string) string { return filepath.Join(dir, "coordinator.lock") }

// CheckpointGlob matches every shard checkpoint under dir.
func CheckpointGlob(dir string) string { return filepath.Join(dir, "shard-*.ckpt") }

// CheckpointPaths lists the checkpoint paths of an n-way split.
func CheckpointPaths(dir string, n int) []string {
	out := make([]string, n)
	for i, a := range Partition(n) {
		out[i] = CheckpointPath(dir, a)
	}
	return out
}
