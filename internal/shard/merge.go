package shard

import (
	"fmt"
	"os"
	"sort"

	"rowhammer/internal/campaign"
)

// IdentityError reports a shard checkpoint that does not belong to
// the campaign being merged: wrong identity hash, a non-shard header,
// or an assignment that disagrees with the file set. Merging such a
// file would silently blend two different campaigns' measurements, so
// the merge names the offending file and refuses.
type IdentityError struct {
	// Path is the offending shard checkpoint file.
	Path string
	// Want is the campaign identity hash the merge expects.
	Want string
	// Got is the identity hash (or "" when the header is absent)
	// found in the file.
	Got string
	// Detail says what exactly disagreed.
	Detail string
}

func (e *IdentityError) Error() string {
	return fmt.Sprintf("shard: %s: %s (want campaign %s, got %q)", e.Path, e.Detail, e.Want, e.Got)
}

// MergeReport is the accounting of a MergeShards call.
type MergeReport struct {
	// Files is the number of shard checkpoints read.
	Files int
	// Records is the number of records adopted into the merged result.
	Records int
	// Duplicates counts records superseded during the merge — within
	// one file (crash/resume rework) or across files (a reassigned
	// shard re-running jobs its predecessor already finished).
	Duplicates int
	// Failed counts adopted records whose final state is a failure.
	Failed int
	// Missing lists job keys of the full grid that no shard file has a
	// record for — empty exactly when the merged result is complete.
	Missing []string
}

// Complete reports whether every job of the grid has a record.
func (r *MergeReport) Complete() bool { return len(r.Missing) == 0 }

// MergeShards unions the shard checkpoints at paths into one result
// equivalent to a single-process run of spec. Every file must carry a
// v2 shard header whose identity hash matches spec (*IdentityError
// otherwise, naming the file). Records merge with the engine's resume
// precedence — later wins, success is never replaced by failure — in
// ascending shard order, so the merge is deterministic regardless of
// the order paths are given in. Aggregating the returned result
// yields bytes identical to the single-process summary once the grid
// is fully covered (report.Complete()).
func MergeShards(spec campaign.Spec, paths []string) (*campaign.Result, *MergeReport, error) {
	spec, err := spec.Normalize()
	if err != nil {
		return nil, nil, err
	}
	want := spec.IdentityHash()
	sorted := append([]string(nil), paths...)
	sort.Strings(sorted)

	res := &campaign.Result{Spec: spec, Records: make(map[string]campaign.Record)}
	rep := &MergeReport{}
	for _, path := range sorted {
		if fi, err := os.Stat(path); err != nil {
			return nil, nil, fmt.Errorf("shard: merge: %w", err)
		} else if fi.Size() == 0 {
			// A worker killed before its first header byte landed.
			// Nothing to adopt and nothing to verify; resume will
			// stamp the header next time.
			rep.Files++
			continue
		}
		fr, err := campaign.LoadCheckpointReport(path, campaign.ResumeOptions{})
		if err != nil {
			return nil, nil, fmt.Errorf("shard: merge %s: %w", path, err)
		}
		switch {
		case fr.Header == nil:
			return nil, nil, &IdentityError{Path: path, Want: want,
				Detail: "no v2 header; cannot verify which campaign this shard belongs to"}
		case fr.Header.Spec != want:
			return nil, nil, &IdentityError{Path: path, Want: want, Got: fr.Header.Spec,
				Detail: "checkpoint belongs to a different campaign"}
		case !fr.Header.Sharded():
			return nil, nil, &IdentityError{Path: path, Want: want, Got: fr.Header.Spec,
				Detail: "checkpoint is a whole-campaign file, not a shard"}
		}
		rep.Files++
		rep.Duplicates += fr.DuplicateRecords
		for key, rec := range fr.Records {
			if prev, ok := res.Records[key]; ok {
				// Disjoint partitions make cross-file collisions rare
				// (only a mis-assembled directory produces them), but
				// the precedence rule still applies: keep a success.
				rep.Duplicates++
				if !prev.Failed() && rec.Failed() {
					continue
				}
			}
			res.Records[key] = rec
		}
	}
	for _, rec := range res.Records {
		if rec.Failed() {
			rep.Failed++
		}
	}
	rep.Records = len(res.Records)
	for _, j := range campaign.Expand(spec) {
		if _, ok := res.Records[j.Key()]; !ok {
			rep.Missing = append(rep.Missing, j.Key())
		}
	}
	res.Total = len(campaign.Expand(spec))
	return res, rep, nil
}
