package shard

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"rowhammer/internal/leasesvc"
)

// Remote-lease mode: when RunConfig.Lease is set, the shard's
// ownership lives in a lease service (leasesvc) instead of a local
// flock — the configuration that lets workers run on hosts that do
// not share a kernel with the coordinator. The protocol differences
// from flock mode, all of which exist because a network can lie in
// ways a kernel cannot:
//
//   - Acquisition is *patient*: a predecessor's lease outlives its
//     process by up to TTL (nobody can revoke it remotely), so a
//     respawned worker polls acquire until the service ages the old
//     lease out, instead of failing fast the way flock mode does.
//   - Every acquisition carries a monotonic fencing token, raised
//     into the shard's fence file before the first append; the
//     checkpoint writer enforces it per record (FencedWriter).
//   - Heartbeat failures degrade gracefully: the worker keeps
//     running while beats fail, and only after TTL of continuous
//     failure does it self-fence — drain in-flight work, flush the
//     checkpoint, stop — rather than racing a successor that the
//     coordinator may already have started.

// remoteKeeper owns one held remote lease: it beats, watches for
// supersession, and trips the self-fence channel.
type remoteKeeper struct {
	svc   leasesvc.API
	key   leasesvc.Key
	token uint64
	ttl   time.Duration
	logf  func(format string, args ...any)

	mu        sync.Mutex
	seq       uint64
	firstFail time.Time // zero ⇒ the last beat reached the service
	why       string

	fenced     chan struct{}
	fencedOnce sync.Once
}

// acquireRemoteLease acquires the shard lease from the service,
// patiently: ErrHeld answers are polled (the predecessor's lease has
// up to TTL left to age out), transport failures ride the client's
// own retry policy, and the loop gives up after patience (default
// 4×TTL) without an acquisition.
func acquireRemoteLease(ctx context.Context, svc leasesvc.API, key leasesvc.Key, owner string, ttl, patience time.Duration, logf func(string, ...any)) (*remoteKeeper, error) {
	if ttl <= 0 {
		ttl = leasesvc.DefaultTTL
	}
	if patience <= 0 {
		patience = 4 * ttl
	}
	poll := ttl / 4
	if poll <= 0 {
		poll = time.Second
	}
	deadline := time.Now().Add(patience)
	for {
		grant, err := svc.Acquire(ctx, key, owner, ttl)
		if err == nil {
			return &remoteKeeper{
				svc: svc, key: key, token: grant.Token, ttl: grant.TTL,
				logf: logf, fenced: make(chan struct{}),
			}, nil
		}
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		if !errors.Is(err, leasesvc.ErrHeld) {
			return nil, fmt.Errorf("shard: acquiring lease %s: %w", key, err)
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("shard: lease %s still held after %s: %w", key, patience, err)
		}
		logf("shard %d/%d: lease held, waiting for predecessor to age out", key.Shard, key.Of)
		t := time.NewTimer(poll)
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			return nil, ctx.Err()
		}
	}
}

// beat sends one heartbeat and runs the graceful-degradation clock:
// a fenced answer self-fences immediately (a successor owns the
// shard); transport failures self-fence only after they have lasted
// TTL — the service, seeing the same silence, is aging the lease out
// on the same schedule, so both sides converge on the handover.
func (k *remoteKeeper) beat(ctx context.Context, done, total int) {
	k.mu.Lock()
	k.seq++
	seq := k.seq
	k.mu.Unlock()
	err := k.svc.Beat(ctx, k.key, k.token, leasesvc.Beat{Seq: seq, Done: done, Total: total})
	switch {
	case err == nil:
		k.mu.Lock()
		k.firstFail = time.Time{}
		k.mu.Unlock()
	case errors.Is(err, leasesvc.ErrFenced) || errors.Is(err, leasesvc.ErrUnknown):
		k.selfFence(fmt.Sprintf("superseded (beat: %v)", err))
	case errors.Is(err, context.Canceled):
		// Shutdown, not network weather — a deadline falls through to
		// the default arm and counts toward the outage clock.
	default:
		k.mu.Lock()
		if k.firstFail.IsZero() {
			k.firstFail = time.Now()
			k.mu.Unlock()
			k.logf("shard %d/%d: heartbeat failing (%v); self-fence in %s unless the service answers",
				k.key.Shard, k.key.Of, err, k.ttl)
			return
		}
		outage := time.Since(k.firstFail)
		k.mu.Unlock()
		if outage > k.ttl {
			k.selfFence(fmt.Sprintf("lease service unreachable for %s (> TTL %s)",
				outage.Round(time.Millisecond), k.ttl))
		}
	}
}

// selfFence trips the drain channel exactly once.
func (k *remoteKeeper) selfFence(why string) {
	k.fencedOnce.Do(func() {
		k.mu.Lock()
		k.why = why
		k.mu.Unlock()
		k.logf("shard %d/%d: self-fencing: %s", k.key.Shard, k.key.Of, why)
		close(k.fenced)
	})
}

// selfFenced reports whether the keeper tripped, and why.
func (k *remoteKeeper) selfFenced() (string, bool) {
	select {
	case <-k.fenced:
		k.mu.Lock()
		defer k.mu.Unlock()
		return k.why, true
	default:
		return "", false
	}
}

// release ends the lease, best-effort with a short deadline — on a
// partition the lease simply ages out instead.
func (k *remoteKeeper) release() {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := k.svc.Release(ctx, k.key, k.token); err != nil && !errors.Is(err, leasesvc.ErrUnknown) {
		k.logf("shard %d/%d: releasing lease: %v", k.key.Shard, k.key.Of, err)
	}
}

// ServiceProbe adapts lease-service views into the coordinator's
// Probe shape, so Coordinate supervises remote-lease workers through
// the exact code path it uses for flock workers: Held comes from the
// service's own expiry judgment, Seq/Done/Total from the last
// heartbeat, and Age is the service-clock time since Seq advanced.
func ServiceProbe(svc leasesvc.API, campaignHash string) func(Assignment) (Probe, error) {
	return func(a Assignment) (Probe, error) {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		v, ok, err := svc.View(ctx, leasesvc.Key{Campaign: campaignHash, Shard: a.Index, Of: a.Of})
		if err != nil {
			return Probe{}, err
		}
		if !ok {
			return Probe{}, nil
		}
		return Probe{
			Held:   v.Held,
			InfoOK: true,
			Info: LeaseInfo{
				Version: leaseVersion, Shard: a.Index, Of: a.Of,
				Spec: campaignHash, Seq: v.Seq, Done: v.Done, Total: v.Total,
			},
			Age:   v.SinceAdvance,
			Token: v.Token,
		}, nil
	}
}
