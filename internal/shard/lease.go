package shard

import (
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"time"

	"rowhammer/internal/durable"
)

// leaseVersion stamps heartbeat lines so a future layout change is
// detectable instead of silently misread.
const leaseVersion = 1

// LeaseInfo is the heartbeat payload a shard worker keeps in its
// lease file: identity (which shard of which campaign), the holder's
// PID for diagnostics and stall-kills, and progress counters. The
// line is CRC-trailed (durable.AppendCRCLine), so a probe reads
// either a verified snapshot or knows it caught a torn rewrite — and
// liveness never depends on the payload at all: that is the flock's
// job.
type LeaseInfo struct {
	Version int    `json:"v"`
	Shard   int    `json:"shard"`
	Of      int    `json:"of"`
	Spec    string `json:"spec"` // campaign identity hash
	PID     int    `json:"pid"`
	Seq     uint64 `json:"seq"`  // heartbeat counter, strictly increasing
	Done    int    `json:"done"` // jobs finished (failed included)
	Total   int    `json:"total"`
}

// Lease is a held shard lease: an exclusive flock on the lease file
// plus the heartbeat line inside it. The kernel drops the flock the
// instant the holder dies, so SIGKILL leaves nothing stale; Beat is
// what a live holder does to prove it is not merely alive but making
// progress.
type Lease struct {
	mu   sync.Mutex
	lock *durable.Lock
	info LeaseInfo
}

// AcquireLease takes the shard lease at path, failing with an error
// wrapping durable.ErrLocked when a live process already holds it,
// and writes the first heartbeat. Total may be 0 until the holder
// knows its job count.
func AcquireLease(path string, info LeaseInfo) (*Lease, error) {
	lock, err := durable.AcquireLock(path)
	if err != nil {
		return nil, err
	}
	info.Version = leaseVersion
	info.PID = os.Getpid()
	info.Seq = 0
	l := &Lease{lock: lock, info: info}
	if err := l.write(); err != nil {
		lock.Release()
		return nil, err
	}
	return l, nil
}

// Info returns the last written heartbeat.
func (l *Lease) Info() LeaseInfo {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.info
}

// Path returns the lease file path.
func (l *Lease) Path() string { return l.lock.Path() }

// Beat refreshes the heartbeat: bumps the sequence number, records
// progress, and rewrites the line in place. The rewrite is not atomic
// — the CRC trailer makes a torn read detectable, and liveness is
// carried by the flock, not the bytes — so a single fsynced line is
// all a lease ever holds.
func (l *Lease) Beat(done, total int) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.info.Seq++
	l.info.Done, l.info.Total = done, total
	return l.write()
}

// write rewrites the heartbeat line. Caller holds l.mu.
func (l *Lease) write() error {
	f := l.lock.File()
	if f == nil {
		return fmt.Errorf("shard: lease %s already released", l.lock.Path())
	}
	payload, err := json.Marshal(l.info)
	if err != nil {
		return err
	}
	line := durable.AppendCRCLine(nil, payload)
	if err := f.Truncate(0); err != nil {
		return fmt.Errorf("shard: lease %s: %w", l.lock.Path(), err)
	}
	if _, err := f.WriteAt(line, 0); err != nil {
		return fmt.Errorf("shard: lease %s: %w", l.lock.Path(), err)
	}
	return f.Sync()
}

// Release drops the flock and removes the lease file. Safe on nil.
func (l *Lease) Release() error {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.lock.Release()
}

// Probe is a coordinator's view of one shard lease.
type Probe struct {
	// Held reports a live holder (the flock is taken). False means
	// dead or never started — either way, nobody owns the shard.
	Held bool
	// Info is the last verified heartbeat; valid only when InfoOK.
	// A dead shard's final heartbeat survives in the file (Release
	// removes it on clean exit, SIGKILL does not), so a coordinator
	// can still see how far the corpse got.
	Info   LeaseInfo
	InfoOK bool
	// Age is the time since the heartbeat file was last written —
	// the stall clock. Meaningful only when the file exists.
	Age time.Duration
	// Token is the remote lease's fencing token (ServiceProbe); zero
	// for flock probes. A token change means a different holder, so
	// the stall tracker must not compare heartbeat Seqs across it —
	// every acquisition restarts Seq at zero.
	Token uint64
}

// Stalled reports a holder that is alive but has not heartbeat
// within ttl — the straggler signal: the process holds its flock
// (not dead) yet stopped proving progress.
func (p Probe) Stalled(ttl time.Duration) bool {
	return p.Held && ttl > 0 && p.Age > ttl
}

// ProbeLease inspects the lease at path without disturbing a live
// holder: flock state via durable.ProbeLock, last verified heartbeat
// via the CRC trailer, staleness via the file's mtime. A missing
// file probes as unheld with no info.
func ProbeLease(path string) (Probe, error) {
	var p Probe
	held, err := durable.ProbeLock(path)
	if err != nil {
		return p, err
	}
	p.Held = held
	raw, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return p, nil
		}
		return p, fmt.Errorf("shard: lease %s: %w", path, err)
	}
	if st, err := os.Stat(path); err == nil {
		p.Age = time.Since(st.ModTime())
	}
	line := raw
	if n := len(line); n > 0 && line[n-1] == '\n' {
		line = line[:n-1]
	}
	if payload, ok := durable.SplitCRCLine(line); ok {
		var info LeaseInfo
		if json.Unmarshal(payload, &info) == nil && info.Version == leaseVersion {
			p.Info, p.InfoOK = info, true
		}
	}
	return p, nil
}
