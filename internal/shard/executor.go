package shard

import (
	"context"
	"fmt"
	"sync"
	"time"

	"rowhammer/internal/leasesvc"
)

// executor abstracts how one shard attempt runs — the single seam
// between Coordinate's supervision loop and the three historical
// execution paths (local subprocesses, in-process goroutines, remote
// fleet workers). The loop calls every method from one goroutine;
// implementations surface attempt terminations on Events, at most one
// outstanding event per shard.
type executor interface {
	// Start launches generation gen of shard a. Exactly one attempt
	// per shard is in flight at a time; the loop never Starts a shard
	// again before consuming its previous attempt's exit event.
	Start(ctx context.Context, a Assignment, gen int) error
	// Kill stops shard a's attempt immediately; its termination
	// surfaces on Events.
	Kill(a Assignment)
	// Drain asks shard a's attempt to stop gracefully — finish
	// in-flight jobs, checkpoint, release — eventually surfacing on
	// Events.
	Drain(a Assignment)
	// Tick lets the executor observe the world on the coordinator's
	// poll cadence; fleet placement watches leases and registrations
	// here and may synthesize exit events.
	Tick()
	// Events delivers attempt terminations.
	Events() <-chan exitEvent
	// Close stops every attempt; for local attempts it also waits for
	// them to finish stopping, so checkpoints are quiescent when
	// Coordinate returns.
	Close()
}

// localExecutor runs attempts through a SpawnFunc — exec'd rhfleet
// subprocesses or in-process goroutines; it does not care which. When
// a registry mirror is configured, each spawned worker is registered
// under a synthetic identity and heartbeaten on the coordinator's
// tick, so /v1/workers reports a locally coordinated run exactly the
// way it reports a fleet: local coordination is the degenerate case
// of placement where every worker runs one shard and lives next door.
type localExecutor struct {
	spawn SpawnFunc
	reg   *leasesvc.Service // optional mirror; nil outside -lease-listen runs
	dir   string
	hash  string
	ttl   time.Duration
	logf  func(format string, args ...any)

	events chan exitEvent

	mu      sync.Mutex
	handles map[int]WorkerHandle
	regTok  map[int]uint64
	regSeq  map[int]uint64
}

func newLocalExecutor(spawn SpawnFunc, reg *leasesvc.Service, dir, hash string, ttl time.Duration, logf func(string, ...any), shards int) *localExecutor {
	return &localExecutor{
		spawn: spawn, reg: reg, dir: dir, hash: hash, ttl: ttl, logf: logf,
		events:  make(chan exitEvent, shards),
		handles: make(map[int]WorkerHandle, shards),
		regTok:  make(map[int]uint64, shards),
		regSeq:  make(map[int]uint64, shards),
	}
}

func mirrorID(idx int) string { return fmt.Sprintf("local/shard-%d", idx) }

func (e *localExecutor) Start(ctx context.Context, a Assignment, gen int) error {
	h, err := e.spawn(ctx, a, gen)
	if err != nil {
		return err
	}
	e.mu.Lock()
	e.handles[a.Index] = h
	e.mu.Unlock()
	e.register(a, gen)
	go func() {
		werr := h.Wait()
		e.mu.Lock()
		delete(e.handles, a.Index)
		e.mu.Unlock()
		e.deregister(a.Index)
		e.events <- exitEvent{idx: a.Index, gen: gen, err: werr}
	}()
	return nil
}

func (e *localExecutor) Kill(a Assignment) {
	e.mu.Lock()
	h := e.handles[a.Index]
	e.mu.Unlock()
	if h != nil {
		h.Kill()
	}
}

func (e *localExecutor) Drain(a Assignment) {
	e.mu.Lock()
	h := e.handles[a.Index]
	e.mu.Unlock()
	if h == nil {
		return
	}
	if d, ok := h.(DrainableWorker); ok {
		d.Drain()
	} else {
		h.Kill()
	}
}

// Tick heartbeats the registry mirror for every live local worker, so
// their registrations stay Alive by the same Seq-monotonicity
// discipline a real fleet worker satisfies for itself.
func (e *localExecutor) Tick() {
	if e.reg == nil {
		return
	}
	ctx := context.Background()
	e.mu.Lock()
	defer e.mu.Unlock()
	for idx := range e.handles {
		tok, ok := e.regTok[idx]
		if !ok {
			continue
		}
		e.regSeq[idx]++
		if _, err := e.reg.WorkerBeat(ctx, mirrorID(idx), tok, e.regSeq[idx]); err != nil {
			delete(e.regTok, idx)
		}
	}
}

func (e *localExecutor) Events() <-chan exitEvent { return e.events }

func (e *localExecutor) Close() {
	e.mu.Lock()
	n := len(e.handles)
	for _, h := range e.handles {
		h.Kill()
	}
	e.mu.Unlock()
	for i := 0; i < n; i++ {
		<-e.events
	}
}

func (e *localExecutor) register(a Assignment, gen int) {
	if e.reg == nil {
		return
	}
	ctx := context.Background()
	id := mirrorID(a.Index)
	g, err := e.reg.RegisterWorker(ctx, id, fmt.Sprintf("gen-%d", gen), 1, e.ttl)
	if err != nil {
		e.logf("shard %s: registry mirror: %v", a, err)
		return
	}
	e.mu.Lock()
	e.regTok[a.Index] = g.Token
	e.regSeq[a.Index] = 0
	e.mu.Unlock()
	p := leasesvc.Placement{Campaign: e.hash, Dir: e.dir, Shard: a.Index, Of: a.Of}
	if err := e.reg.Assign(id, p); err != nil {
		e.logf("shard %s: registry mirror: %v", a, err)
	}
}

func (e *localExecutor) deregister(idx int) {
	if e.reg == nil {
		return
	}
	e.mu.Lock()
	tok, ok := e.regTok[idx]
	delete(e.regTok, idx)
	delete(e.regSeq, idx)
	e.mu.Unlock()
	if ok {
		e.reg.DeregisterWorker(context.Background(), mirrorID(idx), tok)
	}
}
