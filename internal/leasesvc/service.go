// Package leasesvc implements the shard lease service: the
// cross-machine replacement for the local flock leases of
// internal/shard. A fleet coordinator and its workers may live on
// different hosts, where no kernel can revoke a dead worker's lock —
// so ownership becomes a leased, fenced agreement instead:
//
//   - Acquire grants a shard lease keyed by (campaign identity hash,
//     shard, of) and mints a monotonically increasing fencing token.
//     Every successor holds a strictly larger token than every
//     predecessor, which is what lets the checkpoint layer reject a
//     partitioned zombie's late appends.
//   - Beat is the holder's heartbeat. Staleness is judged by Seq
//     monotonicity on the service's own clock: a lease expires only
//     when its heartbeat sequence number stops advancing for TTL —
//     never by comparing worker wall clocks, so a clock-skewed host
//     whose Seq is advancing is alive by definition.
//   - Release ends the lease early; a stale token's release is a
//     harmless no-op (it must never free a successor's lease).
//
// The Service is pure in-memory state behind one mutex — leases are
// an availability mechanism, not a durability one. All durability
// lives in the per-shard v2 checkpoints plus their fence files; if
// the service restarts, workers fail their heartbeats, self-fence,
// and the coordinator reassigns from the checkpoints on disk exactly
// as if the workers had died.
package leasesvc

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"
)

// Default lease parameters; callers usually override TTL from the
// coordinator's -lease-ttl.
const (
	DefaultTTL = 15 * time.Second
)

// staleStateFactor bounds, in TTLs, how long dead state outlives its
// last heartbeat. A lease unheld for longer has its done/total reset
// on the next Acquire: progress deliberately survives fencing
// handovers (a successor resumes the predecessor's checkpoint within
// a TTL or two), but a re-run of the same spec against a long-lived
// service — fresh shard directory, wiped store — must not start with
// the prior run's final counters and look near-complete to Progress
// and the placement scheduler. Worker registrations dead for the same
// bound are garbage-collected outright (registry.go).
const staleStateFactor = 10

// Sentinel errors of the lease protocol. The HTTP layer maps them to
// status codes and back, so errors.Is works identically against an
// in-process Service and a remote Client.
var (
	// ErrHeld reports a live lease: acquisition refused because the
	// current holder's Seq advanced within TTL.
	ErrHeld = errors.New("leasesvc: lease held")
	// ErrFenced reports a stale fencing token: the caller has been
	// superseded by a later acquisition and must stop writing.
	ErrFenced = errors.New("leasesvc: fencing token superseded")
	// ErrUnknown reports an operation on a lease that was never
	// acquired from this service.
	ErrUnknown = errors.New("leasesvc: unknown lease")
)

// Key identifies one shard lease: the campaign identity hash (already
// covering kind/fleet/seed/temps/fingerprint) plus the shard's slot
// in the partition. Two campaigns never collide, and neither do two
// different partition widths of the same campaign.
type Key struct {
	Campaign string `json:"campaign"`
	Shard    int    `json:"shard"`
	Of       int    `json:"of"`
}

// Validate rejects structurally impossible keys before they can pin
// garbage state into the lease table.
func (k Key) Validate() error {
	if k.Campaign == "" {
		return fmt.Errorf("leasesvc: key has empty campaign hash")
	}
	if k.Of < 1 || k.Shard < 0 || k.Shard >= k.Of {
		return fmt.Errorf("leasesvc: key has impossible shard %d/%d", k.Shard, k.Of)
	}
	return nil
}

func (k Key) String() string { return fmt.Sprintf("%s/%d-of-%d", k.Campaign, k.Shard, k.Of) }

// Grant is a successful acquisition: the minted fencing token and the
// TTL the service will actually enforce.
type Grant struct {
	Token uint64        `json:"token"`
	TTL   time.Duration `json:"ttl"`
}

// Beat is one heartbeat payload. Seq must be strictly increasing per
// grant — the service advances its staleness clock only on a Seq it
// has not seen, so replayed or frozen heartbeats age the lease out.
type Beat struct {
	Seq   uint64 `json:"seq"`
	Done  int    `json:"done"`
	Total int    `json:"total"`
}

// View is the observable state of one lease — what a coordinator
// probes to learn remote-shard liveness.
type View struct {
	Key
	// Held reports an unexpired holder at observation time.
	Held bool `json:"held"`
	// Token is the high-water fencing token minted so far.
	Token uint64 `json:"token"`
	// Owner labels the last holder (host:pid), diagnostics only.
	Owner string `json:"owner,omitempty"`
	// Seq/Done/Total mirror the last heartbeat.
	Seq   uint64 `json:"seq"`
	Done  int    `json:"done"`
	Total int    `json:"total"`
	// SinceAdvance is how long ago, on the service's clock, Seq last
	// advanced (or the lease was acquired). The staleness clock.
	SinceAdvance time.Duration `json:"since_advance_ms"`
	// TTL is the expiry the service enforces for this lease.
	TTL time.Duration `json:"ttl_ms"`
}

// API is the lease protocol as both sides of the wire implement it:
// *Service in process, *Client over HTTP. internal/shard programs
// against this, so tests exercise the exact worker logic with no
// network and the binaries run it over loopback or a real fleet.
type API interface {
	Acquire(ctx context.Context, key Key, owner string, ttl time.Duration) (Grant, error)
	Beat(ctx context.Context, key Key, token uint64, b Beat) error
	Release(ctx context.Context, key Key, token uint64) error
	View(ctx context.Context, key Key) (View, bool, error)
}

// state is one lease's record. token only ever increases — that is
// the entire fencing guarantee.
type state struct {
	token       uint64
	held        bool
	owner       string
	ttl         time.Duration
	seq         uint64
	done, total int
	lastAdvance time.Time // service-clock time Seq last advanced
}

// Service is the in-memory lease table plus the worker registry
// (registry.go) and the operational counters both expose.
type Service struct {
	mu      sync.Mutex
	leases  map[Key]*state
	workers map[string]*workerState
	ttl     time.Duration
	now     func() time.Time
	stats   Stats
}

// Stats are the service's operational counters — the handover-churn
// dashboard drills and operators read from GET /v1/stats. Counters
// only ever increase; WorkersRegistered is a live gauge.
type Stats struct {
	// LeaseAcquires counts granted lease acquisitions (every fencing
	// token minted), refusals excluded.
	LeaseAcquires uint64 `json:"lease_acquires"`
	// LeaseBeats counts accepted lease heartbeats.
	LeaseBeats uint64 `json:"lease_beats"`
	// FencedRejections counts beats — lease or worker — refused with
	// ErrFenced: each one is a superseded writer being told to stop.
	FencedRejections uint64 `json:"fenced_rejections"`
	// WorkerBeats counts accepted worker-registry heartbeats.
	WorkerBeats uint64 `json:"worker_beats"`
	// WorkersRegistered gauges currently live registered workers.
	WorkersRegistered int `json:"workers_registered"`
}

// StatsSnapshot returns the current counters; the gauge is computed
// against the service clock at call time.
func (s *Service) StatsSnapshot() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.WorkersRegistered = 0
	for _, w := range s.workers {
		if w.registered && !s.workerExpired(w) {
			st.WorkersRegistered++
		}
	}
	return st
}

// DefaultLeaseTTL reports the TTL used when acquirers pass 0 — the
// value a colocated scheduler should supervise with.
func (s *Service) DefaultLeaseTTL() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ttl
}

// NewService builds a lease service whose default TTL (used when an
// acquirer passes 0) is defaultTTL, or DefaultTTL when <= 0.
func NewService(defaultTTL time.Duration) *Service {
	if defaultTTL <= 0 {
		defaultTTL = DefaultTTL
	}
	return &Service{leases: map[Key]*state{}, workers: map[string]*workerState{}, ttl: defaultTTL, now: time.Now}
}

// SetNow replaces the service clock — the test seam for expiry
// without real sleeping. Not for production use.
func (s *Service) SetNow(now func() time.Time) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.now = now
}

// expired reports whether st's heartbeat Seq has been frozen past its
// TTL, judged entirely on the service's clock. Caller holds s.mu.
func (s *Service) expired(st *state) bool {
	return s.now().Sub(st.lastAdvance) > st.ttl
}

// HeldError decorates ErrHeld with the live holder, so a refused
// acquirer can log who owns the shard.
type HeldError struct {
	Key   Key
	Owner string
	Seq   uint64
}

func (e *HeldError) Error() string {
	return fmt.Sprintf("leasesvc: lease %s held by %s (seq %d)", e.Key, e.Owner, e.Seq)
}

func (e *HeldError) Unwrap() error { return ErrHeld }

// Acquire grants the lease if it is free or its holder's heartbeat
// has gone stale, minting the next fencing token. A refused acquire
// returns an error wrapping ErrHeld; callers poll until the holder
// either releases or expires.
func (s *Service) Acquire(_ context.Context, key Key, owner string, ttl time.Duration) (Grant, error) {
	if err := key.Validate(); err != nil {
		return Grant{}, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if ttl <= 0 {
		ttl = s.ttl
	}
	st := s.leases[key]
	if st == nil {
		st = &state{}
		s.leases[key] = st
	}
	if st.held && !s.expired(st) {
		return Grant{}, &HeldError{Key: key, Owner: st.owner, Seq: st.seq}
	}
	// done/total survive a handover: a successor resumes from the
	// predecessor's checkpoint, so the shard's progress is monotone
	// across fencing-token changes — and the placement scheduler reads
	// it off GET /v1/leases as its throughput signal. Resetting on
	// every acquire would make each reassignment look like lost work.
	// But an acquisition long after the lease went quiet is a fresh
	// run, not a handover; its progress starts from zero. The token is
	// never reset — on-disk fence files depend on its monotonicity.
	if st.token > 0 && s.now().Sub(st.lastAdvance) > staleStateFactor*st.ttl {
		st.done, st.total = 0, 0
	}
	st.token++
	st.held = true
	st.owner = owner
	st.ttl = ttl
	st.seq = 0
	st.lastAdvance = s.now()
	s.stats.LeaseAcquires++
	return Grant{Token: st.token, TTL: ttl}, nil
}

// Beat records a heartbeat under token. A token below the high-water
// mark gets ErrFenced — the holder has been superseded and must stop.
// The staleness clock advances only when b.Seq strictly exceeds the
// last recorded Seq; a wedged worker replaying one Seq forever is
// indistinguishable from silence and ages out.
func (s *Service) Beat(_ context.Context, key Key, token uint64, b Beat) error {
	if err := key.Validate(); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.leases[key]
	if st == nil || token > st.token {
		return fmt.Errorf("%w: %s", ErrUnknown, key)
	}
	if token < st.token {
		s.stats.FencedRejections++
		return fmt.Errorf("%w: lease %s token %d < %d", ErrFenced, key, token, st.token)
	}
	// The current token beating revives a lease the service had
	// written off as expired — as long as no successor acquired it in
	// between, the slow heartbeat proves the holder is still the
	// legitimate owner.
	st.held = true
	if b.Seq > st.seq {
		st.seq = b.Seq
		st.lastAdvance = s.now()
	}
	// Done is monotone: a successor's first beats replay the resumed
	// checkpoint count, which can never be below what the predecessor
	// reported for records that actually landed — but a beat raced
	// from before a handover must not drag the published progress
	// backwards either.
	if b.Done > st.done {
		st.done = b.Done
	}
	if b.Total > 0 {
		st.total = b.Total
	}
	s.stats.LeaseBeats++
	return nil
}

// Release ends the lease held under token. Releasing with a stale
// token is a no-op success: the zombie's release must never free the
// successor's lease. Releasing a never-acquired lease is ErrUnknown.
func (s *Service) Release(_ context.Context, key Key, token uint64) error {
	if err := key.Validate(); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.leases[key]
	if st == nil || token > st.token {
		return fmt.Errorf("%w: %s", ErrUnknown, key)
	}
	if token == st.token && st.held {
		st.held = false
		// Backdate the staleness clock so the next Acquire succeeds
		// immediately instead of waiting out a TTL that no longer
		// protects anyone.
		st.lastAdvance = s.now().Add(-st.ttl - time.Second)
	}
	return nil
}

// View reports the lease's observable state; ok is false when the
// lease was never acquired.
func (s *Service) View(_ context.Context, key Key) (View, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.leases[key]
	if st == nil {
		return View{Key: key}, false, nil
	}
	return s.view(key, st), true, nil
}

// List snapshots every lease, for the GET /v1/leases index.
func (s *Service) List() []View {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]View, 0, len(s.leases))
	for k, st := range s.leases {
		out = append(out, s.view(k, st))
	}
	return out
}

// view renders one lease. Caller holds s.mu.
func (s *Service) view(key Key, st *state) View {
	return View{
		Key:          key,
		Held:         st.held && !s.expired(st),
		Token:        st.token,
		Owner:        st.owner,
		Seq:          st.seq,
		Done:         st.done,
		Total:        st.total,
		SinceAdvance: s.now().Sub(st.lastAdvance),
		TTL:          st.ttl,
	}
}
