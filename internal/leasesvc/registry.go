package leasesvc

import (
	"context"
	"fmt"
	"sort"
	"time"
)

// The worker registry: the placement layer's membership half. A shard
// worker registers its capacity, heartbeats on a Seq-monotonic clock
// (the exact staleness discipline leases use), and each heartbeat
// answer carries the worker's current shard assignments — the pull
// channel through which a scheduler (internal/shard's fleet
// coordinator) hands out work. Registration is fenced like a lease:
// re-registering an ID mints the next token and supersedes the old
// registration, so a restarted worker takes its identity back
// immediately and the zombie's beats are refused with ErrFenced.
//
// Assignments are scheduler-side state: Assign/Unassign/Workers are
// in-process methods on *Service (the scheduler is colocated with the
// registry — rhserved's manager, or a coordinator self-hosting
// -lease-listen). Correctness never rests on the registry: a worker
// only *runs* a placement by acquiring that shard's fenced lease, so
// a stale assignment delivered to two workers costs one of them a
// refused acquire, never a duplicate record.

// Placement is one shard assignment as delivered to a worker: which
// campaign (identity hash — the worker verifies it against the spec
// it resolves), where the shard directory lives on the shared
// filesystem, and which slice of the partition to run.
type Placement struct {
	Campaign string `json:"campaign"`
	Dir      string `json:"dir"`
	Shard    int    `json:"shard"`
	Of       int    `json:"of"`
}

// LeaseKey is the shard lease this placement's runner will acquire.
func (p Placement) LeaseKey() Key {
	return Key{Campaign: p.Campaign, Shard: p.Shard, Of: p.Of}
}

func (p Placement) String() string {
	return fmt.Sprintf("%s/%d-of-%d@%s", p.Campaign, p.Shard, p.Of, p.Dir)
}

// Validate rejects structurally impossible placements.
func (p Placement) Validate() error {
	if err := p.LeaseKey().Validate(); err != nil {
		return err
	}
	if p.Dir == "" {
		return fmt.Errorf("leasesvc: placement %s has empty dir", p.LeaseKey())
	}
	return nil
}

// WorkerView is one registered worker's observable state — what the
// scheduler places against and GET /v1/workers reports.
type WorkerView struct {
	ID    string `json:"id"`
	Owner string `json:"owner,omitempty"`
	// Token is the registration's fencing token.
	Token uint64 `json:"token"`
	// Alive reports a registration whose heartbeat Seq advanced within
	// TTL — the scheduler only places onto live workers.
	Alive bool `json:"alive"`
	// Slots is the worker's declared parallel capacity.
	Slots int `json:"slots"`
	Seq   uint64 `json:"seq"`
	// SinceAdvance is service-clock time since Seq last advanced.
	SinceAdvance time.Duration `json:"since_advance_ms"`
	TTL          time.Duration `json:"ttl_ms"`
	// Assignments are the placements the worker pulls on its next beat.
	Assignments []Placement `json:"assignments,omitempty"`
}

// RegistryAPI is the worker side of the registry protocol, implemented
// by *Service in process and *Client over HTTP — the same split as the
// lease API, so internal/shard's worker loop is wire-agnostic.
type RegistryAPI interface {
	RegisterWorker(ctx context.Context, id, owner string, slots int, ttl time.Duration) (Grant, error)
	WorkerBeat(ctx context.Context, id string, token, seq uint64) ([]Placement, error)
	DeregisterWorker(ctx context.Context, id string, token uint64) error
}

// workerState is one registration. Like a lease, token only ever
// increases and staleness is judged by Seq monotonicity on the
// service clock.
type workerState struct {
	token       uint64
	registered  bool
	owner       string
	slots       int
	ttl         time.Duration
	seq         uint64
	lastAdvance time.Time
	assignments []Placement
}

// workerExpired reports a frozen heartbeat. Caller holds s.mu.
func (s *Service) workerExpired(w *workerState) bool {
	return s.now().Sub(w.lastAdvance) > w.ttl
}

// gcWorkersLocked drops registrations that have been dead —
// deregistered, or heartbeat-expired — for longer than
// staleStateFactor TTLs. The default worker ID is host:pid, so every
// worker restart mints a new entry; without a sweep a long-lived
// service accumulates corpses without bound and GET /v1/workers lists
// them forever. Deleting an entry restarts its token sequence, which
// is safe here (unlike for leases): the registry is observational, so
// the worst a revenant token collision costs is a stale assignment
// delivered twice, and whichever worker loses the shard lease race
// gets a refused acquire, never a duplicate record. Caller holds s.mu.
func (s *Service) gcWorkersLocked() {
	now := s.now()
	for id, w := range s.workers {
		if w.registered && !s.workerExpired(w) {
			continue
		}
		if now.Sub(w.lastAdvance) > staleStateFactor*w.ttl {
			delete(s.workers, id)
		}
	}
}

// RegisterWorker registers (or re-registers) worker id with slots
// parallel capacity. Re-registration supersedes unconditionally — a
// restarted worker must not wait out its own corpse's TTL — minting
// the next fencing token; the superseded process's beats get
// ErrFenced. Assignments do not carry across registrations: the
// scheduler re-asserts placements against the live token.
func (s *Service) RegisterWorker(_ context.Context, id, owner string, slots int, ttl time.Duration) (Grant, error) {
	if id == "" {
		return Grant{}, fmt.Errorf("leasesvc: worker registration with empty id")
	}
	if slots < 1 {
		slots = 1
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.gcWorkersLocked()
	if ttl <= 0 {
		ttl = s.ttl
	}
	w := s.workers[id]
	if w == nil {
		w = &workerState{}
		s.workers[id] = w
	}
	w.token++
	w.registered = true
	w.owner = owner
	w.slots = slots
	w.ttl = ttl
	w.seq = 0
	w.assignments = nil
	w.lastAdvance = s.now()
	return Grant{Token: w.token, TTL: ttl}, nil
}

// WorkerBeat records a worker heartbeat and returns the worker's
// current assignments — the scheduler-to-worker pull channel. The
// fencing and staleness semantics mirror lease beats exactly: a stale
// token is ErrFenced (the worker has been superseded and must stop
// claiming this identity), a never-minted token is ErrUnknown, and
// the staleness clock advances only on a Seq the service has not
// seen.
func (s *Service) WorkerBeat(_ context.Context, id string, token, seq uint64) ([]Placement, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	w := s.workers[id]
	if w == nil || token > w.token {
		return nil, fmt.Errorf("%w: worker %s", ErrUnknown, id)
	}
	if token < w.token {
		s.stats.FencedRejections++
		return nil, fmt.Errorf("%w: worker %s token %d < %d", ErrFenced, id, token, w.token)
	}
	w.registered = true
	if seq > w.seq {
		w.seq = seq
		w.lastAdvance = s.now()
	}
	s.stats.WorkerBeats++
	out := make([]Placement, len(w.assignments))
	copy(out, w.assignments)
	return out, nil
}

// DeregisterWorker ends a registration. A stale token is a no-op
// success (the zombie must not deregister its successor); a
// never-minted token is ErrUnknown.
func (s *Service) DeregisterWorker(_ context.Context, id string, token uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	w := s.workers[id]
	if w == nil || token > w.token {
		return fmt.Errorf("%w: worker %s", ErrUnknown, id)
	}
	if token == w.token && w.registered {
		w.registered = false
		w.assignments = nil
		w.lastAdvance = s.now().Add(-w.ttl - time.Second)
	}
	return nil
}

// Assign hands placement p to worker id; the worker pulls it on its
// next beat. Scheduler-side, in-process only. Assigning a placement
// the worker already holds is a no-op.
func (s *Service) Assign(id string, p Placement) error {
	if err := p.Validate(); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	w := s.workers[id]
	if w == nil || !w.registered {
		return fmt.Errorf("%w: worker %s", ErrUnknown, id)
	}
	for _, have := range w.assignments {
		if have == p {
			return nil
		}
	}
	w.assignments = append(w.assignments, p)
	return nil
}

// Unassign withdraws placement p from worker id — the worker sees it
// gone on its next beat and drains that shard. Unknown workers and
// absent placements are no-op successes: withdrawal is idempotent.
func (s *Service) Unassign(id string, p Placement) {
	s.mu.Lock()
	defer s.mu.Unlock()
	w := s.workers[id]
	if w == nil {
		return
	}
	kept := w.assignments[:0]
	for _, have := range w.assignments {
		if have != p {
			kept = append(kept, have)
		}
	}
	w.assignments = kept
}

// Workers snapshots every registration, sorted by ID — the
// scheduler's placement input and the GET /v1/workers body.
func (s *Service) Workers() []WorkerView {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.gcWorkersLocked()
	out := make([]WorkerView, 0, len(s.workers))
	for id, w := range s.workers {
		v := WorkerView{
			ID: id, Owner: w.owner, Token: w.token,
			Alive: w.registered && !s.workerExpired(w),
			Slots: w.slots, Seq: w.seq,
			SinceAdvance: s.now().Sub(w.lastAdvance),
			TTL:          w.ttl,
		}
		if len(w.assignments) > 0 {
			v.Assignments = make([]Placement, len(w.assignments))
			copy(v.Assignments, w.assignments)
		}
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}
