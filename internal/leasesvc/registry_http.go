package leasesvc

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"
)

// Worker-registry wire schema (documented in EXPERIMENTS.md):
//
//	POST /v1/workers/register    {id, owner, slots, ttl_ms}
//	    200 {token, ttl_ms} | 400
//	POST /v1/workers/beat        {id, token, seq}
//	    200 {placements:[{campaign,dir,shard,of}...]} | 409 {error, fenced:true} | 404 | 400
//	POST /v1/workers/deregister  {id, token}
//	    200 {} | 404 | 400
//	GET  /v1/workers
//	    200 [WorkerView...]
//	GET  /v1/stats
//	    200 {lease_acquires, lease_beats, fenced_rejections, worker_beats, workers_registered}
//
// The same conventions as the lease routes: TTLs and ages travel as
// integer milliseconds, 409 is the only semantic "no" (fenced — a
// superseded registration) and is never retried by the client.

type registerWorkerReq struct {
	ID        string `json:"id"`
	Owner     string `json:"owner"`
	Slots     int    `json:"slots"`
	TTLMillis int64  `json:"ttl_ms"`
}

type workerBeatReq struct {
	ID    string `json:"id"`
	Token uint64 `json:"token"`
	Seq   uint64 `json:"seq"`
}

type workerBeatResp struct {
	Placements []Placement `json:"placements"`
}

type deregisterWorkerReq struct {
	ID    string `json:"id"`
	Token uint64 `json:"token"`
}

// wireWorker is WorkerView with durations flattened to milliseconds.
type wireWorker struct {
	ID             string      `json:"id"`
	Owner          string      `json:"owner,omitempty"`
	Token          uint64      `json:"token"`
	Alive          bool        `json:"alive"`
	Slots          int         `json:"slots"`
	Seq            uint64      `json:"seq"`
	SinceAdvanceMS int64       `json:"since_advance_ms"`
	TTLMillis      int64       `json:"ttl_ms"`
	Assignments    []Placement `json:"assignments,omitempty"`
}

func toWireWorker(v WorkerView) wireWorker {
	return wireWorker{
		ID: v.ID, Owner: v.Owner, Token: v.Token, Alive: v.Alive,
		Slots: v.Slots, Seq: v.Seq,
		SinceAdvanceMS: v.SinceAdvance.Milliseconds(),
		TTLMillis:      v.TTL.Milliseconds(),
		Assignments:    v.Assignments,
	}
}

// registerRegistry mounts the worker-registry and stats routes; called
// from Register so every mount of the lease API carries the registry.
func (s *Service) registerRegistry(mux *http.ServeMux) {
	mux.HandleFunc("POST /v1/workers/register", s.handleRegisterWorker)
	mux.HandleFunc("POST /v1/workers/beat", s.handleWorkerBeat)
	mux.HandleFunc("POST /v1/workers/deregister", s.handleDeregisterWorker)
	mux.HandleFunc("GET /v1/workers", s.handleWorkers)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
}

func (s *Service) handleRegisterWorker(w http.ResponseWriter, r *http.Request) {
	var req registerWorkerReq
	if !decodeBody(w, r, &req) {
		return
	}
	grant, err := s.RegisterWorker(r.Context(), req.ID, req.Owner, req.Slots, time.Duration(req.TTLMillis)*time.Millisecond)
	if err != nil {
		writeLeaseErr(w, http.StatusBadRequest, err)
		return
	}
	writeLeaseJSON(w, http.StatusOK, acquireResp{Token: grant.Token, TTLMillis: grant.TTL.Milliseconds()})
}

func (s *Service) handleWorkerBeat(w http.ResponseWriter, r *http.Request) {
	var req workerBeatReq
	if !decodeBody(w, r, &req) {
		return
	}
	ps, err := s.WorkerBeat(r.Context(), req.ID, req.Token, req.Seq)
	switch {
	case errors.Is(err, ErrFenced):
		writeLeaseErr(w, http.StatusConflict, err)
	case errors.Is(err, ErrUnknown):
		writeLeaseErr(w, http.StatusNotFound, err)
	case err != nil:
		writeLeaseErr(w, http.StatusBadRequest, err)
	default:
		if ps == nil {
			ps = []Placement{}
		}
		writeLeaseJSON(w, http.StatusOK, workerBeatResp{Placements: ps})
	}
}

func (s *Service) handleDeregisterWorker(w http.ResponseWriter, r *http.Request) {
	var req deregisterWorkerReq
	if !decodeBody(w, r, &req) {
		return
	}
	err := s.DeregisterWorker(r.Context(), req.ID, req.Token)
	switch {
	case errors.Is(err, ErrUnknown):
		writeLeaseErr(w, http.StatusNotFound, err)
	case err != nil:
		writeLeaseErr(w, http.StatusBadRequest, err)
	default:
		writeLeaseJSON(w, http.StatusOK, struct{}{})
	}
}

func (s *Service) handleWorkers(w http.ResponseWriter, _ *http.Request) {
	views := s.Workers()
	out := make([]wireWorker, len(views))
	for i, v := range views {
		out[i] = toWireWorker(v)
	}
	writeLeaseJSON(w, http.StatusOK, out)
}

func (s *Service) handleStats(w http.ResponseWriter, _ *http.Request) {
	writeLeaseJSON(w, http.StatusOK, s.StatsSnapshot())
}

// RegisterWorker implements RegistryAPI over HTTP.
func (c *Client) RegisterWorker(ctx context.Context, id, owner string, slots int, ttl time.Duration) (Grant, error) {
	var resp acquireResp
	err := c.call(ctx, "/v1/workers/register", "worker-register/"+id, registerWorkerReq{
		ID: id, Owner: owner, Slots: slots, TTLMillis: ttl.Milliseconds(),
	}, &resp)
	if err != nil {
		return Grant{}, err
	}
	return Grant{Token: resp.Token, TTL: time.Duration(resp.TTLMillis) * time.Millisecond}, nil
}

// WorkerBeat implements RegistryAPI over HTTP.
func (c *Client) WorkerBeat(ctx context.Context, id string, token, seq uint64) ([]Placement, error) {
	var resp workerBeatResp
	err := c.call(ctx, "/v1/workers/beat", "worker-beat/"+id, workerBeatReq{
		ID: id, Token: token, Seq: seq,
	}, &resp)
	if err != nil {
		return nil, err
	}
	return resp.Placements, nil
}

// DeregisterWorker implements RegistryAPI over HTTP.
func (c *Client) DeregisterWorker(ctx context.Context, id string, token uint64) error {
	return c.call(ctx, "/v1/workers/deregister", "worker-deregister/"+id, deregisterWorkerReq{
		ID: id, Token: token,
	}, nil)
}

// WorkersList fetches the registered-worker inventory — diagnostics
// for operators; schedulers use the in-process Workers.
func (c *Client) WorkersList(ctx context.Context) ([]WorkerView, error) {
	callCtx, cancel := context.WithTimeout(ctx, c.timeout())
	defer cancel()
	req, err := http.NewRequestWithContext(callCtx, http.MethodGet, c.BaseURL+"/v1/workers", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("leasesvc: workers: HTTP %d", resp.StatusCode)
	}
	var wire []wireWorker
	if err := json.NewDecoder(resp.Body).Decode(&wire); err != nil {
		return nil, err
	}
	out := make([]WorkerView, len(wire))
	for i, w := range wire {
		out[i] = WorkerView{
			ID: w.ID, Owner: w.Owner, Token: w.Token, Alive: w.Alive,
			Slots: w.Slots, Seq: w.Seq,
			SinceAdvance: time.Duration(w.SinceAdvanceMS) * time.Millisecond,
			TTL:          time.Duration(w.TTLMillis) * time.Millisecond,
			Assignments:  w.Assignments,
		}
	}
	return out, nil
}

// Both halves of the wire implement the registry protocol.
var (
	_ RegistryAPI = (*Service)(nil)
	_ RegistryAPI = (*Client)(nil)
)
