package leasesvc

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func newTestPair(t *testing.T) (*Service, *Client) {
	t.Helper()
	svc := NewService(time.Second)
	srv := httptest.NewServer(svc.Handler())
	t.Cleanup(srv.Close)
	return svc, &Client{BaseURL: srv.URL, Backoff: time.Millisecond, Retries: 2}
}

// The client over real HTTP must behave exactly like the in-process
// service: same grants, same sentinel errors via errors.Is.
func TestClientRoundTrip(t *testing.T) {
	svc, c := newTestPair(t)
	ctx := context.Background()
	key := testKey()

	g, err := c.Acquire(ctx, key, "worker:1", 500*time.Millisecond)
	if err != nil {
		t.Fatalf("acquire: %v", err)
	}
	if g.Token != 1 || g.TTL != 500*time.Millisecond {
		t.Fatalf("grant = %+v", g)
	}
	if _, err := c.Acquire(ctx, key, "worker:2", 0); !errors.Is(err, ErrHeld) {
		t.Fatalf("contended acquire = %v, want ErrHeld", err)
	}
	if err := c.Beat(ctx, key, g.Token, Beat{Seq: 1, Done: 1, Total: 3}); err != nil {
		t.Fatalf("beat: %v", err)
	}
	v, ok, err := c.View(ctx, key)
	if err != nil || !ok {
		t.Fatalf("view: ok=%v err=%v", ok, err)
	}
	if !v.Held || v.Seq != 1 || v.Done != 1 || v.Total != 3 || v.Owner != "worker:1" {
		t.Fatalf("view = %+v", v)
	}
	// Supersede directly on the service; the old client token must
	// come back fenced over the wire.
	svc.SetNow(func() time.Time { return time.Now().Add(time.Hour) })
	if _, err := svc.Acquire(ctx, key, "worker:2", 0); err != nil {
		t.Fatalf("successor acquire: %v", err)
	}
	if err := c.Beat(ctx, key, g.Token, Beat{Seq: 2}); !errors.Is(err, ErrFenced) {
		t.Fatalf("zombie beat over HTTP = %v, want ErrFenced", err)
	}
	if err := c.Release(ctx, key, g.Token); err != nil {
		t.Fatalf("stale release over HTTP: %v", err)
	}
	other := Key{Campaign: "0000000000000000", Shard: 0, Of: 2}
	if err := c.Beat(ctx, other, 1, Beat{}); !errors.Is(err, ErrUnknown) {
		t.Fatalf("beat unknown over HTTP = %v, want ErrUnknown", err)
	}
}

// 5xx responses are infrastructure failures and retry until the
// service answers; 409 is a protocol answer and must not retry.
func TestClientRetryPolicy(t *testing.T) {
	svc := NewService(time.Second)
	var calls atomic.Int64
	var fail503 atomic.Int64
	h := svc.Handler()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		if fail503.Add(-1) >= 0 {
			http.Error(w, "synthetic outage", http.StatusServiceUnavailable)
			return
		}
		h.ServeHTTP(w, r)
	}))
	defer srv.Close()
	c := &Client{BaseURL: srv.URL, Backoff: time.Millisecond, Retries: 3}
	ctx := context.Background()
	key := testKey()

	fail503.Store(2)
	if _, err := c.Acquire(ctx, key, "w:1", 0); err != nil {
		t.Fatalf("acquire through 2×503: %v", err)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("acquire used %d calls, want 3 (2 failures + 1 success)", got)
	}
	calls.Store(0)
	if _, err := c.Acquire(ctx, key, "w:2", 0); !errors.Is(err, ErrHeld) {
		t.Fatalf("contended acquire = %v, want ErrHeld", err)
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("409 used %d calls, want 1 (protocol answers never retry)", got)
	}
}

func TestClientExhaustsRetries(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "down", http.StatusBadGateway)
	}))
	defer srv.Close()
	c := &Client{BaseURL: srv.URL, Backoff: time.Millisecond, Retries: 2}
	_, err := c.Acquire(context.Background(), testKey(), "w:1", 0)
	if err == nil || !strings.Contains(err.Error(), "after 3 attempt(s)") {
		t.Fatalf("err = %v, want retry-exhaustion naming 3 attempts", err)
	}
}

// Oversized and malformed bodies are bounded and rejected without
// touching lease state.
func TestServerBodyLimits(t *testing.T) {
	svc := NewService(time.Second)
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	// Valid JSON right up to (and past) the byte bound, so the limit
	// trips before a syntax error can.
	huge := append([]byte(`{"campaign":"`), bytes.Repeat([]byte("x"), maxBodyBytes+1024)...)
	huge = append(huge, []byte(`"}`)...)
	resp, err := http.Post(srv.URL+"/v1/leases/acquire", "application/json", bytes.NewReader(huge))
	if err != nil {
		t.Fatalf("post: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body: HTTP %d, want 413", resp.StatusCode)
	}
	resp, err = http.Post(srv.URL+"/v1/leases/acquire", "application/json",
		strings.NewReader(`{"campaign":"h","unknown_field":1}`))
	if err != nil {
		t.Fatalf("post: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown field: HTTP %d, want 400", resp.StatusCode)
	}
	if len(svc.List()) != 0 {
		t.Fatalf("rejected requests leaked lease state: %v", svc.List())
	}
}

func TestListFiltersAndSorts(t *testing.T) {
	_, c := newTestPair(t)
	ctx := context.Background()
	for shard := 2; shard >= 0; shard-- {
		key := Key{Campaign: "aaaa", Shard: shard, Of: 3}
		if _, err := c.Acquire(ctx, key, "w", 0); err != nil {
			t.Fatalf("acquire shard %d: %v", shard, err)
		}
	}
	if _, err := c.Acquire(ctx, Key{Campaign: "bbbb", Shard: 0, Of: 1}, "w", 0); err != nil {
		t.Fatalf("acquire other campaign: %v", err)
	}
	req, _ := http.NewRequest(http.MethodGet, c.BaseURL+"/v1/leases?campaign=aaaa", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("list: %v", err)
	}
	defer resp.Body.Close()
	var views []wireView
	if err := json.NewDecoder(resp.Body).Decode(&views); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(views) != 3 {
		t.Fatalf("filtered list has %d entries, want 3", len(views))
	}
	for i, v := range views {
		if v.Campaign != "aaaa" || v.Shard != i {
			t.Fatalf("views[%d] = %+v, want campaign aaaa shard %d", i, v, i)
		}
	}
}

// GET /v1/leases — the wire form of the scheduler's progress signal —
// must report monotone done/total across a fencing-token change.
func TestListProgressMonotoneAcrossHandover(t *testing.T) {
	svc, c := newTestPair(t)
	ctx := context.Background()
	key := testKey()

	readDone := func() (uint64, int, int) {
		t.Helper()
		v, ok, err := c.View(ctx, key)
		if err != nil || !ok {
			t.Fatalf("view: ok=%v err=%v", ok, err)
		}
		return v.Token, v.Done, v.Total
	}

	g1, err := c.Acquire(ctx, key, "gen0", 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Beat(ctx, key, g1.Token, Beat{Seq: 4, Done: 6, Total: 10}); err != nil {
		t.Fatal(err)
	}
	if _, done, total := readDone(); done != 6 || total != 10 {
		t.Fatalf("pre-handover view = %d/%d, want 6/10", done, total)
	}
	// Age the lease out on the service clock and hand over. A handover
	// follows within a couple of TTLs — the successor is reassigned as
	// soon as the coordinator sees the lapse; progress unheld far
	// longer than that is a fresh run's and resets (see service_test).
	svc.SetNow(func() time.Time { return time.Now().Add(2 * time.Second) })
	g2, err := c.Acquire(ctx, key, "gen1", 0)
	if err != nil {
		t.Fatalf("successor acquire: %v", err)
	}
	tok, done, total := readDone()
	if tok != g2.Token || done != 6 || total != 10 {
		t.Fatalf("post-handover view = token %d %d/%d, want token %d 6/10", tok, done, total, g2.Token)
	}
	// The successor resumes from the checkpoint: its first beat
	// re-reports the resumed count, then advances.
	c.Beat(ctx, key, g2.Token, Beat{Seq: 1, Done: 6, Total: 10})
	c.Beat(ctx, key, g2.Token, Beat{Seq: 2, Done: 8, Total: 10})
	if _, done, _ := readDone(); done != 8 {
		t.Fatalf("post-resume done = %d, want 8", done)
	}
}
