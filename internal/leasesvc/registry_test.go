package leasesvc

import (
	"context"
	"errors"
	"net/http/httptest"
	"testing"
	"time"
)

func testPlacement(shard int) Placement {
	return Placement{Campaign: "deadbeefdeadbeef", Dir: "/tmp/shards", Shard: shard, Of: 4}
}

func TestRegisterWorkerMintsMonotonicTokensAndSupersedes(t *testing.T) {
	clk := newFakeClock()
	s := NewService(time.Second)
	s.SetNow(clk.now)
	ctx := context.Background()

	g1, err := s.RegisterWorker(ctx, "w1", "hostA:1", 2, 0)
	if err != nil {
		t.Fatalf("register: %v", err)
	}
	if g1.Token != 1 || g1.TTL != time.Second {
		t.Fatalf("grant = %+v, want token 1, ttl 1s", g1)
	}
	// Re-registration (a restarted worker) supersedes immediately — no
	// TTL wait — and fences the old token.
	g2, err := s.RegisterWorker(ctx, "w1", "hostA:2", 1, 0)
	if err != nil {
		t.Fatalf("re-register: %v", err)
	}
	if g2.Token != 2 {
		t.Fatalf("second token = %d, want 2", g2.Token)
	}
	if _, err := s.WorkerBeat(ctx, "w1", g1.Token, 1); !errors.Is(err, ErrFenced) {
		t.Fatalf("zombie beat = %v, want ErrFenced", err)
	}
	if _, err := s.WorkerBeat(ctx, "w1", g2.Token, 1); err != nil {
		t.Fatalf("successor beat: %v", err)
	}
	if _, err := s.WorkerBeat(ctx, "w1", 99, 1); !errors.Is(err, ErrUnknown) {
		t.Fatalf("never-minted token beat = %v, want ErrUnknown", err)
	}
	if _, err := s.WorkerBeat(ctx, "ghost", 1, 1); !errors.Is(err, ErrUnknown) {
		t.Fatalf("unknown worker beat = %v, want ErrUnknown", err)
	}
	if _, err := s.RegisterWorker(ctx, "", "x", 1, 0); err == nil {
		t.Fatal("empty worker id should be rejected")
	}
}

func TestWorkerBeatDeliversAssignmentsAndSeqDrivesLiveness(t *testing.T) {
	clk := newFakeClock()
	s := NewService(time.Second)
	s.SetNow(clk.now)
	ctx := context.Background()

	g, _ := s.RegisterWorker(ctx, "w1", "hostA:1", 1, 0)
	p0, p1 := testPlacement(0), testPlacement(1)
	if err := s.Assign("w1", p0); err != nil {
		t.Fatalf("assign: %v", err)
	}
	if err := s.Assign("w1", p0); err != nil {
		t.Fatalf("re-assign same placement should be a no-op, got %v", err)
	}
	if err := s.Assign("w1", p1); err != nil {
		t.Fatalf("assign: %v", err)
	}
	ps, err := s.WorkerBeat(ctx, "w1", g.Token, 1)
	if err != nil || len(ps) != 2 {
		t.Fatalf("beat = %v placements, err %v; want 2", ps, err)
	}
	s.Unassign("w1", p0)
	s.Unassign("w1", p0) // idempotent
	if ps, _ = s.WorkerBeat(ctx, "w1", g.Token, 2); len(ps) != 1 || ps[0] != p1 {
		t.Fatalf("post-unassign beat = %v, want [%v]", ps, p1)
	}

	// Frozen Seq ages the registration out on the service clock —
	// exactly the lease discipline.
	for i := 0; i < 3; i++ {
		clk.advance(500 * time.Millisecond)
		s.WorkerBeat(ctx, "w1", g.Token, 2)
	}
	ws := s.Workers()
	if len(ws) != 1 || ws[0].Alive {
		t.Fatalf("worker with frozen Seq should be !Alive: %+v", ws)
	}
	// Assigning to a dead-but-registered worker still works (its lease
	// fencing protects correctness), but to a deregistered one does not.
	if err := s.DeregisterWorker(ctx, "w1", g.Token); err != nil {
		t.Fatalf("deregister: %v", err)
	}
	if err := s.Assign("w1", p0); !errors.Is(err, ErrUnknown) {
		t.Fatalf("assign to deregistered worker = %v, want ErrUnknown", err)
	}
	if err := s.DeregisterWorker(ctx, "w1", g.Token-1+99); !errors.Is(err, ErrUnknown) {
		t.Fatalf("deregister with never-minted token = %v, want ErrUnknown", err)
	}
}

func TestWorkerRegistryOverHTTP(t *testing.T) {
	s := NewService(time.Second)
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	c := &Client{BaseURL: srv.URL, Retries: 1}
	ctx := context.Background()

	g, err := c.RegisterWorker(ctx, "w1", "hostA:1", 3, 500*time.Millisecond)
	if err != nil {
		t.Fatalf("register over HTTP: %v", err)
	}
	if g.Token != 1 || g.TTL != 500*time.Millisecond {
		t.Fatalf("grant = %+v", g)
	}
	p := testPlacement(2)
	if err := s.Assign("w1", p); err != nil {
		t.Fatal(err)
	}
	ps, err := c.WorkerBeat(ctx, "w1", g.Token, 1)
	if err != nil || len(ps) != 1 || ps[0] != p {
		t.Fatalf("beat = %v, err %v; want [%v]", ps, err, p)
	}
	views, err := c.WorkersList(ctx)
	if err != nil || len(views) != 1 {
		t.Fatalf("workers list = %v, err %v", views, err)
	}
	if v := views[0]; v.ID != "w1" || !v.Alive || v.Slots != 3 || len(v.Assignments) != 1 {
		t.Fatalf("worker view = %+v", v)
	}
	// The sentinel errors survive the wire for the registry too.
	if _, err := c.WorkerBeat(ctx, "w1", g.Token+1, 2); !errors.Is(err, ErrUnknown) {
		t.Fatalf("never-minted token over HTTP = %v, want ErrUnknown", err)
	}
	g2, _ := c.RegisterWorker(ctx, "w1", "hostA:2", 1, 0)
	if _, err := c.WorkerBeat(ctx, "w1", g.Token, 2); !errors.Is(err, ErrFenced) {
		t.Fatalf("fenced beat over HTTP = %v, want ErrFenced", err)
	}
	if err := c.DeregisterWorker(ctx, "w1", g2.Token); err != nil {
		t.Fatalf("deregister over HTTP: %v", err)
	}
}

func TestStatsCountersTrackChurn(t *testing.T) {
	clk := newFakeClock()
	s := NewService(time.Second)
	s.SetNow(clk.now)
	ctx := context.Background()
	key := testKey()

	g1, _ := s.Acquire(ctx, key, "a:1", 0)
	s.Beat(ctx, key, g1.Token, Beat{Seq: 1, Done: 1, Total: 4})
	clk.advance(2 * time.Second) // expire
	g2, _ := s.Acquire(ctx, key, "b:2", 0)
	if err := s.Beat(ctx, key, g1.Token, Beat{Seq: 2}); !errors.Is(err, ErrFenced) {
		t.Fatalf("expected fenced beat, got %v", err)
	}
	s.Beat(ctx, key, g2.Token, Beat{Seq: 1, Done: 2, Total: 4})
	gw, _ := s.RegisterWorker(ctx, "w1", "hostA:1", 1, 0)
	s.RegisterWorker(ctx, "w2", "hostB:1", 1, 0)
	s.WorkerBeat(ctx, "w1", gw.Token, 1)

	st := s.StatsSnapshot()
	want := Stats{LeaseAcquires: 2, LeaseBeats: 2, FencedRejections: 1, WorkerBeats: 1, WorkersRegistered: 2}
	if st != want {
		t.Fatalf("stats = %+v, want %+v", st, want)
	}
	// The gauge decays with liveness: freeze both workers past TTL.
	clk.advance(2 * time.Second)
	if st := s.StatsSnapshot(); st.WorkersRegistered != 0 {
		t.Fatalf("workers gauge after expiry = %d, want 0", st.WorkersRegistered)
	}
}

// TestWorkerRegistryGC: dead registrations — deregistered, or with an
// expired heartbeat — are swept once they have been dead for
// staleStateFactor TTLs, so a long-lived service does not accumulate
// one corpse per worker restart (the default worker ID is host:pid).
// Recently dead entries stay listed for diagnostics, and live workers
// are never swept regardless of age.
func TestWorkerRegistryGC(t *testing.T) {
	clk := newFakeClock()
	s := NewService(time.Second)
	s.SetNow(clk.now)
	ctx := context.Background()

	gDereg, _ := s.RegisterWorker(ctx, "deregistered", "hostA:1", 1, 0)
	s.DeregisterWorker(ctx, "deregistered", gDereg.Token)
	s.RegisterWorker(ctx, "vanished", "hostB:1", 1, 0)

	clk.advance(5 * time.Second)
	if n := len(s.Workers()); n != 2 {
		t.Fatalf("recently dead workers swept early: %d listed, want 2", n)
	}

	gLive, _ := s.RegisterWorker(ctx, "alive", "hostC:1", 1, 0)
	for seq := uint64(1); seq <= 40; seq++ {
		clk.advance(500 * time.Millisecond)
		if _, err := s.WorkerBeat(ctx, "alive", gLive.Token, seq); err != nil {
			t.Fatalf("beat %d: %v", seq, err)
		}
	}
	ws := s.Workers()
	if len(ws) != 1 || ws[0].ID != "alive" || !ws[0].Alive {
		t.Fatalf("after the grace period: %+v, want only the live worker", ws)
	}

	// A zombie of a swept registration gets ErrUnknown — the same
	// signal as a registry restart — and simply re-registers.
	if _, err := s.WorkerBeat(ctx, "vanished", 1, 99); !errors.Is(err, ErrUnknown) {
		t.Fatalf("swept zombie beat = %v, want ErrUnknown", err)
	}
	if _, err := s.RegisterWorker(ctx, "vanished", "hostB:2", 1, 0); err != nil {
		t.Fatalf("re-register after sweep: %v", err)
	}
}
