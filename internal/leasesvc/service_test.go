package leasesvc

import (
	"context"
	"errors"
	"testing"
	"time"
)

// fakeClock is the test clock: advance it, never sleep.
type fakeClock struct{ t time.Time }

func newFakeClock() *fakeClock { return &fakeClock{t: time.Unix(1_700_000_000, 0)} }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func testKey() Key { return Key{Campaign: "deadbeefdeadbeef", Shard: 1, Of: 4} }

func TestAcquireMintsMonotonicTokens(t *testing.T) {
	clk := newFakeClock()
	s := NewService(time.Second)
	s.SetNow(clk.now)
	ctx := context.Background()
	key := testKey()

	g1, err := s.Acquire(ctx, key, "a:1", 0)
	if err != nil {
		t.Fatalf("first acquire: %v", err)
	}
	if g1.Token != 1 {
		t.Fatalf("first token = %d, want 1", g1.Token)
	}
	if g1.TTL != time.Second {
		t.Fatalf("default TTL = %v, want 1s", g1.TTL)
	}
	if err := s.Release(ctx, key, g1.Token); err != nil {
		t.Fatalf("release: %v", err)
	}
	g2, err := s.Acquire(ctx, key, "b:2", 0)
	if err != nil {
		t.Fatalf("second acquire: %v", err)
	}
	if g2.Token != 2 {
		t.Fatalf("second token = %d, want 2 (monotonic)", g2.Token)
	}
}

func TestAcquireRefusedWhileHeldFresh(t *testing.T) {
	clk := newFakeClock()
	s := NewService(time.Second)
	s.SetNow(clk.now)
	ctx := context.Background()
	key := testKey()

	if _, err := s.Acquire(ctx, key, "a:1", 0); err != nil {
		t.Fatalf("acquire: %v", err)
	}
	_, err := s.Acquire(ctx, key, "b:2", 0)
	if !errors.Is(err, ErrHeld) {
		t.Fatalf("second acquire = %v, want ErrHeld", err)
	}
	var held *HeldError
	if !errors.As(err, &held) || held.Owner != "a:1" {
		t.Fatalf("HeldError owner = %+v, want a:1", err)
	}
}

// The core of satellite 1, service side: a lease whose Seq keeps
// advancing never expires no matter how much wall clock passes
// between beats being *sent* (the worker's clock is irrelevant);
// a lease whose Seq freezes expires after TTL even if beats with the
// same Seq keep arriving.
func TestExpiryJudgedBySeqMonotonicity(t *testing.T) {
	clk := newFakeClock()
	s := NewService(time.Second)
	s.SetNow(clk.now)
	ctx := context.Background()
	key := testKey()

	g, err := s.Acquire(ctx, key, "a:1", 0)
	if err != nil {
		t.Fatalf("acquire: %v", err)
	}
	// Seq advances every 900ms: always fresh.
	for seq := uint64(1); seq <= 5; seq++ {
		clk.advance(900 * time.Millisecond)
		if err := s.Beat(ctx, key, g.Token, Beat{Seq: seq}); err != nil {
			t.Fatalf("beat seq %d: %v", seq, err)
		}
		if _, err := s.Acquire(ctx, key, "b:2", 0); !errors.Is(err, ErrHeld) {
			t.Fatalf("acquire while fresh = %v, want ErrHeld", err)
		}
	}
	// Frozen Seq replayed: the staleness clock must NOT advance.
	for i := 0; i < 3; i++ {
		clk.advance(500 * time.Millisecond)
		if err := s.Beat(ctx, key, g.Token, Beat{Seq: 5}); err != nil {
			t.Fatalf("replayed beat: %v", err)
		}
	}
	g2, err := s.Acquire(ctx, key, "b:2", 0)
	if err != nil {
		t.Fatalf("acquire after frozen-Seq expiry: %v", err)
	}
	if g2.Token != g.Token+1 {
		t.Fatalf("successor token = %d, want %d", g2.Token, g.Token+1)
	}
}

func TestBeatFencedAfterSupersession(t *testing.T) {
	clk := newFakeClock()
	s := NewService(time.Second)
	s.SetNow(clk.now)
	ctx := context.Background()
	key := testKey()

	g1, _ := s.Acquire(ctx, key, "a:1", 0)
	clk.advance(2 * time.Second) // a:1 expires
	g2, err := s.Acquire(ctx, key, "b:2", 0)
	if err != nil {
		t.Fatalf("successor acquire: %v", err)
	}
	// The zombie's beat is fenced; the successor's is accepted.
	if err := s.Beat(ctx, key, g1.Token, Beat{Seq: 99}); !errors.Is(err, ErrFenced) {
		t.Fatalf("zombie beat = %v, want ErrFenced", err)
	}
	if err := s.Beat(ctx, key, g2.Token, Beat{Seq: 1}); err != nil {
		t.Fatalf("successor beat: %v", err)
	}
	// The zombie's release must not free the successor's lease.
	if err := s.Release(ctx, key, g1.Token); err != nil {
		t.Fatalf("stale release should be a no-op, got %v", err)
	}
	if _, err := s.Acquire(ctx, key, "c:3", 0); !errors.Is(err, ErrHeld) {
		t.Fatalf("acquire after stale release = %v, want ErrHeld (successor still owns it)", err)
	}
}

func TestBeatRevivesExpiredButUnsupersededLease(t *testing.T) {
	clk := newFakeClock()
	s := NewService(time.Second)
	s.SetNow(clk.now)
	ctx := context.Background()
	key := testKey()

	g, _ := s.Acquire(ctx, key, "a:1", 0)
	clk.advance(5 * time.Second) // expired, but nobody took over
	if err := s.Beat(ctx, key, g.Token, Beat{Seq: 1}); err != nil {
		t.Fatalf("beat after silent gap: %v", err)
	}
	if _, err := s.Acquire(ctx, key, "b:2", 0); !errors.Is(err, ErrHeld) {
		t.Fatalf("acquire after revival = %v, want ErrHeld", err)
	}
}

func TestUnknownAndInvalid(t *testing.T) {
	s := NewService(time.Second)
	ctx := context.Background()
	key := testKey()
	if err := s.Beat(ctx, key, 1, Beat{}); !errors.Is(err, ErrUnknown) {
		t.Fatalf("beat on unknown lease = %v, want ErrUnknown", err)
	}
	if err := s.Release(ctx, key, 1); !errors.Is(err, ErrUnknown) {
		t.Fatalf("release on unknown lease = %v, want ErrUnknown", err)
	}
	// A beat with a token the service never minted is unknown, not
	// fenced — fenced means superseded, and nothing superseded it.
	s.Acquire(ctx, key, "a:1", 0)
	if err := s.Beat(ctx, key, 99, Beat{}); !errors.Is(err, ErrUnknown) {
		t.Fatalf("beat with never-minted token = %v, want ErrUnknown", err)
	}
	bad := Key{Campaign: "", Shard: 0, Of: 1}
	if _, err := s.Acquire(ctx, bad, "x", 0); err == nil {
		t.Fatal("acquire with empty campaign hash should fail")
	}
	bad = Key{Campaign: "h", Shard: 4, Of: 4}
	if _, err := s.Acquire(ctx, bad, "x", 0); err == nil {
		t.Fatal("acquire with shard >= of should fail")
	}
}

func TestViewReportsProgressAndExpiry(t *testing.T) {
	clk := newFakeClock()
	s := NewService(time.Second)
	s.SetNow(clk.now)
	ctx := context.Background()
	key := testKey()

	if _, ok, _ := s.View(ctx, key); ok {
		t.Fatal("view of unacquired lease should report !ok")
	}
	g, _ := s.Acquire(ctx, key, "a:1", 0)
	s.Beat(ctx, key, g.Token, Beat{Seq: 3, Done: 2, Total: 7})
	v, ok, err := s.View(ctx, key)
	if err != nil || !ok {
		t.Fatalf("view: ok=%v err=%v", ok, err)
	}
	if !v.Held || v.Token != g.Token || v.Seq != 3 || v.Done != 2 || v.Total != 7 || v.Owner != "a:1" {
		t.Fatalf("view = %+v", v)
	}
	clk.advance(3 * time.Second)
	v, _, _ = s.View(ctx, key)
	if v.Held {
		t.Fatalf("view after expiry still Held: %+v", v)
	}
	if v.SinceAdvance != 3*time.Second {
		t.Fatalf("SinceAdvance = %v, want 3s", v.SinceAdvance)
	}
}

// The scheduler's input signal must survive handovers: done/total
// reported by a predecessor stays visible through a fencing-token
// change, and a successor resuming from the checkpoint can only move
// it forward. A reset here would make every reassignment look like
// lost work and send the placement scheduler chasing phantoms.
func TestProgressSurvivesFencingHandover(t *testing.T) {
	clk := newFakeClock()
	s := NewService(time.Second)
	s.SetNow(clk.now)
	ctx := context.Background()
	key := testKey()

	g1, _ := s.Acquire(ctx, key, "a:1", 0)
	s.Beat(ctx, key, g1.Token, Beat{Seq: 3, Done: 5, Total: 9})
	clk.advance(2 * time.Second) // a:1 dies silently; lease ages out

	g2, err := s.Acquire(ctx, key, "b:2", 0)
	if err != nil {
		t.Fatalf("successor acquire: %v", err)
	}
	if g2.Token != g1.Token+1 {
		t.Fatalf("successor token = %d, want %d", g2.Token, g1.Token+1)
	}
	// Between the handover and the successor's first beat, the view
	// still carries the predecessor's progress under the new token.
	v, ok, _ := s.View(ctx, key)
	if !ok || v.Token != g2.Token || v.Done != 5 || v.Total != 9 {
		t.Fatalf("view across handover = %+v, want done 5/9 under token %d", v, g2.Token)
	}
	// A stale beat (raced from before the handover, or a replayed
	// lower count) must not drag progress backwards...
	s.Beat(ctx, key, g2.Token, Beat{Seq: 1, Done: 3, Total: 9})
	if v, _, _ := s.View(ctx, key); v.Done != 5 {
		t.Fatalf("done regressed to %d after a lower beat, want 5", v.Done)
	}
	// ...while the successor's real progress advances it.
	s.Beat(ctx, key, g2.Token, Beat{Seq: 2, Done: 7, Total: 9})
	if v, _, _ := s.View(ctx, key); v.Done != 7 || v.Total != 9 {
		t.Fatalf("view after successor progress = %+v, want 7/9", v)
	}
}

// TestAcquireResetsStaleProgress: done/total survive a handover (see
// above) but not a fresh run against a long-lived service — a lease
// left unheld far past its TTL acquires with zero progress, so a
// re-run of the same spec in a fresh shard directory does not start
// near-complete. The fencing token is never reset: on-disk fence
// files depend on its monotonicity.
func TestAcquireResetsStaleProgress(t *testing.T) {
	clk := newFakeClock()
	s := NewService(time.Second)
	s.SetNow(clk.now)
	ctx := context.Background()
	key := testKey()

	g1, _ := s.Acquire(ctx, key, "a:1", 0)
	s.Beat(ctx, key, g1.Token, Beat{Seq: 3, Done: 5, Total: 9})
	s.Release(ctx, key, g1.Token)

	clk.advance(time.Hour)
	g2, err := s.Acquire(ctx, key, "b:2", 0)
	if err != nil {
		t.Fatalf("fresh-run acquire: %v", err)
	}
	if g2.Token != g1.Token+1 {
		t.Fatalf("token = %d, want %d (tokens stay monotone)", g2.Token, g1.Token+1)
	}
	v, ok, _ := s.View(ctx, key)
	if !ok || v.Done != 0 || v.Total != 0 {
		t.Fatalf("stale progress leaked into a fresh acquisition: %+v, want 0/0", v)
	}
	// Just past TTL is a handover, not a fresh run: progress survives.
	s.Beat(ctx, key, g2.Token, Beat{Seq: 2, Done: 4, Total: 9})
	clk.advance(2 * time.Second)
	if _, err := s.Acquire(ctx, key, "c:3", 0); err != nil {
		t.Fatalf("successor acquire: %v", err)
	}
	if v, _, _ := s.View(ctx, key); v.Done != 4 || v.Total != 9 {
		t.Fatalf("handover lost progress: %+v, want 4/9", v)
	}
}
