package leasesvc

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"time"

	"rowhammer/internal/campaign"
)

// Wire schema (documented in EXPERIMENTS.md):
//
//	POST /v1/leases/acquire  {campaign, shard, of, owner, ttl_ms}
//	    200 {token, ttl_ms} | 409 {error, held:true, owner, seq} | 400
//	POST /v1/leases/beat     {campaign, shard, of, token, seq, done, total}
//	    200 {} | 409 {error, fenced:true} | 404 | 400
//	POST /v1/leases/release  {campaign, shard, of, token}
//	    200 {} | 404 | 400
//	GET  /v1/leases[?campaign=H]
//	    200 [View...]
//
// TTLs travel as integer milliseconds; tokens and sequence numbers as
// plain integers. 409 is the protocol's only "semantic no" — held on
// acquire, fenced on beat — and is never retried by the client; 5xx
// and transport errors are retried with jittered exponential backoff.

// maxBodyBytes bounds every lease request body. Lease payloads are a
// few hundred bytes; anything larger is hostile or broken.
const maxBodyBytes = 64 << 10

type acquireReq struct {
	Campaign  string `json:"campaign"`
	Shard     int    `json:"shard"`
	Of        int    `json:"of"`
	Owner     string `json:"owner"`
	TTLMillis int64  `json:"ttl_ms"`
}

type acquireResp struct {
	Token     uint64 `json:"token"`
	TTLMillis int64  `json:"ttl_ms"`
}

type beatReq struct {
	Campaign string `json:"campaign"`
	Shard    int    `json:"shard"`
	Of       int    `json:"of"`
	Token    uint64 `json:"token"`
	Seq      uint64 `json:"seq"`
	Done     int    `json:"done"`
	Total    int    `json:"total"`
}

type releaseReq struct {
	Campaign string `json:"campaign"`
	Shard    int    `json:"shard"`
	Of       int    `json:"of"`
	Token    uint64 `json:"token"`
}

// errResp is the error body; Held/Fenced let the client reconstruct
// the sentinel error without string matching.
type errResp struct {
	Error  string `json:"error"`
	Held   bool   `json:"held,omitempty"`
	Fenced bool   `json:"fenced,omitempty"`
	Owner  string `json:"owner,omitempty"`
	Seq    uint64 `json:"seq,omitempty"`
}

// wireView is View with durations flattened to milliseconds, so the
// wire schema is host-language neutral.
type wireView struct {
	Campaign       string `json:"campaign"`
	Shard          int    `json:"shard"`
	Of             int    `json:"of"`
	Held           bool   `json:"held"`
	Token          uint64 `json:"token"`
	Owner          string `json:"owner,omitempty"`
	Seq            uint64 `json:"seq"`
	Done           int    `json:"done"`
	Total          int    `json:"total"`
	SinceAdvanceMS int64  `json:"since_advance_ms"`
	TTLMillis      int64  `json:"ttl_ms"`
}

func toWire(v View) wireView {
	return wireView{
		Campaign: v.Campaign, Shard: v.Shard, Of: v.Of,
		Held: v.Held, Token: v.Token, Owner: v.Owner,
		Seq: v.Seq, Done: v.Done, Total: v.Total,
		SinceAdvanceMS: v.SinceAdvance.Milliseconds(),
		TTLMillis:      v.TTL.Milliseconds(),
	}
}

func fromWire(w wireView) View {
	return View{
		Key:  Key{Campaign: w.Campaign, Shard: w.Shard, Of: w.Of},
		Held: w.Held, Token: w.Token, Owner: w.Owner,
		Seq: w.Seq, Done: w.Done, Total: w.Total,
		SinceAdvance: time.Duration(w.SinceAdvanceMS) * time.Millisecond,
		TTL:          time.Duration(w.TTLMillis) * time.Millisecond,
	}
}

// Register mounts the lease API on mux. The routes are disjoint from
// internal/server's campaign/artifact routes, so rhserved mounts both
// on one mux and one listener.
func (s *Service) Register(mux *http.ServeMux) {
	mux.HandleFunc("POST /v1/leases/acquire", s.handleAcquire)
	mux.HandleFunc("POST /v1/leases/beat", s.handleBeat)
	mux.HandleFunc("POST /v1/leases/release", s.handleRelease)
	mux.HandleFunc("GET /v1/leases", s.handleList)
	s.registerRegistry(mux)
}

// Handler returns a standalone handler serving only the lease API —
// what `rhfleet -lease-listen` self-hosts.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	s.Register(mux)
	return mux
}

// decodeBody decodes a bounded JSON request body. A false return
// means the response has been written.
func decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var tooBig *http.MaxBytesError
		code := http.StatusBadRequest
		if errors.As(err, &tooBig) {
			code = http.StatusRequestEntityTooLarge
		}
		writeLeaseErr(w, code, fmt.Errorf("decoding request: %w", err))
		return false
	}
	return true
}

func writeLeaseJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func writeLeaseErr(w http.ResponseWriter, code int, err error) {
	resp := errResp{Error: err.Error()}
	var held *HeldError
	switch {
	case errors.As(err, &held):
		resp.Held, resp.Owner, resp.Seq = true, held.Owner, held.Seq
	case errors.Is(err, ErrHeld):
		resp.Held = true
	case errors.Is(err, ErrFenced):
		resp.Fenced = true
	}
	writeLeaseJSON(w, code, resp)
}

func (s *Service) handleAcquire(w http.ResponseWriter, r *http.Request) {
	var req acquireReq
	if !decodeBody(w, r, &req) {
		return
	}
	key := Key{Campaign: req.Campaign, Shard: req.Shard, Of: req.Of}
	grant, err := s.Acquire(r.Context(), key, req.Owner, time.Duration(req.TTLMillis)*time.Millisecond)
	switch {
	case errors.Is(err, ErrHeld):
		writeLeaseErr(w, http.StatusConflict, err)
	case err != nil:
		writeLeaseErr(w, http.StatusBadRequest, err)
	default:
		writeLeaseJSON(w, http.StatusOK, acquireResp{Token: grant.Token, TTLMillis: grant.TTL.Milliseconds()})
	}
}

func (s *Service) handleBeat(w http.ResponseWriter, r *http.Request) {
	var req beatReq
	if !decodeBody(w, r, &req) {
		return
	}
	key := Key{Campaign: req.Campaign, Shard: req.Shard, Of: req.Of}
	err := s.Beat(r.Context(), key, req.Token, Beat{Seq: req.Seq, Done: req.Done, Total: req.Total})
	switch {
	case errors.Is(err, ErrFenced):
		writeLeaseErr(w, http.StatusConflict, err)
	case errors.Is(err, ErrUnknown):
		writeLeaseErr(w, http.StatusNotFound, err)
	case err != nil:
		writeLeaseErr(w, http.StatusBadRequest, err)
	default:
		writeLeaseJSON(w, http.StatusOK, struct{}{})
	}
}

func (s *Service) handleRelease(w http.ResponseWriter, r *http.Request) {
	var req releaseReq
	if !decodeBody(w, r, &req) {
		return
	}
	key := Key{Campaign: req.Campaign, Shard: req.Shard, Of: req.Of}
	err := s.Release(r.Context(), key, req.Token)
	switch {
	case errors.Is(err, ErrUnknown):
		writeLeaseErr(w, http.StatusNotFound, err)
	case err != nil:
		writeLeaseErr(w, http.StatusBadRequest, err)
	default:
		writeLeaseJSON(w, http.StatusOK, struct{}{})
	}
}

func (s *Service) handleList(w http.ResponseWriter, r *http.Request) {
	views := s.List()
	if campaignHash := r.URL.Query().Get("campaign"); campaignHash != "" {
		filtered := views[:0]
		for _, v := range views {
			if v.Campaign == campaignHash {
				filtered = append(filtered, v)
			}
		}
		views = filtered
	}
	sort.Slice(views, func(i, j int) bool {
		if views[i].Campaign != views[j].Campaign {
			return views[i].Campaign < views[j].Campaign
		}
		return views[i].Shard < views[j].Shard
	})
	out := make([]wireView, len(views))
	for i, v := range views {
		out[i] = toWire(v)
	}
	writeLeaseJSON(w, http.StatusOK, out)
}

// Client is the worker-side lease API over HTTP, hardened for real
// networks: every call carries a per-call timeout, transport errors
// and 5xx responses are retried with the campaign engine's jittered
// exponential backoff, and 4xx responses are mapped back to the
// sentinel errors and never retried — a "held" or "fenced" answer is
// the protocol speaking, not the network failing.
type Client struct {
	// BaseURL is the service root, e.g. "http://10.0.0.1:8077".
	BaseURL string
	// HTTP is the underlying client; http.DefaultClient when nil. The
	// netchaos harness injects faults by swapping its Transport.
	HTTP *http.Client
	// Timeout bounds one HTTP attempt (default 5s).
	Timeout time.Duration
	// Retries is how many times a retryable failure is retried
	// (default 4 — five attempts total).
	Retries int
	// Backoff is the base retry backoff (default 100ms); the jitter is
	// derived deterministically from (Seed, call key, attempt) via
	// campaign.Backoff.
	Backoff time.Duration
	// Seed keys the backoff jitter (0 is a valid seed).
	Seed uint64
}

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

func (c *Client) timeout() time.Duration {
	if c.Timeout > 0 {
		return c.Timeout
	}
	return 5 * time.Second
}

func (c *Client) retries() int {
	if c.Retries > 0 {
		return c.Retries
	}
	return 4
}

func (c *Client) backoffBase() time.Duration {
	if c.Backoff > 0 {
		return c.Backoff
	}
	return 100 * time.Millisecond
}

// retryableStatus reports a response worth retrying: the server
// failed, not the protocol.
func retryableStatus(code int) bool { return code >= 500 }

// call POSTs one bounded, retried request and decodes the response
// into out (when non-nil). Protocol refusals (4xx) surface as the
// reconstructed sentinel errors.
func (c *Client) call(ctx context.Context, path, key string, req, out any) error {
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	var lastErr error
	for attempt := 1; attempt <= c.retries()+1; attempt++ {
		if attempt > 1 {
			delay := campaign.Backoff(c.backoffBase(), c.Seed, key, attempt-1)
			t := time.NewTimer(delay)
			select {
			case <-t.C:
			case <-ctx.Done():
				t.Stop()
				return ctx.Err()
			}
		}
		err := c.once(ctx, path, body, out)
		if err == nil {
			return nil
		}
		// Protocol answers are final; only infrastructure failures
		// retry.
		if errors.Is(err, ErrHeld) || errors.Is(err, ErrFenced) || errors.Is(err, ErrUnknown) || errors.Is(err, errBadRequest) {
			return err
		}
		lastErr = err
		if ctx.Err() != nil {
			return fmt.Errorf("%w (last attempt: %v)", ctx.Err(), lastErr)
		}
	}
	return fmt.Errorf("leasesvc: %s failed after %d attempt(s): %w", path, c.retries()+1, lastErr)
}

// errBadRequest marks a 4xx that carries no protocol sentinel — the
// request itself is malformed and retrying cannot help.
var errBadRequest = errors.New("leasesvc: request rejected")

// once performs a single timed attempt.
func (c *Client) once(ctx context.Context, path string, body []byte, out any) error {
	callCtx, cancel := context.WithTimeout(ctx, c.timeout())
	defer cancel()
	req, err := http.NewRequestWithContext(callCtx, http.MethodPost, c.BaseURL+path, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, maxBodyBytes))
	if err != nil {
		return err
	}
	if resp.StatusCode == http.StatusOK {
		if out == nil {
			return nil
		}
		return json.Unmarshal(raw, out)
	}
	if retryableStatus(resp.StatusCode) {
		return fmt.Errorf("leasesvc: %s: HTTP %d: %s", path, resp.StatusCode, firstLine(raw))
	}
	var er errResp
	_ = json.Unmarshal(raw, &er)
	msg := er.Error
	if msg == "" {
		msg = firstLine(raw)
	}
	switch {
	case er.Held:
		return fmt.Errorf("%w: %s (owner %s, seq %d)", ErrHeld, msg, er.Owner, er.Seq)
	case er.Fenced:
		return fmt.Errorf("%w: %s", ErrFenced, msg)
	case resp.StatusCode == http.StatusNotFound:
		return fmt.Errorf("%w: %s", ErrUnknown, msg)
	default:
		return fmt.Errorf("%w: HTTP %d: %s", errBadRequest, resp.StatusCode, msg)
	}
}

func firstLine(b []byte) string {
	if i := bytes.IndexByte(b, '\n'); i >= 0 {
		b = b[:i]
	}
	const max = 200
	if len(b) > max {
		b = b[:max]
	}
	return string(b)
}

// Acquire implements API over HTTP.
func (c *Client) Acquire(ctx context.Context, key Key, owner string, ttl time.Duration) (Grant, error) {
	var resp acquireResp
	err := c.call(ctx, "/v1/leases/acquire", "acquire/"+key.String(), acquireReq{
		Campaign: key.Campaign, Shard: key.Shard, Of: key.Of,
		Owner: owner, TTLMillis: ttl.Milliseconds(),
	}, &resp)
	if err != nil {
		return Grant{}, err
	}
	return Grant{Token: resp.Token, TTL: time.Duration(resp.TTLMillis) * time.Millisecond}, nil
}

// Beat implements API over HTTP.
func (c *Client) Beat(ctx context.Context, key Key, token uint64, b Beat) error {
	return c.call(ctx, "/v1/leases/beat", "beat/"+key.String(), beatReq{
		Campaign: key.Campaign, Shard: key.Shard, Of: key.Of,
		Token: token, Seq: b.Seq, Done: b.Done, Total: b.Total,
	}, nil)
}

// Release implements API over HTTP.
func (c *Client) Release(ctx context.Context, key Key, token uint64) error {
	return c.call(ctx, "/v1/leases/release", "release/"+key.String(), releaseReq{
		Campaign: key.Campaign, Shard: key.Shard, Of: key.Of, Token: token,
	}, nil)
}

// View implements API over HTTP via the list endpoint.
func (c *Client) View(ctx context.Context, key Key) (View, bool, error) {
	callCtx, cancel := context.WithTimeout(ctx, c.timeout())
	defer cancel()
	req, err := http.NewRequestWithContext(callCtx, http.MethodGet,
		c.BaseURL+"/v1/leases?campaign="+key.Campaign, nil)
	if err != nil {
		return View{}, false, err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return View{}, false, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return View{}, false, fmt.Errorf("leasesvc: list: HTTP %d", resp.StatusCode)
	}
	var views []wireView
	if err := json.NewDecoder(resp.Body).Decode(&views); err != nil {
		return View{}, false, err
	}
	for _, wv := range views {
		if wv.Campaign == key.Campaign && wv.Shard == key.Shard && wv.Of == key.Of {
			return fromWire(wv), true, nil
		}
	}
	return View{Key: key}, false, nil
}

// Both halves of the wire implement the same protocol surface.
var (
	_ API = (*Service)(nil)
	_ API = (*Client)(nil)
)

// DefaultOwner labels this process for lease diagnostics.
func DefaultOwner() string {
	host, err := os.Hostname()
	if err != nil {
		host = "unknown"
	}
	return fmt.Sprintf("%s:%d", host, os.Getpid())
}
