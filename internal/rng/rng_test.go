package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestHash64Deterministic(t *testing.T) {
	a := Hash64(1, 2, 3)
	b := Hash64(1, 2, 3)
	if a != b {
		t.Fatalf("Hash64 not deterministic: %x != %x", a, b)
	}
}

func TestHash64DistinguishesInputs(t *testing.T) {
	seen := make(map[uint64]bool)
	for i := uint64(0); i < 1000; i++ {
		h := Hash64(i, 42)
		if seen[h] {
			t.Fatalf("collision at i=%d", i)
		}
		seen[h] = true
	}
}

func TestHash64OrderSensitive(t *testing.T) {
	if Hash64(1, 2) == Hash64(2, 1) {
		t.Fatal("Hash64 should be order sensitive")
	}
}

func TestHash64AvalancheProperty(t *testing.T) {
	// Flipping one input bit should flip roughly half the output bits.
	base := Hash64(12345)
	totalBits := 0
	trials := 0
	for bit := uint(0); bit < 64; bit++ {
		h := Hash64(12345 ^ (1 << bit))
		diff := h ^ base
		n := 0
		for diff != 0 {
			n += int(diff & 1)
			diff >>= 1
		}
		totalBits += n
		trials++
	}
	avg := float64(totalBits) / float64(trials)
	if avg < 24 || avg > 40 {
		t.Fatalf("poor avalanche: avg %0.1f differing bits, want ~32", avg)
	}
}

func TestUniform01Bounds(t *testing.T) {
	if err := quick.Check(func(h uint64) bool {
		u := Uniform01(h)
		return u >= 0 && u < 1
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUniformRangeBounds(t *testing.T) {
	if err := quick.Check(func(h uint64) bool {
		u := UniformRange(h, -5, 17)
		return u >= -5 && u < 17
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStreamDeterministic(t *testing.T) {
	a := NewStream(99)
	b := NewStream(99)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at draw %d", i)
		}
	}
}

func TestStreamReseed(t *testing.T) {
	s := NewStream(7)
	first := s.Uint64()
	s.Uint64()
	s.Reseed(7)
	if got := s.Uint64(); got != first {
		t.Fatalf("Reseed did not reset stream: %x != %x", got, first)
	}
}

func TestStreamDifferentSeedsDiffer(t *testing.T) {
	a := NewStream(1)
	b := NewStream(2)
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical draws", same)
	}
}

func TestStreamFloat64Mean(t *testing.T) {
	s := NewStream(3)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		sum += s.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("uniform mean = %v, want ~0.5", mean)
	}
}

func TestStreamIntnBounds(t *testing.T) {
	s := NewStream(4)
	counts := make([]int, 10)
	for i := 0; i < 10000; i++ {
		v := s.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn out of range: %d", v)
		}
		counts[v]++
	}
	for v, c := range counts {
		if c < 700 || c > 1300 {
			t.Fatalf("Intn badly skewed: bucket %d has %d/10000", v, c)
		}
	}
}

func TestStreamIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for Intn(0)")
		}
	}()
	NewStream(1).Intn(0)
}

func TestStreamNormalMoments(t *testing.T) {
	s := NewStream(5)
	const n = 200000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		x := s.Normal()
		sum += x
		sumSq += x * x
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Fatalf("normal variance = %v, want ~1", variance)
	}
}

func TestLogNormalPositive(t *testing.T) {
	s := NewStream(6)
	for i := 0; i < 1000; i++ {
		if v := s.LogNormal(0, 0.5); v <= 0 {
			t.Fatalf("lognormal draw %v <= 0", v)
		}
	}
}

func TestTruncNormalBounds(t *testing.T) {
	s := NewStream(8)
	for i := 0; i < 2000; i++ {
		v := s.TruncNormal(0, 1, -0.5, 0.5)
		if v < -0.5 || v > 0.5 {
			t.Fatalf("truncated draw %v outside [-0.5, 0.5]", v)
		}
	}
}

func TestTruncNormalDegenerateWindowClamps(t *testing.T) {
	s := NewStream(9)
	// Window far in the tail: rejection will fail; result must clamp.
	v := s.TruncNormal(0, 0.001, 10, 11)
	if v < 10 || v > 11 {
		t.Fatalf("degenerate window draw %v outside [10, 11]", v)
	}
}

func TestBernoulliProbability(t *testing.T) {
	s := NewStream(10)
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if s.Bernoulli(0.25) {
			hits++
		}
	}
	p := float64(hits) / n
	if math.Abs(p-0.25) > 0.01 {
		t.Fatalf("Bernoulli(0.25) hit rate %v", p)
	}
}

func TestPermIsPermutation(t *testing.T) {
	s := NewStream(11)
	dst := make([]int, 50)
	s.Perm(dst)
	seen := make([]bool, 50)
	for _, v := range dst {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("not a permutation: %v", dst)
		}
		seen[v] = true
	}
}

func TestNormalFromHashMoments(t *testing.T) {
	sum, sumSq := 0.0, 0.0
	const n = 100000
	for i := uint64(0); i < n; i++ {
		x := NormalFromHash(Hash64(i, 1), Hash64(i, 2))
		sum += x
		sumSq += x * x
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 || math.Abs(variance-1) > 0.05 {
		t.Fatalf("hash-normal mean=%v var=%v", mean, variance)
	}
}

func TestLogNormalFromHashMedian(t *testing.T) {
	// Median of exp(N(mu, sigma)) is exp(mu).
	var vals []float64
	const n = 20001
	for i := uint64(0); i < n; i++ {
		vals = append(vals, LogNormalFromHash(Hash64(i, 3), Hash64(i, 4), 2, 0.7))
	}
	// Median via counting below exp(2).
	below := 0
	for _, v := range vals {
		if v < math.Exp(2) {
			below++
		}
	}
	frac := float64(below) / n
	if math.Abs(frac-0.5) > 0.02 {
		t.Fatalf("lognormal median fraction = %v, want ~0.5", frac)
	}
}

func TestMixNotIdentity(t *testing.T) {
	if Mix(0, 0) == 0 {
		t.Fatal("Mix(0,0) should not be 0")
	}
	if Mix(1, 2) == Mix(2, 1) {
		t.Fatal("Mix should not be commutative")
	}
}

func BenchmarkHash64Tuple5(b *testing.B) {
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink ^= Hash64(uint64(i), 1, 2, 3, 4)
	}
	_ = sink
}

func BenchmarkStreamUint64(b *testing.B) {
	s := NewStream(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink ^= s.Uint64()
	}
	_ = sink
}

func TestHashStringStableAndDistinct(t *testing.T) {
	a := HashString("hcfirst/A/0")
	if a != HashString("hcfirst/A/0") {
		t.Fatal("HashString not deterministic")
	}
	// Distinguishes strings that only differ past the first 8-byte
	// chunk, and length-prefix-related collisions.
	cases := []string{"", "a", "hcfirst/A/1", "hcfirst/B/0", "hcfirst/A/00", "hcfirst/A/0\x00"}
	seen := map[uint64]string{a: "hcfirst/A/0"}
	for _, s := range cases {
		h := HashString(s)
		if prev, dup := seen[h]; dup {
			t.Fatalf("collision: %q and %q both hash to %#x", prev, s, h)
		}
		seen[h] = s
	}
}

func TestFixedArityHashesMatchVariadic(t *testing.T) {
	// The fixed-arity fast paths must agree with the variadic fold on
	// random tuples; they are the hot-path forms of the same function.
	s := NewStream(0xfa57)
	for i := 0; i < 10_000; i++ {
		k := [5]uint64{s.Uint64(), s.Uint64(), s.Uint64(), s.Uint64(), s.Uint64()}
		if got, want := Hash64x2(k[0], k[1]), Hash64(k[0], k[1]); got != want {
			t.Fatalf("Hash64x2(%#x, %#x) = %#x, want %#x", k[0], k[1], got, want)
		}
		if got, want := Hash64x3(k[0], k[1], k[2]), Hash64(k[0], k[1], k[2]); got != want {
			t.Fatalf("Hash64x3 mismatch on %v: %#x vs %#x", k[:3], got, want)
		}
		if got, want := Hash64x4(k[0], k[1], k[2], k[3]), Hash64(k[0], k[1], k[2], k[3]); got != want {
			t.Fatalf("Hash64x4 mismatch on %v: %#x vs %#x", k[:4], got, want)
		}
		if got, want := Hash64x5(k[0], k[1], k[2], k[3], k[4]), Hash64(k[0], k[1], k[2], k[3], k[4]); got != want {
			t.Fatalf("Hash64x5 mismatch on %v: %#x vs %#x", k[:], got, want)
		}
	}
}

func TestFixedArityHashesDoNotAllocate(t *testing.T) {
	var sink uint64
	allocs := testing.AllocsPerRun(1000, func() {
		sink ^= Hash64x2(1, 2)
		sink ^= Hash64x3(1, 2, 3)
		sink ^= Hash64x4(1, 2, 3, 4)
		sink ^= Hash64x5(1, 2, 3, 4, 5)
	})
	_ = sink
	if allocs != 0 {
		t.Fatalf("fixed-arity hashes allocated %.1f times per run, want 0", allocs)
	}
}

func BenchmarkHash64x2(b *testing.B) {
	b.ReportAllocs()
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink ^= Hash64x2(uint64(i), 1)
	}
	_ = sink
}

func BenchmarkHash64x4(b *testing.B) {
	b.ReportAllocs()
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink ^= Hash64x4(uint64(i), 1, 2, 3)
	}
	_ = sink
}

func BenchmarkHash64x5(b *testing.B) {
	b.ReportAllocs()
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink ^= Hash64x5(uint64(i), 1, 2, 3, 4)
	}
	_ = sink
}

func BenchmarkHash64Variadic5(b *testing.B) {
	b.ReportAllocs()
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink ^= Hash64(uint64(i), 1, 2, 3, 4)
	}
	_ = sink
}

func TestHashPrefixSuffixMatchesHash64(t *testing.T) {
	s := Stream{}
	s.Reseed(0x9ef1)
	for i := 0; i < 10_000; i++ {
		a, b, c, d := s.Uint64(), s.Uint64(), s.Uint64(), s.Uint64()
		if got, want := Hash64Suffix(HashPrefix(a, b, c), d), Hash64(a, b, c, d); got != want {
			t.Fatalf("Hash64Suffix(HashPrefix(%d,%d,%d),%d) = %#x, Hash64 = %#x", a, b, c, d, got, want)
		}
		if got, want := Hash64Suffix(HashPrefix(a), b), Hash64(a, b); got != want {
			t.Fatalf("prefix of one element diverged: %#x vs %#x", got, want)
		}
	}
}

func TestHash64SuffixDoesNotAllocate(t *testing.T) {
	p := HashPrefix(1, 2, 3)
	if n := testing.AllocsPerRun(100, func() { _ = Hash64Suffix(p, 4) }); n != 0 {
		t.Fatalf("Hash64Suffix allocates %v per run", n)
	}
}
