// Package rng provides deterministic pseudo-randomness for the DRAM and
// RowHammer fault-model simulators.
//
// Two facilities are provided:
//
//   - Keyed hashing (Hash64, Mix): a cell's circuit-level parameters must
//     be a pure function of its coordinates (module seed, bank, row,
//     column, bit) so that billions of cells can be modeled without
//     storing per-cell state. Hash64 gives a high-quality 64-bit value
//     for an arbitrary key tuple.
//
//   - Stream: a small, fast xoshiro256** generator seeded from a key,
//     used where a sequence of draws is needed (test repetitions,
//     thermocouple noise, PARA coin flips).
//
// All draws are reproducible across runs and platforms.
package rng

import "math"

// golden64 is the 64-bit golden-ratio increment used by splitmix64.
const golden64 = 0x9e3779b97f4a7c15

// splitmix64 advances a splitmix64 state and returns the next output.
// It is the canonical generator recommended for seeding xoshiro.
func splitmix64(state uint64) uint64 {
	z := state + golden64
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Mix combines two 64-bit values into one with strong avalanche behavior.
func Mix(a, b uint64) uint64 {
	return splitmix64(splitmix64(a) ^ (b + golden64))
}

// hashSeed is the initial fold state shared by Hash64 and the
// fixed-arity fast paths; they must agree bit-for-bit.
const hashSeed = uint64(0x8c95b3b1f9f2d1a7)

// Hash64 hashes an arbitrary tuple of 64-bit keys into a single 64-bit
// value. Hash64(k...) is a pure function of its inputs; changing any
// input bit changes roughly half of the output bits.
//
// Hash64 is the general case and the equivalence anchor for the
// fixed-arity Hash64x2..Hash64x5 fast paths below: for matching key
// counts they return identical values, but avoid the variadic keys
// slice and so never allocate. Hot paths (the fault-model disturb
// kernel hashes several times per cell) use the fixed-arity forms.
func Hash64(keys ...uint64) uint64 {
	h := hashSeed
	for _, k := range keys {
		h = Mix(h, k)
	}
	return splitmix64(h)
}

// Hash64x2 is Hash64(a, b) without the variadic slice. 0 allocs/op.
func Hash64x2(a, b uint64) uint64 {
	return splitmix64(Mix(Mix(hashSeed, a), b))
}

// Hash64x3 is Hash64(a, b, c) without the variadic slice. 0 allocs/op.
func Hash64x3(a, b, c uint64) uint64 {
	return splitmix64(Mix(Mix(Mix(hashSeed, a), b), c))
}

// Hash64x4 is Hash64(a, b, c, d) without the variadic slice. 0 allocs/op.
func Hash64x4(a, b, c, d uint64) uint64 {
	return splitmix64(Mix(Mix(Mix(Mix(hashSeed, a), b), c), d))
}

// Hash64x5 is Hash64(a, b, c, d, e) without the variadic slice. 0 allocs/op.
func Hash64x5(a, b, c, d, e uint64) uint64 {
	return splitmix64(Mix(Mix(Mix(Mix(Mix(hashSeed, a), b), c), d), e))
}

// HashPrefix folds leading tuple elements into a reusable prefix:
//
//	Hash64(a, b, c, x) == Hash64Suffix(HashPrefix(a, b, c), x)
//
// for every x. Loops that hash many tuples sharing a common prefix
// (the disturb kernel hashes (seed, bank, row, bit) for every bit of a
// row) hoist the shared fold out of the loop.
func HashPrefix(keys ...uint64) uint64 {
	h := hashSeed
	for _, k := range keys {
		h = Mix(h, k)
	}
	return h
}

// Hash64Suffix completes a hash from a HashPrefix fold state and the
// final tuple element. 0 allocs/op.
func Hash64Suffix(prefix, last uint64) uint64 {
	return splitmix64(Mix(prefix, last))
}

// HashString hashes a string into a 64-bit value, for keying
// deterministic draws on textual identities (job keys, module names,
// fault channels). Like Hash64 it is a pure function of its input.
func HashString(s string) uint64 {
	h := uint64(0xcbf29ce484222325)
	var chunk uint64
	n := 0
	for i := 0; i < len(s); i++ {
		chunk = chunk<<8 | uint64(s[i])
		if n++; n == 8 {
			h = Mix(h, chunk)
			chunk, n = 0, 0
		}
	}
	if n > 0 {
		h = Mix(h, chunk)
	}
	// Fold in the length so "a\x00" and "a" cannot collide.
	return Mix(h, uint64(len(s)))
}

// Uniform01 maps a 64-bit hash to a float64 in [0, 1).
func Uniform01(h uint64) float64 {
	return float64(h>>11) * (1.0 / (1 << 53))
}

// UniformRange maps a hash to a float64 in [lo, hi).
func UniformRange(h uint64, lo, hi float64) float64 {
	return lo + Uniform01(h)*(hi-lo)
}

// Stream is a xoshiro256** PRNG. The zero value is not valid; use
// NewStream.
type Stream struct {
	s [4]uint64
}

// NewStream returns a Stream seeded deterministically from key.
func NewStream(key uint64) *Stream {
	var st Stream
	st.Reseed(key)
	return &st
}

// Reseed resets the stream to the state derived from key.
func (r *Stream) Reseed(key uint64) {
	sm := key
	for i := range r.s {
		sm += golden64
		r.s[i] = splitmix64(sm)
	}
	// xoshiro must not start from the all-zero state.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = golden64
	}
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 random bits.
func (r *Stream) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Float64 returns a uniform draw in [0, 1).
func (r *Stream) Float64() float64 { return Uniform01(r.Uint64()) }

// Intn returns a uniform draw in [0, n). n must be positive.
func (r *Stream) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	// Lemire's nearly-divisionless bounded draw would be overkill here;
	// modulo bias is negligible for the small n used by the simulators,
	// but we still use the high bits which have better statistics.
	return int((r.Uint64() >> 1) % uint64(n))
}

// Range returns a uniform draw in [lo, hi).
func (r *Stream) Range(lo, hi float64) float64 { return lo + r.Float64()*(hi-lo) }

// Normal returns a standard normal draw using the polar Box-Muller
// method (one value per call; the spare is discarded for simplicity).
func (r *Stream) Normal() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// NormalMS returns a normal draw with the given mean and standard
// deviation.
func (r *Stream) NormalMS(mean, sd float64) float64 {
	return mean + sd*r.Normal()
}

// LogNormal returns exp(N(mu, sigma)).
func (r *Stream) LogNormal(mu, sigma float64) float64 {
	return math.Exp(r.NormalMS(mu, sigma))
}

// TruncNormal returns a normal draw with the given mean and standard
// deviation truncated (by rejection) to [lo, hi]. If the window is
// improbable the draw degrades to clamping after 64 attempts, which is
// fine for the simulator's use (windows always have non-trivial mass).
func (r *Stream) TruncNormal(mean, sd, lo, hi float64) float64 {
	for i := 0; i < 64; i++ {
		x := r.NormalMS(mean, sd)
		if x >= lo && x <= hi {
			return x
		}
	}
	x := mean
	if x < lo {
		x = lo
	}
	if x > hi {
		x = hi
	}
	return x
}

// Bernoulli returns true with probability p.
func (r *Stream) Bernoulli(p float64) bool { return r.Float64() < p }

// Perm fills dst with a random permutation of 0..len(dst)-1
// (Fisher-Yates).
func (r *Stream) Perm(dst []int) {
	for i := range dst {
		dst[i] = i
	}
	for i := len(dst) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		dst[i], dst[j] = dst[j], dst[i]
	}
}

// NormalFromHash converts two independent hashes into one standard
// normal deviate, for pure-function cell parameters (Box-Muller).
func NormalFromHash(h1, h2 uint64) float64 {
	u1 := Uniform01(h1)
	u2 := Uniform01(h2)
	if u1 < 1e-300 {
		u1 = 1e-300
	}
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// LogNormalFromHash converts two hashes into exp(N(mu, sigma)).
func LogNormalFromHash(h1, h2 uint64, mu, sigma float64) float64 {
	return math.Exp(mu + sigma*NormalFromHash(h1, h2))
}
