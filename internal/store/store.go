// Package store is the indexed on-disk artifact store behind
// rhserved. It persists schema-versioned experiment artifacts exactly
// as the CLI tools emit them (byte-for-byte — the payload of an
// ingested fig5 artifact is identical to `rhchar -exp fig5 -format
// json` output) and keeps a queryable index over experiment ID,
// campaign kind, manufacturer set, module seed, and temperature grid.
//
// On-disk layout under the store root:
//
//	store.lock            advisory flock held for the store's lifetime
//	index.jsonl           one CRC-trailed JSON meta line per ingest
//	artifacts/<id>.json   payload bytes, written atomically
//
// Ingest order makes crashes harmless: Put writes the payload with
// AtomicWriteFile first, then appends the fsynced index line. A crash
// between the two leaves an orphan payload that the next Put of the
// same ID simply overwrites; the index never references bytes that
// are not fully on disk. On reload, every index line must pass its
// CRC trailer and every referenced payload must match the size and
// CRC32C recorded in its meta line; anything else is dropped (and
// reported) rather than served.
package store

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"rowhammer/internal/durable"
)

// ErrNotFound is returned by Get for an unknown artifact ID.
var ErrNotFound = errors.New("store: artifact not found")

// Meta is one index entry: everything queryable about an artifact
// without reading its payload.
type Meta struct {
	// ID names the artifact; Put with an existing ID replaces it.
	ID string `json:"id"`
	// Experiment is the registry ID (fig5, table3, ...) the artifact
	// belongs to; empty for raw measurement-kind aggregates.
	Experiment string `json:"experiment,omitempty"`
	// Kind is the campaign kind that produced the artifact
	// (exp:fig5, ber, hcfirst, ...).
	Kind string `json:"kind,omitempty"`
	// Schema versions the artifact layout.
	Schema int `json:"schema,omitempty"`
	// Mfrs is the manufacturer set measured.
	Mfrs []string `json:"mfrs,omitempty"`
	// Seed is the campaign-level module seed.
	Seed uint64 `json:"seed,omitempty"`
	// Temps is the temperature grid measured, in degrees C.
	Temps []float64 `json:"temps,omitempty"`
	// Bytes and CRC pin the payload: Bytes is its length, CRC its
	// CRC32C. Both are recomputed by Put; reload rejects payloads
	// that disagree.
	Bytes int64  `json:"bytes"`
	CRC   uint32 `json:"crc"`
}

// Query selects index entries. Zero fields match everything; set
// fields must all match (AND).
type Query struct {
	// Experiment matches Meta.Experiment exactly.
	Experiment string
	// Kind matches Meta.Kind exactly.
	Kind string
	// Mfr matches entries whose Mfrs set contains it.
	Mfr string
	// Seed matches Meta.Seed exactly when non-nil.
	Seed *uint64
	// Temp matches entries whose Temps grid contains it when non-nil.
	Temp *float64
}

// Matches reports whether m satisfies every set field of q.
func (q Query) Matches(m Meta) bool {
	if q.Experiment != "" && m.Experiment != q.Experiment {
		return false
	}
	if q.Kind != "" && m.Kind != q.Kind {
		return false
	}
	if q.Mfr != "" && !containsString(m.Mfrs, q.Mfr) {
		return false
	}
	if q.Seed != nil && m.Seed != *q.Seed {
		return false
	}
	if q.Temp != nil && !containsFloat(m.Temps, *q.Temp) {
		return false
	}
	return true
}

func containsString(xs []string, want string) bool {
	for _, x := range xs {
		if x == want {
			return true
		}
	}
	return false
}

func containsFloat(xs []float64, want float64) bool {
	for _, x := range xs {
		if x == want {
			return true
		}
	}
	return false
}

// OpenReport describes what a reload found: how much of the index
// survived CRC validation and what was quarantined.
type OpenReport struct {
	// Loaded counts live index entries after reload.
	Loaded int
	// ReplacedLines counts valid index lines superseded by a later
	// line for the same ID (normal after re-ingest).
	ReplacedLines int
	// DroppedLines counts index lines that failed their CRC trailer
	// or did not decode; they are ignored, not fatal.
	DroppedLines int
	// DroppedPayloads lists artifact IDs whose index entry was valid
	// but whose payload file was missing, truncated, or corrupt.
	DroppedPayloads []string
}

// Store is an open artifact store. All methods are safe for
// concurrent use; the on-disk index is append-only and guarded by the
// store's flock, so exactly one process serves a store root at a time.
type Store struct {
	dir  string
	lock *durable.Lock

	mu    sync.RWMutex
	index *os.File // index.jsonl, opened for append
	metas map[string]Meta
}

// Open loads (or initializes) the store rooted at dir, acquiring its
// lockfile. A second Open of the same root fails with an error
// wrapping durable.ErrLocked until the first store is closed.
func Open(dir string) (*Store, *OpenReport, error) {
	if err := os.MkdirAll(filepath.Join(dir, "artifacts"), 0o755); err != nil {
		return nil, nil, fmt.Errorf("store: %w", err)
	}
	lock, err := durable.AcquireLock(filepath.Join(dir, "store.lock"))
	if err != nil {
		return nil, nil, err
	}
	s := &Store{dir: dir, lock: lock, metas: make(map[string]Meta)}
	report, err := s.reload()
	if err != nil {
		lock.Release()
		return nil, nil, err
	}
	s.index, err = os.OpenFile(s.indexPath(), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		lock.Release()
		return nil, nil, fmt.Errorf("store: open index: %w", err)
	}
	return s, report, nil
}

func (s *Store) indexPath() string { return filepath.Join(s.dir, "index.jsonl") }

// ArtifactPath returns the on-disk payload path of id. IDs are
// sanitized at Put time, so the join cannot escape the store root.
func (s *Store) ArtifactPath(id string) string {
	return filepath.Join(s.dir, "artifacts", id+".json")
}

// validID rejects IDs that would escape artifacts/ or hide files.
func validID(id string) error {
	if id == "" {
		return errors.New("store: empty artifact ID")
	}
	if strings.ContainsAny(id, "/\\") || strings.Contains(id, "..") || strings.HasPrefix(id, ".") {
		return fmt.Errorf("store: invalid artifact ID %q", id)
	}
	return nil
}

// reload replays index.jsonl, CRC-validating every line and every
// referenced payload. Invalid lines and payloads are dropped into the
// report; the store serves only entries whose bytes are provably the
// bytes that were ingested.
func (s *Store) reload() (*OpenReport, error) {
	report := &OpenReport{}
	data, err := os.ReadFile(s.indexPath())
	if errors.Is(err, os.ErrNotExist) {
		return report, nil
	}
	if err != nil {
		return nil, fmt.Errorf("store: read index: %w", err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		if line == "" {
			continue
		}
		payload, ok := durable.SplitCRCLine([]byte(line))
		if !ok {
			report.DroppedLines++
			continue
		}
		var m Meta
		if err := json.Unmarshal(payload, &m); err != nil || validID(m.ID) != nil {
			report.DroppedLines++
			continue
		}
		if _, seen := s.metas[m.ID]; seen {
			report.ReplacedLines++
		}
		s.metas[m.ID] = m
	}
	// Validate payloads against their pinned size and CRC.
	for id, m := range s.metas {
		b, err := os.ReadFile(s.ArtifactPath(id))
		if err != nil || int64(len(b)) != m.Bytes || durable.CRC32C(b) != m.CRC {
			delete(s.metas, id)
			report.DroppedPayloads = append(report.DroppedPayloads, id)
		}
	}
	sort.Strings(report.DroppedPayloads)
	report.Loaded = len(s.metas)
	return report, nil
}

// Put ingests payload under meta. meta.Bytes and meta.CRC are
// computed here; callers fill the queryable fields. The payload file
// is published atomically before the index line is appended and
// fsynced, so a crash at any instant leaves either no trace or a
// fully valid entry.
func (s *Store) Put(meta Meta, payload []byte) (Meta, error) {
	if err := validID(meta.ID); err != nil {
		return Meta{}, err
	}
	meta.Bytes = int64(len(payload))
	meta.CRC = durable.CRC32C(payload)
	line, err := json.Marshal(meta)
	if err != nil {
		return Meta{}, fmt.Errorf("store: encode meta: %w", err)
	}
	if err := durable.AtomicWriteFile(s.ArtifactPath(meta.ID), payload, 0o644); err != nil {
		return Meta{}, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, err := s.index.Write(durable.AppendCRCLine(nil, line)); err != nil {
		return Meta{}, fmt.Errorf("store: append index: %w", err)
	}
	if err := s.index.Sync(); err != nil {
		return Meta{}, fmt.Errorf("store: sync index: %w", err)
	}
	s.metas[meta.ID] = meta
	return meta, nil
}

// Get returns the meta and payload of id. The payload is re-verified
// against the indexed CRC on every read.
func (s *Store) Get(id string) (Meta, []byte, error) {
	s.mu.RLock()
	m, ok := s.metas[id]
	s.mu.RUnlock()
	if !ok {
		return Meta{}, nil, fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	b, err := os.ReadFile(s.ArtifactPath(id))
	if err != nil {
		return Meta{}, nil, fmt.Errorf("store: %s: %w", id, err)
	}
	if int64(len(b)) != m.Bytes || durable.CRC32C(b) != m.CRC {
		return Meta{}, nil, fmt.Errorf("store: %s: payload does not match indexed CRC", id)
	}
	return m, b, nil
}

// List returns the metas matching q, sorted by ID for deterministic
// responses.
func (s *Store) List(q Query) []Meta {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []Meta
	for _, m := range s.metas {
		if q.Matches(m) {
			out = append(out, m)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Len returns the number of live index entries.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.metas)
}

// Dir returns the store root.
func (s *Store) Dir() string { return s.dir }

// Close releases the store lock and the index handle. The store must
// not be used afterwards.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	var err error
	if s.index != nil {
		err = s.index.Close()
		s.index = nil
	}
	if lerr := s.lock.Release(); err == nil {
		err = lerr
	}
	s.lock = nil
	return err
}
