package store

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"rowhammer/internal/durable"
)

func open(t *testing.T, dir string) (*Store, *OpenReport) {
	t.Helper()
	s, rep, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s, rep
}

func seedU(v uint64) *uint64   { return &v }
func tempF(v float64) *float64 { return &v }

func TestPutGetRoundTrip(t *testing.T) {
	s, rep := open(t, t.TempDir())
	if rep.Loaded != 0 {
		t.Fatalf("fresh store loaded %d entries", rep.Loaded)
	}
	payload := []byte("{\n  \"experiment\": \"fig5\"\n}\n")
	meta, err := s.Put(Meta{ID: "c1", Experiment: "fig5", Kind: "exp:fig5", Schema: 1,
		Mfrs: []string{"A", "B"}, Seed: 7, Temps: []float64{50, 55}}, payload)
	if err != nil {
		t.Fatal(err)
	}
	if meta.Bytes != int64(len(payload)) || meta.CRC != durable.CRC32C(payload) {
		t.Fatalf("Put did not pin bytes/crc: %+v", meta)
	}
	got, b, err := s.Get("c1")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, meta) {
		t.Fatalf("meta = %+v, want %+v", got, meta)
	}
	if string(b) != string(payload) {
		t.Fatalf("payload = %q, want byte-identical %q", b, payload)
	}
	if _, _, err := s.Get("nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing ID: want ErrNotFound, got %v", err)
	}
}

func TestPutRejectsHostileIDs(t *testing.T) {
	s, _ := open(t, t.TempDir())
	for _, id := range []string{"", "../escape", "a/b", `a\b`, ".hidden"} {
		if _, err := s.Put(Meta{ID: id}, []byte("x")); err == nil {
			t.Errorf("Put accepted hostile ID %q", id)
		}
	}
}

func TestListFilters(t *testing.T) {
	s, _ := open(t, t.TempDir())
	puts := []Meta{
		{ID: "a", Experiment: "fig5", Kind: "exp:fig5", Mfrs: []string{"A", "B"}, Seed: 1, Temps: []float64{50, 55}},
		{ID: "b", Experiment: "fig5", Kind: "exp:fig5", Mfrs: []string{"C"}, Seed: 2, Temps: []float64{70}},
		{ID: "c", Experiment: "table3", Kind: "exp:table3", Mfrs: []string{"A"}, Seed: 1, Temps: []float64{50}},
		{ID: "d", Kind: "ber", Mfrs: []string{"A", "B", "C", "D"}, Seed: 1, Temps: []float64{50, 70, 90}},
	}
	for _, m := range puts {
		if _, err := s.Put(m, []byte("payload-"+m.ID)); err != nil {
			t.Fatal(err)
		}
	}
	ids := func(ms []Meta) []string {
		var out []string
		for _, m := range ms {
			out = append(out, m.ID)
		}
		return out
	}
	cases := []struct {
		name string
		q    Query
		want []string
	}{
		{"all", Query{}, []string{"a", "b", "c", "d"}},
		{"by experiment", Query{Experiment: "fig5"}, []string{"a", "b"}},
		{"by kind", Query{Kind: "ber"}, []string{"d"}},
		{"by mfr membership", Query{Mfr: "C"}, []string{"b", "d"}},
		{"by seed", Query{Seed: seedU(1)}, []string{"a", "c", "d"}},
		{"by temp membership", Query{Temp: tempF(70)}, []string{"b", "d"}},
		{"conjunction", Query{Mfr: "A", Seed: seedU(1), Temp: tempF(50)}, []string{"a", "c", "d"}},
		{"no match", Query{Experiment: "fig5", Kind: "ber"}, nil},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := ids(s.List(tc.q)); !reflect.DeepEqual(got, tc.want) {
				t.Fatalf("List(%+v) = %v, want %v", tc.q, got, tc.want)
			}
		})
	}
}

func TestColdRestartReload(t *testing.T) {
	dir := t.TempDir()
	s, _ := open(t, dir)
	want := map[string]string{}
	for i := 0; i < 5; i++ {
		id := fmt.Sprintf("c%d", i)
		payload := fmt.Sprintf("payload %d\n", i)
		if _, err := s.Put(Meta{ID: id, Experiment: "fig5", Seed: uint64(i)}, []byte(payload)); err != nil {
			t.Fatal(err)
		}
		want[id] = payload
	}
	// Re-ingest one ID with new bytes: reload must serve the latest.
	if _, err := s.Put(Meta{ID: "c3", Experiment: "fig5", Seed: 3}, []byte("revised\n")); err != nil {
		t.Fatal(err)
	}
	want["c3"] = "revised\n"
	s.Close()

	s2, rep := open(t, dir)
	if rep.Loaded != len(want) || rep.DroppedLines != 0 || len(rep.DroppedPayloads) != 0 {
		t.Fatalf("reload report = %+v, want %d clean entries", rep, len(want))
	}
	if rep.ReplacedLines != 1 {
		t.Fatalf("ReplacedLines = %d, want 1 (the c3 re-ingest)", rep.ReplacedLines)
	}
	for id, payload := range want {
		_, b, err := s2.Get(id)
		if err != nil || string(b) != payload {
			t.Fatalf("after reload Get(%s) = %q, %v; want %q", id, b, err, payload)
		}
	}
}

func TestReloadQuarantinesCorruption(t *testing.T) {
	dir := t.TempDir()
	s, _ := open(t, dir)
	for _, id := range []string{"good", "rotted", "vanished"} {
		if _, err := s.Put(Meta{ID: id}, []byte("bytes of "+id)); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()

	// Corrupt one payload, delete another, and append garbage plus a
	// forged (CRC-valid, hostile-ID) line to the index.
	if err := os.WriteFile(filepath.Join(dir, "artifacts", "rotted.json"), []byte("bytes of rotteX"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(dir, "artifacts", "vanished.json")); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(filepath.Join(dir, "index.jsonl"), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte("not a crc line\n"))
	f.Write(durable.AppendCRCLine(nil, []byte(`{"id":"../evil","bytes":1,"crc":0}`)))
	f.Write(durable.AppendCRCLine(nil, []byte(`{"id":"trunc"`))[0:9]) // torn final line
	f.Close()

	s2, rep := open(t, dir)
	if rep.Loaded != 1 {
		t.Fatalf("Loaded = %d, want only the clean entry; report %+v", rep.Loaded, rep)
	}
	if rep.DroppedLines != 3 {
		t.Fatalf("DroppedLines = %d, want 3 (garbage, hostile ID, torn line)", rep.DroppedLines)
	}
	if !reflect.DeepEqual(rep.DroppedPayloads, []string{"rotted", "vanished"}) {
		t.Fatalf("DroppedPayloads = %v", rep.DroppedPayloads)
	}
	if _, b, err := s2.Get("good"); err != nil || string(b) != "bytes of good" {
		t.Fatalf("clean entry lost: %q, %v", b, err)
	}
	if _, _, err := s2.Get("rotted"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("corrupt payload must not be served, got %v", err)
	}
}

func TestOpenExcludesSecondProcess(t *testing.T) {
	dir := t.TempDir()
	s, _ := open(t, dir)
	if _, _, err := Open(dir); !errors.Is(err, durable.ErrLocked) {
		t.Fatalf("second Open: want ErrLocked, got %v", err)
	}
	s.Close()
	s2, _, err := Open(dir)
	if err != nil {
		t.Fatalf("reopen after close: %v", err)
	}
	s2.Close()
}

func TestConcurrentPutsAndQueries(t *testing.T) {
	s, _ := open(t, t.TempDir())
	const writers, perWriter = 8, 20
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				id := fmt.Sprintf("w%d-%d", w, i)
				if _, err := s.Put(Meta{ID: id, Seed: uint64(w)}, []byte(id)); err != nil {
					t.Errorf("Put(%s): %v", id, err)
					return
				}
				if _, _, err := s.Get(id); err != nil {
					t.Errorf("Get(%s): %v", id, err)
					return
				}
			}
		}(w)
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				s.List(Query{Seed: seedU(uint64(w))})
			}
		}(w)
	}
	wg.Wait()
	if got := s.Len(); got != writers*perWriter {
		t.Fatalf("Len = %d, want %d", got, writers*perWriter)
	}
}
