package thermal

import (
	"errors"
	"math"
	"testing"
)

func TestPlantHeatsAndCools(t *testing.T) {
	p := DefaultPlant()
	start := p.Temperature()
	for i := 0; i < 100; i++ {
		p.Step(0.5, 1.0)
	}
	if p.Temperature() <= start {
		t.Fatal("full heater power should raise temperature")
	}
	hot := p.Temperature()
	for i := 0; i < 100; i++ {
		p.Step(0.5, 0)
	}
	if p.Temperature() >= hot {
		t.Fatal("heater off should cool toward ambient")
	}
}

func TestPlantEquilibrium(t *testing.T) {
	p := DefaultPlant()
	// At steady state with duty d: T = Tamb + d*Pmax*Rθ.
	const duty = 0.5
	want := p.AmbientC + duty*p.HeaterMaxW*p.ResistanceCPerW
	for i := 0; i < 20000; i++ {
		p.Step(0.5, duty)
	}
	if math.Abs(p.Temperature()-want) > 0.5 {
		t.Fatalf("equilibrium %v, want %v", p.Temperature(), want)
	}
}

func TestPlantClampsDuty(t *testing.T) {
	p := DefaultPlant()
	p.Step(1, 5) // clamped to 1
	over := p.Temperature()
	q := DefaultPlant()
	q.Step(1, 1)
	if over != q.Temperature() {
		t.Fatal("duty not clamped")
	}
}

func TestPIDDrivesErrorToZero(t *testing.T) {
	p := DefaultPlant()
	c := NewPID()
	setpoint := 70.0
	for i := 0; i < 4000; i++ {
		duty := c.Update(setpoint-p.Temperature(), 0.5)
		p.Step(0.5, duty)
	}
	if math.Abs(p.Temperature()-setpoint) > 0.2 {
		t.Fatalf("PID settled at %v, want %v", p.Temperature(), setpoint)
	}
}

func TestPIDOutputClamped(t *testing.T) {
	c := NewPID()
	if out := c.Update(1000, 0.5); out > 1 {
		t.Fatalf("output %v above clamp", out)
	}
	if out := c.Update(-1000, 0.5); out < 0 {
		t.Fatalf("output %v below clamp", out)
	}
}

func TestThermocoupleNoiseBounded(t *testing.T) {
	p := DefaultPlant()
	p.SetTemperature(60)
	tc := NewThermocouple(5)
	for i := 0; i < 1000; i++ {
		r := tc.Read(p)
		if math.Abs(r-60) > 0.1 {
			t.Fatalf("thermocouple error %v exceeds ±0.1 °C", r-60)
		}
	}
}

func TestThermocoupleDeterministic(t *testing.T) {
	p := DefaultPlant()
	a := NewThermocouple(9)
	b := NewThermocouple(9)
	for i := 0; i < 50; i++ {
		if a.Read(p) != b.Read(p) {
			t.Fatal("same-seed thermocouples diverged")
		}
	}
}

func TestChamberSettlesAcrossStudyRange(t *testing.T) {
	ch := NewChamber(1)
	for temp := 50.0; temp <= 90.0; temp += 5 {
		if err := ch.SetAndSettle(temp); err != nil {
			t.Fatalf("settle at %v °C: %v", temp, err)
		}
		if got := ch.Temperature(); math.Abs(got-temp) > 0.3 {
			t.Fatalf("settled at %v, want %v", got, temp)
		}
	}
}

func TestChamberHoldStaysTight(t *testing.T) {
	ch := NewChamber(2)
	if err := ch.SetAndSettle(75); err != nil {
		t.Fatal(err)
	}
	worst := ch.Hold(120)
	if worst > 0.5 {
		t.Fatalf("hold deviation %v °C too large", worst)
	}
}

func TestChamberRejectsSubAmbient(t *testing.T) {
	ch := NewChamber(3)
	if err := ch.SetAndSettle(10); err == nil {
		t.Fatal("expected error below ambient")
	}
}

func TestChamberSettleTimeout(t *testing.T) {
	ch := NewChamber(4)
	ch.MaxSettleSeconds = 1 // absurdly short
	if err := ch.SetAndSettle(90); err != ErrSettleTimeout {
		t.Fatalf("expected timeout, got %v", err)
	}
}

func TestChamberElapsedAdvances(t *testing.T) {
	ch := NewChamber(6)
	if err := ch.SetAndSettle(55); err != nil {
		t.Fatal(err)
	}
	before := ch.Elapsed()
	ch.Hold(10)
	if ch.Elapsed() <= before {
		t.Fatal("elapsed time did not advance")
	}
}

func TestCoolerEnablesSubAmbient(t *testing.T) {
	ch := NewChamber(7)
	ch.EnableCooler(80)
	if err := ch.SetAndSettle(15); err != nil {
		t.Fatalf("settle at 15 °C with cooler: %v", err)
	}
	if got := ch.Temperature(); math.Abs(got-15) > 0.3 {
		t.Fatalf("settled at %v, want 15", got)
	}
}

func TestCoolerOffPlantClampsNegativeDuty(t *testing.T) {
	p := DefaultPlant()
	p.SetTemperature(60)
	before := p.Temperature()
	p.Step(1, -1) // no cooler: clamped to 0 → passive cooling only
	passive := before - p.Temperature()
	q := DefaultPlant()
	q.SetTemperature(60)
	q.Step(1, 0)
	if math.Abs(passive-(before-q.Temperature())) > 1e-9 {
		t.Fatal("negative duty without cooler should equal duty 0")
	}
}

func TestPlantDisturbanceShiftsEquilibrium(t *testing.T) {
	p := DefaultPlant()
	// An uncontrolled disturbance adds DisturbW*Rθ to the steady state.
	p.DisturbW = 20
	want := p.AmbientC + 20*p.ResistanceCPerW
	for i := 0; i < 20000; i++ {
		p.Step(0.5, 0)
	}
	if math.Abs(p.Temperature()-want) > 0.5 {
		t.Fatalf("disturbed equilibrium %v, want %v", p.Temperature(), want)
	}
}

func TestChamberHoldWithinGuardband(t *testing.T) {
	ch := NewChamber(8)
	if err := ch.SetAndSettle(70); err != nil {
		t.Fatal(err)
	}
	worst, err := ch.HoldWithin(60, 0.5)
	if err != nil {
		t.Fatalf("healthy chamber breached the guardband (worst %v): %v", worst, err)
	}
	if worst <= 0 {
		t.Fatal("worst deviation should be positive (thermocouple noise)")
	}
}

func TestChamberDisturbHookBreachesGuardband(t *testing.T) {
	ch := NewChamber(9)
	ch.EnableCooler(80) // recovery below needs active cooling
	if err := ch.SetAndSettle(70); err != nil {
		t.Fatal(err)
	}
	// A constant 60 W leak overwhelms the PID's guardband authority.
	ch.Disturb = func(elapsed float64) float64 { return 60 }
	worst, err := ch.HoldWithin(60, 0.5)
	if !errors.Is(err, ErrGuardband) {
		t.Fatalf("expected ErrGuardband, got worst %v, err %v", worst, err)
	}
	if worst <= 0.5 {
		t.Fatalf("reported worst %v should exceed the band", worst)
	}
	// The hook clears with the disturbance: the PID recovers.
	ch.Disturb = nil
	if err := ch.SetAndSettle(70); err != nil {
		t.Fatalf("chamber did not recover: %v", err)
	}
	if _, err := ch.HoldWithin(60, 0.5); err != nil {
		t.Fatalf("recovered chamber breached the guardband: %v", err)
	}
}

func TestCoolerAcceleratesCooling(t *testing.T) {
	hot := func(cool bool) float64 {
		p := DefaultPlant()
		if cool {
			p.CoolerMaxW = 80
		}
		p.SetTemperature(90)
		duty := 0.0
		if cool {
			duty = -1
		}
		for i := 0; i < 60; i++ {
			p.Step(0.5, duty)
		}
		return p.Temperature()
	}
	if hot(true) >= hot(false) {
		t.Fatal("active cooling should beat passive cooling")
	}
}
