// Package thermal simulates the study's temperature-control loop: a
// pair of silicone heater pads clamped to the module (a first-order
// thermal plant), a thermocouple with ±0.1 °C accuracy, and a Maxwell
// FT200-style PID controller that holds the DRAM at a reference
// temperature (§4.1).
package thermal

import (
	"errors"
	"fmt"

	"rowhammer/internal/rng"
)

// Plant is a first-order thermal model of a DRAM module clamped in
// heater pads: C·dT/dt = P·η − (T − Tamb)/Rθ.
type Plant struct {
	// AmbientC is the chamber ambient temperature.
	AmbientC float64
	// CapacityJPerC is the thermal mass of module + pads.
	CapacityJPerC float64
	// ResistanceCPerW is the thermal resistance to ambient.
	ResistanceCPerW float64
	// HeaterMaxW is the heater pads' maximum power.
	HeaterMaxW float64
	// CoolerMaxW is the optional Peltier cooler's maximum heat-removal
	// power (0 = heater-only rig, the study's configuration; Defense
	// Improvement 4 motivates adding cooling capacity).
	CoolerMaxW float64
	// DisturbW is extra uncontrolled power dumped into the plant each
	// step — the knob fault injectors use to model drafts, neighbouring
	// heaters, or a detached pad. Positive heats, negative cools.
	DisturbW float64

	tempC float64
}

// DefaultPlant returns a plant roughly matching a DIMM with clamped
// heater pads in 25 °C ambient.
func DefaultPlant() *Plant {
	p := &Plant{
		AmbientC:        25,
		CapacityJPerC:   60,
		ResistanceCPerW: 1.4,
		HeaterMaxW:      120,
	}
	p.tempC = p.AmbientC
	return p
}

// Temperature returns the plant's true (noise-free) temperature.
func (p *Plant) Temperature() float64 { return p.tempC }

// SetTemperature forces the plant state (test setup).
func (p *Plant) SetTemperature(c float64) { p.tempC = c }

// Step advances the plant by dt seconds with the actuator driven at
// duty in [-1,1]: positive drives the heater, negative the cooler
// (clamped to 0 when no cooler is fitted).
func (p *Plant) Step(dt, duty float64) {
	if duty > 1 {
		duty = 1
	}
	lo := 0.0
	if p.CoolerMaxW > 0 {
		lo = -1
	}
	if duty < lo {
		duty = lo
	}
	power := duty * p.HeaterMaxW
	if duty < 0 {
		power = duty * p.CoolerMaxW
	}
	dT := (power + p.DisturbW - (p.tempC-p.AmbientC)/p.ResistanceCPerW) / p.CapacityJPerC
	p.tempC += dT * dt
}

// PID is a discrete PID controller with output clamping and integral
// anti-windup.
type PID struct {
	Kp, Ki, Kd float64
	OutLo      float64
	OutHi      float64

	integral float64
	lastErr  float64
	primed   bool
}

// NewPID returns a controller tuned for the default plant.
func NewPID() *PID {
	return &PID{Kp: 0.35, Ki: 0.02, Kd: 0.12, OutLo: 0, OutHi: 1}
}

// Update computes the control output for the given setpoint error over
// a dt-second step.
func (c *PID) Update(err, dt float64) float64 {
	deriv := 0.0
	if c.primed && dt > 0 {
		deriv = (err - c.lastErr) / dt
	}
	c.lastErr = err
	c.primed = true

	c.integral += err * dt
	out := c.Kp*err + c.Ki*c.integral + c.Kd*deriv
	// Anti-windup: clamp and bleed the integral when saturated.
	if out > c.OutHi {
		out = c.OutHi
		if c.Ki > 0 {
			c.integral = (out - c.Kp*err - c.Kd*deriv) / c.Ki
		}
	} else if out < c.OutLo {
		out = c.OutLo
		if c.Ki > 0 {
			c.integral = (out - c.Kp*err - c.Kd*deriv) / c.Ki
		}
	}
	return out
}

// Reset clears the controller state.
func (c *PID) Reset() {
	c.integral = 0
	c.lastErr = 0
	c.primed = false
}

// Thermocouple reads the plant with bounded sensor noise (±0.1 °C, the
// study's measurement accuracy).
type Thermocouple struct {
	NoiseC float64
	rnd    *rng.Stream
}

// NewThermocouple returns a sensor with deterministic noise from seed.
func NewThermocouple(seed uint64) *Thermocouple {
	return &Thermocouple{NoiseC: 0.1, rnd: rng.NewStream(rng.Hash64(seed, 0x7c))}
}

// Read samples the plant temperature with noise.
func (tc *Thermocouple) Read(p *Plant) float64 {
	return p.Temperature() + tc.rnd.Range(-tc.NoiseC, tc.NoiseC)
}

// Chamber ties plant, sensor and controller into the closed loop the
// host machine runs over RS485: set a reference, wait for settle, then
// hold during a test.
type Chamber struct {
	Plant *Plant
	PID   *PID
	TC    *Thermocouple

	// StepSeconds is the control-loop period.
	StepSeconds float64
	// ToleranceC is the settled-band half width.
	ToleranceC float64
	// HoldSteps is how many consecutive in-band reads count as settled.
	HoldSteps int
	// MaxSettleSeconds bounds a settle operation.
	MaxSettleSeconds float64
	// Disturb, when non-nil, is sampled every control step and its
	// return value is applied as uncontrolled plant power (W). Fault
	// injectors use it to drive deterministic thermal drift; the PID
	// fights it like the real chamber fights a draft.
	Disturb func(elapsedSeconds float64) float64

	setpoint float64
	elapsed  float64
}

// NewChamber builds a chamber with the default plant and tuning.
func NewChamber(seed uint64) *Chamber {
	return &Chamber{
		Plant:            DefaultPlant(),
		PID:              NewPID(),
		TC:               NewThermocouple(seed),
		StepSeconds:      0.5,
		ToleranceC:       0.1,
		HoldSteps:        8,
		MaxSettleSeconds: 3600,
	}
}

// ErrSettleTimeout reports that the setpoint was not reached in time.
var ErrSettleTimeout = errors.New("thermal: settle timeout")

// Setpoint returns the current reference temperature.
func (ch *Chamber) Setpoint() float64 { return ch.setpoint }

// Elapsed returns total simulated control-loop seconds.
func (ch *Chamber) Elapsed() float64 { return ch.elapsed }

// EnableCooler fits a Peltier cooler with the given heat-removal
// power, allowing sub-ambient setpoints.
func (ch *Chamber) EnableCooler(maxW float64) {
	ch.Plant.CoolerMaxW = maxW
	ch.PID.OutLo = -1
}

// SetAndSettle drives the chamber to tempC and blocks (in simulated
// time) until the measured temperature stays within ToleranceC for
// HoldSteps consecutive control periods.
func (ch *Chamber) SetAndSettle(tempC float64) error {
	if tempC < ch.Plant.AmbientC && ch.Plant.CoolerMaxW <= 0 {
		return fmt.Errorf("thermal: setpoint %.1f °C below ambient %.1f °C (no cooler fitted)", tempC, ch.Plant.AmbientC)
	}
	ch.setpoint = tempC
	ch.PID.Reset()
	inBand := 0
	for t := 0.0; t < ch.MaxSettleSeconds; t += ch.StepSeconds {
		measured := ch.step()
		if diff := measured - tempC; diff >= -ch.ToleranceC && diff <= ch.ToleranceC {
			inBand++
			if inBand >= ch.HoldSteps {
				return nil
			}
		} else {
			inBand = 0
		}
	}
	return ErrSettleTimeout
}

// step advances one control period toward the current setpoint,
// sampling the disturbance hook first, and returns the measured
// temperature.
func (ch *Chamber) step() float64 {
	if ch.Disturb != nil {
		ch.Plant.DisturbW = ch.Disturb(ch.elapsed)
	}
	measured := ch.TC.Read(ch.Plant)
	duty := ch.PID.Update(ch.setpoint-measured, ch.StepSeconds)
	ch.Plant.Step(ch.StepSeconds, duty)
	ch.elapsed += ch.StepSeconds
	return measured
}

// Hold runs the loop for the given simulated seconds, maintaining the
// current setpoint, and returns the worst absolute deviation observed.
func (ch *Chamber) Hold(seconds float64) float64 {
	worst, _ := ch.HoldWithin(seconds, 0)
	return worst
}

// ErrGuardband reports that a guarded hold left the validity band.
var ErrGuardband = errors.New("thermal: temperature drifted beyond guardband")

// HoldWithin runs the loop like Hold but additionally enforces the
// study's measurement-validity guardband: if bandC > 0 and the
// measured temperature strays more than bandC from the setpoint
// (±0.5 °C in §4.1), the hold keeps regulating to the end but returns
// ErrGuardband so the caller can discard and re-run the measurement.
func (ch *Chamber) HoldWithin(seconds, bandC float64) (float64, error) {
	worst := 0.0
	for t := 0.0; t < seconds; t += ch.StepSeconds {
		measured := ch.step()
		if d := measured - ch.setpoint; d > worst {
			worst = d
		} else if -d > worst {
			worst = -d
		}
	}
	if bandC > 0 && worst > bandC {
		return worst, fmt.Errorf("%w: worst deviation %.2f °C exceeds ±%.2f °C", ErrGuardband, worst, bandC)
	}
	return worst, nil
}

// Temperature returns the current measured temperature.
func (ch *Chamber) Temperature() float64 { return ch.TC.Read(ch.Plant) }
