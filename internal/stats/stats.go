// Package stats implements the descriptive and comparative statistics
// used throughout the RowHammer characterization study: percentiles,
// Tukey box-plot statistics, letter-value (boxen) statistics,
// coefficient of variation, confidence intervals, linear regression
// with R², histograms, and the Bhattacharyya distance between empirical
// distributions (used by the subarray-similarity analysis, Fig. 15).
package stats

import (
	"encoding/json"
	"errors"
	"math"
	"sort"
)

// ErrEmpty is returned by functions that cannot operate on an empty
// sample.
var ErrEmpty = errors.New("stats: empty sample")

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the population variance of xs (denominator n), or 0
// for fewer than one element.
func Variance(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// CV returns the coefficient of variation (stddev/mean) of xs.
// It returns 0 when the mean is 0 (conventional for all-zero samples;
// the study treats columns with zero flips as zero-variation).
func CV(xs []float64) float64 {
	m := Mean(xs)
	if m == 0 {
		return 0
	}
	return StdDev(xs) / m
}

// Min returns the minimum of xs. It panics on an empty slice.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		panic(ErrEmpty)
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs. It panics on an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		panic(ErrEmpty)
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Sum returns the sum of xs.
func Sum(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s
}

// Sorted returns a sorted copy of xs.
func Sorted(xs []float64) []float64 {
	out := make([]float64, len(xs))
	copy(out, xs)
	sort.Float64s(out)
	return out
}

// Quantile returns the q-quantile (q in [0,1]) of the *sorted* sample
// using linear interpolation between order statistics (type-7, the
// default of R/numpy, matching the paper's plotting stack).
// It panics on an empty sample.
func Quantile(sorted []float64, q float64) float64 {
	n := len(sorted)
	if n == 0 {
		panic(ErrEmpty)
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[n-1]
	}
	pos := q * float64(n-1)
	lo := int(math.Floor(pos))
	frac := pos - float64(lo)
	if lo+1 >= n {
		return sorted[n-1]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// Percentile returns the p-th percentile (p in [0,100]) of an unsorted
// sample.
func Percentile(xs []float64, p float64) float64 {
	return Quantile(Sorted(xs), p/100)
}

// Median returns the median of an unsorted sample.
func Median(xs []float64) float64 { return Percentile(xs, 50) }

// BoxPlot holds Tukey box-plot statistics: quartiles plus whiskers at
// 1.5×IQR, as used by Figs. 7 and 9.
type BoxPlot struct {
	Min, WhiskerLo, Q1, Median, Q3, WhiskerHi, Max float64
	NOutliers                                      int
}

// NewBoxPlot computes box-plot statistics for xs.
func NewBoxPlot(xs []float64) (BoxPlot, error) {
	if len(xs) == 0 {
		return BoxPlot{}, ErrEmpty
	}
	s := Sorted(xs)
	var b BoxPlot
	b.Min = s[0]
	b.Max = s[len(s)-1]
	b.Q1 = Quantile(s, 0.25)
	b.Median = Quantile(s, 0.5)
	b.Q3 = Quantile(s, 0.75)
	iqr := b.Q3 - b.Q1
	loFence := b.Q1 - 1.5*iqr
	hiFence := b.Q3 + 1.5*iqr
	b.WhiskerLo = b.Max
	b.WhiskerHi = b.Min
	for _, x := range s {
		if x >= loFence && x < b.WhiskerLo {
			b.WhiskerLo = x
		}
		if x <= hiFence && x > b.WhiskerHi {
			b.WhiskerHi = x
		}
		if x < loFence || x > hiFence {
			b.NOutliers++
		}
	}
	return b, nil
}

// LetterValues holds letter-value ("boxen") plot statistics as used by
// Figs. 8 and 10: successive octile/hexadecile boxes out to the
// outlier fraction.
type LetterValues struct {
	Median float64
	// Boxes[k] is the pair (lower, upper) at depth k: k=0 is the
	// quartile box, k=1 the octile box, and so on.
	Boxes [][2]float64
	// Outliers are the extreme values beyond the last box.
	Outliers []float64
}

// NewLetterValues computes letter-value statistics, emitting boxes
// while each tail still contains at least minTail observations
// (Hofmann et al. use a rule tied to outlier proportion; minTail=5 is a
// practical equivalent for our sample sizes).
func NewLetterValues(xs []float64, minTail int) (LetterValues, error) {
	if len(xs) == 0 {
		return LetterValues{}, ErrEmpty
	}
	if minTail < 1 {
		minTail = 1
	}
	s := Sorted(xs)
	lv := LetterValues{Median: Quantile(s, 0.5)}
	n := len(s)
	tail := 0.25
	for {
		if float64(n)*tail < float64(minTail) {
			break
		}
		lo := Quantile(s, tail)
		hi := Quantile(s, 1-tail)
		lv.Boxes = append(lv.Boxes, [2]float64{lo, hi})
		tail /= 2
	}
	if len(lv.Boxes) > 0 {
		last := lv.Boxes[len(lv.Boxes)-1]
		for _, x := range s {
			if x < last[0] || x > last[1] {
				lv.Outliers = append(lv.Outliers, x)
			}
		}
	}
	return lv, nil
}

// MeanCI95 returns the sample mean and the half-width of its 95%
// confidence interval (normal approximation, as in Fig. 4's error
// bars).
func MeanCI95(xs []float64) (mean, halfWidth float64) {
	mean = Mean(xs)
	n := len(xs)
	if n < 2 {
		return mean, 0
	}
	// Sample (n-1) standard deviation for the CI.
	m := mean
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	sd := math.Sqrt(s / float64(n-1))
	return mean, 1.96 * sd / math.Sqrt(float64(n))
}

// LinearFit holds an ordinary-least-squares fit y = Slope*x + Intercept
// with its coefficient of determination (R²), as annotated in Fig. 14.
type LinearFit struct {
	Slope, Intercept, R2 float64
	N                    int
}

// Linear fits y = a*x + b by least squares. It returns an error when
// fewer than two points are given or x has zero variance.
func Linear(x, y []float64) (LinearFit, error) {
	if len(x) != len(y) {
		return LinearFit{}, errors.New("stats: mismatched sample lengths")
	}
	n := len(x)
	if n < 2 {
		return LinearFit{}, errors.New("stats: need at least two points")
	}
	mx, my := Mean(x), Mean(y)
	sxx, sxy, syy := 0.0, 0.0, 0.0
	for i := range x {
		dx := x[i] - mx
		dy := y[i] - my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if sxx == 0 {
		return LinearFit{}, errors.New("stats: x has zero variance")
	}
	slope := sxy / sxx
	fit := LinearFit{
		Slope:     slope,
		Intercept: my - slope*mx,
		N:         n,
	}
	if syy == 0 {
		fit.R2 = 1
	} else {
		ssRes := 0.0
		for i := range x {
			r := y[i] - (fit.Slope*x[i] + fit.Intercept)
			ssRes += r * r
		}
		fit.R2 = 1 - ssRes/syy
	}
	return fit, nil
}

// Histogram counts xs into nBins equal-width bins over [lo, hi].
// Values outside the range are clamped into the edge bins (the study's
// 2-D histograms saturate CV at 1.0 the same way).
func Histogram(xs []float64, lo, hi float64, nBins int) []int {
	if nBins <= 0 {
		panic("stats: non-positive bin count")
	}
	counts := make([]int, nBins)
	if hi <= lo {
		panic("stats: invalid histogram range")
	}
	w := (hi - lo) / float64(nBins)
	for _, x := range xs {
		b := int((x - lo) / w)
		if b < 0 {
			b = 0
		}
		if b >= nBins {
			b = nBins - 1
		}
		counts[b]++
	}
	return counts
}

// Histogram2D bins paired samples (x into nx bins over [xlo,xhi], y
// into ny bins over [ylo,yhi]), clamping out-of-range values into edge
// bins. The result is indexed [yi][xi].
func Histogram2D(x, y []float64, xlo, xhi float64, nx int, ylo, yhi float64, ny int) [][]int {
	if len(x) != len(y) {
		panic("stats: mismatched 2-D histogram samples")
	}
	if nx <= 0 || ny <= 0 || xhi <= xlo || yhi <= ylo {
		panic("stats: invalid 2-D histogram configuration")
	}
	grid := make([][]int, ny)
	for i := range grid {
		grid[i] = make([]int, nx)
	}
	wx := (xhi - xlo) / float64(nx)
	wy := (yhi - ylo) / float64(ny)
	clamp := func(b, n int) int {
		if b < 0 {
			return 0
		}
		if b >= n {
			return n - 1
		}
		return b
	}
	for i := range x {
		xi := clamp(int((x[i]-xlo)/wx), nx)
		yi := clamp(int((y[i]-ylo)/wy), ny)
		grid[yi][xi]++
	}
	return grid
}

// BhattacharyyaHist returns the Bhattacharyya distance between two
// empirical distributions, computed over a shared equal-width binning
// of their pooled support with nBins bins:
//
//	BD = -ln( sum_i sqrt(p_i * q_i) )
//
// Identical distributions give BD=0; disjoint supports give +Inf.
func BhattacharyyaHist(a, b []float64, nBins int) float64 {
	if len(a) == 0 || len(b) == 0 {
		panic(ErrEmpty)
	}
	lo := math.Min(Min(a), Min(b))
	hi := math.Max(Max(a), Max(b))
	if hi == lo {
		// Point masses at the same location: identical distributions.
		return 0
	}
	ha := Histogram(a, lo, hi, nBins)
	hb := Histogram(b, lo, hi, nBins)
	bc := 0.0
	na, nb := float64(len(a)), float64(len(b))
	for i := range ha {
		bc += math.Sqrt(float64(ha[i]) / na * float64(hb[i]) / nb)
	}
	if bc <= 0 {
		return math.Inf(1)
	}
	if bc > 1 {
		bc = 1
	}
	return -math.Log(bc)
}

// BhattacharyyaCoefficient returns the Bhattacharyya coefficient
// BC = sum sqrt(p q) in [0, 1] over a shared binning. The paper's
// Fig. 15 normalizes BD(Sa,Sb) by BD(Sa,Sa); since a discrete self-
// distance is 0, the implementable equivalent is to normalize the
// *coefficient*: BDnorm = BC(Sa,Sb)/BC(Sa,Sa) = BC(Sa,Sb), which is
// 1.0 for identical distributions and decreases with dissimilarity,
// matching the figure's semantics.
func BhattacharyyaCoefficient(a, b []float64, nBins int) float64 {
	if len(a) == 0 || len(b) == 0 {
		panic(ErrEmpty)
	}
	lo := math.Min(Min(a), Min(b))
	hi := math.Max(Max(a), Max(b))
	if hi == lo {
		return 1
	}
	ha := Histogram(a, lo, hi, nBins)
	hb := Histogram(b, lo, hi, nBins)
	bc := 0.0
	na, nb := float64(len(a)), float64(len(b))
	for i := range ha {
		bc += math.Sqrt(float64(ha[i]) / na * float64(hb[i]) / nb)
	}
	if bc > 1 {
		bc = 1
	}
	return bc
}

// Summary holds the descriptive statistics the fleet campaign engine
// reports for a metric population. It is computed from a sorted copy
// of the sample, which makes it independent of the order samples were
// collected in — the property the campaign checkpoint/resume machinery
// relies on for bit-identical aggregates.
type Summary struct {
	N                int
	Mean             float64
	Min              float64
	P25, Median, P75 float64
	P90, P99         float64
	Max              float64
}

// jsonSummary mirrors Summary with every percentile exported; Summary
// keeps short field names for Go callers and this keeps stable JSON
// keys in snake case.
type jsonSummary struct {
	N      int     `json:"n"`
	Mean   float64 `json:"mean"`
	Min    float64 `json:"min"`
	P25    float64 `json:"p25"`
	Median float64 `json:"p50"`
	P75    float64 `json:"p75"`
	P90    float64 `json:"p90"`
	P99    float64 `json:"p99"`
	Max    float64 `json:"max"`
}

// MarshalJSON emits the summary with stable snake-case keys.
func (s Summary) MarshalJSON() ([]byte, error) {
	return json.Marshal(jsonSummary{
		N: s.N, Mean: s.Mean, Min: s.Min, P25: s.P25, Median: s.Median,
		P75: s.P75, P90: s.P90, P99: s.P99, Max: s.Max,
	})
}

// UnmarshalJSON parses the stable snake-case form.
func (s *Summary) UnmarshalJSON(b []byte) error {
	var j jsonSummary
	if err := json.Unmarshal(b, &j); err != nil {
		return err
	}
	*s = Summary{
		N: j.N, Mean: j.Mean, Min: j.Min, P25: j.P25, Median: j.Median,
		P75: j.P75, P90: j.P90, P99: j.P99, Max: j.Max,
	}
	return nil
}

// Summarize computes order-independent descriptive statistics of xs.
// The zero Summary is returned for an empty sample.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Sorted(xs)
	return Summary{
		N:      len(s),
		Mean:   Mean(s),
		Min:    s[0],
		P25:    Quantile(s, 0.25),
		Median: Quantile(s, 0.50),
		P75:    Quantile(s, 0.75),
		P90:    Quantile(s, 0.90),
		P99:    Quantile(s, 0.99),
		Max:    s[len(s)-1],
	}
}

// SummarizeInts summarizes an integer sample — e.g. the per-job
// attempt counts the campaign engine's coverage accounting reports.
func SummarizeInts(xs []int) Summary {
	fs := make([]float64, len(xs))
	for i, x := range xs {
		fs[i] = float64(x)
	}
	return Summarize(fs)
}

// ECDF returns, for each probe point, the fraction of xs that is <= it.
func ECDF(xs []float64, probes []float64) []float64 {
	s := Sorted(xs)
	out := make([]float64, len(probes))
	for i, p := range probes {
		out[i] = float64(sort.SearchFloat64s(s, math.Nextafter(p, math.Inf(1)))) / float64(len(s))
	}
	return out
}

// CrossingPercentile returns the percentage of values that are > 0,
// i.e. the percentile at which a sorted-descending curve of the values
// crosses zero — the Px annotation of Fig. 5.
func CrossingPercentile(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	pos := 0
	for _, x := range xs {
		if x > 0 {
			pos++
		}
	}
	return 100 * float64(pos) / float64(len(xs))
}

// CumulativeMagnitude returns the sum of absolute values, the paper's
// "cumulative magnitude change" metric from Obsv. 7.
func CumulativeMagnitude(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += math.Abs(x)
	}
	return s
}
