package stats

import (
	"encoding/json"
	"math"
	"strings"
	"testing"
	"testing/quick"

	"rowhammer/internal/rng"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMeanBasic(t *testing.T) {
	if got := Mean([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Fatalf("Mean = %v, want 2.5", got)
	}
	if got := Mean(nil); got != 0 {
		t.Fatalf("Mean(nil) = %v, want 0", got)
	}
}

func TestVarianceAndStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Variance(xs); !almost(got, 4, 1e-12) {
		t.Fatalf("Variance = %v, want 4", got)
	}
	if got := StdDev(xs); !almost(got, 2, 1e-12) {
		t.Fatalf("StdDev = %v, want 2", got)
	}
}

func TestCV(t *testing.T) {
	if got := CV([]float64{10, 10, 10}); got != 0 {
		t.Fatalf("CV of constant = %v, want 0", got)
	}
	if got := CV([]float64{0, 0}); got != 0 {
		t.Fatalf("CV with zero mean = %v, want 0", got)
	}
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := CV(xs); !almost(got, 2.0/5.0, 1e-12) {
		t.Fatalf("CV = %v, want 0.4", got)
	}
}

func TestMinMaxSum(t *testing.T) {
	xs := []float64{3, -1, 7, 0}
	if Min(xs) != -1 || Max(xs) != 7 || Sum(xs) != 9 {
		t.Fatalf("Min/Max/Sum wrong: %v %v %v", Min(xs), Max(xs), Sum(xs))
	}
}

func TestMinPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Min(nil)
}

func TestQuantileInterpolation(t *testing.T) {
	s := []float64{1, 2, 3, 4}
	cases := []struct{ q, want float64 }{
		{0, 1}, {1, 4}, {0.5, 2.5}, {0.25, 1.75}, {1.0 / 3, 2},
	}
	for _, c := range cases {
		if got := Quantile(s, c.q); !almost(got, c.want, 1e-12) {
			t.Fatalf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
}

func TestQuantileMonotone(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		s := rng.NewStream(seed)
		xs := make([]float64, 31)
		for i := range xs {
			xs[i] = s.Float64() * 100
		}
		srt := Sorted(xs)
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0; q += 0.05 {
			v := Quantile(srt, q)
			if v < prev {
				return false
			}
			prev = v
		}
		return true
	}, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestPercentileAndMedian(t *testing.T) {
	xs := []float64{5, 1, 9, 3, 7}
	if got := Median(xs); got != 5 {
		t.Fatalf("Median = %v, want 5", got)
	}
	if got := Percentile(xs, 100); got != 9 {
		t.Fatalf("P100 = %v, want 9", got)
	}
}

func TestSortedDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	_ = Sorted(xs)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatalf("Sorted mutated input: %v", xs)
	}
}

func TestBoxPlotNoOutliers(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	b, err := NewBoxPlot(xs)
	if err != nil {
		t.Fatal(err)
	}
	if b.Min != 1 || b.Max != 8 {
		t.Fatalf("min/max wrong: %+v", b)
	}
	if b.NOutliers != 0 {
		t.Fatalf("unexpected outliers: %+v", b)
	}
	if b.WhiskerLo != 1 || b.WhiskerHi != 8 {
		t.Fatalf("whiskers should reach extremes: %+v", b)
	}
	if !(b.Q1 <= b.Median && b.Median <= b.Q3) {
		t.Fatalf("quartiles out of order: %+v", b)
	}
}

func TestBoxPlotOutlierDetection(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 100}
	b, err := NewBoxPlot(xs)
	if err != nil {
		t.Fatal(err)
	}
	if b.NOutliers != 1 {
		t.Fatalf("want 1 outlier, got %d", b.NOutliers)
	}
	if b.WhiskerHi == 100 {
		t.Fatalf("whisker should not reach outlier: %+v", b)
	}
}

func TestBoxPlotEmpty(t *testing.T) {
	if _, err := NewBoxPlot(nil); err == nil {
		t.Fatal("expected error for empty sample")
	}
}

func TestLetterValuesNesting(t *testing.T) {
	s := rng.NewStream(42)
	xs := make([]float64, 500)
	for i := range xs {
		xs[i] = s.Normal()
	}
	lv, err := NewLetterValues(xs, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(lv.Boxes) < 3 {
		t.Fatalf("expected several boxes for n=500, got %d", len(lv.Boxes))
	}
	for i := 1; i < len(lv.Boxes); i++ {
		inner, outer := lv.Boxes[i-1], lv.Boxes[i]
		if outer[0] > inner[0] || outer[1] < inner[1] {
			t.Fatalf("boxes not nested at depth %d: %v inside %v", i, inner, outer)
		}
	}
	for _, o := range lv.Outliers {
		last := lv.Boxes[len(lv.Boxes)-1]
		if o >= last[0] && o <= last[1] {
			t.Fatalf("outlier %v inside last box %v", o, last)
		}
	}
}

func TestLetterValuesEmpty(t *testing.T) {
	if _, err := NewLetterValues(nil, 5); err == nil {
		t.Fatal("expected error")
	}
}

func TestMeanCI95Shrinks(t *testing.T) {
	s := rng.NewStream(7)
	small := make([]float64, 10)
	large := make([]float64, 1000)
	for i := range small {
		small[i] = s.Normal()
	}
	for i := range large {
		large[i] = s.Normal()
	}
	_, hwSmall := MeanCI95(small)
	_, hwLarge := MeanCI95(large)
	if hwLarge >= hwSmall {
		t.Fatalf("CI should shrink with n: %v vs %v", hwSmall, hwLarge)
	}
	if _, hw := MeanCI95([]float64{1}); hw != 0 {
		t.Fatalf("single-sample CI = %v, want 0", hw)
	}
}

func TestLinearPerfectFit(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	y := []float64{3, 5, 7, 9, 11} // y = 2x + 1
	fit, err := Linear(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(fit.Slope, 2, 1e-12) || !almost(fit.Intercept, 1, 1e-12) || !almost(fit.R2, 1, 1e-12) {
		t.Fatalf("fit = %+v", fit)
	}
}

func TestLinearNoisyFitR2(t *testing.T) {
	s := rng.NewStream(3)
	var x, y []float64
	for i := 0; i < 500; i++ {
		xv := float64(i)
		x = append(x, xv)
		y = append(y, 0.5*xv+10+s.NormalMS(0, 20))
	}
	fit, err := Linear(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(fit.Slope, 0.5, 0.05) {
		t.Fatalf("slope = %v, want ~0.5", fit.Slope)
	}
	if fit.R2 < 0.7 || fit.R2 > 1 {
		t.Fatalf("R2 = %v", fit.R2)
	}
}

func TestLinearErrors(t *testing.T) {
	if _, err := Linear([]float64{1}, []float64{1}); err == nil {
		t.Fatal("expected error for n<2")
	}
	if _, err := Linear([]float64{1, 1}, []float64{1, 2}); err == nil {
		t.Fatal("expected error for zero x variance")
	}
	if _, err := Linear([]float64{1, 2}, []float64{1}); err == nil {
		t.Fatal("expected error for mismatched lengths")
	}
}

func TestHistogramClamping(t *testing.T) {
	h := Histogram([]float64{-10, 0.5, 1.5, 2.5, 99}, 0, 3, 3)
	if h[0] != 2 || h[1] != 1 || h[2] != 2 {
		t.Fatalf("histogram = %v", h)
	}
}

func TestHistogram2DPlacement(t *testing.T) {
	g := Histogram2D([]float64{0.1, 0.9, 0.5}, []float64{0.1, 0.9, 0.5}, 0, 1, 2, 0, 1, 2)
	if g[0][0] != 1 || g[1][1] != 2 {
		t.Fatalf("grid = %v", g)
	}
}

func TestBhattacharyyaIdentical(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	if bd := BhattacharyyaHist(xs, xs, 8); !almost(bd, 0, 1e-12) {
		t.Fatalf("self distance = %v, want 0", bd)
	}
	if bc := BhattacharyyaCoefficient(xs, xs, 8); !almost(bc, 1, 1e-12) {
		t.Fatalf("self coefficient = %v, want 1", bc)
	}
}

func TestBhattacharyyaDisjoint(t *testing.T) {
	a := []float64{0, 0.1, 0.2}
	b := []float64{10, 10.1, 10.2}
	if bd := BhattacharyyaHist(a, b, 16); !math.IsInf(bd, 1) {
		t.Fatalf("disjoint distance = %v, want +Inf", bd)
	}
	if bc := BhattacharyyaCoefficient(a, b, 16); bc != 0 {
		t.Fatalf("disjoint coefficient = %v, want 0", bc)
	}
}

func TestBhattacharyyaSimilarityOrdering(t *testing.T) {
	s := rng.NewStream(11)
	base := make([]float64, 2000)
	near := make([]float64, 2000)
	far := make([]float64, 2000)
	for i := range base {
		base[i] = s.Normal()
		near[i] = s.NormalMS(0.2, 1)
		far[i] = s.NormalMS(3, 1)
	}
	bcNear := BhattacharyyaCoefficient(base, near, 32)
	bcFar := BhattacharyyaCoefficient(base, far, 32)
	if !(bcNear > bcFar) {
		t.Fatalf("similarity ordering violated: near=%v far=%v", bcNear, bcFar)
	}
	if bcNear <= 0.8 {
		t.Fatalf("near distributions should have high BC, got %v", bcNear)
	}
}

func TestBhattacharyyaPointMass(t *testing.T) {
	if bd := BhattacharyyaHist([]float64{5, 5}, []float64{5, 5, 5}, 8); bd != 0 {
		t.Fatalf("point-mass distance = %v, want 0", bd)
	}
}

func TestECDF(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	got := ECDF(xs, []float64{0, 1, 2.5, 4, 5})
	want := []float64{0, 0.25, 0.5, 1, 1}
	for i := range want {
		if !almost(got[i], want[i], 1e-12) {
			t.Fatalf("ECDF[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestCrossingPercentile(t *testing.T) {
	xs := []float64{5, 3, 1, -1, -2, -3, -4, -5, -6, -7}
	if got := CrossingPercentile(xs); got != 30 {
		t.Fatalf("crossing = %v, want 30", got)
	}
	if got := CrossingPercentile(nil); got != 0 {
		t.Fatalf("crossing(nil) = %v", got)
	}
}

func TestCumulativeMagnitude(t *testing.T) {
	if got := CumulativeMagnitude([]float64{-1, 2, -3}); got != 6 {
		t.Fatalf("cumulative magnitude = %v, want 6", got)
	}
}

func TestQuantilePropertyBounds(t *testing.T) {
	if err := quick.Check(func(seed uint64, qRaw uint8) bool {
		s := rng.NewStream(seed)
		n := 1 + s.Intn(40)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = s.Float64()
		}
		srt := Sorted(xs)
		q := float64(qRaw) / 255
		v := Quantile(srt, q)
		return v >= srt[0] && v <= srt[n-1]
	}, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSummarizeOrderIndependent(t *testing.T) {
	xs := []float64{9, 1, 4, 7, 2, 8, 3, 6, 5}
	ys := []float64{5, 6, 3, 8, 2, 7, 4, 1, 9}
	a, b := Summarize(xs), Summarize(ys)
	if a != b {
		t.Fatalf("summaries differ by sample order: %+v vs %+v", a, b)
	}
	if a.N != 9 || a.Min != 1 || a.Max != 9 || a.Median != 5 || a.Mean != 5 {
		t.Fatalf("unexpected summary %+v", a)
	}
	if a.P25 > a.Median || a.Median > a.P75 || a.P75 > a.P90 || a.P90 > a.P99 {
		t.Fatalf("percentiles not monotone: %+v", a)
	}
}

func TestSummarizeDoesNotMutateInput(t *testing.T) {
	xs := []float64{3, 1, 2}
	Summarize(xs)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatalf("input mutated: %v", xs)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	if got := Summarize(nil); got != (Summary{}) {
		t.Fatalf("empty sample should give zero summary, got %+v", got)
	}
}

func TestSummaryJSONRoundTrip(t *testing.T) {
	in := Summarize([]float64{1, 2, 3, 4, 100})
	b, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{`"n":`, `"mean":`, `"p25":`, `"p50":`, `"p90":`, `"p99":`} {
		if !strings.Contains(string(b), key) {
			t.Fatalf("marshalled summary %s missing key %s", b, key)
		}
	}
	var out Summary
	if err := json.Unmarshal(b, &out); err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Fatalf("round trip mismatch: %+v vs %+v", out, in)
	}
}

func TestSummarizeInts(t *testing.T) {
	got := SummarizeInts([]int{3, 1, 2})
	want := Summarize([]float64{1, 2, 3})
	if got != want {
		t.Fatalf("SummarizeInts = %+v, want %+v", got, want)
	}
	if SummarizeInts(nil) != (Summary{}) {
		t.Fatal("empty int sample should give zero summary")
	}
}
