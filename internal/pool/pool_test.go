package pool

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

func TestMapOrderedResults(t *testing.T) {
	out, err := Map(context.Background(), 3, 17, func(i int) (int, error) {
		return i * i, nil
	})
	if err != nil {
		t.Fatalf("Map: %v", err)
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d, want %d", i, v, i*i)
		}
	}
}

func TestMapBoundsConcurrency(t *testing.T) {
	const workers = 4
	var cur, peak atomic.Int64
	_, err := Map(context.Background(), workers, 64, func(i int) (struct{}, error) {
		n := cur.Add(1)
		for {
			p := peak.Load()
			if n <= p || peak.CompareAndSwap(p, n) {
				break
			}
		}
		defer cur.Add(-1)
		return struct{}{}, nil
	})
	if err != nil {
		t.Fatalf("Map: %v", err)
	}
	if p := peak.Load(); p > workers {
		t.Fatalf("observed %d concurrent tasks, want <= %d", p, workers)
	}
}

func TestMapJoinsAllErrors(t *testing.T) {
	sentinel3 := errors.New("task three failed")
	sentinel7 := errors.New("task seven failed")
	_, err := Map(context.Background(), 2, 10, func(i int) (int, error) {
		switch i {
		case 3:
			return 0, sentinel3
		case 7:
			return 0, sentinel7
		}
		return i, nil
	})
	if !errors.Is(err, sentinel3) || !errors.Is(err, sentinel7) {
		t.Fatalf("joined error should carry both failures, got: %v", err)
	}
}

func TestMapRecoversPanics(t *testing.T) {
	_, err := Map(context.Background(), 2, 4, func(i int) (int, error) {
		if i == 2 {
			panic("boom")
		}
		return i, nil
	})
	if err == nil || !strings.Contains(err.Error(), "panicked: boom") {
		t.Fatalf("panic should surface as error, got: %v", err)
	}
}

func TestMapCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var started atomic.Int64
	var once sync.Once
	_, err := Map(ctx, 1, 100, func(i int) (int, error) {
		started.Add(1)
		if i >= 5 {
			once.Do(cancel)
		}
		return i, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled in joined error, got: %v", err)
	}
	if n := started.Load(); n == 100 {
		t.Fatalf("cancellation should prevent dispatching all tasks")
	}
}

func TestMapZeroTasks(t *testing.T) {
	out, err := Map(context.Background(), 0, 0, func(i int) (int, error) {
		return 0, fmt.Errorf("must not run")
	})
	if err != nil || len(out) != 0 {
		t.Fatalf("empty map: out=%v err=%v", out, err)
	}
}
