// Package pool provides the bounded-concurrency primitives shared by
// the experiment drivers (internal/exp) and the fleet campaign engine
// (internal/campaign): a deterministic indexed map over a worker pool
// with context cancellation and joined (not first-wins) error
// reporting.
package pool

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
)

// DefaultWorkers returns the default worker-pool size.
func DefaultWorkers() int { return runtime.NumCPU() }

// Map runs f(i) for every i in [0, n) on at most workers goroutines
// and returns the results in index order. A workers value < 1 selects
// DefaultWorkers(). All scheduled calls run to completion; indexes not
// yet started when ctx is cancelled are skipped and reported through
// the joined error. Every per-index error is collected and joined with
// errors.Join, so one failure cannot mask another.
func Map[T any](ctx context.Context, workers, n int, f func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	if n == 0 {
		return out, ctx.Err()
	}
	if workers < 1 {
		workers = DefaultWorkers()
	}
	if workers > n {
		workers = n
	}
	errs := make([]error, n)
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				out[i], errs[i] = protect(f, i)
			}
		}()
	}
	cancelled := false
feed:
	for i := 0; i < n; i++ {
		select {
		case idx <- i:
		case <-ctx.Done():
			for j := i; j < n; j++ {
				errs[j] = fmt.Errorf("pool: task %d not started: %w", j, ctx.Err())
			}
			cancelled = true
			break feed
		}
	}
	close(idx)
	wg.Wait()
	if err := errors.Join(errs...); err != nil {
		return out, err
	}
	if cancelled {
		return out, ctx.Err()
	}
	return out, nil
}

// protect runs f(i), converting a panic into an error so one
// panicking task cannot tear down the whole pool.
func protect[T any](f func(i int) (T, error), i int) (out T, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("pool: task %d panicked: %v", i, r)
		}
	}()
	return f(i)
}
