package artifact

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func fragA() *Artifact {
	f := New("A")
	f.SetMeta("unit", "flips")
	f.AddRow("mfr=A").Set("mean", 1.5).SetInt("n", 3).Tag("pattern", "checkered")
	f.AddRow("mfr=A/p=0").Set("v", 0.1)
	f.AddSeries("mfr=A/curve", []float64{3, 2, 1})
	return f
}

func fragB() *Artifact {
	f := New("B")
	f.SetMeta("unit", "flips")
	f.AddRow("mfr=B").Set("mean", 2.5)
	f.AddSeries("mfr=B/curve", []float64{9})
	return f
}

func TestMergeOrderIndependent(t *testing.T) {
	m1, err := Merge("fig0", 1, fragA(), fragB())
	if err != nil {
		t.Fatal(err)
	}
	m2, err := Merge("fig0", 1, fragB(), fragA())
	if err != nil {
		t.Fatal(err)
	}
	b1, err := m1.Encode()
	if err != nil {
		t.Fatal(err)
	}
	b2, err := m2.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatalf("merge depends on fragment order:\n%s\nvs\n%s", b1, b2)
	}
	if got := m1.Shards; len(got) != 2 || got[0] != "A" || got[1] != "B" {
		t.Fatalf("shards = %v", got)
	}
	if m1.Row("mfr=B").V("mean") != 2.5 {
		t.Fatal("row lookup broken")
	}
	if pts := m1.SeriesPoints("mfr=A/curve"); len(pts) != 3 || pts[0] != 3 {
		t.Fatalf("series lookup = %v", pts)
	}
	if rows := m1.RowsWithPrefix("mfr=A"); len(rows) != 2 || rows[0].Key != "mfr=A" {
		t.Fatalf("prefix scan = %v", rows)
	}
}

func TestMergeRejectsConflicts(t *testing.T) {
	if _, err := Merge("fig0", 1, fragA(), fragA()); err == nil {
		t.Fatal("duplicate shard accepted")
	}
	other := fragB()
	other.Shard = "C"
	other.SetMeta("unit", "volts")
	if _, err := Merge("fig0", 1, fragA(), other); err == nil {
		t.Fatal("conflicting meta accepted")
	}
	alien := fragB()
	alien.Experiment = "fig9"
	if _, err := Merge("fig0", 1, fragA(), alien); err == nil {
		t.Fatal("fragment from another experiment accepted")
	}
	stale := fragB()
	stale.Experiment = "fig0"
	stale.Schema = 2
	if _, err := Merge("fig0", 1, fragA(), stale); err == nil {
		t.Fatal("fragment with mismatched schema accepted")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	m, err := Merge("fig0", 1, fragA(), fragB())
	if err != nil {
		t.Fatal(err)
	}
	// Exercise float64 exactness through the JSON round trip.
	m.Rows[0].Set("awkward", 0.1+0.2)
	m.Rows[0].Set("tiny", math.SmallestNonzeroFloat64)
	buf, err := m.Encode()
	if err != nil {
		t.Fatal(err)
	}
	back, err := Decode(buf)
	if err != nil {
		t.Fatal(err)
	}
	buf2, err := back.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, buf2) {
		t.Fatal("decode/encode not byte-stable")
	}
	if back.Row("mfr=A").V("awkward") != 0.1+0.2 {
		t.Fatal("float64 not exact through JSON")
	}
}

func TestDecodeRejectsUnknownFormat(t *testing.T) {
	if _, err := Decode([]byte(`{"format":99,"experiment":"x"}`)); err == nil {
		t.Fatal("future format version accepted")
	}
	if _, err := Decode([]byte(`{not json`)); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestEncodeTSV(t *testing.T) {
	m, err := Merge("fig0", 1, fragA(), fragB())
	if err != nil {
		t.Fatal(err)
	}
	tsv := string(m.EncodeTSV())
	for _, want := range []string{
		"artifact\tfig0\tschema=1\tformat=1\n",
		"meta\tunit\tflips\n",
		"label\tmfr=A\tpattern\tcheckered\n",
		"value\tmfr=A\tmean\t1.5\n",
		"point\tmfr=A/curve\t0\t3\n",
	} {
		if !strings.Contains(tsv, want) {
			t.Fatalf("TSV missing %q:\n%s", want, tsv)
		}
	}
	if m2, _ := Merge("fig0", 1, fragB(), fragA()); !bytes.Equal(m.EncodeTSV(), m2.EncodeTSV()) {
		t.Fatal("TSV not deterministic")
	}
}

func TestFilterAndSortRows(t *testing.T) {
	rows := []Row{
		{Key: "mfr=B/r=1", Labels: map[string]string{"mfr": "B"}, Values: map[string]float64{"hc": 30}},
		{Key: "mfr=A/r=0", Labels: map[string]string{"mfr": "A"}, Values: map[string]float64{"hc": 10}},
		{Key: "mfr=A/r=1", Labels: map[string]string{"mfr": "A"}, Values: map[string]float64{"hc": 10}},
		{Key: "mfr=B/r=0", Labels: map[string]string{"mfr": "B"}, Values: map[string]float64{"hc": 20}},
	}
	got := Filter(rows, KeyPrefix("mfr=A"))
	if len(got) != 2 || got[0].Key != "mfr=A/r=0" || got[1].Key != "mfr=A/r=1" {
		t.Fatalf("KeyPrefix filter = %v", got)
	}
	if got := Filter(rows, HasLabel("mfr", "B")); len(got) != 2 {
		t.Fatalf("HasLabel filter = %v", got)
	}
	if got := Filter(rows, func(Row) bool { return false }); got != nil {
		t.Fatalf("empty filter should be nil, got %v", got)
	}

	// Filter must not alias or reorder the input.
	if rows[0].Key != "mfr=B/r=1" {
		t.Fatal("Filter mutated its input")
	}

	sorted := Filter(rows, func(Row) bool { return true })
	SortRowsByKey(sorted)
	want := []string{"mfr=A/r=0", "mfr=A/r=1", "mfr=B/r=0", "mfr=B/r=1"}
	for i, k := range want {
		if sorted[i].Key != k {
			t.Fatalf("SortRowsByKey order = %v, want %v", sorted, want)
		}
	}

	// Stability: equal sort values keep their input order.
	byHC := Filter(rows, func(Row) bool { return true })
	SortRows(byHC, func(a, b Row) bool { return a.V("hc") < b.V("hc") })
	if byHC[0].Key != "mfr=A/r=0" || byHC[1].Key != "mfr=A/r=1" {
		t.Fatalf("SortRows not stable: %v, %v", byHC[0].Key, byHC[1].Key)
	}
}

func TestRowsWithPrefixUsesFilter(t *testing.T) {
	a := New("A")
	a.AddRow("mfr=A/x").Set("v", 1)
	a.AddRow("mfr=B/x").Set("v", 2)
	a.AddRow("mfr=A/y").Set("v", 3)
	got := a.RowsWithPrefix("mfr=A")
	if len(got) != 2 || got[0].Key != "mfr=A/x" || got[1].Key != "mfr=A/y" {
		t.Fatalf("RowsWithPrefix = %v", got)
	}
}
