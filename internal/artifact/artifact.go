// Package artifact defines the uniform result structure every
// experiment emits: a schema-versioned set of keyed rows and series
// that serializes deterministically to JSON and TSV. Experiments
// compute fragments (one per shard, typically one per manufacturer);
// fragments merge order-independently into the full artifact, so a
// campaign can measure shards in any order — or resume half-done —
// and still publish bit-identical bytes.
package artifact

import (
	"encoding/json"
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// FormatVersion identifies the artifact container layout itself, as
// distinct from each experiment's Schema: readers reject containers
// from a future format the way the campaign checkpoint loader rejects
// unknown checkpoint versions.
const FormatVersion = 1

// Artifact is one experiment's (or one shard's) structured result.
type Artifact struct {
	// Format is the container layout version (FormatVersion).
	Format int `json:"format"`
	// Experiment is the registry ID the artifact belongs to.
	Experiment string `json:"experiment,omitempty"`
	// Schema is the experiment's artifact schema version: it changes
	// when the experiment's keys or value semantics change, and it is
	// folded into campaign identity so stale checkpoints are rejected.
	Schema int `json:"schema,omitempty"`
	// Shard names the fragment's shard; empty on merged artifacts.
	Shard string `json:"shard,omitempty"`
	// Shards lists the merged fragments in canonical order; empty on
	// fragments.
	Shards []string `json:"shards,omitempty"`
	// Meta holds scalar string facts (thresholds, units, captions).
	Meta map[string]string `json:"meta,omitempty"`
	// Rows are the keyed records; order is canonical after Merge
	// (fragments sorted by shard, construction order within one).
	Rows []Row `json:"rows,omitempty"`
	// Series are keyed numeric vectors (distributions, curves, grids).
	Series []Series `json:"series,omitempty"`
}

// Row is one keyed record: numeric values plus string labels.
type Row struct {
	Key    string             `json:"key"`
	Labels map[string]string  `json:"labels,omitempty"`
	Values map[string]float64 `json:"values,omitempty"`
}

// Series is one keyed numeric vector.
type Series struct {
	Key    string    `json:"key"`
	Points []float64 `json:"points"`
}

// New returns an empty fragment for the given shard.
func New(shard string) *Artifact {
	return &Artifact{Format: FormatVersion, Shard: shard}
}

// SetMeta records a scalar string fact.
func (a *Artifact) SetMeta(name, value string) {
	if a.Meta == nil {
		a.Meta = map[string]string{}
	}
	a.Meta[name] = value
}

// AddRow appends a row and returns it for fluent population.
func (a *Artifact) AddRow(key string) *Row {
	a.Rows = append(a.Rows, Row{Key: key})
	return &a.Rows[len(a.Rows)-1]
}

// AddSeries appends a series under the given key.
func (a *Artifact) AddSeries(key string, points []float64) {
	a.Series = append(a.Series, Series{Key: key, Points: points})
}

// Set records a numeric value on the row.
func (r *Row) Set(name string, v float64) *Row {
	if r.Values == nil {
		r.Values = map[string]float64{}
	}
	r.Values[name] = v
	return r
}

// SetInt records an integer value on the row (stored as float64;
// exact below 2⁵³).
func (r *Row) SetInt(name string, v int64) *Row { return r.Set(name, float64(v)) }

// Tag records a string label on the row.
func (r *Row) Tag(name, value string) *Row {
	if r.Labels == nil {
		r.Labels = map[string]string{}
	}
	r.Labels[name] = value
	return r
}

// V returns a row value (0 when absent).
func (r Row) V(name string) float64 { return r.Values[name] }

// Int returns a row value as an int64.
func (r Row) Int(name string) int64 { return int64(r.Values[name]) }

// Label returns a row label ("" when absent).
func (r Row) Label(name string) string { return r.Labels[name] }

// Row returns the row with the given key, or nil.
func (a *Artifact) Row(key string) *Row {
	for i := range a.Rows {
		if a.Rows[i].Key == key {
			return &a.Rows[i]
		}
	}
	return nil
}

// Filter returns the rows satisfying pred, in input order. It is the
// shared selection primitive behind RowsWithPrefix (the Render path)
// and the store's row-query endpoint.
func Filter(rows []Row, pred func(Row) bool) []Row {
	var out []Row
	for _, r := range rows {
		if pred(r) {
			out = append(out, r)
		}
	}
	return out
}

// SortRows stably sorts rows in place by less. Stability matters:
// rows sharing a sort value keep their canonical artifact order, so
// two queries over the same artifact always serialize identically.
func SortRows(rows []Row, less func(a, b Row) bool) {
	sort.SliceStable(rows, func(i, j int) bool { return less(rows[i], rows[j]) })
}

// SortRowsByKey stably sorts rows in place by ascending key — the
// canonical order of query results.
func SortRowsByKey(rows []Row) {
	SortRows(rows, func(a, b Row) bool { return a.Key < b.Key })
}

// KeyPrefix returns the predicate matching rows whose key starts with
// prefix.
func KeyPrefix(prefix string) func(Row) bool {
	return func(r Row) bool { return strings.HasPrefix(r.Key, prefix) }
}

// HasLabel returns the predicate matching rows carrying the given
// label value.
func HasLabel(name, value string) func(Row) bool {
	return func(r Row) bool { return r.Labels[name] == value }
}

// RowsWithPrefix returns the rows whose key starts with prefix, in
// artifact order.
func (a *Artifact) RowsWithPrefix(prefix string) []Row {
	return Filter(a.Rows, KeyPrefix(prefix))
}

// SeriesPoints returns the points of the series with the given key,
// or nil.
func (a *Artifact) SeriesPoints(key string) []float64 {
	for _, s := range a.Series {
		if s.Key == key {
			return s.Points
		}
	}
	return nil
}

// Merge combines shard fragments into the experiment's full artifact.
// Fragments are ordered by shard name, so the result is independent
// of the order they were computed or recovered in; duplicate shards,
// row keys, or series keys are structural errors, as are conflicting
// meta values.
func Merge(experiment string, schema int, frags ...*Artifact) (*Artifact, error) {
	merged := &Artifact{Format: FormatVersion, Experiment: experiment, Schema: schema}
	sorted := make([]*Artifact, 0, len(frags))
	for _, f := range frags {
		if f == nil {
			continue
		}
		if f.Experiment != "" && f.Experiment != experiment {
			return nil, fmt.Errorf("artifact: fragment from experiment %q cannot merge into %q", f.Experiment, experiment)
		}
		if f.Schema != 0 && f.Schema != schema {
			return nil, fmt.Errorf("artifact: fragment schema v%d cannot merge into %s schema v%d", f.Schema, experiment, schema)
		}
		sorted = append(sorted, f)
	}
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Shard < sorted[j].Shard })
	rowKeys := map[string]bool{}
	seriesKeys := map[string]bool{}
	shardSeen := map[string]bool{}
	for _, f := range sorted {
		if shardSeen[f.Shard] {
			return nil, fmt.Errorf("artifact: duplicate shard %q in %s", f.Shard, experiment)
		}
		shardSeen[f.Shard] = true
		merged.Shards = append(merged.Shards, f.Shard)
		for name, v := range f.Meta {
			if old, ok := merged.Meta[name]; ok && old != v {
				return nil, fmt.Errorf("artifact: meta %q conflicts across shards (%q vs %q)", name, old, v)
			}
			merged.SetMeta(name, v)
		}
		for _, r := range f.Rows {
			if rowKeys[r.Key] {
				return nil, fmt.Errorf("artifact: duplicate row key %q in %s", r.Key, experiment)
			}
			rowKeys[r.Key] = true
			merged.Rows = append(merged.Rows, r)
		}
		for _, s := range f.Series {
			if seriesKeys[s.Key] {
				return nil, fmt.Errorf("artifact: duplicate series key %q in %s", s.Key, experiment)
			}
			seriesKeys[s.Key] = true
			merged.Series = append(merged.Series, s)
		}
	}
	return merged, nil
}

// Encode renders the artifact as indented, deterministic JSON (struct
// fields in declaration order, map keys sorted, float64 round-trip
// exact) with a trailing newline.
func (a *Artifact) Encode() ([]byte, error) {
	buf, err := json.MarshalIndent(a, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(buf, '\n'), nil
}

// EncodeCompact renders the artifact as single-line JSON for
// embedding in campaign records.
func (a *Artifact) EncodeCompact() ([]byte, error) { return json.Marshal(a) }

// Decode parses an artifact, rejecting containers whose format
// version this reader does not understand.
func Decode(data []byte) (*Artifact, error) {
	var a Artifact
	if err := json.Unmarshal(data, &a); err != nil {
		return nil, fmt.Errorf("artifact: %w", err)
	}
	if a.Format != FormatVersion {
		return nil, fmt.Errorf("artifact: unknown format version %d (reader supports %d)", a.Format, FormatVersion)
	}
	return &a, nil
}

// num formats a float64 with full round-trip precision.
func num(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// EncodeTSV renders the artifact in a long-form TSV: one header line,
// then meta, row-label, row-value and series-point lines, each
// self-describing — friendly to cut/awk/join pipelines.
func (a *Artifact) EncodeTSV() []byte {
	var b strings.Builder
	fmt.Fprintf(&b, "artifact\t%s\tschema=%d\tformat=%d\n", a.Experiment, a.Schema, a.Format)
	for _, name := range sortedNames(a.Meta) {
		fmt.Fprintf(&b, "meta\t%s\t%s\n", name, a.Meta[name])
	}
	for _, r := range a.Rows {
		for _, name := range sortedNames(r.Labels) {
			fmt.Fprintf(&b, "label\t%s\t%s\t%s\n", r.Key, name, r.Labels[name])
		}
		names := make([]string, 0, len(r.Values))
		for name := range r.Values {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			fmt.Fprintf(&b, "value\t%s\t%s\t%s\n", r.Key, name, num(r.Values[name]))
		}
	}
	for _, s := range a.Series {
		for i, p := range s.Points {
			fmt.Fprintf(&b, "point\t%s\t%d\t%s\n", s.Key, i, num(p))
		}
	}
	return []byte(b.String())
}

func sortedNames(m map[string]string) []string {
	names := make([]string, 0, len(m))
	for name := range m {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
