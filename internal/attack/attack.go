// Package attack implements RowHammer access patterns and the three
// attack improvements the paper derives from its observations (§8.1):
//
//  1. Temperature-targeted row selection: pick the victim row whose
//     HCfirst is lowest at the temperature the attack will run at.
//  2. Temperature-triggered attacks: use cells with narrow vulnerable
//     temperature ranges as covert thermometers that arm the main
//     attack only at a chosen temperature.
//  3. Extended aggressor on-time: issue extra READs per aggressor
//     activation to stretch tAggOn, increasing BER and dropping
//     HCfirst below the threshold defenses were configured for.
package attack

import (
	"fmt"
	"sort"

	rh "rowhammer"
)

// PatternShape enumerates multi-aggressor access shapes.
type PatternShape int

// Access shapes.
const (
	SingleSided PatternShape = iota
	DoubleSided
	ManySided
)

// AggressorRows returns the physical aggressor rows of a shape around
// a victim. ManySided uses n aggressors interleaved around the victim
// (TRRespass-style); n is ignored for the other shapes.
func AggressorRows(shape PatternShape, victim, n int) []int {
	switch shape {
	case SingleSided:
		return []int{victim - 1}
	case DoubleSided:
		return []int{victim - 1, victim + 1}
	case ManySided:
		if n < 2 {
			n = 2
		}
		var rows []int
		for i := 0; i < n; i++ {
			off := (i/2 + 1) * 2
			if i%2 == 0 {
				rows = append(rows, victim-off+1)
			} else {
				rows = append(rows, victim+off-1)
			}
		}
		return rows
	default:
		return nil
	}
}

// RowPlan is one candidate victim with its temperature-resolved
// HCfirst profile.
type RowPlan struct {
	Row int
	// HCByTemp[i] is the row's HCfirst at Temps[i] (0 = not
	// vulnerable).
	HCByTemp []int64
}

// Planner implements Attack Improvement 1: given per-row HCfirst
// profiles across temperatures, choose the best victim for the
// temperature the attack will execute at.
type Planner struct {
	Temps []float64
	Rows  []RowPlan
}

// BestRowAt returns the row with the lowest non-zero HCfirst at the
// temperature closest to tempC, and that HCfirst.
func (p *Planner) BestRowAt(tempC float64) (RowPlan, int64, error) {
	ti := p.tempIndex(tempC)
	best := -1
	var bestHC int64
	for i, r := range p.Rows {
		hc := r.HCByTemp[ti]
		if hc <= 0 {
			continue
		}
		if best < 0 || hc < bestHC {
			best, bestHC = i, hc
		}
	}
	if best < 0 {
		return RowPlan{}, 0, fmt.Errorf("attack: no vulnerable row at %.0f °C", tempC)
	}
	return p.Rows[best], bestHC, nil
}

// MedianRowAt returns the median vulnerable row's HCfirst at tempC —
// the expected cost of an *uninformed* row choice.
func (p *Planner) MedianRowAt(tempC float64) (int64, error) {
	ti := p.tempIndex(tempC)
	var hcs []int64
	for _, r := range p.Rows {
		if hc := r.HCByTemp[ti]; hc > 0 {
			hcs = append(hcs, hc)
		}
	}
	if len(hcs) == 0 {
		return 0, fmt.Errorf("attack: no vulnerable rows at %.0f °C", tempC)
	}
	sort.Slice(hcs, func(i, j int) bool { return hcs[i] < hcs[j] })
	return hcs[len(hcs)/2], nil
}

func (p *Planner) tempIndex(tempC float64) int {
	best := 0
	for i, t := range p.Temps {
		if abs(t-tempC) < abs(p.Temps[best]-tempC) {
			best = i
		}
	}
	return best
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// BuildPlanner profiles the given rows at the given temperatures.
func BuildPlanner(t *rh.Tester, bank int, rows []int, temps []float64) (*Planner, error) {
	hcByTemp, err := t.HCFirstAtTemps(bank, rows, temps, rh.HCFirstConfig{
		Pattern: rh.PatCheckered,
	}, 1)
	if err != nil {
		return nil, err
	}
	p := &Planner{Temps: temps}
	for ri, row := range rows {
		rp := RowPlan{Row: row, HCByTemp: make([]int64, len(temps))}
		for ti := range temps {
			rp.HCByTemp[ti] = hcByTemp[ti][ri]
		}
		p.Rows = append(p.Rows, rp)
	}
	return p, nil
}
