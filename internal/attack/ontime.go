package attack

import (
	"rowhammer/internal/dram"
)

// Attack Improvement 3: extend the aggressor row's on-time by issuing
// extra READ commands per activation. Each READ forces the row to stay
// open for at least tCCD more; 10–15 READs stretch tAggOn to ≈5× tRAS,
// which Obsv. 8 shows increases BER up to 10.2× and lowers HCfirst by
// ≈36% on average — below the threshold a defense was configured for.

// OnTimeWithReads returns the effective aggressor on-time when k READ
// commands are issued after each activation: the row must stay open
// tRCD for the first column access plus k·tCCD for the burst, no less
// than tRAS.
func OnTimeWithReads(tm dram.Timing, k int) dram.Picos {
	if k <= 0 {
		return tm.TRAS
	}
	on := tm.TRCD + dram.Picos(k)*tm.TCCD + tm.TRTP
	if on < tm.TRAS {
		on = tm.TRAS
	}
	return on
}

// ReadsForOnTime returns the number of READs needed to hold the row
// open for at least the target on-time.
func ReadsForOnTime(tm dram.Timing, target dram.Picos) int {
	if target <= tm.TRAS {
		return 0
	}
	k := int((target - tm.TRCD - tm.TRTP + tm.TCCD - 1) / tm.TCCD)
	if k < 1 {
		k = 1
	}
	return k
}
