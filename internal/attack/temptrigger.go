package attack

import (
	"fmt"

	rh "rowhammer"
)

// TempTrigger implements Attack Improvement 2: a RowHammer-based
// thermometer. Cells vulnerable only in a narrow temperature range
// act as exact-temperature sensors; cells whose range's lower bound is
// at or above a target temperature act as above-threshold sensors.
// The attacker hammers the trigger cell's row and reads the cell: a
// flip means the condition holds, arming the main attack.
type TempTrigger struct {
	Bank int
	// Row/Bit locate the sensor cell (physical row, bit within row).
	Row, Bit int
	// Hammers is the probe strength, chosen comfortably above the
	// cell's HCfirst so a non-flip indicates temperature (not hammer
	// count) gating.
	Hammers int64
	Pattern rh.PatternKind
}

// TriggerKind selects the sensing semantics.
type TriggerKind int

// Trigger kinds.
const (
	// ExactTemperature fires only inside a narrow range around the
	// target (cells with range width ≤ one test step).
	ExactTemperature TriggerKind = iota
	// AtOrAbove fires at or above the target (cells whose lower bound
	// is ≥ the target).
	AtOrAbove
)

// FindTrigger scans a temperature sweep's per-cell observations for a
// sensor cell of the requested kind at the target temperature.
func FindTrigger(sweep *rh.TempSweepResult, kind TriggerKind, targetC float64, bank int, hammers int64, pat rh.PatternKind) (*TempTrigger, error) {
	ti := -1
	for i, t := range sweep.Temps {
		if t == targetC {
			ti = i
		}
	}
	if ti < 0 {
		return nil, fmt.Errorf("attack: target %.0f °C not in sweep", targetC)
	}
	for cell, mask := range sweep.Cells {
		lo, hi := maskBounds(mask)
		switch kind {
		case ExactTemperature:
			// Flips at the target and nowhere else.
			if lo == ti && hi == ti {
				return &TempTrigger{Bank: bank, Row: cell.Row, Bit: cell.Bit, Hammers: hammers, Pattern: pat}, nil
			}
		case AtOrAbove:
			// Lower bound at the target; upper bound reaching the top
			// of the tested range (censored: extends above).
			if lo == ti && hi == len(sweep.Temps)-1 {
				return &TempTrigger{Bank: bank, Row: cell.Row, Bit: cell.Bit, Hammers: hammers, Pattern: pat}, nil
			}
		}
	}
	return nil, fmt.Errorf("attack: no %v trigger cell at %.0f °C", kind, targetC)
}

func maskBounds(mask uint32) (lo, hi int) {
	lo, hi = -1, -1
	for i := 0; i < 32; i++ {
		if mask&(1<<uint(i)) != 0 {
			if lo < 0 {
				lo = i
			}
			hi = i
		}
	}
	return lo, hi
}

// Probe hammers the sensor row and reports whether the sensor cell
// flipped — i.e. whether the temperature condition currently holds.
func (tr *TempTrigger) Probe(t *rh.Tester, trial uint64) (bool, error) {
	res, err := t.Hammer(rh.HammerConfig{
		Bank:       tr.Bank,
		VictimPhys: tr.Row,
		Hammers:    tr.Hammers,
		Pattern:    tr.Pattern,
		Trial:      trial,
	})
	if err != nil {
		return false, err
	}
	for _, b := range res.Victim.Bits {
		if b == tr.Bit {
			return true, nil
		}
	}
	return false, nil
}
