package attack

import (
	"testing"

	rh "rowhammer"
	"rowhammer/internal/dram"
)

func smallBench(t *testing.T, mfr string, seed uint64) *rh.Bench {
	t.Helper()
	b, err := rh.NewBench(rh.BenchConfig{
		Profile: rh.ProfileByName(mfr),
		Seed:    seed,
		Geometry: rh.Geometry{
			Banks: 1, RowsPerBank: 256, SubarrayRows: 256,
			Chips: 8, ChipWidth: 8, ColumnsPerRow: 64,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestAggressorRows(t *testing.T) {
	if got := AggressorRows(SingleSided, 100, 0); len(got) != 1 || got[0] != 99 {
		t.Fatalf("single-sided = %v", got)
	}
	if got := AggressorRows(DoubleSided, 100, 0); len(got) != 2 || got[0] != 99 || got[1] != 101 {
		t.Fatalf("double-sided = %v", got)
	}
	many := AggressorRows(ManySided, 100, 4)
	if len(many) != 4 {
		t.Fatalf("many-sided = %v", many)
	}
	seen := map[int]bool{}
	for _, r := range many {
		if r == 100 || seen[r] {
			t.Fatalf("many-sided rows invalid: %v", many)
		}
		seen[r] = true
	}
}

func TestPlannerInformedBeatsUninformed(t *testing.T) {
	b := smallBench(t, "A", 31)
	tst := rh.NewTester(b)
	rows := []int{20, 40, 60, 80, 100, 120, 140, 160}
	planner, err := BuildPlanner(tst, 0, rows, []float64{50, 70, 90})
	if err != nil {
		t.Fatal(err)
	}
	for _, temp := range []float64{50, 90} {
		best, bestHC, err := planner.BestRowAt(temp)
		if err != nil {
			t.Fatal(err)
		}
		median, err := planner.MedianRowAt(temp)
		if err != nil {
			t.Fatal(err)
		}
		if bestHC > median {
			t.Fatalf("at %.0f °C informed choice %d (row %d) worse than median %d", temp, bestHC, best.Row, median)
		}
	}
}

func TestPlannerNoVulnerableRows(t *testing.T) {
	p := &Planner{Temps: []float64{50}, Rows: []RowPlan{{Row: 1, HCByTemp: []int64{0}}}}
	if _, _, err := p.BestRowAt(50); err == nil {
		t.Fatal("expected error")
	}
	if _, err := p.MedianRowAt(50); err == nil {
		t.Fatal("expected error")
	}
}

func TestTempTriggerDetectsTemperature(t *testing.T) {
	b := smallBench(t, "A", 33)
	tst := rh.NewTester(b)
	victims := []int{30, 60, 90, 120, 150, 180, 210}
	sweep, err := tst.TemperatureSweep(rh.TempSweepConfig{
		Bank: 0, Victims: victims, Hammers: 250_000,
		Pattern: rh.PatCheckered, Repetitions: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	trig, err := FindTrigger(sweep, AtOrAbove, 70, 0, 250_000, rh.PatCheckered)
	if err != nil {
		t.Skipf("no at-or-above trigger cell in this sample: %v", err)
	}
	// Below target: must not fire.
	if err := b.SetTemperature(55); err != nil {
		t.Fatal(err)
	}
	fired, err := trig.Probe(tst, 1)
	if err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Fatal("trigger fired below target temperature")
	}
	// At/above target: must fire.
	if err := b.SetTemperature(80); err != nil {
		t.Fatal(err)
	}
	fired, err = trig.Probe(tst, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !fired {
		t.Fatal("trigger did not fire above target temperature")
	}
}

func TestFindTriggerErrors(t *testing.T) {
	sweep := &rh.TempSweepResult{Temps: []float64{50, 55}, Cells: map[rh.CellID]uint32{}}
	if _, err := FindTrigger(sweep, ExactTemperature, 60, 0, 1000, rh.PatCheckered); err == nil {
		t.Fatal("expected error for temperature outside sweep")
	}
	if _, err := FindTrigger(sweep, ExactTemperature, 50, 0, 1000, rh.PatCheckered); err == nil {
		t.Fatal("expected error with no cells")
	}
}

func TestOnTimeWithReads(t *testing.T) {
	tm := dram.DDR4Timing()
	if got := OnTimeWithReads(tm, 0); got != tm.TRAS {
		t.Fatalf("k=0 on-time = %v", got)
	}
	// 10–15 READs should roughly 3–5× the baseline on-time (§8.1).
	on10 := OnTimeWithReads(tm, 10)
	on15 := OnTimeWithReads(tm, 15)
	if on10 <= tm.TRAS || on15 <= on10 {
		t.Fatalf("on-times not increasing: %v %v", on10, on15)
	}
	ratio := float64(on15) / float64(tm.TRAS)
	if ratio < 2 || ratio > 6 {
		t.Fatalf("15-read on-time ratio %v, want ≈3–5×", ratio)
	}
}

func TestReadsForOnTimeInvertsOnTime(t *testing.T) {
	tm := dram.DDR4Timing()
	for _, target := range []dram.Picos{dram.PicosFromNs(64.5), dram.PicosFromNs(154.5)} {
		k := ReadsForOnTime(tm, target)
		if got := OnTimeWithReads(tm, k); got < target {
			t.Fatalf("k=%d gives %v < target %v", k, got, target)
		}
	}
	if ReadsForOnTime(tm, tm.TRAS) != 0 {
		t.Fatal("baseline target needs no extra reads")
	}
}

func TestExtendedOnTimeBeatsBaselineDefenseThreshold(t *testing.T) {
	// The headline of Improvement 3: with extended on-time, flips
	// occur at hammer counts *below* the baseline HCfirst a defense
	// was configured with.
	b := smallBench(t, "A", 35)
	tst := rh.NewTester(b)
	const victim = 100
	base, err := tst.HCFirst(rh.HCFirstConfig{Bank: 0, VictimPhys: victim, Pattern: rh.PatCheckered, Trial: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !base.Found {
		t.Skip("row not vulnerable")
	}
	tm := b.Timing()
	onNs := OnTimeWithReads(tm, 15).Nanoseconds()
	ext, err := tst.HCFirst(rh.HCFirstConfig{
		Bank: 0, VictimPhys: victim, Pattern: rh.PatCheckered, Trial: 1, AggOnNs: onNs,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !ext.Found || ext.HCfirst >= base.HCfirst {
		t.Fatalf("extended on-time HCfirst %d not below baseline %d", ext.HCfirst, base.HCfirst)
	}
}

func TestFindTriggerExactTemperature(t *testing.T) {
	// Synthetic sweep: one cell flips only at index 4 (70 °C), another
	// across the whole range.
	sweep := &rh.TempSweepResult{
		Temps: []float64{50, 55, 60, 65, 70, 75, 80, 85, 90},
		Cells: map[rh.CellID]uint32{
			{Row: 10, Bit: 3}: 1 << 4,       // exactly 70 °C
			{Row: 11, Bit: 7}: (1 << 9) - 1, // full range
		},
	}
	trig, err := FindTrigger(sweep, ExactTemperature, 70, 0, 1000, rh.PatCheckered)
	if err != nil {
		t.Fatal(err)
	}
	if trig.Row != 10 || trig.Bit != 3 {
		t.Fatalf("picked wrong cell: row %d bit %d", trig.Row, trig.Bit)
	}
	// No exact cell at 55 °C (the full-range cell is not exact).
	if _, err := FindTrigger(sweep, ExactTemperature, 55, 0, 1000, rh.PatCheckered); err == nil {
		t.Fatal("expected no exact trigger at 55 °C")
	}
	// At-or-above at 50 °C: the full-range cell qualifies (lo==50,
	// censored top).
	above, err := FindTrigger(sweep, AtOrAbove, 50, 0, 1000, rh.PatCheckered)
	if err != nil {
		t.Fatal(err)
	}
	if above.Row != 11 {
		t.Fatalf("picked row %d for at-or-above", above.Row)
	}
}
