package dram

// Timing holds the subset of JEDEC timing parameters the study
// exercises. All values are minimums unless noted.
type Timing struct {
	// TCK is the command-bus granularity SoftMC can issue at
	// (1.25 ns for the DDR4 Alveo setup, 2.5 ns for DDR3 ML605).
	TCK Picos
	// TRCD: ACT to first RD/WR to the same bank.
	TRCD Picos
	// TRAS: ACT to PRE of the same bank (minimum row-open time).
	TRAS Picos
	// TRP: PRE to next ACT of the same bank.
	TRP Picos
	// TRC: ACT to ACT of the same bank (>= TRAS+TRP).
	TRC Picos
	// TCCD: column command to column command.
	TCCD Picos
	// TRTP: RD to PRE of the same bank.
	TRTP Picos
	// TWR: end of WR to PRE of the same bank (write recovery).
	TWR Picos
	// TRRD: ACT to ACT across banks.
	TRRD Picos
	// TRFC: REF to any command.
	TRFC Picos
	// TREFW: the refresh window within which every row must be
	// refreshed to guarantee retention (64 ms at <= 85C).
	TREFW Picos
}

// DDR4Timing returns DDR4 timings consistent with the tested modules:
// the paper's baseline aggressor on-time is tRAS = 34.5 ns and
// off-time is tRP = 16.5 ns. The controller clock is 1.5 ns — the
// coarsest grid containing every aggressor-time test point of the
// study (34.5+30k ns on, 16.5+6k ns off); the real SoftMC DDR4 port
// offers 1.25 ns, which cannot express 34.5 ns exactly.
func DDR4Timing() Timing {
	return Timing{
		TCK:   PicosFromNs(1.5),
		TRCD:  PicosFromNs(13.75),
		TRAS:  PicosFromNs(34.5),
		TRP:   PicosFromNs(16.5),
		TRC:   PicosFromNs(51.0),
		TCCD:  PicosFromNs(5.0),
		TRTP:  PicosFromNs(7.5),
		TWR:   PicosFromNs(15.0),
		TRRD:  PicosFromNs(5.0),
		TRFC:  PicosFromNs(350.0),
		TREFW: 64 * Millisecond,
	}
}

// DDR3Timing returns DDR3-1600-class timings (SoftMC ML605 setup).
func DDR3Timing() Timing {
	return Timing{
		TCK:   PicosFromNs(2.5),
		TRCD:  PicosFromNs(13.75),
		TRAS:  PicosFromNs(35.0),
		TRP:   PicosFromNs(13.75),
		TRC:   PicosFromNs(48.75),
		TCCD:  PicosFromNs(5.0),
		TRTP:  PicosFromNs(7.5),
		TWR:   PicosFromNs(15.0),
		TRRD:  PicosFromNs(6.0),
		TRFC:  PicosFromNs(260.0),
		TREFW: 64 * Millisecond,
	}
}

// Validate reports whether the timing set is self-consistent.
func (t Timing) Validate() error {
	if t.TCK <= 0 {
		return &ProtocolError{Msg: "non-positive tCK"}
	}
	if t.TRC < t.TRAS+t.TRP {
		return &ProtocolError{Msg: "tRC < tRAS + tRP"}
	}
	for _, p := range []Picos{t.TRCD, t.TRAS, t.TRP, t.TCCD, t.TRTP, t.TWR, t.TRRD, t.TRFC, t.TREFW} {
		if p <= 0 {
			return &ProtocolError{Msg: "non-positive timing parameter"}
		}
	}
	return nil
}

// HammerPeriod returns the minimum time between successive activations
// when hammering with the given on/off times: one full
// open(tAggOn)+precharge(tAggOff) cycle, no less than tRC.
func (t Timing) HammerPeriod(aggOn, aggOff Picos) Picos {
	if aggOn < t.TRAS {
		aggOn = t.TRAS
	}
	if aggOff < t.TRP {
		aggOff = t.TRP
	}
	p := aggOn + aggOff
	if p < t.TRC {
		p = t.TRC
	}
	return p
}
