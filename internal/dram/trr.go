package dram

import "rowhammer/internal/rng"

// TRRConfig configures the in-DRAM Target Row Refresh sampler.
// Real TRR implementations are proprietary; this model captures the
// structure TRRespass reverse engineered: a small table of sampled
// aggressor candidates, refreshed opportunistically during REF.
// The study neutralizes TRR by never issuing REF (§4.2), which this
// model reproduces exactly: no REF, no targeted refresh.
type TRRConfig struct {
	// TableSize is the number of aggressor candidates tracked per bank.
	TableSize int
	// SampleProb is the probability an activation is sampled into the
	// table (probabilistic samplers); 1.0 gives a counter-like tracker.
	SampleProb float64
	// Threshold is the activation count at which a tracked row is
	// treated as an aggressor during the next REF.
	Threshold int64
	// Seed feeds the sampler's PRNG.
	Seed uint64
}

// DefaultTRRConfig mirrors a mid-2010s DDR4 TRR: 4-entry table,
// sparse sampling, 32K threshold.
func DefaultTRRConfig() TRRConfig {
	return TRRConfig{TableSize: 4, SampleProb: 1.0 / 9, Threshold: 32768, Seed: 1}
}

// trrEntry is one tracked aggressor candidate.
type trrEntry struct {
	row   int
	count int64
}

// trrSampler is the per-bank TRR state.
type trrSampler struct {
	cfg     TRRConfig
	entries []trrEntry
	rnd     *rng.Stream
}

func newTRRSampler(cfg TRRConfig, bank int) *trrSampler {
	return &trrSampler{
		cfg: cfg,
		rnd: rng.NewStream(rng.Hash64(cfg.Seed, uint64(bank), 0x7272)),
	}
}

// observe records an activation of a physical row.
func (t *trrSampler) observe(row int) {
	for i := range t.entries {
		if t.entries[i].row == row {
			t.entries[i].count++
			return
		}
	}
	if !t.rnd.Bernoulli(t.cfg.SampleProb) {
		return
	}
	if len(t.entries) < t.cfg.TableSize {
		t.entries = append(t.entries, trrEntry{row: row, count: 1})
		return
	}
	// FIFO eviction: sampled insertions push out the oldest entry.
	// TRRespass reverse engineering shows deployed samplers behave
	// this way, which is exactly what many-sided attack patterns
	// exploit: decoy aggressors churn the table so no entry's count
	// ever reaches the threshold.
	copy(t.entries, t.entries[1:])
	t.entries[len(t.entries)-1] = trrEntry{row: row, count: 1}
}

// victims returns the physical neighbor rows of tracked aggressors that
// crossed the threshold, clearing their counters. Called during REF.
func (t *trrSampler) victims() []int {
	var out []int
	for i := range t.entries {
		if t.entries[i].count >= t.cfg.Threshold {
			r := t.entries[i].row
			out = append(out, r-2, r-1, r+1, r+2)
			t.entries[i].count = 0
		}
	}
	return out
}
