package dram

import (
	"errors"
	"testing"
)

// testModule builds a small module with a NopDisturber and a direct
// remap, for protocol/timing tests.
func testModule(t *testing.T) *Module {
	t.Helper()
	m, err := NewModule(ModuleConfig{
		Geometry: Geometry{Banks: 2, RowsPerBank: 64, SubarrayRows: 32, Chips: 8, ChipWidth: 8, ColumnsPerRow: 8},
		Timing:   DDR4Timing(),
	})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// driver issues legally-timed commands against a module.
type driver struct {
	m   *Module
	now Picos
	t   *testing.T
}

func (d *driver) step(delta Picos) { d.now += delta }

func (d *driver) must(cmd Command) uint64 {
	d.t.Helper()
	v, err := d.m.Exec(cmd, d.now)
	if err != nil {
		d.t.Fatalf("%s at t=%d: %v", cmd, d.now, err)
	}
	return v
}

// openWriteClose writes one beat into (bank,row,col) with legal timing.
func (d *driver) openWriteClose(bank, row, col int, data uint64) {
	tm := d.m.Timing()
	d.step(tm.TRC)
	actAt := d.now
	d.must(Command{Op: OpAct, Bank: bank, Row: row})
	d.step(tm.TRCD)
	d.must(Command{Op: OpWr, Bank: bank, Col: col, Data: data})
	// PRE must respect both tRAS (from ACT) and tWR (from WR).
	preAt := d.now + tm.TWR
	if min := actAt + tm.TRAS; preAt < min {
		preAt = min
	}
	d.now = preAt
	d.must(Command{Op: OpPre, Bank: bank})
	d.step(tm.TRP)
}

// openReadClose reads one beat from (bank,row,col) with legal timing.
func (d *driver) openReadClose(bank, row, col int) uint64 {
	tm := d.m.Timing()
	d.step(tm.TRC)
	actAt := d.now
	d.must(Command{Op: OpAct, Bank: bank, Row: row})
	d.step(tm.TRCD)
	v := d.must(Command{Op: OpRd, Bank: bank, Col: col})
	// PRE must respect both tRAS (from ACT) and tRTP (from RD).
	preAt := d.now + tm.TRTP
	if min := actAt + tm.TRAS; preAt < min {
		preAt = min
	}
	d.now = preAt
	d.must(Command{Op: OpPre, Bank: bank})
	d.step(tm.TRP)
	return v
}

func TestWriteReadRoundTrip(t *testing.T) {
	m := testModule(t)
	d := &driver{m: m, t: t}
	want := uint64(0xdeadbeefcafef00d)
	d.openWriteClose(0, 5, 3, want)
	if got := d.openReadClose(0, 5, 3); got != want {
		t.Fatalf("read back %#x, want %#x", got, want)
	}
	// Unwritten columns read zero.
	if got := d.openReadClose(0, 5, 2); got != 0 {
		t.Fatalf("unwritten column = %#x, want 0", got)
	}
}

func TestMultipleColumnsIndependent(t *testing.T) {
	m := testModule(t)
	d := &driver{m: m, t: t}
	tm := m.Timing()
	d.step(tm.TRC)
	d.must(Command{Op: OpAct, Bank: 1, Row: 7})
	d.step(tm.TRCD)
	for col := 0; col < 8; col++ {
		d.must(Command{Op: OpWr, Bank: 1, Col: col, Data: uint64(col) * 0x1111111111111111})
		d.step(tm.TCCD)
	}
	d.step(tm.TWR)
	d.must(Command{Op: OpPre, Bank: 1})
	for col := 0; col < 8; col++ {
		if got := d.openReadClose(1, 7, col); got != uint64(col)*0x1111111111111111 {
			t.Fatalf("col %d = %#x", col, got)
		}
	}
}

func TestActOnActiveBankFails(t *testing.T) {
	m := testModule(t)
	d := &driver{m: m, t: t}
	d.step(m.Timing().TRC)
	d.must(Command{Op: OpAct, Bank: 0, Row: 1})
	d.step(m.Timing().TRC)
	_, err := m.Exec(Command{Op: OpAct, Bank: 0, Row: 2}, d.now)
	var pe *ProtocolError
	if !errors.As(err, &pe) {
		t.Fatalf("expected protocol error, got %v", err)
	}
}

func TestReadFromPrechargedBankFails(t *testing.T) {
	m := testModule(t)
	_, err := m.Exec(Command{Op: OpRd, Bank: 0, Col: 0}, 1000)
	var pe *ProtocolError
	if !errors.As(err, &pe) {
		t.Fatalf("expected protocol error, got %v", err)
	}
}

func TestTimingViolations(t *testing.T) {
	tm := DDR4Timing()
	cases := []struct {
		name  string
		param string
		run   func(m *Module) error
	}{
		{"tRAS", "tRAS", func(m *Module) error {
			if _, err := m.Exec(Command{Op: OpAct, Bank: 0, Row: 1}, 0); err != nil {
				return err
			}
			_, err := m.Exec(Command{Op: OpPre, Bank: 0}, tm.TRAS-1)
			return err
		}},
		{"tRP", "tRP", func(m *Module) error {
			if _, err := m.Exec(Command{Op: OpAct, Bank: 0, Row: 1}, 0); err != nil {
				return err
			}
			if _, err := m.Exec(Command{Op: OpPre, Bank: 0}, tm.TRAS); err != nil {
				return err
			}
			_, err := m.Exec(Command{Op: OpAct, Bank: 0, Row: 2}, tm.TRAS+tm.TRP-1)
			return err
		}},
		{"tRCD", "tRCD", func(m *Module) error {
			if _, err := m.Exec(Command{Op: OpAct, Bank: 0, Row: 1}, 0); err != nil {
				return err
			}
			_, err := m.Exec(Command{Op: OpRd, Bank: 0, Col: 0}, tm.TRCD-1)
			return err
		}},
		// tRC is only separately observable when tRC > tRAS+tRP; this
		// case is exercised by TestTRCIndependentlyEnforced below.
		{"tCCD", "tCCD", func(m *Module) error {
			if _, err := m.Exec(Command{Op: OpAct, Bank: 0, Row: 1}, 0); err != nil {
				return err
			}
			if _, err := m.Exec(Command{Op: OpRd, Bank: 0, Col: 0}, tm.TRCD); err != nil {
				return err
			}
			_, err := m.Exec(Command{Op: OpRd, Bank: 0, Col: 1}, tm.TRCD+tm.TCCD-1)
			return err
		}},
		{"tRRD", "tRRD", func(m *Module) error {
			if _, err := m.Exec(Command{Op: OpAct, Bank: 0, Row: 1}, 0); err != nil {
				return err
			}
			_, err := m.Exec(Command{Op: OpAct, Bank: 1, Row: 1}, tm.TRRD-1)
			return err
		}},
		{"tWR", "tWR", func(m *Module) error {
			if _, err := m.Exec(Command{Op: OpAct, Bank: 0, Row: 1}, 0); err != nil {
				return err
			}
			// Write late enough that only tWR (not tRAS) gates PRE.
			if _, err := m.Exec(Command{Op: OpWr, Bank: 0, Col: 0, Data: 1}, tm.TRAS); err != nil {
				return err
			}
			_, err := m.Exec(Command{Op: OpPre, Bank: 0}, tm.TRAS+tm.TWR-1)
			return err
		}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			m := testModule(t)
			err := c.run(m)
			var te *TimingError
			if !errors.As(err, &te) {
				t.Fatalf("expected timing error, got %v", err)
			}
			if te.Param != c.param {
				t.Fatalf("violated %s, want %s", te.Param, c.param)
			}
		})
	}
}

func TestTRCIndependentlyEnforced(t *testing.T) {
	// With tRC > tRAS+tRP, an ACT that satisfies tRP can still violate
	// tRC.
	tm := DDR4Timing()
	tm.TRC = tm.TRAS + tm.TRP + PicosFromNs(10)
	m, err := NewModule(ModuleConfig{
		Geometry: Geometry{Banks: 1, RowsPerBank: 64, SubarrayRows: 64, Chips: 8, ChipWidth: 8, ColumnsPerRow: 8},
		Timing:   tm,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Exec(Command{Op: OpAct, Bank: 0, Row: 1}, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Exec(Command{Op: OpPre, Bank: 0}, tm.TRAS); err != nil {
		t.Fatal(err)
	}
	_, err = m.Exec(Command{Op: OpAct, Bank: 0, Row: 2}, tm.TRAS+tm.TRP)
	var te *TimingError
	if !errors.As(err, &te) || te.Param != "tRC" {
		t.Fatalf("expected tRC violation, got %v", err)
	}
	if _, err := m.Exec(Command{Op: OpAct, Bank: 0, Row: 2}, tm.TRC); err != nil {
		t.Fatalf("ACT at tRC should be legal: %v", err)
	}
}

func TestNopAlwaysLegal(t *testing.T) {
	m := testModule(t)
	if _, err := m.Exec(Command{Op: OpNop}, 0); err != nil {
		t.Fatal(err)
	}
}

func TestPreToIdleBankIsNop(t *testing.T) {
	m := testModule(t)
	if _, err := m.Exec(Command{Op: OpPre, Bank: 0}, 0); err != nil {
		t.Fatalf("PRE to idle bank should be legal: %v", err)
	}
}

func TestPreAllClosesEveryBank(t *testing.T) {
	m := testModule(t)
	tm := m.Timing()
	var now Picos
	for b := 0; b < 2; b++ {
		if _, err := m.Exec(Command{Op: OpAct, Bank: b, Row: 1}, now); err != nil {
			t.Fatal(err)
		}
		now += tm.TRRD
	}
	now += tm.TRAS
	if _, err := m.Exec(Command{Op: OpPreAll}, now); err != nil {
		t.Fatal(err)
	}
	for b := 0; b < 2; b++ {
		if m.ActiveRow(b) != -1 {
			t.Fatalf("bank %d still active after PREA", b)
		}
	}
}

func TestRefRequiresIdleBanks(t *testing.T) {
	m := testModule(t)
	if _, err := m.Exec(Command{Op: OpAct, Bank: 0, Row: 1}, 0); err != nil {
		t.Fatal(err)
	}
	_, err := m.Exec(Command{Op: OpRef}, m.Timing().TRAS)
	var pe *ProtocolError
	if !errors.As(err, &pe) {
		t.Fatalf("expected protocol error for REF with open bank, got %v", err)
	}
}

func TestRefBlocksActivationsForTRFC(t *testing.T) {
	m := testModule(t)
	tm := m.Timing()
	if _, err := m.Exec(Command{Op: OpRef}, 0); err != nil {
		t.Fatal(err)
	}
	_, err := m.Exec(Command{Op: OpAct, Bank: 0, Row: 0}, tm.TRFC-1)
	var te *TimingError
	if !errors.As(err, &te) || te.Param != "tRFC" {
		t.Fatalf("expected tRFC violation, got %v", err)
	}
	if _, err := m.Exec(Command{Op: OpAct, Bank: 0, Row: 0}, tm.TRFC); err != nil {
		t.Fatalf("ACT after tRFC should be legal: %v", err)
	}
}

func TestOutOfRangeAddresses(t *testing.T) {
	m := testModule(t)
	for _, cmd := range []Command{
		{Op: OpAct, Bank: 99, Row: 0},
		{Op: OpAct, Bank: 0, Row: 9999},
		{Op: OpAct, Bank: -1, Row: 0},
		{Op: OpAct, Bank: 0, Row: -1},
	} {
		if _, err := m.Exec(cmd, 0); err == nil {
			t.Fatalf("expected error for %s", cmd)
		}
	}
	// Column range checked when bank active.
	if _, err := m.Exec(Command{Op: OpAct, Bank: 0, Row: 0}, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Exec(Command{Op: OpRd, Bank: 0, Col: 999}, m.Timing().TRCD); err == nil {
		t.Fatal("expected column range error")
	}
}

func TestLedgerAccumulationOnHammer(t *testing.T) {
	m := testModule(t)
	tm := m.Timing()
	var now Picos
	const hammers = 10
	// Double-sided hammer of victim row 10 via rows 9 and 11.
	for i := 0; i < hammers; i++ {
		for _, agg := range []int{9, 11} {
			if _, err := m.Exec(Command{Op: OpAct, Bank: 0, Row: agg}, now); err != nil {
				t.Fatal(err)
			}
			if _, err := m.Exec(Command{Op: OpPre, Bank: 0}, now+tm.TRAS); err != nil {
				t.Fatal(err)
			}
			now += tm.TRC
		}
	}
	led := m.PeekLedger(0, 10)
	if led.Dist[0].Count != 2*hammers {
		t.Fatalf("victim distance-1 count = %d, want %d", led.Dist[0].Count, 2*hammers)
	}
	// Rows 8 and 12 (the single-sided victims, ±2 from the double-sided
	// victim) see distance-1 aggression from their adjacent aggressor
	// only; the far aggressor is at distance 3, beyond the model radius.
	for _, r := range []int{8, 12} {
		l := m.PeekLedger(0, r)
		if l.Dist[0].Count != hammers {
			t.Fatalf("row %d distance-1 count = %d, want %d", r, l.Dist[0].Count, hammers)
		}
		if l.Dist[1].Count != 0 {
			t.Fatalf("row %d distance-2 count = %d, want 0", r, l.Dist[1].Count)
		}
	}
	// Rows 7 and 13 are at distance 2 from the near aggressor.
	for _, r := range []int{7, 13} {
		if l := m.PeekLedger(0, r); l.Dist[1].Count != hammers {
			t.Fatalf("row %d distance-2 count = %d, want %d", r, l.Dist[1].Count, hammers)
		}
	}
	// Each aggressor is at distance 2 from the other, but its own
	// ledger resets every time it is itself activated, so after the
	// final PRE of row 11 only row 9's ledger holds one recorded
	// activation (and vice-versa ordering leaves row 11 with none
	// pending beyond the last exchange).
	if l := m.PeekLedger(0, 9); l.Dist[1].Count != 1 {
		t.Fatalf("aggressor 9 distance-2 count = %d, want 1", l.Dist[1].Count)
	}
	// On-time recording: average on-time must equal tRAS.
	if got := led.Dist[0].AvgOnNs(); got != tm.TRAS.Nanoseconds() {
		t.Fatalf("avg on-time = %v ns, want %v", got, tm.TRAS.Nanoseconds())
	}
}

func TestLedgerResetOnVictimActivation(t *testing.T) {
	m := testModule(t)
	tm := m.Timing()
	var now Picos
	for _, agg := range []int{9, 11} {
		if _, err := m.Exec(Command{Op: OpAct, Bank: 0, Row: agg}, now); err != nil {
			t.Fatal(err)
		}
		if _, err := m.Exec(Command{Op: OpPre, Bank: 0}, now+tm.TRAS); err != nil {
			t.Fatal(err)
		}
		now += tm.TRC
	}
	if m.PeekLedger(0, 10).Total() == 0 {
		t.Fatal("victim should have accumulated aggression")
	}
	// Activating the victim restores its charge.
	if _, err := m.Exec(Command{Op: OpAct, Bank: 0, Row: 10}, now); err != nil {
		t.Fatal(err)
	}
	if m.PeekLedger(0, 10).Total() != 0 {
		t.Fatal("victim ledger should reset on activation")
	}
}

func TestDisturbanceStopsAtSubarrayBoundary(t *testing.T) {
	m := testModule(t) // 32-row subarrays
	tm := m.Timing()
	var now Picos
	// Hammer row 31 (last row of subarray 0).
	for i := 0; i < 5; i++ {
		if _, err := m.Exec(Command{Op: OpAct, Bank: 0, Row: 31}, now); err != nil {
			t.Fatal(err)
		}
		if _, err := m.Exec(Command{Op: OpPre, Bank: 0}, now+tm.TRAS); err != nil {
			t.Fatal(err)
		}
		now += tm.TRC
	}
	if m.PeekLedger(0, 30).Total() == 0 {
		t.Fatal("row 30 (same subarray) should accumulate")
	}
	if m.PeekLedger(0, 32).Total() != 0 {
		t.Fatal("row 32 (next subarray) must not accumulate")
	}
	if m.PeekLedger(0, 33).Total() != 0 {
		t.Fatal("row 33 (next subarray) must not accumulate")
	}
}

func TestTemperatureRecordedInLedger(t *testing.T) {
	m := testModule(t)
	tm := m.Timing()
	m.SetTemperature(85)
	if _, err := m.Exec(Command{Op: OpAct, Bank: 0, Row: 9}, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Exec(Command{Op: OpPre, Bank: 0}, tm.TRAS); err != nil {
		t.Fatal(err)
	}
	if got := m.PeekLedger(0, 10).Dist[0].AvgTempC(); got != 85 {
		t.Fatalf("recorded temperature = %v, want 85", got)
	}
}

func TestRemapAppliedToActivations(t *testing.T) {
	m, err := NewModule(ModuleConfig{
		Geometry: Geometry{Banks: 1, RowsPerBank: 64, SubarrayRows: 32, Chips: 8, ChipWidth: 8, ColumnsPerRow: 8},
		Timing:   DDR4Timing(),
		Remap:    MirrorRemap{},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Logical 8 maps to physical 15 under MirrorRemap.
	if _, err := m.Exec(Command{Op: OpAct, Bank: 0, Row: 8}, 0); err != nil {
		t.Fatal(err)
	}
	if got := m.ActiveRow(0); got != 15 {
		t.Fatalf("active physical row = %d, want 15", got)
	}
}

func TestStatsCounting(t *testing.T) {
	m := testModule(t)
	d := &driver{m: m, t: t}
	d.openWriteClose(0, 1, 0, 42)
	d.openReadClose(0, 1, 0)
	s := m.Stats()
	if s.Acts != 2 || s.Pres != 2 || s.Reads != 1 || s.Writes != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

// countingDisturber flips the first bit of every sensed row that has
// at least minHammers recorded distance-1 activations.
type countingDisturber struct {
	minHammers int64
	calls      int
	mask       []uint64
}

func (c *countingDisturber) Disturb(ctx DisturbContext) (int, []uint64) {
	c.calls++
	if ctx.Ledger.Dist[0].Count >= c.minHammers {
		if len(c.mask) < len(ctx.Data) {
			c.mask = make([]uint64, len(ctx.Data))
		}
		mask := c.mask[:len(ctx.Data)]
		for i := range mask {
			mask[i] = 0
		}
		mask[0] = 1
		return 1, mask
	}
	return 0, nil
}

func TestDisturberInvokedOnSense(t *testing.T) {
	cd := &countingDisturber{minHammers: 4}
	m, err := NewModule(ModuleConfig{
		Geometry:  Geometry{Banks: 1, RowsPerBank: 64, SubarrayRows: 64, Chips: 8, ChipWidth: 8, ColumnsPerRow: 8},
		Timing:    DDR4Timing(),
		Disturber: cd,
	})
	if err != nil {
		t.Fatal(err)
	}
	tm := m.Timing()
	d := &driver{m: m, t: t}
	d.openWriteClose(0, 10, 0, 0) // victim stores zeros
	var hammered Picos
	// 4 single-sided hammers on row 9.
	for i := 0; i < 4; i++ {
		d.step(tm.TRC)
		d.must(Command{Op: OpAct, Bank: 0, Row: 9})
		d.step(tm.TRAS)
		d.must(Command{Op: OpPre, Bank: 0})
		hammered += tm.TRC
	}
	// Reading the victim activates (senses) it: flip applied.
	got := d.openReadClose(0, 10, 0)
	if got != 1 {
		t.Fatalf("victim data = %#x, want bit flip to 1", got)
	}
	if m.Stats().FlipsInjected != 1 {
		t.Fatalf("FlipsInjected = %d", m.Stats().FlipsInjected)
	}
	// Re-reading without further hammering: no new flips (ledger reset).
	got = d.openReadClose(0, 10, 0)
	if got != 1 {
		t.Fatalf("flip should persist in stored data, got %#x", got)
	}
}

func TestRefreshClearsLedgers(t *testing.T) {
	m, err := NewModule(ModuleConfig{
		Geometry: Geometry{Banks: 1, RowsPerBank: 8, SubarrayRows: 8, Chips: 8, ChipWidth: 8, ColumnsPerRow: 8},
		Timing:   DDR4Timing(),
	})
	if err != nil {
		t.Fatal(err)
	}
	tm := m.Timing()
	var now Picos
	if _, err := m.Exec(Command{Op: OpAct, Bank: 0, Row: 3}, now); err != nil {
		t.Fatal(err)
	}
	now += tm.TRAS
	if _, err := m.Exec(Command{Op: OpPre, Bank: 0}, now); err != nil {
		t.Fatal(err)
	}
	now += tm.TRP
	if m.PeekLedger(0, 2).Total() == 0 {
		t.Fatal("row 2 should have aggression")
	}
	// The 8-row bank refreshes fully after 8 REFs (1 row per REF).
	for i := 0; i < 8; i++ {
		if _, err := m.Exec(Command{Op: OpRef}, now); err != nil {
			t.Fatal(err)
		}
		now += tm.TRFC
	}
	if m.PeekLedger(0, 2).Total() != 0 {
		t.Fatal("refresh should clear accumulated aggression")
	}
}

func TestBeatExtractInsertSubWord(t *testing.T) {
	// x4 chips, 8 chips: 32-bit beats exercise sub-word paths.
	m, err := NewModule(ModuleConfig{
		Geometry: Geometry{Banks: 1, RowsPerBank: 8, SubarrayRows: 8, Chips: 8, ChipWidth: 4, ColumnsPerRow: 16},
		Timing:   DDR4Timing(),
	})
	if err != nil {
		t.Fatal(err)
	}
	d := &driver{m: m, t: t}
	d.openWriteClose(0, 1, 0, 0xAAAAAAAA)
	d.openWriteClose(0, 1, 1, 0x55555555)
	d.openWriteClose(0, 1, 3, 0xFFFFFFFF)
	if got := d.openReadClose(0, 1, 0); got != 0xAAAAAAAA {
		t.Fatalf("col0 = %#x", got)
	}
	if got := d.openReadClose(0, 1, 1); got != 0x55555555 {
		t.Fatalf("col1 = %#x", got)
	}
	if got := d.openReadClose(0, 1, 2); got != 0 {
		t.Fatalf("col2 = %#x", got)
	}
	if got := d.openReadClose(0, 1, 3); got != 0xFFFFFFFF {
		t.Fatalf("col3 = %#x", got)
	}
}

func TestNewModuleRejectsWideBeat(t *testing.T) {
	_, err := NewModule(ModuleConfig{
		Geometry: Geometry{Banks: 1, RowsPerBank: 8, SubarrayRows: 8, Chips: 16, ChipWidth: 8, ColumnsPerRow: 8},
		Timing:   DDR4Timing(),
	})
	if err == nil {
		t.Fatal("expected error for beat > 64 bits")
	}
}
