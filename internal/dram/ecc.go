package dram

import "math/bits"

// On-die ECC: a (72, 64) Hamming SEC code with an overall parity bit
// (SECDED). Modern DRAM dies add a comparable single-error-correcting
// code transparently; the study deliberately tests modules *without*
// ECC so observed flips are raw circuit-level flips (§4.2). The
// simulator implements the code so defense experiments (Improvement 6)
// can quantify what ECC would absorb.
//
// Layout: 64 data bits are positioned at the non-power-of-two positions
// of a 1-based 72-bit codeword; positions 1,2,4,...,64 hold the seven
// Hamming parity bits; position 0 (stored as bit 7 of the check byte)
// holds overall parity.

// eccDataPos[i] is the 1-based codeword position of data bit i.
var eccDataPos = func() [64]int {
	var pos [64]int
	p := 1
	for i := 0; i < 64; i++ {
		for p&(p-1) == 0 { // skip powers of two (parity positions)
			p++
		}
		pos[i] = p
		p++
	}
	return pos
}()

// ECCEncode returns the check byte for a 64-bit data word: bits 0..6
// are the Hamming parity bits P1..P64, bit 7 is overall parity of the
// full codeword.
func ECCEncode(data uint64) uint8 {
	var check uint8
	for pb := 0; pb < 7; pb++ {
		mask := 1 << pb
		parity := 0
		for i := 0; i < 64; i++ {
			if eccDataPos[i]&mask != 0 && data&(1<<i) != 0 {
				parity ^= 1
			}
		}
		if parity != 0 {
			check |= 1 << pb
		}
	}
	// Overall parity covers data and the seven Hamming bits.
	overall := bits.OnesCount64(data) + bits.OnesCount8(check&0x7f)
	if overall&1 != 0 {
		check |= 0x80
	}
	return check
}

// ECCResult classifies a decode outcome.
type ECCResult int

// Decode outcomes.
const (
	ECCNoError ECCResult = iota
	ECCCorrected
	ECCDetectedUncorrectable
	// ECCMiscorrected: ≥2 errors aliased onto a correctable syndrome;
	// the decoder "corrected" the wrong bit. Only distinguishable in
	// simulation (the caller knows ground truth); the decoder itself
	// reports ECCCorrected for these.
	ECCMiscorrected
)

// ECCDecode checks data against its stored check byte, returning the
// possibly corrected data and the decode classification. Single-bit
// data errors are corrected; single-bit check errors are recognized;
// double-bit errors are detected via the overall parity bit.
func ECCDecode(data uint64, check uint8) (uint64, ECCResult) {
	recomputed := ECCEncode(data)
	syndrome := (check ^ recomputed) & 0x7f
	// Parity of the *received* codeword (data + stored check byte).
	// The encoder makes the transmitted codeword even-parity, so any
	// odd number of bit errors leaves the received parity odd.
	wholeOdd := (bits.OnesCount64(data)+bits.OnesCount8(check))&1 != 0

	switch {
	case syndrome == 0 && !wholeOdd:
		return data, ECCNoError
	case syndrome == 0 && wholeOdd:
		// Error in the overall parity bit itself.
		return data, ECCCorrected
	case wholeOdd:
		// Odd number of errors: assume single, correct by syndrome.
		pos := int(syndrome)
		for i := 0; i < 64; i++ {
			if eccDataPos[i] == pos {
				return data ^ (1 << i), ECCCorrected
			}
		}
		// Syndrome points at a parity position: check-bit error only.
		return data, ECCCorrected
	default:
		// Non-zero syndrome with even received parity: even error
		// count, uncorrectable.
		return data, ECCDetectedUncorrectable
	}
}
