package dram

import "fmt"

// HammerBulk performs count rounds of alternating open/close cycles of
// the given logical rows in one bank — the hot loop of every hammering
// test. Each round activates each row once for aggOn and precharges
// for aggOff (clamped up to tRAS/tRP/tRC as the HammerPeriod rules
// require).
//
// The first two rounds execute command-by-command through Exec so the
// bank state machine and ledgers behave exactly as on hardware; the
// remaining rounds are applied analytically (the steady state of the
// loop is periodic), which makes the cost independent of count. This
// mirrors SoftMC, whose hardware LOOP instruction repeats a verified
// command block without host interaction.
//
// It returns the time right after the final precharge completes
// (i.e. when the bank is next usable).
func (m *Module) HammerBulk(bank int, logicalRows []int, count int64, aggOn, aggOff Picos, start Picos) (Picos, error) {
	if len(logicalRows) == 0 {
		return start, fmt.Errorf("dram: HammerBulk with no rows")
	}
	if count < 0 {
		return start, fmt.Errorf("dram: HammerBulk with negative count")
	}
	if aggOn < m.timing.TRAS {
		aggOn = m.timing.TRAS
	}
	if aggOff < m.timing.TRP {
		aggOff = m.timing.TRP
	}
	if aggOn+aggOff < m.timing.TRC {
		aggOff = m.timing.TRC - aggOn
	}

	now := start
	// Honor a pending tRP/tRC from whatever preceded the loop.
	if b := m.banks[bank]; b != nil {
		if b.activeRow >= 0 {
			return start, &ProtocolError{Msg: "HammerBulk with bank active", At: start}
		}
		if b.everPre && now < b.lastPreAt+m.timing.TRP {
			now = b.lastPreAt + m.timing.TRP
		}
		if b.everAct && now < b.lastActAt+m.timing.TRC {
			now = b.lastActAt + m.timing.TRC
		}
	}
	if now < m.refBlockUntil {
		now = m.refBlockUntil
	}

	// A never-precharged bank would record the default tRP off-time for
	// the loop's first activation; backdate a virtual precharge so every
	// cycle of the loop records the requested aggOff uniformly.
	if b := m.banks[bank]; !b.everPre {
		b.lastPreAt = now - aggOff
		b.everPre = true
	}

	// Phase 1: up to two exact rounds through the state machine.
	exact := int64(2)
	if count < exact {
		exact = count
	}
	for r := int64(0); r < exact; r++ {
		for _, row := range logicalRows {
			if _, err := m.Exec(Command{Op: OpAct, Bank: bank, Row: row}, now); err != nil {
				return now, err
			}
			if _, err := m.Exec(Command{Op: OpPre, Bank: bank}, now+aggOn); err != nil {
				return now, err
			}
			now += aggOn + aggOff
		}
	}

	rest := count - exact
	if rest <= 0 {
		return now, nil
	}

	// Phase 2: apply the remaining rounds analytically. In steady
	// state every activation of physical row r adds one (aggOn,
	// aggOff) record to the ledgers of in-subarray neighbors at
	// distances 1 and 2 — except ledgers of rows in the aggressor set
	// itself, which are reset by their own activations each round and
	// therefore never accumulate more than one round's worth (already
	// established by phase 1).
	phys := m.hammerPhys[:0]
	for _, row := range logicalRows {
		if row < 0 || row >= m.geo.RowsPerBank {
			return now, &ProtocolError{Msg: "row out of range", Cmd: Command{Op: OpAct, Bank: bank, Row: row}, At: now}
		}
		phys = append(phys, m.remap.ToPhysical(row))
	}
	m.hammerPhys = phys
	// Aggressor sets are tiny (typically two rows), so membership is a
	// linear scan rather than a per-call map.
	inAggSet := func(n int) bool {
		for _, p := range phys {
			if p == n {
				return true
			}
		}
		return false
	}
	b := m.banks[bank]
	temp := m.tempC
	for _, p := range phys {
		for dist := 1; dist <= MaxDisturbDistance; dist++ {
			for _, n := range [2]int{p - dist, p + dist} {
				if n < 0 || n >= m.geo.RowsPerBank || !m.geo.SameSubarray(p, n) || inAggSet(n) {
					continue
				}
				led := b.ledger(n)
				d := &led.Dist[dist-1]
				d.Count += rest
				d.SumOn += Picos(rest) * aggOn
				d.SumOff += Picos(rest) * aggOff
				d.SumTempMilliC += rest * int64(temp*1000)
			}
		}
	}
	elapsed := Picos(rest) * Picos(len(logicalRows)) * (aggOn + aggOff)
	now += elapsed
	// Update bank/global bookkeeping as if the loop really ran.
	b.lastActAt = now - aggOn - aggOff
	b.lastPreAt = now - aggOff
	b.everAct, b.everPre = true, true
	m.lastActAnyAt = b.lastActAt
	m.everActAny = true
	m.stats.Acts += rest * int64(len(logicalRows))
	m.stats.Pres += rest * int64(len(logicalRows))
	if m.trr != nil {
		// The sampler sees every activation; feed it the bulk count in
		// round-robin order (identical steady-state distribution).
		for r := int64(0); r < rest && r < 4096; r++ {
			for _, p := range phys {
				m.trr[bank].observe(p)
			}
		}
		if rest > 4096 {
			// Beyond the cap the table contents are saturated; bump
			// counters directly to keep thresholds meaningful.
			for _, p := range phys {
				for i := range m.trr[bank].entries {
					if m.trr[bank].entries[i].row == p {
						m.trr[bank].entries[i].count += rest - 4096
					}
				}
			}
		}
	}
	return now, nil
}
